#!/usr/bin/env python3
"""Documentation consistency checker, run under ctest (label: docs).

Keeps the prose honest against the tree:

  1. every library under src/ has its own bold-header paragraph
     (**`src/<lib>`...) in docs/ARCHITECTURE.md's Libraries section — a
     passing mention elsewhere is not documentation;
  2. every "DESIGN.md §N" reference in source comments points at a
     section that actually exists in DESIGN.md;
  3. CHANGES.md carries one "- PR N:" entry per landed PR, contiguously
     numbered (a PR that forgets its line fails the suite);
  4. every committed baseline bench/baselines/BENCH_*.json is covered by
     EXPERIMENTS.md (a bench without a write-up is an orphan artifact);
  5. every relative link in README.md resolves to a file or directory
     that exists in the tree;
  6. every tests/*_test.cc is registered in tests/CMakeLists.txt (a test
     file that never builds is silently dead coverage);
  7. every library under src/ with more than one source file has a
     DESIGN.md anchor (a "src/<lib>" mention) — a subsystem big enough
     to span files is big enough to owe the design doc a paragraph.

Usage: check_docs.py [repo_root]   (defaults to the parent of tools/)
"""

import os
import re
import sys


def fail(errors):
    for e in errors:
        print("FAIL: %s" % e)
    print("%d documentation check(s) failed" % len(errors))
    return 1


def source_files(root):
    for base in ("src", "bench", "tests", "examples", "tools"):
        top = os.path.join(root, base)
        for dirpath, _, names in os.walk(top):
            for name in names:
                if name.endswith((".h", ".cc", ".cpp", ".py")):
                    yield os.path.join(dirpath, name)


def check_architecture(root, errors):
    arch_path = os.path.join(root, "docs", "ARCHITECTURE.md")
    if not os.path.exists(arch_path):
        errors.append("docs/ARCHITECTURE.md does not exist")
        return
    with open(arch_path, encoding="utf-8") as f:
        arch = f.read()
    libs = sorted(
        d for d in os.listdir(os.path.join(root, "src"))
        if os.path.isdir(os.path.join(root, "src", d))
    )
    if not libs:
        errors.append("no libraries found under src/ (wrong repo root?)")
    for lib in libs:
        if "src/%s" % lib not in arch:
            errors.append(
                "docs/ARCHITECTURE.md does not mention src/%s" % lib)
        elif "**`src/%s`" % lib not in arch:
            errors.append(
                "docs/ARCHITECTURE.md has no '**`src/%s`' library "
                "paragraph (a mention is not a description)" % lib)


def design_sections(root):
    with open(os.path.join(root, "DESIGN.md"), encoding="utf-8") as f:
        text = f.read()
    return set(
        int(m.group(1))
        for m in re.finditer(r"^## (\d+)\.", text, flags=re.MULTILINE)
    )


def check_design_refs(root, errors):
    sections = design_sections(root)
    if not sections:
        errors.append("DESIGN.md has no numbered '## N.' sections")
        return
    ref_re = re.compile(r"DESIGN\.md (?:§|section )(\d+)")
    for path in source_files(root):
        with open(path, encoding="utf-8", errors="replace") as f:
            for lineno, line in enumerate(f, 1):
                for m in ref_re.finditer(line):
                    num = int(m.group(1))
                    if num not in sections:
                        errors.append(
                            "%s:%d references DESIGN.md §%d, which does "
                            "not exist (sections: %s)"
                            % (os.path.relpath(path, root), lineno, num,
                               sorted(sections)))


def check_design_anchors(root, errors):
    """Multi-file src/ libraries must be anchored somewhere in DESIGN.md."""
    with open(os.path.join(root, "DESIGN.md"), encoding="utf-8") as f:
        design = f.read()
    src = os.path.join(root, "src")
    for lib in sorted(os.listdir(src)):
        lib_dir = os.path.join(src, lib)
        if not os.path.isdir(lib_dir):
            continue
        sources = [n for n in os.listdir(lib_dir)
                   if n.endswith((".h", ".cc", ".cpp"))]
        if len(sources) <= 1:
            continue
        if "src/%s" % lib not in design:
            errors.append(
                "DESIGN.md never mentions src/%s (%d source files) — "
                "multi-file subsystems need a design anchor"
                % (lib, len(sources)))


def check_changes(root, errors):
    path = os.path.join(root, "CHANGES.md")
    if not os.path.exists(path):
        errors.append("CHANGES.md does not exist")
        return
    with open(path, encoding="utf-8") as f:
        text = f.read()
    prs = sorted(
        int(m.group(1))
        for m in re.finditer(r"^- PR (\d+):", text, flags=re.MULTILINE)
    )
    if not prs:
        errors.append("CHANGES.md has no '- PR N:' entries")
        return
    expected = list(range(prs[0], prs[0] + len(prs)))
    if prs != expected:
        missing = sorted(set(expected) - set(prs))
        errors.append(
            "CHANGES.md PR entries are not contiguous: have %s, missing %s"
            % (prs, missing))


def check_baseline_experiments(root, errors):
    """Every committed BENCH_*.json baseline needs an EXPERIMENTS.md entry."""
    baselines_dir = os.path.join(root, "bench", "baselines")
    if not os.path.isdir(baselines_dir):
        return
    exp_path = os.path.join(root, "EXPERIMENTS.md")
    if not os.path.exists(exp_path):
        errors.append("EXPERIMENTS.md does not exist")
        return
    with open(exp_path, encoding="utf-8") as f:
        exp = f.read()
    for name in sorted(os.listdir(baselines_dir)):
        if name.startswith("BENCH_") and name.endswith(".json"):
            if name not in exp:
                errors.append(
                    "bench/baselines/%s is not covered by EXPERIMENTS.md "
                    "(orphan baseline artifact)" % name)


def check_test_registration(root, errors):
    """Every tests/*_test.cc must appear in tests/CMakeLists.txt."""
    tests_dir = os.path.join(root, "tests")
    cml_path = os.path.join(tests_dir, "CMakeLists.txt")
    if not os.path.exists(cml_path):
        errors.append("tests/CMakeLists.txt does not exist")
        return
    with open(cml_path, encoding="utf-8") as f:
        cml = f.read()
    for name in sorted(os.listdir(tests_dir)):
        if not name.endswith("_test.cc"):
            continue
        stem = name[:-len(".cc")]
        if not re.search(r"\b%s\b" % re.escape(stem), cml):
            errors.append(
                "tests/%s is not registered in tests/CMakeLists.txt "
                "(dead test file — it never builds or runs)" % name)


def check_readme_links(root, errors):
    """Relative README links must resolve inside the tree."""
    readme = os.path.join(root, "README.md")
    if not os.path.exists(readme):
        errors.append("README.md does not exist")
        return
    link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
    with open(readme, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            for m in link_re.finditer(line):
                target = m.group(1).split("#", 1)[0]
                if not target or "://" in target or target.startswith(
                        ("mailto:", "#")):
                    continue
                if not os.path.exists(os.path.join(root, target)):
                    errors.append(
                        "README.md:%d links to '%s', which does not exist"
                        % (lineno, target))


def main(argv):
    root = os.path.abspath(
        argv[1] if len(argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir))
    errors = []
    check_architecture(root, errors)
    check_design_refs(root, errors)
    check_design_anchors(root, errors)
    check_changes(root, errors)
    check_baseline_experiments(root, errors)
    check_readme_links(root, errors)
    check_test_registration(root, errors)
    if errors:
        return fail(errors)
    print("documentation checks OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

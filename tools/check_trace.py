#!/usr/bin/env python3
"""Validate observability artifacts emitted by the simulator.

Two modes:

  check_trace.py trace  backup.trace.json   # Chrome trace-event file
  check_trace.py report BENCH_foo.json      # structured bench report

Trace mode checks what Perfetto / chrome://tracing require to load the
file and what the exporter promises: a traceEvents array, a thread_name
metadata record for every track, monotonically non-decreasing timestamps
per track, balanced B/E span pairs per track, and counter events carrying
a numeric value. Report mode checks the BENCH_*.json contract used by
downstream tooling: job summaries, per-phase stats, utilization series
with samples in [0, 1], and the metrics dump.

Exit code 0 when the file validates; 1 with a message on stderr when not.
"""

import json
import sys


def fail(msg):
    sys.stderr.write(f"check_trace: {msg}\n")
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")


def check_trace(path):
    doc = load(path)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing, not a list, or empty")

    named_tracks = {}   # tid -> track name from thread_name metadata
    last_ts = {}        # tid -> last timestamp seen
    open_spans = {}     # tid -> stack depth of open B spans
    counts = {"B": 0, "E": 0, "i": 0, "C": 0, "M": 0}

    for n, e in enumerate(events):
        ph = e.get("ph")
        if ph not in counts:
            fail(f"event {n}: unexpected ph {ph!r}")
        counts[ph] += 1
        if ph == "M":
            if e.get("name") != "thread_name":
                fail(f"event {n}: metadata record is not thread_name")
            name = e.get("args", {}).get("name")
            if not name:
                fail(f"event {n}: thread_name without args.name")
            named_tracks[e.get("tid")] = name
            continue
        tid, ts = e.get("tid"), e.get("ts")
        if tid is None or ts is None:
            fail(f"event {n}: missing tid or ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {n}: bad ts {ts!r}")
        if tid in last_ts and ts < last_ts[tid]:
            fail(f"event {n}: ts {ts} regressed on tid {tid} "
                 f"(last was {last_ts[tid]})")
        last_ts[tid] = ts
        if ph == "B":
            if not e.get("name"):
                fail(f"event {n}: B span without a name")
            open_spans[tid] = open_spans.get(tid, 0) + 1
        elif ph == "E":
            open_spans[tid] = open_spans.get(tid, 0) - 1
            if open_spans[tid] < 0:
                fail(f"event {n}: E without matching B on tid {tid}")
        elif ph == "i":
            if not e.get("name"):
                fail(f"event {n}: instant without a name")
        elif ph == "C":
            args = e.get("args")
            if not isinstance(args, dict) or not args:
                fail(f"event {n}: counter without args")
            for v in args.values():
                if not isinstance(v, (int, float)):
                    fail(f"event {n}: non-numeric counter value {v!r}")

    for tid, depth in open_spans.items():
        if depth != 0:
            fail(f"tid {tid}: {depth} unbalanced span(s)")
    unnamed = set(last_ts) - set(named_tracks)
    if unnamed:
        fail(f"tracks without thread_name metadata: {sorted(unnamed)}")
    if counts["B"] == 0:
        fail("no spans at all — job phase tracks missing")
    if counts["C"] == 0:
        fail("no counter samples at all — resource tracks missing")

    print(f"{path}: OK — {len(events)} events, {len(named_tracks)} tracks "
          f"({counts['B']} spans, {counts['i']} instants, "
          f"{counts['C']} counter samples)")


def check_report(path):
    doc = load(path)
    for key in ("bench", "sim_elapsed_s", "config", "jobs", "utilization",
                "metrics"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")

    jobs = doc["jobs"]
    if not isinstance(jobs, list) or not jobs:
        fail("jobs missing or empty")
    for job in jobs:
        name = job.get("name", "<unnamed>")
        for key in ("status", "elapsed_s", "mb_per_s", "faults", "phases"):
            if key not in job:
                fail(f"job {name!r}: missing {key!r}")
        if job["status"] != "OK":
            fail(f"job {name!r}: status {job['status']!r}")
        for phase in job["phases"]:
            u = phase.get("cpu_utilization")
            if u is None or not 0.0 <= u <= 1.0:
                fail(f"job {name!r} phase {phase.get('name')!r}: "
                     f"cpu_utilization {u!r} outside [0, 1]")

    series_list = doc["utilization"]
    if not isinstance(series_list, list) or not series_list:
        fail("utilization series missing or empty")
    total_samples = 0
    for series in series_list:
        res = series.get("resource", "<unnamed>")
        samples = series.get("samples")
        if not isinstance(samples, list):
            fail(f"utilization {res!r}: samples missing")
        prev_t = None
        for s in samples:
            u, t = s.get("utilization"), s.get("t_s")
            if u is None or not 0.0 <= u <= 1.0:
                fail(f"utilization {res!r}: sample {u!r} outside [0, 1]")
            if prev_t is not None and t <= prev_t:
                fail(f"utilization {res!r}: sample times not increasing")
            prev_t = t
        total_samples += len(samples)
    if total_samples == 0:
        fail("no utilization samples in any series")

    metrics = doc["metrics"]
    for key in ("counters", "gauges", "histograms"):
        if key not in metrics:
            fail(f"metrics: missing {key!r}")

    print(f"{path}: OK — {len(jobs)} jobs, {len(series_list)} utilization "
          f"series ({total_samples} samples), "
          f"{len(metrics['counters'])} counters, "
          f"{len(metrics['histograms'])} histograms")


def main():
    if len(sys.argv) != 3 or sys.argv[1] not in ("trace", "report"):
        sys.stderr.write(__doc__)
        sys.exit(2)
    if sys.argv[1] == "trace":
        check_trace(sys.argv[2])
    else:
        check_report(sys.argv[2])


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Validate observability artifacts emitted by the simulator.

Three modes:

  check_trace.py trace  backup.trace.json [flags]  # Chrome trace-event file
  check_trace.py report BENCH_foo.json             # structured bench report
  check_trace.py flightrec flightrec_x_0.json      # flight-recorder snapshot

Trace mode checks what Perfetto / chrome://tracing require to load the
file and what the exporter promises: a traceEvents array, thread_name /
process_name metadata for every track and process, monotonically
non-decreasing timestamps per track, balanced B/E span pairs per track,
counter events carrying a numeric value, flow events ("s"/"f") carrying a
name and an id, and an otherData block with the ring's dropped-events
counter. Optional flags tighten the contract for cross-node traces:

  --require-flows          at least one matched s->f flow pair
  --require-processes=N    at least N distinct process rows
  --require-cross-node     one trace id spans events on >= 2 processes
  --require-incarnation    some event carries args.incarnation >= 1

Report mode checks the BENCH_*.json contract used by downstream tooling:
job summaries, per-phase stats, utilization series with samples in
[0, 1], and the metrics dump. When the report embeds a scheduler section
it also validates the night_health series (increasing sample times,
progress in [0, 1]) and that every missed deadline was flagged live.

Flightrec mode checks the flight-recorder snapshot schema: reason/seq,
the fault ring (ordered timestamps), counter deltas, the trace tail with
its drop counter, and the state object.

Exit code 0 when the file validates; 1 with a message on stderr when not.
"""

import json
import sys


def fail(msg):
    sys.stderr.write(f"check_trace: {msg}\n")
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")


def check_trace(path, flags):
    require_flows = "--require-flows" in flags
    require_cross_node = "--require-cross-node" in flags
    require_incarnation = "--require-incarnation" in flags
    require_processes = 0
    for f in flags:
        if f.startswith("--require-processes="):
            require_processes = int(f.split("=", 1)[1])
        elif f not in ("--require-flows", "--require-cross-node",
                       "--require-incarnation"):
            fail(f"unknown trace flag {f!r}")

    doc = load(path)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing, not a list, or empty")
    other = doc.get("otherData")
    if not isinstance(other, dict) or "dropped_events" not in other:
        fail("otherData.dropped_events missing — ring truncation invisible")

    named_tracks = {}   # tid -> track name from thread_name metadata
    named_procs = {}    # pid -> process name from process_name metadata
    last_ts = {}        # tid -> last timestamp seen
    open_spans = {}     # tid -> stack depth of open B spans
    flow_starts = {}    # id -> count of "s"
    flow_ends = {}      # id -> count of "f"
    trace_pids = {}     # trace id -> set of pids its events landed on
    max_incarnation = 0
    counts = {"B": 0, "E": 0, "i": 0, "C": 0, "M": 0, "s": 0, "f": 0}

    for n, e in enumerate(events):
        ph = e.get("ph")
        if ph not in counts:
            fail(f"event {n}: unexpected ph {ph!r}")
        counts[ph] += 1
        if ph == "M":
            kind = e.get("name")
            name = e.get("args", {}).get("name")
            if not name:
                fail(f"event {n}: {kind} metadata without args.name")
            if kind == "thread_name":
                named_tracks[e.get("tid")] = name
            elif kind == "process_name":
                named_procs[e.get("pid")] = name
            else:
                fail(f"event {n}: unexpected metadata record {kind!r}")
            continue
        tid, ts = e.get("tid"), e.get("ts")
        if tid is None or ts is None:
            fail(f"event {n}: missing tid or ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {n}: bad ts {ts!r}")
        if tid in last_ts and ts < last_ts[tid]:
            fail(f"event {n}: ts {ts} regressed on tid {tid} "
                 f"(last was {last_ts[tid]})")
        last_ts[tid] = ts
        args = e.get("args")
        if isinstance(args, dict):
            trace_id = args.get("trace")
            if trace_id is not None:
                trace_pids.setdefault(trace_id, set()).add(e.get("pid"))
            inc = args.get("incarnation")
            if isinstance(inc, int):
                max_incarnation = max(max_incarnation, inc)
        if ph == "B":
            if not e.get("name"):
                fail(f"event {n}: B span without a name")
            open_spans[tid] = open_spans.get(tid, 0) + 1
        elif ph == "E":
            open_spans[tid] = open_spans.get(tid, 0) - 1
            if open_spans[tid] < 0:
                fail(f"event {n}: E without matching B on tid {tid}")
        elif ph == "i":
            if not e.get("name"):
                fail(f"event {n}: instant without a name")
        elif ph == "C":
            if not isinstance(args, dict) or not args:
                fail(f"event {n}: counter without args")
            for v in args.values():
                if not isinstance(v, (int, float)):
                    fail(f"event {n}: non-numeric counter value {v!r}")
        elif ph in ("s", "f"):
            if not e.get("name"):
                fail(f"event {n}: flow event without a name")
            fid = e.get("id")
            if fid is None:
                fail(f"event {n}: flow event without an id")
            (flow_starts if ph == "s" else flow_ends)[fid] = 1

    for tid, depth in open_spans.items():
        if depth != 0:
            fail(f"tid {tid}: {depth} unbalanced span(s)")
    unnamed = set(last_ts) - set(named_tracks)
    if unnamed:
        fail(f"tracks without thread_name metadata: {sorted(unnamed)}")
    if counts["B"] == 0:
        fail("no spans at all — job phase tracks missing")
    if counts["C"] == 0:
        fail("no counter samples at all — resource tracks missing")

    # A flow start without an end is legal (a frame the connection gave up
    # on), but a cross-node trace must land at least one arrow.
    matched_flows = len(set(flow_starts) & set(flow_ends))
    if require_flows and matched_flows == 0:
        fail("no matched s->f flow pair (frames never stitched cross-node)")
    if len(named_procs) < require_processes:
        fail(f"only {len(named_procs)} process row(s), "
             f"need {require_processes}")
    if require_cross_node:
        spanning = [t for t, pids in trace_pids.items() if len(pids) >= 2]
        if not spanning:
            fail("no trace id spans two processes — nodes not merged")
    if require_incarnation and max_incarnation < 1:
        fail("no event with args.incarnation >= 1 — reconnect not traced")

    print(f"{path}: OK — {len(events)} events, {len(named_tracks)} tracks, "
          f"{len(named_procs)} processes ({counts['B']} spans, "
          f"{counts['i']} instants, {counts['C']} counter samples, "
          f"{matched_flows} matched flows, "
          f"max incarnation {max_incarnation})")


def check_night_health(sched):
    health = sched.get("night_health")
    if not isinstance(health, list):
        fail("scheduler: night_health missing or not a list")
    prev_t = None
    for n, sample in enumerate(health):
        t = sample.get("t_s")
        if t is None or (prev_t is not None and t < prev_t):
            fail(f"night_health sample {n}: times not non-decreasing")
        prev_t = t
        for vol in sample.get("volumes", []):
            p = vol.get("progress")
            if p is None or not 0.0 <= p <= 1.0:
                fail(f"night_health sample {n} volume "
                     f"{vol.get('name')!r}: progress {p!r} outside [0, 1]")
    for vol in sched.get("volumes", []):
        if not vol.get("deadline_met", True) and \
                not vol.get("slo_flagged_live", False):
            fail(f"volume {vol.get('name')!r} missed its deadline but was "
                 f"never flagged live by the SLO monitor")
    return len(health)


def check_report(path):
    doc = load(path)
    for key in ("bench", "sim_elapsed_s", "config", "jobs", "utilization",
                "metrics"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")

    jobs = doc["jobs"]
    if not isinstance(jobs, list) or not jobs:
        fail("jobs missing or empty")
    for job in jobs:
        name = job.get("name", "<unnamed>")
        for key in ("status", "elapsed_s", "mb_per_s", "faults", "phases"):
            if key not in job:
                fail(f"job {name!r}: missing {key!r}")
        if job["status"] != "OK":
            fail(f"job {name!r}: status {job['status']!r}")
        for phase in job["phases"]:
            u = phase.get("cpu_utilization")
            if u is None or not 0.0 <= u <= 1.0:
                fail(f"job {name!r} phase {phase.get('name')!r}: "
                     f"cpu_utilization {u!r} outside [0, 1]")

    series_list = doc["utilization"]
    if not isinstance(series_list, list) or not series_list:
        fail("utilization series missing or empty")
    total_samples = 0
    for series in series_list:
        res = series.get("resource", "<unnamed>")
        samples = series.get("samples")
        if not isinstance(samples, list):
            fail(f"utilization {res!r}: samples missing")
        prev_t = None
        for s in samples:
            u, t = s.get("utilization"), s.get("t_s")
            if u is None or not 0.0 <= u <= 1.0:
                fail(f"utilization {res!r}: sample {u!r} outside [0, 1]")
            if prev_t is not None and t <= prev_t:
                fail(f"utilization {res!r}: sample times not increasing")
            prev_t = t
        total_samples += len(samples)
    if total_samples == 0:
        fail("no utilization samples in any series")

    metrics = doc["metrics"]
    for key in ("counters", "gauges", "histograms"):
        if key not in metrics:
            fail(f"metrics: missing {key!r}")

    health_samples = 0
    if "scheduler" in doc:
        health_samples = check_night_health(doc["scheduler"])

    print(f"{path}: OK — {len(jobs)} jobs, {len(series_list)} utilization "
          f"series ({total_samples} samples), "
          f"{len(metrics['counters'])} counters, "
          f"{len(metrics['histograms'])} histograms, "
          f"{health_samples} night_health samples")


def check_flightrec(path):
    doc = load(path)
    for key in ("reason", "seq", "sim_time_s", "faults", "metrics", "trace",
                "state"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    if not doc["reason"]:
        fail("empty dump reason")

    faults = doc["faults"]
    if "dropped" not in faults or not isinstance(faults.get("events"), list):
        fail("faults.dropped / faults.events malformed")
    prev_t = None
    for n, ev in enumerate(faults["events"]):
        for key in ("t_s", "kind", "target", "detail"):
            if key not in ev:
                fail(f"fault event {n}: missing {key!r}")
        if prev_t is not None and ev["t_s"] < prev_t:
            fail(f"fault event {n}: timestamps regressed")
        prev_t = ev["t_s"]

    deltas = doc["metrics"].get("counter_deltas")
    if not isinstance(deltas, list):
        fail("metrics.counter_deltas missing")
    for n, d in enumerate(deltas):
        if "name" not in d or "value" not in d or "delta" not in d:
            fail(f"counter delta {n}: missing name/value/delta")
        if d["delta"] == 0:
            fail(f"counter delta {n} ({d['name']!r}): zero delta reported")

    trace = doc["trace"]
    if "attached" not in trace or "dropped_events" not in trace or \
            not isinstance(trace.get("tail"), list):
        fail("trace.attached / dropped_events / tail malformed")
    for n, ev in enumerate(trace["tail"]):
        for key in ("ph", "track", "t_s", "name"):
            if key not in ev:
                fail(f"trace tail event {n}: missing {key!r}")

    if not isinstance(doc["state"], dict):
        fail("state is not an object")

    print(f"{path}: OK — reason {doc['reason']!r}, "
          f"{len(faults['events'])} fault events "
          f"({faults['dropped']} dropped), {len(deltas)} counter deltas, "
          f"{len(trace['tail'])} trace tail events, "
          f"{len(doc['state'])} state providers")


def main():
    if len(sys.argv) < 3 or sys.argv[1] not in ("trace", "report",
                                                "flightrec"):
        sys.stderr.write(__doc__)
        sys.exit(2)
    mode, path, flags = sys.argv[1], sys.argv[2], sys.argv[3:]
    if mode == "trace":
        check_trace(path, flags)
    elif mode == "report":
        if flags:
            fail("report mode takes no flags")
        check_report(path)
    else:
        if flags:
            fail("flightrec mode takes no flags")
        check_flightrec(path)


if __name__ == "__main__":
    main()

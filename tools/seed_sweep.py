#!/usr/bin/env python3
"""Reruns the scheduler property suite across extra seed blocks.

The compiled-in suite covers 64 random fleet configurations per block;
`BKUP_SCHED_SEED_OFFSET` shifts the whole block, so each offset exercises a
fresh set of fleets without a recompile. Run under ctest (label: scheduler)
this sweeps offsets 1..8 — 512 additional configurations — over the full
property set: determinism, no double-booking, exactly-once backup, and
no feasible-plan misses.

Usage: seed_sweep.py /path/to/scheduler_test [num_offsets]
"""

import os
import subprocess
import sys


def main():
    if len(sys.argv) < 2:
        print("usage: seed_sweep.py /path/to/scheduler_test [num_offsets]")
        return 2
    binary = sys.argv[1]
    num_offsets = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    if not os.path.exists(binary):
        print("FAIL: test binary %r not found" % binary)
        return 1

    failures = []
    for offset in range(1, num_offsets + 1):
        env = dict(os.environ)
        env["BKUP_SCHED_SEED_OFFSET"] = str(offset)
        print("=== seed offset %d/%d ===" % (offset, num_offsets), flush=True)
        proc = subprocess.run(
            [binary, "--gtest_filter=SchedulerPropertyTest.*"],
            env=env,
        )
        if proc.returncode != 0:
            failures.append(offset)

    if failures:
        print("FAIL: property suite failed at seed offset(s) %s" % failures)
        return 1
    print("seed sweep: %d offsets x 64 configurations OK" % num_offsets)
    return 0


if __name__ == "__main__":
    sys.exit(main())

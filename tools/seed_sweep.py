#!/usr/bin/env python3
"""Reruns a seeded gtest property suite across extra seed blocks.

A seeded suite covers one block of random configurations per run; its
seed-offset environment variable shifts the whole block, so each offset
exercises a fresh set without a recompile. Run under ctest this sweeps
offsets 1..N over the full property set.

Defaults fit the scheduler suite (64 random fleet configurations per block,
`BKUP_SCHED_SEED_OFFSET`, filter SchedulerPropertyTest.*); the recovery
chaos soak reuses the tool with --filter/--env:

  seed_sweep.py /path/to/scheduler_test [num_offsets]
  seed_sweep.py /path/to/recovery_chaos_test 2 \\
      --filter=RecoveryChaosTest.KilledRestoresConvergeEverywhere \\
      --env=BKUP_RECOVERY_SEED_OFFSET

--threads crosses the sweep with a worker-thread matrix for suites that
honor BKUP_SIM_THREADS (the sharded-simulator determinism stress): each
seed offset is run once per thread count, so every seed block is checked
at every parallelism level.

  seed_sweep.py /path/to/shard_test 2 --threads=1,2,4 \\
      --filter=ShardStressTest.* --env=BKUP_SIM_SEED_OFFSET
"""

import os
import subprocess
import sys


def main():
    args = sys.argv[1:]
    gtest_filter = "SchedulerPropertyTest.*"
    env_var = "BKUP_SCHED_SEED_OFFSET"
    threads_matrix = [None]  # None = leave BKUP_SIM_THREADS untouched
    positional = []
    for arg in args:
        if arg.startswith("--filter="):
            gtest_filter = arg[len("--filter="):]
        elif arg.startswith("--env="):
            env_var = arg[len("--env="):]
        elif arg.startswith("--threads="):
            threads_matrix = [int(t) for t in
                              arg[len("--threads="):].split(",") if t]
            if not threads_matrix:
                print("FAIL: --threads needs a comma-separated list")
                return 2
        else:
            positional.append(arg)
    if not positional:
        print("usage: seed_sweep.py /path/to/test_binary [num_offsets]"
              " [--filter=PATTERN] [--env=SEED_OFFSET_VAR]"
              " [--threads=1,2,4]")
        return 2
    binary = positional[0]
    num_offsets = int(positional[1]) if len(positional) > 1 else 8
    if not os.path.exists(binary):
        print("FAIL: test binary %r not found" % binary)
        return 1

    failures = []
    for offset in range(1, num_offsets + 1):
        for threads in threads_matrix:
            env = dict(os.environ)
            env[env_var] = str(offset)
            tag = ""
            if threads is not None:
                env["BKUP_SIM_THREADS"] = str(threads)
                tag = ", %d thread(s)" % threads
            print("=== seed offset %d/%d (%s%s) ===" % (
                offset, num_offsets, env_var, tag), flush=True)
            proc = subprocess.run(
                [binary, "--gtest_filter=" + gtest_filter],
                env=env,
            )
            if proc.returncode != 0:
                failures.append((offset, threads))

    if failures:
        print("FAIL: property suite failed at (offset, threads) %s"
              % failures)
        return 1
    print("seed sweep: %d offsets of %s OK (threads matrix: %s)" % (
        num_offsets, gtest_filter,
        ",".join("env" if t is None else str(t) for t in threads_matrix)))
    return 0


if __name__ == "__main__":
    sys.exit(main())

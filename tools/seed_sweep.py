#!/usr/bin/env python3
"""Reruns a seeded gtest property suite across extra seed blocks.

A seeded suite covers one block of random configurations per run; its
seed-offset environment variable shifts the whole block, so each offset
exercises a fresh set without a recompile. Run under ctest this sweeps
offsets 1..N over the full property set.

Defaults fit the scheduler suite (64 random fleet configurations per block,
`BKUP_SCHED_SEED_OFFSET`, filter SchedulerPropertyTest.*); the recovery
chaos soak reuses the tool with --filter/--env:

  seed_sweep.py /path/to/scheduler_test [num_offsets]
  seed_sweep.py /path/to/recovery_chaos_test 2 \\
      --filter=RecoveryChaosTest.KilledRestoresConvergeEverywhere \\
      --env=BKUP_RECOVERY_SEED_OFFSET
"""

import os
import subprocess
import sys


def main():
    args = sys.argv[1:]
    gtest_filter = "SchedulerPropertyTest.*"
    env_var = "BKUP_SCHED_SEED_OFFSET"
    positional = []
    for arg in args:
        if arg.startswith("--filter="):
            gtest_filter = arg[len("--filter="):]
        elif arg.startswith("--env="):
            env_var = arg[len("--env="):]
        else:
            positional.append(arg)
    if not positional:
        print("usage: seed_sweep.py /path/to/test_binary [num_offsets]"
              " [--filter=PATTERN] [--env=SEED_OFFSET_VAR]")
        return 2
    binary = positional[0]
    num_offsets = int(positional[1]) if len(positional) > 1 else 8
    if not os.path.exists(binary):
        print("FAIL: test binary %r not found" % binary)
        return 1

    failures = []
    for offset in range(1, num_offsets + 1):
        env = dict(os.environ)
        env[env_var] = str(offset)
        print("=== seed offset %d/%d (%s) ===" % (offset, num_offsets,
                                                  env_var), flush=True)
        proc = subprocess.run(
            [binary, "--gtest_filter=" + gtest_filter],
            env=env,
        )
        if proc.returncode != 0:
            failures.append(offset)

    if failures:
        print("FAIL: property suite failed at seed offset(s) %s" % failures)
        return 1
    print("seed sweep: %d offsets of %s OK" % (num_offsets, gtest_filter))
    return 0


if __name__ == "__main__":
    sys.exit(main())

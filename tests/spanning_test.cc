// Tests for multi-volume dumps (tape spanning) and the logical format's
// cross-geometry portability — physical restore's mirror-image limitation.
#include <gtest/gtest.h>

#include <memory>

#include "src/backup/jobs.h"
#include "src/image/image_dump.h"
#include "src/workload/population.h"

namespace bkup {
namespace {

VolumeGeometry Geometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;
  return geom;
}

struct SpanFixture {
  SpanFixture() : filer(&env, FilerModel::F630()) {
    volume = Volume::Create(&env, "home", Geometry());
    fs = std::move(Filesystem::Format(volume.get(), &env)).value();
    WorkloadParams params;
    params.target_bytes = 10 * kMiB;
    EXPECT_TRUE(PopulateFilesystem(fs.get(), params).ok());
  }
  SimEnvironment env;
  Filer filer;
  std::unique_ptr<Volume> volume;
  std::unique_ptr<Filesystem> fs;
};

TEST(SpanningTest, DumpSpansMultipleSmallTapes) {
  SpanFixture f;
  auto src_sums = ChecksumTree(f.fs->LiveReader()).value();

  // ~11 MiB of stream onto 4 MiB tapes: needs three volumes.
  Tape t0("vol.0", 4 * kMiB), t1("vol.1", 4 * kMiB), t2("vol.2", 4 * kMiB),
      t3("vol.3", 4 * kMiB);
  TapeDrive drive(&f.env, "dlt0");
  drive.LoadMedia(&t0);

  LogicalBackupJobResult backup;
  CountdownLatch done(&f.env, 1);
  f.env.Spawn(LogicalBackupJob(&f.filer, f.fs.get(), &drive,
                               LogicalDumpOptions{}, &backup, &done,
                               {&t1, &t2, &t3}));
  f.env.Run();
  ASSERT_TRUE(backup.report.status.ok())
      << backup.report.status.ToString();
  ASSERT_GE(backup.report.tapes_used.size(), 3u);
  EXPECT_EQ(backup.report.tapes_used[0], "vol.0");
  EXPECT_EQ(backup.report.tapes_used[1], "vol.1");
  // Every used tape except the last is essentially full.
  EXPECT_GT(t0.size(), 3 * kMiB);
  EXPECT_GT(t1.size(), 3 * kMiB);
  const uint64_t on_media = t0.size() + t1.size() + t2.size() + t3.size();
  EXPECT_EQ(on_media, backup.report.stream_bytes);

  // Restore from the ordered set.
  auto restore_volume = Volume::Create(&f.env, "r", Geometry());
  auto restore_fs =
      std::move(Filesystem::Format(restore_volume.get(), &f.env)).value();
  TapeDrive rdrive(&f.env, "dlt1");
  rdrive.LoadMedia(&t0);
  LogicalRestoreJobResult restore;
  CountdownLatch rdone(&f.env, 1);
  f.env.Spawn(LogicalRestoreJob(&f.filer, restore_fs.get(), &rdrive,
                                LogicalRestoreOptions{}, false, &restore,
                                &rdone, {&t1, &t2, &t3}));
  f.env.Run();
  ASSERT_TRUE(restore.report.status.ok())
      << restore.report.status.ToString();
  EXPECT_EQ(ChecksumTree(restore_fs->LiveReader()).value(), src_sums);
  EXPECT_GE(restore.report.tapes_used.size(), 3u);
}

TEST(SpanningTest, RunningOutOfSparesFailsCleanly) {
  SpanFixture f;
  Tape t0("only.0", 2 * kMiB), t1("only.1", 2 * kMiB);
  TapeDrive drive(&f.env, "dlt0");
  drive.LoadMedia(&t0);
  LogicalBackupJobResult backup;
  CountdownLatch done(&f.env, 1);
  f.env.Spawn(LogicalBackupJob(&f.filer, f.fs.get(), &drive,
                               LogicalDumpOptions{}, &backup, &done, {&t1}));
  f.env.Run();
  EXPECT_EQ(backup.report.status.code(), ErrorCode::kNoSpace)
      << "an 11 MiB dump cannot fit on two 2 MiB tapes";
}

TEST(SpanningTest, MediaLoadTimeIsCharged) {
  SpanFixture f;
  // Single big tape vs a spanned set of the same total capacity: the
  // spanned run must be slower by roughly the media load times.
  auto run = [&f](std::vector<Tape*> spares, Tape* first) {
    TapeDrive drive(&f.env, "d");
    drive.LoadMedia(first);
    LogicalBackupJobResult backup;
    CountdownLatch done(&f.env, 1);
    f.env.Spawn(LogicalBackupJob(&f.filer, f.fs.get(), &drive,
                                 LogicalDumpOptions{}, &backup, &done,
                                 std::move(spares)));
    f.env.Run();
    EXPECT_TRUE(backup.report.status.ok());
    return backup.report.StreamElapsed();
  };
  Tape big("big", 1ull * kGiB);
  const SimDuration single = run({}, &big);
  Tape s0("s0", 4 * kMiB), s1("s1", 4 * kMiB), s2("s2", 4 * kMiB),
      s3("s3", 4 * kMiB);
  const SimDuration spanned = run({&s1, &s2, &s3}, &s0);
  const TapeTiming timing;
  EXPECT_GT(spanned, single + 2 * timing.load_time - kSecond)
      << "each media change should cost about one load time";
}

// ---------------------------------------------------------- portability ---

TEST(PortabilityTest, LogicalTapeRestoresOntoAnyGeometry) {
  // "The benefit of any well-known format is that the data on a tape can
  // usually be easily restored on a different platform than that on which
  // it was dumped."
  SpanFixture f;
  auto src_sums = ChecksumTree(f.fs->LiveReader()).value();
  ASSERT_TRUE(f.fs->CreateSnapshot("s").ok());
  auto reader = f.fs->SnapshotReader("s").value();
  LogicalDumpOptions opt;
  opt.dump_time = f.env.now();
  auto dump = RunLogicalDump(reader, opt);
  ASSERT_TRUE(dump.ok());

  // A very different "machine": one big RAID group, different disk count
  // and sizes.
  VolumeGeometry other;
  other.num_raid_groups = 1;
  other.disks_per_group = 7;
  other.blocks_per_disk = 3000;
  auto volume = Volume::Create(&f.env, "other", other);
  auto fs = std::move(Filesystem::Format(volume.get(), &f.env)).value();
  ASSERT_TRUE(
      RunLogicalRestore(fs.get(), dump->stream, LogicalRestoreOptions{})
          .ok());
  EXPECT_EQ(ChecksumTree(fs->LiveReader()).value(), src_sums);

  // The physical image of the same data refuses the foreign geometry.
  auto image = RunImageDump(f.volume.get(), ImageDumpOptions{});
  ASSERT_TRUE(image.ok());
  auto volume2 = Volume::Create(&f.env, "other2", other);
  EXPECT_EQ(RunImageRestore(volume2.get(), image->stream).status().code(),
            ErrorCode::kUnsupported)
      << "physical restore is tied to the source geometry (Section 4)";
}

}  // namespace
}  // namespace bkup

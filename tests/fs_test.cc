// Tests for the write-anywhere file system: namespace operations, file I/O,
// persistence across consistency points and remounts, snapshots (COW
// immutability, bit-plane bookkeeping), and NVRAM crash replay.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/fs/filesystem.h"
#include "src/util/random.h"

namespace bkup {
namespace {

VolumeGeometry SmallGeometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 4;   // 3 data disks each
  geom.blocks_per_disk = 1024;  // 2 * 3 * 1024 = 6144 data blocks = 24 MiB
  return geom;
}

struct FsFixture {
  FsFixture() : FsFixture(SmallGeometry()) {}
  explicit FsFixture(const VolumeGeometry& geom) {
    volume = Volume::Create(&env, "test", geom);
    auto result = Filesystem::Format(volume.get(), &env);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    fs = std::move(result).value();
  }

  std::vector<uint8_t> Bytes(size_t n, uint64_t seed) {
    std::vector<uint8_t> data(n);
    Rng rng(seed);
    rng.Fill(data);
    return data;
  }

  SimEnvironment env;
  std::unique_ptr<Volume> volume;
  std::unique_ptr<Filesystem> fs;
};

// ----------------------------------------------------------- basic files ---

TEST(FsTest, FormatCreatesEmptyRoot) {
  FsFixture f;
  auto root = f.fs->LookupPath("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, kRootDirInum);
  auto entries = f.fs->ReadDir(kRootDirInum);
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
}

TEST(FsTest, CreateWriteReadRoundTrip) {
  FsFixture f;
  auto inum = f.fs->Create("/hello.txt", 0644);
  ASSERT_TRUE(inum.ok()) << inum.status().ToString();
  const std::vector<uint8_t> data = f.Bytes(10000, 42);
  ASSERT_TRUE(f.fs->Write(*inum, 0, data).ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE(f.fs->Read(*inum, 0, data.size(), &back).ok());
  EXPECT_EQ(back, data);
  auto attr = f.fs->GetAttr(*inum);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, data.size());
  EXPECT_EQ(attr->type, InodeType::kFile);
  EXPECT_EQ(attr->mode, 0644);
  EXPECT_EQ(attr->nlink, 1);
}

TEST(FsTest, CreateExistingFails) {
  FsFixture f;
  ASSERT_TRUE(f.fs->Create("/a", 0644).ok());
  EXPECT_EQ(f.fs->Create("/a", 0644).status().code(),
            ErrorCode::kAlreadyExists);
}

TEST(FsTest, LookupAndReadDirSeeUncommittedState) {
  FsFixture f;
  ASSERT_TRUE(f.fs->Mkdir("/dir", 0755).ok());
  ASSERT_TRUE(f.fs->Create("/dir/file", 0644).ok());
  // No consistency point yet: lookups must still see everything.
  auto inum = f.fs->LookupPath("/dir/file");
  ASSERT_TRUE(inum.ok());
  auto dir_inum = f.fs->LookupPath("/dir");
  ASSERT_TRUE(dir_inum.ok());
  auto entries = f.fs->ReadDir(*dir_inum);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "file");
  EXPECT_EQ((*entries)[0].inum, *inum);
}

TEST(FsTest, WriteAtOffsetAndOverwrite) {
  FsFixture f;
  auto inum = f.fs->Create("/f", 0644);
  ASSERT_TRUE(inum.ok());
  std::vector<uint8_t> a(5000, 0xAA);
  std::vector<uint8_t> b(100, 0xBB);
  ASSERT_TRUE(f.fs->Write(*inum, 0, a).ok());
  ASSERT_TRUE(f.fs->Write(*inum, 4000, b).ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE(f.fs->Read(*inum, 0, 5000, &back).ok());
  EXPECT_EQ(back[3999], 0xAA);
  EXPECT_EQ(back[4000], 0xBB);
  EXPECT_EQ(back[4099], 0xBB);
  EXPECT_EQ(back[4100], 0xAA);
}

TEST(FsTest, SparseFileReadsZerosInHoles) {
  FsFixture f;
  auto inum = f.fs->Create("/sparse", 0644);
  ASSERT_TRUE(inum.ok());
  std::vector<uint8_t> tail(10, 0xCC);
  // Write 10 bytes at 1 MiB: everything before is a hole.
  ASSERT_TRUE(f.fs->Write(*inum, 1 * kMiB, tail).ok());
  auto attr = f.fs->GetAttr(*inum);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->size, 1 * kMiB + 10);
  std::vector<uint8_t> back;
  ASSERT_TRUE(f.fs->Read(*inum, 1 * kMiB - 100, 110, &back).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(back[i], 0) << i;
  }
  EXPECT_EQ(back[100], 0xCC);
  // Holes consume no blocks: the file should use ~1 block.
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  auto reader = f.fs->LiveReader();
  auto ino = reader.ReadInode(*inum);
  ASSERT_TRUE(ino.ok());
  auto ptrs = reader.PointerMap(*ino);
  ASSERT_TRUE(ptrs.ok());
  size_t mapped = 0;
  for (uint32_t p : *ptrs) {
    mapped += p != 0 ? 1 : 0;
  }
  EXPECT_EQ(mapped, 1u);
}

TEST(FsTest, ReadPastEofTruncates) {
  FsFixture f;
  auto inum = f.fs->Create("/f", 0644);
  ASSERT_TRUE(inum.ok());
  ASSERT_TRUE(f.fs->Write(*inum, 0, f.Bytes(100, 1)).ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE(f.fs->Read(*inum, 50, 1000, &back).ok());
  EXPECT_EQ(back.size(), 50u);
  ASSERT_TRUE(f.fs->Read(*inum, 200, 10, &back).ok());
  EXPECT_TRUE(back.empty());
}

TEST(FsTest, LargeFileUsesIndirectBlocks) {
  FsFixture f;
  auto inum = f.fs->Create("/big", 0644);
  ASSERT_TRUE(inum.ok());
  // 100 blocks: needs the single-indirect block (16 direct + 84).
  const std::vector<uint8_t> data = f.Bytes(100 * kBlockSize, 7);
  ASSERT_TRUE(f.fs->Write(*inum, 0, data).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  auto reader = f.fs->LiveReader();
  auto ino = reader.ReadInode(*inum);
  ASSERT_TRUE(ino.ok());
  EXPECT_NE(ino->single_indirect, 0u);
  std::vector<uint8_t> back;
  ASSERT_TRUE(f.fs->Read(*inum, 0, data.size(), &back).ok());
  EXPECT_EQ(back, data);
}

TEST(FsTest, DoubleIndirectFile) {
  FsFixture f;
  auto inum = f.fs->Create("/huge", 0644);
  ASSERT_TRUE(inum.ok());
  // Block 1500 is past 16 + 1024, forcing the double-indirect tree; write
  // sparsely so the volume doesn't fill.
  const std::vector<uint8_t> chunk = f.Bytes(kBlockSize, 9);
  ASSERT_TRUE(f.fs->Write(*inum, 1500ull * kBlockSize, chunk).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  auto reader = f.fs->LiveReader();
  auto ino = reader.ReadInode(*inum);
  ASSERT_TRUE(ino.ok());
  EXPECT_NE(ino->double_indirect, 0u);
  std::vector<uint8_t> back;
  ASSERT_TRUE(f.fs->Read(*inum, 1500ull * kBlockSize, kBlockSize, &back).ok());
  EXPECT_EQ(back, chunk);
  // And the hole region still reads zero.
  ASSERT_TRUE(f.fs->Read(*inum, 700ull * kBlockSize, 8, &back).ok());
  EXPECT_EQ(back, std::vector<uint8_t>(8, 0));
}

TEST(FsTest, TruncateShrinkFreesBlocksAndZeroesTail) {
  FsFixture f;
  auto inum = f.fs->Create("/t", 0644);
  ASSERT_TRUE(inum.ok());
  ASSERT_TRUE(f.fs->Write(*inum, 0, f.Bytes(10 * kBlockSize, 3)).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  const uint64_t active_before = f.fs->Stats().active_blocks;
  ASSERT_TRUE(f.fs->Truncate(*inum, 2 * kBlockSize + 100).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  const uint64_t active_after = f.fs->Stats().active_blocks;
  EXPECT_LT(active_after, active_before);
  // Extending again must read zeros past the old tail.
  ASSERT_TRUE(f.fs->Truncate(*inum, 4 * kBlockSize).ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE(f.fs->Read(*inum, 2 * kBlockSize + 100, 100, &back).ok());
  EXPECT_EQ(back, std::vector<uint8_t>(100, 0));
}

TEST(FsTest, WriteToDirectoryRejected) {
  FsFixture f;
  ASSERT_TRUE(f.fs->Mkdir("/d", 0755).ok());
  auto inum = f.fs->LookupPath("/d");
  ASSERT_TRUE(inum.ok());
  std::vector<uint8_t> junk(10, 1);
  EXPECT_EQ(f.fs->Write(*inum, 0, junk).code(), ErrorCode::kIsADirectory);
}

// ------------------------------------------------------------- namespace ---

TEST(FsTest, MkdirNested) {
  FsFixture f;
  ASSERT_TRUE(f.fs->Mkdir("/a", 0755).ok());
  ASSERT_TRUE(f.fs->Mkdir("/a/b", 0755).ok());
  ASSERT_TRUE(f.fs->Mkdir("/a/b/c", 0755).ok());
  ASSERT_TRUE(f.fs->Create("/a/b/c/file", 0600).ok());
  auto inum = f.fs->LookupPath("/a/b/c/file");
  EXPECT_TRUE(inum.ok());
  EXPECT_EQ(f.fs->LookupPath("/a/x/c").status().code(), ErrorCode::kNotFound);
}

TEST(FsTest, UnlinkRemovesAndFreesBlocks) {
  FsFixture f;
  auto inum = f.fs->Create("/victim", 0644);
  ASSERT_TRUE(inum.ok());
  ASSERT_TRUE(f.fs->Write(*inum, 0, f.Bytes(20 * kBlockSize, 5)).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  const uint64_t active_before = f.fs->Stats().active_blocks;
  ASSERT_TRUE(f.fs->Unlink("/victim").ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  EXPECT_EQ(f.fs->LookupPath("/victim").status().code(), ErrorCode::kNotFound);
  EXPECT_LT(f.fs->Stats().active_blocks, active_before);
}

TEST(FsTest, UnlinkOfDirectoryRejected) {
  FsFixture f;
  ASSERT_TRUE(f.fs->Mkdir("/d", 0755).ok());
  EXPECT_EQ(f.fs->Unlink("/d").code(), ErrorCode::kIsADirectory);
}

TEST(FsTest, RmdirOnlyEmpty) {
  FsFixture f;
  ASSERT_TRUE(f.fs->Mkdir("/d", 0755).ok());
  ASSERT_TRUE(f.fs->Create("/d/f", 0644).ok());
  EXPECT_EQ(f.fs->Rmdir("/d").code(), ErrorCode::kNotEmpty);
  ASSERT_TRUE(f.fs->Unlink("/d/f").ok());
  EXPECT_TRUE(f.fs->Rmdir("/d").ok());
  EXPECT_EQ(f.fs->LookupPath("/d").status().code(), ErrorCode::kNotFound);
}

TEST(FsTest, RenameFile) {
  FsFixture f;
  auto inum = f.fs->Create("/old", 0644);
  ASSERT_TRUE(inum.ok());
  ASSERT_TRUE(f.fs->Write(*inum, 0, f.Bytes(100, 8)).ok());
  ASSERT_TRUE(f.fs->Mkdir("/dir", 0755).ok());
  ASSERT_TRUE(f.fs->Rename("/old", "/dir/new").ok());
  EXPECT_EQ(f.fs->LookupPath("/old").status().code(), ErrorCode::kNotFound);
  auto moved = f.fs->LookupPath("/dir/new");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, *inum) << "rename must not change the inode";
}

TEST(FsTest, RenameReplacesExistingFile) {
  FsFixture f;
  auto a = f.fs->Create("/a", 0644);
  auto b = f.fs->Create("/b", 0644);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(f.fs->Rename("/a", "/b").ok());
  auto now_b = f.fs->LookupPath("/b");
  ASSERT_TRUE(now_b.ok());
  EXPECT_EQ(*now_b, *a);
  // Old /b's inode is gone.
  EXPECT_EQ(f.fs->GetAttr(*b).status().code(), ErrorCode::kNotFound);
}

TEST(FsTest, RenameDirIntoItselfRejected) {
  FsFixture f;
  ASSERT_TRUE(f.fs->Mkdir("/d", 0755).ok());
  EXPECT_EQ(f.fs->Rename("/d", "/d/sub").code(), ErrorCode::kInvalidArgument);
}

TEST(FsTest, HardLinkSharesInode) {
  FsFixture f;
  auto inum = f.fs->Create("/file", 0644);
  ASSERT_TRUE(inum.ok());
  ASSERT_TRUE(f.fs->Write(*inum, 0, f.Bytes(100, 9)).ok());
  ASSERT_TRUE(f.fs->Link("/file", "/alias").ok());
  auto alias = f.fs->LookupPath("/alias");
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(*alias, *inum);
  auto attr = f.fs->GetAttr(*inum);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->nlink, 2);
  // Unlinking one name keeps the data alive.
  ASSERT_TRUE(f.fs->Unlink("/file").ok());
  std::vector<uint8_t> back;
  EXPECT_TRUE(f.fs->Read(*alias, 0, 100, &back).ok());
  EXPECT_EQ(back.size(), 100u);
  attr = f.fs->GetAttr(*inum);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->nlink, 1);
}

TEST(FsTest, SymlinkStoresTarget) {
  FsFixture f;
  ASSERT_TRUE(f.fs->Create("/real", 0644).ok());
  auto link = f.fs->SymlinkAt("/real", "/sym");
  ASSERT_TRUE(link.ok());
  auto target = f.fs->ReadSymlink(*link);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, "/real");
}

TEST(FsTest, InumReuseBumpsGeneration) {
  FsFixture f;
  auto first = f.fs->Create("/a", 0644);
  ASSERT_TRUE(first.ok());
  auto gen1 = f.fs->GetAttr(*first)->generation;
  ASSERT_TRUE(f.fs->Unlink("/a").ok());
  auto second = f.fs->Create("/b", 0644);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *first) << "lowest-free allocation reuses the inum";
  EXPECT_GT(f.fs->GetAttr(*second)->generation, gen1);
}

// ------------------------------------------------------------ persistence ---

TEST(FsTest, RemountSeesCommittedState) {
  FsFixture f;
  auto inum = f.fs->Create("/persist", 0640);
  ASSERT_TRUE(inum.ok());
  const std::vector<uint8_t> data = f.Bytes(30000, 11);
  ASSERT_TRUE(f.fs->Write(*inum, 0, data).ok());
  ASSERT_TRUE(f.fs->Mkdir("/dir", 0700).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  f.fs.reset();  // unmount

  auto mounted = Filesystem::Mount(f.volume.get(), &f.env);
  ASSERT_TRUE(mounted.ok()) << mounted.status().ToString();
  auto fs2 = std::move(mounted).value();
  auto found = fs2->LookupPath("/persist");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *inum);
  std::vector<uint8_t> back;
  ASSERT_TRUE(fs2->Read(*found, 0, data.size(), &back).ok());
  EXPECT_EQ(back, data);
  auto attr = fs2->GetAttr(*found);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->mode, 0640);
  EXPECT_TRUE(fs2->LookupPath("/dir").ok());
}

TEST(FsTest, UncommittedStateLostWithoutNvram) {
  FsFixture f;
  ASSERT_TRUE(f.fs->Create("/committed", 0644).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  ASSERT_TRUE(f.fs->Create("/lost", 0644).ok());
  f.fs.reset();  // crash without CP

  auto fs2 = Filesystem::Mount(f.volume.get(), &f.env);
  ASSERT_TRUE(fs2.ok());
  EXPECT_TRUE((*fs2)->LookupPath("/committed").ok());
  EXPECT_EQ((*fs2)->LookupPath("/lost").status().code(),
            ErrorCode::kNotFound);
}

TEST(FsTest, MountFallsBackToRedundantFsInfo) {
  FsFixture f;
  ASSERT_TRUE(f.fs->Create("/x", 0644).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  f.fs.reset();
  // Corrupt the primary fsinfo block on every disk it maps to.
  Block junk;
  junk.data.fill(0x5A);
  ASSERT_TRUE(f.volume->WriteBlock(kFsInfoPrimary, junk).ok());
  auto fs2 = Filesystem::Mount(f.volume.get(), &f.env);
  ASSERT_TRUE(fs2.ok()) << fs2.status().ToString();
  EXPECT_TRUE((*fs2)->LookupPath("/x").ok());
}

TEST(FsTest, GenerationAdvancesEveryCp) {
  FsFixture f;
  const uint64_t g0 = f.fs->generation();
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  EXPECT_EQ(f.fs->generation(), g0 + 2);
}

// ------------------------------------------------------------- snapshots ---

TEST(FsTest, SnapshotPreservesOldContents) {
  FsFixture f;
  auto inum = f.fs->Create("/file", 0644);
  ASSERT_TRUE(inum.ok());
  const std::vector<uint8_t> v1 = f.Bytes(5 * kBlockSize, 100);
  ASSERT_TRUE(f.fs->Write(*inum, 0, v1).ok());
  ASSERT_TRUE(f.fs->CreateSnapshot("snap1").ok());

  // Overwrite and delete in the active file system.
  const std::vector<uint8_t> v2 = f.Bytes(5 * kBlockSize, 200);
  ASSERT_TRUE(f.fs->Write(*inum, 0, v2).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());

  // The snapshot still shows v1.
  auto reader = f.fs->SnapshotReader("snap1");
  ASSERT_TRUE(reader.ok());
  auto snap_inum = reader->LookupPath("/file");
  ASSERT_TRUE(snap_inum.ok());
  auto snap_ino = reader->ReadInode(*snap_inum);
  ASSERT_TRUE(snap_ino.ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE(reader->ReadFile(*snap_ino, 0, v1.size(), &back).ok());
  EXPECT_EQ(back, v1);
  // The live file shows v2.
  ASSERT_TRUE(f.fs->Read(*inum, 0, v2.size(), &back).ok());
  EXPECT_EQ(back, v2);
}

TEST(FsTest, SnapshotSurvivesFileDeletion) {
  FsFixture f;
  auto inum = f.fs->Create("/doomed", 0644);
  ASSERT_TRUE(inum.ok());
  const std::vector<uint8_t> data = f.Bytes(3 * kBlockSize, 300);
  ASSERT_TRUE(f.fs->Write(*inum, 0, data).ok());
  ASSERT_TRUE(f.fs->CreateSnapshot("before-delete").ok());
  ASSERT_TRUE(f.fs->Unlink("/doomed").ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());

  EXPECT_EQ(f.fs->LookupPath("/doomed").status().code(), ErrorCode::kNotFound);
  auto reader = f.fs->SnapshotReader("before-delete");
  ASSERT_TRUE(reader.ok());
  auto snap_inum = reader->LookupPath("/doomed");
  ASSERT_TRUE(snap_inum.ok());
  auto ino = reader->ReadInode(*snap_inum);
  ASSERT_TRUE(ino.ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE(reader->ReadFile(*ino, 0, data.size(), &back).ok());
  EXPECT_EQ(back, data);
}

TEST(FsTest, SnapshotUsesNoSpaceUntilChange) {
  FsFixture f;
  auto inum = f.fs->Create("/file", 0644);
  ASSERT_TRUE(inum.ok());
  ASSERT_TRUE(f.fs->Write(*inum, 0, f.Bytes(50 * kBlockSize, 1)).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  const uint64_t used_before = f.fs->blockmap().CountUsed();
  ASSERT_TRUE(f.fs->CreateSnapshot("s").ok());
  const uint64_t used_after = f.fs->blockmap().CountUsed();
  // The snapshot shares every block; only the CP's own meta-data rewrite
  // (block-map file etc.) moved blocks.
  const uint64_t meta_overhead = f.fs->blockmap().FileBlocks() + 8;
  EXPECT_LE(used_after, used_before + meta_overhead);
}

TEST(FsTest, DeleteSnapshotFreesItsBlocks) {
  FsFixture f;
  auto inum = f.fs->Create("/f", 0644);
  ASSERT_TRUE(inum.ok());
  ASSERT_TRUE(f.fs->Write(*inum, 0, f.Bytes(40 * kBlockSize, 2)).ok());
  ASSERT_TRUE(f.fs->CreateSnapshot("s").ok());
  ASSERT_TRUE(f.fs->Unlink("/f").ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  // Blocks are pinned by the snapshot.
  const uint64_t used_with_snap = f.fs->blockmap().CountUsed();
  ASSERT_TRUE(f.fs->DeleteSnapshot("s").ok());
  EXPECT_LT(f.fs->blockmap().CountUsed(), used_with_snap - 35);
}

TEST(FsTest, SnapshotLimitsEnforced) {
  FsFixture f;
  for (int i = 0; i < kMaxSnapshots; ++i) {
    ASSERT_TRUE(f.fs->CreateSnapshot("snap" + std::to_string(i)).ok()) << i;
  }
  EXPECT_EQ(f.fs->CreateSnapshot("one-too-many").code(),
            ErrorCode::kExhausted);
  EXPECT_EQ(f.fs->CreateSnapshot("snap3").code(), ErrorCode::kAlreadyExists);
  ASSERT_TRUE(f.fs->DeleteSnapshot("snap3").ok());
  EXPECT_TRUE(f.fs->CreateSnapshot("again").ok());
  EXPECT_EQ(f.fs->DeleteSnapshot("gone").code(), ErrorCode::kNotFound);
}

TEST(FsTest, SnapshotTableSurvivesRemount) {
  FsFixture f;
  ASSERT_TRUE(f.fs->Create("/a", 0644).ok());
  ASSERT_TRUE(f.fs->CreateSnapshot("keeper").ok());
  f.fs.reset();
  auto fs2 = Filesystem::Mount(f.volume.get(), &f.env);
  ASSERT_TRUE(fs2.ok());
  auto snaps = (*fs2)->ListSnapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "keeper");
  auto reader = (*fs2)->SnapshotReader("keeper");
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->LookupPath("/a").ok());
}

TEST(FsTest, BlockMapInvariantFreeIffNoPlane) {
  FsFixture f;
  auto inum = f.fs->Create("/f", 0644);
  ASSERT_TRUE(inum.ok());
  ASSERT_TRUE(f.fs->Write(*inum, 0, f.Bytes(10 * kBlockSize, 3)).ok());
  ASSERT_TRUE(f.fs->CreateSnapshot("s1").ok());
  ASSERT_TRUE(f.fs->Write(*inum, 0, f.Bytes(10 * kBlockSize, 4)).ok());
  ASSERT_TRUE(f.fs->CreateSnapshot("s2").ok());
  ASSERT_TRUE(f.fs->Unlink("/f").ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());

  const BlockMap& bm = f.fs->blockmap();
  for (Vbn v = 0; v < bm.num_blocks(); ++v) {
    bool any_plane = false;
    for (int plane = 0; plane < kBlockMapPlanes; ++plane) {
      any_plane |= bm.Test(plane, v);
    }
    EXPECT_EQ(bm.IsFree(v), !any_plane) << "vbn " << v;
  }
}

// ---------------------------------------------------------------- NVRAM ---

TEST(FsTest, NvramReplayRecoversUncommittedOps) {
  SimEnvironment env;
  auto volume = Volume::Create(&env, "v", SmallGeometry());
  NvramLog nvram(32 * kMiB);
  auto fs_result = Filesystem::Format(volume.get(), &env, &nvram);
  ASSERT_TRUE(fs_result.ok());
  auto fs = std::move(fs_result).value();

  ASSERT_TRUE(fs->Mkdir("/dir", 0755).ok());
  ASSERT_TRUE(fs->ConsistencyPoint().ok());
  EXPECT_TRUE(nvram.empty()) << "CP must clear the log";

  // Post-CP mutations live only in memory + NVRAM.
  auto inum = fs->Create("/dir/recovered", 0644);
  ASSERT_TRUE(inum.ok());
  std::vector<uint8_t> data(9000);
  Rng(77).Fill(data);
  ASSERT_TRUE(fs->Write(*inum, 0, data).ok());
  ASSERT_TRUE(fs->Rename("/dir/recovered", "/dir/renamed").ok());
  EXPECT_GT(nvram.num_records(), 0u);

  fs.reset();  // crash: all dirty in-memory state is gone

  auto fs2 = Filesystem::Mount(volume.get(), &env, &nvram);
  ASSERT_TRUE(fs2.ok()) << fs2.status().ToString();
  auto found = (*fs2)->LookupPath("/dir/renamed");
  ASSERT_TRUE(found.ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE((*fs2)->Read(*found, 0, data.size(), &back).ok());
  EXPECT_EQ(back, data);
}

TEST(FsTest, NvramFailureLosesOnlyRecentOps) {
  // Paper §2.2: "If the filer's NVRAM fails, the WAFL file system is still
  // completely self consistent; the only damage is that a few seconds worth
  // of NFS operations may be lost."
  SimEnvironment env;
  auto volume = Volume::Create(&env, "v", SmallGeometry());
  NvramLog nvram(32 * kMiB);
  auto fs_result = Filesystem::Format(volume.get(), &env, &nvram);
  ASSERT_TRUE(fs_result.ok());
  auto fs = std::move(fs_result).value();
  ASSERT_TRUE(fs->Create("/durable", 0644).ok());
  ASSERT_TRUE(fs->ConsistencyPoint().ok());
  ASSERT_TRUE(fs->Create("/recent", 0644).ok());
  nvram.FailAndLoseContents();
  fs.reset();
  auto fs2 = Filesystem::Mount(volume.get(), &env, &nvram);
  ASSERT_TRUE(fs2.ok());
  EXPECT_TRUE((*fs2)->LookupPath("/durable").ok());
  EXPECT_EQ((*fs2)->LookupPath("/recent").status().code(),
            ErrorCode::kNotFound);
}

TEST(FsTest, NvramPressureForcesCp) {
  SimEnvironment env;
  auto volume = Volume::Create(&env, "v", SmallGeometry());
  NvramLog nvram(64 * kKiB);  // tiny log
  auto fs_result = Filesystem::Format(volume.get(), &env, &nvram);
  ASSERT_TRUE(fs_result.ok());
  auto fs = std::move(fs_result).value();
  const uint64_t g0 = fs->generation();
  auto inum = fs->Create("/f", 0644);
  ASSERT_TRUE(inum.ok());
  std::vector<uint8_t> chunk(16 * kKiB);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fs->Write(*inum, i * chunk.size(), chunk).ok());
  }
  EXPECT_GT(fs->generation(), g0) << "log overflow must take CPs";
  EXPECT_LE(nvram.size_bytes(), nvram.capacity());
}

// ---------------------------------------------------------------- stats ---

TEST(FsTest, StatsTrackUsage) {
  FsFixture f;
  const FsStats before = f.fs->Stats();
  auto inum = f.fs->Create("/f", 0644);
  ASSERT_TRUE(inum.ok());
  ASSERT_TRUE(f.fs->Write(*inum, 0, f.Bytes(25 * kBlockSize, 6)).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  const FsStats after = f.fs->Stats();
  EXPECT_EQ(after.inodes_used, before.inodes_used + 1);
  EXPECT_GE(after.active_blocks, before.active_blocks + 25);
  EXPECT_LT(after.free_blocks, before.free_blocks);
  EXPECT_EQ(after.volume_blocks, f.volume->num_blocks());
}

// Property sweep: randomized workload, then verify every file via remount.
class FsRandomWorkloadTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FsRandomWorkloadTest, RandomOpsSurviveRemount) {
  FsFixture f;
  Rng rng(GetParam());
  // Model state: path -> contents.
  std::vector<std::pair<std::string, std::vector<uint8_t>>> model;
  for (int i = 0; i < 40; ++i) {
    const std::string path = "/f" + std::to_string(i);
    auto inum = f.fs->Create(path, 0644);
    ASSERT_TRUE(inum.ok());
    std::vector<uint8_t> data(rng.Below(6 * kBlockSize) + 1);
    rng.Fill(data);
    ASSERT_TRUE(f.fs->Write(*inum, 0, data).ok());
    model.emplace_back(path, std::move(data));
    if (rng.Chance(0.3) && !model.empty()) {
      // Random overwrite of an earlier file.
      const size_t pick = rng.Below(model.size());
      auto target = f.fs->LookupPath(model[pick].first);
      ASSERT_TRUE(target.ok());
      const uint64_t off = rng.Below(model[pick].second.size());
      std::vector<uint8_t> patch(rng.Below(kBlockSize) + 1);
      rng.Fill(patch);
      ASSERT_TRUE(f.fs->Write(*target, off, patch).ok());
      auto& bytes = model[pick].second;
      if (off + patch.size() > bytes.size()) {
        bytes.resize(off + patch.size());
      }
      std::copy(patch.begin(), patch.end(), bytes.begin() + static_cast<long>(off));
    }
    if (rng.Chance(0.15) && model.size() > 1) {
      const size_t pick = rng.Below(model.size());
      ASSERT_TRUE(f.fs->Unlink(model[pick].first).ok());
      model.erase(model.begin() + static_cast<long>(pick));
    }
    if (rng.Chance(0.2)) {
      ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
    }
  }
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  f.fs.reset();
  auto fs2_result = Filesystem::Mount(f.volume.get(), &f.env);
  ASSERT_TRUE(fs2_result.ok());
  auto fs2 = std::move(fs2_result).value();
  for (const auto& [path, bytes] : model) {
    auto inum = fs2->LookupPath(path);
    ASSERT_TRUE(inum.ok()) << path;
    std::vector<uint8_t> back;
    ASSERT_TRUE(fs2->Read(*inum, 0, bytes.size() + 10, &back).ok());
    EXPECT_EQ(back, bytes) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsRandomWorkloadTest,
                         ::testing::Values(1, 2, 3, 7, 1999));

}  // namespace
}  // namespace bkup

// Tests for logical dump/restore: tape format, the four dump phases,
// full/subtree/single-file restores, incremental chains with deletions and
// renames, corruption resilience, and cross-volume ("cross-platform")
// restores.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dump/dumpdates.h"
#include "src/dump/logical_dump.h"
#include "src/dump/logical_restore.h"
#include "src/fs/filesystem.h"
#include "src/util/checksum.h"
#include "src/util/random.h"

namespace bkup {
namespace {

VolumeGeometry TestGeometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;  // 2*3*2048 blocks = 48 MiB
  return geom;
}

struct DumpFixture {
  DumpFixture() {
    src_volume = Volume::Create(&env, "src", TestGeometry());
    dst_volume = Volume::Create(&env, "dst", TestGeometry());
    src = std::move(Filesystem::Format(src_volume.get(), &env)).value();
    dst = std::move(Filesystem::Format(dst_volume.get(), &env)).value();
  }

  std::vector<uint8_t> Bytes(size_t n, uint64_t seed) {
    std::vector<uint8_t> data(n);
    Rng rng(seed);
    rng.Fill(data);
    return data;
  }

  Inum MustCreate(Filesystem* fs, const std::string& path, size_t nbytes,
                  uint64_t seed) {
    auto inum = fs->Create(path, 0644);
    EXPECT_TRUE(inum.ok()) << path;
    if (nbytes > 0) {
      EXPECT_TRUE(fs->Write(*inum, 0, Bytes(nbytes, seed)).ok());
    }
    return *inum;
  }

  // Dumps `subtree` of `src` from a fresh snapshot.
  LogicalDumpOutput Dump(int level = 0, int64_t base_time = 0,
                         const std::string& subtree = "/") {
    const std::string snap = "dumpsnap" + std::to_string(snap_counter++);
    EXPECT_TRUE(src->CreateSnapshot(snap).ok());
    auto reader = src->SnapshotReader(snap);
    EXPECT_TRUE(reader.ok());
    LogicalDumpOptions opt;
    opt.level = level;
    opt.base_time = base_time;
    opt.subtree = subtree;
    opt.volume_name = "src";
    opt.snapshot_name = snap;
    opt.dump_time = env.now();
    auto out = RunLogicalDump(*reader, opt);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_TRUE(src->DeleteSnapshot(snap).ok());
    return std::move(out).value();
  }

  // Verifies that the file at `path` exists on `fs` with the given content.
  void ExpectFile(Filesystem* fs, const std::string& path,
                  const std::vector<uint8_t>& want) {
    auto inum = fs->LookupPath(path);
    ASSERT_TRUE(inum.ok()) << path;
    std::vector<uint8_t> got;
    ASSERT_TRUE(fs->Read(*inum, 0, want.size() + 16, &got).ok()) << path;
    EXPECT_EQ(got.size(), want.size()) << path;
    EXPECT_EQ(Crc32c(got), Crc32c(want)) << path << " content differs";
  }

  void AdvanceTime(SimDuration d) {
    env.Spawn([](SimEnvironment* e, SimDuration dur) -> Task {
      co_await e->Delay(dur);
    }(&env, d));
    env.Run();
  }

  SimEnvironment env;
  std::unique_ptr<Volume> src_volume, dst_volume;
  std::unique_ptr<Filesystem> src, dst;
  int snap_counter = 0;
};

// ---------------------------------------------------------------- format ---

TEST(DumpFormatTest, RecordRoundTrip) {
  DumpRecord rec;
  rec.type = DumpRecordType::kInode;
  rec.inum = 42;
  rec.attrs = {InodeType::kFile, 0644, 2, 1000, 100, 123456, 11, 22, 33, 7};
  rec.total_blocks = 31;
  rec.first_fbn = 0;
  rec.map_count = 31;
  rec.present_count = 2;
  rec.data_crc = 0xDEADBEEF;
  rec.block_map.assign(4, 0);
  rec.block_map[0] = 0x81;
  auto bytes = rec.Serialize();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes->size(), kDumpRecordSize);
  auto back = DumpRecord::Parse(*bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->type, DumpRecordType::kInode);
  EXPECT_EQ(back->inum, 42u);
  EXPECT_EQ(back->attrs.mode, 0644);
  EXPECT_EQ(back->attrs.nlink, 2);
  EXPECT_EQ(back->attrs.size, 123456u);
  EXPECT_EQ(back->total_blocks, 31u);
  EXPECT_EQ(back->present_count, 2u);
  EXPECT_EQ(back->data_crc, 0xDEADBEEFu);
  EXPECT_TRUE(back->BlockPresent(0));
  EXPECT_FALSE(back->BlockPresent(1));
  EXPECT_TRUE(back->BlockPresent(7));
}

TEST(DumpFormatTest, TapeHeaderRoundTrip) {
  DumpRecord rec;
  rec.type = DumpRecordType::kTapeHeader;
  rec.level = 3;
  rec.dump_time = 999;
  rec.base_time = 500;
  rec.max_inodes = 4096;
  rec.volume_name = "home";
  rec.snapshot_name = "nightly.0";
  rec.subtree = "/users";
  auto bytes = rec.Serialize();
  ASSERT_TRUE(bytes.ok());
  auto back = DumpRecord::Parse(*bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->level, 3u);
  EXPECT_EQ(back->base_time, 500);
  EXPECT_EQ(back->volume_name, "home");
  EXPECT_EQ(back->snapshot_name, "nightly.0");
  EXPECT_EQ(back->subtree, "/users");
}

TEST(DumpFormatTest, CorruptionDetected) {
  DumpRecord rec;
  rec.type = DumpRecordType::kEnd;
  auto bytes = rec.Serialize();
  ASSERT_TRUE(bytes.ok());
  (*bytes)[100] ^= 1;
  EXPECT_EQ(DumpRecord::Parse(*bytes).status().code(), ErrorCode::kCorruption);
}

TEST(DumpFormatTest, DirectoryEncodingRoundTrip) {
  std::vector<DirEntry> entries = {
      {10, InodeType::kFile, "alpha"},
      {11, InodeType::kDirectory, "beta"},
      {12, InodeType::kSymlink, "gamma"},
  };
  auto bytes = EncodeDumpDirectory(entries);
  auto back = DecodeDumpDirectory(bytes);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ((*back)[0].name, "alpha");
  EXPECT_EQ((*back)[1].type, InodeType::kDirectory);
  EXPECT_EQ((*back)[2].inum, 12u);
}

// ------------------------------------------------------------- dumpdates ---

TEST(DumpDatesTest, BaseSelection) {
  DumpDates db;
  db.Record({"home", "/", 0, 100, 1, "snap0"});
  db.Record({"home", "/", 1, 200, 2, "snap1"});
  db.Record({"home", "/", 5, 300, 3, "snap5"});
  // A level-9 dump bases on the most recent lower level (5, at t=300).
  auto base = db.BaseFor("home", "/", 9);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->level, 5);
  EXPECT_EQ(base->dump_time, 300);
  // A level-1 dump bases on the level-0.
  base = db.BaseFor("home", "/", 1);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->level, 0);
  // Level 0 has no base; unknown volumes have none either.
  EXPECT_FALSE(db.BaseFor("home", "/", 0).ok());
  EXPECT_FALSE(db.BaseFor("rlse", "/", 5).ok());
}

TEST(DumpDatesTest, RecordReplacesSameLevel) {
  DumpDates db;
  db.Record({"home", "/", 0, 100, 1, "a"});
  db.Record({"home", "/", 0, 500, 9, "b"});
  EXPECT_EQ(db.entries().size(), 1u);
  EXPECT_EQ(db.entries()[0].dump_time, 500);
}

TEST(DumpDatesTest, SerializeRoundTrip) {
  DumpDates db;
  db.Record({"home", "/", 0, 100, 1, "snap0"});
  db.Record({"home", "/users", 2, 250, 7, "snap2"});
  auto back = DumpDates::Deserialize(db.Serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->entries().size(), 2u);
  EXPECT_EQ(back->entries()[1].subtree, "/users");
  EXPECT_EQ(back->entries()[1].dump_time, 250);
}

// ------------------------------------------------------------ round trip ---

TEST(DumpRestoreTest, FullDumpRestoreRoundTrip) {
  DumpFixture f;
  ASSERT_TRUE(f.src->Mkdir("/docs", 0750).ok());
  ASSERT_TRUE(f.src->Mkdir("/docs/sub", 0700).ok());
  const auto a = f.Bytes(10 * kBlockSize + 123, 1);
  const auto b = f.Bytes(3, 2);
  const auto c = f.Bytes(100 * kBlockSize, 3);
  f.MustCreate(f.src.get(), "/docs/a.bin", 0, 0);
  ASSERT_TRUE(
      f.src->Write(*f.src->LookupPath("/docs/a.bin"), 0, a).ok());
  f.MustCreate(f.src.get(), "/docs/sub/b.txt", 0, 0);
  ASSERT_TRUE(
      f.src->Write(*f.src->LookupPath("/docs/sub/b.txt"), 0, b).ok());
  f.MustCreate(f.src.get(), "/big.bin", 0, 0);
  ASSERT_TRUE(f.src->Write(*f.src->LookupPath("/big.bin"), 0, c).ok());

  LogicalDumpOutput dump = f.Dump();
  EXPECT_EQ(dump.stats.files_dumped, 3u);
  EXPECT_EQ(dump.stats.dirs_dumped, 3u);  // /, /docs, /docs/sub

  LogicalRestoreOptions opt;
  auto restored = RunLogicalRestore(f.dst.get(), dump.stream, opt);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->stats.files_restored, 3u);
  EXPECT_EQ(restored->stats.dirs_created, 2u);  // root already exists

  f.ExpectFile(f.dst.get(), "/docs/a.bin", a);
  f.ExpectFile(f.dst.get(), "/docs/sub/b.txt", b);
  f.ExpectFile(f.dst.get(), "/big.bin", c);
  // Attributes carried over.
  auto dir_attr = f.dst->GetAttr(*f.dst->LookupPath("/docs"));
  ASSERT_TRUE(dir_attr.ok());
  EXPECT_EQ(dir_attr->mode, 0750);
}

TEST(DumpRestoreTest, SparseFilePreservedThroughDump) {
  DumpFixture f;
  auto inum = f.src->Create("/sparse", 0644);
  ASSERT_TRUE(inum.ok());
  const auto tail = f.Bytes(100, 5);
  ASSERT_TRUE(f.src->Write(*inum, 50 * kBlockSize, tail).ok());
  LogicalDumpOutput dump = f.Dump();
  // Holes are not written to the stream.
  EXPECT_EQ(dump.stats.data_blocks, 1u);
  EXPECT_EQ(dump.stats.holes_skipped, 50u);

  LogicalRestoreOptions opt;
  ASSERT_TRUE(RunLogicalRestore(f.dst.get(), dump.stream, opt).ok());
  auto restored_inum = f.dst->LookupPath("/sparse");
  ASSERT_TRUE(restored_inum.ok());
  auto attrs = f.dst->GetAttr(*restored_inum);
  EXPECT_EQ(attrs->size, 50 * kBlockSize + 100);
  std::vector<uint8_t> back;
  ASSERT_TRUE(f.dst->Read(*restored_inum, 50 * kBlockSize, 100, &back).ok());
  EXPECT_EQ(back, tail);
  // Restored holes consume no blocks.
  ASSERT_TRUE(f.dst->ConsistencyPoint().ok());
  auto reader = f.dst->LiveReader();
  auto ptrs = reader.PointerMap(*reader.ReadInode(*restored_inum));
  ASSERT_TRUE(ptrs.ok());
  size_t mapped = 0;
  for (uint32_t p : *ptrs) {
    mapped += p != 0 ? 1 : 0;
  }
  EXPECT_EQ(mapped, 1u);
}

TEST(DumpRestoreTest, HardLinksAndSymlinksSurvive) {
  DumpFixture f;
  const auto data = f.Bytes(5000, 9);
  f.MustCreate(f.src.get(), "/original", 0, 0);
  ASSERT_TRUE(f.src->Write(*f.src->LookupPath("/original"), 0, data).ok());
  ASSERT_TRUE(f.src->Mkdir("/d", 0755).ok());
  ASSERT_TRUE(f.src->Link("/original", "/d/alias").ok());
  ASSERT_TRUE(f.src->SymlinkAt("/original", "/ptr").ok());

  LogicalDumpOutput dump = f.Dump();
  EXPECT_EQ(dump.stats.files_dumped, 2u);  // hard link dumped once + symlink

  LogicalRestoreOptions opt;
  auto restored = RunLogicalRestore(f.dst.get(), dump.stream, opt);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->stats.hard_links_restored, 1u);
  EXPECT_EQ(restored->stats.symlinks_restored, 1u);

  auto orig = f.dst->LookupPath("/original");
  auto alias = f.dst->LookupPath("/d/alias");
  ASSERT_TRUE(orig.ok());
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(*orig, *alias) << "hard link must share the inode";
  EXPECT_EQ(f.dst->GetAttr(*orig)->nlink, 2);
  auto sym = f.dst->LookupPath("/ptr");
  ASSERT_TRUE(sym.ok());
  EXPECT_EQ(*f.dst->ReadSymlink(*sym), "/original");
}

TEST(DumpRestoreTest, EmptyFilesAndDirsRestored) {
  DumpFixture f;
  ASSERT_TRUE(f.src->Create("/empty", 0604).ok());
  ASSERT_TRUE(f.src->Mkdir("/hollow", 0711).ok());
  LogicalDumpOutput dump = f.Dump();
  LogicalRestoreOptions opt;
  ASSERT_TRUE(RunLogicalRestore(f.dst.get(), dump.stream, opt).ok());
  auto inum = f.dst->LookupPath("/empty");
  ASSERT_TRUE(inum.ok());
  EXPECT_EQ(f.dst->GetAttr(*inum)->size, 0u);
  EXPECT_EQ(f.dst->GetAttr(*inum)->mode, 0604);
  auto dir = f.dst->LookupPath("/hollow");
  ASSERT_TRUE(dir.ok());
  EXPECT_EQ(f.dst->GetAttr(*dir)->mode, 0711);
}

TEST(DumpRestoreTest, PortableAndKernelModesAgreeOnContent) {
  for (const auto mode : {LogicalRestoreOptions::Mode::kPortable,
                          LogicalRestoreOptions::Mode::kKernel}) {
    DumpFixture f;
    ASSERT_TRUE(f.src->Mkdir("/x", 0705).ok());
    const auto data = f.Bytes(20000, 4);
    f.MustCreate(f.src.get(), "/x/file", 0, 0);
    ASSERT_TRUE(f.src->Write(*f.src->LookupPath("/x/file"), 0, data).ok());
    LogicalDumpOutput dump = f.Dump();
    LogicalRestoreOptions opt;
    opt.mode = mode;
    auto restored = RunLogicalRestore(f.dst.get(), dump.stream, opt);
    ASSERT_TRUE(restored.ok());
    f.ExpectFile(f.dst.get(), "/x/file", data);
    auto dir = f.dst->GetAttr(*f.dst->LookupPath("/x"));
    EXPECT_EQ(dir->mode, 0705) << "both modes must end with correct perms";
  }
}

TEST(DumpRestoreTest, RestoreIntoSubdirectory) {
  DumpFixture f;
  const auto data = f.Bytes(100, 8);
  f.MustCreate(f.src.get(), "/file", 0, 0);
  ASSERT_TRUE(f.src->Write(*f.src->LookupPath("/file"), 0, data).ok());
  LogicalDumpOutput dump = f.Dump();
  ASSERT_TRUE(f.dst->Mkdir("/recovered", 0755).ok());
  LogicalRestoreOptions opt;
  opt.target_dir = "/recovered";
  ASSERT_TRUE(RunLogicalRestore(f.dst.get(), dump.stream, opt).ok());
  f.ExpectFile(f.dst.get(), "/recovered/file", data);
}

// --------------------------------------------------------------- subtree ---

TEST(DumpRestoreTest, SubtreeDump) {
  DumpFixture f;
  ASSERT_TRUE(f.src->Mkdir("/keep", 0755).ok());
  ASSERT_TRUE(f.src->Mkdir("/skip", 0755).ok());
  const auto kept = f.Bytes(5000, 10);
  f.MustCreate(f.src.get(), "/keep/file", 0, 0);
  ASSERT_TRUE(f.src->Write(*f.src->LookupPath("/keep/file"), 0, kept).ok());
  f.MustCreate(f.src.get(), "/skip/other", 3000, 11);

  LogicalDumpOutput dump = f.Dump(0, 0, "/keep");
  EXPECT_EQ(dump.stats.files_dumped, 1u);

  LogicalRestoreOptions opt;
  auto restored = RunLogicalRestore(f.dst.get(), dump.stream, opt);
  ASSERT_TRUE(restored.ok());
  // The dump root maps to the restore target.
  f.ExpectFile(f.dst.get(), "/file", kept);
  EXPECT_FALSE(f.dst->LookupPath("/skip").ok());
}

TEST(DumpRestoreTest, ExcludeFilterSkipsSubtrees) {
  DumpFixture f;
  ASSERT_TRUE(f.src->Mkdir("/src", 0755).ok());
  ASSERT_TRUE(f.src->Mkdir("/src/.cache", 0755).ok());
  f.MustCreate(f.src.get(), "/src/real.c", 2000, 12);
  f.MustCreate(f.src.get(), "/src/.cache/junk", 9000, 13);
  f.MustCreate(f.src.get(), "/core", 5000, 14);

  const std::string snap = "s";
  ASSERT_TRUE(f.src->CreateSnapshot(snap).ok());
  LogicalDumpOptions opt;
  opt.dump_time = f.env.now();
  opt.exclude = [](const std::string& name) {
    return name == ".cache" || name == "core";
  };
  auto reader = f.src->SnapshotReader(snap);
  auto dump = RunLogicalDump(*reader, opt);
  ASSERT_TRUE(dump.ok());
  EXPECT_EQ(dump->stats.files_dumped, 1u);

  LogicalRestoreOptions ropt;
  ASSERT_TRUE(RunLogicalRestore(f.dst.get(), dump->stream, ropt).ok());
  EXPECT_TRUE(f.dst->LookupPath("/src/real.c").ok());
  EXPECT_FALSE(f.dst->LookupPath("/src/.cache").ok());
  EXPECT_FALSE(f.dst->LookupPath("/core").ok());
}

// ----------------------------------------------------- stupidity recovery ---

TEST(DumpRestoreTest, SingleFileRestore) {
  DumpFixture f;
  ASSERT_TRUE(f.src->Mkdir("/users", 0755).ok());
  ASSERT_TRUE(f.src->Mkdir("/users/alice", 0700).ok());
  const auto precious = f.Bytes(7777, 20);
  f.MustCreate(f.src.get(), "/users/alice/thesis.tex", 0, 0);
  ASSERT_TRUE(f.src
                  ->Write(*f.src->LookupPath("/users/alice/thesis.tex"), 0,
                          precious)
                  .ok());
  f.MustCreate(f.src.get(), "/users/alice/notes.txt", 100, 21);
  f.MustCreate(f.src.get(), "/users/bob_file", 200, 22);

  LogicalDumpOutput dump = f.Dump();

  LogicalRestoreOptions opt;
  opt.select = {"/users/alice/thesis.tex"};
  auto restored = RunLogicalRestore(f.dst.get(), dump.stream, opt);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->stats.files_restored, 1u);
  f.ExpectFile(f.dst.get(), "/users/alice/thesis.tex", precious);
  // Nothing else was laid on the file system.
  EXPECT_FALSE(f.dst->LookupPath("/users/alice/notes.txt").ok());
  EXPECT_FALSE(f.dst->LookupPath("/users/bob_file").ok());
}

TEST(DumpRestoreTest, SubtreeSelectionRestoresDescendants) {
  DumpFixture f;
  ASSERT_TRUE(f.src->Mkdir("/a", 0755).ok());
  ASSERT_TRUE(f.src->Mkdir("/a/b", 0755).ok());
  f.MustCreate(f.src.get(), "/a/b/one", 1000, 30);
  f.MustCreate(f.src.get(), "/a/two", 1000, 31);
  f.MustCreate(f.src.get(), "/three", 1000, 32);

  LogicalDumpOutput dump = f.Dump();
  LogicalRestoreOptions opt;
  opt.select = {"/a"};
  auto restored = RunLogicalRestore(f.dst.get(), dump.stream, opt);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(f.dst->LookupPath("/a/b/one").ok());
  EXPECT_TRUE(f.dst->LookupPath("/a/two").ok());
  EXPECT_FALSE(f.dst->LookupPath("/three").ok());
}

// ------------------------------------------------------------ incremental ---

TEST(DumpRestoreTest, IncrementalChainWithDeletesAndRenames) {
  DumpFixture f;
  // Level 0 state.
  ASSERT_TRUE(f.src->Mkdir("/proj", 0755).ok());
  const auto keep = f.Bytes(4000, 40);
  const auto doomed = f.Bytes(3000, 41);
  const auto moved = f.Bytes(2000, 42);
  f.MustCreate(f.src.get(), "/proj/keep.c", 0, 0);
  ASSERT_TRUE(f.src->Write(*f.src->LookupPath("/proj/keep.c"), 0, keep).ok());
  f.MustCreate(f.src.get(), "/proj/doomed.c", 0, 0);
  ASSERT_TRUE(
      f.src->Write(*f.src->LookupPath("/proj/doomed.c"), 0, doomed).ok());
  f.MustCreate(f.src.get(), "/proj/moved.c", 0, 0);
  ASSERT_TRUE(
      f.src->Write(*f.src->LookupPath("/proj/moved.c"), 0, moved).ok());

  f.AdvanceTime(5 * kSecond);
  LogicalDumpOutput level0 = f.Dump(0);
  const int64_t level0_time = f.env.now();

  // Restore level 0 to the destination, carrying a symtable.
  RestoreSymtable symtable;
  {
    LogicalRestoreOptions opt;
    opt.symtable = &symtable;
    ASSERT_TRUE(RunLogicalRestore(f.dst.get(), level0.stream, opt).ok());
  }
  EXPECT_TRUE(f.dst->LookupPath("/proj/doomed.c").ok());

  // Mutate: advance time so changed inodes sort after the base.
  f.AdvanceTime(10 * kSecond);
  ASSERT_TRUE(f.src->Unlink("/proj/doomed.c").ok());
  ASSERT_TRUE(f.src->Rename("/proj/moved.c", "/proj/renamed.c").ok());
  const auto fresh = f.Bytes(6000, 43);
  f.MustCreate(f.src.get(), "/proj/new.c", 0, 0);
  ASSERT_TRUE(f.src->Write(*f.src->LookupPath("/proj/new.c"), 0, fresh).ok());

  // Level 1 incremental.
  LogicalDumpOutput level1 = f.Dump(1, level0_time);
  EXPECT_LT(level1.stream.size(), level0.stream.size());

  // Apply it with reconciliation.
  {
    LogicalRestoreOptions opt;
    opt.symtable = &symtable;
    opt.apply_moves_and_deletes = true;
    auto restored = RunLogicalRestore(f.dst.get(), level1.stream, opt);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_GE(restored->stats.files_deleted, 1u);
  }

  EXPECT_FALSE(f.dst->LookupPath("/proj/doomed.c").ok())
      << "deletion must propagate through the incremental";
  EXPECT_FALSE(f.dst->LookupPath("/proj/moved.c").ok());
  f.ExpectFile(f.dst.get(), "/proj/renamed.c", moved);
  f.ExpectFile(f.dst.get(), "/proj/new.c", fresh);
  f.ExpectFile(f.dst.get(), "/proj/keep.c", keep);
}

TEST(DumpRestoreTest, IncrementalDumpsOnlyChangedFiles) {
  DumpFixture f;
  for (int i = 0; i < 10; ++i) {
    f.MustCreate(f.src.get(), "/file" + std::to_string(i), 5000, 50 + i);
  }
  f.AdvanceTime(5 * kSecond);
  LogicalDumpOutput level0 = f.Dump(0);
  EXPECT_EQ(level0.stats.files_dumped, 10u);
  const int64_t base = f.env.now();

  f.AdvanceTime(10 * kSecond);
  // Touch two files.
  ASSERT_TRUE(
      f.src->Write(*f.src->LookupPath("/file3"), 100, f.Bytes(50, 99)).ok());
  ASSERT_TRUE(
      f.src->Write(*f.src->LookupPath("/file7"), 0, f.Bytes(50, 98)).ok());

  LogicalDumpOutput level1 = f.Dump(1, base);
  EXPECT_EQ(level1.stats.files_dumped, 2u);
  // usedinomap still records every inode in the subtree.
  EXPECT_EQ(level1.stats.inodes_in_subtree, level0.stats.inodes_in_subtree);
}

TEST(DumpRestoreTest, RenamedDirectoryKeepsUnchangedChildren) {
  DumpFixture f;
  ASSERT_TRUE(f.src->Mkdir("/olddir", 0755).ok());
  const auto payload = f.Bytes(3000, 60);
  f.MustCreate(f.src.get(), "/olddir/stable", 0, 0);
  ASSERT_TRUE(
      f.src->Write(*f.src->LookupPath("/olddir/stable"), 0, payload).ok());

  f.AdvanceTime(5 * kSecond);
  LogicalDumpOutput level0 = f.Dump(0);
  const int64_t base = f.env.now();
  RestoreSymtable symtable;
  {
    LogicalRestoreOptions opt;
    opt.symtable = &symtable;
    ASSERT_TRUE(RunLogicalRestore(f.dst.get(), level0.stream, opt).ok());
  }

  f.AdvanceTime(10 * kSecond);
  ASSERT_TRUE(f.src->Rename("/olddir", "/newdir").ok());

  LogicalDumpOutput level1 = f.Dump(1, base);
  // The unchanged child file is NOT on the incremental tape...
  EXPECT_EQ(level1.stats.files_dumped, 0u);
  {
    LogicalRestoreOptions opt;
    opt.symtable = &symtable;
    opt.apply_moves_and_deletes = true;
    auto restored = RunLogicalRestore(f.dst.get(), level1.stream, opt);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored->stats.dirs_renamed, 1u);
  }
  // ...yet it survives under the renamed directory.
  EXPECT_FALSE(f.dst->LookupPath("/olddir").ok());
  f.ExpectFile(f.dst.get(), "/newdir/stable", payload);
}

// -------------------------------------------------------------- corruption ---

TEST(DumpRestoreTest, CorruptionLosesOnlyTheAffectedFile) {
  DumpFixture f;
  std::map<std::string, std::vector<uint8_t>> contents;
  for (int i = 0; i < 12; ++i) {
    const std::string path = "/file" + std::to_string(i);
    contents[path] = f.Bytes(4 * kBlockSize, 70 + i);
    f.MustCreate(f.src.get(), path, 0, 0);
    ASSERT_TRUE(
        f.src->Write(*f.src->LookupPath(path), 0, contents[path]).ok());
  }
  LogicalDumpOutput dump = f.Dump();

  // Corrupt a region in the middle of the file section of the stream.
  std::vector<uint8_t> corrupted = dump.stream;
  const size_t hit = corrupted.size() / 2;
  for (size_t i = hit; i < hit + 2048 && i < corrupted.size(); ++i) {
    corrupted[i] ^= 0x5A;
  }

  LogicalRestoreOptions opt;
  auto restored = RunLogicalRestore(f.dst.get(), corrupted, opt);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_GT(restored->stats.corrupt_records_skipped +
                restored->stats.files_lost_to_corruption,
            0u);
  // Most files survive: corruption cost at most a couple of them.
  int survivors = 0;
  for (const auto& [path, want] : contents) {
    auto inum = f.dst->LookupPath(path);
    if (!inum.ok()) {
      continue;
    }
    std::vector<uint8_t> got;
    if (!f.dst->Read(*inum, 0, want.size(), &got).ok() || got != want) {
      continue;
    }
    ++survivors;
  }
  EXPECT_GE(survivors, 9) << "minor corruption must only lose nearby files";
}

TEST(DumpRestoreTest, TruncatedStreamStillRestoresPrefix) {
  DumpFixture f;
  const auto early = f.Bytes(2 * kBlockSize, 80);
  f.MustCreate(f.src.get(), "/aaa_first", 0, 0);
  ASSERT_TRUE(f.src->Write(*f.src->LookupPath("/aaa_first"), 0, early).ok());
  f.MustCreate(f.src.get(), "/zzz_last", 64 * kBlockSize, 81);
  LogicalDumpOutput dump = f.Dump();

  std::vector<uint8_t> truncated(
      dump.stream.begin(),
      dump.stream.begin() + static_cast<long>(dump.stream.size() / 2));
  LogicalRestoreOptions opt;
  auto restored = RunLogicalRestore(f.dst.get(), truncated, opt);
  ASSERT_TRUE(restored.ok());
  f.ExpectFile(f.dst.get(), "/aaa_first", early);
}

TEST(DumpRestoreTest, VeryLongSymlinkTargetSurvives) {
  // Deep trees produce symlink targets longer than a 1 KB dump header can
  // embed; those must travel as data blocks (regression test).
  DumpFixture f;
  std::string deep = "";
  for (int i = 0; i < 30; ++i) {
    deep += "/" + std::string(20, static_cast<char>('a' + i % 26));
    ASSERT_TRUE(f.src->Mkdir(deep, 0755).ok());
  }
  ASSERT_GT(deep.size(), kMaxNameLen);
  ASSERT_TRUE(f.src->Create(deep + "/target", 0644).ok());
  auto link = f.src->SymlinkAt(deep + "/target", "/longlink");
  ASSERT_TRUE(link.ok());

  LogicalDumpOutput dump = f.Dump();
  LogicalRestoreOptions opt;
  auto restored = RunLogicalRestore(f.dst.get(), dump.stream, opt);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  auto inum = f.dst->LookupPath("/longlink");
  ASSERT_TRUE(inum.ok());
  auto target = f.dst->ReadSymlink(*inum);
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, deep + "/target");
}

// --------------------------------------------------------------- symtable ---

TEST(SymtableTest, SerializeRoundTrip) {
  RestoreSymtable t;
  t.Set(10, "/a/b");
  t.Set(20, "/c");
  auto back = RestoreSymtable::Deserialize(t.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back->PathOf(10), "/a/b");
  EXPECT_EQ(*back->PathOf(20), "/c");
  EXPECT_FALSE(back->PathOf(30).ok());
}

TEST(SymtableTest, RenamePrefix) {
  RestoreSymtable t;
  t.Set(1, "/old/x");
  t.Set(2, "/old/y/z");
  t.Set(3, "/other");
  t.RenamePrefix("/old/", "/new/");
  EXPECT_EQ(*t.PathOf(1), "/new/x");
  EXPECT_EQ(*t.PathOf(2), "/new/y/z");
  EXPECT_EQ(*t.PathOf(3), "/other");
}

TEST(SymtableTest, DropMissing) {
  RestoreSymtable t;
  t.Set(1, "/a");
  t.Set(2, "/b");
  Bitmap used(10);
  used.Set(1);
  auto dropped = t.DropMissing(used);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].first, 2u);
  EXPECT_TRUE(t.Has(1));
  EXPECT_FALSE(t.Has(2));
}

// A randomized round-trip sweep across seeds: arbitrary trees must survive
// dump + restore exactly.
class DumpRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DumpRoundTripProperty, RandomTreeRoundTrips) {
  DumpFixture f;
  Rng rng(GetParam());
  std::vector<std::string> dirs = {""};
  std::map<std::string, std::vector<uint8_t>> files;
  for (int i = 0; i < 25; ++i) {
    const std::string& parent = dirs[rng.Below(dirs.size())];
    if (rng.Chance(0.3)) {
      const std::string path = parent + "/d" + std::to_string(i);
      ASSERT_TRUE(f.src->Mkdir(path, 0700 + (i % 8)).ok());
      dirs.push_back(path);
    } else {
      const std::string path = parent + "/f" + std::to_string(i);
      std::vector<uint8_t> data(rng.Below(8 * kBlockSize) + 1);
      rng.Fill(data);
      auto inum = f.src->Create(path, 0600 + (i % 8));
      ASSERT_TRUE(inum.ok());
      uint64_t offset = rng.Chance(0.2) ? rng.Below(4) * kBlockSize : 0;
      ASSERT_TRUE(f.src->Write(*inum, offset, data).ok());
      std::vector<uint8_t> whole;
      EXPECT_TRUE(f.src->Read(*inum, 0, offset + data.size(), &whole).ok());
      files[path] = whole;
    }
  }
  LogicalDumpOutput dump = f.Dump();
  LogicalRestoreOptions opt;
  opt.mode = GetParam() % 2 == 0 ? LogicalRestoreOptions::Mode::kKernel
                                 : LogicalRestoreOptions::Mode::kPortable;
  auto restored = RunLogicalRestore(f.dst.get(), dump.stream, opt);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  for (const auto& [path, want] : files) {
    f.ExpectFile(f.dst.get(), path, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DumpRoundTripProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 1999));

}  // namespace
}  // namespace bkup

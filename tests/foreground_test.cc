// Tests for the live-foreground-load machinery (DESIGN.md §15): the
// two-class priority Resource, the BackupThrottle token bucket, the
// vbn-reporting file-system read path, and — the heart of the suite — the
// determinism contracts of the ForegroundLoad generator: the same seed
// must produce an identical op trace across reruns (with and without a
// concurrent dump), and the op *mix* must not change when a dump runs.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/backup/jobs.h"
#include "src/sim/throttle.h"
#include "src/workload/foreground.h"
#include "src/workload/population.h"

namespace bkup {
namespace {

// ------------------------------------------------------ resource priority ---

Task HoldThenRelease(SimEnvironment* env, Resource* res, int id, int priority,
                     SimDuration hold, std::vector<int>* order,
                     CountdownLatch* done) {
  co_await res->Acquire(1, priority);
  order->push_back(id);
  co_await env->Delay(hold);
  res->Release();
  done->CountDown();
}

TEST(ResourcePriorityTest, ForegroundOvertakesParkedBackground) {
  SimEnvironment env;
  Resource res(&env, 1, "arm");
  std::vector<int> order;
  CountdownLatch done(&env, 3);
  // 1 (background) grabs the unit; 2 (background) parks first; 3
  // (foreground) parks after it — and must still be served first.
  env.Spawn(HoldThenRelease(&env, &res, 1, kPriorityBackground, 10 * kSecond,
                            &order, &done));
  env.Spawn(HoldThenRelease(&env, &res, 2, kPriorityBackground, 1 * kSecond,
                            &order, &done));
  env.Spawn(HoldThenRelease(&env, &res, 3, kPriorityForeground, 1 * kSecond,
                            &order, &done));
  env.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(ResourcePriorityTest, BackgroundProceedsWhenUncontended) {
  SimEnvironment env;
  Resource res(&env, 1, "arm");
  std::vector<int> order;
  CountdownLatch done(&env, 1);
  env.Spawn(HoldThenRelease(&env, &res, 1, kPriorityBackground, kSecond,
                            &order, &done));
  env.Run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(env.now(), kSecond);
}

// ---------------------------------------------------------------- throttle ---

Task AcquireRepeatedly(BackupThrottle* throttle, uint64_t bytes, int times,
                       CountdownLatch* done) {
  for (int i = 0; i < times; ++i) {
    co_await throttle->Acquire(bytes);
  }
  done->CountDown();
}

TEST(BackupThrottleTest, EnforcesConfiguredRate) {
  SimEnvironment env;
  // 1 MB/s with a 1-byte burst: the bucket is effectively always empty, so
  // 4 x 250 KB must take ~1 simulated second.
  BackupThrottle throttle(&env, 1e6, /*burst_bytes=*/1);
  CountdownLatch done(&env, 1);
  env.Spawn(AcquireRepeatedly(&throttle, 250'000, 4, &done));
  env.Run();
  EXPECT_NEAR(SimToSeconds(env.now()), 1.0, 0.01);
  EXPECT_EQ(throttle.stats().requests, 4u);
  EXPECT_EQ(throttle.stats().bytes, 1'000'000u);
  EXPECT_EQ(throttle.stats().throttled_requests, 4u);
}

TEST(BackupThrottleTest, DisabledThrottleIsFree) {
  SimEnvironment env;
  BackupThrottle throttle(&env, /*bytes_per_s=*/0.0);
  CountdownLatch done(&env, 1);
  env.Spawn(AcquireRepeatedly(&throttle, 10 * kMiB, 8, &done));
  env.Run();
  EXPECT_EQ(env.now(), 0);
  EXPECT_EQ(throttle.stats().throttled_requests, 0u);
}

TEST(BackupThrottleTest, RequestLargerThanBurstIsLegal) {
  SimEnvironment env;
  BackupThrottle throttle(&env, 1e6, /*burst_bytes=*/1000);
  CountdownLatch done(&env, 1);
  env.Spawn(AcquireRepeatedly(&throttle, 3'001'000, 1, &done));
  env.Run();
  // Burst covers 1000 bytes; the remaining 3 MB drains at 1 MB/s.
  EXPECT_NEAR(SimToSeconds(env.now()), 3.0, 0.01);
}

// ------------------------------------------------------------ fs vbn read ---

TEST(FilesystemVbnTest, ReadReportsVolumeBlocksAndSkipsDirty) {
  SimEnvironment env;
  VolumeGeometry geom;
  geom.num_raid_groups = 1;
  geom.disks_per_group = 3;
  geom.blocks_per_disk = 2048;
  auto volume = Volume::Create(&env, "v", geom);
  auto fs = std::move(Filesystem::Format(volume.get(), &env)).value();

  auto inum = fs->Create("/a", 0644);
  ASSERT_TRUE(inum.ok());
  const std::vector<uint8_t> data(3 * kBlockSize, 0xAB);
  ASSERT_TRUE(fs->Write(*inum, 0, data).ok());
  ASSERT_TRUE(fs->ConsistencyPoint().ok());

  // Clean file: every block read comes off a real volume block.
  std::vector<uint8_t> out;
  std::vector<Vbn> vbns;
  ASSERT_TRUE(fs->Read(*inum, 0, data.size(), &out, &vbns).ok());
  EXPECT_EQ(vbns.size(), 3u);
  for (Vbn v : vbns) {
    EXPECT_NE(v, 0u);
  }

  // Dirty the middle block: it is now served from memory, so only the two
  // clean blocks report vbns.
  const std::vector<uint8_t> patch(16, 0xCD);
  ASSERT_TRUE(fs->Write(*inum, kBlockSize, patch).ok());
  vbns.clear();
  ASSERT_TRUE(fs->Read(*inum, 0, data.size(), &out, &vbns).ok());
  EXPECT_EQ(vbns.size(), 2u);
}

// -------------------------------------------------- foreground determinism ---

VolumeGeometry FgGeometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 4096;
  return geom;
}

// Snapshot bookkeeping shrunk so a dump's stream phase dominates inside a
// short test window.
FilerModel FastSnapshotModel() {
  FilerModel model = FilerModel::F630();
  model.snapshot_create_time = 2 * kSecond;
  model.snapshot_delete_time = 2 * kSecond;
  return model;
}

struct FgRunResult {
  uint32_t trace_crc = 0;
  uint32_t mix_crc = 0;
  uint64_t total_ops = 0;
  uint64_t errors = 0;
  LatencySummary latency;
  SimDuration dump_elapsed = 0;
  Status dump_status;
};

enum class DumpMode { kNone, kLogical, kImage };

Task DelayedDump(SimEnvironment* env, Filer* filer, Filesystem* fs,
                 TapeDrive* drive, DumpMode mode, BackupQos qos,
                 SimDuration delay, FgRunResult* out, CountdownLatch* done) {
  co_await env->Delay(delay);
  CountdownLatch inner(env, 1);
  if (mode == DumpMode::kLogical) {
    auto result = std::make_unique<LogicalBackupJobResult>();
    LogicalDumpOptions opt;
    opt.volume_name = "home";
    env->Spawn(LogicalBackupJob(filer, fs, drive, opt, result.get(), &inner,
                                {}, nullptr, qos));
    co_await inner.Wait();
    out->dump_elapsed = result->report.elapsed();
    out->dump_status = result->report.status;
  } else {
    auto result = std::make_unique<ImageBackupJobResult>();
    env->Spawn(ImageBackupJob(filer, fs, drive, ImageDumpOptions{},
                              /*delete_snapshot_after=*/true, result.get(),
                              &inner, {}, nullptr, qos));
    co_await inner.Wait();
    out->dump_elapsed = result->report.elapsed();
    out->dump_status = result->report.status;
  }
  done->CountDown();
}

// One full scenario from scratch: fresh environment, volume, population,
// load — optionally with a dump starting 2 s in. Everything simulated, so
// two calls with equal arguments must produce byte-identical results.
FgRunResult RunScenario(uint64_t seed, DumpMode mode,
                        double throttle_mb_per_s = 0.0,
                        int io_priority = kPriorityForeground) {
  SimEnvironment env;
  Filer filer(&env, FastSnapshotModel());
  auto volume = Volume::Create(&env, "home", FgGeometry());
  auto fs = std::move(Filesystem::Format(volume.get(), &env)).value();
  WorkloadParams wp;
  wp.seed = 11;
  wp.target_bytes = 8 * kMiB;
  EXPECT_TRUE(PopulateFilesystem(fs.get(), wp).ok());

  Tape tape("t0", 4ull * kGiB);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&tape);

  ForegroundParams fp;
  fp.seed = seed;
  fp.num_clients = 4;
  // Count-based termination: the op stream is a fixed-length function of the
  // seed, so a concurrent dump stretches the run instead of clipping it.
  fp.ops_per_client = 1200;
  ForegroundLoad load(&filer, fs.get(), fp);

  std::unique_ptr<BackupThrottle> throttle;
  if (throttle_mb_per_s > 0) {
    throttle = std::make_unique<BackupThrottle>(&env, throttle_mb_per_s * 1e6);
  }
  BackupQos qos{throttle.get(), io_priority};

  FgRunResult r;
  const int jobs = mode == DumpMode::kNone ? 1 : 2;
  CountdownLatch done(&env, jobs);
  env.Spawn(load.Run(&done));
  if (mode != DumpMode::kNone) {
    env.Spawn(DelayedDump(&env, &filer, fs.get(), &drive, mode, qos,
                          2 * kSecond, &r, &done));
  }
  env.Run();

  EXPECT_TRUE(r.dump_status.ok()) << r.dump_status.ToString();
  r.trace_crc = load.TraceCrc();
  r.mix_crc = load.OpMixCrc();
  r.total_ops = load.stats().total_ops();
  r.errors = load.stats().errors;
  r.latency = load.Summarize();
  return r;
}

TEST(ForegroundDeterminismTest, SameSeedSameTraceWithoutDump) {
  const FgRunResult a = RunScenario(42, DumpMode::kNone);
  const FgRunResult b = RunScenario(42, DumpMode::kNone);
  EXPECT_GT(a.total_ops, 100u);
  EXPECT_EQ(a.errors, 0u);
  EXPECT_EQ(a.trace_crc, b.trace_crc);
  EXPECT_EQ(a.mix_crc, b.mix_crc);
  EXPECT_EQ(a.total_ops, b.total_ops);
}

TEST(ForegroundDeterminismTest, SameSeedSameTraceWithConcurrentLogicalDump) {
  const FgRunResult a = RunScenario(42, DumpMode::kLogical);
  const FgRunResult b = RunScenario(42, DumpMode::kLogical);
  EXPECT_EQ(a.errors, 0u);
  EXPECT_EQ(a.trace_crc, b.trace_crc);
  EXPECT_EQ(a.mix_crc, b.mix_crc);
  EXPECT_EQ(a.dump_elapsed, b.dump_elapsed);
}

TEST(ForegroundDeterminismTest, SameSeedSameTraceWithConcurrentImageDump) {
  const FgRunResult a = RunScenario(42, DumpMode::kImage);
  const FgRunResult b = RunScenario(42, DumpMode::kImage);
  EXPECT_EQ(a.trace_crc, b.trace_crc);
  EXPECT_EQ(a.dump_elapsed, b.dump_elapsed);
}

TEST(ForegroundDeterminismTest, DumpChangesTimingButNotOpMix) {
  const FgRunResult solo = RunScenario(42, DumpMode::kNone);
  const FgRunResult logical = RunScenario(42, DumpMode::kLogical);
  const FgRunResult image = RunScenario(42, DumpMode::kImage);
  // The op parameter stream is interleaving-independent by construction.
  EXPECT_EQ(solo.mix_crc, logical.mix_crc);
  EXPECT_EQ(solo.mix_crc, image.mix_crc);
  EXPECT_EQ(solo.total_ops, logical.total_ops);
}

TEST(ForegroundDeterminismTest, DifferentSeedsDifferentTraces) {
  const FgRunResult a = RunScenario(42, DumpMode::kNone);
  const FgRunResult b = RunScenario(43, DumpMode::kNone);
  EXPECT_NE(a.mix_crc, b.mix_crc);
}

TEST(ForegroundQosTest, ThrottledBackgroundDumpRunsLongerButHurtsLess) {
  const FgRunResult unthrottled = RunScenario(42, DumpMode::kLogical);
  const FgRunResult throttled =
      RunScenario(42, DumpMode::kLogical, /*throttle_mb_per_s=*/4.0,
                  kPriorityBackground);
  // The throttle caps the stream below the drive's rate, so the dump
  // elongates; the demotion + cap keep foreground latency no worse.
  EXPECT_GT(throttled.dump_elapsed, unthrottled.dump_elapsed);
  EXPECT_LE(throttled.latency.p99_us, unthrottled.latency.p99_us * 1.001);
}

}  // namespace
}  // namespace bkup

// Tests for the simulated devices: disk data + timing model, tape drives,
// tape library.
#include <gtest/gtest.h>

#include <limits>

#include "src/block/block.h"
#include "src/block/disk.h"
#include "src/block/tape.h"
#include "src/block/tape_library.h"
#include "src/util/random.h"

namespace bkup {
namespace {

Block MakeBlock(uint8_t fill) {
  Block b;
  b.data.fill(fill);
  return b;
}

// ----------------------------------------------------------------- Block ---

TEST(BlockTest, ZeroAndIsZero) {
  Block b = MakeBlock(7);
  EXPECT_FALSE(b.IsZero());
  b.Zero();
  EXPECT_TRUE(b.IsZero());
}

TEST(BlockTest, XorWithIsInvolution) {
  Rng rng(1);
  Block a, b;
  rng.Fill(a.bytes());
  rng.Fill(b.bytes());
  Block c = a;
  c.XorWith(b);
  EXPECT_NE(c, a);
  c.XorWith(b);
  EXPECT_EQ(c, a);
}

TEST(BlockTest, CopyFromPartial) {
  Block b;
  std::vector<uint8_t> src = {1, 2, 3};
  b.CopyFrom(src, 100);
  EXPECT_EQ(b.data[100], 1);
  EXPECT_EQ(b.data[102], 3);
  EXPECT_EQ(b.data[103], 0);
}

// ------------------------------------------------------------------ Disk ---

TEST(DiskTest, ReadUnwrittenIsZeros) {
  SimEnvironment env;
  Disk d(&env, "d0", 1000);
  Block b = MakeBlock(0xFF);
  ASSERT_TRUE(d.ReadData(42, &b).ok());
  EXPECT_TRUE(b.IsZero());
}

TEST(DiskTest, WriteReadRoundTrip) {
  SimEnvironment env;
  Disk d(&env, "d0", 1000);
  Block w = MakeBlock(0xAB);
  ASSERT_TRUE(d.WriteData(7, w).ok());
  Block r;
  ASSERT_TRUE(d.ReadData(7, &r).ok());
  EXPECT_EQ(r, w);
}

TEST(DiskTest, OutOfRangeRejected) {
  SimEnvironment env;
  Disk d(&env, "d0", 10);
  Block b;
  EXPECT_EQ(d.ReadData(10, &b).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(d.WriteData(11, b).code(), ErrorCode::kInvalidArgument);
}

TEST(DiskTest, FailedDiskErrorsAllIo) {
  SimEnvironment env;
  Disk d(&env, "d0", 10);
  Block b;
  ASSERT_TRUE(d.WriteData(3, MakeBlock(1)).ok());
  d.Fail();
  EXPECT_EQ(d.ReadData(3, &b).code(), ErrorCode::kIoError);
  EXPECT_EQ(d.WriteData(3, b).code(), ErrorCode::kIoError);
  d.ReplaceWithBlank();
  ASSERT_TRUE(d.ReadData(3, &b).ok());
  EXPECT_TRUE(b.IsZero()) << "replacement drive must be blank";
}

TEST(DiskTest, SequentialAccessIsTransferOnly) {
  SimEnvironment env;
  DiskTiming t;
  t.transfer_mb_per_s = 10.0;
  Disk d(&env, "d0", 1u << 20, t);
  // Head at 0, read 256 blocks at 0: 1 MiB at 10 MB/s ~= 104.8 ms.
  const SimDuration seq = d.AccessTime(0, 256);
  EXPECT_NEAR(static_cast<double>(seq), 104.8 * kMillisecond,
              1.0 * kMillisecond);
}

TEST(DiskTest, RandomAccessPaysSeekAndRotation) {
  SimEnvironment env;
  Disk d(&env, "d0", 1u << 20);
  const SimDuration near = d.AccessTime(0, 1);
  const SimDuration far = d.AccessTime(1u << 19, 1);
  EXPECT_GT(far, near + 5 * kMillisecond);
}

TEST(DiskTest, SeekCostGrowsWithDistance) {
  SimEnvironment env;
  Disk d(&env, "d0", 1u << 20);
  const SimDuration mid = d.AccessTime(1u << 16, 1);
  const SimDuration far = d.AccessTime(1u << 19, 1);
  EXPECT_GT(far, mid);
}

Task DoAccess(Disk* d, Dbn dbn, uint64_t count) {
  co_await d->TimedAccess(dbn, count);
}

TEST(DiskTest, TimedAccessMovesHeadAndCountsBytes) {
  SimEnvironment env;
  Disk d(&env, "d0", 1u << 20);
  env.Spawn(DoAccess(&d, 100, 8));
  env.Run();
  EXPECT_EQ(d.head_position(), 108u);
  EXPECT_EQ(d.bytes_transferred(), 8 * kBlockSize);
  EXPECT_GT(d.arm().BusyIntegral(), 0);
}

Task DoTimedAccess(Disk* d, Dbn dbn, uint64_t count, Status* st) {
  co_await d->TimedAccess(dbn, count, st);
}

Task FailAt(SimEnvironment* env, Disk* d, SimDuration when) {
  co_await env->Delay(when);
  d->Fail();
}

TEST(DiskTest, FailDuringInFlightAccessSurfacesIoError) {
  SimEnvironment env;
  Disk d(&env, "d0", 1u << 20);
  // A long transfer (4096 blocks ~ 1.7 s) with a Fail() landing mid-flight:
  // the waiting job must see kIoError, and the head/byte counters must not
  // pretend the access completed.
  Status st;
  env.Spawn(DoTimedAccess(&d, 0, 4096, &st));
  env.Spawn(FailAt(&env, &d, 100 * kMillisecond));
  env.Run();
  EXPECT_EQ(st.code(), ErrorCode::kIoError);
  EXPECT_EQ(d.head_position(), 0u);
  EXPECT_EQ(d.bytes_transferred(), 0u);
}

TEST(DiskTest, SequentialScanFasterThanRandomScan) {
  // The asymmetry that drives the whole paper: N blocks sequentially vs the
  // same N blocks scattered.
  SimEnvironment env;
  Disk seq_disk(&env, "seq", 1u << 20);
  Disk rnd_disk(&env, "rnd", 1u << 20);
  constexpr int kN = 64;

  for (int i = 0; i < kN; ++i) {
    env.Spawn(DoAccess(&seq_disk, static_cast<Dbn>(i) * 8, 8));
  }
  const SimTime t0 = env.now();
  env.Run();
  const SimDuration seq_time = env.now() - t0;

  Rng rng(5);
  const SimTime t1 = env.now();
  for (int i = 0; i < kN; ++i) {
    env.Spawn(DoAccess(&rnd_disk, rng.Below(1u << 20), 8));
  }
  env.Run();
  const SimDuration rnd_time = env.now() - t1;
  EXPECT_GT(rnd_time, 3 * seq_time);
}

// ------------------------------------------------------------------ Tape ---

TEST(TapeTest, WriteReadRoundTrip) {
  SimEnvironment env;
  Tape media("t0", 1 * kGiB);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&media);
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  ASSERT_TRUE(drive.WriteData(data).ok());
  EXPECT_EQ(drive.position(), 5u);
  drive.Rewind();
  std::vector<uint8_t> back(5);
  ASSERT_TRUE(drive.ReadData(back).ok());
  EXPECT_EQ(back, data);
}

TEST(TapeTest, NoMediaFails) {
  SimEnvironment env;
  TapeDrive drive(&env, "dlt0");
  std::vector<uint8_t> data(10);
  EXPECT_EQ(drive.WriteData(data).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(drive.ReadData(data).code(), ErrorCode::kFailedPrecondition);
}

TEST(TapeTest, EndOfTapeIsNoSpace) {
  SimEnvironment env;
  Tape media("t0", 100);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&media);
  std::vector<uint8_t> data(101);
  EXPECT_EQ(drive.WriteData(data).code(), ErrorCode::kNoSpace);
}

TEST(TapeTest, ReadPastRecordedDataIsCorruption) {
  SimEnvironment env;
  Tape media("t0", 1000);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&media);
  std::vector<uint8_t> data(10);
  ASSERT_TRUE(drive.WriteData(data).ok());
  drive.Rewind();
  std::vector<uint8_t> big(11);
  EXPECT_EQ(drive.ReadData(big).code(), ErrorCode::kCorruption);
}

TEST(TapeTest, MidTapeWriteTruncates) {
  SimEnvironment env;
  Tape media("t0", 1000);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&media);
  std::vector<uint8_t> data(100, 0xEE);
  ASSERT_TRUE(drive.WriteData(data).ok());
  ASSERT_TRUE(drive.SeekTo(40).ok());
  std::vector<uint8_t> patch(10, 0x11);
  ASSERT_TRUE(drive.WriteData(patch).ok());
  EXPECT_EQ(media.size(), 50u) << "serpentine write truncates the tail";
}

TEST(TapeTest, CorruptionFlipsBits) {
  Tape media("t0", 1000);
  media.mutable_bytes().assign(100, 0x00);
  ASSERT_TRUE(media.CorruptRange(10, 5).ok());
  EXPECT_EQ(media.contents()[9], 0x00);
  EXPECT_EQ(media.contents()[10], 0x5A);
  EXPECT_EQ(media.contents()[14], 0x5A);
  EXPECT_EQ(media.contents()[15], 0x00);
}

TEST(TapeTest, CorruptRangeRejectsAndClampsOutOfBounds) {
  Tape media("t0", 1000);
  media.mutable_bytes().assign(100, 0x00);
  // Starting beyond the recorded data is an error and must not write.
  EXPECT_EQ(media.CorruptRange(100, 5).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(media.CorruptRange(500, 1).code(), ErrorCode::kInvalidArgument);
  for (uint8_t b : media.contents()) {
    EXPECT_EQ(b, 0x00);
  }
  // A range running off the end of the data clamps (the defect extends
  // into blank media) — no overflow, no out-of-bounds write.
  ASSERT_TRUE(media.CorruptRange(98, std::numeric_limits<uint64_t>::max())
                  .ok());
  EXPECT_EQ(media.contents()[97], 0x00);
  EXPECT_EQ(media.contents()[98], 0x5A);
  EXPECT_EQ(media.contents()[99], 0x5A);
  EXPECT_EQ(media.size(), 100u);
}

Task DoTapeWrite(TapeDrive* drive, std::span<const uint8_t> data,
                 Status* status) {
  co_await drive->TimedWrite(data, status);
}

TEST(TapeTest, StreamingRateGovernsTimedWrites) {
  SimEnvironment env;
  Tape media("t0", 1 * kGiB);
  TapeTiming t;
  t.stream_mb_per_s = 10.0;
  TapeDrive drive(&env, "dlt0", t);
  drive.LoadMedia(&media);
  std::vector<uint8_t> chunk(1'000'000);
  Status st;
  env.Spawn(DoTapeWrite(&drive, chunk, &st));
  env.Run();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(env.now(), SecondsToSim(0.1));
  EXPECT_EQ(drive.repositions(), 0u);
}

Task GappyWriter(SimEnvironment* env, TapeDrive* drive, SimDuration gap,
                 Status* status) {
  std::vector<uint8_t> chunk(100'000);
  for (int i = 0; i < 3; ++i) {
    co_await drive->TimedWrite(chunk, status);
    co_await env->Delay(gap);
  }
}

TEST(TapeTest, UnderrunCausesRepositioning) {
  SimEnvironment env;
  Tape media("t0", 1 * kGiB);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&media);
  Status st;
  env.Spawn(GappyWriter(&env, &drive, 2 * kSecond, &st));
  env.Run();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(drive.repositions(), 2u) << "every post-gap write repositions";

  // A back-to-back writer on the same timing never repositions.
  Tape media2("t1", 1 * kGiB);
  TapeDrive drive2(&env, "dlt1");
  drive2.LoadMedia(&media2);
  env.Spawn(GappyWriter(&env, &drive2, 0, &st));
  env.Run();
  EXPECT_EQ(drive2.repositions(), 0u);
}

TEST(TapeTest, TimedRewindAndLoadAdvanceClock) {
  SimEnvironment env;
  Tape media("t0", 1 * kGiB);
  TapeDrive drive(&env, "dlt0");
  auto proc = [](TapeDrive* d, Tape* m) -> Task {
    co_await d->TimedLoadMedia(m);
    co_await d->TimedRewind();
  };
  env.Spawn(proc(&drive, &media));
  env.Run();
  EXPECT_EQ(env.now(),
            drive.timing().load_time + drive.timing().rewind_time);
  EXPECT_TRUE(drive.loaded());
}

// ---------------------------------------------------------------- Library ---

TEST(TapeLibraryTest, SlotsAndLabels) {
  TapeLibrary lib("stacker0", 10 * kMiB, 4);
  EXPECT_EQ(lib.num_slots(), 4u);
  ASSERT_NE(lib.TapeInSlot(2), nullptr);
  EXPECT_EQ(lib.TapeInSlot(2)->label(), "stacker0.2");
  EXPECT_EQ(lib.TapeInSlot(9), nullptr);
  EXPECT_EQ(*lib.SlotOfLabel("stacker0.3"), 3u);
  EXPECT_EQ(lib.SlotOfLabel("nope").status().code(), ErrorCode::kNotFound);
}

TEST(TapeLibraryTest, LoadSwapsMedia) {
  SimEnvironment env;
  TapeLibrary lib("stacker0", 10 * kMiB, 2);
  TapeDrive drive(&env, "dlt0");
  ASSERT_TRUE(lib.LoadSlot(&drive, 0).ok());
  EXPECT_EQ(drive.tape()->label(), "stacker0.0");
  std::vector<uint8_t> data(10, 1);
  ASSERT_TRUE(drive.WriteData(data).ok());
  ASSERT_TRUE(lib.LoadSlot(&drive, 1).ok());
  EXPECT_EQ(drive.tape()->label(), "stacker0.1");
  EXPECT_EQ(drive.position(), 0u);
  // Tape 0 kept its contents while out of the drive.
  EXPECT_EQ(lib.TapeInSlot(0)->size(), 10u);
  EXPECT_EQ(lib.LoadSlot(&drive, 7).code(), ErrorCode::kInvalidArgument);
}

TEST(TapeLibraryTest, AddBlankTape) {
  TapeLibrary lib("stacker0", 10 * kMiB, 1);
  const size_t slot = lib.AddBlankTape("extra");
  EXPECT_EQ(slot, 1u);
  EXPECT_EQ(lib.TapeInSlot(slot)->label(), "extra");
  EXPECT_EQ(lib.TapeInSlot(slot)->size(), 0u);
}

}  // namespace
}  // namespace bkup

// Property battery for the content pipeline (DESIGN.md §16): round-trip
// identity across every stage combination, chunking locality, adversarial
// inputs, dedup safety under hash collision, and the ChunkIndex journal's
// torn-tail contract. Everything here is functional — no simulation clock —
// which is what lets the identity property run 64 seeds in one test.
#include "src/content/content.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>
#include <vector>

#include "src/util/checksum.h"
#include "src/util/random.h"

namespace bkup {
namespace {

// `BKUP_CONTENT_SEED_OFFSET` shifts the whole 64-seed block so
// tools/seed_sweep.py can cover fresh streams/geometries without recompiling.
uint64_t SeedOffset() {
  const char* env = std::getenv("BKUP_CONTENT_SEED_OFFSET");
  return env != nullptr ? std::strtoull(env, nullptr, 10) * 64 : 0;
}

// Seeded pseudo-random stream with deliberate self-similarity: every fourth
// 4 KiB block repeats an earlier block, so dedup and compression both have
// something to find while the rest stays incompressible-random.
std::vector<uint8_t> MakeStream(uint64_t seed, size_t n) {
  std::vector<uint8_t> out(n);
  uint64_t state = seed * 0x9e3779b97f4a7c15ull + 1;
  const size_t block = 4096;
  for (size_t b = 0; b * block < n; ++b) {
    const size_t begin = b * block;
    const size_t len = std::min(block, n - begin);
    if (b >= 4 && b % 4 == 0) {
      const size_t src = (b / 4 - 1) * block;
      std::memcpy(&out[begin], &out[src], len);
      continue;
    }
    for (size_t i = begin; i < begin + len; ++i) {
      out[i] = static_cast<uint8_t>(SplitMix64(state));
    }
  }
  return out;
}

ContentConfig ComboConfig(int combo, ChunkIndex* index) {
  ContentConfig cfg;
  cfg.chunk = (combo & 1) != 0;
  cfg.dedup = (combo & 2) != 0;
  cfg.compress = (combo & 4) != 0;
  cfg.crc = (combo & 8) != 0;
  cfg.index = (cfg.dedup || cfg.compress) ? index : nullptr;
  return cfg;
}

// ------------------------------------------------------- round-trip identity

// The tentpole property: Encode then Decode is the identity for every stage
// combination and several chunk geometries, over 64 seeds. Each seed also
// cross-checks FrameMap::FromWire against the map Encode built — the restore
// side must recover the exact coordinate system by scanning the wire image.
TEST(ContentRoundTripTest, SixtyFourSeedsAllStageCombos) {
  struct Bounds {
    uint32_t min, avg, max;
  };
  const Bounds kBounds[] = {
      {64, 256, 1024},
      {512, 2048, 8192},
      {2048, 8192, 65536},
      {49, 64, 64},  // min at the rolling-window floor, max forces every cut
  };
  const uint64_t offset = SeedOffset();
  for (uint64_t s = 0; s < 64; ++s) {
    const uint64_t seed = offset + s;
    ChunkIndex index;
    ContentConfig cfg = ComboConfig(static_cast<int>(seed % 16), &index);
    const Bounds& b = kBounds[(seed / 16) % 4];
    cfg.min_chunk_bytes = b.min;
    cfg.avg_chunk_bytes = b.avg;
    cfg.max_chunk_bytes = b.max;
    cfg.seed = 0x626b6370 + seed;
    cfg.compress_ratio = 1.5 + static_cast<double>(seed % 5);

    const size_t n = 16 * 1024 + static_cast<size_t>(seed) * 4093;
    const std::vector<uint8_t> raw = MakeStream(seed, n);
    StagePipeline pipe(cfg);

    auto encoded = pipe.Encode(raw);
    ASSERT_TRUE(encoded.ok()) << "seed " << seed << ": "
                              << encoded.status().ToString();
    EXPECT_EQ(encoded->stats.raw_bytes, raw.size());
    EXPECT_EQ(encoded->stats.wire_bytes, encoded->wire.size());
    EXPECT_EQ(encoded->map.raw_total(), raw.size());
    EXPECT_EQ(encoded->map.wire_total(), encoded->wire.size());

    ContentStats decode_stats;
    auto decoded = pipe.Decode(encoded->wire, &decode_stats);
    ASSERT_TRUE(decoded.ok()) << "seed " << seed << ": "
                              << decoded.status().ToString();
    ASSERT_EQ(decoded->size(), raw.size()) << "seed " << seed;
    EXPECT_TRUE(std::equal(decoded->begin(), decoded->end(), raw.begin()))
        << "seed " << seed << " failed byte identity";
    EXPECT_EQ(decode_stats.chunks, encoded->stats.chunks);
    EXPECT_EQ(decode_stats.dedup_hits, encoded->stats.dedup_hits);

    // The restore side rebuilds the same coordinate map by scanning.
    auto scanned = FrameMap::FromWire(encoded->wire);
    ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
    ASSERT_EQ(scanned->frames().size(), encoded->map.frames().size());
    for (size_t i = 0; i < scanned->frames().size(); ++i) {
      EXPECT_EQ(scanned->frames()[i].raw_begin,
                encoded->map.frames()[i].raw_begin);
      EXPECT_EQ(scanned->frames()[i].wire_begin,
                encoded->map.frames()[i].wire_begin);
      EXPECT_EQ(scanned->frames()[i].raw_len,
                encoded->map.frames()[i].raw_len);
      EXPECT_EQ(scanned->frames()[i].wire_len,
                encoded->map.frames()[i].wire_len);
    }
  }
}

// A second encode of the same stream against the same index refs everything:
// the repeat-full-backup property the dedup bench gates at system level.
TEST(ContentRoundTripTest, SecondPassDedupsEverything) {
  ChunkIndex index;
  ContentConfig cfg;
  cfg.chunk = cfg.dedup = cfg.crc = true;
  cfg.index = &index;
  const std::vector<uint8_t> raw = MakeStream(7, 256 * 1024);
  StagePipeline pipe(cfg);

  auto first = pipe.Encode(raw);
  ASSERT_TRUE(first.ok());
  auto second = pipe.Encode(raw);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.dedup_hits, second->stats.chunks);
  EXPECT_EQ(second->stats.unique_bytes, 0u);
  EXPECT_LT(second->wire.size(), first->wire.size());
  // Ref frames are header-only, so the repeat pass is pure framing.
  EXPECT_EQ(second->wire.size(),
            kContentStreamHeaderBytes +
                second->stats.chunks * kContentFrameHeaderBytes);

  auto decoded = pipe.Decode(second->wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(std::equal(decoded->begin(), decoded->end(), raw.begin()));
}

// Modeled compression really shrinks the wire image by ~the ratio.
TEST(ContentRoundTripTest, CompressionShrinksWire) {
  ChunkIndex index;
  ContentConfig cfg;
  cfg.chunk = cfg.compress = true;
  cfg.compress_ratio = 2.0;
  cfg.index = &index;
  const std::vector<uint8_t> raw = MakeStream(11, 512 * 1024);
  auto encoded = StagePipeline(cfg).Encode(raw);
  ASSERT_TRUE(encoded.ok());
  const double observed =
      static_cast<double>(raw.size()) / static_cast<double>(encoded->wire.size());
  EXPECT_GT(observed, 1.7) << "wire " << encoded->wire.size();
  EXPECT_LT(observed, 2.1) << "wire " << encoded->wire.size();
}

// ------------------------------------------------------- chunking locality

// A 1-byte edit must re-chunk O(1) chunks: boundaries outside the edited
// chunk's rolling-hash reach are byte-for-byte identical, so an incremental
// against the same index re-ships only a handful of chunks.
TEST(ContentChunkingTest, OneByteEditRechunksO1Chunks) {
  ContentConfig cfg;
  cfg.chunk = true;
  StagePipeline pipe(cfg);
  std::vector<uint8_t> raw = MakeStream(3, 256 * 1024);

  const std::vector<uint64_t> before = pipe.ChunkBoundaries(raw);
  ASSERT_GT(before.size(), 8u);
  raw[raw.size() / 2] ^= 0xff;
  const std::vector<uint64_t> after = pipe.ChunkBoundaries(raw);

  // Compare as boundary sets: the edit may split/merge chunks near the
  // flipped byte, but everything else must be untouched.
  std::set<uint64_t> a(before.begin(), before.end());
  std::set<uint64_t> b(after.begin(), after.end());
  std::vector<uint64_t> gone, born;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(gone));
  std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                      std::back_inserter(born));
  EXPECT_LE(gone.size() + born.size(), 4u)
      << gone.size() << " boundaries lost, " << born.size() << " gained";
  // Every changed boundary sits within max_chunk_bytes of the edit.
  const uint64_t edit = raw.size() / 2;
  for (uint64_t v : gone) {
    EXPECT_LT(v > edit ? v - edit : edit - v, 2ull * cfg.max_chunk_bytes);
  }
  for (uint64_t v : born) {
    EXPECT_LT(v > edit ? v - edit : edit - v, 2ull * cfg.max_chunk_bytes);
  }
}

// ...and the dedup consequence: re-encoding the edited stream against the
// original index re-ships only the chunks the edit touched.
TEST(ContentChunkingTest, OneByteEditReshipsO1UniqueBytes) {
  ChunkIndex index;
  ContentConfig cfg;
  cfg.chunk = cfg.dedup = true;
  cfg.index = &index;
  StagePipeline pipe(cfg);
  std::vector<uint8_t> raw = MakeStream(5, 256 * 1024);

  auto first = pipe.Encode(raw);
  ASSERT_TRUE(first.ok());
  raw[raw.size() / 2] ^= 0xff;
  auto second = pipe.Encode(raw);
  ASSERT_TRUE(second.ok());
  EXPECT_GE(second->stats.dedup_hits + 4, second->stats.chunks)
      << "edit re-shipped " << second->stats.chunks - second->stats.dedup_hits
      << " chunks";
  EXPECT_LE(second->stats.unique_bytes, 4ull * cfg.max_chunk_bytes);
}

// Chunk boundaries respect the configured bounds.
TEST(ContentChunkingTest, BoundariesRespectMinAvgMax) {
  ContentConfig cfg;
  cfg.chunk = true;
  cfg.min_chunk_bytes = 512;
  cfg.avg_chunk_bytes = 2048;
  cfg.max_chunk_bytes = 8192;
  StagePipeline pipe(cfg);
  const std::vector<uint8_t> raw = MakeStream(9, 300 * 1024);
  const std::vector<uint64_t> ends = pipe.ChunkBoundaries(raw);
  ASSERT_FALSE(ends.empty());
  EXPECT_EQ(ends.back(), raw.size());
  uint64_t prev = 0;
  for (size_t i = 0; i < ends.size(); ++i) {
    const uint64_t len = ends[i] - prev;
    EXPECT_LE(len, cfg.max_chunk_bytes);
    if (i + 1 < ends.size()) {  // the tail chunk may be short
      EXPECT_GE(len, cfg.min_chunk_bytes);
    }
    prev = ends[i];
  }
}

// ------------------------------------------------------- adversarial inputs

TEST(ContentAdversarialTest, ZeroLengthStreamRoundTrips) {
  for (int combo = 0; combo < 16; ++combo) {
    ChunkIndex index;
    StagePipeline pipe(ComboConfig(combo, &index));
    auto encoded = pipe.Encode({});
    ASSERT_TRUE(encoded.ok()) << "combo " << combo;
    EXPECT_EQ(encoded->wire.size(), kContentStreamHeaderBytes);
    EXPECT_EQ(encoded->map.raw_total(), 0u);
    auto decoded = pipe.Decode(encoded->wire);
    ASSERT_TRUE(decoded.ok()) << "combo " << combo;
    EXPECT_TRUE(decoded->empty());
    auto scanned = FrameMap::FromWire(encoded->wire);
    ASSERT_TRUE(scanned.ok());
    EXPECT_TRUE(scanned->frames().empty());
  }
}

// All-identical bytes: content-defined chunking never finds a boundary (the
// rolling hash is constant), so every chunk is max-sized and, with dedup,
// all but the first (and a short tail) collapse to refs.
TEST(ContentAdversarialTest, AllIdenticalBytesCollapseUnderDedup) {
  ChunkIndex index;
  ContentConfig cfg;
  cfg.chunk = cfg.dedup = cfg.crc = true;
  cfg.index = &index;
  std::vector<uint8_t> raw(128 * 1024 + 777, 0xab);
  StagePipeline pipe(cfg);
  auto encoded = pipe.Encode(raw);
  ASSERT_TRUE(encoded.ok());
  // One unique max-sized chunk plus the odd-sized tail; everything else refs.
  EXPECT_EQ(encoded->stats.dedup_hits, encoded->stats.chunks - 2);
  EXPECT_EQ(encoded->stats.unique_bytes, cfg.max_chunk_bytes + 777u);
  auto decoded = pipe.Decode(encoded->wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(std::equal(decoded->begin(), decoded->end(), raw.begin()));
}

// Raw ranges that straddle frame boundaries translate to frame-aligned wire
// covers that fully contain them, and the watermark inverse stays monotone
// and consistent at every offset.
TEST(ContentAdversarialTest, BoundaryStraddlingRangesAndWatermarks) {
  ChunkIndex index;
  ContentConfig cfg;
  cfg.chunk = cfg.compress = cfg.crc = true;
  cfg.min_chunk_bytes = 64;
  cfg.avg_chunk_bytes = 256;
  cfg.max_chunk_bytes = 1024;
  cfg.index = &index;
  const std::vector<uint8_t> raw = MakeStream(13, 64 * 1024);
  auto encoded = StagePipeline(cfg).Encode(raw);
  ASSERT_TRUE(encoded.ok());
  const FrameMap& map = encoded->map;
  ASSERT_GT(map.frames().size(), 3u);

  // A range straddling the 2nd/3rd frame boundary.
  const FrameMap::Frame& f1 = map.frames()[1];
  const FrameMap::Frame& f2 = map.frames()[2];
  StreamRange straddle{f1.raw_begin + f1.raw_len / 2,
                       f2.raw_begin + f2.raw_len / 2};
  auto covers = map.WireRangesOf(std::span(&straddle, 1));
  ASSERT_EQ(covers.size(), 1u);
  EXPECT_LE(covers[0].begin, f1.wire_begin);
  EXPECT_EQ(covers[0].end, f2.wire_begin + f2.wire_len);
  // The cover holds at least the straddled raw bytes.
  EXPECT_GE(map.RawSizeOfWireRange(covers[0]),
            straddle.end - straddle.begin);

  // WireOf / RawAvailable: monotone, mutually consistent, exact at edges.
  EXPECT_EQ(map.WireOf(0), 0u);
  EXPECT_EQ(map.WireOf(map.raw_total()), map.wire_total());
  EXPECT_EQ(map.RawAvailable(map.wire_total()), map.raw_total());
  uint64_t prev_wire = 0;
  for (uint64_t r = 0; r <= map.raw_total(); r += 97) {
    const uint64_t w = map.WireOf(r);
    EXPECT_GE(w, prev_wire);
    prev_wire = w;
    EXPECT_LE(map.RawAvailable(w), r);  // never claims undecodable bytes
  }
  uint64_t prev_raw = 0;
  for (uint64_t w = 0; w <= map.wire_total(); w += 101) {
    const uint64_t r = map.RawAvailable(w);
    EXPECT_GE(r, prev_raw);
    prev_raw = r;
  }
}

// A corrupted ChunkIndex entry must fail restore loudly with kCorruption —
// never hand back wrong bytes.
TEST(ContentAdversarialTest, CorruptedIndexEntryFailsDecodeLoudly) {
  ChunkIndex index;
  ContentConfig cfg;
  cfg.chunk = cfg.dedup = cfg.compress = cfg.crc = true;
  cfg.index = &index;
  const std::vector<uint8_t> raw = MakeStream(17, 64 * 1024);
  StagePipeline pipe(cfg);
  auto encoded = pipe.Encode(raw);
  ASSERT_TRUE(encoded.ok());

  const std::vector<uint64_t> ends = pipe.ChunkBoundaries(raw);
  ASSERT_FALSE(ends.empty());
  const uint64_t h =
      ContentHash(std::span(raw).first(static_cast<size_t>(ends[0])));
  ASSERT_TRUE(index.CorruptEntryForTest(h));

  auto decoded = pipe.Decode(encoded->wire);
  ASSERT_FALSE(decoded.ok()) << "decode served corrupt store bytes";
  EXPECT_EQ(decoded.status().code(), ErrorCode::kCorruption);
}

// Decoding a store-backed stream without the backup's index is a usage
// error, reported as such (not corruption, not silence).
TEST(ContentAdversarialTest, StoreBackedDecodeWithoutIndexFails) {
  ChunkIndex index;
  ContentConfig cfg;
  cfg.compress = true;
  cfg.index = &index;
  const std::vector<uint8_t> raw = MakeStream(19, 16 * 1024);
  auto encoded = StagePipeline(cfg).Encode(raw);
  ASSERT_TRUE(encoded.ok());
  ContentConfig no_index;  // stages off, no store
  auto decoded = StagePipeline(no_index).Decode(encoded->wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kFailedPrecondition);
}

// Truncated and bit-flipped wire images fail loudly too.
TEST(ContentAdversarialTest, DamagedWireImageIsCorruption) {
  ChunkIndex index;
  ContentConfig cfg;
  cfg.chunk = cfg.crc = true;
  const std::vector<uint8_t> raw = MakeStream(23, 32 * 1024);
  StagePipeline pipe(cfg);
  auto encoded = pipe.Encode(raw);
  ASSERT_TRUE(encoded.ok());

  std::vector<uint8_t> torn = encoded->wire;
  torn.resize(torn.size() - 100);
  auto decoded = pipe.Decode(torn);
  ASSERT_FALSE(decoded.ok());

  std::vector<uint8_t> flipped = encoded->wire;
  flipped[kContentStreamHeaderBytes + kContentFrameHeaderBytes + 7] ^= 0x01;
  decoded = pipe.Decode(flipped);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kCorruption);

  std::vector<uint8_t> bad_header = encoded->wire;
  bad_header[5] ^= 0x80;
  decoded = pipe.Decode(bad_header);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kCorruption);
}

// -------------------------------------------------------------- dedup safety

// A hash collision (same ContentHash, different bytes) never dedups wrong:
// encode detects the mismatch, falls back to a verbatim literal, and the
// stream still round-trips byte-identically.
TEST(ContentDedupSafetyTest, HashCollisionFallsBackToVerbatim) {
  ChunkIndex index;
  ContentConfig cfg;
  cfg.chunk = cfg.dedup = cfg.compress = cfg.crc = true;
  cfg.index = &index;
  StagePipeline pipe(cfg);
  const std::vector<uint8_t> raw = MakeStream(29, 64 * 1024);

  // Poison the store: the first chunk's hash slot holds different bytes,
  // simulating a collision with an earlier backup's chunk.
  const std::vector<uint64_t> ends = pipe.ChunkBoundaries(raw);
  const uint64_t h =
      ContentHash(std::span(raw).first(static_cast<size_t>(ends[0])));
  const std::vector<uint8_t> imposter(100, 0x77);
  ASSERT_TRUE(index.Insert(h, imposter));

  auto encoded = pipe.Encode(raw);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->stats.dedup_hits, 0u)
      << "collision chunk must not dedup against different bytes";
  auto decoded = pipe.Decode(encoded->wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(std::equal(decoded->begin(), decoded->end(), raw.begin()))
      << "collision fallback must still round-trip";
}

// ------------------------------------------------------- ChunkIndex journal

TEST(ChunkIndexJournalTest, SerializeLoadRoundTrip) {
  ChunkIndex index;
  uint64_t state = 42;
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> chunks;
  for (int i = 0; i < 50; ++i) {
    std::vector<uint8_t> bytes(100 + i * 7);
    for (uint8_t& v : bytes) {
      v = static_cast<uint8_t>(SplitMix64(state));
    }
    const uint64_t h = ContentHash(bytes);
    ASSERT_TRUE(index.Insert(h, bytes));
    chunks.emplace_back(h, std::move(bytes));
  }
  const std::vector<uint8_t> image = index.Serialize(/*checkpoint_every=*/8);
  auto loaded = ChunkIndex::Load(image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), index.size());
  EXPECT_EQ(loaded->stored_bytes(), index.stored_bytes());
  for (const auto& [h, bytes] : chunks) {
    const ChunkIndex::Entry* e = loaded->Find(h);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->bytes, bytes);
    EXPECT_EQ(e->crc, Crc32c(bytes));
  }
  // Serialization is deterministic regardless of map iteration order.
  EXPECT_EQ(image, loaded->Serialize(/*checkpoint_every=*/8));
}

TEST(ChunkIndexJournalTest, TornTailDropsUnsealedEntries) {
  ChunkIndex index;
  for (int i = 0; i < 20; ++i) {
    std::vector<uint8_t> bytes(64, static_cast<uint8_t>(i));
    index.Insert(ContentHash(bytes), bytes);
  }
  std::vector<uint8_t> image = index.Serialize(/*checkpoint_every=*/4);
  image.resize(image.size() - 30);  // tear mid-frame
  auto loaded = ChunkIndex::Load(image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_LT(loaded->size(), index.size());
  EXPECT_GE(loaded->size(), 12u) << "earlier checkpoints must survive";
}

TEST(ChunkIndexJournalTest, FlipBeforeFirstCheckpointIsCorruption) {
  ChunkIndex index;
  for (int i = 0; i < 8; ++i) {
    std::vector<uint8_t> bytes(64, static_cast<uint8_t>(i));
    index.Insert(ContentHash(bytes), bytes);
  }
  std::vector<uint8_t> image = index.Serialize(/*checkpoint_every=*/8);
  image[10] ^= 0x20;  // inside the first entry, before any checkpoint
  auto loaded = ChunkIndex::Load(image);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCorruption);
}

TEST(ChunkIndexJournalTest, FlipPastACheckpointKeepsSealedPrefix) {
  ChunkIndex index;
  for (int i = 0; i < 16; ++i) {
    std::vector<uint8_t> bytes(64, static_cast<uint8_t>(i));
    index.Insert(ContentHash(bytes), bytes);
  }
  std::vector<uint8_t> image = index.Serialize(/*checkpoint_every=*/2);
  image[image.size() - 40] ^= 0x20;  // damage near the tail
  auto loaded = ChunkIndex::Load(image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_LT(loaded->size(), index.size());
  EXPECT_GE(loaded->size(), 8u);
}

TEST(ChunkIndexJournalTest, EmptyIndexRoundTrips) {
  ChunkIndex index;
  auto loaded = ChunkIndex::Load(index.Serialize());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 0u);
}

// -------------------------------------------------------------- config/CPU

TEST(ContentConfigTest, ValidateRejectsBadGeometry) {
  ContentConfig cfg;
  cfg.chunk = true;
  cfg.avg_chunk_bytes = 3000;  // not a power of two
  EXPECT_EQ(cfg.Validate().code(), ErrorCode::kInvalidArgument);

  cfg = {};
  cfg.chunk = true;
  cfg.min_chunk_bytes = 16;  // below the rolling window
  cfg.avg_chunk_bytes = 64;
  cfg.max_chunk_bytes = 128;
  EXPECT_EQ(cfg.Validate().code(), ErrorCode::kInvalidArgument);

  cfg = {};
  cfg.compress = true;  // store-backed stages need an index
  EXPECT_EQ(cfg.Validate().code(), ErrorCode::kInvalidArgument);

  cfg = {};
  ChunkIndex index;
  cfg.compress = true;
  cfg.index = &index;
  cfg.compress_ratio = 1.0;
  EXPECT_EQ(cfg.Validate().code(), ErrorCode::kInvalidArgument);

  cfg = {};
  EXPECT_TRUE(cfg.Validate().ok()) << "all-off config is always valid";
}

TEST(ContentConfigTest, CpuPricesSumEnabledStages) {
  ChunkIndex index;
  ContentConfig cfg;
  cfg.chunk = cfg.dedup = cfg.compress = cfg.crc = true;
  cfg.index = &index;
  EXPECT_EQ(cfg.EncodeCpuPerMb(),
            cfg.chunk_cpu_us_per_mb + cfg.dedup_cpu_us_per_mb +
                cfg.compress_cpu_us_per_mb + cfg.crc_cpu_us_per_mb);
  EXPECT_EQ(cfg.DecodeCpuPerMb(),
            cfg.crc_cpu_us_per_mb + cfg.decode_cpu_us_per_mb);
  ContentConfig off;
  EXPECT_EQ(off.EncodeCpuPerMb(), 0);
  EXPECT_EQ(off.DecodeCpuPerMb(), 0);
}

}  // namespace
}  // namespace bkup

// Tests for the simulated backup jobs: correctness of the data they move,
// sanity of the timing model (tape-limited backups, CPU asymmetry between
// logical and physical, NVRAM effect on logical restore), and parallel
// scaling behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "src/backup/jobs.h"
#include "src/backup/parallel.h"
#include "src/workload/population.h"

namespace bkup {
namespace {

VolumeGeometry JobGeometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 4096;  // 96 MiB data space
  return geom;
}

struct JobFixture {
  JobFixture() : filer(&env, FilerModel::F630()) {
    src_volume = Volume::Create(&env, "home", JobGeometry());
    dst_volume = Volume::Create(&env, "spare", JobGeometry());
    src = std::move(Filesystem::Format(src_volume.get(), &env)).value();
    for (int i = 0; i < 4; ++i) {
      tapes.push_back(std::make_unique<Tape>("t" + std::to_string(i),
                                             4ull * kGiB));
      drives.push_back(
          std::make_unique<TapeDrive>(&env, "dlt" + std::to_string(i)));
      drives.back()->LoadMedia(tapes.back().get());
    }
  }

  void Populate(uint64_t bytes, uint32_t quota_trees = 1) {
    WorkloadParams params;
    params.target_bytes = bytes;
    params.quota_trees = quota_trees;
    auto stats = PopulateFilesystem(src.get(), params);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  }

  SimEnvironment env;
  Filer filer;
  std::unique_ptr<Volume> src_volume, dst_volume;
  std::unique_ptr<Filesystem> src;
  std::vector<std::unique_ptr<Tape>> tapes;
  std::vector<std::unique_ptr<TapeDrive>> drives;
};

TEST(BackupJobsTest, LogicalBackupJobWritesRestorableTape) {
  JobFixture f;
  f.Populate(8 * kMiB);
  auto src_sums = ChecksumTree(f.src->LiveReader());
  ASSERT_TRUE(src_sums.ok());

  LogicalBackupJobResult backup;
  CountdownLatch done(&f.env, 1);
  LogicalDumpOptions opt;
  opt.volume_name = "home";
  f.env.Spawn(LogicalBackupJob(&f.filer, f.src.get(), f.drives[0].get(), opt,
                               &backup, &done));
  f.env.Run();
  ASSERT_TRUE(backup.report.status.ok())
      << backup.report.status.ToString();
  EXPECT_GT(backup.report.elapsed(), 0);
  EXPECT_GT(f.tapes[0]->size(), 8 * kMiB);
  // The dump snapshot was cleaned up.
  EXPECT_TRUE(f.src->ListSnapshots().empty());

  // Restore the tape on a second filesystem and verify every checksum.
  auto dst = std::move(Filesystem::Format(f.dst_volume.get(), &f.env)).value();
  f.drives[0]->Rewind();
  LogicalRestoreJobResult restore;
  CountdownLatch rdone(&f.env, 1);
  f.env.Spawn(LogicalRestoreJob(&f.filer, dst.get(), f.drives[0].get(),
                                LogicalRestoreOptions{}, false, &restore,
                                &rdone));
  f.env.Run();
  ASSERT_TRUE(restore.report.status.ok())
      << restore.report.status.ToString();
  auto dst_sums = ChecksumTree(dst->LiveReader());
  ASSERT_TRUE(dst_sums.ok());
  EXPECT_EQ(*src_sums, *dst_sums);
}

TEST(BackupJobsTest, PhysicalBackupJobWritesRestorableTape) {
  JobFixture f;
  f.Populate(8 * kMiB);
  auto src_sums = ChecksumTree(f.src->LiveReader());
  ASSERT_TRUE(src_sums.ok());

  ImageBackupJobResult backup;
  CountdownLatch done(&f.env, 1);
  f.env.Spawn(ImageBackupJob(&f.filer, f.src.get(), f.drives[0].get(),
                             ImageDumpOptions{}, /*delete_snapshot_after=*/
                             false, &backup, &done));
  f.env.Run();
  ASSERT_TRUE(backup.report.status.ok()) << backup.report.status.ToString();

  f.drives[0]->Rewind();
  ImageRestoreJobResult restore;
  CountdownLatch rdone(&f.env, 1);
  f.env.Spawn(ImageRestoreJob(&f.filer, f.dst_volume.get(),
                              f.drives[0].get(), &restore, &rdone));
  f.env.Run();
  ASSERT_TRUE(restore.report.status.ok())
      << restore.report.status.ToString();

  auto dst = Filesystem::Mount(f.dst_volume.get(), &f.env);
  ASSERT_TRUE(dst.ok()) << dst.status().ToString();
  auto dst_sums = ChecksumTree((*dst)->LiveReader());
  ASSERT_TRUE(dst_sums.ok());
  EXPECT_EQ(*src_sums, *dst_sums);
}

TEST(BackupJobsTest, SingleTapeBackupIsTapeLimited) {
  // Table 2's regime: with one DLT drive, both strategies run near tape
  // speed, physical somewhat faster.
  JobFixture f;
  f.Populate(16 * kMiB);

  LogicalBackupJobResult logical;
  CountdownLatch ldone(&f.env, 1);
  f.env.Spawn(LogicalBackupJob(&f.filer, f.src.get(), f.drives[0].get(),
                               LogicalDumpOptions{}, &logical, &ldone));
  f.env.Run();
  ASSERT_TRUE(logical.report.status.ok());

  ImageBackupJobResult physical;
  CountdownLatch pdone(&f.env, 1);
  f.env.Spawn(ImageBackupJob(&f.filer, f.src.get(), f.drives[1].get(),
                             ImageDumpOptions{}, true, &physical, &pdone));
  f.env.Run();
  ASSERT_TRUE(physical.report.status.ok());

  // Compare streaming phases (excluding fixed snapshot overheads).
  const PhaseStats& lfiles = logical.report.phase(JobPhase::kDumpFiles);
  const PhaseStats& pblocks = physical.report.phase(JobPhase::kDumpBlocks);
  const double tape_rate = f.drives[0]->timing().stream_mb_per_s * 1e6;
  const double logical_rate =
      static_cast<double>(lfiles.tape_bytes) / SimToSeconds(lfiles.elapsed());
  const double physical_rate = static_cast<double>(pblocks.tape_bytes) /
                               SimToSeconds(pblocks.elapsed());
  EXPECT_GT(physical_rate, 0.85 * tape_rate)
      << "physical dump must stream the tape";
  EXPECT_GT(logical_rate, 0.6 * tape_rate);
  EXPECT_GT(physical_rate, logical_rate)
      << "physical holds a modest single-tape edge (Table 2)";
}

TEST(BackupJobsTest, CpuAsymmetryMatchesTable3) {
  JobFixture f;
  f.Populate(16 * kMiB);

  LogicalBackupJobResult logical;
  CountdownLatch ldone(&f.env, 1);
  f.env.Spawn(LogicalBackupJob(&f.filer, f.src.get(), f.drives[0].get(),
                               LogicalDumpOptions{}, &logical, &ldone));
  f.env.Run();
  ImageBackupJobResult physical;
  CountdownLatch pdone(&f.env, 1);
  f.env.Spawn(ImageBackupJob(&f.filer, f.src.get(), f.drives[1].get(),
                             ImageDumpOptions{}, true, &physical, &pdone));
  f.env.Run();

  const double logical_cpu =
      logical.report.phase(JobPhase::kDumpFiles).CpuUtilization();
  const double physical_cpu =
      physical.report.phase(JobPhase::kDumpBlocks).CpuUtilization();
  EXPECT_GT(logical_cpu, 3.0 * physical_cpu)
      << "logical dump consumes ~5x the CPU of physical (Table 3)";
  EXPECT_LT(physical_cpu, 0.12);
  EXPECT_GT(logical_cpu, 0.10);
}

TEST(BackupJobsTest, NvramBypassSpeedsLogicalRestore) {
  JobFixture f;
  f.Populate(8 * kMiB);
  LogicalBackupJobResult backup;
  CountdownLatch done(&f.env, 1);
  f.env.Spawn(LogicalBackupJob(&f.filer, f.src.get(), f.drives[0].get(),
                               LogicalDumpOptions{}, &backup, &done));
  f.env.Run();
  ASSERT_TRUE(backup.report.status.ok());

  auto restore_once = [&f](bool bypass) {
    auto volume = Volume::Create(&f.env, "r", JobGeometry());
    auto dst = std::move(Filesystem::Format(volume.get(), &f.env)).value();
    f.drives[0]->Rewind();
    LogicalRestoreJobResult restore;
    CountdownLatch rdone(&f.env, 1);
    f.env.Spawn(LogicalRestoreJob(&f.filer, dst.get(), f.drives[0].get(),
                                  LogicalRestoreOptions{}, bypass, &restore,
                                  &rdone));
    f.env.Run();
    EXPECT_TRUE(restore.report.status.ok());
    return restore.report.elapsed();
  };
  const SimDuration with_nvram = restore_once(false);
  const SimDuration without_nvram = restore_once(true);
  EXPECT_LT(without_nvram, with_nvram)
      << "bypassing NVRAM must speed up logical restore (footnote 2)";
}

TEST(BackupJobsTest, PhysicalRestoreFasterThanLogical) {
  JobFixture f;
  f.Populate(12 * kMiB);

  // Logical chain.
  LogicalBackupJobResult lback;
  CountdownLatch l1(&f.env, 1);
  f.env.Spawn(LogicalBackupJob(&f.filer, f.src.get(), f.drives[0].get(),
                               LogicalDumpOptions{}, &lback, &l1));
  f.env.Run();
  auto lvol = Volume::Create(&f.env, "lr", JobGeometry());
  auto lfs = std::move(Filesystem::Format(lvol.get(), &f.env)).value();
  f.drives[0]->Rewind();
  LogicalRestoreJobResult lrest;
  CountdownLatch l2(&f.env, 1);
  f.env.Spawn(LogicalRestoreJob(&f.filer, lfs.get(), f.drives[0].get(),
                                LogicalRestoreOptions{}, false, &lrest, &l2));
  f.env.Run();
  ASSERT_TRUE(lrest.report.status.ok());

  // Physical chain.
  ImageBackupJobResult pback;
  CountdownLatch p1(&f.env, 1);
  f.env.Spawn(ImageBackupJob(&f.filer, f.src.get(), f.drives[1].get(),
                             ImageDumpOptions{}, false, &pback, &p1));
  f.env.Run();
  f.drives[1]->Rewind();
  ImageRestoreJobResult prest;
  CountdownLatch p2(&f.env, 1);
  f.env.Spawn(ImageRestoreJob(&f.filer, f.dst_volume.get(),
                              f.drives[1].get(), &prest, &p2));
  f.env.Run();
  ASSERT_TRUE(prest.report.status.ok());

  // Normalize to per-byte cost (streams differ slightly in size).
  const double logical_s_per_mb =
      SimToSeconds(lrest.report.elapsed()) /
      (static_cast<double>(lrest.report.stream_bytes) / 1e6);
  const double physical_s_per_mb =
      SimToSeconds(prest.report.elapsed()) /
      (static_cast<double>(prest.report.stream_bytes) / 1e6);
  EXPECT_LT(physical_s_per_mb, logical_s_per_mb)
      << "physical restore must outrun logical restore (Table 2)";
}

TEST(BackupJobsTest, ParallelPhysicalDumpScales) {
  JobFixture f;
  f.Populate(32 * kMiB);

  auto run_parallel = [&f](uint32_t ntapes) {
    std::vector<TapeDrive*> drives;
    for (uint32_t k = 0; k < ntapes; ++k) {
      f.tapes[k]->Erase();
      f.drives[k]->LoadMedia(f.tapes[k].get());
      drives.push_back(f.drives[k].get());
    }
    ImageDumpOptions opt;
    opt.snapshot_name = "par" + std::to_string(ntapes);
    ParallelImageBackupResult result;
    CountdownLatch done(&f.env, 1);
    f.env.Spawn(ParallelImageBackupJob(&f.filer, f.src.get(), drives, opt,
                                       /*delete_snapshot_after=*/true,
                                       &result, &done));
    f.env.Run();
    EXPECT_TRUE(result.merged.status.ok())
        << result.merged.status.ToString();
    uint64_t blocks = 0;
    for (auto& r : result.parts) {
      blocks += r->dump.stats.blocks_dumped;
    }
    return std::pair(result.merged, blocks);
  };

  auto [one, blocks1] = run_parallel(1);
  auto [four, blocks4] = run_parallel(4);
  // All data covered in both runs (modulo snapshot meta churn).
  EXPECT_NEAR(static_cast<double>(blocks4), static_cast<double>(blocks1),
              static_cast<double>(blocks1) * 0.05);
  // The streaming phase must speed up substantially with 4 drives.
  // This fixture has only 6 data disks, so 4-way scaling is disk-limited
  // around 2x (the bench geometry with ~27 data disks scales further).
  const SimDuration t1 = one.phase(JobPhase::kDumpBlocks).elapsed();
  const SimDuration t4 = four.phase(JobPhase::kDumpBlocks).elapsed();
  EXPECT_LT(t4, t1 * 5 / 8) << "physical dump scales to 4 tapes (Table 5)";
}

TEST(BackupJobsTest, ReportPhasesAreOrderedAndComplete) {
  JobFixture f;
  f.Populate(4 * kMiB);
  LogicalBackupJobResult backup;
  CountdownLatch done(&f.env, 1);
  f.env.Spawn(LogicalBackupJob(&f.filer, f.src.get(), f.drives[0].get(),
                               LogicalDumpOptions{}, &backup, &done));
  f.env.Run();
  const JobReport& r = backup.report;
  ASSERT_TRUE(r.status.ok());
  // All of Table 3's logical-dump stages appear, in order.
  const PhaseStats& snap = r.phase(JobPhase::kCreateSnapshot);
  const PhaseStats& map = r.phase(JobPhase::kMap);
  const PhaseStats& dirs = r.phase(JobPhase::kDumpDirs);
  const PhaseStats& files = r.phase(JobPhase::kDumpFiles);
  const PhaseStats& del = r.phase(JobPhase::kDeleteSnapshot);
  for (const PhaseStats* p : {&snap, &map, &dirs, &files, &del}) {
    EXPECT_TRUE(p->active());
  }
  EXPECT_EQ(snap.elapsed(), f.filer.model().snapshot_create_time);
  EXPECT_NEAR(snap.CpuUtilization(), 0.5, 0.05);
  EXPECT_LE(snap.end, map.start);
  EXPECT_LE(map.end, dirs.start + kSecond);
  EXPECT_LE(dirs.start, files.start);
  EXPECT_LE(files.end, del.start);
  // The files phase moved the bulk of the stream.
  EXPECT_GT(files.tape_bytes, r.stream_bytes / 2);
  // Envelope covers all phases.
  EXPECT_EQ(r.start_time, snap.start);
  EXPECT_EQ(r.end_time, del.end);
}

}  // namespace
}  // namespace bkup

// Tests for the job-report accounting: phase windows, CPU attribution,
// stream-window rates, and merging of parallel part reports.
#include <gtest/gtest.h>

#include "src/backup/report.h"

namespace bkup {
namespace {

TEST(PhaseStatsTest, InactiveByDefault) {
  PhaseStats p;
  EXPECT_FALSE(p.active());
  EXPECT_EQ(p.elapsed(), 0);
  EXPECT_EQ(p.CpuUtilization(), 0.0);
}

TEST(JobReportTest, TouchPhaseTracksWindowAndCpu) {
  JobReport r;
  r.TouchPhase(JobPhase::kDumpFiles, 1000, 50);
  r.TouchPhase(JobPhase::kDumpFiles, 5000, 2050);
  const PhaseStats& p = r.phase(JobPhase::kDumpFiles);
  EXPECT_TRUE(p.active());
  EXPECT_EQ(p.start, 1000);
  EXPECT_EQ(p.end, 5000);
  EXPECT_EQ(p.elapsed(), 4000);
  EXPECT_DOUBLE_EQ(p.CpuUtilization(), 0.5);  // 2000 busy over 4000
}

TEST(JobReportTest, TouchPhaseNeverShrinksTheWindow) {
  JobReport r;
  r.TouchPhase(JobPhase::kMap, 100, 0);
  r.TouchPhase(JobPhase::kMap, 500, 10);
  r.TouchPhase(JobPhase::kMap, 300, 5);  // out-of-order touch
  EXPECT_EQ(r.phase(JobPhase::kMap).end, 500);
}

TEST(JobReportTest, StreamElapsedExcludesSnapshotOverhead) {
  JobReport r;
  r.start_time = 0;
  r.end_time = 100 * kSecond;
  r.TouchPhase(JobPhase::kCreateSnapshot, 0, 0);
  r.TouchPhase(JobPhase::kCreateSnapshot, 30 * kSecond, 0);
  r.TouchPhase(JobPhase::kDeleteSnapshot, 65 * kSecond, 0);
  r.TouchPhase(JobPhase::kDeleteSnapshot, 100 * kSecond, 0);
  EXPECT_EQ(r.SnapshotOverhead(), 65 * kSecond);
  EXPECT_EQ(r.StreamElapsed(), 35 * kSecond);
  r.data_bytes = 35 * 1000 * 1000;  // 1 MB/s over the stream window
  EXPECT_NEAR(r.MBps(), 1.0, 1e-9);
}

TEST(JobReportTest, StreamCpuExcludesSnapshotBusy) {
  JobReport r;
  r.start_time = 0;
  r.end_time = 40 * kSecond;
  r.cpu_busy_start = 0;
  r.cpu_busy_end = 20 * kSecond;  // 20 s busy total
  // Snapshot phase burned 15 s of that.
  r.TouchPhase(JobPhase::kCreateSnapshot, 0, 0);
  r.TouchPhase(JobPhase::kCreateSnapshot, 30 * kSecond, 15 * kSecond);
  // Stream window: 10 s elapsed, 5 s busy.
  EXPECT_EQ(r.StreamElapsed(), 10 * kSecond);
  EXPECT_DOUBLE_EQ(r.StreamCpuUtilization(), 0.5);
  EXPECT_DOUBLE_EQ(r.CpuUtilization(), 0.5);  // whole-window: 20/40
}

TEST(JobReportTest, DeviceRatesOverStreamWindow) {
  JobReport r;
  r.start_time = 0;
  r.end_time = 10 * kSecond;
  r.phase(JobPhase::kDumpBlocks).start = 0;
  r.phase(JobPhase::kDumpBlocks).end = 10 * kSecond;
  r.phase(JobPhase::kDumpBlocks).disk_bytes = 50 * 1000 * 1000;
  r.phase(JobPhase::kDumpBlocks).tape_bytes = 40 * 1000 * 1000;
  EXPECT_DOUBLE_EQ(r.DiskMBps(), 5.0);
  EXPECT_DOUBLE_EQ(r.TapeMBps(), 4.0);
}

TEST(MergeReportsTest, EnvelopeAndBytes) {
  JobReport a, b;
  a.name = "part0";
  a.start_time = 100;
  a.end_time = 500;
  a.stream_bytes = 10;
  a.data_bytes = 8;
  b.start_time = 200;
  b.end_time = 900;
  b.stream_bytes = 20;
  b.data_bytes = 16;
  std::vector<JobReport> parts{a, b};
  JobReport merged = MergeReports("op", parts);
  EXPECT_EQ(merged.name, "op");
  EXPECT_EQ(merged.start_time, 100);
  EXPECT_EQ(merged.end_time, 900);
  EXPECT_EQ(merged.stream_bytes, 30u);
  EXPECT_EQ(merged.data_bytes, 24u);
}

TEST(MergeReportsTest, PhaseWindowsUnionAndBytesAdd) {
  JobReport a, b;
  a.TouchPhase(JobPhase::kDumpFiles, 10, 0);
  a.TouchPhase(JobPhase::kDumpFiles, 50, 5);
  a.phase(JobPhase::kDumpFiles).tape_bytes = 100;
  b.TouchPhase(JobPhase::kDumpFiles, 30, 2);
  b.TouchPhase(JobPhase::kDumpFiles, 90, 9);
  b.phase(JobPhase::kDumpFiles).tape_bytes = 200;
  std::vector<JobReport> parts{a, b};
  JobReport merged = MergeReports("op", parts);
  const PhaseStats& p = merged.phase(JobPhase::kDumpFiles);
  EXPECT_EQ(p.start, 10);
  EXPECT_EQ(p.end, 90);
  EXPECT_EQ(p.tape_bytes, 300u);
}

TEST(MergeReportsTest, FirstErrorWins) {
  JobReport ok, bad;
  bad.status = IoError("tape ate itself");
  std::vector<JobReport> parts{ok, bad};
  JobReport merged = MergeReports("op", parts);
  EXPECT_EQ(merged.status.code(), ErrorCode::kIoError);
}

TEST(MergeReportsTest, EmptyInput) {
  JobReport merged = MergeReports("op", {});
  EXPECT_EQ(merged.elapsed(), 0);
  EXPECT_TRUE(merged.status.ok());
}

TEST(JobPhaseTest, AllPhasesNamed) {
  for (int i = 0; i < static_cast<int>(JobPhase::kCount); ++i) {
    const char* name = JobPhaseName(static_cast<JobPhase>(i));
    EXPECT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "phase " << i;
  }
}

}  // namespace
}  // namespace bkup

// Tests for the job-report accounting: phase windows, CPU attribution,
// stream-window rates, and merging of parallel part reports.
#include <gtest/gtest.h>

#include "src/backup/report.h"
#include "src/obs/json.h"

namespace bkup {
namespace {

TEST(PhaseStatsTest, InactiveByDefault) {
  PhaseStats p;
  EXPECT_FALSE(p.active());
  EXPECT_EQ(p.elapsed(), 0);
  EXPECT_EQ(p.CpuUtilization(), 0.0);
}

TEST(JobReportTest, TouchPhaseTracksWindowAndCpu) {
  JobReport r;
  r.TouchPhase(JobPhase::kDumpFiles, 1000, 50);
  r.TouchPhase(JobPhase::kDumpFiles, 5000, 2050);
  const PhaseStats& p = r.phase(JobPhase::kDumpFiles);
  EXPECT_TRUE(p.active());
  EXPECT_EQ(p.start, 1000);
  EXPECT_EQ(p.end, 5000);
  EXPECT_EQ(p.elapsed(), 4000);
  EXPECT_DOUBLE_EQ(p.CpuUtilization(), 0.5);  // 2000 busy over 4000
}

TEST(JobReportTest, TouchPhaseNeverShrinksTheWindow) {
  JobReport r;
  r.TouchPhase(JobPhase::kMap, 100, 0);
  r.TouchPhase(JobPhase::kMap, 500, 10);
  r.TouchPhase(JobPhase::kMap, 300, 5);  // out-of-order touch
  EXPECT_EQ(r.phase(JobPhase::kMap).end, 500);
}

TEST(JobReportTest, StreamElapsedExcludesSnapshotOverhead) {
  JobReport r;
  r.start_time = 0;
  r.end_time = 100 * kSecond;
  r.TouchPhase(JobPhase::kCreateSnapshot, 0, 0);
  r.TouchPhase(JobPhase::kCreateSnapshot, 30 * kSecond, 0);
  r.TouchPhase(JobPhase::kDeleteSnapshot, 65 * kSecond, 0);
  r.TouchPhase(JobPhase::kDeleteSnapshot, 100 * kSecond, 0);
  EXPECT_EQ(r.SnapshotOverhead(), 65 * kSecond);
  EXPECT_EQ(r.StreamElapsed(), 35 * kSecond);
  r.data_bytes = 35 * 1000 * 1000;  // 1 MB/s over the stream window
  EXPECT_NEAR(r.MBps(), 1.0, 1e-9);
}

TEST(JobReportTest, StreamCpuExcludesSnapshotBusy) {
  JobReport r;
  r.start_time = 0;
  r.end_time = 40 * kSecond;
  r.cpu_busy_start = 0;
  r.cpu_busy_end = 20 * kSecond;  // 20 s busy total
  // Snapshot phase burned 15 s of that.
  r.TouchPhase(JobPhase::kCreateSnapshot, 0, 0);
  r.TouchPhase(JobPhase::kCreateSnapshot, 30 * kSecond, 15 * kSecond);
  // Stream window: 10 s elapsed, 5 s busy.
  EXPECT_EQ(r.StreamElapsed(), 10 * kSecond);
  EXPECT_DOUBLE_EQ(r.StreamCpuUtilization(), 0.5);
  EXPECT_DOUBLE_EQ(r.CpuUtilization(), 0.5);  // whole-window: 20/40
}

TEST(JobReportTest, DeviceRatesOverStreamWindow) {
  JobReport r;
  r.start_time = 0;
  r.end_time = 10 * kSecond;
  r.phase(JobPhase::kDumpBlocks).start = 0;
  r.phase(JobPhase::kDumpBlocks).end = 10 * kSecond;
  r.phase(JobPhase::kDumpBlocks).disk_bytes = 50 * 1000 * 1000;
  r.phase(JobPhase::kDumpBlocks).tape_bytes = 40 * 1000 * 1000;
  EXPECT_DOUBLE_EQ(r.DiskMBps(), 5.0);
  EXPECT_DOUBLE_EQ(r.TapeMBps(), 4.0);
}

TEST(MergeReportsTest, EnvelopeAndBytes) {
  JobReport a, b;
  a.name = "part0";
  a.start_time = 100;
  a.end_time = 500;
  a.stream_bytes = 10;
  a.data_bytes = 8;
  b.start_time = 200;
  b.end_time = 900;
  b.stream_bytes = 20;
  b.data_bytes = 16;
  std::vector<JobReport> parts{a, b};
  JobReport merged = MergeReports("op", parts);
  EXPECT_EQ(merged.name, "op");
  EXPECT_EQ(merged.start_time, 100);
  EXPECT_EQ(merged.end_time, 900);
  EXPECT_EQ(merged.stream_bytes, 30u);
  EXPECT_EQ(merged.data_bytes, 24u);
}

TEST(MergeReportsTest, PhaseWindowsUnionAndBytesAdd) {
  JobReport a, b;
  a.TouchPhase(JobPhase::kDumpFiles, 10, 0);
  a.TouchPhase(JobPhase::kDumpFiles, 50, 5);
  a.phase(JobPhase::kDumpFiles).tape_bytes = 100;
  b.TouchPhase(JobPhase::kDumpFiles, 30, 2);
  b.TouchPhase(JobPhase::kDumpFiles, 90, 9);
  b.phase(JobPhase::kDumpFiles).tape_bytes = 200;
  std::vector<JobReport> parts{a, b};
  JobReport merged = MergeReports("op", parts);
  const PhaseStats& p = merged.phase(JobPhase::kDumpFiles);
  EXPECT_EQ(p.start, 10);
  EXPECT_EQ(p.end, 90);
  EXPECT_EQ(p.tape_bytes, 300u);
}

TEST(MergeReportsTest, FirstErrorWins) {
  JobReport ok, bad;
  bad.status = IoError("tape ate itself");
  std::vector<JobReport> parts{ok, bad};
  JobReport merged = MergeReports("op", parts);
  EXPECT_EQ(merged.status.code(), ErrorCode::kIoError);
}

TEST(MergeReportsTest, EmptyInput) {
  JobReport merged = MergeReports("op", {});
  EXPECT_EQ(merged.elapsed(), 0);
  EXPECT_TRUE(merged.status.ok());
}

TEST(PhaseStatsTest, CpuUtilizationIsClamped) {
  PhaseStats p;
  p.start = 0;
  p.end = 1000;
  // Concurrent jobs can push the busy integral past the phase's own window;
  // the report must still show a sane percentage.
  p.cpu_busy_start = 0;
  p.cpu_busy_end = 1500;
  EXPECT_DOUBLE_EQ(p.CpuUtilization(), 1.0);
  p.cpu_busy_end = -10;  // and never below zero
  EXPECT_DOUBLE_EQ(p.CpuUtilization(), 0.0);
}

TEST(JobReportTest, JsonRoundTrip) {
  JobReport r;
  r.name = "Logical Backup";
  r.start_time = 0;
  r.end_time = 100 * kSecond;
  r.stream_bytes = 220 * 1000 * 1000;
  r.data_bytes = 200 * 1000 * 1000;
  r.tapes_used = {"tape0", "tape1"};
  r.final_media = {"tape1"};
  r.faults.disk_retries = 3;
  r.faults.tape_remounts = 1;
  r.TouchPhase(JobPhase::kDumpFiles, 10 * kSecond, 0);
  r.TouchPhase(JobPhase::kDumpFiles, 90 * kSecond, 40 * kSecond);
  r.phase(JobPhase::kDumpFiles).disk_bytes = 200 * 1000 * 1000;
  r.phase(JobPhase::kDumpFiles).tape_bytes = 220 * 1000 * 1000;

  JsonWriter w;
  r.WriteJson(&w);
  auto parsed = ParseJson(w.Take());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& v = *parsed;

  EXPECT_EQ(v["name"].string_value(), "Logical Backup");
  EXPECT_EQ(v["status"].string_value(), "OK");
  EXPECT_DOUBLE_EQ(v["elapsed_s"].number(), 100.0);
  EXPECT_DOUBLE_EQ(v["mb_per_s"].number(), r.MBps());
  EXPECT_EQ(v["stream_bytes"].int_value(), 220 * 1000 * 1000);
  EXPECT_EQ(v["data_bytes"].int_value(), 200 * 1000 * 1000);
  ASSERT_EQ(v["tapes_used"].array().size(), 2u);
  EXPECT_EQ(v["tapes_used"].array()[1].string_value(), "tape1");
  ASSERT_EQ(v["final_media"].array().size(), 1u);
  EXPECT_EQ(v["faults"]["disk_retries"].int_value(), 3);
  EXPECT_EQ(v["faults"]["tape_remounts"].int_value(), 1);

  // Only active phases are serialized.
  ASSERT_EQ(v["phases"].array().size(), 1u);
  const JsonValue& phase = v["phases"].array()[0];
  EXPECT_EQ(phase["name"].string_value(),
            JobPhaseName(JobPhase::kDumpFiles));
  EXPECT_DOUBLE_EQ(phase["start_s"].number(), 10.0);
  EXPECT_DOUBLE_EQ(phase["elapsed_s"].number(), 80.0);
  EXPECT_DOUBLE_EQ(phase["cpu_utilization"].number(), 0.5);
  EXPECT_EQ(phase["disk_bytes"].int_value(), 200 * 1000 * 1000);
  EXPECT_DOUBLE_EQ(phase["disk_mb_per_s"].number(), 2.5);
  EXPECT_DOUBLE_EQ(phase["tape_mb_per_s"].number(), 2.75);
}

TEST(JobReportTest, JsonReportsFailureStatus) {
  JobReport r;
  r.name = "broken";
  r.status = IoError("tape ate itself");
  JsonWriter w;
  r.WriteJson(&w);
  auto parsed = ParseJson(w.Take());
  ASSERT_TRUE(parsed.ok());
  EXPECT_NE((*parsed)["status"].string_value(), "OK");
  EXPECT_NE((*parsed)["status"].string_value().find("tape ate itself"),
            std::string::npos);
}

TEST(JobPhaseTest, AllPhasesNamed) {
  for (int i = 0; i < static_cast<int>(JobPhase::kCount); ++i) {
    const char* name = JobPhaseName(static_cast<JobPhase>(i));
    EXPECT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "phase " << i;
  }
}

}  // namespace
}  // namespace bkup

// Fault-injection tests for the nightly fleet scheduler and the remote
// parallel image path:
//
//   * a tape drive dies mid-plan: the scheduler condemns it, re-dispatches
//     the failed volume onto the surviving drives, the rest of the queue
//     drains, and every volume still restores byte-identically;
//   * the failure night itself is deterministic — same plan, same seed,
//     byte-identical execution record;
//   * ParallelRemoteImageBackupJob survives a flaky link and a flaky server
//     drive at the same time (supervised retransmit + tape-retry ladders),
//     and the striped media restores byte-identically over the link.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/backup/scheduler.h"
#include "src/faults/fault_injector.h"
#include "src/workload/population.h"

namespace bkup {
namespace {

VolumeGeometry SmallGeometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 1;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;
  return geom;
}

VolumeGeometry WideGeometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;
  return geom;
}

// One night where drive d0 dies under the first dispatched volume, plus the
// post-night restore audit. Everything observable is captured so the
// determinism test can compare two runs wholesale.
struct FailureNightRun {
  NightReport report;
  std::string exec;
  uint64_t drives_killed = 0;
  std::vector<std::string> restore_errors;  // empty = all byte-identical
};

FailureNightRun RunDriveFailureNight() {
  FailureNightRun run;
  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  TapeLibrary library("fleet", 64 * kMiB, 0);
  SupervisionPolicy policy;

  const struct {
    const char* name;
    uint64_t bytes;
    uint64_t seed;
  } kVols[] = {{"va", 4 * kMiB, 101}, {"vb", 3 * kMiB, 102},
               {"vc", 2 * kMiB, 103}};

  std::vector<std::unique_ptr<Volume>> volumes;
  std::vector<std::unique_ptr<Filesystem>> filesystems;
  std::vector<std::map<std::string, uint32_t>> source_sums;
  std::vector<VolumeSpec> specs;
  for (const auto& v : kVols) {
    volumes.push_back(Volume::Create(&env, v.name, SmallGeometry()));
    auto fs = std::move(Filesystem::Format(volumes.back().get(), &env)).value();
    WorkloadParams params;
    params.seed = v.seed;
    params.target_bytes = v.bytes;
    EXPECT_TRUE(PopulateFilesystem(fs.get(), params).ok());
    source_sums.push_back(ChecksumTree(fs->LiveReader()).value());
    filesystems.push_back(std::move(fs));

    VolumeSpec spec;
    spec.name = v.name;
    spec.fs = filesystems.back().get();
    spec.mode = BackupMode::kImage;
    spec.estimated_bytes = v.bytes;
    specs.push_back(std::move(spec));
  }

  TapeDrive d0(&env, "d0");
  TapeDrive d1(&env, "d1");
  FleetConfig config;
  config.drives = {&d0, &d1};
  config.library = &library;
  config.supervision = &policy;

  // d0 dies after its first megabyte of the night: mid-stream under the
  // queue head. The supervised job's remount ladder cannot heal a dead
  // drive (the spare mounts on the same corpse), so the attempt fails with
  // kIoError and the scheduler must pull d0 and re-dispatch on d1.
  FaultPlan plan;
  plan.seed = 5;
  plan.TapeDriveFailsAfter("d0", 1 * kMiB);
  FaultInjector injector(&env, plan);
  injector.Arm(&d0);
  injector.Arm(&d1);

  NightlyScheduler scheduler(&filer, config, std::move(specs));
  CountdownLatch done(&env, 1);
  env.Spawn(scheduler.Run(&run.report, &done));
  env.Run();
  EXPECT_TRUE(done.done());
  run.exec = run.report.SerializeExecution();
  run.drives_killed = injector.stats().drives_killed;

  // Restore every volume from its final media on a fresh, unarmed drive
  // and compare checksums against the pre-night population.
  TapeDrive restore_drive(&env, "rd");
  for (size_t i = 0; i < run.report.volumes.size(); ++i) {
    const VolumeOutcome& out = run.report.volumes[i];
    if (!out.status.ok() || out.part_media.size() != 1 ||
        out.part_media[0].empty()) {
      run.restore_errors.push_back(out.name + ": no restorable media");
      continue;
    }
    const std::vector<std::string>& media = out.part_media[0];
    const size_t slot = library.SlotOfLabel(media[0]).value();
    if (!library.LoadSlot(&restore_drive, slot).ok()) {
      run.restore_errors.push_back(out.name + ": load failed");
      continue;
    }
    std::vector<Tape*> spares;
    for (size_t m = 1; m < media.size(); ++m) {
      spares.push_back(
          library.TapeInSlot(library.SlotOfLabel(media[m]).value()));
    }
    auto rvolume = Volume::Create(&env, "r." + out.name, SmallGeometry());
    ImageRestoreJobResult restore;
    CountdownLatch rdone(&env, 1);
    env.Spawn(ImageRestoreJob(&filer, rvolume.get(), &restore_drive, &restore,
                              &rdone, spares, &policy));
    env.Run();
    if (!restore.report.status.ok()) {
      run.restore_errors.push_back(out.name + ": " +
                                   restore.report.status.ToString());
      continue;
    }
    auto mounted = Filesystem::Mount(rvolume.get(), &env);
    if (!mounted.ok()) {
      run.restore_errors.push_back(out.name + ": " +
                                   mounted.status().ToString());
      continue;
    }
    if (ChecksumTree((*mounted)->LiveReader()).value() != source_sums[i]) {
      run.restore_errors.push_back(out.name + ": checksum mismatch");
    }
  }
  return run;
}

// Satellite: drive failure mid-plan. The scheduler reassigns the remaining
// queue, the failed volume completes on a surviving drive, and every volume
// restores byte-identically.
TEST(FleetFaultsTest, DriveFailureMidPlanReassignsAndRestores) {
  const FailureNightRun run = RunDriveFailureNight();
  const NightReport& report = run.report;
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(run.drives_killed, 1u);
  EXPECT_EQ(report.drives_failed, 1u);
  EXPECT_GE(report.reassignments, 1u);

  ASSERT_EQ(report.drives.size(), 2u);
  EXPECT_TRUE(report.drives[0].failed) << "d0 must be pulled from the pool";
  EXPECT_FALSE(report.drives[1].failed);

  std::map<std::string, const VolumeOutcome*> by_name;
  for (const VolumeOutcome& v : report.volumes) {
    EXPECT_TRUE(v.status.ok()) << v.name << ": " << v.status.ToString();
    by_name[v.name] = &v;
  }
  ASSERT_EQ(by_name.size(), 3u);
  // The queue head drew the doomed drive, failed there, and was re-run on
  // the survivor; the other two volumes never touched the corpse again.
  EXPECT_EQ(by_name["va"]->attempts, 2);
  ASSERT_EQ(by_name["va"]->drives_used.size(), 1u);
  EXPECT_EQ(by_name["va"]->drives_used[0], 1);
  EXPECT_EQ(by_name["vb"]->attempts, 1);
  EXPECT_EQ(by_name["vc"]->attempts, 1);
  for (const DriveGrant& g : report.grants) {
    if (g.attempt > 1 || report.volumes[g.volume].name != "va") {
      EXPECT_EQ(g.drive, 1)
          << "only va's first attempt may have used the dead drive";
    }
  }
  EXPECT_TRUE(run.restore_errors.empty())
      << "restore audit: " << run.restore_errors.front();
}

// The failure night replays byte-identically: same fault plan, same
// scheduler decisions, same execution record.
TEST(FleetFaultsTest, DriveFailureNightIsDeterministic) {
  const FailureNightRun a = RunDriveFailureNight();
  const FailureNightRun b = RunDriveFailureNight();
  EXPECT_EQ(a.exec, b.exec);
  EXPECT_EQ(a.drives_killed, b.drives_killed);
}

// Satellite: the remote parallel image path under simultaneous link and
// tape-drive faults. The supervised stream absorbs dropped frames
// (retransmit / reconnect ladder) while the server-side replay absorbs
// flaky tape transfers (retry ladder); the job must finish clean and the
// striped media must restore byte-identically over the same link.
TEST(FleetFaultsTest, RemoteParallelImageSurvivesLinkFlakyPlusTapeFault) {
  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  NetLink link(&env, "wan");
  TapeServer server(&env, "vault");
  TapeDrive* sd0 = server.AddDrive("dlt0");  // named "vault.dlt0"
  TapeDrive* sd1 = server.AddDrive("dlt1");
  Tape m0("night.0", 32 * kMiB);
  Tape m1("night.1", 32 * kMiB);
  sd0->LoadMedia(&m0);
  sd1->LoadMedia(&m1);

  auto volume = Volume::Create(&env, "home", WideGeometry());
  auto fs = std::move(Filesystem::Format(volume.get(), &env)).value();
  WorkloadParams params;
  params.seed = 77;
  params.target_bytes = 6 * kMiB;
  ASSERT_TRUE(PopulateFilesystem(fs.get(), params).ok());
  const auto source_sums = ChecksumTree(fs->LiveReader()).value();

  // Both failure domains at once: the wire eats frames while one of the two
  // server drives throws transient transfer errors.
  FaultPlan plan;
  plan.seed = 9;
  plan.LinkFlaky("wan", 0.08).TapeFlaky("vault.dlt0", 0.05);
  FaultInjector injector(&env, plan);
  injector.Arm(&link);
  injector.Arm(sd0);

  SupervisionPolicy policy;
  ParallelRemoteImageBackupResult backup;
  CountdownLatch done(&env, 1);
  env.Spawn(ParallelRemoteImageBackupJob(&filer, fs.get(), &link, &server,
                                         {sd0, sd1}, ImageDumpOptions{},
                                         /*delete_snapshot_after=*/true,
                                         &policy, &backup, &done));
  env.Run();
  ASSERT_TRUE(done.done());
  ASSERT_TRUE(backup.merged.status.ok()) << backup.merged.status.ToString();
  EXPECT_GE(injector.stats().link_faults_injected, 1u)
      << "the flaky link must actually drop frames";
  EXPECT_GE(injector.stats().tape_faults_injected, 1u)
      << "the flaky drive must actually fail transfers";
  EXPECT_GE(backup.merged.faults.link_retransmits, 1u);
  EXPECT_GE(backup.merged.faults.tape_retries, 1u);

  // Restore both stripes concurrently over the (now clean) link into one
  // fresh volume and verify the tree byte for byte.
  injector.Disarm(&link);
  injector.Disarm(sd0);
  ASSERT_TRUE(sd0->SeekTo(0).ok());
  ASSERT_TRUE(sd1->SeekTo(0).ok());
  auto rvolume = Volume::Create(&env, "r", WideGeometry());
  RemoteTarget t0;
  t0.link = &link;
  t0.server = &server;
  t0.drive = sd0;
  t0.supervision = &policy;
  RemoteTarget t1 = t0;
  t1.drive = sd1;
  ImageRestoreJobResult r0;
  ImageRestoreJobResult r1;
  CountdownLatch rdone(&env, 2);
  env.Spawn(RemoteImageRestoreJob(&filer, rvolume.get(), t0, &r0, &rdone));
  env.Spawn(RemoteImageRestoreJob(&filer, rvolume.get(), t1, &r1, &rdone));
  env.Run();
  ASSERT_TRUE(r0.report.status.ok()) << r0.report.status.ToString();
  ASSERT_TRUE(r1.report.status.ok()) << r1.report.status.ToString();
  auto mounted = Filesystem::Mount(rvolume.get(), &env);
  ASSERT_TRUE(mounted.ok()) << mounted.status().ToString();
  EXPECT_EQ(ChecksumTree((*mounted)->LiveReader()).value(), source_sums);
}

}  // namespace
}  // namespace bkup

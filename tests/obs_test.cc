// Tests for the observability layer: JSON writer/parser round-trips, metric
// registry identity semantics, histogram percentiles, span tracing (nesting,
// ring overflow, Chrome export invariants) and windowed utilization sampling.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/utilization.h"
#include "src/sim/environment.h"
#include "src/sim/resource.h"
#include "src/sim/task.h"
#include "src/util/units.h"

namespace bkup {
namespace {

// ------------------------------------------------------------------ JSON ---

TEST(JsonWriterTest, ObjectsArraysAndEscaping) {
  JsonWriter w;
  w.BeginObject()
      .Field("name", "say \"hi\"\n\t\\")
      .Field("count", uint64_t{42})
      .Field("delta", int64_t{-7})
      .Field("ratio", 0.5)
      .Field("on", true)
      .Key("items")
      .BeginArray()
      .Int(1)
      .Int(2)
      .EndArray()
      .Key("nothing")
      .Null()
      .EndObject();
  const std::string text = w.Take();

  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& v = *parsed;
  EXPECT_EQ(v["name"].string_value(), "say \"hi\"\n\t\\");
  EXPECT_EQ(v["count"].int_value(), 42);
  EXPECT_EQ(v["delta"].int_value(), -7);
  EXPECT_DOUBLE_EQ(v["ratio"].number(), 0.5);
  EXPECT_TRUE(v["on"].bool_value());
  ASSERT_TRUE(v["items"].is_array());
  EXPECT_EQ(v["items"].array().size(), 2u);
  EXPECT_TRUE(v["nothing"].is_null());
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginObject()
      .Field("inf", std::numeric_limits<double>::infinity())
      .Field("nan", std::nan(""))
      .EndObject();
  auto parsed = ParseJson(w.Take());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE((*parsed)["inf"].is_null());
  EXPECT_TRUE((*parsed)["nan"].is_null());
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
}

TEST(JsonParseTest, NestedLookupNeverCrashes) {
  auto parsed = ParseJson(R"({"a": {"b": [10, 20]}})");
  ASSERT_TRUE(parsed.ok());
  const JsonValue& v = *parsed;
  EXPECT_EQ(v["a"]["b"].array()[1].int_value(), 20);
  // Missing paths resolve to null values, not crashes.
  EXPECT_TRUE(v["a"]["missing"]["deeper"].is_null());
  EXPECT_EQ(v.Find("absent"), nullptr);
}

// --------------------------------------------------------------- metrics ---

TEST(MetricsTest, GetOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("ops");
  Counter* c2 = reg.GetCounter("ops");
  EXPECT_EQ(c1, c2);
  c1->Increment(3);
  c2->Increment();
  EXPECT_EQ(reg.FindCounter("ops")->value(), 4u);
}

TEST(MetricsTest, LabelsDistinguishSeries) {
  MetricsRegistry reg;
  Counter* d0 = reg.GetCounter("disk.bytes", {{"device", "d0"}});
  Counter* d1 = reg.GetCounter("disk.bytes", {{"device", "d1"}});
  EXPECT_NE(d0, d1);
  d0->Increment(100);
  d1->Increment(200);
  EXPECT_EQ(reg.FindCounter("disk.bytes", {{"device", "d0"}})->value(), 100u);
  EXPECT_EQ(reg.FindCounter("disk.bytes", {{"device", "d1"}})->value(), 200u);
  EXPECT_EQ(reg.FindCounter("disk.bytes"), nullptr);
  EXPECT_EQ(reg.FindCounter("disk.bytes", {{"device", "d2"}}), nullptr);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsTest, NamespacesAreSeparate) {
  MetricsRegistry reg;
  reg.GetCounter("x");
  reg.GetGauge("x")->Set(1.5);
  reg.GetHistogram("x", HistogramOptions::Log2())->Observe(8);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_DOUBLE_EQ(reg.FindGauge("x")->value(), 1.5);
  EXPECT_EQ(reg.FindHistogram("x")->count(), 1u);
}

TEST(MetricsTest, Log2HistogramPercentiles) {
  Histogram h(HistogramOptions::Log2());
  // 90 small samples in [2,4), 10 large in [1024,2048).
  for (int i = 0; i < 90; ++i) {
    h.Observe(3.0);
  }
  for (int i = 0; i < 10; ++i) {
    h.Observe(1500.0);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 1500.0);
  EXPECT_NEAR(h.mean(), (90 * 3.0 + 10 * 1500.0) / 100.0, 1e-9);
  // Bucket-granular: p50/p90 land in the [2,4) bucket, p99 in [1024,2048).
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 4.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.90), 4.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 2048.0);
}

TEST(MetricsTest, LinearHistogramBuckets) {
  // 10 buckets of width 10 over [0, 100), plus underflow and overflow.
  Histogram h(HistogramOptions::Linear(0.0, 10.0, 10));
  h.Observe(-5.0);   // underflow
  h.Observe(0.0);    // first body bucket
  h.Observe(55.0);   // bucket [50, 60)
  h.Observe(250.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 250.0);
  const auto& buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 12u);
  EXPECT_EQ(buckets.front(), 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[6], 1u);
  EXPECT_EQ(buckets.back(), 1u);
  EXPECT_TRUE(std::isinf(h.BucketUpperBound(buckets.size() - 1)));
}

TEST(MetricsTest, EmptyHistogramIsDefined) {
  Histogram h(HistogramOptions::Log2());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(MetricsTest, JsonExportRoundTrips) {
  MetricsRegistry reg;
  reg.GetCounter("writes", {{"device", "d0"}})->Increment(7);
  reg.GetGauge("depth")->Set(2.25);
  Histogram* h = reg.GetHistogram("lat", HistogramOptions::Log2());
  h->Observe(10);
  h->Observe(100);

  auto parsed = ParseJson(reg.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& v = *parsed;
  ASSERT_EQ(v["counters"].array().size(), 1u);
  const JsonValue& c = v["counters"].array()[0];
  EXPECT_EQ(c["name"].string_value(), "writes");
  EXPECT_EQ(c["labels"]["device"].string_value(), "d0");
  EXPECT_EQ(c["value"].int_value(), 7);
  ASSERT_EQ(v["gauges"].array().size(), 1u);
  EXPECT_DOUBLE_EQ(v["gauges"].array()[0]["value"].number(), 2.25);
  ASSERT_EQ(v["histograms"].array().size(), 1u);
  const JsonValue& hist = v["histograms"].array()[0];
  EXPECT_EQ(hist["count"].int_value(), 2);
  EXPECT_DOUBLE_EQ(hist["sum"].number(), 110.0);
  EXPECT_DOUBLE_EQ(hist["mean"].number(), 55.0);
}

// --------------------------------------------------------------- tracing ---

Task TracedWork(SimEnvironment* env) {
  TRACE_SPAN(env, "job:test", "outer");
  co_await env->Delay(10 * kMillisecond);
  {
    TRACE_SPAN(env, "job:test", "inner");
    co_await env->Delay(5 * kMillisecond);
  }
  co_await env->Delay(10 * kMillisecond);
}

TEST(TracerTest, SpansNestAndStampSimulatedTime) {
  SimEnvironment env;
  Tracer tracer(&env);
  env.Spawn(TracedWork(&env));
  env.Run();

  // outer-begin, inner-begin, inner-end, outer-end.
  ASSERT_EQ(tracer.event_count(), 4u);
  const auto& ev = tracer.events();
  EXPECT_EQ(ev[0].kind, TraceEvent::Kind::kBegin);
  EXPECT_EQ(ev[0].name, "outer");
  EXPECT_EQ(ev[0].ts, 0);
  EXPECT_EQ(ev[1].kind, TraceEvent::Kind::kBegin);
  EXPECT_EQ(ev[1].name, "inner");
  EXPECT_EQ(ev[1].ts, 10 * kMillisecond);
  EXPECT_EQ(ev[2].kind, TraceEvent::Kind::kEnd);
  EXPECT_EQ(ev[2].ts, 15 * kMillisecond);
  EXPECT_EQ(ev[3].kind, TraceEvent::Kind::kEnd);
  EXPECT_EQ(ev[3].ts, 25 * kMillisecond);
  // Both spans share the one named track.
  EXPECT_EQ(tracer.track_count(), 1u);
  EXPECT_EQ(ev[0].track, ev[1].track);
}

TEST(TracerTest, MacrosNoOpWithoutTracer) {
  SimEnvironment env;
  ASSERT_EQ(env.tracer(), nullptr);
  env.Spawn(TracedWork(&env));  // must not crash
  const SimTime end = env.Run();
  EXPECT_EQ(end, 25 * kMillisecond);
}

TEST(TracerTest, AttachesAndDetachesFromEnvironment) {
  SimEnvironment env;
  {
    Tracer tracer(&env);
    EXPECT_EQ(env.tracer(), &tracer);
  }
  EXPECT_EQ(env.tracer(), nullptr);
}

TEST(TracerTest, RingOverflowDropsOldest) {
  SimEnvironment env;
  Tracer tracer(&env, /*capacity=*/4);
  const uint32_t track = tracer.Track("t");
  for (int i = 0; i < 10; ++i) {
    tracer.Instant(track, "ev" + std::to_string(i));
  }
  EXPECT_EQ(tracer.event_count(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Recent history wins: the survivors are the last four.
  EXPECT_EQ(tracer.events().front().name, "ev6");
  EXPECT_EQ(tracer.events().back().name, "ev9");
}

Task HoldResource(SimEnvironment* env, Resource* res, SimDuration lead,
                  SimDuration hold) {
  co_await env->Delay(lead);
  co_await res->Acquire();
  co_await env->Delay(hold);
  res->Release();
}

TEST(TracerTest, WatchedResourceEmitsCounterTrack) {
  SimEnvironment env;
  Resource res(&env, 2, "disk.arm");
  Tracer tracer(&env);
  tracer.WatchResource(&res);

  env.Spawn(HoldResource(&env, &res, 0, 10 * kMillisecond));
  env.Spawn(HoldResource(&env, &res, 0, 20 * kMillisecond));
  env.Run();

  // Initial sample + 2 acquires + 2 releases.
  std::vector<double> values;
  for (const TraceEvent& e : tracer.events()) {
    ASSERT_EQ(e.kind, TraceEvent::Kind::kCounter);
    values.push_back(e.value);
  }
  EXPECT_EQ(values, (std::vector<double>{0, 1, 2, 1, 0}));
}

// Chrome-export invariants: parses, one thread_name record per track,
// balanced B/E per track, and per-track monotonically non-decreasing ts.
TEST(TracerTest, ChromeJsonExportInvariants) {
  SimEnvironment env;
  Resource res(&env, 1, "cpu");
  Tracer tracer(&env);
  tracer.WatchResource(&res);
  env.Spawn(TracedWork(&env));
  env.Spawn(HoldResource(&env, &res, 2 * kMillisecond, 6 * kMillisecond));
  tracer.Instant(tracer.Track("faults"), "disk.retry");
  env.Run();

  auto parsed = ParseJson(tracer.ToChromeJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& events = (*parsed)["traceEvents"];
  ASSERT_TRUE(events.is_array());

  size_t thread_metadata = 0;
  size_t process_metadata = 0;
  std::map<int64_t, int64_t> last_ts_by_tid;
  std::map<int64_t, int64_t> open_spans_by_tid;
  for (const JsonValue& e : events.array()) {
    const std::string& ph = e["ph"].string_value();
    if (ph == "M") {
      const std::string& kind = e["name"].string_value();
      if (kind == "process_name") {
        ++process_metadata;
      } else {
        EXPECT_EQ(kind, "thread_name");
        ++thread_metadata;
      }
      continue;
    }
    const int64_t tid = e["tid"].int_value();
    const int64_t ts = e["ts"].int_value();
    auto [it, first] = last_ts_by_tid.try_emplace(tid, ts);
    if (!first) {
      EXPECT_GE(ts, it->second) << "ts regressed on tid " << tid;
      it->second = ts;
    }
    if (ph == "B") {
      ++open_spans_by_tid[tid];
    } else if (ph == "E") {
      --open_spans_by_tid[tid];
      EXPECT_GE(open_spans_by_tid[tid], 0);
    } else {
      EXPECT_TRUE(ph == "i" || ph == "C") << "unexpected ph " << ph;
    }
  }
  // 3 tracks: the span track, the faults track, the cpu counter track —
  // all on the default "filer" process row.
  EXPECT_EQ(thread_metadata, tracer.track_count());
  EXPECT_EQ(process_metadata, tracer.process_count());
  EXPECT_EQ(tracer.track_count(), 3u);
  EXPECT_EQ(tracer.process_count(), 1u);
  for (const auto& [tid, open] : open_spans_by_tid) {
    EXPECT_EQ(open, 0) << "unbalanced spans on tid " << tid;
  }
}

// Cross-node context: spans on two process rows under one trace id, flow
// arrows between them, and the incarnation label all survive the export.
TEST(TracerTest, ProcessRowsFlowsAndContextExport) {
  SimEnvironment env;
  Resource res(&env, 1, "cpu");
  Tracer tracer(&env);
  tracer.WatchResource(&res);
  env.Spawn(HoldResource(&env, &res, 0, 1 * kMillisecond));

  const TraceContext ctx = tracer.StartTrace();
  ASSERT_TRUE(ctx.valid());
  const uint32_t filer_track = tracer.Track("job:x");
  const uint32_t vault_track = tracer.Track("srv:vault",
                                            tracer.Process("vault"));
  EXPECT_EQ(tracer.track_pid(filer_track), 1u);
  EXPECT_EQ(tracer.track_pid(vault_track), 2u);

  const uint64_t flow = tracer.ReserveFlowIds() | 7;
  tracer.Begin(filer_track, "send", ctx);
  tracer.FlowStart(filer_track, flow, "frame", ctx);
  tracer.Begin(vault_track, "recv", ctx.NextIncarnation());
  tracer.FlowEnd(vault_track, flow, "frame", ctx);
  tracer.End(vault_track);
  tracer.End(filer_track);
  env.Run();

  auto parsed = ParseJson(tracer.ToChromeJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE((*parsed)["otherData"]["dropped_events"].is_number());

  std::map<int64_t, std::set<int64_t>> pids_by_trace;
  std::set<std::string> process_names;
  int64_t max_incarnation = 0;
  size_t flow_starts = 0;
  size_t flow_ends = 0;
  for (const JsonValue& e : (*parsed)["traceEvents"].array()) {
    const std::string& ph = e["ph"].string_value();
    if (ph == "M" && e["name"].string_value() == "process_name") {
      process_names.insert(e["args"]["name"].string_value());
    }
    if (e["args"]["trace"].is_number()) {
      pids_by_trace[e["args"]["trace"].int_value()].insert(
          e["pid"].int_value());
      max_incarnation =
          std::max(max_incarnation, e["args"]["incarnation"].int_value());
    }
    if (ph == "s") {
      EXPECT_TRUE(e["id"].is_number());
      ++flow_starts;
    } else if (ph == "f") {
      EXPECT_TRUE(e["id"].is_number());
      ++flow_ends;
    }
  }
  EXPECT_EQ(process_names,
            (std::set<std::string>{"filer", "vault"}));
  ASSERT_EQ(pids_by_trace.size(), 1u) << "one logical job = one trace id";
  EXPECT_EQ(pids_by_trace.begin()->second.size(), 2u)
      << "the trace id must span both process rows";
  EXPECT_EQ(max_incarnation, 1);
  EXPECT_EQ(flow_starts, 1u);
  EXPECT_EQ(flow_ends, 1u);
}

// Satellite contract: the ring's drop counter is visible in the artifact.
TEST(TracerTest, DroppedEventsSurfaceInExportMetadata) {
  SimEnvironment env;
  Tracer tracer(&env, /*capacity=*/4);
  const uint32_t track = tracer.Track("t");
  for (int i = 0; i < 10; ++i) {
    tracer.Instant(track, "ev" + std::to_string(i));
  }
  auto parsed = ParseJson(tracer.ToChromeJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ((*parsed)["otherData"]["dropped_events"].int_value(), 6);
}

// The SLO engine's feed: every closed span reaches the listener with its
// track, name and both timestamps.
TEST(TracerTest, SpanListenerObservesCompletions) {
  struct Collector : Tracer::SpanListener {
    std::vector<std::tuple<std::string, std::string, SimTime, SimTime>> ends;
    void OnSpanEnd(const std::string& track, const std::string& name,
                   SimTime begin, SimTime end) override {
      ends.emplace_back(track, name, begin, end);
    }
  };
  SimEnvironment env;
  Tracer tracer(&env);
  Collector collector;
  tracer.set_span_listener(&collector);
  env.Spawn(TracedWork(&env));
  env.Run();
  tracer.set_span_listener(nullptr);

  // Inner closes first, then outer; durations match the simulated delays.
  ASSERT_EQ(collector.ends.size(), 2u);
  EXPECT_EQ(std::get<1>(collector.ends[0]), "inner");
  EXPECT_EQ(std::get<3>(collector.ends[0]) - std::get<2>(collector.ends[0]),
            5 * kMillisecond);
  EXPECT_EQ(std::get<1>(collector.ends[1]), "outer");
  EXPECT_EQ(std::get<3>(collector.ends[1]) - std::get<2>(collector.ends[1]),
            25 * kMillisecond);
}

// ------------------------------------------------------- JSON edge cases ---

// Deep nesting keeps the writer's balance bookkeeping and the parser's
// recursion honest all the way down and back. 30 object+array pairs stays
// inside the parser's 64-level recursion cap; one past it must fail
// cleanly, not overflow the stack.
TEST(JsonEdgeTest, DeepNestingRoundTrips) {
  constexpr int kDepth = 30;
  JsonWriter w;
  for (int i = 0; i < kDepth; ++i) {
    w.BeginObject().Key("a").BeginArray();
  }
  w.Int(7);
  for (int i = 0; i < kDepth; ++i) {
    w.EndArray().EndObject();
  }
  auto parsed = ParseJson(w.Take());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* v = &*parsed;
  for (int i = 0; i < kDepth; ++i) {
    v = &(*v)["a"];
    ASSERT_TRUE(v->is_array());
    ASSERT_EQ(v->array().size(), 1u);
    v = &v->array()[0];
  }
  EXPECT_EQ(v->int_value(), 7);

  std::string too_deep(65, '[');
  too_deep += "1";
  too_deep.append(65, ']');
  EXPECT_FALSE(ParseJson(too_deep).ok());
}

// UTF-8 multi-byte sequences pass through the escaper byte-for-byte;
// control characters go out as \u00XX and come back as the raw bytes.
TEST(JsonEdgeTest, Utf8AndControlCharsRoundTrip) {
  const std::string utf8 = "caf\xc3\xa9 \xe6\x97\xa5\xe6\x9c\xac \xf0\x9f\x92\xbe";
  const std::string control = "a" "\x01" "b" "\x1f" "c" "\x7f";
  JsonWriter w;
  w.BeginObject().Field("utf8", utf8).Field("ctl", control).EndObject();
  const std::string doc = w.Take();
  // The escaper must not mangle multi-byte sequences into \u escapes.
  EXPECT_NE(doc.find(utf8), std::string::npos);
  EXPECT_NE(doc.find("\\u0001"), std::string::npos);
  EXPECT_NE(doc.find("\\u001f"), std::string::npos);

  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ((*parsed)["utf8"].string_value(), utf8);
  EXPECT_EQ((*parsed)["ctl"].string_value(), control);
}

// Non-finite doubles become null in every writer path that emits a double.
TEST(JsonEdgeTest, NonFiniteDoublesInNestedStructures) {
  JsonWriter w;
  w.BeginObject()
      .Key("series")
      .BeginArray()
      .Double(1.5)
      .Double(std::nan(""))
      .Double(std::numeric_limits<double>::infinity())
      .Double(-std::numeric_limits<double>::infinity())
      .EndArray()
      .EndObject();
  auto parsed = ParseJson(w.Take());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& series = (*parsed)["series"].array();
  ASSERT_EQ(series.size(), 4u);
  EXPECT_TRUE(series[0].is_number());
  EXPECT_TRUE(series[1].is_null());
  EXPECT_TRUE(series[2].is_null());
  EXPECT_TRUE(series[3].is_null());
}

// ----------------------------------------------------------- utilization ---

Task UtilScenario(SimEnvironment* env, Resource* res) {
  co_await env->Delay(500 * kMillisecond);
  co_await res->Acquire();
  co_await env->Delay(1 * kSecond);
  res->Release();
  co_await env->Delay(500 * kMillisecond);
}

TEST(UtilizationSamplerTest, WindowsAreExact) {
  SimEnvironment env;
  Resource res(&env, 1, "cpu");
  UtilizationSampler sampler(&res, 1 * kSecond);
  env.Spawn(UtilScenario(&env, &res));
  const SimTime end = env.Run();
  ASSERT_EQ(end, 2 * kSecond);
  sampler.Finish(end);

  // Busy [0.5s, 1.5s) against 1s windows: both windows half busy.
  const auto& samples = sampler.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].start, 0);
  EXPECT_DOUBLE_EQ(samples[0].utilization, 0.5);
  EXPECT_EQ(samples[1].start, 1 * kSecond);
  EXPECT_DOUBLE_EQ(samples[1].utilization, 0.5);
}

TEST(UtilizationSamplerTest, TrailingPartialWindow) {
  SimEnvironment env;
  Resource res(&env, 1, "cpu");
  UtilizationSampler sampler(&res, 1 * kSecond);
  // Busy for the full first quarter-second, then idle; finish mid-window.
  env.Spawn(HoldResource(&env, &res, 0, 250 * kMillisecond));
  env.Run();
  sampler.Finish(500 * kMillisecond);

  const auto& samples = sampler.samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].start, 0);
  // 250ms busy over a 500ms partial window.
  EXPECT_DOUBLE_EQ(samples[0].utilization, 0.5);
}

TEST(UtilizationSamplerTest, CapacityScalesUtilization) {
  SimEnvironment env;
  Resource res(&env, 4, "arms");
  UtilizationSampler sampler(&res, 1 * kSecond);
  // Two of four units held for the full window.
  env.Spawn(HoldResource(&env, &res, 0, 1 * kSecond));
  env.Spawn(HoldResource(&env, &res, 0, 1 * kSecond));
  const SimTime end = env.Run();
  sampler.Finish(end);

  ASSERT_EQ(sampler.samples().size(), 1u);
  EXPECT_DOUBLE_EQ(sampler.samples()[0].utilization, 0.5);
}

TEST(UtilizationSamplerTest, JsonShape) {
  SimEnvironment env;
  Resource res(&env, 1, "filer.cpu");
  UtilizationSampler sampler(&res, 1 * kSecond);
  env.Spawn(HoldResource(&env, &res, 0, 2 * kSecond));
  sampler.Finish(env.Run());

  JsonWriter w;
  sampler.WriteJson(&w);
  auto parsed = ParseJson(w.Take());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& v = *parsed;
  EXPECT_EQ(v["resource"].string_value(), "filer.cpu");
  EXPECT_DOUBLE_EQ(v["window_s"].number(), 1.0);
  ASSERT_EQ(v["samples"].array().size(), 2u);
  EXPECT_DOUBLE_EQ(v["samples"].array()[1]["t_s"].number(), 1.0);
  EXPECT_DOUBLE_EQ(v["samples"].array()[1]["utilization"].number(), 1.0);
}

}  // namespace
}  // namespace bkup

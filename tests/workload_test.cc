// Tests for the workload generator: population shape, determinism, quota
// trees, aging-induced fragmentation, and tree checksumming.
#include <gtest/gtest.h>

#include "src/workload/aging.h"
#include "src/workload/population.h"

namespace bkup {
namespace {

VolumeGeometry BigGeometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 3;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 4096;  // 3*3*4096 blocks = 144 MiB
  return geom;
}

struct WorkloadFixture {
  WorkloadFixture() {
    volume = Volume::Create(&env, "home", BigGeometry());
    fs = std::move(Filesystem::Format(volume.get(), &env)).value();
  }
  SimEnvironment env;
  std::unique_ptr<Volume> volume;
  std::unique_ptr<Filesystem> fs;
};

TEST(WorkloadTest, PopulatesRequestedVolume) {
  WorkloadFixture f;
  WorkloadParams params;
  params.target_bytes = 8 * kMiB;
  auto stats = PopulateFilesystem(f.fs.get(), params);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->bytes, params.target_bytes * 95 / 100);
  EXPECT_GT(stats->files, 50u) << "a lognormal mix should yield many files";
  EXPECT_GT(stats->directories, 3u);
  const FsStats fss = f.fs->Stats();
  EXPECT_GE(fss.active_blocks * kBlockSize, stats->bytes);
}

TEST(WorkloadTest, DeterministicInSeed) {
  WorkloadParams params;
  params.target_bytes = 2 * kMiB;
  params.seed = 42;

  auto run = [&params]() {
    WorkloadFixture f;
    auto stats = PopulateFilesystem(f.fs.get(), params);
    EXPECT_TRUE(stats.ok());
    auto sums = ChecksumTree(f.fs->LiveReader());
    EXPECT_TRUE(sums.ok());
    return *sums;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 10u);
}

TEST(WorkloadTest, QuotaTreesSplitEvenly) {
  WorkloadFixture f;
  WorkloadParams params;
  params.target_bytes = 8 * kMiB;
  params.quota_trees = 4;
  auto stats = PopulateFilesystem(f.fs.get(), params);
  ASSERT_TRUE(stats.ok());
  FsReader reader = f.fs->LiveReader();
  uint64_t sizes[4] = {};
  for (uint32_t qt = 0; qt < 4; ++qt) {
    ASSERT_TRUE(reader.LookupPath(QuotaTreePath(qt)).ok());
    Status st = WalkTree(reader, QuotaTreePath(qt),
                         [&sizes, qt](const std::string&, Inum,
                                      const InodeData& inode) {
                           sizes[qt] += inode.size;
                         });
    ASSERT_TRUE(st.ok());
  }
  for (uint32_t qt = 0; qt < 4; ++qt) {
    EXPECT_NEAR(static_cast<double>(sizes[qt]), 2.0 * kMiB,
                0.35 * kMiB)
        << "quota tree " << qt << " should hold ~1/4 of the data";
  }
}

TEST(WorkloadTest, ChecksumTreeSeesEveryFile) {
  WorkloadFixture f;
  ASSERT_TRUE(f.fs->Mkdir("/d", 0755).ok());
  auto a = f.fs->Create("/a", 0644);
  auto b = f.fs->Create("/d/b", 0644);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::vector<uint8_t> data(100, 7);
  ASSERT_TRUE(f.fs->Write(*a, 0, data).ok());
  ASSERT_TRUE(f.fs->Write(*b, 0, data).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  auto sums = ChecksumTree(f.fs->LiveReader());
  ASSERT_TRUE(sums.ok());
  EXPECT_EQ(sums->size(), 2u);
  EXPECT_EQ(sums->at("/a"), sums->at("/d/b"));
}

TEST(AgingTest, AgingFragmentsTheLayout) {
  WorkloadFixture fresh;
  WorkloadFixture aged;
  WorkloadParams params;
  // Fill most of the volume so churn forces the write allocator to wrap
  // into scattered free holes (an emptier volume barely fragments, which is
  // also true of real WAFL).
  params.target_bytes = 80 * kMiB;
  ASSERT_TRUE(PopulateFilesystem(fresh.fs.get(), params).ok());
  ASSERT_TRUE(PopulateFilesystem(aged.fs.get(), params).ok());

  AgingParams aging;
  aging.rounds = 5;
  aging.churn_fraction = 0.35;
  auto stats = AgeFilesystem(aged.fs.get(), aging);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->deletions, 20u);
  EXPECT_GT(stats->creations, 20u);

  auto frag_fresh = MeasureFragmentation(fresh.fs->LiveReader());
  auto frag_aged = MeasureFragmentation(aged.fs->LiveReader());
  ASSERT_TRUE(frag_fresh.ok());
  ASSERT_TRUE(frag_aged.ok());
  EXPECT_GT(frag_fresh->MeanRunBlocks(), frag_aged->MeanRunBlocks())
      << "aging must scatter file blocks (paper footnote 1)";
}

TEST(AgingTest, AgedFilesystemStillVerifies) {
  WorkloadFixture f;
  WorkloadParams params;
  params.target_bytes = 8 * kMiB;
  ASSERT_TRUE(PopulateFilesystem(f.fs.get(), params).ok());
  AgingParams aging;
  aging.rounds = 2;
  ASSERT_TRUE(AgeFilesystem(f.fs.get(), aging).ok());
  // Remount and confirm the tree is intact and readable.
  auto sums_before = ChecksumTree(f.fs->LiveReader());
  ASSERT_TRUE(sums_before.ok());
  f.fs.reset();
  auto fs2 = Filesystem::Mount(f.volume.get(), &f.env);
  ASSERT_TRUE(fs2.ok());
  auto sums_after = ChecksumTree((*fs2)->LiveReader());
  ASSERT_TRUE(sums_after.ok());
  EXPECT_EQ(*sums_before, *sums_after);
}

TEST(FragmentationTest, SequentialFileHasOneRun) {
  WorkloadFixture f;
  auto inum = f.fs->Create("/seq", 0644);
  ASSERT_TRUE(inum.ok());
  std::vector<uint8_t> data(20 * kBlockSize, 1);
  ASSERT_TRUE(f.fs->Write(*inum, 0, data).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  auto frag = MeasureFragmentation(f.fs->LiveReader());
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ(frag->files, 1u);
  EXPECT_EQ(frag->mapped_blocks, 20u);
  EXPECT_EQ(frag->runs, 1u) << "a freshly written file should be contiguous";
}

}  // namespace
}  // namespace bkup

// SloMonitor unit tests: progress/ETA/deadline-risk math on the simulated
// clock, registration and completion semantics, breach accounting, the
// tracer span-listener latency path, and the JSON shape the scheduler
// embeds as night_health. A final integration case runs a real (tiny)
// night with deliberately tight deadlines and asserts every miss was
// flagged while the night was still live.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/backup/scheduler.h"
#include "src/fs/filesystem.h"
#include "src/obs/json.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/sim/environment.h"
#include "src/util/units.h"
#include "src/workload/population.h"

namespace bkup {
namespace {

constexpr uint64_t kMB = 1'000'000;  // the monitor's MB (10^6 bytes)

TEST(SloMonitorTest, QueuedObjectiveProjectsWithPlanningRate) {
  SimEnvironment env;
  SloMonitor monitor(&env);
  monitor.Register("queued", /*deadline=*/100 * kSecond,
                   /*total_bytes=*/10 * kMB);
  monitor.Register("tight", /*deadline=*/1 * kSecond,
                   /*total_bytes=*/10 * kMB);

  // No planning rate, no bytes moved: the ETA is unknown, nothing at risk.
  {
    const SloHealthSample& s = monitor.Sample();
    ASSERT_EQ(s.entries.size(), 2u);
    EXPECT_EQ(s.entries[0].eta, -1);
    EXPECT_FALSE(s.entries[0].at_risk);
  }

  // With a 5 MB/s planning rate the queued volume projects a 2 s finish —
  // fine for the 100 s deadline, past the 1 s one.
  monitor.set_default_rate_mb_s(5.0);
  const SloHealthSample& s = monitor.Sample();
  EXPECT_EQ(s.entries[0].eta, 2 * kSecond);
  EXPECT_FALSE(s.entries[0].at_risk);
  EXPECT_EQ(s.entries[1].eta, 2 * kSecond);
  EXPECT_TRUE(s.entries[1].at_risk);
  EXPECT_FALSE(s.entries[1].breached);
  EXPECT_TRUE(monitor.WasFlaggedLive("tight"));
  EXPECT_FALSE(monitor.WasFlaggedLive("queued"));
}

TEST(SloMonitorTest, ObservedRateDrivesEtaAndBurn) {
  SimEnvironment env;
  SloMonitor monitor(&env);
  monitor.Register("home", /*deadline=*/100 * kSecond,
                   /*total_bytes=*/100 * kMB);

  // 10 MB in 10 s: rate 1 MB/s, 90 MB to go, ETA lands exactly on the
  // deadline (not past it), burn = (10% of budget) / (10% of work) = 1.
  env.RunUntil(10 * kSecond);
  monitor.ReportProgress("home", 10 * kMB);
  const SloHealthSample& s = monitor.Sample();
  ASSERT_EQ(s.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(s.entries[0].progress, 0.1);
  EXPECT_DOUBLE_EQ(s.entries[0].rate_mb_s, 1.0);
  EXPECT_EQ(s.entries[0].eta, 100 * kSecond);
  EXPECT_DOUBLE_EQ(s.entries[0].burn, 1.0);
  EXPECT_FALSE(s.entries[0].at_risk);
  EXPECT_FALSE(monitor.WasFlaggedLive("home"));
}

TEST(SloMonitorTest, SlowStreamIsFlaggedAtRiskBeforeTheDeadline) {
  SimEnvironment env;
  SloMonitor monitor(&env);
  monitor.Register("home", /*deadline=*/100 * kSecond,
                   /*total_bytes=*/100 * kMB);

  // 10 MB in 20 s: half speed. The 200 s projection overshoots the
  // deadline with 80 s still on the clock — flagged at-risk, not breached.
  env.RunUntil(20 * kSecond);
  monitor.ReportProgress("home", 10 * kMB);
  const SloHealthSample& s = monitor.Sample();
  EXPECT_DOUBLE_EQ(s.entries[0].rate_mb_s, 0.5);
  EXPECT_EQ(s.entries[0].eta, 200 * kSecond);
  EXPECT_TRUE(s.entries[0].at_risk);
  EXPECT_FALSE(s.entries[0].breached);
  EXPECT_DOUBLE_EQ(s.entries[0].burn, 2.0);
  EXPECT_TRUE(monitor.WasFlaggedLive("home"));
  EXPECT_EQ(monitor.breaches(), 0u);
}

TEST(SloMonitorTest, ProgressIsMonotoneAndCappedAtTotal) {
  SimEnvironment env;
  SloMonitor monitor(&env);
  monitor.Register("v", SloMonitor::kNoDeadline, /*total_bytes=*/100);

  monitor.ReportProgress("v", 50);
  monitor.ReportProgress("v", 30);  // stale reading must not regress
  env.RunUntil(1 * kSecond);
  EXPECT_DOUBLE_EQ(monitor.Sample().entries[0].progress, 0.5);

  monitor.ReportProgress("v", 1000);  // overshoot clamps to 1
  EXPECT_DOUBLE_EQ(monitor.Sample().entries[0].progress, 1.0);

  monitor.Complete("v", /*ok=*/true);
  monitor.ReportProgress("v", 0);  // ignored after completion
  const SloHealthSample::Entry& e = monitor.Sample().entries[0];
  EXPECT_TRUE(e.done);
  EXPECT_DOUBLE_EQ(e.progress, 1.0);
}

TEST(SloMonitorTest, BreachedThenCompletedVolumeStaysABreach) {
  SimEnvironment env;
  SloMonitor monitor(&env);
  monitor.Register("late", /*deadline=*/10 * kSecond, /*total_bytes=*/0);

  env.RunUntil(15 * kSecond);
  {
    const SloHealthSample::Entry& e = monitor.Sample().entries[0];
    EXPECT_TRUE(e.breached);
    EXPECT_TRUE(e.at_risk);  // breached while still running
    EXPECT_FALSE(e.done);
  }
  EXPECT_TRUE(monitor.WasFlaggedLive("late"));
  EXPECT_EQ(monitor.breaches(), 1u);

  // Completing (even successfully) after the deadline is still a breach,
  // but the finished volume is no longer "at risk".
  monitor.Complete("late", /*ok=*/true);
  env.RunUntil(20 * kSecond);
  const SloHealthSample::Entry& e = monitor.Sample().entries[0];
  EXPECT_TRUE(e.done);
  EXPECT_TRUE(e.breached);
  EXPECT_FALSE(e.at_risk);
  EXPECT_EQ(e.eta, 15 * kSecond);  // ETA of a finished volume = finish time
  EXPECT_EQ(monitor.breaches(), 1u);
}

TEST(SloMonitorTest, FailedCompletionCountsAsBreachEvenInsideDeadline) {
  SimEnvironment env;
  SloMonitor monitor(&env);
  monitor.Register("bad", /*deadline=*/100 * kSecond, /*total_bytes=*/1);
  monitor.Complete("bad", /*ok=*/false);
  EXPECT_EQ(monitor.breaches(), 1u);
}

TEST(SloMonitorTest, ReRegisteringResetsTheObjective) {
  SimEnvironment env;
  SloMonitor monitor(&env);
  monitor.Register("v", /*deadline=*/10 * kSecond, /*total_bytes=*/100);
  monitor.ReportProgress("v", 50);
  env.RunUntil(5 * kSecond);

  monitor.Register("v", /*deadline=*/20 * kSecond, /*total_bytes=*/200);
  const SloHealthSample& s = monitor.Sample();
  ASSERT_EQ(s.entries.size(), 1u);  // replaced in place, not appended
  EXPECT_DOUBLE_EQ(s.entries[0].progress, 0.0);
  EXPECT_FALSE(s.entries[0].breached);
}

TEST(SloMonitorTest, LatencyObjectivesRideTheSpanListener) {
  SimEnvironment env;
  SloMonitor monitor(&env);
  Tracer tracer(&env);
  tracer.set_span_listener(&monitor);
  monitor.AddLatencyObjective("tape.write", /*target=*/1 * kSecond);
  monitor.AddLatencyObjective("tape.write", /*target=*/1 * kMillisecond);

  const uint32_t track = tracer.Track("drive");
  for (int i = 0; i < 4; ++i) {
    tracer.Begin(track, "tape.write");
    env.RunUntil(env.now() + 4 * kMillisecond);
    tracer.End(track);
    tracer.Begin(track, "unrelated");  // must not feed the objective
    env.RunUntil(env.now() + 10 * kSecond);
    tracer.End(track);
  }
  tracer.set_span_listener(nullptr);

  std::vector<SloLatencyStatus> st = monitor.LatencyStatus();
  ASSERT_EQ(st.size(), 2u);
  EXPECT_EQ(st[0].count, 4u);
  EXPECT_EQ(st[1].count, 4u);
  // 4 ms writes: bucket-granular p99 sits far under 1 s, over 1 ms.
  EXPECT_FALSE(st[0].breached);
  EXPECT_TRUE(st[1].breached);
  EXPECT_GT(st[1].observed, 1 * kMillisecond);
}

TEST(SloMonitorTest, WriteJsonCarriesSamplesObjectivesAndLatency) {
  SimEnvironment env;
  SloMonitor monitor(&env);
  monitor.Register("home", /*deadline=*/100 * kSecond,
                   /*total_bytes=*/100 * kMB);
  monitor.AddLatencyObjective("tape.write", /*target=*/1 * kSecond);
  env.RunUntil(20 * kSecond);
  monitor.ReportProgress("home", 10 * kMB);
  monitor.Sample();
  monitor.Complete("home", /*ok=*/true);
  monitor.Sample();

  JsonWriter w;
  monitor.WriteJson(&w);
  auto parsed = ParseJson(w.Take());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = *parsed;

  ASSERT_TRUE(doc["samples"].is_array());
  ASSERT_EQ(doc["samples"].array().size(), 2u);
  const JsonValue& first = doc["samples"].array()[0];
  EXPECT_DOUBLE_EQ(first["t_s"].number(), 20.0);
  ASSERT_EQ(first["volumes"].array().size(), 1u);
  const JsonValue& vol = first["volumes"].array()[0];
  EXPECT_EQ(vol["name"].string_value(), "home");
  EXPECT_DOUBLE_EQ(vol["progress"].number(), 0.1);
  EXPECT_DOUBLE_EQ(vol["rate_mb_s"].number(), 0.5);
  EXPECT_TRUE(vol["at_risk"].bool_value());
  EXPECT_FALSE(vol["done"].bool_value());

  ASSERT_EQ(doc["objectives"].array().size(), 1u);
  const JsonValue& obj = doc["objectives"].array()[0];
  EXPECT_EQ(obj["name"].string_value(), "home");
  EXPECT_TRUE(obj["done"].bool_value());
  EXPECT_TRUE(obj["ok"].bool_value());
  EXPECT_TRUE(obj["flagged_live"].bool_value());

  ASSERT_EQ(doc["latency"].array().size(), 1u);
  EXPECT_EQ(doc["latency"].array()[0]["span"].string_value(), "tape.write");
  EXPECT_EQ(doc["latency"].array()[0]["count"].int_value(), 0);
}

// ----------------------------------------------------- night integration ---

// A one-drive, two-volume night where every volume gets a deadline far
// tighter than the workload: the scheduler's own monitor must publish a
// non-empty night_health series and every missed deadline must have been
// flagged while that volume was still running (the bench-gate invariant,
// exercised here at unit scale).
TEST(SloSchedulerTest, NightReportPublishesLiveHealthSeries) {
  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  TapeLibrary library("fleet", 64 * kMiB, 0);
  SupervisionPolicy policy;

  VolumeGeometry geom;
  geom.num_raid_groups = 1;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;

  std::vector<std::unique_ptr<Volume>> volumes;
  std::vector<std::unique_ptr<Filesystem>> filesystems;
  std::vector<VolumeSpec> specs;
  for (int i = 0; i < 2; ++i) {
    const std::string name = "vol" + std::to_string(i);
    volumes.push_back(Volume::Create(&env, name, geom));
    auto fs = std::move(Filesystem::Format(volumes.back().get(), &env)).value();
    WorkloadParams params;
    params.seed = 42;
    params.target_bytes = 4 * kMiB;
    ASSERT_TRUE(PopulateFilesystem(fs.get(), params).status().ok());
    filesystems.push_back(std::move(fs));

    VolumeSpec spec;
    spec.name = name;
    spec.fs = filesystems.back().get();
    spec.mode = BackupMode::kImage;
    spec.estimated_bytes = 4 * kMiB;
    spec.deadline = 2 * kMinute;
    specs.push_back(std::move(spec));
  }

  TapeDrive drive(&env, "d0");
  FleetConfig config;
  config.drives.push_back(&drive);
  config.library = &library;
  config.supervision = &policy;

  NightlyScheduler scheduler(&filer, config, std::move(specs));
  NightReport report;
  CountdownLatch done(&env, 1);
  env.Spawn(scheduler.Run(&report, &done));
  env.Run();
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();

  EXPECT_FALSE(report.night_health.empty());
  EXPECT_GT(report.deadline_misses, 0u);
  EXPECT_EQ(report.slo_breaches, report.deadline_misses);
  for (const VolumeOutcome& v : report.volumes) {
    if (!v.deadline_met) {
      EXPECT_TRUE(v.slo_flagged_live)
          << v.name << " missed its deadline without ever being flagged";
    }
  }
  // Samples are time-ordered and every entry stays inside [0, 1] progress.
  SimTime prev = -1;
  for (const SloHealthSample& s : report.night_health) {
    EXPECT_GE(s.t, prev);
    prev = s.t;
    ASSERT_EQ(s.entries.size(), report.volumes.size());
    for (const SloHealthSample::Entry& e : s.entries) {
      EXPECT_GE(e.progress, 0.0);
      EXPECT_LE(e.progress, 1.0);
    }
  }
}

}  // namespace
}  // namespace bkup

// Tests for the sim synchronization primitives (SimEvent, CountdownLatch)
// and the disk charging helpers (run coalescing, parity accounting,
// parallelism across arms).
#include <gtest/gtest.h>

#include "src/backup/charge.h"
#include "src/sim/sync.h"

namespace bkup {
namespace {

// ----------------------------------------------------------------- sync ---

Task Waiter(SimEvent* ev, SimTime* woke, SimEnvironment* env) {
  co_await ev->Wait();
  *woke = env->now();
}

Task NotifyAfter(SimEnvironment* env, SimEvent* ev, SimDuration d) {
  co_await env->Delay(d);
  ev->Notify();
}

TEST(SimEventTest, WaitBlocksUntilNotify) {
  SimEnvironment env;
  SimEvent ev(&env);
  SimTime woke = -1;
  env.Spawn(Waiter(&ev, &woke, &env));
  env.Spawn(NotifyAfter(&env, &ev, 100));
  env.Run();
  EXPECT_EQ(woke, 100);
}

TEST(SimEventTest, WaitAfterNotifyIsImmediate) {
  SimEnvironment env;
  SimEvent ev(&env);
  ev.Notify();
  SimTime woke = -1;
  env.Spawn(Waiter(&ev, &woke, &env));
  env.Run();
  EXPECT_EQ(woke, 0);
}

TEST(SimEventTest, MultipleWaitersAllWake) {
  SimEnvironment env;
  SimEvent ev(&env);
  SimTime woke[3] = {-1, -1, -1};
  for (auto& w : woke) {
    env.Spawn(Waiter(&ev, &w, &env));
  }
  env.Spawn(NotifyAfter(&env, &ev, 7));
  env.Run();
  for (SimTime w : woke) {
    EXPECT_EQ(w, 7);
  }
}

Task CountAfter(SimEnvironment* env, CountdownLatch* latch, SimDuration d) {
  co_await env->Delay(d);
  latch->CountDown();
}

Task LatchWaiter(CountdownLatch* latch, SimTime* woke, SimEnvironment* env) {
  co_await latch->Wait();
  *woke = env->now();
}

TEST(CountdownLatchTest, WaitsForAllParties) {
  SimEnvironment env;
  CountdownLatch latch(&env, 3);
  SimTime woke = -1;
  env.Spawn(LatchWaiter(&latch, &woke, &env));
  env.Spawn(CountAfter(&env, &latch, 10));
  env.Spawn(CountAfter(&env, &latch, 30));
  env.Spawn(CountAfter(&env, &latch, 20));
  env.Run();
  EXPECT_EQ(woke, 30) << "latch opens when the last party arrives";
  EXPECT_TRUE(latch.done());
}

TEST(CountdownLatchTest, ZeroCountIsImmediatelyDone) {
  SimEnvironment env;
  CountdownLatch latch(&env, 0);
  EXPECT_TRUE(latch.done());
  SimTime woke = -1;
  env.Spawn(LatchWaiter(&latch, &woke, &env));
  env.Run();
  EXPECT_EQ(woke, 0);
}

// --------------------------------------------------------------- charge ---

struct ChargeFixture {
  ChargeFixture() {
    VolumeGeometry geom;
    geom.num_raid_groups = 2;
    geom.disks_per_group = 4;  // 3 data + 1 parity each
    geom.blocks_per_disk = 4096;
    volume = Volume::Create(&env, "v", geom);
  }
  SimEnvironment env;
  std::unique_ptr<Volume> volume;
};

Task DoCharge(SimEnvironment* env, Volume* volume, std::vector<Vbn> vbns,
              bool writes) {
  co_await ChargeDiskAccess(env, volume, vbns, writes);
}

TEST(ChargeTest, SequentialReadsCoalesceAcrossDisks) {
  ChargeFixture f;
  // 64 consecutive vbns: ~21-22 contiguous blocks per data disk, read in
  // parallel — elapsed should be about one disk's transfer time, far below
  // the serial sum.
  std::vector<Vbn> vbns;
  for (Vbn v = 100; v < 164; ++v) {
    vbns.push_back(v);
  }
  f.env.Spawn(DoCharge(&f.env, f.volume.get(), vbns, false));
  const SimTime end = f.env.Run();
  const double per_disk_bytes = 22.0 * kBlockSize;
  const double expect_s = per_disk_bytes / 10e6;  // 10 MB/s media rate
  EXPECT_LT(end, SecondsToSim(expect_s * 2.5));
  EXPECT_GT(end, SecondsToSim(expect_s * 0.8));
}

TEST(ChargeTest, ReadsDoNotTouchParity) {
  ChargeFixture f;
  std::vector<Vbn> vbns{0, 1, 2, 3, 4, 5};
  f.env.Spawn(DoCharge(&f.env, f.volume.get(), vbns, false));
  f.env.Run();
  EXPECT_EQ(f.volume->group(0)->parity_disk()->arm().BusyIntegral(), 0);
}

TEST(ChargeTest, WritesChargeParityOncePerStripe) {
  ChargeFixture f;
  // 6 consecutive vbns = 2 full stripes on group 0: parity disk should be
  // charged ~2 blocks, not 6.
  std::vector<Vbn> vbns{0, 1, 2, 3, 4, 5};
  f.env.Spawn(DoCharge(&f.env, f.volume.get(), vbns, true));
  f.env.Run();
  Disk* parity = f.volume->group(0)->parity_disk();
  EXPECT_EQ(parity->bytes_transferred(), 2 * kBlockSize)
      << "one parity block per stripe";
  Disk* data0 = f.volume->group(0)->data_disk(0);
  EXPECT_EQ(data0->bytes_transferred(), 2 * kBlockSize);
}

TEST(ChargeTest, ScatteredReadsPaySeeks) {
  ChargeFixture f;
  // Same number of blocks, scattered vs contiguous: scattered must take
  // several times longer.
  std::vector<Vbn> contiguous, scattered;
  for (int i = 0; i < 12; ++i) {
    contiguous.push_back(600 + i);
    scattered.push_back(static_cast<Vbn>((i * 997) % 12000));
  }
  f.env.Spawn(DoCharge(&f.env, f.volume.get(), contiguous, false));
  const SimDuration t_contig = f.env.Run();
  SimEnvironment env2;
  auto volume2 = Volume::Create(&env2, "v2", f.volume->geometry());
  env2.Spawn(DoCharge(&env2, volume2.get(), scattered, false));
  const SimDuration t_scattered = env2.Run();
  EXPECT_GT(t_scattered, 3 * t_contig);
}

Task DoSeqWrites(SimEnvironment* env, Volume* volume, uint64_t blocks) {
  co_await ChargeSequentialWrites(env, volume, blocks);
}

TEST(ChargeTest, SequentialWritesSpreadOverAllDisks) {
  ChargeFixture f;
  f.env.Spawn(DoSeqWrites(&f.env, f.volume.get(), 600));
  const SimTime end = f.env.Run();
  // 600 blocks over 6 data disks = 100 blocks/disk = 400 KiB at 10 MB/s
  // ~= 41 ms, all disks in parallel.
  EXPECT_NEAR(static_cast<double>(end), 41.0 * kMillisecond,
              8.0 * kMillisecond);
  // Every disk including parity was busy.
  for (const auto& d : f.volume->disks()) {
    EXPECT_GT(d->arm().BusyIntegral(), 0) << d->name();
  }
}

TEST(ChargeTest, EmptyChargesCompleteInstantly) {
  ChargeFixture f;
  f.env.Spawn(DoCharge(&f.env, f.volume.get(), {}, false));
  f.env.Spawn(DoSeqWrites(&f.env, f.volume.get(), 0));
  EXPECT_EQ(f.env.Run(), 0);
}

}  // namespace
}  // namespace bkup

// Tests for physical (image) dump/restore: block-set computation (Table 1),
// full and incremental image round trips (bit-identical volumes including
// snapshots), geometry enforcement, corruption behaviour, and mirroring.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/fs/filesystem.h"
#include "src/image/blockset.h"
#include "src/image/image_dump.h"
#include "src/image/mirror.h"
#include "src/util/random.h"

namespace bkup {
namespace {

VolumeGeometry TestGeometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;
  return geom;
}

struct ImageFixture {
  ImageFixture() {
    src_volume = Volume::Create(&env, "src", TestGeometry());
    dst_volume = Volume::Create(&env, "dst", TestGeometry());
    src = std::move(Filesystem::Format(src_volume.get(), &env)).value();
  }

  std::vector<uint8_t> Bytes(size_t n, uint64_t seed) {
    std::vector<uint8_t> data(n);
    Rng rng(seed);
    rng.Fill(data);
    return data;
  }

  void MustWrite(const std::string& path, const std::vector<uint8_t>& data) {
    auto inum = src->Create(path, 0644);
    ASSERT_TRUE(inum.ok()) << path;
    ASSERT_TRUE(src->Write(*inum, 0, data).ok());
  }

  ImageDumpOutput Dump(const std::string& base = "") {
    const std::string snap = "xfer" + std::to_string(counter++);
    EXPECT_TRUE(src->CreateSnapshot(snap).ok());
    ImageDumpOptions opt;
    opt.base_snapshot = base;
    opt.snapshot_name = snap;
    opt.dump_time = env.now();
    auto out = RunImageDump(src_volume.get(), opt);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return std::move(out).value();
  }

  // Compares every referenced block of two volumes.
  void ExpectVolumesEquivalent(Volume* a, Volume* b) {
    auto a_info = ReadFsInfoFromVolume(a);
    auto b_info = ReadFsInfoFromVolume(b);
    ASSERT_TRUE(a_info.ok());
    ASSERT_TRUE(b_info.ok());
    EXPECT_EQ(a_info->generation, b_info->generation);
    auto a_map = LoadBlockMapFromVolume(a, *a_info);
    ASSERT_TRUE(a_map.ok());
    Block ba, bb;
    for (Vbn v = 0; v < a->num_blocks(); ++v) {
      if (a_map->word(v) == 0) {
        continue;
      }
      ASSERT_TRUE(a->ReadBlock(v, &ba).ok());
      ASSERT_TRUE(b->ReadBlock(v, &bb).ok());
      ASSERT_EQ(ba, bb) << "vbn " << v << " differs";
    }
  }

  SimEnvironment env;
  std::unique_ptr<Volume> src_volume, dst_volume;
  std::unique_ptr<Filesystem> src;
  int counter = 0;
};

// -------------------------------------------------------------- block set ---

TEST(BlockSetTest, Table1Semantics) {
  // The four block states of Table 1, reproduced on a tiny map.
  BlockMap map(64);
  const int plane_a = 1;  // base snapshot A
  // State (0,0): in neither -> excluded.
  // State (0,1): newly written -> included.
  map.Set(kActivePlane, 10);
  // State (1,0): deleted since A -> excluded (but A still pins it).
  map.Set(plane_a, 11);
  // State (1,1): unchanged since A -> excluded from incremental.
  map.Set(plane_a, 12);
  map.Set(kActivePlane, 12);

  Bitmap incr = ComputeImageBlockSet(map, plane_a);
  EXPECT_FALSE(incr.Test(9));
  EXPECT_TRUE(incr.Test(10));
  EXPECT_FALSE(incr.Test(11));
  EXPECT_FALSE(incr.Test(12));
  EXPECT_EQ(incr.CountOnes(), 1u);

  // A full dump takes every referenced block regardless of plane.
  Bitmap full = ComputeImageBlockSet(map, std::nullopt);
  EXPECT_TRUE(full.Test(10));
  EXPECT_TRUE(full.Test(11));
  EXPECT_TRUE(full.Test(12));
  EXPECT_EQ(full.CountOnes(), 3u);
}

TEST(BlockSetTest, LoadBlockMapMatchesLiveFs) {
  ImageFixture f;
  f.MustWrite("/data", f.Bytes(30 * kBlockSize, 1));
  ASSERT_TRUE(f.src->CreateSnapshot("s1").ok());
  auto fsinfo = ReadFsInfoFromVolume(f.src_volume.get());
  ASSERT_TRUE(fsinfo.ok());
  std::vector<Vbn> reads;
  auto map = LoadBlockMapFromVolume(f.src_volume.get(), *fsinfo, &reads);
  ASSERT_TRUE(map.ok());
  EXPECT_GT(reads.size(), 0u);
  // The on-disk map agrees with the live file system's map.
  const BlockMap& live = f.src->blockmap();
  for (Vbn v = 0; v < live.num_blocks(); ++v) {
    EXPECT_EQ(map->word(v), live.word(v)) << "vbn " << v;
  }
}

// -------------------------------------------------------------- round trip ---

TEST(ImageTest, FullDumpRestoreGivesIdenticalVolume) {
  ImageFixture f;
  ASSERT_TRUE(f.src->Mkdir("/home", 0755).ok());
  const auto a = f.Bytes(50 * kBlockSize, 2);
  const auto b = f.Bytes(7 * kBlockSize + 99, 3);
  f.MustWrite("/home/a", a);
  f.MustWrite("/home/b", b);

  ImageDumpOutput dump = f.Dump();
  EXPECT_GT(dump.stats.blocks_dumped, 57u);
  EXPECT_GT(dump.stats.extents, 0u);

  auto restored = RunImageRestore(f.dst_volume.get(), dump.stream);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->stats.blocks_restored, dump.stats.blocks_dumped);

  f.ExpectVolumesEquivalent(f.src_volume.get(), f.dst_volume.get());

  // The restored volume mounts and serves the files.
  auto fs2 = Filesystem::Mount(f.dst_volume.get(), &f.env);
  ASSERT_TRUE(fs2.ok()) << fs2.status().ToString();
  auto inum = (*fs2)->LookupPath("/home/a");
  ASSERT_TRUE(inum.ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE((*fs2)->Read(*inum, 0, a.size(), &back).ok());
  EXPECT_EQ(back, a);
}

TEST(ImageTest, RestorePreservesSnapshots) {
  // "Unlike the logical dump, which preserves just the live file system, the
  // block based device can backup all snapshots of the system."
  ImageFixture f;
  const auto v1 = f.Bytes(10 * kBlockSize, 4);
  f.MustWrite("/file", v1);
  ASSERT_TRUE(f.src->CreateSnapshot("monday").ok());
  const auto v2 = f.Bytes(10 * kBlockSize, 5);
  ASSERT_TRUE(f.src->Write(*f.src->LookupPath("/file"), 0, v2).ok());
  ASSERT_TRUE(f.src->CreateSnapshot("tuesday").ok());

  ImageDumpOutput dump = f.Dump();
  ASSERT_TRUE(RunImageRestore(f.dst_volume.get(), dump.stream).ok());

  auto fs2_result = Filesystem::Mount(f.dst_volume.get(), &f.env);
  ASSERT_TRUE(fs2_result.ok());
  auto fs2 = std::move(fs2_result).value();
  auto snaps = fs2->ListSnapshots();
  ASSERT_EQ(snaps.size(), 3u);  // monday, tuesday, xfer0

  auto monday = fs2->SnapshotReader("monday");
  ASSERT_TRUE(monday.ok());
  auto mon_inum = monday->LookupPath("/file");
  ASSERT_TRUE(mon_inum.ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE(monday->ReadFile(*monday->ReadInode(*mon_inum), 0, v1.size(),
                               &back)
                  .ok());
  EXPECT_EQ(back, v1) << "snapshot contents must survive physical restore";
}

TEST(ImageTest, IncrementalChainReconstructsLatestState) {
  ImageFixture f;
  const auto original = f.Bytes(300 * kBlockSize, 6);
  f.MustWrite("/base_file", original);

  ImageDumpOutput full = f.Dump();  // creates snapshot xfer0
  ASSERT_TRUE(RunImageRestore(f.dst_volume.get(), full.stream).ok());

  // Mutate: new file, overwrite, delete nothing.
  const auto added = f.Bytes(15 * kBlockSize, 7);
  f.MustWrite("/new_file", added);
  const auto rewritten = f.Bytes(20 * kBlockSize, 8);  // small partial rewrite
  ASSERT_TRUE(
      f.src->Write(*f.src->LookupPath("/base_file"), 0, rewritten).ok());

  ImageDumpOutput incr = f.Dump("xfer0");
  EXPECT_TRUE(incr.stats.blocks_dumped < full.stats.blocks_dumped)
      << "incremental must move fewer blocks than the full dump";

  auto restored = RunImageRestore(f.dst_volume.get(), incr.stream);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  f.ExpectVolumesEquivalent(f.src_volume.get(), f.dst_volume.get());
  auto fs2 = Filesystem::Mount(f.dst_volume.get(), &f.env);
  ASSERT_TRUE(fs2.ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE(
      (*fs2)->Read(*(*fs2)->LookupPath("/new_file"), 0, added.size(), &back)
          .ok());
  EXPECT_EQ(back, added);
  ASSERT_TRUE((*fs2)
                  ->Read(*(*fs2)->LookupPath("/base_file"), 0,
                         rewritten.size(), &back)
                  .ok());
  EXPECT_EQ(back, rewritten);
}

TEST(ImageTest, IncrementalBlockSetIsDisjointFromBasePlane) {
  ImageFixture f;
  f.MustWrite("/a", f.Bytes(30 * kBlockSize, 9));
  ImageDumpOutput full = f.Dump();  // snapshot xfer0
  f.MustWrite("/b", f.Bytes(10 * kBlockSize, 10));
  ImageDumpOutput incr = f.Dump("xfer0");

  // No block of the incremental set is in the base snapshot's plane.
  auto fsinfo = ReadFsInfoFromVolume(f.src_volume.get());
  ASSERT_TRUE(fsinfo.ok());
  auto plane = SnapshotPlaneOf(*fsinfo, "xfer0");
  ASSERT_TRUE(plane.ok());
  auto map = LoadBlockMapFromVolume(f.src_volume.get(), *fsinfo);
  ASSERT_TRUE(map.ok());
  Bitmap base_plane = map->ExtractPlane(*plane);
  EXPECT_TRUE(incr.block_set.DisjointWith(base_plane));
}

// ------------------------------------------------------------- limitations ---

TEST(ImageTest, GeometryMismatchRejected) {
  ImageFixture f;
  f.MustWrite("/x", f.Bytes(kBlockSize, 11));
  ImageDumpOutput dump = f.Dump();

  VolumeGeometry other = TestGeometry();
  other.blocks_per_disk = 1024;  // smaller disks
  auto small = Volume::Create(&f.env, "small", other);
  EXPECT_EQ(RunImageRestore(small.get(), dump.stream).status().code(),
            ErrorCode::kUnsupported)
      << "physical restore must enforce identical geometry";
}

TEST(ImageTest, IncrementalOntoEmptyVolumeRejected) {
  ImageFixture f;
  f.MustWrite("/x", f.Bytes(kBlockSize, 12));
  f.Dump();  // xfer0
  f.MustWrite("/y", f.Bytes(kBlockSize, 13));
  ImageDumpOutput incr = f.Dump("xfer0");
  EXPECT_EQ(RunImageRestore(f.dst_volume.get(), incr.stream).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(ImageTest, IncrementalOntoWrongBaseRejected) {
  ImageFixture f;
  f.MustWrite("/x", f.Bytes(kBlockSize, 14));
  ImageDumpOutput full = f.Dump();  // xfer0
  ASSERT_TRUE(RunImageRestore(f.dst_volume.get(), full.stream).ok());
  // Drift the chain: delete xfer0, take xfer1, dump against xfer1.
  f.MustWrite("/y", f.Bytes(kBlockSize, 15));
  ImageDumpOutput incr1 = f.Dump("xfer0");  // valid for dst
  f.MustWrite("/z", f.Bytes(kBlockSize, 16));
  ImageDumpOutput incr2 = f.Dump("xfer1");  // dst has never seen xfer1
  EXPECT_EQ(RunImageRestore(f.dst_volume.get(), incr2.stream).status().code(),
            ErrorCode::kFailedPrecondition);
  // Applying them in order works.
  ASSERT_TRUE(RunImageRestore(f.dst_volume.get(), incr1.stream).ok());
  ASSERT_TRUE(RunImageRestore(f.dst_volume.get(), incr2.stream).ok());
  f.ExpectVolumesEquivalent(f.src_volume.get(), f.dst_volume.get());
}

TEST(ImageTest, CorruptionDoomsTheRestore) {
  // The asymmetry with logical restore: a damaged physical stream cannot be
  // partially salvaged file-by-file.
  ImageFixture f;
  f.MustWrite("/x", f.Bytes(40 * kBlockSize, 17));
  ImageDumpOutput dump = f.Dump();
  std::vector<uint8_t> corrupted = dump.stream;
  corrupted[corrupted.size() / 2] ^= 0xFF;
  EXPECT_EQ(RunImageRestore(f.dst_volume.get(), corrupted).status().code(),
            ErrorCode::kCorruption);
}

TEST(ImageTest, DumpStreamsInAscendingBlockOrder) {
  ImageFixture f;
  f.MustWrite("/x", f.Bytes(64 * kBlockSize, 18));
  ImageDumpOutput dump = f.Dump();
  // Only the extent events stream data blocks; the first event is the
  // meta-data pass and the last re-reads fsinfo for the trailer.
  Vbn last = 0;
  for (const IoEvent& e : dump.trace.events) {
    const bool is_extent =
        !e.cpu.empty() && e.cpu.front().kind == CpuCost::kPhysicalBlock;
    if (!is_extent) {
      continue;
    }
    for (Vbn v : e.disk_reads) {
      EXPECT_GE(v, last) << "physical dump must read in device order";
      last = v;
    }
  }
}

// ----------------------------------------------------------------- mirror ---

TEST(MirrorTest, InitialSyncReplicatesEverything) {
  ImageFixture f;
  const auto data = f.Bytes(25 * kBlockSize, 20);
  f.MustWrite("/replica_me", data);
  VolumeMirror mirror(f.src.get(), f.dst_volume.get());
  auto sent = mirror.Sync();
  ASSERT_TRUE(sent.ok()) << sent.status().ToString();
  EXPECT_GT(*sent, 25 * kBlockSize);
  EXPECT_EQ(mirror.syncs_completed(), 1u);

  auto fs2 = Filesystem::Mount(f.dst_volume.get(), &f.env);
  ASSERT_TRUE(fs2.ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE(
      (*fs2)
          ->Read(*(*fs2)->LookupPath("/replica_me"), 0, data.size(), &back)
          .ok());
  EXPECT_EQ(back, data);
}

TEST(MirrorTest, IncrementalSyncsShipOnlyDeltas) {
  ImageFixture f;
  f.MustWrite("/big", f.Bytes(100 * kBlockSize, 21));
  VolumeMirror mirror(f.src.get(), f.dst_volume.get());
  auto first = mirror.Sync();
  ASSERT_TRUE(first.ok());

  const auto small = f.Bytes(2 * kBlockSize, 22);
  f.MustWrite("/small", small);
  auto second = mirror.Sync();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_LT(*second, *first / 4)
      << "a small change must ship a small incremental";

  auto fs2 = Filesystem::Mount(f.dst_volume.get(), &f.env);
  ASSERT_TRUE(fs2.ok());
  std::vector<uint8_t> back;
  ASSERT_TRUE(
      (*fs2)->Read(*(*fs2)->LookupPath("/small"), 0, small.size(), &back)
          .ok());
  EXPECT_EQ(back, small);
}

TEST(MirrorTest, RepeatedSyncsConverge) {
  ImageFixture f;
  VolumeMirror mirror(f.src.get(), f.dst_volume.get());
  std::map<std::string, std::vector<uint8_t>> files;
  Rng rng(23);
  for (int round = 0; round < 4; ++round) {
    const std::string path = "/round" + std::to_string(round);
    std::vector<uint8_t> data(rng.Below(20 * kBlockSize) + 1);
    rng.Fill(data);
    f.MustWrite(path, data);
    files[path] = data;
    ASSERT_TRUE(mirror.Sync().ok()) << "round " << round;
  }
  EXPECT_EQ(mirror.syncs_completed(), 4u);
  // The source carries only the latest transfer snapshot.
  EXPECT_EQ(f.src->ListSnapshots().size(), 1u);
  EXPECT_EQ(mirror.last_transfer_snapshot(), "mirror.4");

  auto fs2_result = Filesystem::Mount(f.dst_volume.get(), &f.env);
  ASSERT_TRUE(fs2_result.ok());
  auto fs2 = std::move(fs2_result).value();
  for (const auto& [path, want] : files) {
    std::vector<uint8_t> back;
    ASSERT_TRUE(
        fs2->Read(*fs2->LookupPath(path), 0, want.size(), &back).ok())
        << path;
    EXPECT_EQ(back, want) << path;
  }
}

// Property: for random histories, full + incrementals always reproduce the
// source volume exactly.
class ImageChainProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ImageChainProperty, RandomHistoryRoundTrips) {
  ImageFixture f;
  Rng rng(GetParam());
  std::vector<std::string> paths;
  ImageDumpOutput full = f.Dump();
  ASSERT_TRUE(RunImageRestore(f.dst_volume.get(), full.stream).ok());
  std::string base = "xfer0";
  for (int round = 0; round < 3; ++round) {
    // Random mutations.
    for (int i = 0; i < 5; ++i) {
      if (!paths.empty() && rng.Chance(0.3)) {
        const size_t pick = rng.Below(paths.size());
        ASSERT_TRUE(f.src->Unlink(paths[pick]).ok());
        paths.erase(paths.begin() + static_cast<long>(pick));
      } else {
        const std::string path = "/f" + std::to_string(round) + "_" +
                                 std::to_string(i);
        std::vector<uint8_t> data(rng.Below(10 * kBlockSize) + 1);
        rng.Fill(data);
        auto inum = f.src->Create(path, 0644);
        ASSERT_TRUE(inum.ok());
        ASSERT_TRUE(f.src->Write(*inum, 0, data).ok());
        paths.push_back(path);
      }
    }
    ImageDumpOutput incr = f.Dump(base);
    base = "xfer" + std::to_string(f.counter - 1);
    ASSERT_TRUE(RunImageRestore(f.dst_volume.get(), incr.stream).ok())
        << "round " << round;
    f.ExpectVolumesEquivalent(f.src_volume.get(), f.dst_volume.get());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImageChainProperty,
                         ::testing::Values(31, 32, 33, 1999));

}  // namespace
}  // namespace bkup

// Property-test harness for the nightly fleet scheduler, exercising the
// whole job stack (scheduler -> parallel jobs -> replay -> devices) across
// seeded random fleet configurations:
//
//   (a) the same seed produces a byte-identical plan and execution record;
//   (b) no drive is double-booked at any simulated instant;
//   (c) every volume is backed up exactly once per night;
//   (d) with at least as many drives as volumes and feasible deadlines, the
//       scheduler never reports a deadline miss.
//
// `BKUP_SCHED_SEED_OFFSET` shifts the seed block so tools/seed_sweep.py can
// rerun the suite over fresh configurations without a recompile.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <random>

#include "src/backup/scheduler.h"
#include "src/workload/population.h"

namespace bkup {
namespace {

constexpr int kConfigsPerSuite = 64;

uint64_t SeedOffset() {
  const char* env = std::getenv("BKUP_SCHED_SEED_OFFSET");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
}

VolumeGeometry SmallGeometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 1;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;  // 3 data disks * 8 MiB
  return geom;
}

// A randomly drawn fleet description, fully determined by its seed. Drawing
// uses raw engine output (not std::uniform_int_distribution, whose mapping
// is implementation-defined) so configurations are stable across toolchains.
struct FleetDraw {
  struct Vol {
    std::string name;
    BackupMode mode = BackupMode::kImage;
    uint64_t bytes = 0;
    uint64_t pop_seed = 0;
    int priority = 0;
    SimTime deadline = std::numeric_limits<SimTime>::max();
    int affinity = -1;
    uint32_t parallelism = 1;
  };
  uint64_t seed = 0;
  int num_drives = 1;
  std::vector<Vol> vols;
};

FleetDraw DrawFleet(uint64_t seed) {
  std::mt19937_64 rng(seed);
  FleetDraw draw;
  draw.seed = seed;
  draw.num_drives = 1 + static_cast<int>(rng() % 4);
  const int nvol = 3 + static_cast<int>(rng() % 4);
  for (int i = 0; i < nvol; ++i) {
    FleetDraw::Vol v;
    v.name = "vol" + std::to_string(i);
    v.bytes = (1 + rng() % 3) * kMiB;
    v.pop_seed = seed * 1000 + static_cast<uint64_t>(i);
    switch (rng() % 4) {
      case 0:
        v.mode = BackupMode::kLogicalFull;
        break;
      case 1:
        v.mode = BackupMode::kLogicalIncremental;
        break;
      default:
        v.mode = BackupMode::kImage;
        v.parallelism = 1 + static_cast<uint32_t>(rng() % 2);
        break;
    }
    v.priority = static_cast<int>(rng() % 3);
    switch (rng() % 3) {
      case 0:
        break;  // no deadline
      case 1:
        v.deadline = 2 * kHour + static_cast<SimTime>(rng() % 120) * kMinute;
        break;
      default:
        v.deadline = 20 * kMinute + static_cast<SimTime>(rng() % 20) * kMinute;
        break;
    }
    if (rng() % 3 == 0) {
      v.affinity = static_cast<int>(rng() % draw.num_drives);
    }
    draw.vols.push_back(std::move(v));
  }
  return draw;
}

struct FleetResult {
  std::string plan;
  std::string exec;
  NightReport report;
};

// Builds and runs one night from a draw. Everything — population, device
// names, media labels — derives from the draw, so two calls with the same
// draw must produce byte-identical plan and execution records.
void ExecuteFleet(const FleetDraw& draw, FleetResult* out) {
  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  TapeLibrary library("fleet", 64 * kMiB, 0);
  SupervisionPolicy policy;

  std::vector<std::unique_ptr<Volume>> volumes;
  std::vector<std::unique_ptr<Filesystem>> filesystems;
  std::vector<VolumeSpec> specs;
  for (const FleetDraw::Vol& v : draw.vols) {
    volumes.push_back(Volume::Create(&env, v.name, SmallGeometry()));
    auto fs = std::move(Filesystem::Format(volumes.back().get(), &env)).value();
    WorkloadParams params;
    params.seed = v.pop_seed;
    params.target_bytes = v.bytes;
    ASSERT_TRUE(PopulateFilesystem(fs.get(), params).ok());
    filesystems.push_back(std::move(fs));

    VolumeSpec spec;
    spec.name = v.name;
    spec.fs = filesystems.back().get();
    spec.mode = v.mode;
    spec.estimated_bytes = v.bytes;
    spec.priority = v.priority;
    spec.deadline = v.deadline;
    spec.affinity_drive = v.affinity;
    spec.parallelism = v.parallelism;
    specs.push_back(std::move(spec));
  }

  std::vector<std::unique_ptr<TapeDrive>> drives;
  FleetConfig config;
  for (int d = 0; d < draw.num_drives; ++d) {
    drives.push_back(
        std::make_unique<TapeDrive>(&env, "d" + std::to_string(d)));
    config.drives.push_back(drives.back().get());
  }
  config.library = &library;
  config.supervision = &policy;

  NightlyScheduler scheduler(&filer, config, std::move(specs));
  out->plan = scheduler.BuildPlan().Serialize(scheduler.volumes());
  CountdownLatch done(&env, 1);
  env.Spawn(scheduler.Run(&out->report, &done));
  env.Run();
  ASSERT_TRUE(done.done());
  out->exec = out->report.SerializeExecution();
}

// (b) Every drive's grants must be non-overlapping intervals.
void CheckNoDoubleBooking(const NightReport& report) {
  std::map<int, std::vector<std::pair<SimTime, SimTime>>> by_drive;
  for (const DriveGrant& g : report.grants) {
    EXPECT_GE(g.end, g.start) << "grant with negative span";
    by_drive[g.drive].emplace_back(g.start, g.end);
  }
  for (auto& [drive, spans] : by_drive) {
    std::sort(spans.begin(), spans.end());
    for (size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second)
          << "drive " << drive << " double-booked at " << spans[i].first;
    }
  }
}

// (c) Every volume completed successfully, exactly once, on one attempt.
void CheckEachVolumeOnce(const NightReport& report) {
  for (const VolumeOutcome& v : report.volumes) {
    EXPECT_TRUE(v.status.ok()) << v.name << ": " << v.status.ToString();
    EXPECT_EQ(v.attempts, 1) << v.name;
    EXPECT_GT(v.report.stream_bytes, 0u) << v.name;
    EXPECT_GE(v.finished, v.started) << v.name;
  }
  std::map<size_t, int> attempts_seen;
  for (const DriveGrant& g : report.grants) {
    attempts_seen[g.volume] = std::max(attempts_seen[g.volume], g.attempt);
  }
  for (const auto& [vol, max_attempt] : attempts_seen) {
    EXPECT_EQ(max_attempt, 1) << "volume " << vol << " was re-dispatched";
  }
}

TEST(SchedulerPropertyTest, RandomFleetsAreDeterministicAndWellFormed) {
  const uint64_t offset = SeedOffset();
  for (int i = 0; i < kConfigsPerSuite; ++i) {
    const uint64_t seed = 0xF1EE7 + offset * 1000 + static_cast<uint64_t>(i);
    const FleetDraw draw = DrawFleet(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));

    FleetResult first;
    ExecuteFleet(draw, &first);
    CheckNoDoubleBooking(first.report);
    CheckEachVolumeOnce(first.report);
    EXPECT_EQ(first.report.deadline_hits + first.report.deadline_misses,
              draw.vols.size());
    EXPECT_EQ(first.report.reassignments, 0u);
    EXPECT_EQ(first.report.drives_failed, 0u);

    // (a) Re-run the identical draw in a fresh environment: plan and
    // executed schedule must match byte for byte.
    FleetResult second;
    ExecuteFleet(draw, &second);
    EXPECT_EQ(first.plan, second.plan);
    EXPECT_EQ(first.exec, second.exec);
  }
}

// (d) With drives >= volumes and generous deadlines, every volume starts at
// night-open (affinity collisions at worst serialize two volumes, which the
// slack still covers) and no miss may be reported.
TEST(SchedulerPropertyTest, FeasiblePlansNeverMissWithEnoughDrives) {
  const uint64_t offset = SeedOffset();
  for (int i = 0; i < 8; ++i) {
    const uint64_t seed = 0xD00D + offset * 1000 + static_cast<uint64_t>(i);
    FleetDraw draw = DrawFleet(seed);
    draw.num_drives = static_cast<int>(draw.vols.size());
    for (auto& v : draw.vols) {
      v.deadline = 6 * kHour;  // minutes of real work against hours of slack
      if (v.affinity >= draw.num_drives) {
        v.affinity = -1;
      }
    }
    SCOPED_TRACE("seed " + std::to_string(seed));
    FleetResult result;
    ExecuteFleet(draw, &result);
    CheckNoDoubleBooking(result.report);
    CheckEachVolumeOnce(result.report);
    EXPECT_EQ(result.report.deadline_misses, 0u);
    EXPECT_EQ(result.report.deadline_hits, draw.vols.size());
    for (const VolumeOutcome& v : result.report.volumes) {
      EXPECT_TRUE(v.deadline_met) << v.name;
    }
  }
}

// --------------------------------------------------- directed scenarios ---

struct DirectedFixture {
  DirectedFixture() : filer(&env, FilerModel::F630()), library("fleet", 64 * kMiB, 0) {}

  Filesystem* AddVolume(const std::string& name, uint64_t bytes,
                        uint64_t seed) {
    volumes.push_back(Volume::Create(&env, name, SmallGeometry()));
    auto fs = std::move(Filesystem::Format(volumes.back().get(), &env)).value();
    WorkloadParams params;
    params.seed = seed;
    params.target_bytes = bytes;
    EXPECT_TRUE(PopulateFilesystem(fs.get(), params).ok());
    filesystems.push_back(std::move(fs));
    return filesystems.back().get();
  }

  void AddDrives(int n) {
    for (int d = 0; d < n; ++d) {
      drives.push_back(
          std::make_unique<TapeDrive>(&env, "d" + std::to_string(d)));
      config.drives.push_back(drives.back().get());
    }
    config.library = &library;
    config.supervision = &policy;
  }

  NightReport RunNight(std::vector<VolumeSpec> specs) {
    NightlyScheduler scheduler(&filer, config, std::move(specs));
    NightReport report;
    CountdownLatch done(&env, 1);
    env.Spawn(scheduler.Run(&report, &done));
    env.Run();
    EXPECT_TRUE(done.done());
    return report;
  }

  SimEnvironment env;
  Filer filer;
  TapeLibrary library;
  SupervisionPolicy policy;
  std::vector<std::unique_ptr<Volume>> volumes;
  std::vector<std::unique_ptr<Filesystem>> filesystems;
  std::vector<std::unique_ptr<TapeDrive>> drives;
  FleetConfig config;
};

VolumeSpec Spec(const std::string& name, Filesystem* fs, BackupMode mode,
                uint64_t bytes) {
  VolumeSpec spec;
  spec.name = name;
  spec.fs = fs;
  spec.mode = mode;
  spec.estimated_bytes = bytes;
  return spec;
}

// A volume with affinity and no deadline waits for its drive even while
// another drive idles; a lower-priority volume backfills the idle drive.
TEST(SchedulerTest, AffinityWaitsAndBackfillUsesIdleDrive) {
  DirectedFixture f;
  Filesystem* a = f.AddVolume("alpha", 4 * kMiB, 11);
  Filesystem* b = f.AddVolume("beta", 2 * kMiB, 12);
  Filesystem* c = f.AddVolume("gamma", 2 * kMiB, 13);
  f.AddDrives(2);

  VolumeSpec sa = Spec("alpha", a, BackupMode::kImage, 4 * kMiB);
  sa.priority = 2;
  sa.affinity_drive = 0;
  VolumeSpec sb = Spec("beta", b, BackupMode::kImage, 2 * kMiB);
  sb.priority = 2;
  sb.affinity_drive = 0;  // incrementals follow the full's drive
  sb.name = "beta";
  VolumeSpec sc = Spec("gamma", c, BackupMode::kImage, 2 * kMiB);
  sc.priority = 0;

  NightReport report = f.RunNight({sa, sb, sc});
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();

  SimTime alpha_end = 0;
  for (const DriveGrant& g : report.grants) {
    const VolumeOutcome& vol = report.volumes[g.volume];
    if (vol.name == "alpha") {
      EXPECT_EQ(g.drive, 0);
      alpha_end = g.end;
    }
    if (vol.name == "beta") {
      EXPECT_EQ(g.drive, 0) << "beta must stay on its affinity drive";
    }
    if (vol.name == "gamma") {
      EXPECT_EQ(g.drive, 1) << "gamma should backfill the idle drive";
    }
  }
  const VolumeOutcome* beta = nullptr;
  const VolumeOutcome* gamma = nullptr;
  for (const VolumeOutcome& v : report.volumes) {
    if (v.name == "beta") beta = &v;
    if (v.name == "gamma") gamma = &v;
  }
  ASSERT_NE(beta, nullptr);
  ASSERT_NE(gamma, nullptr);
  EXPECT_GE(beta->started, alpha_end) << "beta waited for its drive";
  EXPECT_LT(gamma->started, alpha_end) << "gamma ran while alpha held d0";
  EXPECT_TRUE(gamma->backfilled);
  EXPECT_GE(report.backfills, 1u);
}

// When waiting for the affinity drive would provably blow the deadline, the
// volume falls back to any idle drive at its latest feasible start.
TEST(SchedulerTest, DeadlineForcesAffinityFallback) {
  DirectedFixture f;
  Filesystem* a = f.AddVolume("alpha", 6 * kMiB, 21);
  Filesystem* b = f.AddVolume("beta", 2 * kMiB, 22);
  f.AddDrives(2);

  VolumeSpec sa = Spec("alpha", a, BackupMode::kImage, 6 * kMiB);
  sa.priority = 2;
  sa.affinity_drive = 0;
  VolumeSpec sb = Spec("beta", b, BackupMode::kImage, 2 * kMiB);
  sb.priority = 1;
  sb.affinity_drive = 0;
  // Alpha holds drive 0 for ~107 s (load + snapshots + stream); beta's
  // latest feasible start (deadline - estimate) lands before that, so
  // waiting provably misses and beta must take drive 1.
  sb.deadline = 150 * kSecond;

  NightReport report = f.RunNight({sa, sb});
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  for (const DriveGrant& g : report.grants) {
    if (report.volumes[g.volume].name == "beta") {
      EXPECT_EQ(g.drive, 1) << "beta should abandon the busy affinity drive";
    }
  }
}

// With backfill disabled the queue is strictly ordered: nothing behind a
// parked volume starts, even with idle drives.
TEST(SchedulerTest, BackfillOffKeepsStrictOrder) {
  DirectedFixture f;
  Filesystem* a = f.AddVolume("alpha", 4 * kMiB, 31);
  Filesystem* b = f.AddVolume("beta", 2 * kMiB, 32);
  Filesystem* c = f.AddVolume("gamma", 2 * kMiB, 33);
  f.AddDrives(2);
  f.config.backfill = false;

  VolumeSpec sa = Spec("alpha", a, BackupMode::kImage, 4 * kMiB);
  sa.priority = 2;
  sa.affinity_drive = 0;
  VolumeSpec sb = Spec("beta", b, BackupMode::kImage, 2 * kMiB);
  sb.priority = 2;
  sb.affinity_drive = 0;
  VolumeSpec sc = Spec("gamma", c, BackupMode::kImage, 2 * kMiB);
  sc.priority = 0;

  NightReport report = f.RunNight({sa, sb, sc});
  ASSERT_TRUE(report.status.ok());
  EXPECT_EQ(report.backfills, 0u);
  SimTime beta_start = -1;
  SimTime gamma_start = -1;
  for (const VolumeOutcome& v : report.volumes) {
    if (v.name == "beta") beta_start = v.started;
    if (v.name == "gamma") gamma_start = v.started;
  }
  EXPECT_GE(gamma_start, beta_start)
      << "gamma must not start before the parked beta";
}

// BuildPlan is pure: repeated calls serialize identically, and the plan
// respects priority order on a single drive.
TEST(SchedulerTest, PlanIsPureAndPriorityOrdered) {
  DirectedFixture f;
  Filesystem* a = f.AddVolume("low", 2 * kMiB, 41);
  Filesystem* b = f.AddVolume("high", 2 * kMiB, 42);
  f.AddDrives(1);

  VolumeSpec sa = Spec("low", a, BackupMode::kImage, 2 * kMiB);
  sa.priority = 0;
  VolumeSpec sb = Spec("high", b, BackupMode::kImage, 2 * kMiB);
  sb.priority = 5;

  NightlyScheduler scheduler(&f.filer, f.config, {sa, sb});
  const NightPlan plan = scheduler.BuildPlan();
  EXPECT_EQ(plan.Serialize(scheduler.volumes()),
            scheduler.BuildPlan().Serialize(scheduler.volumes()));
  ASSERT_EQ(plan.assignments.size(), 2u);
  EXPECT_EQ(scheduler.volumes()[plan.assignments[0].volume].name, "high");
  EXPECT_EQ(scheduler.volumes()[plan.assignments[1].volume].name, "low");
  EXPECT_LE(plan.assignments[0].start, plan.assignments[1].start);
  EXPECT_GT(plan.projected_makespan, 0);
}

// A parallel logical volume (one drive per quota tree) schedules as one
// unit and a scheduled night restores byte-identically.
TEST(SchedulerTest, ParallelLogicalVolumeRestoresByteIdentical) {
  DirectedFixture f;
  f.AddDrives(2);
  f.volumes.push_back(Volume::Create(&f.env, "qtvol", SmallGeometry()));
  auto fs =
      std::move(Filesystem::Format(f.volumes.back().get(), &f.env)).value();
  WorkloadParams params;
  params.seed = 51;
  params.target_bytes = 4 * kMiB;
  params.quota_trees = 2;
  ASSERT_TRUE(PopulateFilesystem(fs.get(), params).ok());
  f.filesystems.push_back(std::move(fs));
  Filesystem* qt = f.filesystems.back().get();
  auto src_sums = ChecksumTree(qt->LiveReader()).value();

  VolumeSpec spec = Spec("qtvol", qt, BackupMode::kLogicalFull, 4 * kMiB);
  spec.subtrees = {QuotaTreePath(0), QuotaTreePath(1)};
  NightReport report = f.RunNight({spec});
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  const VolumeOutcome& out = report.volumes[0];
  ASSERT_EQ(out.drives_used.size(), 2u);
  ASSERT_EQ(out.part_media.size(), 2u);

  // Restore each part's media through the same drives.
  auto restore_volume = Volume::Create(&f.env, "r", SmallGeometry());
  auto restore_fs =
      std::move(Filesystem::Format(restore_volume.get(), &f.env)).value();
  std::vector<TapeDrive*> restore_drives;
  std::vector<std::string> targets;
  for (size_t k = 0; k < out.part_media.size(); ++k) {
    ASSERT_EQ(out.part_media[k].size(), 1u);
    TapeDrive* drive = f.config.drives[out.drives_used[k]];
    const size_t slot =
        f.library.SlotOfLabel(out.part_media[k][0]).value();
    ASSERT_TRUE(f.library.LoadSlot(drive, slot).ok());
    restore_drives.push_back(drive);
    targets.push_back(spec.subtrees[k]);
  }
  ParallelLogicalRestoreResult restore;
  CountdownLatch rdone(&f.env, 1);
  f.env.Spawn(ParallelLogicalRestoreJob(&f.filer, restore_fs.get(),
                                        restore_drives, targets, false,
                                        &restore, &rdone));
  f.env.Run();
  ASSERT_TRUE(restore.merged.status.ok()) << restore.merged.status.ToString();
  auto dst_sums = ChecksumTree(restore_fs->LiveReader()).value();
  EXPECT_EQ(src_sums, dst_sums);
}

// Remote volumes reserve against the shared link budget; a volume that can
// never fit tonight's allowance fails fast instead of parking forever.
TEST(SchedulerTest, LinkBudgetGatesRemoteVolumes) {
  DirectedFixture f;
  Filesystem* a = f.AddVolume("near", 2 * kMiB, 61);
  Filesystem* b = f.AddVolume("far", 2 * kMiB, 62);

  NetLink link(&f.env, "wan");
  TapeServer server(&f.env, "ts", &f.library);
  f.config.drives.push_back(server.AddDrive("sd0"));
  f.config.drives.push_back(server.AddDrive("sd1"));
  f.config.library = &f.library;
  f.config.supervision = &f.policy;
  f.config.link = &link;
  f.config.server = &server;
  // Room for one estimated stream, not two: the higher-priority volume runs
  // and the other exhausts the budget.
  LinkBudget budget(&link, 5 * kMiB);
  f.config.budget = &budget;

  VolumeSpec sa = Spec("near", a, BackupMode::kRemoteImage, 4 * kMiB);
  sa.priority = 2;
  VolumeSpec sb = Spec("far", b, BackupMode::kRemoteImage, 4 * kMiB);
  sb.priority = 1;

  NightReport report = f.RunNight({sa, sb});
  const VolumeOutcome* near = nullptr;
  const VolumeOutcome* far = nullptr;
  for (const VolumeOutcome& v : report.volumes) {
    if (v.name == "near") near = &v;
    if (v.name == "far") far = &v;
  }
  ASSERT_NE(near, nullptr);
  ASSERT_NE(far, nullptr);
  EXPECT_TRUE(near->status.ok()) << near->status.ToString();
  EXPECT_FALSE(far->status.ok());
  EXPECT_EQ(far->status.code(), ErrorCode::kExhausted);
  EXPECT_GE(report.link_budget_waits, 1u);
  EXPECT_GT(budget.consumed(), 0u);
  EXPECT_EQ(budget.reserved(), 0u);
}

}  // namespace
}  // namespace bkup

// End-to-end tests for the composed multi-tape jobs: data correctness of
// parallel logical (quota-tree) and parallel physical (striped) backup and
// restore, plus the structural properties of the striping.
#include <gtest/gtest.h>

#include "src/backup/parallel.h"
#include "src/workload/population.h"

namespace bkup {
namespace {

VolumeGeometry Geometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 4096;
  return geom;
}

struct ParallelFixture {
  ParallelFixture() : filer(&env, FilerModel::F630()) {
    volume = Volume::Create(&env, "home", Geometry());
    fs = std::move(Filesystem::Format(volume.get(), &env)).value();
    WorkloadParams params;
    params.target_bytes = 16 * kMiB;
    params.quota_trees = 4;
    EXPECT_TRUE(PopulateFilesystem(fs.get(), params).ok());
    for (int i = 0; i < 4; ++i) {
      tapes.push_back(
          std::make_unique<Tape>("t" + std::to_string(i), 4ull * kGiB));
      drives.push_back(
          std::make_unique<TapeDrive>(&env, "d" + std::to_string(i)));
      drives.back()->LoadMedia(tapes.back().get());
    }
  }

  std::vector<TapeDrive*> DrivePtrs() {
    std::vector<TapeDrive*> out;
    for (auto& d : drives) {
      out.push_back(d.get());
    }
    return out;
  }

  SimEnvironment env;
  Filer filer;
  std::unique_ptr<Volume> volume;
  std::unique_ptr<Filesystem> fs;
  std::vector<std::unique_ptr<Tape>> tapes;
  std::vector<std::unique_ptr<TapeDrive>> drives;
};

TEST(ParallelJobsTest, LogicalQuotaTreeRoundTrip) {
  ParallelFixture f;
  auto src_sums = ChecksumTree(f.fs->LiveReader()).value();
  ASSERT_GT(src_sums.size(), 50u);

  std::vector<std::string> subtrees;
  for (uint32_t k = 0; k < 4; ++k) {
    subtrees.push_back(QuotaTreePath(k));
  }
  ParallelLogicalBackupResult backup;
  CountdownLatch done(&f.env, 1);
  f.env.Spawn(ParallelLogicalBackupJob(&f.filer, f.fs.get(), f.DrivePtrs(),
                                       subtrees, LogicalDumpOptions{},
                                       &backup, &done));
  f.env.Run();
  ASSERT_TRUE(backup.merged.status.ok()) << backup.merged.status.ToString();
  ASSERT_EQ(backup.parts.size(), 4u);
  // Each quota tree produced an independent tape.
  for (int k = 0; k < 4; ++k) {
    EXPECT_GT(f.tapes[k]->size(), kMiB) << "tape " << k;
  }
  // The dump snapshot was shared and cleaned up.
  EXPECT_TRUE(f.fs->ListSnapshots().empty());

  // Restore all four tapes concurrently into a fresh filesystem.
  auto restore_volume = Volume::Create(&f.env, "r", Geometry());
  auto restore_fs =
      std::move(Filesystem::Format(restore_volume.get(), &f.env)).value();
  for (auto& d : f.drives) {
    d->Rewind();
  }
  ParallelLogicalRestoreResult restore;
  CountdownLatch rdone(&f.env, 1);
  f.env.Spawn(ParallelLogicalRestoreJob(&f.filer, restore_fs.get(),
                                        f.DrivePtrs(), subtrees, false,
                                        &restore, &rdone));
  f.env.Run();
  ASSERT_TRUE(restore.merged.status.ok())
      << restore.merged.status.ToString();

  auto dst_sums = ChecksumTree(restore_fs->LiveReader()).value();
  EXPECT_EQ(src_sums, dst_sums);
}

TEST(ParallelJobsTest, StripedImagePartsPartitionTheBlockSet) {
  ParallelFixture f;
  ParallelImageBackupResult backup;
  CountdownLatch done(&f.env, 1);
  f.env.Spawn(ParallelImageBackupJob(&f.filer, f.fs.get(), f.DrivePtrs(),
                                     ImageDumpOptions{}, false, &backup,
                                     &done));
  f.env.Run();
  ASSERT_TRUE(backup.merged.status.ok());
  ASSERT_EQ(backup.parts.size(), 4u);

  // The four parts are pairwise disjoint and cover the full set.
  Bitmap unions(f.volume->num_blocks());
  uint64_t total = 0;
  for (size_t i = 0; i < 4; ++i) {
    const Bitmap& part = backup.parts[i]->dump.block_set;
    for (size_t j = i + 1; j < 4; ++j) {
      EXPECT_TRUE(part.DisjointWith(backup.parts[j]->dump.block_set))
          << "parts " << i << " and " << j << " overlap";
    }
    unions.OrWith(part);
    total += part.CountOnes();
  }
  EXPECT_EQ(unions.CountOnes(), total);
  // Every referenced block is covered.
  const uint64_t used =
      f.fs->blockmap().CountUsed();
  EXPECT_EQ(total, used);
}

TEST(ParallelJobsTest, StripedImageRoundTripBootsWithSnapshots) {
  ParallelFixture f;
  ASSERT_TRUE(f.fs->CreateSnapshot("history").ok());
  auto src_sums = ChecksumTree(f.fs->LiveReader()).value();

  ParallelImageBackupResult backup;
  CountdownLatch done(&f.env, 1);
  f.env.Spawn(ParallelImageBackupJob(&f.filer, f.fs.get(), f.DrivePtrs(),
                                     ImageDumpOptions{}, false, &backup,
                                     &done));
  f.env.Run();
  ASSERT_TRUE(backup.merged.status.ok());

  auto restore_volume = Volume::Create(&f.env, "r", Geometry());
  for (auto& d : f.drives) {
    d->Rewind();
  }
  ParallelImageRestoreResult restore;
  CountdownLatch rdone(&f.env, 1);
  f.env.Spawn(ParallelImageRestoreJob(&f.filer, restore_volume.get(),
                                      f.DrivePtrs(), &restore, &rdone));
  f.env.Run();
  ASSERT_TRUE(restore.merged.status.ok())
      << restore.merged.status.ToString();

  auto mounted = Filesystem::Mount(restore_volume.get(), &f.env);
  ASSERT_TRUE(mounted.ok()) << mounted.status().ToString();
  auto dst_sums = ChecksumTree((*mounted)->LiveReader()).value();
  EXPECT_EQ(src_sums, dst_sums);
  // Snapshots travelled with the image parts.
  EXPECT_TRUE((*mounted)->SnapshotReader("history").ok());
}

TEST(ParallelJobsTest, PartsRunConcurrently) {
  ParallelFixture f;
  ParallelImageBackupResult backup;
  CountdownLatch done(&f.env, 1);
  f.env.Spawn(ParallelImageBackupJob(&f.filer, f.fs.get(), f.DrivePtrs(),
                                     ImageDumpOptions{}, true, &backup,
                                     &done));
  f.env.Run();
  ASSERT_TRUE(backup.merged.status.ok());
  // All four parts' streaming windows overlap substantially.
  SimTime latest_start = 0;
  SimTime earliest_end = std::numeric_limits<SimTime>::max();
  for (const auto& part : backup.parts) {
    const PhaseStats& p = part->report.phase(JobPhase::kDumpBlocks);
    latest_start = std::max(latest_start, p.start);
    earliest_end = std::min(earliest_end, p.end);
  }
  EXPECT_GT(earliest_end, latest_start)
      << "part windows must overlap (true concurrency)";
}

}  // namespace
}  // namespace bkup

// Tests for the coroutine discrete-event simulator: clock, task composition,
// resources (FIFO fairness, utilization accounting) and channels (pipelining,
// bottleneck behaviour).
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <queue>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "src/sim/channel.h"
#include "src/sim/environment.h"
#include "src/sim/event_queue.h"
#include "src/sim/resource.h"
#include "src/sim/task.h"
#include "src/util/units.h"

namespace bkup {
namespace {

Task Sleeper(SimEnvironment* env, SimDuration d, SimTime* woke_at) {
  co_await env->Delay(d);
  *woke_at = env->now();
}

TEST(SimTest, DelayAdvancesClock) {
  SimEnvironment env;
  SimTime woke = -1;
  env.Spawn(Sleeper(&env, 5 * kSecond, &woke));
  const SimTime end = env.Run();
  EXPECT_EQ(woke, 5 * kSecond);
  EXPECT_EQ(end, 5 * kSecond);
}

TEST(SimTest, ZeroDelayDoesNotSuspend) {
  SimEnvironment env;
  SimTime woke = -1;
  env.Spawn(Sleeper(&env, 0, &woke));
  env.Run();
  EXPECT_EQ(woke, 0);
}

Task Appender(SimEnvironment* env, SimDuration d, int id,
              std::vector<int>* order) {
  co_await env->Delay(d);
  order->push_back(id);
}

TEST(SimTest, EventsRunInTimeOrder) {
  SimEnvironment env;
  std::vector<int> order;
  env.Spawn(Appender(&env, 30, 3, &order));
  env.Spawn(Appender(&env, 10, 1, &order));
  env.Spawn(Appender(&env, 20, 2, &order));
  env.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimTest, SimultaneousEventsRunFifo) {
  SimEnvironment env;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    env.Spawn(Appender(&env, 42, i, &order));
  }
  env.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

Task Inner(SimEnvironment* env, std::vector<std::string>* log) {
  log->push_back("inner-start");
  co_await env->Delay(10);
  log->push_back("inner-end");
}

Task Outer(SimEnvironment* env, std::vector<std::string>* log) {
  log->push_back("outer-start");
  co_await Inner(env, log);
  log->push_back("outer-end");
  co_await env->Delay(5);
  log->push_back("outer-final");
}

TEST(SimTest, NestedTasksComposeSequentially) {
  SimEnvironment env;
  std::vector<std::string> log;
  env.Spawn(Outer(&env, &log));
  const SimTime end = env.Run();
  EXPECT_EQ(log, (std::vector<std::string>{"outer-start", "inner-start",
                                           "inner-end", "outer-end",
                                           "outer-final"}));
  EXPECT_EQ(end, 15);
}

TEST(SimTest, UnstartedTaskDoesNotLeak) {
  // Destroying a never-started task must free its frame (checked by ASAN
  // builds; here we just exercise the path).
  SimEnvironment env;
  std::vector<std::string> log;
  { Task t = Outer(&env, &log); }
  env.Run();
  EXPECT_TRUE(log.empty());
}

TEST(SimTest, RunUntilStopsAtDeadline) {
  SimEnvironment env;
  SimTime woke = -1;
  env.Spawn(Sleeper(&env, 100, &woke));
  env.RunUntil(50);
  EXPECT_EQ(woke, -1);
  EXPECT_EQ(env.now(), 50);
  env.Run();
  EXPECT_EQ(woke, 100);
}

TEST(SimTest, RunUntilClampsIdleClockForward) {
  SimEnvironment env;
  EXPECT_EQ(env.RunUntil(250), 250);  // empty queue: clock still advances
  EXPECT_EQ(env.now(), 250);
  // A deadline in the past never moves the clock backwards.
  EXPECT_EQ(env.RunUntil(100), 250);
  // Events may now be scheduled relative to the clamped clock — including
  // far enough ahead that the first Delay crosses the wheel horizon.
  SimTime woke = -1;
  env.Spawn(Sleeper(&env, 200 * kMillisecond, &woke));
  env.Run();
  EXPECT_EQ(woke, 250 + 200 * kMillisecond);
}

TEST(SimTest, RunUntilRunsEventExactlyAtDeadline) {
  SimEnvironment env;
  SimTime woke = -1;
  env.Spawn(Sleeper(&env, 100, &woke));
  env.RunUntil(100);  // deadline inclusive
  EXPECT_EQ(woke, 100);
  EXPECT_EQ(env.now(), 100);
}

TEST(SimTest, RunBeforeIsStrictAndDoesNotClamp) {
  SimEnvironment env;
  SimTime woke = -1;
  env.Spawn(Sleeper(&env, 100, &woke));
  EXPECT_EQ(env.RunBefore(100), 1u);  // the t=0 spawn event runs...
  EXPECT_EQ(woke, -1);                // ...but not the t=100 wake-up
  EXPECT_EQ(env.now(), 0);            // and the clock is NOT clamped to 99
  EXPECT_EQ(env.NextEventTime(), 100);
  EXPECT_EQ(env.RunBefore(101), 1u);
  EXPECT_EQ(woke, 100);
  EXPECT_TRUE(env.idle());
  EXPECT_EQ(env.NextEventTime(), kNoPendingEvent);
}

// ------------------------------------------------------------ EventQueue ---
//
// The calendar-queue hybrid must present exactly the ordering contract the
// old std::priority_queue gave: pops come out sorted by (when, seq), FIFO
// at equal timestamps. These tests drive the queue directly (handles are
// never resumed, so null coroutine handles are fine).

TEST(EventQueueTest, FifoPreservedAtEqualTimestampsAcrossWheelAndHeap) {
  // One shared timestamp that starts beyond the wheel horizon (so early
  // pushes land in the overflow heap) and later — after the cursor advances
  // — inside it (so late pushes land in a wheel bucket). FIFO across that
  // migration is the subtle case: heap order and bucket-sort order must
  // agree on seq.
  SimEnvironment env;
  std::vector<int> order;
  const SimDuration far = 400 * kMillisecond;  // > 1024 * 64us horizon
  for (int i = 0; i < 8; ++i) {
    env.Spawn(Appender(&env, far, i, &order));
  }
  // A mid-flight waker that schedules more events for the *same* absolute
  // time from much closer in (within the wheel horizon by then).
  auto late_waves = [](SimEnvironment* e, SimDuration target,
                       std::vector<int>* out) -> Task {
    co_await e->Delay(target - 30 * kMillisecond);
    for (int i = 8; i < 16; ++i) {
      e->Spawn(Appender(e, target - e->now(), i, out));
    }
  };
  env.Spawn(late_waves(&env, far, &order));
  env.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                     12, 13, 14, 15}));
}

TEST(EventQueueTest, RandomizedEquivalenceWithReferenceHeap) {
  // 64 seeded adversarial workloads: the hybrid queue must pop the exact
  // sequence a (when, seq)-ordered binary heap pops. Delay mix is chosen to
  // exercise every internal path: ready ring (0), staged bucket (tiny),
  // wheel (up to ~65ms) and overflow heap (up to 2s), plus pushes below an
  // already-staged range.
  struct Ref {
    SimTime when;
    uint64_t seq;
    bool operator>(const Ref& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  const int seed_offset =
      std::getenv("BKUP_SIM_SEED_OFFSET") != nullptr
          ? std::atoi(std::getenv("BKUP_SIM_SEED_OFFSET")) * 64
          : 0;
  for (int seed = seed_offset; seed < seed_offset + 64; ++seed) {
    std::mt19937 rng(static_cast<uint32_t>(1234 + seed));
    EventQueue q;
    std::priority_queue<Ref, std::vector<Ref>, std::greater<Ref>> ref;
    SimTime now = 0;
    uint64_t seq = 0;
    auto push_some = [&](int n) {
      for (int i = 0; i < n; ++i) {
        SimDuration d = 0;
        switch (rng() % 5) {
          case 0:
            d = 0;
            break;
          case 1:
            d = static_cast<SimDuration>(rng() % 64);  // same bucket
            break;
          case 2:
            d = static_cast<SimDuration>(rng() % (65 * kMillisecond));
            break;
          case 3:
            d = static_cast<SimDuration>(rng() % (2 * kSecond));
            break;
          case 4:  // duplicate an existing pending timestamp if any
            d = ref.empty() ? 17 : ref.top().when - now;
            break;
        }
        q.Push(now + d, seq, std::coroutine_handle<>{}, now);
        ref.push(Ref{now + d, seq});
        ++seq;
      }
    };
    push_some(200);
    int step = 0;
    while (!ref.empty()) {
      ASSERT_FALSE(q.Empty());
      ASSERT_EQ(q.NextTime(), ref.top().when) << "seed " << seed;
      const QueuedEvent got = q.Pop();
      ASSERT_EQ(got.when, ref.top().when) << "seed " << seed;
      ASSERT_EQ(got.seq, ref.top().seq) << "seed " << seed;
      ASSERT_GE(got.when, now) << "seed " << seed;
      now = got.when;
      ref.pop();
      // Interleave pushes so the queue refills mid-drain (cursor mid-wheel,
      // staged slab partially consumed).
      if (++step % 3 == 0 && step < 600) {
        push_some(static_cast<int>(rng() % 4));
      }
    }
    EXPECT_TRUE(q.Empty()) << "seed " << seed;
    EXPECT_EQ(q.size(), 0u) << "seed " << seed;
  }
}

// -------------------------------------------------------------- Resource ---

Task Worker(SimEnvironment* env, Resource* res, SimDuration hold, int id,
            std::vector<int>* done_order) {
  co_await res->Acquire();
  co_await env->Delay(hold);
  res->Release();
  done_order->push_back(id);
}

TEST(ResourceTest, SerializesOnUnitCapacity) {
  SimEnvironment env;
  Resource cpu(&env, 1, "cpu");
  std::vector<int> done;
  for (int i = 0; i < 3; ++i) {
    env.Spawn(Worker(&env, &cpu, 10, i, &done));
  }
  const SimTime end = env.Run();
  EXPECT_EQ(done, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(end, 30);  // three serialized 10us holds
  EXPECT_EQ(cpu.in_use(), 0);
}

TEST(ResourceTest, ParallelismUpToCapacity) {
  SimEnvironment env;
  Resource tapes(&env, 4, "tapes");
  std::vector<int> done;
  for (int i = 0; i < 4; ++i) {
    env.Spawn(Worker(&env, &tapes, 10, i, &done));
  }
  EXPECT_EQ(env.Run(), 10);  // all four in parallel
}

TEST(ResourceTest, FifoNoStarvationOfLargeRequest) {
  SimEnvironment env;
  Resource res(&env, 2, "r");
  std::vector<int> done;

  auto big = [](SimEnvironment* e, Resource* r,
                std::vector<int>* d) -> Task {
    co_await e->Delay(1);      // arrive second
    co_await r->Acquire(2);    // wants both units
    co_await e->Delay(10);
    r->Release(2);
    d->push_back(100);
  };
  auto small = [](SimEnvironment* e, Resource* r, int id, SimDuration start,
                  std::vector<int>* d) -> Task {
    co_await e->Delay(start);
    co_await r->Acquire(1);
    co_await e->Delay(10);
    r->Release(1);
    d->push_back(id);
  };
  env.Spawn(small(&env, &res, 1, 0, &done));  // holds one unit until t=10
  env.Spawn(big(&env, &res, &done));          // queued at t=1 needing 2
  env.Spawn(small(&env, &res, 2, 2, &done));  // must NOT overtake the big one
  env.Run();
  EXPECT_EQ(done, (std::vector<int>{1, 100, 2}));
}

TEST(ResourceTest, BusyIntegralTracksUtilization) {
  SimEnvironment env;
  Resource cpu(&env, 1, "cpu");
  std::vector<int> done;
  env.Spawn(Worker(&env, &cpu, 30, 0, &done));  // busy 30 of 30
  env.Run();
  EXPECT_EQ(cpu.BusyIntegral(), 30);

  // Let idle time pass: spawn a sleeper, not touching the cpu.
  SimTime woke;
  env.Spawn(Sleeper(&env, 70, &woke));
  env.Run();
  EXPECT_EQ(env.now(), 100);
  EXPECT_EQ(cpu.BusyIntegral(), 30);  // no extra busy time accrued
}

TEST(ResourceTest, UtilizationWindow) {
  SimEnvironment env;
  Resource cpu(&env, 1, "cpu");
  UtilizationWindow w(&cpu);
  w.Start(env.now());
  std::vector<int> done;
  env.Spawn(Worker(&env, &cpu, 25, 0, &done));
  SimTime woke;
  env.Spawn(Sleeper(&env, 100, &woke));
  env.Run();
  EXPECT_DOUBLE_EQ(w.Utilization(env.now()), 0.25);
}

TEST(ResourceTest, UseHelper) {
  SimEnvironment env;
  auto proc = [](Resource* r) -> Task { co_await r->Use(1, 42); };
  Resource r(&env, 1, "r");
  env.Spawn(proc(&r));
  EXPECT_EQ(env.Run(), 42);
  EXPECT_EQ(r.BusyIntegral(), 42);
}

// --------------------------------------------------------------- Channel ---

Task Producer(SimEnvironment* env, Channel<int>* ch, int n,
              SimDuration per_item) {
  for (int i = 0; i < n; ++i) {
    co_await env->Delay(per_item);
    co_await ch->Send(i);
  }
  ch->Close();
}

Task Consumer(SimEnvironment* env, Channel<int>* ch, SimDuration per_item,
              std::vector<int>* out) {
  while (true) {
    std::optional<int> v = co_await ch->Recv();
    if (!v.has_value()) {
      break;
    }
    co_await env->Delay(per_item);
    out->push_back(*v);
  }
}

TEST(ChannelTest, DeliversAllInOrder) {
  SimEnvironment env;
  Channel<int> ch(&env, 4);
  std::vector<int> out;
  env.Spawn(Producer(&env, &ch, 10, 1));
  env.Spawn(Consumer(&env, &ch, 1, &out));
  env.Run();
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i], i);
  }
}

TEST(ChannelTest, SlowConsumerBoundsPipeline) {
  // Producer makes an item every 1us, consumer takes 10us: total time is
  // dominated by the consumer: ~ n*10 (+ initial fill).
  SimEnvironment env;
  Channel<int> ch(&env, 2);
  std::vector<int> out;
  env.Spawn(Producer(&env, &ch, 20, 1));
  env.Spawn(Consumer(&env, &ch, 10, &out));
  const SimTime end = env.Run();
  EXPECT_EQ(out.size(), 20u);
  EXPECT_GE(end, 200);
  EXPECT_LE(end, 215);
}

TEST(ChannelTest, SlowProducerBoundsPipeline) {
  SimEnvironment env;
  Channel<int> ch(&env, 2);
  std::vector<int> out;
  env.Spawn(Producer(&env, &ch, 20, 10));
  env.Spawn(Consumer(&env, &ch, 1, &out));
  const SimTime end = env.Run();
  EXPECT_EQ(out.size(), 20u);
  EXPECT_GE(end, 200);
  EXPECT_LE(end, 215);
}

TEST(ChannelTest, StagesOverlapInTime) {
  // With equal stage costs c and n items, a pipeline takes ~ (n+1)*c rather
  // than 2*n*c: proof that reader and writer genuinely overlap.
  SimEnvironment env;
  Channel<int> ch(&env, 4);
  std::vector<int> out;
  env.Spawn(Producer(&env, &ch, 50, 10));
  env.Spawn(Consumer(&env, &ch, 10, &out));
  const SimTime end = env.Run();
  EXPECT_LE(end, 50 * 10 + 10 * 10);  // far below the serial 1000+... bound
  EXPECT_GE(end, 50 * 10);
}

TEST(ChannelTest, CloseWakesBlockedReceiver) {
  SimEnvironment env;
  Channel<int> ch(&env, 1);
  std::vector<int> out;
  bool got_eof = false;
  auto rx = [](Channel<int>* c, bool* eof) -> Task {
    std::optional<int> v = co_await c->Recv();
    *eof = !v.has_value();
  };
  auto closer = [](SimEnvironment* e, Channel<int>* c) -> Task {
    co_await e->Delay(100);
    c->Close();
  };
  env.Spawn(rx(&ch, &got_eof));
  env.Spawn(closer(&env, &ch));
  env.Run();
  EXPECT_TRUE(got_eof);
}

TEST(ChannelTest, RendezvousZeroCapacity) {
  SimEnvironment env;
  Channel<int> ch(&env, 0);
  std::vector<int> out;
  env.Spawn(Producer(&env, &ch, 5, 1));
  env.Spawn(Consumer(&env, &ch, 1, &out));
  env.Run();
  EXPECT_EQ(out.size(), 5u);
}

TEST(ChannelTest, DrainsBufferAfterClose) {
  SimEnvironment env;
  Channel<int> ch(&env, 10);
  std::vector<int> out;
  auto burst = [](Channel<int>* c) -> Task {
    for (int i = 0; i < 5; ++i) {
      co_await c->Send(i);
    }
    c->Close();
  };
  auto late_rx = [](SimEnvironment* e, Channel<int>* c,
                    std::vector<int>* o) -> Task {
    co_await e->Delay(50);
    while (true) {
      std::optional<int> v = co_await c->Recv();
      if (!v) {
        break;
      }
      o->push_back(*v);
    }
  };
  env.Spawn(burst(&ch));
  env.Spawn(late_rx(&env, &ch, &out));
  env.Run();
  EXPECT_EQ(out.size(), 5u);
}

// Determinism: the whole engine must produce identical schedules run-to-run.
TEST(SimTest, DeterministicAcrossRuns) {
  auto run_once = []() {
    SimEnvironment env;
    Resource cpu(&env, 2, "cpu");
    Channel<int> ch(&env, 3);
    std::vector<int> out;
    env.Spawn(Producer(&env, &ch, 30, 3));
    env.Spawn(Consumer(&env, &ch, 5, &out));
    std::vector<int> done;
    for (int i = 0; i < 6; ++i) {
      env.Spawn(Worker(&env, &cpu, 7, i, &done));
    }
    const SimTime end = env.Run();
    return std::tuple(end, out, done, env.events_processed());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace bkup

// Tests for the simulated network transport (src/net) and the remote
// backup/restore data path (src/backup/remote.h): MTU framing, sliding-window
// backpressure, checksum rejection and retransmission, deterministic link
// fault injection, and a supervised mid-stream outage recovered by reconnect
// with a byte-identical restore at the end.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/backup/remote.h"
#include "src/faults/fault_injector.h"
#include "src/fs/filesystem.h"
#include "src/net/link.h"
#include "src/net/stream_conn.h"
#include "src/net/tape_server.h"
#include "src/workload/population.h"

namespace bkup {
namespace {

std::vector<uint8_t> PatternStream(size_t n) {
  std::vector<uint8_t> stream(n);
  for (size_t i = 0; i < n; ++i) {
    stream[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  return stream;
}

// One whole stream through one connection: send, drain, close.
Task SendAll(StreamConn* conn, std::span<const uint8_t> stream, Status* st) {
  co_await conn->SendRange(stream, 0, stream.size(), /*tag=*/0, st);
  co_await conn->Drain(st);
  conn->CloseSend();
}

// Collects delivered frames; optional per-frame delay models a slow
// receiver; optionally samples the sender's worst run-ahead.
Task RecvAll(SimEnvironment* env, StreamConn* conn,
             std::vector<StreamFrame>* frames, SimDuration per_frame_delay,
             uint64_t* max_run_ahead) {
  while (true) {
    std::optional<StreamFrame> f = co_await conn->frames().Recv();
    if (!f.has_value()) {
      break;
    }
    frames->push_back(*f);
    if (max_run_ahead != nullptr) {
      *max_run_ahead =
          std::max(*max_run_ahead,
                   conn->stats().frames_sent - conn->stats().frames_delivered);
    }
    if (per_frame_delay > 0) {
      co_await env->Delay(per_frame_delay);
    }
  }
}

// ------------------------------------------------------------- framing ---

TEST(StreamConnTest, MtuFramingRoundTrip) {
  SimEnvironment env;
  LinkParams params;
  params.mtu_bytes = 64 * kKiB;
  NetLink link(&env, "lan", params);
  StreamConn conn(&link, "s0");

  // A size that does not divide the MTU: the tail frame is short.
  const std::vector<uint8_t> stream = PatternStream(1 * kMiB + 12345);
  const uint64_t expect_frames =
      (stream.size() + params.mtu_bytes - 1) / params.mtu_bytes;

  Status st;
  std::vector<StreamFrame> frames;
  env.Spawn(SendAll(&conn, stream, &st));
  env.Spawn(RecvAll(&env, &conn, &frames, 0, nullptr));
  env.Run();

  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(frames.size(), expect_frames);
  uint64_t cursor = 0;
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].seq, i);
    EXPECT_EQ(frames[i].begin, cursor) << "frames must arrive in order";
    EXPECT_LE(frames[i].end - frames[i].begin, params.mtu_bytes);
    EXPECT_EQ(frames[i].wire_crc, frames[i].crc) << "clean link, clean crc";
    cursor = frames[i].end;
  }
  EXPECT_EQ(cursor, stream.size());
  EXPECT_EQ(conn.acked(), stream.size());
  EXPECT_EQ(conn.stats().frames_sent, expect_frames);
  EXPECT_EQ(conn.stats().frames_delivered, expect_frames);
  EXPECT_EQ(conn.stats().bytes_delivered, stream.size());
  EXPECT_EQ(conn.stats().retransmits, 0u);
  EXPECT_EQ(conn.stats().frames_dropped, 0u);
  EXPECT_EQ(link.bytes_transferred(),
            stream.size() + expect_frames * kFrameHeaderBytes);
}

// ------------------------------------------------------- backpressure ---

TEST(StreamConnTest, WindowStallsSenderBehindSlowReceiver) {
  SimEnvironment env;
  LinkParams params;
  params.mtu_bytes = 16 * kKiB;
  params.window_frames = 2;
  NetLink link(&env, "lan", params);
  StreamConn conn(&link, "s0");

  // 64 frames, receiver 10 ms/frame — far slower than the wire, so the
  // window (not bandwidth) must gate the sender.
  const std::vector<uint8_t> stream = PatternStream(64 * params.mtu_bytes);
  Status st;
  std::vector<StreamFrame> frames;
  uint64_t max_run_ahead = 0;
  env.Spawn(SendAll(&conn, stream, &st));
  env.Spawn(RecvAll(&env, &conn, &frames, 10 * kMillisecond, &max_run_ahead));
  env.Run();

  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(frames.size(), 64u) << "the stalled sender must still finish";
  EXPECT_EQ(conn.acked(), stream.size());
  // Sender run-ahead is bounded by the window plus the conn's two
  // window-sized internal buffers — never the whole stream.
  EXPECT_LE(max_run_ahead, 3 * params.window_frames + 1);
  EXPECT_GT(max_run_ahead, 0u);
}

// -------------------------------------------- corruption and rejection ---

TEST(StreamConnTest, ChecksumRejectionTriggersRetransmit) {
  SimEnvironment env;
  LinkParams params;
  params.mtu_bytes = 64 * kKiB;
  NetLink link(&env, "lan", params);

  // Every frame offered in the first 30 ms arrives corrupt; the retransmit
  // timeout (20 ms) pushes the retries past the window, where they succeed.
  FaultPlan plan;
  plan.seed = 7;
  plan.LinkCorrupt("lan", 1.0, 0, 30 * kMillisecond);
  FaultInjector injector(&env, plan);
  injector.Arm(&link);

  StreamConn conn(&link, "s0");
  const std::vector<uint8_t> stream = PatternStream(256 * kKiB);
  Status st;
  std::vector<StreamFrame> frames;
  env.Spawn(SendAll(&conn, stream, &st));
  env.Spawn(RecvAll(&env, &conn, &frames, 0, nullptr));
  env.Run();

  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE(conn.stats().checksum_rejections, 1u);
  EXPECT_GE(conn.stats().retransmits, 1u);
  EXPECT_EQ(conn.stats().frames_dropped, 0u) << "corrupt, not lost";
  EXPECT_EQ(conn.acked(), stream.size());
  uint64_t cursor = 0;
  for (const StreamFrame& f : frames) {
    EXPECT_EQ(f.begin, cursor) << "delivery stays in order across retries";
    EXPECT_EQ(f.wire_crc, f.crc) << "only intact copies are delivered";
    cursor = f.end;
  }
  EXPECT_EQ(cursor, stream.size());
  EXPECT_GE(injector.stats().link_faults_injected, 1u);
}

// ----------------------------------------------- deterministic faults ---

struct FlakyRunResult {
  ConnStats conn;
  FaultInjectorStats injector;
  Status status;
  uint64_t acked = 0;
};

FlakyRunResult RunFlakyStream() {
  SimEnvironment env;
  LinkParams params;
  params.mtu_bytes = 16 * kKiB;
  NetLink link(&env, "wan", params);
  FaultPlan plan;
  plan.seed = 42;
  plan.LinkFlaky("wan", 0.3);
  FaultInjector injector(&env, plan);
  injector.Arm(&link);

  StreamConn conn(&link, "s0");
  const std::vector<uint8_t> stream = PatternStream(1 * kMiB);
  FlakyRunResult result;
  std::vector<StreamFrame> frames;
  env.Spawn(SendAll(&conn, stream, &result.status));
  env.Spawn(RecvAll(&env, &conn, &frames, 0, nullptr));
  env.Run();
  result.conn = conn.stats();
  result.injector = injector.stats();
  result.acked = conn.acked();
  return result;
}

TEST(StreamConnTest, FlakyLinkIsDeterministicUnderFixedSeed) {
  const FlakyRunResult a = RunFlakyStream();
  const FlakyRunResult b = RunFlakyStream();
  EXPECT_GE(a.conn.frames_dropped, 1u) << "p=0.3 over 64 frames must drop";
  EXPECT_GE(a.conn.retransmits, 1u);
  EXPECT_TRUE(a.status.ok()) << a.status.ToString();
  EXPECT_EQ(a.acked, 1 * kMiB);
  EXPECT_EQ(a.conn, b.conn) << "same seed, same wire history";
  EXPECT_EQ(a.injector.link_faults_injected, b.injector.link_faults_injected);
}

// --------------------------------------------------------- tape server ---

TEST(TapeServerTest, OwnsDrivesAndLoadsFromLibrary) {
  SimEnvironment env;
  TapeServer bare(&env, "vault");
  EXPECT_EQ(bare.AddDrive("dlt0")->name(), "vault.dlt0");
  EXPECT_EQ(bare.num_drives(), 1u);
  EXPECT_EQ(bare.LoadSlot(0, 0).code(), ErrorCode::kFailedPrecondition)
      << "no library attached";

  TapeLibrary library("stacker", 32 * kMiB, 0);
  library.AddBlankTape("night.0");
  TapeServer server(&env, "vault2", &library);
  TapeDrive* drive = server.AddDrive("dlt0");
  ASSERT_TRUE(server.LoadSlot(0, 0).ok());
  ASSERT_TRUE(drive->loaded());
  EXPECT_EQ(drive->tape()->label(), "night.0");
}

// ------------------------------------------------ remote job round trip ---

VolumeGeometry Geometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;
  return geom;
}

struct RemoteFixture {
  explicit RemoteFixture(LinkParams params = {})
      : link(&env, "wan", params), server(&env, "vault") {
    volume = Volume::Create(&env, "home", Geometry());
    fs = std::move(Filesystem::Format(volume.get(), &env)).value();
    WorkloadParams wparams;
    wparams.target_bytes = 6 * kMiB;
    EXPECT_TRUE(PopulateFilesystem(fs.get(), wparams).ok());
    filer = std::make_unique<Filer>(&env, FilerModel::F630());
    drive = server.AddDrive("dlt0");
    media = std::make_unique<Tape>("night.0", 32 * kMiB);
    drive->LoadMedia(media.get());
  }

  RemoteTarget Target(const SupervisionPolicy* policy = nullptr) {
    RemoteTarget target;
    target.link = &link;
    target.server = &server;
    target.drive = drive;
    target.supervision = policy;
    return target;
  }

  SimEnvironment env;
  NetLink link;
  TapeServer server;
  std::unique_ptr<Volume> volume;
  std::unique_ptr<Filesystem> fs;
  std::unique_ptr<Filer> filer;
  TapeDrive* drive = nullptr;
  std::unique_ptr<Tape> media;
};

TEST(RemoteJobTest, LogicalBackupAndRestoreRoundTripOverCleanLink) {
  RemoteFixture f;
  auto sums = ChecksumTree(f.fs->LiveReader()).value();

  LogicalBackupJobResult backup;
  CountdownLatch done(&f.env, 1);
  f.env.Spawn(RemoteLogicalBackupJob(f.filer.get(), f.fs.get(), f.Target(),
                                     LogicalDumpOptions{}, &backup, &done));
  f.env.Run();
  ASSERT_TRUE(backup.report.status.ok()) << backup.report.status.ToString();
  EXPECT_FALSE(backup.report.faults.any());
  EXPECT_EQ(backup.report.total_net_bytes(), backup.report.stream_bytes)
      << "every stream byte crossed the link exactly once";
  EXPECT_EQ(backup.report.total_tape_bytes(), backup.report.stream_bytes);
  EXPECT_GT(backup.report.NetMBps(), 0.0);

  // Rewind the server drive and restore over the same link into a fresh
  // file system.
  ASSERT_TRUE(f.drive->SeekTo(0).ok());
  auto rvolume = Volume::Create(&f.env, "r", Geometry());
  auto rfs = std::move(Filesystem::Format(rvolume.get(), &f.env)).value();
  LogicalRestoreJobResult restore;
  CountdownLatch rdone(&f.env, 1);
  f.env.Spawn(RemoteLogicalRestoreJob(f.filer.get(), rfs.get(), f.Target(),
                                      LogicalRestoreOptions{}, false,
                                      &restore, &rdone));
  f.env.Run();
  ASSERT_TRUE(restore.report.status.ok()) << restore.report.status.ToString();
  EXPECT_EQ(restore.report.total_net_bytes(), restore.report.stream_bytes);
  EXPECT_EQ(ChecksumTree(rfs->LiveReader()).value(), sums);
}

// The network-label acceptance scenario: a mid-stream outage longer than
// any frame's retransmit budget kills the connection; the supervisor
// reconnects after backoff and resumes from the acked watermark; the final
// media restores byte-identically.
struct OutageRunResult {
  FaultCounters faults;
  Status status;
  std::map<std::string, uint32_t> sums;
  bool restored_ok = false;
};

OutageRunResult RunOutageScenario() {
  RemoteFixture f;
  OutageRunResult result;
  result.sums = ChecksumTree(f.fs->LiveReader()).value();

  // Cable pull over the start of the streaming phase (the 30 s snapshot
  // quiesce precedes it): every frame in the window is lost. The per-frame
  // budget (6 retransmits x 20 ms) dies inside it; the supervisor's
  // reconnect backoffs (0.5, 1, 2 s...) outlast it.
  FaultPlan plan;
  plan.seed = 11;
  plan.LinkDown("wan", 30 * kSecond, 33 * kSecond);
  FaultInjector injector(&f.env, plan);
  injector.Arm(&f.link);

  SupervisionPolicy policy;
  ImageBackupJobResult backup;
  CountdownLatch done(&f.env, 1);
  f.env.Spawn(RemoteImageBackupJob(f.filer.get(), f.fs.get(), f.Target(&policy),
                                   ImageDumpOptions{}, true, &backup, &done));
  f.env.Run();
  result.faults = backup.report.faults;
  result.status = backup.report.status;
  if (!result.status.ok()) {
    return result;
  }

  // Rewind, then remote-restore the server-side media (the outage window
  // is past).
  if (!f.drive->SeekTo(0).ok()) {
    result.status = IoError("rewind failed");
    return result;
  }
  auto rvolume = Volume::Create(&f.env, "r", Geometry());
  ImageRestoreJobResult restore;
  CountdownLatch rdone(&f.env, 1);
  f.env.Spawn(RemoteImageRestoreJob(f.filer.get(), rvolume.get(),
                                    f.Target(&policy), &restore, &rdone));
  f.env.Run();
  if (!restore.report.status.ok()) {
    result.status = restore.report.status;
    return result;
  }
  auto mounted = Filesystem::Mount(rvolume.get(), &f.env);
  if (!mounted.ok()) {
    result.status = mounted.status();
    return result;
  }
  result.restored_ok =
      ChecksumTree((*mounted)->LiveReader()).value() == result.sums;
  return result;
}

TEST(RemoteJobTest, SupervisorRecoversMidStreamOutage) {
  const OutageRunResult run = RunOutageScenario();
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_GE(run.faults.link_errors, 1u) << "the outage must kill a conn";
  EXPECT_GE(run.faults.link_reconnects, 1u);
  EXPECT_GT(run.faults.link_bytes_resent, 0u)
      << "resume must replay the unacked tail";
  EXPECT_GE(run.faults.link_retransmits, 1u);
  EXPECT_TRUE(run.restored_ok) << "restore must be byte-identical";
}

TEST(RemoteJobTest, OutageRecoveryIsDeterministic) {
  const OutageRunResult a = RunOutageScenario();
  const OutageRunResult b = RunOutageScenario();
  ASSERT_TRUE(a.status.ok());
  EXPECT_EQ(a.faults, b.faults)
      << "same plan, same seed: identical recovery history";
}

}  // namespace
}  // namespace bkup

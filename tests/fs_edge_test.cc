// Edge-case and resource-exhaustion tests for the file system: volume-full
// behaviour, inode exhaustion, deep trees, long names, snapshot-pinned
// space, and interactions between truncation and snapshots.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/fs/filesystem.h"
#include "src/util/random.h"

namespace bkup {
namespace {

VolumeGeometry TinyGeometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 1;
  geom.disks_per_group = 3;  // 2 data disks
  geom.blocks_per_disk = 512;  // 1024 data blocks = 4 MiB
  return geom;
}

struct EdgeFixture {
  explicit EdgeFixture(VolumeGeometry geom = TinyGeometry(),
                       FormatParams params = {}) {
    volume = Volume::Create(&env, "tiny", geom);
    fs = std::move(Filesystem::Format(volume.get(), &env, nullptr, params))
             .value();
  }
  SimEnvironment env;
  std::unique_ptr<Volume> volume;
  std::unique_ptr<Filesystem> fs;
};

TEST(FsEdgeTest, VolumeFullReportsNoSpaceAndStaysConsistent) {
  EdgeFixture f;
  auto inum = f.fs->Create("/hog", 0644);
  ASSERT_TRUE(inum.ok());
  std::vector<uint8_t> chunk(64 * kBlockSize, 0xAA);
  Status last = Status::Ok();
  uint64_t offset = 0;
  // Keep writing until the consistency point cannot allocate.
  while (true) {
    Status w = f.fs->Write(*inum, offset, chunk);
    if (!w.ok()) {
      last = w;
      break;
    }
    last = f.fs->ConsistencyPoint().status();
    if (!last.ok()) {
      break;
    }
    offset += chunk.size();
    if (offset > f.volume->SizeBytes() * 2) {
      FAIL() << "volume never filled up";
    }
  }
  EXPECT_EQ(last.code(), ErrorCode::kNoSpace);
  // Despite the failure, previously committed data still reads back and the
  // volume still mounts from its last good consistency point.
  f.fs.reset();
  auto remounted = Filesystem::Mount(f.volume.get(), &f.env);
  ASSERT_TRUE(remounted.ok()) << remounted.status().ToString();
  auto back = (*remounted)->LookupPath("/hog");
  EXPECT_TRUE(back.ok());
}

TEST(FsEdgeTest, DeletingFreesSpaceForNewWrites) {
  EdgeFixture f;
  std::vector<uint8_t> big(300 * kBlockSize, 1);
  auto a = f.fs->Create("/a", 0644);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(f.fs->Write(*a, 0, big).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  const uint64_t free_before = f.fs->Stats().free_blocks;
  ASSERT_TRUE(f.fs->Unlink("/a").ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  EXPECT_GT(f.fs->Stats().free_blocks, free_before + 290);
  // The space is genuinely reusable.
  auto b = f.fs->Create("/b", 0644);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(f.fs->Write(*b, 0, big).ok());
  EXPECT_TRUE(f.fs->ConsistencyPoint().ok());
}

TEST(FsEdgeTest, SnapshotPinnedSpaceNotReusable) {
  EdgeFixture f;
  std::vector<uint8_t> big(300 * kBlockSize, 2);
  auto a = f.fs->Create("/a", 0644);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(f.fs->Write(*a, 0, big).ok());
  ASSERT_TRUE(f.fs->CreateSnapshot("pin").ok());
  ASSERT_TRUE(f.fs->Unlink("/a").ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  // The snapshot pins the blocks: free space stays low.
  const FsStats pinned = f.fs->Stats();
  EXPECT_GE(pinned.snapshot_only_blocks, 300u);
  // After deleting the snapshot the space returns.
  ASSERT_TRUE(f.fs->DeleteSnapshot("pin").ok());
  EXPECT_LT(f.fs->Stats().snapshot_only_blocks, 20u);
}

TEST(FsEdgeTest, InodeExhaustion) {
  FormatParams params;
  params.max_inodes = 1024;  // minimum the formatter accepts
  EdgeFixture f(TinyGeometry(), params);
  Status last = Status::Ok();
  int created = 0;
  for (int i = 0; i < 2000; ++i) {
    auto inum = f.fs->Create("/f" + std::to_string(i), 0644);
    if (!inum.ok()) {
      last = inum.status();
      break;
    }
    ++created;
  }
  EXPECT_EQ(last.code(), ErrorCode::kExhausted);
  EXPECT_GT(created, 1000);  // close to max_inodes minus reserved
  // Deleting one makes room for exactly one more.
  ASSERT_TRUE(f.fs->Unlink("/f0").ok());
  EXPECT_TRUE(f.fs->Create("/again", 0644).ok());
  EXPECT_EQ(f.fs->Create("/nope", 0644).status().code(),
            ErrorCode::kExhausted);
}

TEST(FsEdgeTest, DeepDirectoryTree) {
  EdgeFixture f;
  std::string path;
  for (int depth = 0; depth < 40; ++depth) {
    path += "/d" + std::to_string(depth);
    ASSERT_TRUE(f.fs->Mkdir(path, 0755).ok()) << path;
  }
  auto leaf = f.fs->Create(path + "/leaf", 0644);
  ASSERT_TRUE(leaf.ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  f.fs.reset();
  auto remounted = Filesystem::Mount(f.volume.get(), &f.env);
  ASSERT_TRUE(remounted.ok());
  EXPECT_TRUE((*remounted)->LookupPath(path + "/leaf").ok());
}

TEST(FsEdgeTest, MaxLengthAndOverlongNames) {
  EdgeFixture f;
  const std::string ok_name(kMaxNameLen, 'x');
  EXPECT_TRUE(f.fs->Create("/" + ok_name, 0644).ok());
  EXPECT_TRUE(f.fs->LookupPath("/" + ok_name).ok());
  const std::string too_long(kMaxNameLen + 1, 'y');
  EXPECT_EQ(f.fs->Create("/" + too_long, 0644).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(FsEdgeTest, PathSyntaxRejected) {
  EdgeFixture f;
  EXPECT_FALSE(f.fs->Create("relative", 0644).ok());
  EXPECT_FALSE(f.fs->Create("/a//b", 0644).ok());
  EXPECT_FALSE(f.fs->Create("/a/../b", 0644).ok());
  EXPECT_FALSE(f.fs->LookupPath("").ok());
  EXPECT_FALSE(f.fs->Mkdir("/", 0755).ok()) << "root already exists";
}

TEST(FsEdgeTest, LargeDirectory) {
  EdgeFixture f;
  ASSERT_TRUE(f.fs->Mkdir("/big", 0755).ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.fs->Create("/big/f" + std::to_string(i), 0644).ok()) << i;
  }
  auto dir = f.fs->LookupPath("/big");
  ASSERT_TRUE(dir.ok());
  auto entries = f.fs->ReadDir(*dir);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 500u);
  // Spot-check a middle entry after a remount.
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  f.fs.reset();
  auto remounted = Filesystem::Mount(f.volume.get(), &f.env);
  ASSERT_TRUE(remounted.ok());
  EXPECT_TRUE((*remounted)->LookupPath("/big/f250").ok());
}

TEST(FsEdgeTest, TruncateSharedWithSnapshotKeepsSnapshotIntact) {
  EdgeFixture f;
  std::vector<uint8_t> data(20 * kBlockSize);
  Rng(5).Fill(data);
  auto inum = f.fs->Create("/t", 0644);
  ASSERT_TRUE(inum.ok());
  ASSERT_TRUE(f.fs->Write(*inum, 0, data).ok());
  ASSERT_TRUE(f.fs->CreateSnapshot("full").ok());
  ASSERT_TRUE(f.fs->Truncate(*inum, 3).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());

  auto snap = f.fs->SnapshotReader("full").value();
  auto snap_inum = snap.LookupPath("/t").value();
  std::vector<uint8_t> back;
  ASSERT_TRUE(
      snap.ReadFile(*snap.ReadInode(snap_inum), 0, data.size(), &back).ok());
  EXPECT_EQ(back, data) << "snapshot must keep the pre-truncate contents";
  auto live = f.fs->GetAttr(*inum);
  EXPECT_EQ(live->size, 3u);
}

TEST(FsEdgeTest, ManySnapshotsOfChangingFile) {
  EdgeFixture f;
  auto inum = f.fs->Create("/v", 0644);
  ASSERT_TRUE(inum.ok());
  std::vector<std::vector<uint8_t>> versions;
  for (int i = 0; i < 10; ++i) {
    std::vector<uint8_t> data(5 * kBlockSize);
    Rng(100 + i).Fill(data);
    ASSERT_TRUE(f.fs->Write(*inum, 0, data).ok());
    ASSERT_TRUE(f.fs->CreateSnapshot("v" + std::to_string(i)).ok());
    versions.push_back(std::move(data));
  }
  // Every version is still exactly readable from its snapshot.
  for (int i = 0; i < 10; ++i) {
    auto snap = f.fs->SnapshotReader("v" + std::to_string(i)).value();
    auto snap_inum = snap.LookupPath("/v").value();
    std::vector<uint8_t> back;
    ASSERT_TRUE(snap.ReadFile(*snap.ReadInode(snap_inum), 0,
                              versions[i].size(), &back)
                    .ok());
    EXPECT_EQ(back, versions[i]) << "version " << i;
  }
}

TEST(FsEdgeTest, ZeroByteOperations) {
  EdgeFixture f;
  auto inum = f.fs->Create("/z", 0644);
  ASSERT_TRUE(inum.ok());
  EXPECT_TRUE(f.fs->Write(*inum, 0, {}).ok());
  std::vector<uint8_t> out;
  EXPECT_TRUE(f.fs->Read(*inum, 0, 0, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(f.fs->Truncate(*inum, 0).ok());
  EXPECT_EQ(f.fs->GetAttr(*inum)->size, 0u);
}

TEST(FsEdgeTest, FirstFitPolicyWorksAndRecyclesEagerly) {
  FormatParams params;
  params.alloc_policy = WriteAllocator::Policy::kFirstFit;
  EdgeFixture f(TinyGeometry(), params);
  std::vector<uint8_t> data(10 * kBlockSize, 3);
  auto a = f.fs->Create("/a", 0644);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(f.fs->Write(*a, 0, data).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  // Record where /a landed, delete it, and write /b: first-fit must reuse
  // the lowest freed blocks immediately.
  auto reader = f.fs->LiveReader();
  auto a_ptrs = reader.PointerMap(*reader.ReadInode(*a)).value();
  ASSERT_TRUE(f.fs->Unlink("/a").ok());
  auto b = f.fs->Create("/b", 0644);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(f.fs->Write(*b, 0, data).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  auto reader2 = f.fs->LiveReader();
  auto b_ptrs = reader2.PointerMap(*reader2.ReadInode(*b)).value();
  Vbn a_min = ~0ull, b_min = ~0ull;
  for (uint32_t p : a_ptrs) {
    a_min = std::min<Vbn>(a_min, p);
  }
  for (uint32_t p : b_ptrs) {
    b_min = std::min<Vbn>(b_min, p);
  }
  // Consistency-point metadata may grab a couple of the lowest blocks
  // first, but /b must land in the recycled low region rather than at an
  // advancing write point.
  EXPECT_LE(b_min, a_min + 8)
      << "first-fit must recycle the lowest freed blocks";
  // And everything still reads back.
  std::vector<uint8_t> back;
  ASSERT_TRUE(f.fs->Read(*b, 0, data.size(), &back).ok());
  EXPECT_EQ(back, data);
}

TEST(FsEdgeTest, RepeatedCpWithNoChangesIsStable) {
  EdgeFixture f;
  ASSERT_TRUE(f.fs->Create("/x", 0644).ok());
  ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  const uint64_t used_before = f.fs->blockmap().CountUsed();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.fs->ConsistencyPoint().ok());
  }
  // Block-map/fsinfo rewrites must not leak blocks.
  EXPECT_EQ(f.fs->blockmap().CountUsed(), used_before);
}

}  // namespace
}  // namespace bkup

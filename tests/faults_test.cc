// Tests for the deterministic fault-injection engine (src/faults) and the
// self-healing supervised jobs (src/backup/supervisor.h): transient-window
// gating, byte-odometer disk death, media defects, retry/backoff schedules,
// hot-spare reconstruction, tape remount checkpointing, graceful logical
// degradation — and that every one of them replays bit-identically from the
// same FaultPlan seed.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/backup/supervisor.h"
#include "src/dump/logical_restore.h"
#include "src/faults/fault_injector.h"
#include "src/image/image_dump.h"
#include "src/workload/population.h"

namespace bkup {
namespace {

VolumeGeometry Geometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;
  return geom;
}

// ------------------------------------------------------- retry schedule ---

TEST(RetryPolicyTest, BackoffIsExponentialAndCapped) {
  RetryPolicy policy;  // 100 ms, x2, cap 10 s
  EXPECT_EQ(policy.BackoffBefore(1), 100 * kMillisecond);
  EXPECT_EQ(policy.BackoffBefore(2), 200 * kMillisecond);
  EXPECT_EQ(policy.BackoffBefore(3), 400 * kMillisecond);
  EXPECT_EQ(policy.BackoffBefore(7), 6400 * kMillisecond);
  EXPECT_EQ(policy.BackoffBefore(8), 10 * kSecond) << "12.8 s caps at 10 s";
  EXPECT_EQ(policy.BackoffBefore(20), 10 * kSecond);
}

// -------------------------------------------------------- injector units ---

Task AccessAt(SimEnvironment* env, Disk* disk, SimTime at, Dbn dbn,
              Status* st) {
  if (at > env->now()) {
    co_await env->Delay(at - env->now());
  }
  co_await disk->TimedAccess(dbn, 1, st);
}

TEST(FaultInjectorTest, TransientWindowGatesInjection) {
  SimEnvironment env;
  Disk d0(&env, "d0", 4096), d1(&env, "d1", 4096);
  FaultPlan plan;
  plan.DiskTransient("d0", 10 * kSecond, 20 * kSecond);
  FaultInjector injector(&env, plan);
  injector.Arm(&d0);
  injector.Arm(&d1);

  Status before, during, other, after;
  env.Spawn(AccessAt(&env, &d0, 0, 0, &before));
  env.Spawn(AccessAt(&env, &d0, 12 * kSecond, 1, &during));
  env.Spawn(AccessAt(&env, &d1, 12 * kSecond, 1, &other));
  env.Spawn(AccessAt(&env, &d0, 25 * kSecond, 2, &after));
  env.Run();

  EXPECT_TRUE(before.ok());
  EXPECT_EQ(during.code(), ErrorCode::kIoError);
  EXPECT_TRUE(other.ok()) << "untargeted disk must be unaffected";
  EXPECT_TRUE(after.ok());
  EXPECT_EQ(injector.stats().disk_faults_injected, 1u);
  EXPECT_FALSE(d0.failed()) << "a transient fault must not kill the drive";
}

Task ThreeAccesses(Disk* disk, Status* s1, Status* s2, Status* s3) {
  co_await disk->TimedAccess(0, 2, s1);
  co_await disk->TimedAccess(2, 2, s2);
  co_await disk->TimedAccess(4, 2, s3);
}

TEST(FaultInjectorTest, DiskDiesAtByteOdometer) {
  SimEnvironment env;
  Disk disk(&env, "d0", 4096);
  FaultPlan plan;
  plan.DiskFailsAfter("d0", 4 * kBlockSize);
  FaultInjector injector(&env, plan);
  injector.Arm(&disk);

  Status s1, s2, s3;
  env.Spawn(ThreeAccesses(&disk, &s1, &s2, &s3));
  env.Run();

  EXPECT_TRUE(s1.ok()) << "only 2 of the 4 fatal blocks moved";
  EXPECT_EQ(s2.code(), ErrorCode::kIoError);
  EXPECT_EQ(s3.code(), ErrorCode::kIoError) << "a dead drive stays dead";
  EXPECT_TRUE(disk.failed());
  EXPECT_EQ(injector.stats().disks_killed, 1u);
}

TEST(FaultInjectorTest, MediaDefectCorruptsRecordedBytes) {
  SimEnvironment env;
  Tape tape("m0", 1 * kMiB);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&tape);
  std::vector<uint8_t> data(32 * kKiB, 0xAB);
  ASSERT_TRUE(drive.WriteData(data).ok());  // recorded before the defect

  FaultPlan plan;
  plan.TapeMediaDefect("m0", 16 * kKiB, 4 * kKiB);
  FaultInjector injector(&env, plan);
  injector.Arm(&drive);

  ASSERT_TRUE(drive.SeekTo(0).ok());
  std::vector<uint8_t> out(32 * kKiB);
  Status st;
  env.Spawn(drive.TimedRead(out, &st));
  env.Run();

  // Reads "succeed" — the damage is latent, for record CRCs to catch.
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(out[0], 0xAB);
  EXPECT_NE(out[16 * kKiB], 0xAB);
  EXPECT_NE(out[20 * kKiB - 1], 0xAB);
  EXPECT_EQ(out[20 * kKiB], 0xAB);
  EXPECT_EQ(injector.stats().media_defects_applied, 1u);
}

Task TwoWrites(TapeDrive* drive, std::span<const uint8_t> first,
               std::span<const uint8_t> second, Status* s1, Status* s2,
               Status* s2_again) {
  co_await drive->TimedWrite(first, s1);
  co_await drive->TimedWrite(second, s2);
  co_await drive->TimedWrite(second, s2_again);
}

TEST(FaultInjectorTest, MediaDefectRejectsOverlappingWritesForever) {
  SimEnvironment env;
  Tape tape("m1", 1 * kMiB);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&tape);
  FaultPlan plan;
  plan.TapeMediaDefect("m1", 16 * kKiB, 4 * kKiB);
  FaultInjector injector(&env, plan);
  injector.Arm(&drive);

  std::vector<uint8_t> first(16 * kKiB, 0x11), second(8 * kKiB, 0x22);
  Status s1, s2, s2_again;
  env.Spawn(TwoWrites(&drive, first, second, &s1, &s2, &s2_again));
  env.Run();

  EXPECT_TRUE(s1.ok()) << "writes short of the defect stream normally";
  EXPECT_EQ(s2.code(), ErrorCode::kIoError);
  EXPECT_EQ(s2_again.code(), ErrorCode::kIoError) << "defects do not heal";
  EXPECT_EQ(drive.position(), 16 * kKiB) << "rejected writes move no bytes";
}

Task ManyAccesses(Disk* disk, std::vector<Status>* statuses) {
  for (Status& st : *statuses) {
    co_await disk->TimedAccess(0, 1, &st);
  }
}

std::vector<bool> FlakySequence(uint64_t seed, uint64_t* injected) {
  SimEnvironment env;
  Disk disk(&env, "d0", 4096);
  FaultPlan plan;
  plan.seed = seed;
  plan.DiskFlaky("d0", 0.5);
  FaultInjector injector(&env, plan);
  injector.Arm(&disk);
  std::vector<Status> statuses(64);
  env.Spawn(ManyAccesses(&disk, &statuses));
  env.Run();
  std::vector<bool> failed;
  failed.reserve(statuses.size());
  for (const Status& st : statuses) {
    failed.push_back(!st.ok());
  }
  *injected = injector.stats().disk_faults_injected;
  return failed;
}

TEST(FaultInjectorTest, SeedDeterminesFlakySequenceExactly) {
  uint64_t a_count = 0, b_count = 0, c_count = 0;
  const std::vector<bool> a = FlakySequence(7, &a_count);
  const std::vector<bool> b = FlakySequence(7, &b_count);
  const std::vector<bool> c = FlakySequence(8, &c_count);
  EXPECT_EQ(a, b) << "same seed, same workload: identical fault sequence";
  EXPECT_EQ(a_count, b_count);
  EXPECT_NE(a, c) << "a different seed draws a different stream";
  EXPECT_GT(a_count, 0u);
  EXPECT_LT(a_count, 64u);
}

// --------------------------------------------- supervised job scenarios ---

// The ISSUE acceptance scenario: one supervised logical backup survives
//   1. a transient error window across every disk (retry + backoff),
//   2. a permanent disk failure mid-dump (hot spare + RAID rebuild),
//   3. a media defect on the mounted tape (remount + checkpoint rewrite),
// and the restore of its final media set is bit-identical to the source.
struct ScenarioRun {
  bool backup_ok = false;
  bool restore_ok = false;
  bool checksums_match = false;
  FaultCounters counters;
  FaultInjectorStats istats;
  std::vector<std::string> tapes_used;
  std::vector<std::string> final_media;
  uint64_t stream_bytes = 0;
};

ScenarioRun RunTripleFaultScenario() {
  ScenarioRun out;
  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  auto volume = Volume::Create(&env, "home", Geometry());
  auto fs = std::move(Filesystem::Format(volume.get(), &env)).value();
  WorkloadParams params;
  params.target_bytes = 6 * kMiB;
  EXPECT_TRUE(PopulateFilesystem(fs.get(), params).ok());
  auto src_sums = ChecksumTree(fs->LiveReader()).value();

  Tape t0("nightly.0", 32 * kMiB), t1("nightly.1", 32 * kMiB),
      t2("nightly.2", 32 * kMiB);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&t0);

  // Replay begins once the snapshot exists, snapshot_create_time in.
  const SimTime snap = FilerModel::F630().snapshot_create_time;
  FaultPlan plan;
  plan.seed = 42;
  plan.DiskTransient("", snap + kSecond, snap + 5 * kSecond)
      .DiskFailsAfter("home.rg0.d1", 256 * kKiB)
      .TapeMediaDefect("nightly.0", 2 * kMiB, 64 * kKiB);
  FaultInjector injector(&env, plan);
  injector.Arm(volume.get());
  injector.Arm(&drive);

  SupervisionPolicy policy;
  LogicalBackupJobResult backup;
  CountdownLatch done(&env, 1);
  env.Spawn(SupervisedLogicalBackupJob(&filer, fs.get(), &drive,
                                       LogicalDumpOptions{}, &policy, &backup,
                                       &done, {&t1, &t2}));
  env.Run();
  out.backup_ok = backup.report.status.ok();
  EXPECT_TRUE(out.backup_ok) << backup.report.status.ToString();
  out.counters = backup.report.faults;
  out.istats = injector.stats();
  out.tapes_used = backup.report.tapes_used;
  out.final_media = backup.report.final_media;
  out.stream_bytes = backup.report.stream_bytes;
  if (!out.backup_ok || out.final_media.empty()) {
    return out;
  }

  // Restore reads final_media, not tapes_used: the defective media was
  // abandoned and its contents rewritten onto the spare.
  auto find_tape = [&](const std::string& label) -> Tape* {
    for (Tape* t : {&t0, &t1, &t2}) {
      if (t->label() == label) {
        return t;
      }
    }
    return nullptr;
  };
  auto rvolume = Volume::Create(&env, "r", Geometry());
  auto rfs = std::move(Filesystem::Format(rvolume.get(), &env)).value();
  TapeDrive rdrive(&env, "dlt1");
  Tape* first = find_tape(out.final_media[0]);
  if (first == nullptr) {
    return out;
  }
  rdrive.LoadMedia(first);
  std::vector<Tape*> rspares;
  for (size_t i = 1; i < out.final_media.size(); ++i) {
    rspares.push_back(find_tape(out.final_media[i]));
  }
  LogicalRestoreJobResult restore;
  CountdownLatch rdone(&env, 1);
  env.Spawn(SupervisedLogicalRestoreJob(&filer, rfs.get(), &rdrive,
                                        LogicalRestoreOptions{}, false,
                                        &policy, &restore, &rdone, rspares));
  env.Run();
  out.restore_ok = restore.report.status.ok();
  EXPECT_TRUE(out.restore_ok) << restore.report.status.ToString();
  out.checksums_match =
      out.restore_ok && ChecksumTree(rfs->LiveReader()).value() == src_sums;
  return out;
}

TEST(FaultSupervisionTest, BackupSurvivesTransientPermanentAndMediaFaults) {
  const ScenarioRun run = RunTripleFaultScenario();
  ASSERT_TRUE(run.backup_ok);

  // 1. Transient window: errors were retried, not fatal.
  EXPECT_GT(run.counters.disk_io_errors, 0u);
  EXPECT_GT(run.counters.disk_retries, 0u);
  EXPECT_GT(run.istats.disk_faults_injected, 0u);

  // 2. Permanent disk failure: one hot spare swapped in and rebuilt.
  EXPECT_EQ(run.istats.disks_killed, 1u);
  EXPECT_EQ(run.counters.spare_disks_used, 1u);
  EXPECT_GT(run.counters.reconstruction_reads, 0u);

  // 3. Media defect: the mounted tape was abandoned for a spare and the
  // stream rewritten from the checkpoint.
  EXPECT_EQ(run.istats.media_defects_applied, 1u);
  EXPECT_GE(run.counters.tape_errors, 1u);
  EXPECT_GT(run.counters.tape_retries, 0u);
  EXPECT_EQ(run.counters.tape_remounts, 1u);
  EXPECT_GT(run.counters.bytes_rewritten, 1 * kMiB);
  ASSERT_EQ(run.tapes_used.size(), 2u);
  EXPECT_EQ(run.tapes_used[0], "nightly.0");
  EXPECT_EQ(run.tapes_used[1], "nightly.1");
  ASSERT_EQ(run.final_media.size(), 1u);
  EXPECT_EQ(run.final_media[0], "nightly.1");

  // Bit-identical round trip despite all three faults.
  ASSERT_TRUE(run.restore_ok);
  EXPECT_TRUE(run.checksums_match);
}

TEST(FaultSupervisionTest, SameSeedReproducesIdenticalCounters) {
  const ScenarioRun a = RunTripleFaultScenario();
  const ScenarioRun b = RunTripleFaultScenario();
  EXPECT_TRUE(a.counters == b.counters);
  EXPECT_EQ(a.istats.disk_faults_injected, b.istats.disk_faults_injected);
  EXPECT_EQ(a.istats.disks_killed, b.istats.disks_killed);
  EXPECT_EQ(a.istats.tape_faults_injected, b.istats.tape_faults_injected);
  EXPECT_EQ(a.istats.media_defects_applied, b.istats.media_defects_applied);
  EXPECT_EQ(a.istats.drives_killed, b.istats.drives_killed);
  EXPECT_EQ(a.tapes_used, b.tapes_used);
  EXPECT_EQ(a.final_media, b.final_media);
  EXPECT_EQ(a.stream_bytes, b.stream_bytes);
}

TEST(FaultSupervisionTest, FlakyTapeReadsAreRetriedDuringRestore) {
  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  auto volume = Volume::Create(&env, "home", Geometry());
  auto fs = std::move(Filesystem::Format(volume.get(), &env)).value();
  WorkloadParams params;
  params.target_bytes = 6 * kMiB;
  ASSERT_TRUE(PopulateFilesystem(fs.get(), params).ok());
  auto src_sums = ChecksumTree(fs->LiveReader()).value();

  Tape t0("t.0", 32 * kMiB);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&t0);
  LogicalBackupJobResult backup;
  CountdownLatch done(&env, 1);
  env.Spawn(LogicalBackupJob(&filer, fs.get(), &drive, LogicalDumpOptions{},
                             &backup, &done));
  env.Run();
  ASSERT_TRUE(backup.report.status.ok());

  // A clean tape in a flaky restore drive: every read has a 20% chance of
  // failing and must be retried in place (a failed read moves no bytes).
  FaultPlan plan;
  plan.seed = 7;
  plan.TapeFlaky("rdlt", 0.2);
  TapeDrive rdrive(&env, "rdlt");
  FaultInjector injector(&env, plan);
  injector.Arm(&rdrive);
  rdrive.LoadMedia(&t0);

  auto rvolume = Volume::Create(&env, "r", Geometry());
  auto rfs = std::move(Filesystem::Format(rvolume.get(), &env)).value();
  SupervisionPolicy policy;
  LogicalRestoreJobResult restore;
  CountdownLatch rdone(&env, 1);
  env.Spawn(SupervisedLogicalRestoreJob(&filer, rfs.get(), &rdrive,
                                        LogicalRestoreOptions{}, false,
                                        &policy, &restore, &rdone));
  env.Run();
  ASSERT_TRUE(restore.report.status.ok())
      << restore.report.status.ToString();
  EXPECT_GT(restore.report.faults.tape_errors, 0u);
  EXPECT_GT(restore.report.faults.tape_retries, 0u);
  EXPECT_EQ(ChecksumTree(rfs->LiveReader()).value(), src_sums);
}

// ----------------------------------------------- graceful degradation ---

TEST(FaultSupervisionTest, LogicalDumpSkipsUnreadableFilesImageMustFail) {
  SimEnvironment env;
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 512;  // group 0 data = 6 MiB: force spill into rg1
  auto volume = Volume::Create(&env, "home", geom);
  auto fs = std::move(Filesystem::Format(volume.get(), &env)).value();

  constexpr int kFiles = 36;  // 9 MiB of 256 KiB files
  std::vector<uint8_t> payload(256 * kKiB);
  for (int i = 0; i < kFiles; ++i) {
    for (size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<uint8_t>(i * 131 + j);
    }
    auto inum = fs->Create("/f" + std::to_string(i), 0644);
    ASSERT_TRUE(inum.ok());
    ASSERT_TRUE(fs->Write(*inum, 0, payload).ok());
  }
  ASSERT_TRUE(fs->CreateSnapshot("s").ok());
  auto reader = fs->SnapshotReader("s").value();
  auto src_sums = ChecksumTree(reader).value();

  // The dump's mapping phase must still read the inode file and the root
  // directory; find the disks holding them so the double failure we are
  // about to stage only takes out file payload.
  std::set<Disk*> metadata_disks;
  for (Inum i = 0; i < reader.max_inodes(); ++i) {
    if (Vbn v = reader.InodeFileVbn(i); v != 0) {
      metadata_disks.insert(volume->Locate(v).disk);
    }
  }
  auto root_inode = reader.ReadInode(kRootDirInum).value();
  const std::vector<uint32_t> root_ptrs =
      reader.PointerMap(root_inode).value();
  for (uint32_t v : root_ptrs) {
    if (v != 0) {
      metadata_disks.insert(volume->Locate(v).disk);
    }
  }

  // Kill one data disk of RAID group 1 holding a file block — chosen to
  // hold no metadata — plus the group's parity disk, so exactly that
  // disk's blocks are beyond reconstruction while every other member
  // stays directly readable.
  Disk* victim1 = nullptr;
  RaidGroup* dead_group = nullptr;
  for (int i = 0; i < kFiles && victim1 == nullptr; ++i) {
    auto inum = reader.LookupPath("/f" + std::to_string(i)).value();
    auto inode = reader.ReadInode(inum).value();
    const std::vector<uint32_t> ptrs = reader.PointerMap(inode).value();
    for (uint32_t v : ptrs) {
      if (v == 0) {
        continue;
      }
      Volume::Placement p = volume->Locate(v);
      if (p.group_index == 1 && metadata_disks.count(p.disk) == 0) {
        victim1 = p.disk;
        dead_group = p.group;
        break;
      }
    }
  }
  ASSERT_NE(victim1, nullptr) << "fill never spilled into RAID group 1";
  victim1->Fail();
  dead_group->parity_disk()->Fail();

  LogicalDumpOptions opts;
  opts.dump_time = env.now();
  EXPECT_FALSE(RunLogicalDump(reader, opts).ok())
      << "without skip_unreadable a double failure aborts the dump";

  opts.skip_unreadable = true;
  auto dump = RunLogicalDump(reader, opts);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_GT(dump->stats.files_skipped, 0u);
  EXPECT_LT(dump->stats.files_skipped, static_cast<uint32_t>(kFiles))
      << "only files touching the dead disks should be dropped";

  // The degraded stream is still a valid dump: it restores cleanly and
  // every file it carries is intact.
  auto rvolume = Volume::Create(&env, "r", geom);
  auto rfs = std::move(Filesystem::Format(rvolume.get(), &env)).value();
  ASSERT_TRUE(
      RunLogicalRestore(rfs.get(), dump->stream, LogicalRestoreOptions{})
          .ok());
  auto restored = ChecksumTree(rfs->LiveReader()).value();
  EXPECT_EQ(restored.size() + dump->stats.files_skipped, src_sums.size());
  for (const auto& [path, crc] : restored) {
    EXPECT_EQ(crc, src_sums.at(path)) << path;
  }

  // An image dump has no file boundaries to skip at: same damage, hard fail.
  EXPECT_FALSE(RunImageDump(volume.get(), ImageDumpOptions{}).ok());
}

}  // namespace
}  // namespace bkup

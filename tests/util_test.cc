// Unit tests for src/util: status, bitmap, checksum, serdes, stats, units.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/util/bitmap.h"
#include "src/util/checksum.h"
#include "src/util/random.h"
#include "src/util/serdes.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace bkup {
namespace {

// ---------------------------------------------------------------- Status ---

TEST(StatusTest, OkIsOk) {
  Status s = Status::Ok();
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("no such snapshot 'nightly.3'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such snapshot 'nightly.3'");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(InvalidArgument("x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExists("x").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(NoSpace("x").code(), ErrorCode::kNoSpace);
  EXPECT_EQ(IoError("x").code(), ErrorCode::kIoError);
  EXPECT_EQ(Corruption("x").code(), ErrorCode::kCorruption);
  EXPECT_EQ(NotADirectory("x").code(), ErrorCode::kNotADirectory);
  EXPECT_EQ(IsADirectory("x").code(), ErrorCode::kIsADirectory);
  EXPECT_EQ(NotEmpty("x").code(), ErrorCode::kNotEmpty);
  EXPECT_EQ(Permission("x").code(), ErrorCode::kPermission);
  EXPECT_EQ(FailedPrecondition("x").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(Unsupported("x").code(), ErrorCode::kUnsupported);
  EXPECT_EQ(Exhausted("x").code(), ErrorCode::kExhausted);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = IoError("disk 7 dead");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kIoError);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) {
    return InvalidArgument("odd");
  }
  return x / 2;
}

Result<int> QuarterEven(int x) {
  BKUP_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*QuarterEven(8), 2);
  EXPECT_EQ(QuarterEven(6).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(QuarterEven(5).status().code(), ErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Bitmap ---

TEST(BitmapTest, SetTestClear) {
  Bitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_FALSE(b.Test(63));
  b.Set(63);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(99));
  EXPECT_EQ(b.CountOnes(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.CountOnes(), 2u);
}

TEST(BitmapTest, SetAllRespectsSize) {
  Bitmap b(70);
  b.SetAll();
  EXPECT_EQ(b.CountOnes(), 70u);
}

TEST(BitmapTest, FindFirstSetScansAcrossWords) {
  Bitmap b(300);
  EXPECT_EQ(b.FindFirstSet(), Bitmap::npos);
  b.Set(200);
  b.Set(250);
  EXPECT_EQ(b.FindFirstSet(), 200u);
  EXPECT_EQ(b.FindFirstSet(201), 250u);
  EXPECT_EQ(b.FindFirstSet(251), Bitmap::npos);
}

TEST(BitmapTest, FindFirstClearScansAcrossWords) {
  Bitmap b(130);
  b.SetAll();
  EXPECT_EQ(b.FindFirstClear(), Bitmap::npos);
  b.Clear(128);
  EXPECT_EQ(b.FindFirstClear(), 128u);
  EXPECT_EQ(b.FindFirstClear(129), Bitmap::npos);
}

TEST(BitmapTest, DifferenceMatchesTable1Semantics) {
  // Table 1: incremental dump includes blocks in B but not in A.
  Bitmap a(256);
  Bitmap b(256);
  a.Set(1);            // deleted since full dump: in A only -> excluded
  a.Set(2);
  b.Set(2);            // unchanged: in both -> excluded
  b.Set(3);            // newly written: in B only -> included
  Bitmap incr = Bitmap::Difference(b, a);
  EXPECT_FALSE(incr.Test(0));  // in neither
  EXPECT_FALSE(incr.Test(1));
  EXPECT_FALSE(incr.Test(2));
  EXPECT_TRUE(incr.Test(3));
  EXPECT_EQ(incr.CountOnes(), 1u);
}

TEST(BitmapTest, CountOnesInRange) {
  Bitmap b(512);
  for (size_t i = 0; i < 512; i += 3) {
    b.Set(i);
  }
  size_t brute = 0;
  for (size_t i = 100; i < 400; ++i) {
    brute += b.Test(i) ? 1 : 0;
  }
  EXPECT_EQ(b.CountOnesInRange(100, 300), brute);
  EXPECT_EQ(b.CountOnesInRange(0, 512), b.CountOnes());
  EXPECT_EQ(b.CountOnesInRange(7, 0), 0u);
}

TEST(BitmapTest, SerializeRoundTrip) {
  Bitmap b(1000);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    b.Set(rng.Below(1000));
  }
  std::vector<uint8_t> bytes = b.Serialize();
  EXPECT_EQ(bytes.size(), 125u);
  Bitmap back = Bitmap::Deserialize(bytes, 1000);
  EXPECT_EQ(b, back);
}

TEST(BitmapTest, ForEachSetAscendingOrder) {
  Bitmap b(200);
  b.Set(5);
  b.Set(64);
  b.Set(65);
  b.Set(199);
  std::vector<size_t> seen;
  b.ForEachSet([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{5, 64, 65, 199}));
}

TEST(BitmapTest, DisjointWith) {
  Bitmap a(64), b(64);
  a.Set(3);
  b.Set(4);
  EXPECT_TRUE(a.DisjointWith(b));
  b.Set(3);
  EXPECT_FALSE(a.DisjointWith(b));
}

TEST(BitmapTest, SetAlgebra) {
  Bitmap a(64), b(64);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  Bitmap o = a;
  o.OrWith(b);
  EXPECT_EQ(o.CountOnes(), 3u);
  Bitmap n = a;
  n.AndWith(b);
  EXPECT_EQ(n.CountOnes(), 1u);
  EXPECT_TRUE(n.Test(2));
  Bitmap x = a;
  x.XorWith(b);
  EXPECT_TRUE(x.Test(1));
  EXPECT_FALSE(x.Test(2));
  EXPECT_TRUE(x.Test(3));
}

// A property sweep: Difference(b, a) must equal bit-by-bit subtraction for
// random bitmaps of many sizes (including non-word-aligned tails).
class BitmapPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitmapPropertyTest, DifferenceMatchesBruteForce) {
  const size_t n = GetParam();
  Rng rng(n * 977 + 13);
  Bitmap a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Chance(0.4)) {
      a.Set(i);
    }
    if (rng.Chance(0.4)) {
      b.Set(i);
    }
  }
  Bitmap d = Bitmap::Difference(b, a);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(d.Test(i), b.Test(i) && !a.Test(i)) << "bit " << i;
  }
  // |B - A| + |B & A| == |B|
  Bitmap both = a;
  both.AndWith(b);
  EXPECT_EQ(d.CountOnes() + both.CountOnes(), b.CountOnes());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitmapPropertyTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 1000,
                                           4096, 10007));

// -------------------------------------------------------------- Checksum ---

TEST(ChecksumTest, Crc32cKnownVector) {
  // "123456789" -> 0xE3069283 (CRC-32C check value).
  const char* s = "123456789";
  const auto data = std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(s), 9);
  EXPECT_EQ(Crc32c(data), 0xE3069283u);
}

TEST(ChecksumTest, Crc32cEmptyIsZero) {
  EXPECT_EQ(Crc32c({}), 0u);
}

TEST(ChecksumTest, Crc32cIncrementalMatchesOneShot) {
  std::vector<uint8_t> data(10000);
  Rng rng(3);
  rng.Fill(data);
  const uint32_t whole = Crc32c(data);
  Crc32cAccumulator acc;
  acc.Update(std::span(data).subspan(0, 1234));
  acc.Update(std::span(data).subspan(1234, 5000));
  acc.Update(std::span(data).subspan(6234));
  EXPECT_EQ(acc.value(), whole);
}

TEST(ChecksumTest, Adler32KnownVector) {
  // Adler-32 of "Wikipedia" is 0x11E60398.
  const char* s = "Wikipedia";
  const auto data = std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(s), 9);
  EXPECT_EQ(Adler32(data), 0x11E60398u);
}

TEST(ChecksumTest, DifferentDataDifferentCrc) {
  std::vector<uint8_t> a(4096, 0xAA);
  std::vector<uint8_t> b(4096, 0xAA);
  b[2048] ^= 1;
  EXPECT_NE(Crc32c(a), Crc32c(b));
}

// ---------------------------------------------------------------- Serdes ---

TEST(SerdesTest, RoundTripAllTypes) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutString("inode file");
  w.PadTo(64);
  EXPECT_EQ(buf.size() % 64, 0u);

  ByteReader r(buf);
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU16(), 0x1234);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*r.ReadI64(), -42);
  EXPECT_EQ(*r.ReadString(), "inode file");
  EXPECT_TRUE(r.AlignTo(64).ok());
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdesTest, LittleEndianOnMedia) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.PutU32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(SerdesTest, TruncationIsCorruptionNotUB) {
  std::vector<uint8_t> buf = {0x01, 0x02};
  ByteReader r(buf);
  EXPECT_EQ(r.ReadU64().status().code(), ErrorCode::kCorruption);
  // Reader did not advance past a failed read of the first byte pair.
  EXPECT_EQ(*r.ReadU16(), 0x0201);
  EXPECT_EQ(r.ReadU8().status().code(), ErrorCode::kCorruption);
}

TEST(SerdesTest, ReadSpanViewsWithoutCopy) {
  std::vector<uint8_t> buf = {1, 2, 3, 4, 5};
  ByteReader r(buf);
  auto view = r.ReadSpan(3);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->data(), buf.data());
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(r.ReadSpan(3).status().code(), ErrorCode::kCorruption);
}

TEST(SerdesTest, SkipAndAlign) {
  std::vector<uint8_t> buf(100);
  ByteReader r(buf);
  EXPECT_TRUE(r.Skip(10).ok());
  EXPECT_TRUE(r.AlignTo(16).ok());
  EXPECT_EQ(r.position(), 16u);
  EXPECT_EQ(r.Skip(1000).code(), ErrorCode::kCorruption);
}

// ----------------------------------------------------------------- Stats ---

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatsTest, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatsTest, HistogramPercentile) {
  Log2Histogram h;
  for (uint64_t i = 0; i < 1000; ++i) {
    h.Add(i < 900 ? 100 : 100000);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_LE(h.Percentile(0.5), 128u);
  EXPECT_GE(h.Percentile(0.95), 65536u);
}

// ----------------------------------------------------------------- Units ---

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(SecondsToSim(1.5), 1500000);
  EXPECT_DOUBLE_EQ(SimToSeconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(SimToHours(90 * kMinute), 1.5);
  EXPECT_DOUBLE_EQ(BytesPerSecToMBps(5e6), 5.0);
  EXPECT_NEAR(BytesPerSecToGBph(7.3e6), 26.28, 0.01);
}

TEST(UnitsTest, Formatting) {
  EXPECT_EQ(FormatSize(512), "512 B");
  EXPECT_EQ(FormatSize(4096), "4.00 KiB");
  EXPECT_EQ(FormatSize(188ull * kGiB), "188.00 GiB");
  EXPECT_EQ(FormatDuration(90 * kMinute), "1.50 h");
  EXPECT_EQ(FormatDuration(30 * kSecond), "30.0 s");
  EXPECT_EQ(FormatPercent(0.873), "87.3%");
}

// ---------------------------------------------------------------- Random ---

TEST(RandomTest, Deterministic) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, BelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RandomTest, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, FillIsDeterministicAndCoversPartialWords) {
  std::vector<uint8_t> a(13), b(13);
  Rng ra(5), rb(5);
  ra.Fill(a);
  rb.Fill(b);
  EXPECT_EQ(a, b);
  // A fresh RNG with another seed produces different bytes.
  std::vector<uint8_t> c(13);
  Rng rc(6);
  rc.Fill(c);
  EXPECT_NE(a, c);
}

TEST(RandomTest, LogNormalIsPositive) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(9.0, 2.0), 0.0);
  }
}

TEST(RandomTest, NameHasRequestedLength) {
  Rng rng(8);
  EXPECT_EQ(rng.Name(12).size(), 12u);
}

}  // namespace
}  // namespace bkup

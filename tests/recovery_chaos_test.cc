// Chaos soak for crash-resumable recovery: restores are killed at seeded
// random points (by applied-entry count, by stream offset, by per-record
// coin flip, singly and in multi-kill chains), the target "reboots" from
// its last consistency point, and the catalog-driven resume must
//
//   (a) converge on a byte-identical tree for every workload x kill point,
//   (b) replay strictly fewer bytes than a from-scratch re-run (bounded
//       replay: the consumed ranges are the prologue + missing suffix only),
//   (c) behave deterministically — the same seed produces the same kills,
//       the same attempt count, the same ranges, the same bytes.
//
// `BKUP_RECOVERY_SEED_OFFSET` shifts the whole seed block so
// tools/seed_sweep.py can soak fresh workloads without a recompile. One
// block is 8 workloads x 8 kill plans = 64 kill-point runs (each run twice
// for the determinism check), plus the supervised-job and remote
// single-file scenarios.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/backup/jobs.h"
#include "src/backup/remote.h"
#include "src/backup/supervisor.h"
#include "src/dump/catalog.h"
#include "src/dump/logical_dump.h"
#include "src/dump/logical_restore.h"
#include "src/content/content.h"
#include "src/faults/crash.h"
#include "src/faults/fault_injector.h"
#include "src/fs/filesystem.h"
#include "src/net/link.h"
#include "src/net/tape_server.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/obs/trace.h"
#include "src/util/checksum.h"
#include "src/workload/population.h"

namespace bkup {
namespace {

constexpr int kWorkloadSeeds = 8;
constexpr int kKillPlansPerSeed = 8;

uint64_t SeedOffset() {
  const char* env = std::getenv("BKUP_RECOVERY_SEED_OFFSET");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
}

VolumeGeometry Geometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 1;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;
  return geom;
}

// One seeded workload, dumped once; every kill plan for the seed restores
// the same stream with the same catalog.
struct DumpedWorkload {
  explicit DumpedWorkload(uint64_t seed) {
    src_volume = Volume::Create(&env, "src", Geometry());
    src = std::move(Filesystem::Format(src_volume.get(), &env)).value();
    WorkloadParams params;
    params.seed = seed;
    params.target_bytes = 3 * kMiB;
    EXPECT_TRUE(PopulateFilesystem(src.get(), params).ok());
    // Advance time so restore-created inodes get mtimes that cannot collide
    // with the dumped ones (the resume diff depends on that mismatch).
    env.Spawn([](SimEnvironment* e) -> Task { co_await e->Delay(kSecond); }(
        &env));
    env.Run();

    EXPECT_TRUE(src->CreateSnapshot("snap").ok());
    auto reader = src->SnapshotReader("snap").value();
    LogicalDumpOptions opt;
    opt.volume_name = "src";
    opt.dump_time = env.now();
    auto out = RunLogicalDump(reader, opt);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    dump = std::move(out).value();
    EXPECT_TRUE(src->DeleteSnapshot("snap").ok());

    auto loaded = TapeCatalog::Load(dump.catalog_image);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    catalog = std::move(loaded).value();
    source_sums = ChecksumTree(src->LiveReader()).value();
  }

  SimEnvironment env;
  std::unique_ptr<Volume> src_volume;
  std::unique_ptr<Filesystem> src;
  LogicalDumpOutput dump;
  TapeCatalog catalog;
  std::map<std::string, uint32_t> source_sums;
};

// What one kill-and-resume sequence did, compared across reruns for the
// determinism property.
struct ChaosOutcome {
  bool converged = false;
  uint32_t attempts = 0;
  uint64_t total_bytes_replayed = 0;   // across every incarnation
  uint64_t final_bytes_replayed = 0;   // the attempt that completed
  uint64_t final_bytes_skipped = 0;
  uint32_t files_already_complete = 0;
  std::vector<StreamRange> final_ranges;
  std::map<std::string, uint32_t> sums;
};

// Runs restore attempts against a fresh target until one completes,
// remounting the volume (crash-reboot) after every kill.
ChaosOutcome RunChaos(DumpedWorkload* w, const CrashPlan& plan,
                      uint32_t checkpoint_every, const std::string& tag) {
  ChaosOutcome out;
  auto volume = Volume::Create(&w->env, "chaos-" + tag, Geometry());
  auto fs = std::move(Filesystem::Format(volume.get(), &w->env)).value();
  CrashInjector injector(plan);
  LogicalRestoreOptions opt;
  opt.catalog = &w->catalog;
  opt.checkpoint_every = checkpoint_every;
  opt.kill = &injector;
  constexpr uint32_t kMaxAttempts = 10;
  for (uint32_t attempt = 0; attempt < kMaxAttempts; ++attempt) {
    opt.resume = attempt > 0;
    auto res = RunLogicalRestore(fs.get(), w->dump.stream, opt);
    if (!res.ok()) {
      ADD_FAILURE() << tag << ": attempt " << attempt << " failed: "
                    << res.status().ToString();
      return out;
    }
    ++out.attempts;
    out.total_bytes_replayed += res->stats.bytes_replayed;
    if (!res->interrupted) {
      out.converged = true;
      out.final_bytes_replayed = res->stats.bytes_replayed;
      out.final_bytes_skipped = res->stats.bytes_skipped;
      out.files_already_complete = res->stats.files_already_complete;
      out.final_ranges = res->consumed_ranges;
      break;
    }
    // Crash-reboot: drop the in-memory state, remount the last CP.
    fs.reset();
    auto mounted = Filesystem::Mount(volume.get(), &w->env);
    if (!mounted.ok()) {
      ADD_FAILURE() << tag << ": remount failed: "
                    << mounted.status().ToString();
      return out;
    }
    fs = std::move(*mounted);
  }
  if (out.converged) {
    out.sums = ChecksumTree(fs->LiveReader()).value();
  }
  return out;
}

// A kill plan for slot `k` of a seed block: a deterministic mix of offset
// kills, entry kills, coin-flip kills and multi-kill chains.
CrashPlan PlanFor(uint64_t seed, int k, uint64_t dir_end,
                  uint64_t stream_end) {
  CrashPlan plan;
  plan.seed = seed * 100 + static_cast<uint64_t>(k);
  const uint64_t files_span = stream_end - dir_end;
  switch (k % 4) {
    case 0:  // die at a fixed point of the file section
      plan.KillAtOffset(dir_end + files_span * (k + 1) /
                        (kKillPlansPerSeed + 1));
      break;
    case 1:  // die after a fixed number of applied records
      plan.KillAtEntry(5 + static_cast<uint64_t>(k) * 11);
      break;
    case 2:  // die on a per-record coin flip inside the file phase
      plan.KillRandomIn(RestorePhase::kFiles, 0.02);
      break;
    default:  // die three times: twice mid-files, once at random
      plan.KillAtOffset(dir_end + files_span / 4)
          .KillAtOffset(dir_end + files_span / 2)
          .KillRandom(0.01);
      break;
  }
  return plan;
}

TEST(RecoveryChaosTest, KilledRestoresConvergeEverywhere) {
  const uint64_t offset = SeedOffset();
  int runs = 0, killed_runs = 0, resumed_with_skips = 0;
  for (int s = 0; s < kWorkloadSeeds; ++s) {
    const uint64_t seed = 1000 * (offset + 1) + static_cast<uint64_t>(s);
    DumpedWorkload w(seed);
    ASSERT_FALSE(w.catalog.empty());
    const uint64_t dir_end = w.catalog.directory_end();
    const uint64_t stream_end = w.catalog.stream_end();
    ASSERT_LT(dir_end, stream_end);

    // Baseline: an uninterrupted from-scratch restore of the same stream.
    CrashPlan no_kills;
    ChaosOutcome baseline =
        RunChaos(&w, no_kills, 0, "base-" + std::to_string(s));
    ASSERT_TRUE(baseline.converged);
    ASSERT_EQ(baseline.attempts, 1u);
    ASSERT_EQ(baseline.sums, w.source_sums) << "seed " << seed;
    const uint64_t full_bytes = baseline.final_bytes_replayed;

    for (int k = 0; k < kKillPlansPerSeed; ++k) {
      const CrashPlan plan = PlanFor(seed, k, dir_end, stream_end);
      const uint32_t cp_every = 1 + static_cast<uint32_t>(k % 4) * 3;
      const std::string tag =
          std::to_string(s) + "." + std::to_string(k);
      ChaosOutcome a = RunChaos(&w, plan, cp_every, tag + "a");
      ++runs;
      ASSERT_TRUE(a.converged) << tag;
      EXPECT_EQ(a.sums, w.source_sums)
          << tag << ": resumed tree differs from the source";
      if (a.attempts > 1) {
        ++killed_runs;
        // Bounded replay: the completing attempt moved strictly fewer bytes
        // than a from-scratch run would have. A kill that fired before the
        // first file became durable legitimately resumes from zero complete
        // files, so the skip assertions apply only once the diff kept
        // something.
        EXPECT_LT(a.final_bytes_replayed, full_bytes) << tag;
        if (a.files_already_complete > 0) {
          ++resumed_with_skips;
          EXPECT_GT(a.final_bytes_skipped, 0u) << tag;
          EXPECT_LT(a.final_bytes_replayed + a.final_bytes_skipped,
                    full_bytes + w.dump.stream.size())
              << tag << ": skip accounting ran past the stream";
        }
      }

      // Determinism: the same plan over the same stream runs the same way.
      ChaosOutcome b = RunChaos(&w, plan, cp_every, tag + "b");
      EXPECT_EQ(a.attempts, b.attempts) << tag;
      EXPECT_EQ(a.total_bytes_replayed, b.total_bytes_replayed) << tag;
      EXPECT_EQ(a.final_bytes_replayed, b.final_bytes_replayed) << tag;
      EXPECT_EQ(a.final_ranges, b.final_ranges) << tag;
      EXPECT_EQ(a.sums, b.sums) << tag;
    }
  }
  EXPECT_EQ(runs, kWorkloadSeeds * kKillPlansPerSeed);
  // The soak is vacuous if the kill plans rarely fire or if resumes never
  // actually fast-forward past durable work.
  EXPECT_GE(killed_runs, runs * 3 / 4)
      << "most kill plans must actually interrupt a run";
  EXPECT_GE(resumed_with_skips, killed_runs / 2)
      << "most resumes must skip already-complete files";
}

// The timed-world twin: a supervised ResumableLogicalRestoreJob takes two
// kills, restarts on the supervisor's backoff schedule, replays only the
// missing suffix off the tape, and reports the resume accounting in its
// JSON job report.
TEST(RecoveryChaosTest, SupervisedResumableJobSurvivesKills) {
  DumpedWorkload w(4242 + SeedOffset());
  Filer filer(&w.env, FilerModel::F630());
  Tape media("night.0", 32 * kMiB);
  TapeDrive drive(&w.env, "dlt0");
  drive.LoadMedia(&media);
  SupervisionPolicy policy;

  LogicalBackupJobResult backup;
  CountdownLatch done(&w.env, 1);
  w.env.Spawn(SupervisedLogicalBackupJob(&filer, w.src.get(), &drive,
                                         LogicalDumpOptions{}, &policy,
                                         &backup, &done));
  w.env.Run();
  ASSERT_TRUE(backup.report.status.ok()) << backup.report.status.ToString();
  auto catalog = TapeCatalog::Load(backup.dump.catalog_image);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();

  const uint64_t dir_end = catalog->directory_end();
  const uint64_t stream_end = catalog->stream_end();
  CrashPlan plan;
  plan.seed = 77;
  plan.KillAtOffset(dir_end + (stream_end - dir_end) / 3)
      .KillAtOffset(dir_end + 2 * (stream_end - dir_end) / 3);
  CrashInjector injector(plan);

  auto volume = Volume::Create(&w.env, "r", Geometry());
  auto fs = std::move(Filesystem::Format(volume.get(), &w.env)).value();
  ResumableRestoreConfig cfg;
  cfg.catalog = &*catalog;
  cfg.kill = &injector;
  cfg.checkpoint_every = 8;
  ResumableRestoreJobResult result;
  CountdownLatch rdone(&w.env, 1);
  w.env.Spawn(ResumableLogicalRestoreJob(&filer, &fs, volume.get(), &drive,
                                         LogicalRestoreOptions{}, false,
                                         &policy, cfg, &result, &rdone));
  w.env.Run();

  ASSERT_TRUE(result.report.status.ok()) << result.report.status.ToString();
  EXPECT_EQ(result.attempts, 3u) << "two kills = three incarnations";
  EXPECT_FALSE(result.restore.interrupted);
  EXPECT_EQ(result.report.resume.resumes, 2u);
  EXPECT_GT(result.report.resume.bytes_skipped, 0u);
  EXPECT_GT(result.report.resume.checkpoints, 0u);
  EXPECT_EQ(ChecksumTree(fs->LiveReader()).value(), w.source_sums);

  JsonWriter jw;
  result.report.WriteJson(&jw);
  auto parsed = ParseJson(jw.Take());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ((*parsed)["resume"]["resumes"].int_value(), 2);
  EXPECT_GT((*parsed)["resume"]["bytes_skipped"].int_value(), 0);
}

// Black-box forensics: the same two-kill supervised restore, run with a
// flight recorder attached, must leave a `flightrec_restore_resume_*.json`
// whose crash events sit at the planned kill points and whose
// `state.resumable_restore` block mirrors JobReport.resume exactly.
TEST(RecoveryChaosTest, ChaosKillLeavesMatchingFlightRecord) {
  DumpedWorkload w(4242 + SeedOffset());
  Filer filer(&w.env, FilerModel::F630());
  Tape media("night.0", 32 * kMiB);
  TapeDrive drive(&w.env, "dlt0");
  drive.LoadMedia(&media);
  SupervisionPolicy policy;

  LogicalBackupJobResult backup;
  CountdownLatch done(&w.env, 1);
  w.env.Spawn(SupervisedLogicalBackupJob(&filer, w.src.get(), &drive,
                                         LogicalDumpOptions{}, &policy,
                                         &backup, &done));
  w.env.Run();
  ASSERT_TRUE(backup.report.status.ok()) << backup.report.status.ToString();
  auto catalog = TapeCatalog::Load(backup.dump.catalog_image);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();

  const uint64_t dir_end = catalog->directory_end();
  const uint64_t stream_end = catalog->stream_end();
  const uint64_t kill1 = dir_end + (stream_end - dir_end) / 3;
  const uint64_t kill2 = dir_end + 2 * (stream_end - dir_end) / 3;
  CrashPlan plan;
  plan.seed = 77;
  plan.KillAtOffset(kill1).KillAtOffset(kill2);
  CrashInjector injector(plan);

  // Attached only for the restore: the fault ring should hold nothing but
  // the two chaos kills. The tracer gives the black box a trace tail that
  // includes the "restore.kill" instants.
  const std::string dir = ::testing::TempDir() + "chaos_flightrec";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  FlightRecorder recorder(&w.env, dir);
  Tracer tracer(&w.env);

  auto volume = Volume::Create(&w.env, "r", Geometry());
  auto fs = std::move(Filesystem::Format(volume.get(), &w.env)).value();
  ResumableRestoreConfig cfg;
  cfg.catalog = &*catalog;
  cfg.kill = &injector;
  cfg.checkpoint_every = 8;
  ResumableRestoreJobResult result;
  CountdownLatch rdone(&w.env, 1);
  w.env.Spawn(ResumableLogicalRestoreJob(&filer, &fs, volume.get(), &drive,
                                         LogicalRestoreOptions{}, false,
                                         &policy, cfg, &result, &rdone));
  w.env.Run();
  ASSERT_TRUE(result.report.status.ok()) << result.report.status.ToString();
  ASSERT_EQ(result.attempts, 3u);
  ASSERT_EQ(result.report.resume.resumes, 2u);

  ASSERT_EQ(recorder.dumps_written(), 1u);
  EXPECT_EQ(recorder.last_path(), dir + "/flightrec_restore_resume_0.json");
  std::ifstream in(recorder.last_path());
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = ParseJson(text.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = *parsed;
  EXPECT_EQ(doc["reason"].string_value(), "restore_resume");

  // Two crash events, labeled with consecutive incarnations, each at or
  // just past its planned kill offset (kills land on record granularity).
  const auto& events = doc["faults"]["events"].array();
  std::vector<uint64_t> kill_offsets;
  for (const JsonValue& e : events) {
    ASSERT_EQ(e["kind"].string_value(), "crash");
    unsigned long long offset = 0;
    unsigned incarnation = 0;
    ASSERT_EQ(std::sscanf(e["detail"].string_value().c_str(),
                          "kill at offset %llu, incarnation %u", &offset,
                          &incarnation),
              2)
        << e["detail"].string_value();
    EXPECT_EQ(incarnation, kill_offsets.size());
    kill_offsets.push_back(offset);
  }
  ASSERT_EQ(kill_offsets.size(), 2u);
  EXPECT_GE(kill_offsets[0], kill1);
  EXPECT_LT(kill_offsets[0], kill2);
  EXPECT_GE(kill_offsets[1], kill2);
  EXPECT_LE(kill_offsets[1], stream_end);

  // The live-state block is the JobReport.resume accounting, verbatim.
  const JsonValue& state = doc["state"]["resumable_restore"];
  EXPECT_EQ(state["attempts"].int_value(), 3);
  EXPECT_EQ(state["resumes"].int_value(), 2);
  EXPECT_EQ(static_cast<uint64_t>(state["bytes_replayed"].int_value()),
            result.report.resume.bytes_replayed);
  EXPECT_EQ(static_cast<uint64_t>(state["bytes_skipped"].int_value()),
            result.report.resume.bytes_skipped);
  EXPECT_EQ(static_cast<uint64_t>(state["entries_skipped"].int_value()),
            result.report.resume.entries_skipped);
  EXPECT_EQ(static_cast<uint64_t>(state["checkpoints"].int_value()),
            result.report.resume.checkpoints);
  EXPECT_TRUE(state["status_ok"].bool_value());

  // The black box carries the trace ring's tail: the last moments of the
  // final (successful) incarnation, every event on the restore job's track.
  ASSERT_TRUE(doc["trace"]["attached"].bool_value());
  const auto& tail = doc["trace"]["tail"].array();
  ASSERT_FALSE(tail.empty());
  for (const JsonValue& e : tail) {
    EXPECT_EQ(e["track"].string_value().rfind("job:", 0), 0u)
        << e["track"].string_value();
  }
}

// Catalog-driven remote single-file restore: one file off the vault costs
// O(file) link bytes, not O(stream), and the LinkBudget can veto the
// transfer before anything moves.
TEST(RecoveryChaosTest, RemoteSingleFileRestoreCostsOFile) {
  SimEnvironment env;
  NetLink link(&env, "wan", LinkParams{});
  TapeServer server(&env, "vault");
  TapeDrive* drive = server.AddDrive("dlt0");
  Tape media("vault.0", 32 * kMiB);
  drive->LoadMedia(&media);
  Filer filer(&env, FilerModel::F630());

  auto src_volume = Volume::Create(&env, "src", Geometry());
  auto src = std::move(Filesystem::Format(src_volume.get(), &env)).value();
  WorkloadParams params;
  params.seed = 11 + SeedOffset();
  params.target_bytes = 3 * kMiB;
  ASSERT_TRUE(PopulateFilesystem(src.get(), params).ok());
  // A known needle to fish back out.
  ASSERT_TRUE(src->Mkdir("/known", 0755).ok());
  auto needle = src->Create("/known/needle.dat", 0644);
  ASSERT_TRUE(needle.ok());
  Rng rng(3);
  std::vector<uint8_t> needle_data(5 * kBlockSize);
  rng.Fill(needle_data);
  ASSERT_TRUE(src->Write(*needle, 0, needle_data).ok());

  RemoteTarget target;
  target.link = &link;
  target.server = &server;
  target.drive = drive;

  LogicalBackupJobResult backup;
  CountdownLatch done(&env, 1);
  env.Spawn(RemoteLogicalBackupJob(&filer, src.get(), target,
                                   LogicalDumpOptions{}, &backup, &done));
  env.Run();
  ASSERT_TRUE(backup.report.status.ok()) << backup.report.status.ToString();
  ASSERT_EQ(media.contents().size(), backup.dump.stream.size());
  ASSERT_EQ(Crc32c(media.contents()), Crc32c(backup.dump.stream))
      << "tape image must be the dump stream byte for byte";
  auto catalog = TapeCatalog::Load(backup.dump.catalog_image);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();

  // A budget too small for even the ranged reads refuses up front.
  auto tiny_volume = Volume::Create(&env, "tiny", Geometry());
  auto tiny_fs =
      std::move(Filesystem::Format(tiny_volume.get(), &env)).value();
  LinkBudget tiny_budget(&link, 2 * kDumpRecordSize);
  RemoteSingleFileRestoreResult rejected;
  CountdownLatch tiny_done(&env, 1);
  env.Spawn(RemoteSingleFileRestoreJob(&filer, tiny_fs.get(), target,
                                       &*catalog, "/known/needle.dat",
                                       LogicalRestoreOptions{}, false,
                                       &tiny_budget, &rejected, &tiny_done));
  env.Run();
  EXPECT_TRUE(rejected.budget_rejected);
  EXPECT_FALSE(rejected.report.status.ok());
  EXPECT_EQ(tiny_budget.consumed(), 0u);

  // With a real allowance the file comes back for O(file) link bytes.
  auto rvolume = Volume::Create(&env, "r", Geometry());
  auto rfs = std::move(Filesystem::Format(rvolume.get(), &env)).value();
  LinkBudget budget(&link, 8 * kMiB);
  RemoteSingleFileRestoreResult result;
  CountdownLatch rdone(&env, 1);
  env.Spawn(RemoteSingleFileRestoreJob(&filer, rfs.get(), target, &*catalog,
                                       "/known/needle.dat",
                                       LogicalRestoreOptions{}, false,
                                       &budget, &result, &rdone));
  env.Run();
  ASSERT_TRUE(result.report.status.ok()) << result.report.status.ToString();
  EXPECT_FALSE(result.budget_rejected);
  EXPECT_EQ(result.restore.stats.files_restored, 1u);
  EXPECT_GT(result.link_bytes, 0u);
  EXPECT_EQ(result.full_stream_bytes, backup.dump.stream.size());
  EXPECT_LT(result.link_bytes, result.full_stream_bytes / 10)
      << "one file must cost well under a tenth of the stream";
  EXPECT_EQ(budget.consumed(), result.link_bytes);

  auto got = rfs->LookupPath("/known/needle.dat");
  ASSERT_TRUE(got.ok());
  std::vector<uint8_t> got_data;
  ASSERT_TRUE(
      rfs->Read(*got, 0, needle_data.size() + 16, &got_data).ok());
  ASSERT_EQ(got_data.size(), needle_data.size());
  EXPECT_EQ(Crc32c(got_data), Crc32c(needle_data));
}

// ----------------------------------------- kills inside an active pipeline

// One compressed+dedup'd remote dump, optionally through a mid-stream link
// outage, then a remote restore of the wire media with the same ChunkIndex.
struct ContentOutageRun {
  Status backup_status;
  Status restore_status;
  FaultCounters faults;
  ContentStats content;
  uint64_t raw_stream_bytes = 0;
  uint64_t media_bytes = 0;
  uint32_t media_crc = 0;
  bool restored_identical = false;
};

ContentOutageRun RunCompressedRemoteDump(bool outage) {
  SimEnvironment env;
  NetLink link(&env, "wan", LinkParams{});
  TapeServer server(&env, "vault");
  TapeDrive* drive = server.AddDrive("dlt0");
  Tape media("night.0", 32 * kMiB);
  drive->LoadMedia(&media);
  Filer filer(&env, FilerModel::F630());

  auto volume = Volume::Create(&env, "src", Geometry());
  auto fs = std::move(Filesystem::Format(volume.get(), &env)).value();
  WorkloadParams params;
  params.seed = 808 + SeedOffset();
  params.target_bytes = 3 * kMiB;
  EXPECT_TRUE(PopulateFilesystem(fs.get(), params).ok());
  const auto source_sums = ChecksumTree(fs->LiveReader()).value();

  ChunkIndex index;
  ContentConfig content;
  content.chunk = content.dedup = content.compress = content.crc = true;
  content.index = &index;

  SupervisionPolicy policy;
  RemoteTarget target;
  target.link = &link;
  target.server = &server;
  target.drive = drive;
  target.supervision = &policy;
  target.content = content;

  // Cable pull over the start of the streaming phase (after the 30 s
  // snapshot quiesce), long enough to exhaust every frame's retransmit
  // budget: the session dies mid-pipeline and the supervisor reconnects,
  // resuming the *wire* stream from the receiver's acked floor.
  FaultPlan plan;
  plan.seed = 11;
  plan.LinkDown("wan", 30 * kSecond, 33 * kSecond);
  FaultInjector injector(&env, plan);
  if (outage) {
    injector.Arm(&link);
  }

  ContentOutageRun run;
  LogicalBackupJobResult backup;
  CountdownLatch done(&env, 1);
  env.Spawn(RemoteLogicalBackupJob(&filer, fs.get(), target,
                                   LogicalDumpOptions{}, &backup, &done));
  env.Run();
  run.backup_status = backup.report.status;
  if (!run.backup_status.ok()) {
    return run;
  }
  run.faults = backup.report.faults;
  run.content = backup.report.content;
  run.raw_stream_bytes = backup.dump.stream.size();
  run.media_bytes = media.contents().size();
  run.media_crc = Crc32c(media.contents());

  if (!drive->SeekTo(0).ok()) {
    run.restore_status = IoError("rewind failed");
    return run;
  }
  auto rvolume = Volume::Create(&env, "r", Geometry());
  auto rfs = std::move(Filesystem::Format(rvolume.get(), &env)).value();
  LogicalRestoreJobResult restore;
  CountdownLatch rdone(&env, 1);
  env.Spawn(RemoteLogicalRestoreJob(&filer, rfs.get(), target,
                                    LogicalRestoreOptions{}, false, &restore,
                                    &rdone));
  env.Run();
  run.restore_status = restore.report.status;
  if (run.restore_status.ok()) {
    run.restored_identical =
        ChecksumTree(rfs->LiveReader()).value() == source_sums;
  }
  return run;
}

// A link outage that kills the session mid-pipeline must not change what
// the stages produced or charged: the reconnect resends already-encoded
// wire bytes from the session buffer, so the outage run pays the same
// encode CPU, ships the same wire image, and restores byte-identically.
TEST(RecoveryChaosTest, CompressedRemoteDumpOutageNeverDoubleChargesEncode) {
  const ContentOutageRun clean = RunCompressedRemoteDump(/*outage=*/false);
  ASSERT_TRUE(clean.backup_status.ok()) << clean.backup_status.ToString();
  ASSERT_TRUE(clean.restore_status.ok()) << clean.restore_status.ToString();
  EXPECT_EQ(clean.faults.link_reconnects, 0u);
  EXPECT_TRUE(clean.restored_identical);
  EXPECT_GT(clean.content.encode_cpu_us, 0u);
  EXPECT_LT(clean.media_bytes, clean.raw_stream_bytes)
      << "the tape must hold the (smaller) wire image, not raw bytes";
  EXPECT_EQ(clean.media_bytes, clean.content.wire_bytes);

  const ContentOutageRun hurt = RunCompressedRemoteDump(/*outage=*/true);
  ASSERT_TRUE(hurt.backup_status.ok()) << hurt.backup_status.ToString();
  ASSERT_TRUE(hurt.restore_status.ok()) << hurt.restore_status.ToString();
  EXPECT_GE(hurt.faults.link_reconnects, 1u) << "the outage must kill a conn";
  EXPECT_GT(hurt.faults.link_bytes_resent, 0u);
  EXPECT_TRUE(hurt.restored_identical)
      << "restore after mid-pipeline kill must be byte-identical";

  // The property under test: resending wire bytes is not re-encoding.
  EXPECT_EQ(hurt.content.encode_cpu_us, clean.content.encode_cpu_us)
      << "reconnect resend must not re-charge stage CPU";
  EXPECT_EQ(hurt.content.raw_bytes, clean.content.raw_bytes);
  EXPECT_EQ(hurt.content.wire_bytes, clean.content.wire_bytes);
  EXPECT_EQ(hurt.content.dedup_hits, clean.content.dedup_hits);
  EXPECT_EQ(hurt.media_crc, clean.media_crc)
      << "the wire image on the vault must not depend on the outage";
}

// Crash-resumable restore of a compressed tape: the acked floor and the
// catalog's offsets live in raw coordinates while the media holds wire
// bytes; each incarnation must translate its bounded replay through the
// FrameMap, converge on a byte-identical tree, and pay decode CPU only for
// the wire it actually moved (strictly less than attempts x a full decode).
TEST(RecoveryChaosTest, CompressedTapeResumableRestoreSurvivesKills) {
  DumpedWorkload w(4242 + SeedOffset());
  Filer filer(&w.env, FilerModel::F630());
  Tape media("night.0", 32 * kMiB);
  TapeDrive drive(&w.env, "dlt0");
  drive.LoadMedia(&media);
  SupervisionPolicy policy;

  ChunkIndex index;
  ContentConfig content;
  content.chunk = content.dedup = content.compress = content.crc = true;
  content.index = &index;

  LogicalBackupJobResult backup;
  CountdownLatch done(&w.env, 1);
  w.env.Spawn(LogicalBackupJob(&filer, w.src.get(), &drive,
                               LogicalDumpOptions{}, &backup, &done, {},
                               &policy, {}, content));
  w.env.Run();
  ASSERT_TRUE(backup.report.status.ok()) << backup.report.status.ToString();
  ASSERT_LT(media.contents().size(), backup.dump.stream.size())
      << "compressed backup must write wire bytes to tape";
  auto catalog = TapeCatalog::Load(backup.dump.catalog_image);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();

  const uint64_t dir_end = catalog->directory_end();
  const uint64_t stream_end = catalog->stream_end();
  CrashPlan plan;
  plan.seed = 77;
  plan.KillAtOffset(dir_end + (stream_end - dir_end) / 3)
      .KillAtOffset(dir_end + 2 * (stream_end - dir_end) / 3);
  CrashInjector injector(plan);

  auto volume = Volume::Create(&w.env, "r", Geometry());
  auto fs = std::move(Filesystem::Format(volume.get(), &w.env)).value();
  ResumableRestoreConfig cfg;
  cfg.catalog = &*catalog;
  cfg.kill = &injector;
  cfg.checkpoint_every = 8;
  cfg.content = content;
  ResumableRestoreJobResult result;
  CountdownLatch rdone(&w.env, 1);
  w.env.Spawn(ResumableLogicalRestoreJob(&filer, &fs, volume.get(), &drive,
                                         LogicalRestoreOptions{}, false,
                                         &policy, cfg, &result, &rdone));
  w.env.Run();

  ASSERT_TRUE(result.report.status.ok()) << result.report.status.ToString();
  EXPECT_EQ(result.attempts, 3u) << "two kills = three incarnations";
  EXPECT_FALSE(result.restore.interrupted);
  EXPECT_EQ(result.report.resume.resumes, 2u);
  EXPECT_EQ(ChecksumTree(fs->LiveReader()).value(), w.source_sums)
      << "resumed restore of compressed media must be byte-identical";

  // Bounded decode: a full-stream decode costs DecodeCpuPerMb() x raw MB;
  // three incarnations that each replayed everything would pay 3x that.
  const uint64_t full_decode_us =
      content.DecodeCpuPerMb() * backup.dump.stream.size() / 1000000;
  EXPECT_GT(result.report.content.decode_cpu_us, 0u);
  EXPECT_LT(result.report.content.decode_cpu_us,
            result.attempts * full_decode_us)
      << "bounded replay must not pay decode CPU for skipped wire";
}

}  // namespace
}  // namespace bkup

// Direct tests for the restore catalog — the "desiccated file system" that
// resolves names to dumped inums without touching the target file system.
#include <gtest/gtest.h>

#include "src/dump/catalog.h"

namespace bkup {
namespace {

DumpInodeAttrs DirAttrs() {
  DumpInodeAttrs a;
  a.type = InodeType::kDirectory;
  a.mode = 0755;
  return a;
}

// Builds:  / (2) ├── docs (10) │ ├── a.txt (20)
//                │ └── sub (11) ── b.txt (21)
//                └── link-to-a (20)   [hard link]
RestoreCatalog MakeCatalog() {
  RestoreCatalog c;
  c.AddDirectory(2, DirAttrs(),
                 {{10, InodeType::kDirectory, "docs"},
                  {20, InodeType::kFile, "link-to-a"}});
  c.AddDirectory(10, DirAttrs(),
                 {{20, InodeType::kFile, "a.txt"},
                  {11, InodeType::kDirectory, "sub"}});
  c.AddDirectory(11, DirAttrs(), {{21, InodeType::kFile, "b.txt"}});
  EXPECT_TRUE(c.Finalize().ok());
  return c;
}

TEST(CatalogTest, FindsRoot) {
  RestoreCatalog c = MakeCatalog();
  EXPECT_EQ(c.root(), 2u);
  EXPECT_EQ(c.num_directories(), 3u);
}

TEST(CatalogTest, NameiResolvesPaths) {
  RestoreCatalog c = MakeCatalog();
  EXPECT_EQ(*c.Namei("/"), 2u);
  EXPECT_EQ(*c.Namei("/docs"), 10u);
  EXPECT_EQ(*c.Namei("/docs/a.txt"), 20u);
  EXPECT_EQ(*c.Namei("/docs/sub/b.txt"), 21u);
  EXPECT_EQ(c.Namei("/nope").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(c.Namei("/docs/a.txt/deeper").status().code(),
            ErrorCode::kNotFound);
}

TEST(CatalogTest, PathsOfHardLink) {
  RestoreCatalog c = MakeCatalog();
  auto paths = c.PathsOf(20);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "/docs/a.txt");
  EXPECT_EQ(paths[1], "/link-to-a");
  EXPECT_EQ(c.PathsOf(2), std::vector<std::string>{"/"});
  EXPECT_TRUE(c.PathsOf(999).empty());
}

TEST(CatalogTest, Descendants) {
  RestoreCatalog c = MakeCatalog();
  auto d = c.Descendants(10);
  // docs, a.txt, sub, b.txt (order: BFS)
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d[0], 10u);
  auto leaf = c.Descendants(21);
  EXPECT_EQ(leaf, std::vector<Inum>{21});
}

TEST(CatalogTest, TopDownVisitsParentsFirst) {
  RestoreCatalog c = MakeCatalog();
  std::vector<std::pair<Inum, std::string>> seen;
  c.ForEachDirTopDown([&seen](Inum inum, const std::string& path) {
    seen.emplace_back(inum, path);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<Inum, std::string>{2, "/"}));
  EXPECT_EQ(seen[1], (std::pair<Inum, std::string>{10, "/docs"}));
  EXPECT_EQ(seen[2], (std::pair<Inum, std::string>{11, "/docs/sub"}));
}

TEST(CatalogTest, MultipleRootsRejected) {
  RestoreCatalog c;
  c.AddDirectory(2, DirAttrs(), {});
  c.AddDirectory(9, DirAttrs(), {});
  EXPECT_EQ(c.Finalize().code(), ErrorCode::kCorruption);
}

TEST(CatalogTest, NameiBeforeFinalizeFails) {
  RestoreCatalog c;
  c.AddDirectory(2, DirAttrs(), {});
  EXPECT_EQ(c.Namei("/").status().code(), ErrorCode::kFailedPrecondition);
}

TEST(CatalogTest, DirAttrsAndEntriesAccessors) {
  RestoreCatalog c = MakeCatalog();
  auto attrs = c.DirAttrs(10);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->mode, 0755);
  auto entries = c.DirEntries(10);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
  EXPECT_FALSE(c.DirAttrs(20).ok()) << "files are not catalog directories";
  EXPECT_TRUE(c.HasDirectory(11));
  EXPECT_FALSE(c.HasDirectory(21));
}

TEST(CatalogTest, SubtreeDumpRootIsNotInum2) {
  // A subtree dump's root keeps its original inum; the catalog must still
  // identify it as the root (nobody references it).
  RestoreCatalog c;
  c.AddDirectory(57, DirAttrs(), {{80, InodeType::kFile, "x"}});
  ASSERT_TRUE(c.Finalize().ok());
  EXPECT_EQ(c.root(), 57u);
  EXPECT_EQ(*c.Namei("/x"), 80u);
}

}  // namespace
}  // namespace bkup

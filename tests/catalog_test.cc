// Direct tests for the restore catalog — the "desiccated file system" that
// resolves names to dumped inums without touching the target file system —
// and for its durable twin, the TapeCatalog offset journal: round-trips,
// torn tails, mid-entry truncation, bit flips, and the scan-the-stream
// oracle a loaded catalog must agree with.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/dump/catalog.h"
#include "src/dump/logical_dump.h"
#include "src/fs/filesystem.h"
#include "src/util/random.h"

namespace bkup {
namespace {

DumpInodeAttrs DirAttrs() {
  DumpInodeAttrs a;
  a.type = InodeType::kDirectory;
  a.mode = 0755;
  return a;
}

// Builds:  / (2) ├── docs (10) │ ├── a.txt (20)
//                │ └── sub (11) ── b.txt (21)
//                └── link-to-a (20)   [hard link]
RestoreCatalog MakeCatalog() {
  RestoreCatalog c;
  c.AddDirectory(2, DirAttrs(),
                 {{10, InodeType::kDirectory, "docs"},
                  {20, InodeType::kFile, "link-to-a"}});
  c.AddDirectory(10, DirAttrs(),
                 {{20, InodeType::kFile, "a.txt"},
                  {11, InodeType::kDirectory, "sub"}});
  c.AddDirectory(11, DirAttrs(), {{21, InodeType::kFile, "b.txt"}});
  EXPECT_TRUE(c.Finalize().ok());
  return c;
}

TEST(CatalogTest, FindsRoot) {
  RestoreCatalog c = MakeCatalog();
  EXPECT_EQ(c.root(), 2u);
  EXPECT_EQ(c.num_directories(), 3u);
}

TEST(CatalogTest, NameiResolvesPaths) {
  RestoreCatalog c = MakeCatalog();
  EXPECT_EQ(*c.Namei("/"), 2u);
  EXPECT_EQ(*c.Namei("/docs"), 10u);
  EXPECT_EQ(*c.Namei("/docs/a.txt"), 20u);
  EXPECT_EQ(*c.Namei("/docs/sub/b.txt"), 21u);
  EXPECT_EQ(c.Namei("/nope").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(c.Namei("/docs/a.txt/deeper").status().code(),
            ErrorCode::kNotFound);
}

TEST(CatalogTest, PathsOfHardLink) {
  RestoreCatalog c = MakeCatalog();
  auto paths = c.PathsOf(20);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "/docs/a.txt");
  EXPECT_EQ(paths[1], "/link-to-a");
  EXPECT_EQ(c.PathsOf(2), std::vector<std::string>{"/"});
  EXPECT_TRUE(c.PathsOf(999).empty());
}

TEST(CatalogTest, Descendants) {
  RestoreCatalog c = MakeCatalog();
  auto d = c.Descendants(10);
  // docs, a.txt, sub, b.txt (order: BFS)
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d[0], 10u);
  auto leaf = c.Descendants(21);
  EXPECT_EQ(leaf, std::vector<Inum>{21});
}

TEST(CatalogTest, TopDownVisitsParentsFirst) {
  RestoreCatalog c = MakeCatalog();
  std::vector<std::pair<Inum, std::string>> seen;
  c.ForEachDirTopDown([&seen](Inum inum, const std::string& path) {
    seen.emplace_back(inum, path);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<Inum, std::string>{2, "/"}));
  EXPECT_EQ(seen[1], (std::pair<Inum, std::string>{10, "/docs"}));
  EXPECT_EQ(seen[2], (std::pair<Inum, std::string>{11, "/docs/sub"}));
}

TEST(CatalogTest, MultipleRootsRejected) {
  RestoreCatalog c;
  c.AddDirectory(2, DirAttrs(), {});
  c.AddDirectory(9, DirAttrs(), {});
  EXPECT_EQ(c.Finalize().code(), ErrorCode::kCorruption);
}

TEST(CatalogTest, NameiBeforeFinalizeFails) {
  RestoreCatalog c;
  c.AddDirectory(2, DirAttrs(), {});
  EXPECT_EQ(c.Namei("/").status().code(), ErrorCode::kFailedPrecondition);
}

TEST(CatalogTest, DirAttrsAndEntriesAccessors) {
  RestoreCatalog c = MakeCatalog();
  auto attrs = c.DirAttrs(10);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->mode, 0755);
  auto entries = c.DirEntries(10);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
  EXPECT_FALSE(c.DirAttrs(20).ok()) << "files are not catalog directories";
  EXPECT_TRUE(c.HasDirectory(11));
  EXPECT_FALSE(c.HasDirectory(21));
}

TEST(CatalogTest, SubtreeDumpRootIsNotInum2) {
  // A subtree dump's root keeps its original inum; the catalog must still
  // identify it as the root (nobody references it).
  RestoreCatalog c;
  c.AddDirectory(57, DirAttrs(), {{80, InodeType::kFile, "x"}});
  ASSERT_TRUE(c.Finalize().ok());
  EXPECT_EQ(c.root(), 57u);
  EXPECT_EQ(*c.Namei("/x"), 80u);
}

// ----------------------------------------------------------- StreamRange ---

TEST(StreamRangeTest, CoalesceMergesAdjacentAndOverlapping) {
  std::vector<StreamRange> r = {{0, 10}, {10, 20}, {25, 30}, {28, 40}};
  CoalesceRanges(&r);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], (StreamRange{0, 20}));
  EXPECT_EQ(r[1], (StreamRange{25, 40}));
  std::vector<StreamRange> empty;
  CoalesceRanges(&empty);
  EXPECT_TRUE(empty.empty());
}

// ----------------------------------------------------- TapeCatalog journal ---

TapeCatalog MakeTapeCatalog(size_t n) {
  TapeCatalog c;
  uint64_t off = 0;
  c.Add({DumpRecordType::kDirectory, 2, off, 2 * kDumpRecordSize});
  off += 2 * kDumpRecordSize;
  for (size_t i = 1; i < n; ++i) {
    c.Add({DumpRecordType::kInode, static_cast<Inum>(100 + i), off,
           kDumpRecordSize + kBlockSize});
    off += kDumpRecordSize + kBlockSize;
  }
  return c;
}

TEST(TapeCatalogTest, SerializeLoadRoundTrip) {
  TapeCatalog c = MakeTapeCatalog(10);
  std::vector<uint8_t> image = c.Serialize(/*checkpoint_every=*/4);
  TapeCatalog::LoadStats stats;
  auto loaded = TapeCatalog::Load(image, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->entries(), c.entries());
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(stats.entries_loaded, 10u);
  EXPECT_EQ(stats.entries_dropped, 0u);
  EXPECT_GE(stats.checkpoints_seen, 2u);
  EXPECT_EQ(loaded->stream_end(), c.stream_end());
}

TEST(TapeCatalogTest, WriterIncrementalMatchesSerialize) {
  TapeCatalog c = MakeTapeCatalog(10);
  TapeCatalogWriter w(/*checkpoint_every=*/4);
  for (const auto& e : c.entries()) w.Add(e);
  w.Finish();
  EXPECT_EQ(w.image(), c.Serialize(4));
  EXPECT_GE(w.checkpoints_written(), 2u);
}

// Any truncation point must yield either a clean Corruption status or a
// checkpointed prefix of the original entries — never garbage, never a
// crash. This is the loader's whole contract, so sweep every cut.
TEST(TapeCatalogTest, EveryTruncationPointIsPrefixOrError) {
  TapeCatalog c = MakeTapeCatalog(10);
  std::vector<uint8_t> image = c.Serialize(/*checkpoint_every=*/4);
  for (size_t cut = 0; cut < image.size(); ++cut) {
    std::vector<uint8_t> torn(image.begin(), image.begin() + cut);
    TapeCatalog::LoadStats stats;
    auto loaded = TapeCatalog::Load(torn, &stats);
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), ErrorCode::kCorruption) << cut;
      continue;
    }
    // A cut landing exactly on a checkpoint boundary is a clean (shorter)
    // prefix; anywhere else the loader must notice the tear.
    if (stats.entries_loaded < c.entries().size()) {
      EXPECT_TRUE(stats.truncated || stats.entries_dropped == 0) << cut;
    }
    ASSERT_LE(stats.entries_loaded, c.entries().size());
    for (size_t i = 0; i < stats.entries_loaded; ++i) {
      EXPECT_EQ(loaded->entries()[i], c.entries()[i]) << cut;
    }
  }
}

TEST(TapeCatalogTest, TornTailDropsOnlyPastLastCheckpoint) {
  TapeCatalog c = MakeTapeCatalog(10);
  std::vector<uint8_t> image = c.Serialize(/*checkpoint_every=*/4);
  // Chop the final seal (21-byte checkpoint frame): entries 9 and 10 were
  // staged but never sealed, so the loader keeps exactly the first 8.
  image.resize(image.size() - 21);
  TapeCatalog::LoadStats stats;
  auto loaded = TapeCatalog::Load(image, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.entries_loaded, 8u);
  EXPECT_EQ(stats.entries_dropped, 2u);
}

TEST(TapeCatalogTest, MidEntryTruncationKeepsSealedPrefix) {
  TapeCatalog c = MakeTapeCatalog(10);
  std::vector<uint8_t> image = c.Serialize(/*checkpoint_every=*/4);
  // Cut 10 bytes into the second unsealed entry frame (frame = 22 bytes):
  // header(8) + 4*22 + cp(21) + 4*22 + cp(21) puts the cut past checkpoint
  // #2 (8 entries sealed) and inside entry #10.
  image.resize(8 + 4 * 22 + 21 + 4 * 22 + 21 + 22 + 10);
  TapeCatalog::LoadStats stats;
  auto loaded = TapeCatalog::Load(image, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.entries_loaded, 8u);
  EXPECT_EQ(stats.entries_dropped, 1u) << "entry 9 parsed whole but unsealed";
}

TEST(TapeCatalogTest, BitFlipInFirstSealedRegionIsCorruption) {
  TapeCatalog c = MakeTapeCatalog(10);
  std::vector<uint8_t> image = c.Serialize(/*checkpoint_every=*/4);
  image[8 + 22 + 3] ^= 0x40;  // inside entry #2, before any checkpoint
  auto loaded = TapeCatalog::Load(image);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCorruption);
}

TEST(TapeCatalogTest, BitFlipPastFirstCheckpointTruncatesThere) {
  TapeCatalog c = MakeTapeCatalog(10);
  std::vector<uint8_t> image = c.Serialize(/*checkpoint_every=*/4);
  image[8 + 4 * 22 + 21 + 5] ^= 0x01;  // inside entry #5 (second region)
  TapeCatalog::LoadStats stats;
  auto loaded = TapeCatalog::Load(image, &stats);
  // The flip lands in an entry's payload bytes, so parsing still succeeds
  // but checkpoint #2's full-prefix CRC fails — only region one survives.
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.entries_loaded, 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(loaded->entries()[i], c.entries()[i]);
  }
}

TEST(TapeCatalogTest, BadHeaderIsCorruption) {
  TapeCatalog c = MakeTapeCatalog(4);
  std::vector<uint8_t> good = c.Serialize(4);

  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(TapeCatalog::Load(bad_magic).status().code(),
            ErrorCode::kCorruption);

  std::vector<uint8_t> bad_version = good;
  bad_version[4] ^= 0xFF;
  EXPECT_EQ(TapeCatalog::Load(bad_version).status().code(),
            ErrorCode::kCorruption);

  EXPECT_EQ(TapeCatalog::Load({}).status().code(), ErrorCode::kCorruption);
}

// ------------------------------------------- journal vs. stream (oracle) ---

VolumeGeometry CatalogTestGeometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 1;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;
  return geom;
}

// Dumps a small seeded tree and returns the dump output (stream + catalog).
LogicalDumpOutput DumpSeededTree(SimEnvironment* env,
                                 std::unique_ptr<Volume>* volume,
                                 std::unique_ptr<Filesystem>* fs) {
  *volume = Volume::Create(env, "src", CatalogTestGeometry());
  *fs = std::move(Filesystem::Format(volume->get(), env)).value();
  Filesystem* f = fs->get();
  EXPECT_TRUE(f->Mkdir("/docs", 0755).ok());
  EXPECT_TRUE(f->Mkdir("/docs/sub", 0755).ok());
  Rng rng(7);
  for (const char* path : {"/a.txt", "/docs/b.txt", "/docs/sub/c.txt"}) {
    auto inum = f->Create(path, 0644);
    EXPECT_TRUE(inum.ok());
    std::vector<uint8_t> data(3 * kBlockSize + 100);
    rng.Fill(data);
    EXPECT_TRUE(f->Write(*inum, 0, data).ok());
  }
  EXPECT_TRUE(f->CreateSnapshot("snap").ok());
  auto reader = f->SnapshotReader("snap");
  EXPECT_TRUE(reader.ok());
  LogicalDumpOptions opt;
  opt.volume_name = "src";
  opt.snapshot_name = "snap";
  auto out = RunLogicalDump(*reader, opt);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return std::move(out).value();
}

TEST(TapeCatalogTest, LoadedJournalMatchesStreamScanOracle) {
  SimEnvironment env;
  std::unique_ptr<Volume> volume;
  std::unique_ptr<Filesystem> fs;
  LogicalDumpOutput dump = DumpSeededTree(&env, &volume, &fs);

  auto loaded = TapeCatalog::Load(dump.catalog_image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto scanned = TapeCatalog::FromStream(dump.stream);
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();

  EXPECT_EQ(loaded->entries(), scanned->entries());
  EXPECT_EQ(loaded->entries(), dump.catalog.entries());
  EXPECT_FALSE(loaded->empty());
  EXPECT_GT(loaded->directory_end(), 0u);
  EXPECT_LT(loaded->directory_end(), loaded->stream_end());
  EXPECT_LE(loaded->stream_end(), dump.stream.size());
}

TEST(TapeCatalogTest, RestoreRangesCoverOneFileCheaply) {
  SimEnvironment env;
  std::unique_ptr<Volume> volume;
  std::unique_ptr<Filesystem> fs;
  LogicalDumpOutput dump = DumpSeededTree(&env, &volume, &fs);
  auto catalog = TapeCatalog::Load(dump.catalog_image);
  ASSERT_TRUE(catalog.ok());

  auto names = BuildRestoreCatalog(dump.stream);
  ASSERT_TRUE(names.ok()) << names.status().ToString();
  auto inum = names->Namei("/docs/sub/c.txt");
  ASSERT_TRUE(inum.ok());

  std::vector<Inum> wanted = {*inum};
  auto ranges = catalog->RestoreRanges(wanted);
  ASSERT_FALSE(ranges.empty());
  // The prologue comes first, then the one file's extent.
  EXPECT_EQ(ranges.front().begin, 0u);
  EXPECT_GE(ranges.front().end, catalog->directory_end());
  uint64_t total = 0, last_end = 0;
  for (const auto& r : ranges) {
    EXPECT_GE(r.begin, last_end) << "ranges must ascend, disjoint";
    last_end = r.end;
    total += r.size();
  }
  EXPECT_LT(total, dump.stream.size()) << "one file must cost < full stream";
  // Every record of the wanted inum lies inside the ranges.
  for (const auto& rec : catalog->RecordsOf(*inum)) {
    bool covered = false;
    for (const auto& r : ranges) {
      covered |= rec.offset >= r.begin && rec.offset + rec.bytes <= r.end;
    }
    EXPECT_TRUE(covered) << "record at " << rec.offset;
  }
}

}  // namespace
}  // namespace bkup

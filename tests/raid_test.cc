// Tests for RAID-4 groups and volumes: parity maintenance, degraded
// operation, reconstruction, and volume-level placement.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/raid/raid_group.h"
#include "src/raid/volume.h"
#include "src/util/random.h"

namespace bkup {
namespace {

constexpr uint64_t kDiskBlocks = 64;

struct GroupFixture {
  explicit GroupFixture(size_t ndisks) {
    for (size_t i = 0; i < ndisks; ++i) {
      disks.push_back(std::make_unique<Disk>(&env, "d" + std::to_string(i),
                                             kDiskBlocks));
    }
    std::vector<Disk*> ptrs;
    for (auto& d : disks) {
      ptrs.push_back(d.get());
    }
    group = std::make_unique<RaidGroup>("rg0", std::move(ptrs));
  }

  SimEnvironment env;
  std::vector<std::unique_ptr<Disk>> disks;
  std::unique_ptr<RaidGroup> group;
};

Block RandomBlock(Rng* rng) {
  Block b;
  rng->Fill(b.bytes());
  return b;
}

TEST(RaidGroupTest, GeometryBasics) {
  GroupFixture f(5);
  EXPECT_EQ(f.group->data_width(), 4u);
  EXPECT_EQ(f.group->data_blocks(), 4 * kDiskBlocks);
  EXPECT_EQ(f.group->parity_disk(), f.disks.back().get());
}

TEST(RaidGroupTest, PlacementRoundRobin) {
  GroupFixture f(4);
  auto p0 = f.group->Locate(0);
  auto p1 = f.group->Locate(1);
  auto p3 = f.group->Locate(3);
  EXPECT_EQ(p0.column, 0u);
  EXPECT_EQ(p0.dbn, 0u);
  EXPECT_EQ(p1.column, 1u);
  EXPECT_EQ(p3.column, 0u);
  EXPECT_EQ(p3.dbn, 1u);
}

TEST(RaidGroupTest, WriteReadRoundTrip) {
  GroupFixture f(5);
  Rng rng(1);
  std::vector<Block> golden;
  for (uint64_t i = 0; i < 40; ++i) {
    golden.push_back(RandomBlock(&rng));
    ASSERT_TRUE(f.group->WriteBlock(i, golden.back()).ok());
  }
  Block b;
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(f.group->ReadBlock(i, &b).ok());
    EXPECT_EQ(b, golden[i]) << "block " << i;
  }
}

TEST(RaidGroupTest, ParityIsXorOfDataColumns) {
  GroupFixture f(4);  // 3 data + parity
  Rng rng(2);
  Block b0 = RandomBlock(&rng), b1 = RandomBlock(&rng), b2 = RandomBlock(&rng);
  ASSERT_TRUE(f.group->WriteBlock(0, b0).ok());
  ASSERT_TRUE(f.group->WriteBlock(1, b1).ok());
  ASSERT_TRUE(f.group->WriteBlock(2, b2).ok());
  Block parity;
  ASSERT_TRUE(f.group->parity_disk()->ReadData(0, &parity).ok());
  Block expect = b0;
  expect.XorWith(b1);
  expect.XorWith(b2);
  EXPECT_EQ(parity, expect);
}

TEST(RaidGroupTest, DegradedReadReconstructs) {
  GroupFixture f(5);
  Rng rng(3);
  std::vector<Block> golden;
  for (uint64_t i = 0; i < 20; ++i) {
    golden.push_back(RandomBlock(&rng));
    ASSERT_TRUE(f.group->WriteBlock(i, golden.back()).ok());
  }
  f.disks[1]->Fail();
  Block b;
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(f.group->ReadBlock(i, &b).ok()) << "block " << i;
    EXPECT_EQ(b, golden[i]) << "block " << i;
  }
}

TEST(RaidGroupTest, DegradedWriteSurvivesReconstruction) {
  GroupFixture f(5);
  Rng rng(4);
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(f.group->WriteBlock(i, RandomBlock(&rng)).ok());
  }
  f.disks[2]->Fail();
  // Write new data to blocks living on the failed column and elsewhere.
  std::vector<Block> fresh;
  for (uint64_t i = 0; i < 20; ++i) {
    fresh.push_back(RandomBlock(&rng));
    ASSERT_TRUE(f.group->WriteBlock(i, fresh[i]).ok()) << "block " << i;
  }
  // Degraded reads already see the new data.
  Block b;
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(f.group->ReadBlock(i, &b).ok());
    EXPECT_EQ(b, fresh[i]) << "degraded read of block " << i;
  }
  // Replace the drive and reconstruct; normal reads see the new data.
  f.disks[2]->ReplaceWithBlank();
  ASSERT_TRUE(f.group->Reconstruct(2).ok());
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(f.group->ReadBlock(i, &b).ok());
    EXPECT_EQ(b, fresh[i]) << "post-reconstruction read of block " << i;
  }
}

TEST(RaidGroupTest, ParityDiskFailureAndRebuild) {
  GroupFixture f(4);
  Rng rng(5);
  std::vector<Block> golden;
  for (uint64_t i = 0; i < 12; ++i) {
    golden.push_back(RandomBlock(&rng));
    ASSERT_TRUE(f.group->WriteBlock(i, golden[i]).ok());
  }
  f.group->parity_disk()->Fail();
  // Data writes still work with parity offline.
  golden[5] = RandomBlock(&rng);
  ASSERT_TRUE(f.group->WriteBlock(5, golden[5]).ok());
  f.group->parity_disk()->ReplaceWithBlank();
  ASSERT_TRUE(f.group->Reconstruct(f.group->data_width()).ok());
  // Now fail a data disk; degraded reads must still be right, proving the
  // rebuilt parity is consistent.
  f.disks[0]->Fail();
  Block b;
  for (uint64_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(f.group->ReadBlock(i, &b).ok());
    EXPECT_EQ(b, golden[i]) << "block " << i;
  }
}

TEST(RaidGroupTest, DoubleFailureIsDataLoss) {
  GroupFixture f(5);
  Rng rng(6);
  ASSERT_TRUE(f.group->WriteBlock(0, RandomBlock(&rng)).ok());
  f.disks[0]->Fail();
  f.disks[1]->Fail();
  Block b;
  EXPECT_EQ(f.group->ReadBlock(0, &b).code(), ErrorCode::kIoError);
  EXPECT_EQ(f.group->WriteBlock(0, b).code(), ErrorCode::kIoError);
}

TEST(RaidGroupTest, ReconstructRequiresReplacedDrive) {
  GroupFixture f(3);
  f.disks[0]->Fail();
  EXPECT_EQ(f.group->Reconstruct(0).code(), ErrorCode::kFailedPrecondition);
}

// ---------------------------------------------------------------- Volume ---

TEST(VolumeTest, CreateGeometry) {
  SimEnvironment env;
  VolumeGeometry geom;
  geom.num_raid_groups = 3;
  geom.disks_per_group = 5;
  geom.blocks_per_disk = 100;
  auto vol = Volume::Create(&env, "home", geom);
  EXPECT_EQ(vol->num_disks(), 15u);
  EXPECT_EQ(vol->num_groups(), 3u);
  EXPECT_EQ(vol->num_blocks(), 3 * 4 * 100u);
  EXPECT_EQ(vol->SizeBytes(), vol->num_blocks() * kBlockSize);
}

TEST(VolumeTest, ReadWriteAcrossGroups) {
  SimEnvironment env;
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 3;
  geom.blocks_per_disk = 16;
  auto vol = Volume::Create(&env, "v", geom);
  Rng rng(7);
  std::vector<Block> golden(vol->num_blocks());
  for (Vbn i = 0; i < vol->num_blocks(); ++i) {
    golden[i] = RandomBlock(&rng);
    ASSERT_TRUE(vol->WriteBlock(i, golden[i]).ok());
  }
  Block b;
  for (Vbn i = 0; i < vol->num_blocks(); ++i) {
    ASSERT_TRUE(vol->ReadBlock(i, &b).ok());
    EXPECT_EQ(b, golden[i]) << "vbn " << i;
  }
}

TEST(VolumeTest, LocateCrossesGroupBoundary) {
  SimEnvironment env;
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 3;   // 2 data disks per group
  geom.blocks_per_disk = 16;  // 32 data blocks per group
  auto vol = Volume::Create(&env, "v", geom);
  auto p_first = vol->Locate(0);
  auto p_last_g0 = vol->Locate(31);
  auto p_first_g1 = vol->Locate(32);
  EXPECT_EQ(p_first.group_index, 0u);
  EXPECT_EQ(p_last_g0.group_index, 0u);
  EXPECT_EQ(p_first_g1.group_index, 1u);
  EXPECT_EQ(p_first_g1.dbn, 0u);
}

TEST(VolumeTest, OutOfRangeRejected) {
  SimEnvironment env;
  VolumeGeometry geom;
  geom.num_raid_groups = 1;
  geom.disks_per_group = 2;
  geom.blocks_per_disk = 8;
  auto vol = Volume::Create(&env, "v", geom);
  Block b;
  EXPECT_EQ(vol->ReadBlock(vol->num_blocks(), &b).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(vol->WriteBlock(vol->num_blocks(), b).code(),
            ErrorCode::kInvalidArgument);
}

TEST(VolumeTest, SurvivesOneFailurePerGroup) {
  SimEnvironment env;
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 32;
  auto vol = Volume::Create(&env, "v", geom);
  Rng rng(8);
  std::vector<Block> golden(vol->num_blocks());
  for (Vbn i = 0; i < vol->num_blocks(); ++i) {
    golden[i] = RandomBlock(&rng);
    ASSERT_TRUE(vol->WriteBlock(i, golden[i]).ok());
  }
  // One failure in each group simultaneously is survivable in RAID-4.
  vol->disk(0)->Fail();
  vol->disk(5)->Fail();
  Block b;
  for (Vbn i = 0; i < vol->num_blocks(); ++i) {
    ASSERT_TRUE(vol->ReadBlock(i, &b).ok()) << "vbn " << i;
    EXPECT_EQ(b, golden[i]);
  }
}

// Property sweep over group widths: write random data, fail each column in
// turn, verify reconstruction.
class RaidWidthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RaidWidthTest, EveryColumnReconstructs) {
  const size_t ndisks = GetParam();
  GroupFixture f(ndisks);
  Rng rng(ndisks);
  std::vector<Block> golden;
  for (uint64_t i = 0; i < f.group->data_blocks(); ++i) {
    golden.push_back(RandomBlock(&rng));
    ASSERT_TRUE(f.group->WriteBlock(i, golden[i]).ok());
  }
  for (size_t col = 0; col < ndisks; ++col) {
    Disk* victim = col == ndisks - 1 ? f.group->parity_disk()
                                     : f.group->data_disk(col);
    victim->Fail();
    Block b;
    for (uint64_t i = 0; i < f.group->data_blocks(); ++i) {
      ASSERT_TRUE(f.group->ReadBlock(i, &b).ok())
          << "col " << col << " block " << i;
      EXPECT_EQ(b, golden[i]);
    }
    victim->ReplaceWithBlank();
    ASSERT_TRUE(
        f.group->Reconstruct(col == ndisks - 1 ? f.group->data_width() : col)
            .ok());
    for (uint64_t i = 0; i < f.group->data_blocks(); ++i) {
      ASSERT_TRUE(f.group->ReadBlock(i, &b).ok());
      EXPECT_EQ(b, golden[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, RaidWidthTest, ::testing::Values(2, 3, 5, 9));

}  // namespace
}  // namespace bkup

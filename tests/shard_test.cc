// Tests for the sharded parallel simulator (src/sim/shard.h). The property
// that matters is byte-level determinism: for a fixed seed, every observable
// output — per-shard event logs, final clocks, events-processed counts —
// must be identical for any worker-thread count, and a 1-shard sharded run
// must match a plain single-environment run exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "src/sim/environment.h"
#include "src/sim/shard.h"
#include "src/sim/task.h"
#include "src/util/units.h"

namespace bkup {
namespace {

// ------------------------------------------------- single-shard identity ---

Task Chain(SimEnvironment* env, int hops, SimDuration step,
           std::vector<SimTime>* log) {
  for (int i = 0; i < hops; ++i) {
    co_await env->Delay(step);
    log->push_back(env->now());
  }
}

TEST(ShardTest, SingleShardMatchesPlainEnvironment) {
  auto scenario = [](SimEnvironment* env) {
    auto log = std::make_shared<std::vector<SimTime>>();
    for (int i = 0; i < 16; ++i) {
      env->Spawn(Chain(env, 8, (i + 1) * 3, log.get()));
    }
    return log;
  };

  SimEnvironment plain;
  auto plain_log = scenario(&plain);
  const SimTime plain_end = plain.Run();

  ShardedSimEnvironment sharded(1);
  auto shard_log = scenario(&sharded.shard(0).env());
  const SimTime shard_end = sharded.Run();

  EXPECT_EQ(*plain_log, *shard_log);
  EXPECT_EQ(plain_end, shard_end);
  EXPECT_EQ(plain.events_processed(),
            sharded.shard(0).env().events_processed());
}

// ------------------------------------------------ mailbox ordering rules ---

// Records (tag, simulated time) pairs; one log per shard, written only by
// the worker running that shard.
using ShardLog = std::vector<std::pair<std::string, SimTime>>;

Task NoteAt(SimEnvironment* env, std::string tag, ShardLog* log) {
  log->push_back({std::move(tag), env->now()});
  co_return;
}

Task DelayedNote(SimEnvironment* env, SimDuration d, std::string tag,
                 ShardLog* log) {
  co_await env->Delay(d);
  log->push_back({std::move(tag), env->now()});
}

TEST(ShardTest, MailboxMergesByWhenSourceSeq) {
  // Shards 1 and 2 both post to shard 0 for the same timestamp; shard 0
  // also has its own locally scheduled event at that timestamp. Contract:
  // local-first (smaller local seqs were assigned earlier), then posts
  // ordered by (when, source shard, sender sequence) — regardless of
  // which sender's window happened to run first.
  for (int threads = 1; threads <= 3; ++threads) {
    ShardedSimEnvironment sharded(3, ShardedOptions{threads});
    sharded.Connect(1, 0, 10);
    sharded.Connect(2, 0, 10);
    std::vector<ShardLog> logs(3);
    const SimTime kT = 100;

    // Shard 0's local event at T, scheduled at build time (seq assigned
    // before any cross-shard injection).
    sharded.shard(0).Spawn(DelayedNote(&sharded.shard(0).env(), kT, "local",
                                       &logs[0]));

    // Shard 2 posts two notes for time T (sender seqs 0 then 1); shard 1
    // posts one. Posts happen mid-run, from the senders' own windows.
    auto poster = [](ShardedSimEnvironment* s, int src, std::string tag,
                     int copies, SimTime when, ShardLog* dst_log) -> Task {
      co_await s->shard(src).env().Delay(5);
      for (int c = 0; c < copies; ++c) {
        s->PostTask(src, 0, when,
                    NoteAt(&s->shard(0).env(),
                           tag + "#" + std::to_string(c), dst_log));
      }
    };
    sharded.shard(2).Spawn(poster(&sharded, 2, "from2", 2, kT, &logs[0]));
    sharded.shard(1).Spawn(poster(&sharded, 1, "from1", 1, kT, &logs[0]));
    sharded.Run();

    const ShardLog want = {
        {"local", kT}, {"from1#0", kT}, {"from2#0", kT}, {"from2#1", kT}};
    EXPECT_EQ(logs[0], want) << "threads=" << threads;
  }
}

TEST(ShardTest, LookaheadAccessors) {
  ShardedSimEnvironment sharded(2);
  EXPECT_FALSE(sharded.Lookahead(0, 1).has_value());
  sharded.Connect(0, 1, 250);
  sharded.Connect(0, 1, 400);  // larger: ignored (min wins)
  sharded.Connect(0, 1, 200);  // smaller: tightens
  ASSERT_TRUE(sharded.Lookahead(0, 1).has_value());
  EXPECT_EQ(*sharded.Lookahead(0, 1), 200);
  EXPECT_FALSE(sharded.Lookahead(1, 0).has_value());  // directed
}

// --------------------------------------------- seeded cross-shard stress ---

// A seeded "visit" storm over a fully connected shard topology: every
// shard runs a driver that works locally (random delays) and launches
// random-walk visits that hop shard to shard, each hop a cross-shard post
// honoring the edge lookahead. Every action appends to the owning shard's
// log. The experiment is rebuilt from the seed for each thread count; all
// observables must match the threads=1 baseline exactly.
struct StressResult {
  std::vector<ShardLog> logs;
  std::vector<SimTime> clocks;
  std::vector<uint64_t> events;
  SimTime end = 0;
  uint64_t total_events = 0;

  bool operator==(const StressResult&) const = default;
};

Task Visit(ShardedSimEnvironment* sharded, int at, int depth, uint32_t rng,
           std::string trail, std::vector<ShardLog>* logs);

// Launches the next hop of a walk from shard `at`. Split out so both the
// driver and Visit can use it.
void LaunchHop(ShardedSimEnvironment* sharded, int at, int depth,
               uint32_t rng_state, const std::string& trail,
               std::vector<ShardLog>* logs) {
  std::minstd_rand rng(rng_state == 0 ? 1 : rng_state);
  const int n = sharded->num_shards();
  int dst = static_cast<int>(rng() % static_cast<uint32_t>(n));
  if (dst == at) {
    dst = (dst + 1) % n;
  }
  const SimDuration lookahead = *sharded->Lookahead(at, dst);
  const SimDuration jitter = static_cast<SimDuration>(rng() % 300);
  const SimTime when = sharded->shard(at).now() + lookahead + jitter;
  sharded->PostTask(at, dst, when,
                    Visit(sharded, dst, depth, static_cast<uint32_t>(rng()),
                          trail + ">" + std::to_string(dst), logs));
}

Task Visit(ShardedSimEnvironment* sharded, int at, int depth, uint32_t rng,
           std::string trail, std::vector<ShardLog>* logs) {
  SimEnvironment* env = &sharded->shard(at).env();
  (*logs)[static_cast<size_t>(at)].push_back({trail, env->now()});
  std::minstd_rand r(rng == 0 ? 1 : rng);
  co_await env->Delay(static_cast<SimDuration>(r() % 200));
  if (depth > 0) {
    LaunchHop(sharded, at, depth - 1, static_cast<uint32_t>(r()), trail,
              logs);
  }
}

Task Driver(ShardedSimEnvironment* sharded, int shard, uint32_t seed,
            std::vector<ShardLog>* logs) {
  SimEnvironment* env = &sharded->shard(shard).env();
  std::minstd_rand rng(seed == 0 ? 1 : seed);
  for (int burst = 0; burst < 6; ++burst) {
    co_await env->Delay(static_cast<SimDuration>(rng() % 400));
    (*logs)[static_cast<size_t>(shard)].push_back(
        {"work" + std::to_string(burst), env->now()});
    LaunchHop(sharded, shard, /*depth=*/3, static_cast<uint32_t>(rng()),
              "w" + std::to_string(shard) + "b" + std::to_string(burst),
              logs);
  }
}

StressResult RunStress(uint32_t seed, int num_shards, int threads) {
  ShardedSimEnvironment sharded(num_shards, ShardedOptions{threads});
  std::minstd_rand topo(seed * 2654435761u + 1);
  for (int i = 0; i < num_shards; ++i) {
    for (int j = 0; j < num_shards; ++j) {
      if (i != j) {
        sharded.Connect(i, j,
                        1 + static_cast<SimDuration>(topo() % 500));
      }
    }
  }
  StressResult result;
  result.logs.resize(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    sharded.shard(i).Spawn(Driver(&sharded, i,
                                  seed * 31u + static_cast<uint32_t>(i),
                                  &result.logs));
  }
  result.end = sharded.Run();
  for (int i = 0; i < num_shards; ++i) {
    result.clocks.push_back(sharded.shard(i).now());
    result.events.push_back(sharded.shard(i).env().events_processed());
  }
  result.total_events = sharded.total_events_processed();
  return result;
}

TEST(ShardStressTest, SixtyFourSeedsDeterministicAcrossThreadCounts) {
  const int seed_offset =
      std::getenv("BKUP_SIM_SEED_OFFSET") != nullptr
          ? std::atoi(std::getenv("BKUP_SIM_SEED_OFFSET")) * 64
          : 0;
  // seed_sweep --threads injects alternate counts; default covers the
  // interesting span (inline, fewer workers than shards, one per shard).
  std::vector<int> thread_counts = {2, 4};
  if (const char* t = std::getenv("BKUP_SIM_THREADS")) {
    thread_counts = {std::atoi(t)};
  }
  for (int s = seed_offset; s < seed_offset + 64; ++s) {
    const uint32_t seed = static_cast<uint32_t>(1000 + s);
    const StressResult baseline = RunStress(seed, /*num_shards=*/4,
                                            /*threads=*/1);
    uint64_t logged = 0;
    for (const ShardLog& log : baseline.logs) {
      logged += log.size();
    }
    ASSERT_GT(logged, 24u) << "seed " << seed << " generated no traffic";
    for (const int threads : thread_counts) {
      if (threads == 1) {
        continue;
      }
      const StressResult got = RunStress(seed, 4, threads);
      ASSERT_EQ(got, baseline)
          << "seed " << seed << " threads=" << threads
          << ": parallel run diverged from single-thread baseline";
    }
  }
}

TEST(ShardStressTest, RoundsAndEventCountsAreStable) {
  // Same seed, same scenario, twice: every counter matches (no hidden
  // wall-clock or address-order dependence in the coordinator).
  const StressResult a = RunStress(77, 4, 2);
  const StressResult b = RunStress(77, 4, 2);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.total_events, 0u);
}

}  // namespace
}  // namespace bkup

// FlightRecorder unit tests: the bounded fault ring, state providers,
// counter-delta accounting against the baseline, the snapshot JSON schema
// (including the trace-ring tail), and sequenced deterministic dump files.
// One test writes `flightrec_selftest_0.json` into the test working
// directory so ctest can run `tools/check_trace.py flightrec` over a real
// artifact (see tests/CMakeLists.txt).
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/environment.h"
#include "src/util/units.h"

namespace bkup {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

const JsonValue* FindCounterDelta(const JsonValue& deltas,
                                  const std::string& name) {
  for (const JsonValue& e : deltas.array()) {
    if (e["name"].string_value() == name) {
      return &e;
    }
  }
  return nullptr;
}

TEST(FlightRecorderTest, AttachesToEnvironmentAndDetachesOnDestruction) {
  SimEnvironment env;
  MetricsRegistry metrics;
  {
    FlightRecorder recorder(&env, ".", &metrics);
    EXPECT_EQ(env.flight_recorder(), &recorder);
  }
  EXPECT_EQ(env.flight_recorder(), nullptr);
}

TEST(FlightRecorderTest, FaultRingDropsOldestAndCountsDrops) {
  SimEnvironment env;
  MetricsRegistry metrics;
  FlightRecorder recorder(&env, ".", &metrics, /*fault_capacity=*/4);

  for (int i = 0; i < 6; ++i) {
    env.RunUntil(i * kSecond);
    recorder.RecordFault("disk", "d" + std::to_string(i), "transient");
  }
  EXPECT_EQ(recorder.fault_event_count(), 4u);
  EXPECT_EQ(recorder.faults_dropped(), 2u);
  // Oldest two fell off the front; the survivors keep arrival order.
  EXPECT_EQ(recorder.fault_events().front().target, "d2");
  EXPECT_EQ(recorder.fault_events().back().target, "d5");
  EXPECT_EQ(recorder.fault_events().back().ts, 5 * kSecond);
}

TEST(FlightRecorderTest, StateProvidersReplaceByNameAndRemove) {
  SimEnvironment env;
  MetricsRegistry metrics;
  FlightRecorder recorder(&env, ".", &metrics);

  recorder.AddStateProvider("job", [](JsonWriter* w) { w->Int(1); });
  recorder.AddStateProvider("job", [](JsonWriter* w) { w->Int(2); });
  recorder.AddStateProvider(
      "queue", [](JsonWriter* w) { w->BeginObject().EndObject(); });

  auto parsed = ParseJson(recorder.SnapshotJson("test"));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ((*parsed)["state"]["job"].int_value(), 2);  // replaced, not dup
  EXPECT_TRUE((*parsed)["state"]["queue"].is_object());

  recorder.RemoveStateProvider("job");
  auto again = ParseJson(recorder.SnapshotJson("test"));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE((*again)["state"]["job"].is_null());
  EXPECT_TRUE((*again)["state"]["queue"].is_object());
}

TEST(FlightRecorderTest, CounterDeltasReportOnlyWhatMoved) {
  SimEnvironment env;
  MetricsRegistry metrics;
  metrics.GetCounter("pre.existing")->Increment(5);

  FlightRecorder recorder(&env, ".", &metrics);  // baseline captured here
  metrics.GetCounter("moved")->Increment(3);
  metrics.GetCounter("fresh")->Increment(2);

  auto parsed = ParseJson(recorder.SnapshotJson("test"));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& deltas = (*parsed)["metrics"]["counter_deltas"];
  ASSERT_TRUE(deltas.is_array());
  EXPECT_EQ(FindCounterDelta(deltas, "pre.existing"), nullptr);  // unchanged
  const JsonValue* moved = FindCounterDelta(deltas, "moved");
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ((*moved)["delta"].int_value(), 3);
  EXPECT_EQ((*moved)["value"].int_value(), 3);
  const JsonValue* fresh = FindCounterDelta(deltas, "fresh");
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ((*fresh)["delta"].int_value(), 2);

  // Re-baselining forgets everything that moved so far.
  recorder.MarkMetricsBaseline();
  auto rebased = ParseJson(recorder.SnapshotJson("test"));
  ASSERT_TRUE(rebased.ok());
  EXPECT_EQ((*rebased)["metrics"]["counter_deltas"].array().size(), 0u);
}

TEST(FlightRecorderTest, SnapshotCarriesTraceTailWithCausalContext) {
  SimEnvironment env;
  MetricsRegistry metrics;
  FlightRecorder recorder(&env, ".", &metrics);
  Tracer tracer(&env);

  const uint32_t track = tracer.Track("cpu");
  const TraceContext ctx = tracer.StartTrace();
  env.RunUntil(1 * kSecond);
  tracer.Begin(track, "restore", ctx);
  env.RunUntil(2 * kSecond);
  tracer.End(track);
  recorder.RecordFault("crash", "restore", "kill at offset 123");

  auto parsed = ParseJson(recorder.SnapshotJson("chaos_kill"));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = *parsed;
  EXPECT_EQ(doc["reason"].string_value(), "chaos_kill");
  EXPECT_EQ(doc["seq"].int_value(), 0);
  EXPECT_DOUBLE_EQ(doc["sim_time_s"].number(), 2.0);
  ASSERT_EQ(doc["faults"]["events"].array().size(), 1u);
  EXPECT_EQ(doc["faults"]["events"].array()[0]["kind"].string_value(),
            "crash");

  ASSERT_TRUE(doc["trace"]["attached"].bool_value());
  const JsonValue& tail = doc["trace"]["tail"];
  ASSERT_TRUE(tail.is_array());
  ASSERT_GE(tail.array().size(), 2u);
  bool saw_context = false;
  for (const JsonValue& e : tail.array()) {
    EXPECT_FALSE(e["ph"].string_value().empty());
    EXPECT_FALSE(e["track"].string_value().empty());
    if (e["name"].string_value() == "restore" &&
        e["ph"].string_value() == "B") {
      EXPECT_EQ(e["trace"].int_value(),
                static_cast<int64_t>(ctx.trace_id));
      EXPECT_EQ(e["incarnation"].int_value(), 0);
      saw_context = true;
    }
  }
  EXPECT_TRUE(saw_context);
}

TEST(FlightRecorderTest, SnapshotWithoutTracerSaysDetached) {
  SimEnvironment env;
  MetricsRegistry metrics;
  FlightRecorder recorder(&env, ".", &metrics);
  auto parsed = ParseJson(recorder.SnapshotJson("test"));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE((*parsed)["trace"]["attached"].bool_value());
  EXPECT_EQ((*parsed)["trace"]["tail"].array().size(), 0u);
}

TEST(FlightRecorderTest, DumpsAreSequencedDeterministicFiles) {
  SimEnvironment env;
  MetricsRegistry metrics;
  const std::string dir = ::testing::TempDir() + "flightrec_test";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  FlightRecorder recorder(&env, dir, &metrics);

  ASSERT_TRUE(recorder.Dump("breach").ok());
  EXPECT_EQ(recorder.dumps_written(), 1u);
  EXPECT_EQ(recorder.last_path(), dir + "/flightrec_breach_0.json");
  recorder.RecordFault("link", "wan", "frame dropped");
  ASSERT_TRUE(recorder.Dump("breach").ok());
  EXPECT_EQ(recorder.dumps_written(), 2u);
  EXPECT_EQ(recorder.last_path(), dir + "/flightrec_breach_1.json");

  auto first = ParseJson(Slurp(dir + "/flightrec_breach_0.json"));
  auto second = ParseJson(Slurp(dir + "/flightrec_breach_1.json"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*first)["seq"].int_value(), 0);
  EXPECT_EQ((*second)["seq"].int_value(), 1);
  EXPECT_EQ((*first)["faults"]["events"].array().size(), 0u);
  EXPECT_EQ((*second)["faults"]["events"].array().size(), 1u);
}

TEST(FlightRecorderTest, DumpToUnwritableDirectoryFailsCleanly) {
  SimEnvironment env;
  MetricsRegistry metrics;
  FlightRecorder recorder(&env, "/nonexistent/nowhere", &metrics);
  const Status status = recorder.Dump("test");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(recorder.dumps_written(), 0u);
  EXPECT_TRUE(recorder.last_path().empty());
}

// Produces the artifact `tools/check_trace.py flightrec` validates from
// ctest (gtest binaries run with WORKING_DIRECTORY = the test build dir,
// which is where the fixture looks for flightrec_selftest_0.json).
TEST(FlightRecorderTest, WritesValidatorFixtureArtifact) {
  SimEnvironment env;
  MetricsRegistry metrics;
  FlightRecorder recorder(&env, ".", &metrics);
  Tracer tracer(&env);

  const uint32_t track = tracer.Track("cpu");
  const TraceContext ctx = tracer.StartTrace();
  env.RunUntil(500 * kMillisecond);
  tracer.Begin(track, "backup", ctx);
  metrics.GetCounter("bytes.moved")->Increment(4096);
  env.RunUntil(1 * kSecond);
  recorder.RecordFault("disk", "d0", "transient error");
  env.RunUntil(2 * kSecond);
  recorder.RecordFault("crash", "backup", "kill at offset 4096");
  tracer.End(track);
  recorder.AddStateProvider("job", [](JsonWriter* w) {
    w->BeginObject()
        .Field("name", "backup")
        .Field("attempts", int64_t{1})
        .EndObject();
  });

  ASSERT_TRUE(recorder.Dump("selftest").ok());
  EXPECT_EQ(recorder.last_path(), "./flightrec_selftest_0.json");
}

}  // namespace
}  // namespace bkup

// Robustness scenarios from the paper: verify-after-write of tapes,
// dumping from a degraded RAID volume, restarting an interrupted restore,
// media defects while spanning multiple tapes, and a dump-record fuzzing
// sweep.
#include <gtest/gtest.h>

#include <memory>

#include "src/backup/supervisor.h"
#include "src/dump/logical_dump.h"
#include "src/dump/logical_restore.h"
#include "src/dump/verify.h"
#include "src/faults/crash.h"
#include "src/faults/fault_injector.h"
#include "src/fs/filesystem.h"
#include "src/image/image_dump.h"
#include "src/util/random.h"
#include "src/workload/population.h"

namespace bkup {
namespace {

VolumeGeometry Geometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 2;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;
  return geom;
}

struct RobustFixture {
  RobustFixture() {
    volume = Volume::Create(&env, "home", Geometry());
    fs = std::move(Filesystem::Format(volume.get(), &env)).value();
    WorkloadParams params;
    params.target_bytes = 6 * kMiB;
    EXPECT_TRUE(PopulateFilesystem(fs.get(), params).ok());
  }

  LogicalDumpOutput Dump(int level = 0, int64_t base_time = 0) {
    EXPECT_TRUE(fs->CreateSnapshot("snap").ok());
    auto reader = fs->SnapshotReader("snap").value();
    LogicalDumpOptions opt;
    opt.volume_name = "home";
    opt.level = level;
    opt.base_time = base_time;
    opt.dump_time = env.now();
    auto out = RunLogicalDump(reader, opt);
    EXPECT_TRUE(out.ok());
    EXPECT_TRUE(fs->DeleteSnapshot("snap").ok());
    return std::move(out).value();
  }

  void AdvanceTime(SimDuration d) {
    env.Spawn([](SimEnvironment* e, SimDuration dur) -> Task {
      co_await e->Delay(dur);
    }(&env, d));
    env.Run();
  }

  SimEnvironment env;
  std::unique_ptr<Volume> volume;
  std::unique_ptr<Filesystem> fs;
};

// ------------------------------------------------------------- verify ---

TEST(VerifyTest, CleanTapeIsReadable) {
  RobustFixture f;
  LogicalDumpOutput dump = f.Dump();
  auto report = VerifyDumpStream(dump.stream);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->readable) << report->Summary();
  EXPECT_EQ(report->files + report->directories, report->inodes_seen);
  EXPECT_EQ(report->inodes_seen, report->inodes_expected);
  EXPECT_EQ(report->corrupt_records, 0u);
  EXPECT_EQ(report->out_of_order_records, 0u);
  EXPECT_EQ(report->data_blocks, dump.stats.data_blocks);
}

TEST(VerifyTest, DetectsHeaderCorruption) {
  RobustFixture f;
  LogicalDumpOutput dump = f.Dump();
  std::vector<uint8_t> bad = dump.stream;
  bad[bad.size() / 2] ^= 0xFF;
  auto report = VerifyDumpStream(bad);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->readable) << report->Summary();
}

TEST(VerifyTest, DetectsSilentDataCorruption) {
  RobustFixture f;
  LogicalDumpOutput dump = f.Dump();
  std::vector<uint8_t> bad = dump.stream;
  // Flip one bit far from any 1 KB header boundary: header CRCs all stay
  // valid, only a data CRC can catch it.
  for (size_t pos = bad.size() / 2; pos < bad.size(); ++pos) {
    if (pos % kDumpRecordSize == 512) {
      bad[pos] ^= 0x01;
      break;
    }
  }
  auto report = VerifyDumpStream(bad);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->readable);
  EXPECT_GT(report->data_crc_errors, 0u);
}

TEST(VerifyTest, DetectsTruncation) {
  RobustFixture f;
  LogicalDumpOutput dump = f.Dump();
  const std::span<const uint8_t> half(dump.stream.data(),
                                      dump.stream.size() / 2);
  auto report = VerifyDumpStream(half);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->readable) << "no end marker must fail verification";
}

// -------------------------------------------------- degraded-mode dumps ---

TEST(DegradedTest, BackupsRunFromDegradedRaid) {
  RobustFixture f;
  auto sums = ChecksumTree(f.fs->LiveReader()).value();
  // Lose one drive in each RAID group; reads reconstruct from parity.
  f.volume->disk(0)->Fail();
  f.volume->disk(5)->Fail();

  // Logical dump still produces a fully verifiable tape.
  LogicalDumpOutput logical = f.Dump();
  auto verify = VerifyDumpStream(logical.stream);
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(verify->readable) << verify->Summary();

  // Image dump still produces a restorable image.
  ASSERT_TRUE(f.fs->CreateSnapshot("xfer").ok());
  auto image = RunImageDump(f.volume.get(), ImageDumpOptions{});
  ASSERT_TRUE(image.ok()) << image.status().ToString();

  // Both restore correctly on healthy hardware.
  SimEnvironment env2;
  auto lvol = Volume::Create(&env2, "l", Geometry());
  auto lfs = std::move(Filesystem::Format(lvol.get(), &env2)).value();
  ASSERT_TRUE(
      RunLogicalRestore(lfs.get(), logical.stream, LogicalRestoreOptions{})
          .ok());
  EXPECT_EQ(ChecksumTree(lfs->LiveReader()).value(), sums);

  auto pvol = Volume::Create(&env2, "p", Geometry());
  ASSERT_TRUE(RunImageRestore(pvol.get(), image->stream).ok());
  auto mounted = Filesystem::Mount(pvol.get(), &env2);
  ASSERT_TRUE(mounted.ok());
  EXPECT_EQ(ChecksumTree((*mounted)->LiveReader()).value(), sums);
}

// ------------------------------------------------- interrupted restores ---

TEST(RestartTest, InterruptedRestoreConvergesOnRerun) {
  // Footnote 2's premise: "it is simple to restart a restore which is
  // interrupted by a crash." A partial restore followed by a full re-run
  // of the same tape must converge to the correct tree.
  RobustFixture f;
  auto sums = ChecksumTree(f.fs->LiveReader()).value();
  LogicalDumpOutput dump = f.Dump();

  SimEnvironment env2;
  auto volume = Volume::Create(&env2, "r", Geometry());
  auto fs = std::move(Filesystem::Format(volume.get(), &env2)).value();

  // "Crash" partway: feed only 60% of the stream (salvage path), then the
  // filer reboots from its last consistency point.
  const std::span<const uint8_t> partial(dump.stream.data(),
                                         dump.stream.size() * 6 / 10);
  ASSERT_TRUE(
      RunLogicalRestore(fs.get(), partial, LogicalRestoreOptions{}).ok());
  fs.reset();
  auto rebooted = Filesystem::Mount(volume.get(), &env2);
  ASSERT_TRUE(rebooted.ok());

  // Operator reruns the whole restore.
  ASSERT_TRUE(RunLogicalRestore(rebooted->get(), dump.stream,
                                LogicalRestoreOptions{})
                  .ok());
  EXPECT_EQ(ChecksumTree((*rebooted)->LiveReader()).value(), sums);
}

TEST(RestartTest, SupervisedRestoreResumesAfterFilerRestart) {
  // A filer restart mid-restore: the partially restored tree survives on
  // disk via the last consistency point, and a supervised re-run of the
  // same media converges on the correct tree.
  RobustFixture f;
  auto sums = ChecksumTree(f.fs->LiveReader()).value();
  Filer filer(&f.env, FilerModel::F630());

  Tape t0("night.0", 32 * kMiB);
  TapeDrive drive(&f.env, "dlt0");
  drive.LoadMedia(&t0);
  SupervisionPolicy policy;
  LogicalBackupJobResult backup;
  CountdownLatch done(&f.env, 1);
  f.env.Spawn(SupervisedLogicalBackupJob(&filer, f.fs.get(), &drive,
                                         LogicalDumpOptions{}, &policy,
                                         &backup, &done));
  f.env.Run();
  ASSERT_TRUE(backup.report.status.ok());
  EXPECT_FALSE(backup.report.faults.any())
      << "a fault-free run must report all-zero fault counters";

  // "Crash" partway through the restore: only 60% of the stream lands
  // before the filer reboots from its last consistency point.
  auto volume = Volume::Create(&f.env, "r", Geometry());
  auto fs = std::move(Filesystem::Format(volume.get(), &f.env)).value();
  const std::span<const uint8_t> partial(t0.contents().data(),
                                         t0.size() * 6 / 10);
  ASSERT_TRUE(
      RunLogicalRestore(fs.get(), partial, LogicalRestoreOptions{}).ok());
  fs.reset();
  auto rebooted = Filesystem::Mount(volume.get(), &f.env);
  ASSERT_TRUE(rebooted.ok());

  // The operator reruns the restore, supervised, from the same media.
  TapeDrive rdrive(&f.env, "dlt1");
  rdrive.LoadMedia(&t0);
  LogicalRestoreJobResult restore;
  CountdownLatch rdone(&f.env, 1);
  f.env.Spawn(SupervisedLogicalRestoreJob(&filer, rebooted->get(), &rdrive,
                                          LogicalRestoreOptions{}, false,
                                          &policy, &restore, &rdone));
  f.env.Run();
  ASSERT_TRUE(restore.report.status.ok())
      << restore.report.status.ToString();
  EXPECT_EQ(ChecksumTree((*rebooted)->LiveReader()).value(), sums);
}

TEST(RestartTest, KilledIncrementalRestoreResumesWithoutReapplying) {
  // A restore of a level-1 incremental is killed mid-file-section, the
  // target reboots from its last consistency point, and the resumed run
  // must (a) skip every file the killed run already applied and (b) still
  // converge on the source tree — deletions included.
  RobustFixture f;
  ASSERT_TRUE(f.fs->Mkdir("/inc", 0755).ok());
  Rng rng(17);
  std::vector<uint8_t> doomed(2 * kBlockSize);
  rng.Fill(doomed);
  auto doomed_inum = f.fs->Create("/inc/doomed.dat", 0644);
  ASSERT_TRUE(doomed_inum.ok());
  ASSERT_TRUE(f.fs->Write(*doomed_inum, 0, doomed).ok());

  f.AdvanceTime(5 * kSecond);
  LogicalDumpOutput level0 = f.Dump(0);
  const int64_t level0_time = f.env.now();

  // Restore level 0 to a fresh target, carrying a symtable.
  auto volume = Volume::Create(&f.env, "r", Geometry());
  auto target = std::move(Filesystem::Format(volume.get(), &f.env)).value();
  RestoreSymtable symtable;
  {
    LogicalRestoreOptions opt;
    opt.symtable = &symtable;
    ASSERT_TRUE(RunLogicalRestore(target.get(), level0.stream, opt).ok());
  }

  // Mutate the source: one deletion plus a batch of new files, so the
  // incremental has a file section worth killing in the middle of.
  f.AdvanceTime(10 * kSecond);
  ASSERT_TRUE(f.fs->Unlink("/inc/doomed.dat").ok());
  for (int i = 0; i < 10; ++i) {
    const std::string path = "/inc/f" + std::to_string(i) + ".dat";
    auto inum = f.fs->Create(path, 0644);
    ASSERT_TRUE(inum.ok());
    std::vector<uint8_t> data(3 * kBlockSize);
    rng.Fill(data);
    ASSERT_TRUE(f.fs->Write(*inum, 0, data).ok());
  }
  f.AdvanceTime(5 * kSecond);
  LogicalDumpOutput level1 = f.Dump(1, level0_time);
  auto source_sums = ChecksumTree(f.fs->LiveReader()).value();
  auto catalog = TapeCatalog::Load(level1.catalog_image);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();

  // Kill the incremental restore halfway through its file section.
  CrashPlan plan;
  plan.seed = 23;
  plan.KillAtOffset((catalog->directory_end() + catalog->stream_end()) / 2);
  CrashInjector injector(plan);

  LogicalRestoreOptions opt;
  opt.symtable = &symtable;
  opt.apply_moves_and_deletes = true;
  opt.catalog = &*catalog;
  opt.checkpoint_every = 2;
  opt.kill = &injector;
  auto killed = RunLogicalRestore(target.get(), level1.stream, opt);
  ASSERT_TRUE(killed.ok()) << killed.status().ToString();
  ASSERT_TRUE(killed->interrupted);
  EXPECT_GT(killed->stats.files_restored, 0u) << "kill must land mid-files";
  EXPECT_GT(killed->stats.checkpoints, 0u);

  // Crash-reboot: drop the in-memory file system, remount the last CP.
  target.reset();
  auto rebooted = Filesystem::Mount(volume.get(), &f.env);
  ASSERT_TRUE(rebooted.ok());

  // Resume. The catalog diff must keep the killed run's durable files.
  opt.resume = true;
  auto resumed = RunLogicalRestore(rebooted->get(), level1.stream, opt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->interrupted);
  EXPECT_GT(resumed->stats.files_already_complete, 0u)
      << "already-applied entries must not be re-restored";
  EXPECT_GT(resumed->stats.entries_skipped, 0u);
  EXPECT_GT(resumed->stats.bytes_skipped, 0u);
  EXPECT_LT(resumed->stats.bytes_replayed, level1.stream.size())
      << "the resumed run must replay strictly less than the whole stream";
  // Nothing the killed run made durable is re-applied: the incremental has
  // exactly 10 files, and the resume run recreates only those lost past the
  // last consistency point.
  EXPECT_EQ(
      resumed->stats.files_restored + resumed->stats.files_already_complete,
      10u);
  EXPECT_LT(resumed->stats.files_restored, 10u)
      << "resume restored every file again";

  EXPECT_FALSE((*rebooted)->LookupPath("/inc/doomed.dat").ok())
      << "deletion must propagate through the resumed incremental";
  auto got_sums = ChecksumTree((*rebooted)->LiveReader()).value();
  for (const auto& [path, crc] : source_sums) {
    auto it = got_sums.find(path);
    if (it == got_sums.end()) {
      ADD_FAILURE() << "missing after resume: " << path;
    } else if (it->second != crc) {
      ADD_FAILURE() << "content differs after resume: " << path;
    }
  }
  for (const auto& [path, crc] : got_sums) {
    if (source_sums.count(path) == 0) {
      ADD_FAILURE() << "extra after resume: " << path;
    }
  }
}

// ------------------------------------------------- spanning with faults ---

TEST(SpanningFaultTest, DefectOnSecondTapeRemountsAndRestores) {
  // A multi-volume dump hits a media defect on its *second* tape: only that
  // media is abandoned — the first tape's checkpoint survives — and the
  // restorable set splices tape 1 with the rewritten spare.
  RobustFixture f;
  auto sums = ChecksumTree(f.fs->LiveReader()).value();
  Filer filer(&f.env, FilerModel::F630());

  // ~6.6 MiB of stream over 4 MiB tapes: spans onto a second volume.
  Tape t0("span.0", 4 * kMiB), t1("span.1", 4 * kMiB),
      t2("span.2", 4 * kMiB), t3("span.3", 4 * kMiB);
  TapeDrive drive(&f.env, "dlt0");
  drive.LoadMedia(&t0);

  FaultPlan plan;
  plan.seed = 9;
  // Offsets are tape-local: byte 1 MiB into span.1, not into the stream.
  plan.TapeMediaDefect("span.1", 1 * kMiB, 64 * kKiB);
  FaultInjector injector(&f.env, plan);
  injector.Arm(&drive);

  SupervisionPolicy policy;
  LogicalBackupJobResult backup;
  CountdownLatch done(&f.env, 1);
  f.env.Spawn(SupervisedLogicalBackupJob(&filer, f.fs.get(), &drive,
                                         LogicalDumpOptions{}, &policy,
                                         &backup, &done, {&t1, &t2, &t3}));
  f.env.Run();
  ASSERT_TRUE(backup.report.status.ok())
      << backup.report.status.ToString();
  EXPECT_EQ(backup.report.faults.tape_remounts, 1u);
  EXPECT_GT(backup.report.faults.bytes_rewritten, 0u);
  ASSERT_EQ(backup.report.tapes_used.size(), 3u)
      << "span.0, the abandoned span.1, and the spare";
  ASSERT_EQ(backup.report.final_media.size(), 2u);
  EXPECT_EQ(backup.report.final_media[0], "span.0");
  EXPECT_EQ(backup.report.final_media[1], "span.2");

  // Restore reads the final media set, in order.
  auto rvolume = Volume::Create(&f.env, "r", Geometry());
  auto rfs = std::move(Filesystem::Format(rvolume.get(), &f.env)).value();
  TapeDrive rdrive(&f.env, "dlt1");
  rdrive.LoadMedia(&t0);
  LogicalRestoreJobResult restore;
  CountdownLatch rdone(&f.env, 1);
  f.env.Spawn(SupervisedLogicalRestoreJob(&filer, rfs.get(), &rdrive,
                                          LogicalRestoreOptions{}, false,
                                          &policy, &restore, &rdone, {&t2}));
  f.env.Run();
  ASSERT_TRUE(restore.report.status.ok())
      << restore.report.status.ToString();
  EXPECT_EQ(ChecksumTree(rfs->LiveReader()).value(), sums);
}

// ------------------------------------------------------------- fuzzing ---

class RecordFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecordFuzzTest, ParseNeverCrashesOnGarbage) {
  Rng rng(GetParam());
  std::vector<uint8_t> garbage(kDumpRecordSize);
  for (int i = 0; i < 500; ++i) {
    rng.Fill(garbage);
    // Random bytes virtually never checksum correctly; Parse must reject
    // them gracefully (and certainly never crash or read out of bounds).
    auto rec = DumpRecord::Parse(garbage);
    EXPECT_FALSE(rec.ok());
  }
}

TEST_P(RecordFuzzTest, BitflippedRealRecordsParseOrRejectCleanly) {
  Rng rng(GetParam() + 1000);
  DumpRecord rec;
  rec.type = DumpRecordType::kInode;
  rec.inum = 77;
  rec.attrs = {InodeType::kFile, 0644, 1, 0, 0, 4096, 1, 2, 3, 4};
  rec.total_blocks = 1;
  rec.map_count = 1;
  rec.present_count = 1;
  rec.block_map = {1};
  const auto clean = rec.Serialize().value();
  for (int i = 0; i < 500; ++i) {
    std::vector<uint8_t> mutated = clean;
    const size_t byte = rng.Below(mutated.size());
    mutated[byte] ^= static_cast<uint8_t>(1u << rng.Below(8));
    auto parsed = DumpRecord::Parse(mutated);
    // A single bit flip must be caught by the header CRC.
    EXPECT_FALSE(parsed.ok()) << "flip at byte " << byte;
  }
}

TEST_P(RecordFuzzTest, RestoreSurvivesRandomStreamMutations) {
  RobustFixture f;
  LogicalDumpOutput dump = f.Dump();
  Rng rng(GetParam() + 2000);
  std::vector<uint8_t> mutated = dump.stream;
  for (int i = 0; i < 20; ++i) {
    mutated[rng.Below(mutated.size())] ^= 0x40;
  }
  SimEnvironment env2;
  auto volume = Volume::Create(&env2, "r", Geometry());
  auto fs = std::move(Filesystem::Format(volume.get(), &env2)).value();
  // Must not crash and must not return a hard error — damaged files are
  // skipped, everything else restores.
  auto restored =
      RunLogicalRestore(fs.get(), mutated, LogicalRestoreOptions{});
  EXPECT_TRUE(restored.ok()) << restored.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordFuzzTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace bkup

// §5.1 concurrency claim — "concurrent backups of the home and rlse volumes
// did not interfere with each other at all; each executed in exactly the
// same amount of time as they had when executing in isolation."
//
// Two volumes on one filer (home: 3 RAID groups; rlse: 2, as on eliot),
// each dumped to its own DLT drive, first in isolation and then together.
#include <cstdio>

#include "bench/common.h"

namespace bkup {
namespace {

struct VolumeSetup {
  std::unique_ptr<Volume> volume;
  std::unique_ptr<Filesystem> fs;
};

VolumeSetup MakeVolume(SimEnvironment* env, const std::string& name,
                       size_t groups, uint64_t data_bytes, uint64_t seed) {
  VolumeGeometry geom;
  geom.num_raid_groups = groups;
  geom.disks_per_group = 10;
  geom.blocks_per_disk = 2048;
  VolumeSetup s;
  s.volume = Volume::Create(env, name, geom);
  s.fs = std::move(Filesystem::Format(s.volume.get(), env)).value();
  WorkloadParams params;
  params.seed = seed;
  params.target_bytes = data_bytes;
  bench::CheckStatus(PopulateFilesystem(s.fs.get(), params).status(),
                     "populate");
  return s;
}

SimDuration DumpOnce(SimEnvironment* env, Filer* filer, Filesystem* fs,
                     TapeDrive* drive, const char* what) {
  LogicalBackupJobResult result;
  CountdownLatch done(env, 1);
  env->Spawn(
      LogicalBackupJob(filer, fs, drive, LogicalDumpOptions{}, &result,
                       &done));
  env->Run();
  bench::CheckStatus(result.report.status, what);
  return result.report.StreamElapsed();
}

int Run() {
  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  // home: 188 GB on 31 disks; rlse: 129 GB on 22 disks — scaled ~1000x.
  VolumeSetup home = MakeVolume(&env, "home", 3, 96 * kMiB, 7);
  VolumeSetup rlse = MakeVolume(&env, "rlse", 2, 64 * kMiB, 8);
  Tape t0("t0", 8ull * kGiB), t1("t1", 8ull * kGiB);
  TapeDrive d0(&env, "dlt0"), d1(&env, "dlt1");
  d0.LoadMedia(&t0);
  d1.LoadMedia(&t1);

  // Isolated runs.
  const SimDuration home_alone =
      DumpOnce(&env, &filer, home.fs.get(), &d0, "home isolated");
  const SimDuration rlse_alone =
      DumpOnce(&env, &filer, rlse.fs.get(), &d1, "rlse isolated");

  // Concurrent runs.
  t0.Erase();
  t1.Erase();
  d0.LoadMedia(&t0);
  d1.LoadMedia(&t1);
  LogicalBackupJobResult rhome, rrlse;
  CountdownLatch done(&env, 2);
  env.Spawn(LogicalBackupJob(&filer, home.fs.get(), &d0,
                             LogicalDumpOptions{}, &rhome, &done));
  env.Spawn(LogicalBackupJob(&filer, rlse.fs.get(), &d1,
                             LogicalDumpOptions{}, &rrlse, &done));
  env.Run();
  bench::CheckStatus(rhome.report.status, "home concurrent");
  bench::CheckStatus(rrlse.report.status, "rlse concurrent");

  bench::PrintBanner(
      "Concurrent volume backups (home + rlse)",
      "OSDI'99 paper, Section 5.1: concurrent dumps do not interfere");
  std::printf("%-10s %18s %18s %10s\n", "volume", "isolated", "concurrent",
              "slowdown");
  const double home_slow =
      static_cast<double>(rhome.report.StreamElapsed()) /
      static_cast<double>(home_alone);
  const double rlse_slow =
      static_cast<double>(rrlse.report.StreamElapsed()) /
      static_cast<double>(rlse_alone);
  std::printf("%-10s %18s %18s %9.2fx\n", "home",
              FormatDuration(home_alone).c_str(),
              FormatDuration(rhome.report.StreamElapsed()).c_str(),
              home_slow);
  std::printf("%-10s %18s %18s %9.2fx\n", "rlse",
              FormatDuration(rlse_alone).c_str(),
              FormatDuration(rrlse.report.StreamElapsed()).c_str(),
              rlse_slow);
  const bool ok = home_slow < 1.15 && rlse_slow < 1.15;
  std::printf("RESULT: %s\n",
              ok ? "no interference, matching the paper"
                 : "SHAPE MISMATCH (interference detected)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main() { return bkup::Run(); }

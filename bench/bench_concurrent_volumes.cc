// §5.1 concurrency claim — "concurrent backups of the home and rlse volumes
// did not interfere with each other at all; each executed in exactly the
// same amount of time as they had when executing in isolation."
//
// Two volumes on one filer (home: 3 RAID groups; rlse: 2, as on eliot),
// each dumped to its own DLT drive. All three nights — each volume in
// isolation, then both together — run through the NightlyScheduler, so the
// bench exercises the same dispatch path as production fleets instead of
// hand-interleaving jobs, and the interference comparison cannot drift from
// the scheduler's real behavior.
#include <cstdio>

#include "bench/common.h"
#include "src/backup/scheduler.h"

namespace bkup {
namespace {

struct VolumeSetup {
  std::unique_ptr<Volume> volume;
  std::unique_ptr<Filesystem> fs;
};

VolumeSetup MakeVolume(SimEnvironment* env, const std::string& name,
                       size_t groups, uint64_t data_bytes, uint64_t seed) {
  VolumeGeometry geom;
  geom.num_raid_groups = groups;
  geom.disks_per_group = 10;
  geom.blocks_per_disk = 2048;
  VolumeSetup s;
  s.volume = Volume::Create(env, name, geom);
  s.fs = std::move(Filesystem::Format(s.volume.get(), env)).value();
  WorkloadParams params;
  params.seed = seed;
  params.target_bytes = data_bytes;
  bench::CheckStatus(PopulateFilesystem(s.fs.get(), params).status(),
                     "populate");
  return s;
}

VolumeSpec LogicalSpec(const std::string& name, Filesystem* fs,
                       uint64_t bytes) {
  VolumeSpec spec;
  spec.name = name;
  spec.fs = fs;
  spec.mode = BackupMode::kLogicalFull;
  spec.estimated_bytes = bytes;
  return spec;
}

// One scheduled night over `specs` with `drives`; returns per-volume
// stream-elapsed times keyed by spec order.
std::vector<SimDuration> RunNight(SimEnvironment* env, Filer* filer,
                                  TapeLibrary* library,
                                  const SupervisionPolicy* policy,
                                  std::vector<TapeDrive*> drives,
                                  std::vector<VolumeSpec> specs,
                                  const char* what) {
  FleetConfig config;
  config.drives = std::move(drives);
  config.library = library;
  config.supervision = policy;
  NightlyScheduler scheduler(filer, config, specs);
  NightReport report;
  CountdownLatch done(env, 1);
  env->Spawn(scheduler.Run(&report, &done));
  env->Run();
  bench::CheckStatus(report.status, what);
  std::vector<SimDuration> elapsed;
  for (const VolumeSpec& spec : specs) {
    for (const VolumeOutcome& v : report.volumes) {
      if (v.name == spec.name) {
        elapsed.push_back(v.report.StreamElapsed());
      }
    }
  }
  return elapsed;
}

int Run() {
  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  TapeLibrary library("stacker", 8ull * kGiB, 0);
  SupervisionPolicy policy;
  // home: 188 GB on 31 disks; rlse: 129 GB on 22 disks — scaled ~1000x.
  VolumeSetup home = MakeVolume(&env, "home", 3, 96 * kMiB, 7);
  VolumeSetup rlse = MakeVolume(&env, "rlse", 2, 64 * kMiB, 8);
  TapeDrive d0(&env, "dlt0"), d1(&env, "dlt1");

  const VolumeSpec home_spec =
      LogicalSpec("home", home.fs.get(), 96 * kMiB);
  const VolumeSpec rlse_spec =
      LogicalSpec("rlse", rlse.fs.get(), 64 * kMiB);

  // Isolated nights: one volume, one drive.
  const SimDuration home_alone =
      RunNight(&env, &filer, &library, &policy, {&d0}, {home_spec},
               "home isolated")[0];
  const SimDuration rlse_alone =
      RunNight(&env, &filer, &library, &policy, {&d1}, {rlse_spec},
               "rlse isolated")[0];

  // The concurrent night: both volumes, both drives, one scheduler.
  const std::vector<SimDuration> together =
      RunNight(&env, &filer, &library, &policy, {&d0, &d1},
               {home_spec, rlse_spec}, "concurrent night");

  bench::PrintBanner(
      "Concurrent volume backups (home + rlse)",
      "OSDI'99 paper, Section 5.1: concurrent dumps do not interfere");
  std::printf("%-10s %18s %18s %10s\n", "volume", "isolated", "concurrent",
              "slowdown");
  const double home_slow =
      static_cast<double>(together[0]) / static_cast<double>(home_alone);
  const double rlse_slow =
      static_cast<double>(together[1]) / static_cast<double>(rlse_alone);
  std::printf("%-10s %18s %18s %9.2fx\n", "home",
              FormatDuration(home_alone).c_str(),
              FormatDuration(together[0]).c_str(), home_slow);
  std::printf("%-10s %18s %18s %9.2fx\n", "rlse",
              FormatDuration(rlse_alone).c_str(),
              FormatDuration(together[1]).c_str(), rlse_slow);
  const bool ok = home_slow < 1.15 && rlse_slow < 1.15;
  std::printf("RESULT: %s\n",
              ok ? "no interference, matching the paper"
                 : "SHAPE MISMATCH (interference detected)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main() { return bkup::Run(); }

// Crash-resumable recovery economics: what does a mid-restore kill cost,
// and what does one file over the WAN cost, once the dump catalog is the
// recovery authority?
//
// Three measurements on the same mature volume:
//   1. Full logical restore (baseline): replay the whole stream.
//   2. Killed + resumed restore: a crash injector kills the restore halfway
//      through the file section; the resumable job remounts, diffs the
//      catalog against the partial tree, and replays only the missing
//      suffix. The bench reports replayed vs. skipped bytes against the
//      full-replay baseline.
//   3. Remote single-file restore: the catalog turns one path into exact
//      stream ranges, the tape server reads only those, and O(file) bytes
//      cross the link instead of the whole stream.
//
// Exits non-zero unless the resumed restore replays strictly fewer bytes
// than the full stream, both restored trees match the source byte-for-byte,
// and the single file costs under a tenth of the full stream on the link —
// so `ctest -L recovery` enforces the recovery model's contracts end to end.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/backup/remote.h"
#include "src/backup/supervisor.h"
#include "src/dump/catalog.h"
#include "src/faults/crash.h"
#include "src/net/link.h"
#include "src/net/tape_server.h"
#include "src/util/random.h"

namespace bkup {
namespace {

int Run(int argc, char** argv) {
  bench::PrintBanner(
      "Crash-resumable restore: resume cost vs full replay, single-file "
      "remote restore cost",
      "recovery model (DESIGN.md §13); paper §6 restore matrix");

  bench::SetupOptions opts;
  opts.data_bytes = 48 * kMiB;  // enough files for a mid-stream kill to bite
  bench::Bench b(opts);

  // A known needle for the single-file pull, planted before any snapshot.
  bench::CheckStatus(b.fs->Mkdir("/known", 0755).status(), "mkdir /known");
  auto needle = b.fs->Create("/known/needle.dat", 0644);
  bench::CheckStatus(needle.status(), "create needle");
  Rng rng(3);
  std::vector<uint8_t> needle_data(5 * kBlockSize);
  rng.Fill(needle_data);
  bench::CheckStatus(b.fs->Write(*needle, 0, needle_data), "write needle");

  // The remote half: a vault server with its own drive across a WAN link.
  NetLink link(&b.env, "wan", LinkParams{});
  TapeServer server(&b.env, "vault");
  TapeDrive* vault_drive = server.AddDrive("dlt0");
  Tape vault_media("vault.0", 8ull * kGiB);
  vault_drive->LoadMedia(&vault_media);

  bench::BenchSampler sampler(&b);
  sampler.Attach(&vault_drive->unit());

  // Local logical backup; its catalog is the recovery authority for the
  // resume measurements.
  LogicalBackupJobResult backup;
  {
    CountdownLatch done(&b.env, 1);
    LogicalDumpOptions opt;
    opt.volume_name = "home";
    b.env.Spawn(LogicalBackupJob(b.filer.get(), b.fs.get(),
                                 b.drives[0].get(), opt, &backup, &done));
    b.env.Run();
    bench::CheckStatus(backup.report.status, "logical backup");
    backup.report.name = "Logical Backup";
  }
  auto catalog = TapeCatalog::Load(backup.dump.catalog_image);
  bench::CheckStatus(catalog.status(), "catalog load");
  const uint64_t full_bytes = backup.dump.stream.size();
  // The snapshot's consistency point made the whole tree durable, so the
  // live reader now sees everything the dump saw.
  auto source_sums = ChecksumTree(b.fs->LiveReader());
  bench::CheckStatus(source_sums.status(), "source checksums");

  // 1. Baseline: full restore of the stream onto a fresh file system.
  LogicalRestoreJobResult baseline;
  {
    auto volume = b.FreshVolume("full");
    auto fs = std::move(Filesystem::Format(volume.get(), &b.env)).value();
    b.drives[0]->Rewind();
    CountdownLatch done(&b.env, 1);
    b.env.Spawn(LogicalRestoreJob(b.filer.get(), fs.get(), b.drives[0].get(),
                                  LogicalRestoreOptions{}, false, &baseline,
                                  &done));
    b.env.Run();
    bench::CheckStatus(baseline.report.status, "full restore");
    baseline.report.name = "Full Restore (baseline)";
    auto sums = ChecksumTree(fs->LiveReader());
    bench::CheckStatus(sums.status(), "baseline checksums");
    if (*sums != *source_sums) {
      std::fprintf(stderr, "FATAL: baseline restore tree != source tree\n");
      return 1;
    }
  }

  // 2. Killed + resumed: one kill halfway through the file section, then
  // the supervised resumable job remounts and replays only the suffix.
  const uint64_t dir_end = catalog->directory_end();
  const uint64_t stream_end = catalog->stream_end();
  CrashPlan plan;
  plan.seed = 7;
  plan.KillAtOffset(dir_end + (stream_end - dir_end) / 2);
  CrashInjector injector(plan);
  SupervisionPolicy policy;
  ResumableRestoreJobResult resumed;
  auto rvolume = b.FreshVolume("resumed");
  auto rfs = std::move(Filesystem::Format(rvolume.get(), &b.env)).value();
  {
    b.drives[0]->Rewind();
    ResumableRestoreConfig cfg;
    cfg.catalog = &*catalog;
    cfg.kill = &injector;
    cfg.checkpoint_every = 16;
    CountdownLatch done(&b.env, 1);
    b.env.Spawn(ResumableLogicalRestoreJob(
        b.filer.get(), &rfs, rvolume.get(), b.drives[0].get(),
        LogicalRestoreOptions{}, false, &policy, cfg, &resumed, &done));
    b.env.Run();
    bench::CheckStatus(resumed.report.status, "resumed restore");
    resumed.report.name = "Killed+Resumed Restore";
    auto sums = ChecksumTree(rfs->LiveReader());
    bench::CheckStatus(sums.status(), "resumed checksums");
    if (*sums != *source_sums) {
      std::fprintf(stderr, "FATAL: resumed restore tree != source tree\n");
      return 1;
    }
  }

  // 3. Remote: back the volume up to the vault, then pull one file back
  // through the catalog's ranges.
  RemoteTarget target;
  target.link = &link;
  target.server = &server;
  target.drive = vault_drive;
  LogicalBackupJobResult remote_backup;
  {
    CountdownLatch done(&b.env, 1);
    LogicalDumpOptions opt;
    opt.volume_name = "home";
    b.env.Spawn(RemoteLogicalBackupJob(b.filer.get(), b.fs.get(), target, opt,
                                       &remote_backup, &done));
    b.env.Run();
    bench::CheckStatus(remote_backup.report.status, "remote backup");
    remote_backup.report.name = "Remote Logical Backup";
  }
  auto vault_catalog = TapeCatalog::Load(remote_backup.dump.catalog_image);
  bench::CheckStatus(vault_catalog.status(), "vault catalog load");
  RemoteSingleFileRestoreResult single;
  {
    auto volume = b.FreshVolume("single");
    auto fs = std::move(Filesystem::Format(volume.get(), &b.env)).value();
    LinkBudget budget(&link, 64 * kMiB);
    CountdownLatch done(&b.env, 1);
    b.env.Spawn(RemoteSingleFileRestoreJob(
        b.filer.get(), fs.get(), target, &*vault_catalog, "/known/needle.dat",
        LogicalRestoreOptions{}, false, &budget, &single, &done));
    b.env.Run();
    bench::CheckStatus(single.report.status, "single-file restore");
    single.report.name = "Remote Single-File Restore";
  }

  bench::PrintSummaryHeader();
  bench::PrintSummaryRow(backup.report);
  bench::PrintSummaryRow(baseline.report);
  bench::PrintSummaryRow(resumed.report);
  bench::PrintSummaryRow(remote_backup.report);

  const auto& rs = resumed.restore.stats;
  std::printf("\nResume cost (1 kill at mid-file-section, catalog diff):\n");
  std::printf("  %-34s %14llu\n", "full stream bytes",
              (unsigned long long)full_bytes);
  std::printf("  %-34s %14llu  (%.1f%% of full)\n", "bytes replayed on resume",
              (unsigned long long)rs.bytes_replayed,
              100.0 * rs.bytes_replayed / full_bytes);
  std::printf("  %-34s %14llu\n", "bytes skipped (already durable)",
              (unsigned long long)rs.bytes_skipped);
  std::printf("  %-34s %14u\n", "process incarnations", resumed.attempts);
  std::printf("  %-34s %14llu\n", "files already complete",
              (unsigned long long)rs.files_already_complete);

  std::printf("\nSingle-file remote restore (catalog ranges over the link):\n");
  std::printf("  %-34s %14llu\n", "full stream bytes",
              (unsigned long long)single.full_stream_bytes);
  std::printf("  %-34s %14llu  (%.2f%% of full)\n", "link bytes for one file",
              (unsigned long long)single.link_bytes,
              100.0 * single.link_bytes / single.full_stream_bytes);

  bool ok = true;
  ok &= resumed.attempts == 2;
  ok &= resumed.report.resume.resumes == 1;
  ok &= rs.bytes_replayed < full_bytes;
  ok &= rs.bytes_skipped > 0;
  ok &= single.restore.stats.files_restored == 1;
  ok &= single.link_bytes > 0 &&
        single.link_bytes < single.full_stream_bytes / 10;

  const std::string json_path = bench::JsonPathFromArgs(
      argc, argv, "BENCH_restore_resume.json");
  if (!json_path.empty()) {
    std::vector<const JobReport*> reports = {
        &backup.report, &baseline.report, &resumed.report,
        &remote_backup.report, &single.report};
    bench::CheckStatus(bench::WriteBenchJson(json_path, "restore_resume", b,
                                             reports, {&sampler}),
                       "bench json");
  }

  std::printf("\nRESULT: %s\n",
              ok ? "resume replays only the missing suffix; one file costs "
                   "O(file) link bytes"
                 : "RECOVERY CONTRACT VIOLATION");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main(int argc, char** argv) { return bkup::Run(argc, argv); }

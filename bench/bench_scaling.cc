// §5.3 scaling claim — GB/h and GB/h/tape versus number of tape drives.
//
// "The performance of physical dump/restore scales very well ... Logical
// dump/restore scales much more poorly": physical throughput grows
// near-linearly until the disks saturate; logical saturates earlier on
// random reads and CPU.
#include <cstdio>
#include <vector>

#include "bench/parallel_suite.h"

namespace bkup {
namespace {

int Run() {
  bench::PrintBanner("Scaling sweep: throughput vs. number of tape drives",
                     "OSDI'99 paper, Section 5.3 (summary claim)");
  struct Row {
    uint32_t tapes;
    double logical_gbh;
    double physical_gbh;
  };
  std::vector<Row> rows;
  for (const uint32_t n : {1u, 2u, 3u, 4u, 6u}) {
    bench::ParallelSuite suite =
        bench::RunParallelSuite(n, 32ull * kMiB * n);
    rows.push_back(
        {n, suite.logical_backup.GBph(), suite.physical_backup.GBph()});
  }
  std::printf("%6s %16s %16s %14s %14s\n", "tapes", "logical GB/h",
              "physical GB/h", "log GB/h/tape", "phys GB/h/tape");
  for (const Row& r : rows) {
    std::printf("%6u %16.1f %16.1f %14.2f %14.2f\n", r.tapes, r.logical_gbh,
                r.physical_gbh, r.logical_gbh / r.tapes,
                r.physical_gbh / r.tapes);
  }
  std::printf(
      "\nPaper reference: 1 tape ~26 vs ~31 GB/h; 4 tapes 69.6 vs 110 GB/h "
      "(17.4 vs 27.6 GB/h/tape).\n");

  // Shape: physical outscales logical at every width; the physical
  // advantage widens with drives; logical per-tape efficiency decays.
  bool ok = true;
  for (size_t i = 0; i < rows.size(); ++i) {
    ok &= rows[i].physical_gbh >= rows[i].logical_gbh;
  }
  const double log_eff_1 = rows.front().logical_gbh / rows.front().tapes;
  const double log_eff_n = rows.back().logical_gbh / rows.back().tapes;
  const double edge_1 = rows.front().physical_gbh / rows.front().logical_gbh;
  const double edge_n = rows.back().physical_gbh / rows.back().logical_gbh;
  ok &= log_eff_n < log_eff_1;  // logical per-tape efficiency decays
  ok &= edge_n > edge_1;        // physical advantage widens with drives
  std::printf("physical/logical edge: %.2fx at 1 tape -> %.2fx at %u tapes\n",
              edge_1, edge_n, rows.back().tapes);
  std::printf("RESULT: %s\n",
              ok ? "shape matches the paper" : "SHAPE MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main() { return bkup::Run(); }

// Nightly fleet scheduler sweep: drives ∈ {1, 2, 4} × volumes ∈ {4, 8, 16}
// on a uniform image workload (every volume identical), reporting makespan,
// the bin-packing lower bound and per-drive utilization for each cell.
//
// With identical, non-preemptible jobs the lower bound on any M-drive
// schedule is ceil(N / M) sequential jobs; the gate requires the 4-drive
// makespans to land within 15% of it — the scheduler may not leave drives
// idle while work queues. `--json[=path]` writes the 4-drive / 16-volume
// cell as a BENCH_*.json report (validated by tools/check_trace.py).
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/backup/scheduler.h"
#include "src/obs/utilization.h"

namespace bkup {
namespace {

constexpr uint64_t kVolumeBytes = 4 * kMiB;
constexpr uint64_t kPopulateSeed = 42;  // identical data ⇒ identical jobs

VolumeGeometry CellGeometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 1;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;
  return geom;
}

struct CellResult {
  int drives = 0;
  int volumes = 0;
  SimDuration makespan = 0;
  double mean_drive_util = 0.0;
  uint64_t deadline_misses = 0;
  size_t health_samples = 0;       // night_health series length
  bool misses_flagged_live = true; // every miss was called by the monitor
};

// Builds and runs one night of `num_volumes` identical image volumes over
// `num_drives` drives. When `json_path` is non-empty the cell also writes
// the structured bench report (jobs, utilization series, metrics).
// `deadline` > 0 gives every volume that deadline (the uniform fleet keeps
// queue order unchanged, so the makespan gate is unaffected).
CellResult RunCell(int num_drives, int num_volumes,
                   const std::string& json_path, SimDuration deadline = 0) {
  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  TapeLibrary library("fleet", 64 * kMiB, 0);
  SupervisionPolicy policy;

  std::vector<std::unique_ptr<Volume>> volumes;
  std::vector<std::unique_ptr<Filesystem>> filesystems;
  std::vector<VolumeSpec> specs;
  for (int i = 0; i < num_volumes; ++i) {
    const std::string name = "vol" + std::to_string(i);
    volumes.push_back(Volume::Create(&env, name, CellGeometry()));
    auto fs = std::move(Filesystem::Format(volumes.back().get(), &env)).value();
    WorkloadParams params;
    params.seed = kPopulateSeed;
    params.target_bytes = kVolumeBytes;
    bench::CheckStatus(PopulateFilesystem(fs.get(), params).status(),
                       "populate");
    filesystems.push_back(std::move(fs));

    VolumeSpec spec;
    spec.name = name;
    spec.fs = filesystems.back().get();
    spec.mode = BackupMode::kImage;
    spec.estimated_bytes = kVolumeBytes;
    if (deadline > 0) {
      spec.deadline = deadline;
    }
    specs.push_back(std::move(spec));
  }

  std::vector<std::unique_ptr<TapeDrive>> drives;
  std::vector<std::unique_ptr<UtilizationSampler>> samplers;
  FleetConfig config;
  for (int d = 0; d < num_drives; ++d) {
    drives.push_back(
        std::make_unique<TapeDrive>(&env, "d" + std::to_string(d)));
    config.drives.push_back(drives.back().get());
    samplers.push_back(std::make_unique<UtilizationSampler>(
        &drives.back()->unit(), 10 * kSecond));
  }
  config.library = &library;
  config.supervision = &policy;

  NightlyScheduler scheduler(&filer, config, std::move(specs));
  NightReport report;
  CountdownLatch done(&env, 1);
  env.Spawn(scheduler.Run(&report, &done));
  env.Run();
  bench::CheckStatus(report.status, "night");
  for (const VolumeOutcome& v : report.volumes) {
    bench::CheckStatus(v.status, v.name.c_str());
  }

  CellResult cell;
  cell.drives = num_drives;
  cell.volumes = num_volumes;
  cell.makespan = report.makespan();
  for (const DriveNightStats& d : report.drives) {
    cell.mean_drive_util += d.utilization;
  }
  cell.mean_drive_util /= static_cast<double>(num_drives);
  cell.deadline_misses = report.deadline_misses;
  cell.health_samples = report.night_health.size();
  for (const VolumeOutcome& v : report.volumes) {
    if (!v.deadline_met && !v.slo_flagged_live) {
      cell.misses_flagged_live = false;
    }
  }

  if (!json_path.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Field("bench", "scheduler");
    w.Field("sim_elapsed_s", SimToSeconds(env.now()));
    w.Key("config")
        .BeginObject()
        .Field("drives", static_cast<uint64_t>(num_drives))
        .Field("volumes", static_cast<uint64_t>(num_volumes))
        .Field("bytes_per_volume", kVolumeBytes)
        .Field("seed", kPopulateSeed)
        .EndObject();
    w.Key("jobs").BeginArray();
    for (const VolumeOutcome& v : report.volumes) {
      JobReport r = v.report;
      r.name = v.name;
      r.WriteJson(&w);
    }
    w.EndArray();
    w.Key("utilization").BeginArray();
    for (auto& s : samplers) {
      s->Finish(env.now());
      s->WriteJson(&w);
    }
    w.EndArray();
    w.Key("scheduler");
    report.WriteJson(&w);
    w.Key("metrics");
    MetricsRegistry::Default().WriteJson(&w);
    w.EndObject();

    std::FILE* f = std::fopen(json_path.c_str(), "w");
    bench::Check(f != nullptr ? Status::Ok() : IoError("open " + json_path),
                 "json open");
    const std::string json = w.Take();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
        std::fclose(f) == 0;
    bench::Check(ok ? Status::Ok() : IoError("write " + json_path),
                 "json write");
    std::printf("wrote %s (%zu bytes)\n", json_path.c_str(), json.size());
  }
  return cell;
}

int Run(int argc, char** argv) {
  const std::string json_path =
      bench::JsonPathFromArgs(argc, argv, "BENCH_scheduler.json");

  bench::PrintBanner(
      "Nightly scheduler sweep (drives x volumes, uniform fleet)",
      "OSDI'99 paper, Section 5.1 concurrency, generalized to M < N drives");

  // The bound's unit: one volume alone on one drive.
  const SimDuration t_iso = RunCell(1, 1, "").makespan;
  std::printf("isolated single-volume night: %s\n\n",
              FormatDuration(t_iso).c_str());
  std::printf("%7s %8s %14s %14s %7s %10s\n", "drives", "volumes", "makespan",
              "lower bound", "ratio", "drive util");

  bool gate_ok = true;
  for (int num_drives : {1, 2, 4}) {
    for (int num_volumes : {4, 8, 16}) {
      const bool json_cell =
          num_drives == 4 && num_volumes == 16 && !json_path.empty();
      // The reported cell carries a generous uniform deadline so its JSON
      // gains a live night_health series without perturbing queue order.
      const CellResult cell =
          RunCell(num_drives, num_volumes, json_cell ? json_path : "",
                  json_cell ? 4 * kHour : SimDuration{0});
      if (json_cell && (cell.health_samples == 0 || !cell.misses_flagged_live)) {
        gate_ok = false;
      }
      const int rounds = (num_volumes + num_drives - 1) / num_drives;
      const SimDuration bound = static_cast<SimDuration>(rounds) * t_iso;
      const double ratio = static_cast<double>(cell.makespan) /
                           static_cast<double>(bound);
      std::printf("%7d %8d %14s %14s %6.2fx %9.1f%%\n", cell.drives,
                  cell.volumes, FormatDuration(cell.makespan).c_str(),
                  FormatDuration(bound).c_str(), ratio,
                  cell.mean_drive_util * 100.0);
      if (num_drives == 4 && ratio > 1.15) {
        gate_ok = false;
      }
    }
  }
  // SLO-monitor consistency gate: a night engineered to miss (deadlines far
  // tighter than the workload) must have flagged every missed volume while
  // the night was still live — a silent miss in the report fails the bench.
  const CellResult tight = RunCell(2, 8, "", /*deadline=*/2 * kMinute);
  std::printf("\ntight-deadline night: %llu misses, %zu health samples, "
              "all flagged live: %s\n",
              static_cast<unsigned long long>(tight.deadline_misses),
              tight.health_samples, tight.misses_flagged_live ? "yes" : "NO");
  const bool slo_ok = tight.deadline_misses > 0 && tight.health_samples >= 2 &&
                      tight.misses_flagged_live;
  if (!slo_ok) {
    gate_ok = false;
  }

  std::printf("RESULT: %s\n",
              gate_ok
                  ? "4-drive makespans within 15% of the bin-packing bound; "
                    "every deadline miss was flagged live"
                  : !slo_ok ? "SLO MONITOR MISMATCH (a missed deadline was "
                              "never flagged while the night ran)"
                            : "SHAPE MISMATCH (scheduler left drives idle "
                              "under load)");
  return gate_ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main(int argc, char** argv) { return bkup::Run(argc, argv); }

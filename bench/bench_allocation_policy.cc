// Design ablation: WAFL's write-anywhere allocation vs. a first-fit
// allocator.
//
// The paper credits WAFL's "complete flexibility in its write allocation
// policies" for laying data out sequentially. This ablation formats two
// otherwise identical volumes — one with the write-anywhere (moving write
// point) allocator, one with naive first-fit — runs the same aged workload,
// and compares layout contiguity and the disk cost of a logical dump.
// First-fit immediately recycles scattered holes, so files fragment faster
// (the paper's §2 claim for write-anywhere: sequential layout); the disk
// cost tells a second story — first-fit packs data densely near the start
// of the volume, trading shorter seeks for worse contiguity.
#include <cstdio>

#include "bench/common.h"

namespace bkup {
namespace {

struct Row {
  const char* name;
  double mean_run_blocks;
  double logical_disk_s_per_mb;
  double logical_mbps;
};

double DiskBusySeconds(Volume* volume) {
  int64_t total = 0;
  for (const auto& d : volume->disks()) {
    total += d->arm().BusyIntegral();
  }
  return SimToSeconds(total);
}

Row RunOne(WriteAllocator::Policy policy, const char* name) {
  SimEnvironment env;
  Filer filer(&env, FilerModel::F630());
  VolumeGeometry geom;
  geom.num_raid_groups = 3;
  geom.disks_per_group = 10;
  geom.blocks_per_disk = 2048;
  auto volume = Volume::Create(&env, "home", geom);
  FormatParams params;
  params.alloc_policy = policy;
  auto fs =
      std::move(Filesystem::Format(volume.get(), &env, nullptr, params))
          .value();

  WorkloadParams workload;
  workload.target_bytes = 165 * kMiB;
  bench::CheckStatus(PopulateFilesystem(fs.get(), workload).status(),
                     "populate");
  AgingParams aging;
  aging.rounds = 4;
  aging.churn_fraction = 0.3;
  bench::CheckStatus(AgeFilesystem(fs.get(), aging).status(), "aging");

  auto frag = MeasureFragmentation(fs->LiveReader());
  bench::CheckStatus(frag.status(), "fragmentation");

  Tape media("t0", 8ull * kGiB);
  TapeDrive drive(&env, "dlt0");
  drive.LoadMedia(&media);
  const double disk_before = DiskBusySeconds(volume.get());
  LogicalBackupJobResult backup;
  CountdownLatch done(&env, 1);
  env.Spawn(LogicalBackupJob(&filer, fs.get(), &drive, LogicalDumpOptions{},
                             &backup, &done));
  env.Run();
  bench::CheckStatus(backup.report.status, "logical backup");
  const double disk_s = DiskBusySeconds(volume.get()) - disk_before;

  return Row{name, frag->MeanRunBlocks(),
             disk_s / (static_cast<double>(backup.report.data_bytes) / 1e6),
             backup.report.MBps()};
}

int Run() {
  bench::PrintBanner(
      "Allocation-policy ablation: write-anywhere vs first-fit",
      "OSDI'99 paper, Section 2 (WAFL's write allocation flexibility)");
  const Row wa = RunOne(WriteAllocator::Policy::kWriteAnywhere,
                        "write-anywhere");
  const Row ff = RunOne(WriteAllocator::Policy::kFirstFit, "first-fit");
  std::printf("%-16s %18s %18s %14s\n", "policy", "mean run (blocks)",
              "log disk-s/MB", "logical MB/s");
  for (const Row* r : {&wa, &ff}) {
    std::printf("%-16s %18.2f %18.4f %14.2f\n", r->name, r->mean_run_blocks,
                r->logical_disk_s_per_mb, r->logical_mbps);
  }
  std::printf("\nObservation: write-anywhere keeps files %.1fx more "
              "contiguous; first-fit's dense packing shortens seek "
              "distances (%.2f vs %.2f disk-s/MB) at the price of "
              "fragmentation that compounds as the volume fills.\n",
              wa.mean_run_blocks / ff.mean_run_blocks,
              ff.logical_disk_s_per_mb, wa.logical_disk_s_per_mb);
  const bool ok = wa.mean_run_blocks > ff.mean_run_blocks;
  std::printf("RESULT: %s\n",
              ok ? "write-anywhere allocation keeps files more contiguous "
                   "(Section 2's layout-flexibility claim)"
                 : "SHAPE MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main() { return bkup::Run(); }

// Footnote 1 ablation — "A mature data set is typically slower to backup
// than a newly created one because of fragmentation."
//
// Sweeps aging intensity and measures logical vs physical dump throughput
// together with the layout fragmentation metric. Physical dump reads in
// block order and should be insensitive; logical dump reads in inode order
// and should degrade as files scatter.
#include <cstdio>
#include <vector>

#include "bench/common.h"

namespace bkup {
namespace {

struct Row {
  uint32_t aging_rounds;
  double mean_run_blocks;
  double logical_mbps;
  double physical_mbps;
  // Disk-arm seconds consumed per MB dumped: the direct cost of layout
  // fragmentation, independent of which stage happens to be the bottleneck.
  double logical_disk_s_per_mb;
  double physical_disk_s_per_mb;
};

double DiskBusySeconds(Volume* volume) {
  int64_t total = 0;
  for (const auto& d : volume->disks()) {
    total += d->arm().BusyIntegral();
  }
  return SimToSeconds(total);
}

Row RunOne(uint32_t aging_rounds) {
  bench::SetupOptions opts;
  opts.data_bytes = 120 * kMiB;  // mostly-full volume fragments realistically
  opts.quota_trees = 1;
  opts.aged = false;
  bench::Bench b(opts);
  if (aging_rounds > 0) {
    AgingParams aging;
    aging.rounds = aging_rounds;
    aging.churn_fraction = 0.3;
    bench::CheckStatus(AgeFilesystem(b.fs.get(), aging).status(), "aging");
  }
  auto frag = MeasureFragmentation(b.fs->LiveReader());
  bench::CheckStatus(frag.status(), "fragmentation");

  const double disk_before_logical = DiskBusySeconds(b.home.get());
  LogicalBackupJobResult logical;
  CountdownLatch ldone(&b.env, 1);
  b.env.Spawn(LogicalBackupJob(b.filer.get(), b.fs.get(), b.drives[0].get(),
                               LogicalDumpOptions{}, &logical, &ldone));
  b.env.Run();
  bench::CheckStatus(logical.report.status, "logical backup");
  const double logical_disk_s =
      DiskBusySeconds(b.home.get()) - disk_before_logical;

  const double disk_before_physical = DiskBusySeconds(b.home.get());
  ImageBackupJobResult physical;
  CountdownLatch pdone(&b.env, 1);
  b.env.Spawn(ImageBackupJob(b.filer.get(), b.fs.get(), b.drives[1].get(),
                             ImageDumpOptions{}, true, &physical, &pdone));
  b.env.Run();
  bench::CheckStatus(physical.report.status, "physical backup");
  const double physical_disk_s =
      DiskBusySeconds(b.home.get()) - disk_before_physical;

  Row row{};
  row.aging_rounds = aging_rounds;
  row.mean_run_blocks = frag->MeanRunBlocks();
  row.logical_mbps = logical.report.MBps();
  row.physical_mbps = physical.report.MBps();
  row.logical_disk_s_per_mb =
      logical_disk_s / (static_cast<double>(logical.report.data_bytes) / 1e6);
  row.physical_disk_s_per_mb =
      physical_disk_s /
      (static_cast<double>(physical.report.data_bytes) / 1e6);
  return row;
}

int Run() {
  bench::PrintBanner(
      "Fragmentation ablation: dump throughput vs. file-system age",
      "OSDI'99 paper, Section 5.1 footnote 1 (mature data sets)");
  std::vector<Row> rows;
  for (const uint32_t rounds : {0u, 2u, 4u, 8u}) {
    rows.push_back(RunOne(rounds));
  }
  std::printf("%8s %14s %13s %13s %16s %16s\n", "rounds",
              "run (blocks)", "logical MB/s", "phys MB/s",
              "log disk-s/MB", "phys disk-s/MB");
  for (const Row& r : rows) {
    std::printf("%8u %14.2f %13.2f %13.2f %16.4f %16.4f\n", r.aging_rounds,
                r.mean_run_blocks, r.logical_mbps, r.physical_mbps,
                r.logical_disk_s_per_mb, r.physical_disk_s_per_mb);
  }
  // Fragmentation must (a) shorten layout runs, (b) slow logical dump,
  // and (c) inflate logical dump's per-MB disk cost by more than physical
  // dump's — inode-order reads pay the scattering, block-order reads
  // mostly do not.
  const double logical_cost_growth = rows.back().logical_disk_s_per_mb /
                                     rows.front().logical_disk_s_per_mb;
  const double physical_cost_growth = rows.back().physical_disk_s_per_mb /
                                      rows.front().physical_disk_s_per_mb;
  std::printf("\ndisk cost growth, fresh -> aged: logical %.2fx, physical "
              "%.2fx\n",
              logical_cost_growth, physical_cost_growth);
  const bool ok =
      rows.back().mean_run_blocks < rows.front().mean_run_blocks &&
      logical_cost_growth > 1.1 &&
      logical_cost_growth > physical_cost_growth;
  std::printf("RESULT: %s\n",
              ok ? "aging hurts logical dump disproportionately (matches "
                   "footnote 1)"
                 : "SHAPE MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main() { return bkup::Run(); }

// Micro-benchmarks (google-benchmark) for the hot inner loops of the
// backup paths: checksums, bitmap algebra (the Table 1 computation), block
// map plane operations, dump record serialization, the write allocator and
// RAID parity math.
#include <benchmark/benchmark.h>

#include "src/block/block.h"
#include "src/dump/format.h"
#include "src/fs/blockmap.h"
#include "src/util/bitmap.h"
#include "src/util/checksum.h"
#include "src/util/random.h"

namespace bkup {
namespace {

void BM_Crc32c4K(benchmark::State& state) {
  Block block;
  Rng rng(1);
  rng.Fill(block.bytes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(block.bytes()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kBlockSize);
}
BENCHMARK(BM_Crc32c4K);

void BM_Adler32_4K(benchmark::State& state) {
  Block block;
  Rng rng(2);
  rng.Fill(block.bytes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Adler32(block.bytes()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kBlockSize);
}
BENCHMARK(BM_Adler32_4K);

void BM_BitmapDifference(benchmark::State& state) {
  const size_t bits = static_cast<size_t>(state.range(0));
  Bitmap a(bits), b(bits);
  Rng rng(3);
  for (size_t i = 0; i < bits / 3; ++i) {
    a.Set(rng.Below(bits));
    b.Set(rng.Below(bits));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitmap::Difference(b, a));
  }
}
BENCHMARK(BM_BitmapDifference)->Arg(1 << 16)->Arg(1 << 20);

void BM_BlockMapCopyPlane(benchmark::State& state) {
  BlockMap map(static_cast<uint64_t>(state.range(0)));
  Rng rng(4);
  for (Vbn v = 0; v < map.num_blocks(); v += 3) {
    map.Set(kActivePlane, v);
  }
  for (auto _ : state) {
    map.CopyPlane(kActivePlane, 5);
    benchmark::DoNotOptimize(map.word(0));
  }
}
BENCHMARK(BM_BlockMapCopyPlane)->Arg(1 << 16)->Arg(1 << 20);

void BM_ImageBlockSetScan(benchmark::State& state) {
  BlockMap map(static_cast<uint64_t>(state.range(0)));
  Rng rng(5);
  for (Vbn v = 0; v < map.num_blocks(); ++v) {
    if (rng.Chance(0.6)) {
      map.Set(kActivePlane, v);
    }
    if (rng.Chance(0.5)) {
      map.Set(1, v);
    }
  }
  for (auto _ : state) {
    Bitmap set(map.num_blocks());
    for (Vbn v = 0; v < map.num_blocks(); ++v) {
      if (map.word(v) != 0 && !map.Test(1, v)) {
        set.Set(v);
      }
    }
    benchmark::DoNotOptimize(set.CountOnes());
  }
}
BENCHMARK(BM_ImageBlockSetScan)->Arg(1 << 16)->Arg(1 << 20);

void BM_DumpRecordSerialize(benchmark::State& state) {
  DumpRecord rec;
  rec.type = DumpRecordType::kInode;
  rec.inum = 1234;
  rec.attrs = {InodeType::kFile, 0644, 1, 100, 100, 1 << 20, 1, 2, 3, 4};
  rec.total_blocks = 256;
  rec.map_count = 256;
  rec.present_count = 200;
  rec.block_map.assign(32, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec.Serialize());
  }
}
BENCHMARK(BM_DumpRecordSerialize);

void BM_DumpRecordParse(benchmark::State& state) {
  DumpRecord rec;
  rec.type = DumpRecordType::kInode;
  rec.inum = 1234;
  rec.total_blocks = 256;
  rec.map_count = 256;
  rec.present_count = 200;
  rec.block_map.assign(32, 0xAB);
  const auto bytes = rec.Serialize().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DumpRecord::Parse(bytes));
  }
}
BENCHMARK(BM_DumpRecordParse);

void BM_AllocatorSequential(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BlockMap map(1 << 16);
    WriteAllocator alloc(&map);
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i) {
      benchmark::DoNotOptimize(alloc.Allocate());
    }
  }
}
BENCHMARK(BM_AllocatorSequential);

void BM_RaidParityXor(benchmark::State& state) {
  Block a, b;
  Rng rng(6);
  rng.Fill(a.bytes());
  rng.Fill(b.bytes());
  for (auto _ : state) {
    a.XorWith(b);
    benchmark::DoNotOptimize(a.data[0]);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          kBlockSize);
}
BENCHMARK(BM_RaidParityXor);

}  // namespace
}  // namespace bkup

BENCHMARK_MAIN();

// Footnote 2 ablation — "There is no inherent need for logical restore to
// go through NVRAM as it is simple to restart a restore which is
// interrupted by a crash. Modifying WAFL's logical restore to avoid NVRAM
// is in the works."
//
// Runs the same logical restore with and without the NVRAM log in the path,
// and physical restore (which always bypasses it) for reference.
#include <cstdio>

#include "bench/common.h"

namespace bkup {
namespace {

int Run() {
  bench::SetupOptions opts;
  bench::Bench b(opts);

  // One logical tape + one physical tape.
  LogicalBackupJobResult lback;
  CountdownLatch l1(&b.env, 1);
  b.env.Spawn(LogicalBackupJob(b.filer.get(), b.fs.get(), b.drives[0].get(),
                               LogicalDumpOptions{}, &lback, &l1));
  b.env.Run();
  bench::CheckStatus(lback.report.status, "logical backup");
  ImageBackupJobResult pback;
  CountdownLatch p1(&b.env, 1);
  b.env.Spawn(ImageBackupJob(b.filer.get(), b.fs.get(), b.drives[1].get(),
                             ImageDumpOptions{}, true, &pback, &p1));
  b.env.Run();
  bench::CheckStatus(pback.report.status, "physical backup");

  auto restore_logical = [&b](bool bypass) {
    auto volume = b.FreshVolume(bypass ? "bypass" : "nvram");
    auto fs = std::move(Filesystem::Format(volume.get(), &b.env)).value();
    b.drives[0]->Rewind();
    LogicalRestoreJobResult r;
    CountdownLatch done(&b.env, 1);
    b.env.Spawn(LogicalRestoreJob(b.filer.get(), fs.get(),
                                  b.drives[0].get(), LogicalRestoreOptions{},
                                  bypass, &r, &done));
    b.env.Run();
    bench::CheckStatus(r.report.status, "logical restore");
    return r.report;
  };
  JobReport with_nvram = restore_logical(false);
  with_nvram.name = "Logical restore (via NVRAM)";
  JobReport bypass = restore_logical(true);
  bypass.name = "Logical restore (NVRAM bypass)";

  auto pvolume = b.FreshVolume("prestore");
  b.drives[1]->Rewind();
  ImageRestoreJobResult prest;
  CountdownLatch p2(&b.env, 1);
  b.env.Spawn(ImageRestoreJob(b.filer.get(), pvolume.get(),
                              b.drives[1].get(), &prest, &p2));
  b.env.Run();
  bench::CheckStatus(prest.report.status, "physical restore");
  prest.report.name = "Physical restore (no NVRAM)";

  bench::PrintBanner("NVRAM ablation for logical restore",
                     "OSDI'99 paper, Section 5.1 footnote 2");
  bench::PrintSummaryHeader();
  bench::PrintSummaryRow(with_nvram);
  bench::PrintSummaryRow(bypass);
  bench::PrintSummaryRow(prest.report);

  const double speedup = bypass.MBps() / with_nvram.MBps();
  std::printf("\nNVRAM bypass speedup: %.2fx; remaining gap to physical: "
              "%.2fx\n",
              speedup, prest.report.MBps() / bypass.MBps());
  const bool ok = speedup > 1.02 && prest.report.MBps() > bypass.MBps();
  std::printf("RESULT: %s\n",
              ok ? "bypassing NVRAM helps but does not close the whole gap "
                   "(consistent with the paper)"
                 : "SHAPE MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main() { return bkup::Run(); }

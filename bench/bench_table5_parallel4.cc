// Table 5 — "Parallel Backup and Restore Performance on 4 tape drives".
//
// The paper's headline scaling result: with 4 drives, logical dump reaches
// ~17.4 GB/h/tape with the CPU near 90% and tape utilization under 70%,
// while physical dump reaches ~27.6 GB/h/tape at ~30% CPU — physical scales,
// logical saturates on disks + CPU.
#include <cstdio>

#include "bench/parallel_suite.h"

namespace bkup {
namespace {

int Run() {
  bench::ParallelSuite suite = bench::RunParallelSuite(4, 128 * kMiB);
  bench::PrintBanner(
      "Table 5: Parallel Backup and Restore Performance on 4 tape drives",
      "OSDI'99 paper, Table 5 (Section 5.2)");
  bench::PrintParallelSuite(suite);
  std::printf(
      "\nPaper reference (4 drives):\n"
      "  logical: mapping 5min@90%%, dirs 7min@90%%, files 2.5h@90%%; "
      "restore create 0.75h@53%%, fill 3.25h@100%%\n"
      "  physical: dump 1.7h@30%% (110 GB/h = 27.6 GB/h/tape); restore "
      "1.63h@41%%\n"
      "  logical achieved 69.6 GB/h = 17.4 GB/h/tape (CPU-bound, tape "
      "util < 70%%)\n");

  // Shape checks: physical outruns logical per tape; logical is the one
  // burning CPU; physical tape utilization beats logical's.
  const double tape_rate = 9.0;  // MB/s per DLT-7000 in this model
  const double phys_tape_util =
      suite.physical_backup.TapeMBps() / (4 * tape_rate);
  const double log_tape_util =
      suite.logical_backup.TapeMBps() / (4 * tape_rate);
  std::printf("\nShape checks:\n");
  std::printf("  physical GB/h/tape vs logical: %.2f vs %.2f (paper 27.6 vs "
              "17.4)\n",
              suite.physical_backup.GBph() / 4,
              suite.logical_backup.GBph() / 4);
  std::printf("  tape utilization physical vs logical: %.0f%% vs %.0f%% "
              "(paper: logical < 70%%)\n",
              phys_tape_util * 100, log_tape_util * 100);
  std::printf("  logical dump CPU: %.0f%% (paper ~90%%), physical dump "
              "CPU: %.0f%% (paper ~30%%)\n",
              suite.logical_backup.phase(JobPhase::kDumpFiles)
                      .CpuUtilization() * 100,
              suite.physical_backup.phase(JobPhase::kDumpBlocks)
                      .CpuUtilization() * 100);
  const bool ok =
      suite.physical_backup.GBph() > suite.logical_backup.GBph() &&
      phys_tape_util > log_tape_util &&
      suite.logical_backup.phase(JobPhase::kDumpFiles).CpuUtilization() >
          suite.physical_backup.phase(JobPhase::kDumpBlocks)
              .CpuUtilization();
  std::printf("RESULT: %s\n",
              ok ? "shape matches the paper" : "SHAPE MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main() { return bkup::Run(); }

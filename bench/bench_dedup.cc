// Cross-night dedup — does a deduplicated full dump cost like an
// incremental?
//
// The paper's nightly schedule (§4.1) alternates cheap incrementals with
// expensive full dumps because a level-0 re-ships every byte. The content
// pipeline's ChunkIndex (DESIGN.md §16) changes that arithmetic: when two
// nights' dumps share one chunk store, night 2's full dump emits 24-byte
// ref frames for every chunk the store already holds and ships literal
// bytes only where the tree actually changed. Content-defined chunking is
// what makes this work across nights — record headers shift by a few bytes
// when an inode's mtime changes, and the rolling-hash boundaries resync
// within a chunk or two instead of cascading misses to the end of stream.
//
// The gate: after one night of churn, a dedup'd level-0 full must move no
// more than 1.5x the wire bytes of a plain level-1 incremental over the
// same churn — a full dump's restore simplicity at an incremental's wire
// price. Two sanity shapes ride along: night 1 (cold store) must ship
// essentially everything, and night 2 must ref >= 90% of its chunks.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/content/content.h"
#include "src/dump/dumpdates.h"
#include "src/util/random.h"

namespace bkup {
namespace {

// Overwrites ~one block of a fraction of files in place: the nightly edit
// traffic a home volume sees (same model as bench_incremental).
void Churn(Filesystem* fs, double fraction, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<std::string, uint64_t>> files;
  Status st = WalkTree(fs->LiveReader(), "/",
                       [&files](const std::string& path, Inum,
                                const InodeData& inode) {
                         if (inode.type == InodeType::kFile) {
                           files.emplace_back(path, inode.size);
                         }
                       });
  bench::CheckStatus(st, "walk");
  std::vector<uint8_t> patch(kBlockSize);
  for (const auto& [path, size] : files) {
    if (!rng.Chance(fraction)) {
      continue;
    }
    auto inum = fs->LookupPath(path);
    if (!inum.ok()) {
      continue;
    }
    rng.Fill(patch);
    const uint64_t offset =
        size > kBlockSize ? rng.Below(size / kBlockSize) * kBlockSize : 0;
    bench::CheckStatus(fs->Write(*inum, offset, patch), "churn write");
  }
  bench::CheckStatus(fs->ConsistencyPoint().status(), "cp");
}

int Run(const std::string& json_path) {
  bench::SetupOptions opts;
  opts.data_bytes = 64 * kMiB;
  opts.quota_trees = 1;
  opts.aged = false;
  bench::Bench b(opts);
  bench::BenchSampler sampler(&b);
  std::printf("workload: %u files, %u dirs, %s of data\n", b.workload.files,
              b.workload.directories, FormatSize(b.workload.bytes).c_str());

  // One chunk store shared by both nights' full dumps.
  ChunkIndex index;
  ContentConfig content;
  content.chunk = content.dedup = content.crc = true;
  content.index = &index;
  bench::CheckStatus(content.Validate(), "content config");

  DumpDates dumpdates;
  const double kChurn = 0.05;

  // Night 1: level-0 full through the content pipeline (cold store).
  LogicalBackupJobResult night1;
  {
    CountdownLatch done(&b.env, 1);
    LogicalDumpOptions opt;
    opt.level = 0;
    opt.volume_name = "home";
    b.env.Spawn(LogicalBackupJob(b.filer.get(), b.fs.get(),
                                 b.drives[0].get(), opt, &night1, &done, {},
                                 nullptr, {}, content));
    b.env.Run();
    bench::CheckStatus(night1.report.status, "night-1 full");
    night1.report.name = "Night 1 full (dedup, cold store)";
    dumpdates.Record({"home", "/", 0, b.env.now(), b.fs->generation(), ""});
  }

  Churn(b.fs.get(), kChurn, 1999);

  // Night 2, strategy A: the paper's plain level-1 incremental (no content
  // stages) — the wire-byte bar the dedup'd full has to meet.
  LogicalBackupJobResult incr;
  {
    CountdownLatch done(&b.env, 1);
    LogicalDumpOptions opt;
    opt.level = 1;
    opt.volume_name = "home";
    auto base = dumpdates.BaseFor("home", "/", 1);
    bench::CheckStatus(base.status(), "dumpdates base");
    opt.base_time = base->dump_time;
    b.env.Spawn(LogicalBackupJob(b.filer.get(), b.fs.get(),
                                 b.drives[1].get(), opt, &incr, &done));
    b.env.Run();
    bench::CheckStatus(incr.report.status, "night-2 incremental");
    incr.report.name = "Night 2 incremental (plain)";
  }

  // Night 2, strategy B: another level-0 full against the warm store.
  LogicalBackupJobResult night2;
  {
    CountdownLatch done(&b.env, 1);
    LogicalDumpOptions opt;
    opt.level = 0;
    opt.volume_name = "home";
    b.env.Spawn(LogicalBackupJob(b.filer.get(), b.fs.get(),
                                 b.drives[2].get(), opt, &night2, &done, {},
                                 nullptr, {}, content));
    b.env.Run();
    bench::CheckStatus(night2.report.status, "night-2 full");
    night2.report.name = "Night 2 full (dedup, warm store)";
  }

  bench::PrintBanner(
      "Cross-night dedup: level-0 full at incremental wire cost",
      "OSDI'99 paper, Section 4.1 nightly schedule + DESIGN.md section 16");
  std::printf("%-36s %12s %12s %10s %10s\n", "Job", "Raw bytes", "Wire bytes",
              "Chunks", "Ref hits");
  for (const LogicalBackupJobResult* r : {&night1, &night2}) {
    std::printf("%-36s %12llu %12llu %10llu %10llu\n", r->report.name.c_str(),
                (unsigned long long)r->report.content.raw_bytes,
                (unsigned long long)r->report.content.wire_bytes,
                (unsigned long long)r->report.content.chunks,
                (unsigned long long)r->report.content.dedup_hits);
  }
  std::printf("%-36s %12llu %12llu %10s %10s\n", incr.report.name.c_str(),
              (unsigned long long)incr.dump.stats.stream_bytes,
              (unsigned long long)incr.report.stream_bytes, "-", "-");

  const uint64_t night2_wire = night2.report.content.wire_bytes;
  const uint64_t incr_wire = incr.report.stream_bytes;
  const double vs_incr =
      static_cast<double>(night2_wire) / static_cast<double>(incr_wire);
  const double night1_ship =
      static_cast<double>(night1.report.content.wire_bytes) /
      static_cast<double>(night1.report.content.raw_bytes);
  const double night2_ref_rate =
      static_cast<double>(night2.report.content.dedup_hits) /
      static_cast<double>(night2.report.content.chunks);

  std::printf("\nShape checks (%.0f%% nightly churn):\n", kChurn * 100);
  std::printf("  night-1 wire/raw (cold store)     : %.2f (must be >= 0.95)\n",
              night1_ship);
  std::printf("  night-2 ref'd chunks              : %.1f%% (must be >= 90%%)\n",
              night2_ref_rate * 100.0);
  std::printf("  night-2 full wire vs. incremental : %.2fx (must be <= 1.5x)\n",
              vs_incr);
  const bool cold_ships = night1_ship >= 0.95;
  const bool warm_refs = night2_ref_rate >= 0.90;
  const bool full_cheap = vs_incr <= 1.5;
  const bool ok = cold_ships && warm_refs && full_cheap;
  std::printf("RESULT: %s\n",
              ok ? "a dedup'd full dump costs like an incremental on the wire"
                 : "SHAPE MISMATCH");

  if (!json_path.empty()) {
    std::vector<const JobReport*> reports = {&night1.report, &incr.report,
                                             &night2.report};
    bench::Check(bench::WriteBenchJson(json_path, "dedup", b, reports,
                                       {&sampler}),
                 "writing JSON report");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main(int argc, char** argv) {
  return bkup::Run(
      bkup::bench::JsonPathFromArgs(argc, argv, "BENCH_dedup.json"));
}

// Table 1 — "Block states for incremental image dump".
//
// Builds two snapshots A and B with blocks in all four (bit-plane A, bit-
// plane B) states, computes the incremental block set exactly as image dump
// does, and verifies each state lands on the paper's rule:
//
//     A B   state                                    in incremental?
//     0 0   not in either snapshot                   no
//     0 1   newly written                            YES
//     1 0   deleted, no need to include              no
//     1 1   needed, but not changed since full dump  no
#include <cstdio>

#include "bench/common.h"
#include "src/image/blockset.h"

namespace bkup {
namespace {

int Run() {
  SimEnvironment env;
  VolumeGeometry geom;
  geom.num_raid_groups = 1;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;
  auto volume = Volume::Create(&env, "t1", geom);
  auto fs = std::move(Filesystem::Format(volume.get(), &env)).value();

  // Build the four states with real file operations.
  auto mk = [&fs](const std::string& path, size_t blocks,
                  uint64_t fill) {
    auto inum = fs->Create(path, 0644).value();
    std::vector<uint8_t> data(blocks * kBlockSize,
                              static_cast<uint8_t>(fill));
    bench::Check(fs->Write(inum, 0, data), "write");
    return inum;
  };
  mk("/unchanged", 8, 1);   // will be in A and B (state 1,1)
  mk("/doomed", 8, 2);      // in A, deleted before B (state 1,0)
  bench::Check(fs->CreateSnapshot("A"), "snapshot A");

  bench::Check(fs->Unlink("/doomed"), "unlink");
  mk("/fresh", 8, 3);       // written after A (state 0,1)
  bench::Check(fs->CreateSnapshot("B"), "snapshot B");

  auto fsinfo = ReadFsInfoFromVolume(volume.get()).value();
  auto map = LoadBlockMapFromVolume(volume.get(), fsinfo).value();
  const int plane_a = SnapshotPlaneOf(fsinfo, "A").value();
  const int plane_b = SnapshotPlaneOf(fsinfo, "B").value();
  const Bitmap incr = ComputeImageBlockSet(map, plane_a);

  // Classify every volume block by its (A, B) plane bits and check the
  // incremental rule per state.
  uint64_t counts[2][2] = {};
  uint64_t included[2][2] = {};
  uint64_t violations = 0;
  for (Vbn v = 0; v < map.num_blocks(); ++v) {
    const int a = map.Test(plane_a, v) ? 1 : 0;
    const int b = map.Test(plane_b, v) ? 1 : 0;
    counts[a][b]++;
    // The dump set is "used now and not in A"; for blocks whose word is
    // only the B/active planes this equals the B-not-A rule of Table 1.
    if (incr.Test(v)) {
      included[a][b]++;
    }
    const bool expect_included = map.word(v) != 0 && a == 0;
    if (incr.Test(v) != expect_included) {
      ++violations;
    }
  }

  bench::PrintBanner("Table 1: Block states for incremental image dump",
                     "OSDI'99 paper, Table 1 (Section 4.1)");
  std::printf("%-12s %-12s %-44s %10s %10s\n", "Bit plane A", "Bit plane B",
              "Block state", "blocks", "included");
  std::printf("%-12d %-12d %-44s %10llu %10llu\n", 0, 0,
              "not in either snapshot",
              (unsigned long long)counts[0][0],
              (unsigned long long)included[0][0]);
  std::printf("%-12d %-12d %-44s %10llu %10llu\n", 0, 1,
              "newly written - include in incremental",
              (unsigned long long)counts[0][1],
              (unsigned long long)included[0][1]);
  std::printf("%-12d %-12d %-44s %10llu %10llu\n", 1, 0,
              "deleted, no need to include",
              (unsigned long long)counts[1][0],
              (unsigned long long)included[1][0]);
  std::printf("%-12d %-12d %-44s %10llu %10llu\n", 1, 1,
              "needed, but not changed since full dump",
              (unsigned long long)counts[1][1],
              (unsigned long long)included[1][1]);
  std::printf("\nIncremental set size: %llu blocks (B - A rule)\n",
              (unsigned long long)incr.CountOnes());
  std::printf("Rule violations: %llu\n", (unsigned long long)violations);
  if (violations != 0 || included[1][0] != 0 || included[1][1] != 0 ||
      included[0][1] == 0) {
    std::printf("RESULT: MISMATCH with Table 1 semantics\n");
    return 1;
  }
  std::printf("RESULT: matches Table 1 semantics\n");
  return 0;
}

}  // namespace
}  // namespace bkup

int main() { return bkup::Run(); }

// Network sweep — link bandwidth vs. achieved remote dump throughput.
//
// The paper's dump-stream portability claim (§2: the stream "can be written
// to tape, to a file, or sent over a network"; §6 restores across media)
// realized as remote jobs: the dump pipeline runs on the filer, the tape
// writer on a tape server across a simulated link. Sweeping the link
// bandwidth shows the bottleneck crossover:
//   * below ~150 MB/s the link is the bottleneck and a remote physical dump
//     must sustain >= 90% of the configured bandwidth (the acceptance bar
//     for the 1 GbE-class 125 MB/s row);
//   * above it the F630's CPU (22 us per 4 KB block => ~186 MB/s ceiling)
//     takes over and extra bandwidth buys nothing — the same saturation
//     structure as the paper's parallel-dump tables, one layer up.
//
// The compression axis (DESIGN.md §16) re-runs the sweep with the content
// pipeline at ratio 2.0: each link byte now carries two raw bytes, so the
// link-bound half of the curve doubles in raw throughput — but the stages
// charge their own CPU (chunk + compress + crc ≈ 1.3 ms/MB on top of 5.6
// ms/MB of per-block dump CPU), pulling the CPU ceiling down to ~140 MB/s
// raw. Compression therefore *shifts the crossover to a lower bandwidth*:
// it buys throughput exactly while the wire is the bottleneck and turns
// into pure overhead once the CPU is.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/backup/remote.h"
#include "src/content/content.h"
#include "src/net/link.h"
#include "src/net/tape_server.h"

namespace bkup {
namespace {

// VTL-class drive (disk-backed virtual tape): fast enough that the link,
// never the media, is the remote bottleneck.
TapeTiming VtlTiming() {
  TapeTiming t;
  t.stream_mb_per_s = 600.0;
  t.stream_tolerance = 50 * kMillisecond;
  t.reposition_penalty = 5 * kMillisecond;
  t.rewind_time = 1 * kSecond;
  t.load_time = 2 * kSecond;
  return t;
}

std::string Mbps(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g MB/s", v);
  return buf;
}

struct SweepRow {
  double configured = 0.0;
  JobReport report;
  uint64_t retransmits = 0;
};

// Raw-coordinate throughput: engine-side stream bytes over the streaming
// window. With content stages on, NetMBps() reports the (smaller) wire
// rate; raw MB/s is what the backup window actually buys.
double RawMBps(const JobReport& r) {
  const SimDuration e = r.StreamElapsed();
  if (e <= 0) {
    return 0.0;
  }
  return BytesPerSecToMBps(static_cast<double>(r.stream_bytes) /
                           SimToSeconds(e));
}

// The bandwidth where the link stops being the bottleneck: the first sweep
// row whose raw throughput falls under 90% of the link's raw capacity
// (bandwidth x compression ratio). Rows that never fall under it report
// one step past the sweep's end.
double CrossoverBandwidth(const std::vector<SweepRow>& rows, double ratio) {
  for (const SweepRow& row : rows) {
    if (RawMBps(row.report) < 0.9 * row.configured * ratio) {
      return row.configured;
    }
  }
  return rows.empty() ? 0.0 : rows.back().configured * 2.0;
}

int Run(const std::string& json_path) {
  bench::SetupOptions opts;
  // The paper-era spindles top out near 80 MB/s aggregate on an aged
  // volume, which would hide the link entirely. A remote-backup sweep
  // wants the source able to outrun a 1 GbE link, so model a later FC-AL
  // shelf: faster media rate, shorter seeks, same arm count.
  opts.disk_timing.transfer_mb_per_s = 40.0;
  opts.disk_timing.avg_seek_ms = 4.0;
  opts.disk_timing.track_seek_ms = 0.5;
  opts.disk_timing.rotational_ms = 2.0;  // half revolution at 15k rpm
  bench::Bench b(opts);
  std::printf("workload: %u files, %u dirs, %s of data (mature/aged)\n",
              b.workload.files, b.workload.directories,
              FormatSize(b.workload.bytes).c_str());

  bench::BenchSampler sampler(&b);
  TapeServer server(&b.env, "vault");
  std::vector<std::unique_ptr<NetLink>> links;
  std::vector<std::unique_ptr<Tape>> media;
  size_t unit = 0;
  auto MakeTarget = [&](double bandwidth) {
    LinkParams params;
    params.bandwidth_mb_per_s = bandwidth;
    links.push_back(std::make_unique<NetLink>(
        &b.env, "lan" + std::to_string(unit), params));
    TapeDrive* drive =
        server.AddDrive("vtl" + std::to_string(unit), VtlTiming());
    media.push_back(
        std::make_unique<Tape>("net." + std::to_string(unit), 8ull * kGiB));
    drive->LoadMedia(media.back().get());
    ++unit;
    RemoteTarget target;
    target.link = links.back().get();
    target.server = &server;
    target.drive = drive;
    return target;
  };

  // ------------------------------------------------- bandwidth sweep ---
  const std::vector<double> kBandwidths = {12.5, 31.25, 62.5,
                                           125.0, 250.0, 500.0};
  std::vector<SweepRow> rows;
  for (const double bw : kBandwidths) {
    RemoteTarget target = MakeTarget(bw);
    ImageBackupJobResult r;
    CountdownLatch done(&b.env, 1);
    b.env.Spawn(RemoteImageBackupJob(b.filer.get(), b.fs.get(), target,
                                     ImageDumpOptions{},
                                     /*delete_snapshot_after=*/true, &r,
                                     &done));
    b.env.Run();
    bench::Check(r.report.status, "remote physical backup");
    r.report.name = "Remote Physical @ " + Mbps(bw);
    rows.push_back({bw, r.report, r.report.faults.link_retransmits});
  }

  // ------------------------------------------- compression-ratio axis ---
  // The same sweep with the content pipeline at ratio 2.0 (chunk +
  // compress + crc; a fresh ChunkIndex per row keeps rows independent).
  std::vector<std::unique_ptr<ChunkIndex>> indexes;
  std::vector<SweepRow> ratio_rows;
  for (const double bw : kBandwidths) {
    RemoteTarget target = MakeTarget(bw);
    indexes.push_back(std::make_unique<ChunkIndex>());
    ContentConfig content;
    content.chunk = content.compress = content.crc = true;
    content.compress_ratio = 2.0;
    content.index = indexes.back().get();
    target.content = content;
    ImageBackupJobResult r;
    CountdownLatch done(&b.env, 1);
    b.env.Spawn(RemoteImageBackupJob(b.filer.get(), b.fs.get(), target,
                                     ImageDumpOptions{},
                                     /*delete_snapshot_after=*/true, &r,
                                     &done));
    b.env.Run();
    bench::Check(r.report.status, "remote physical backup (ratio 2.0)");
    r.report.name = "Remote Physical r2 @ " + Mbps(bw);
    ratio_rows.push_back({bw, r.report, r.report.faults.link_retransmits});
  }

  // Remote logical dump at the 1 GbE point, for the paper's Table-2 pairing.
  JobReport logical_report;
  {
    RemoteTarget target = MakeTarget(125.0);
    LogicalBackupJobResult r;
    CountdownLatch done(&b.env, 1);
    LogicalDumpOptions opt;
    opt.volume_name = "home";
    b.env.Spawn(RemoteLogicalBackupJob(b.filer.get(), b.fs.get(), target, opt,
                                       &r, &done));
    b.env.Run();
    bench::Check(r.report.status, "remote logical backup");
    r.report.name = "Remote Logical @ " + Mbps(125.0);
    logical_report = r.report;
  }

  // Two streams sharing one 1 GbE link: parts contend frame-by-frame for
  // the wire, so the aggregate still tops out at the link.
  JobReport parallel_report;
  {
    LinkParams params;
    params.bandwidth_mb_per_s = 125.0;
    links.push_back(std::make_unique<NetLink>(&b.env, "lan.shared", params));
    NetLink* shared = links.back().get();
    std::vector<TapeDrive*> drives;
    for (int k = 0; k < 2; ++k) {
      TapeDrive* d =
          server.AddDrive("vtl" + std::to_string(unit), VtlTiming());
      media.push_back(
          std::make_unique<Tape>("net." + std::to_string(unit), 8ull * kGiB));
      d->LoadMedia(media.back().get());
      ++unit;
      drives.push_back(d);
    }
    ParallelRemoteImageBackupResult r;
    CountdownLatch done(&b.env, 1);
    b.env.Spawn(ParallelRemoteImageBackupJob(
        b.filer.get(), b.fs.get(), shared, &server, drives, ImageDumpOptions{},
        /*delete_snapshot_after=*/true, /*supervision=*/nullptr, &r, &done));
    b.env.Run();
    bench::Check(r.merged.status, "parallel remote physical backup");
    r.merged.name = "Remote Physical 2-way @ " + Mbps(125.0);
    parallel_report = r.merged;
  }

  bench::PrintBanner(
      "Network: link bandwidth vs. remote dump throughput",
      "OSDI'99 paper, Sections 2 and 6 (dump-stream portability)");
  std::printf("%-28s %10s %10s %10s %6s %8s %12s\n", "Operation", "Link",
              "Net MB/s", "Raw MB/s", "Eff.", "CPU", "Retransmits");
  double efficiency_1gbe = 0.0;
  double baseline_raw_1gbe = 0.0;
  for (const SweepRow& row : rows) {
    const double eff = row.report.NetMBps() / row.configured;
    if (row.configured == 125.0) {
      efficiency_1gbe = eff;
      baseline_raw_1gbe = RawMBps(row.report);
    }
    std::printf("%-28s %10s %10.2f %10.2f %5.0f%% %7.1f%% %12llu\n",
                row.report.name.c_str(), Mbps(row.configured).c_str(),
                row.report.NetMBps(), RawMBps(row.report), eff * 100.0,
                row.report.StreamCpuUtilization() * 100.0,
                static_cast<unsigned long long>(row.retransmits));
  }
  double ratio_raw_1gbe = 0.0;
  for (const SweepRow& row : ratio_rows) {
    // Wire efficiency: the link still paces post-stage bytes.
    const double eff = row.report.NetMBps() / row.configured;
    if (row.configured == 125.0) {
      ratio_raw_1gbe = RawMBps(row.report);
    }
    std::printf("%-28s %10s %10.2f %10.2f %5.0f%% %7.1f%% %12llu\n",
                row.report.name.c_str(), Mbps(row.configured).c_str(),
                row.report.NetMBps(), RawMBps(row.report), eff * 100.0,
                row.report.StreamCpuUtilization() * 100.0,
                static_cast<unsigned long long>(row.retransmits));
  }
  std::printf("%-28s %10s %10.2f %5.0f%% %7.1f%% %12llu\n",
              logical_report.name.c_str(), "125 MB/s",
              logical_report.NetMBps(), logical_report.NetMBps() / 1.25,
              logical_report.StreamCpuUtilization() * 100.0,
              static_cast<unsigned long long>(
                  logical_report.faults.link_retransmits));
  std::printf("%-28s %10s %10.2f %5.0f%% %7.1f%% %12llu\n",
              parallel_report.name.c_str(), "125 MB/s",
              parallel_report.NetMBps(), parallel_report.NetMBps() / 1.25,
              parallel_report.StreamCpuUtilization() * 100.0,
              static_cast<unsigned long long>(
                  parallel_report.faults.link_retransmits));

  const SimDuration us_per_block =
      FilerModel::F630()
          .cpu_cost_us[static_cast<int>(CpuCost::kPhysicalBlock)];
  const double cpu_ceiling_mbps =
      static_cast<double>(kBlockSize) / SimToSeconds(us_per_block) / 1e6;
  std::printf("\nF630 CPU ceiling for physical dumps: ~%.0f MB/s "
              "(22 us per 4 KB block)\n", cpu_ceiling_mbps);
  std::printf("\nShape checks:\n");
  std::printf("  1 GbE-class efficiency             : %.1f%% (must be >= 90%%)\n",
              efficiency_1gbe * 100.0);
  const SweepRow& fastest = rows.back();
  const bool cpu_bound =
      fastest.report.NetMBps() < 0.6 * fastest.configured &&
      fastest.report.StreamCpuUtilization() > 0.85;
  std::printf("  500 MB/s row CPU-bound crossover   : %s\n",
              cpu_bound ? "yes" : "NO");

  // Compression-axis gates: at 1 GbE (link-bound) ratio 2.0 must beat the
  // incompressible baseline in raw MB/s, and the stage CPU must pull the
  // link->CPU crossover down to a lower bandwidth.
  const double crossover_base = CrossoverBandwidth(rows, 1.0);
  const double crossover_r2 = CrossoverBandwidth(ratio_rows, 2.0);
  std::printf("  raw MB/s @ 1 GbE, ratio 2.0 vs 1.0 : %.1f vs %.1f "
              "(must gain)\n", ratio_raw_1gbe, baseline_raw_1gbe);
  std::printf("  crossover bandwidth, 2.0 vs 1.0    : %s vs %s "
              "(must shift down)\n", Mbps(crossover_r2).c_str(),
              Mbps(crossover_base).c_str());
  const bool compression_gains = ratio_raw_1gbe > baseline_raw_1gbe;
  const bool crossover_shifts = crossover_r2 < crossover_base;
  const bool ok = efficiency_1gbe >= 0.90 && cpu_bound &&
                  compression_gains && crossover_shifts;
  std::printf("RESULT: %s\n",
              ok ? "remote dump saturates the link up to the CPU ceiling; "
                   "compression helps only while the wire is the bottleneck"
                 : "SHAPE MISMATCH");

  if (!json_path.empty()) {
    std::vector<const JobReport*> reports;
    for (const SweepRow& row : rows) {
      reports.push_back(&row.report);
    }
    for (const SweepRow& row : ratio_rows) {
      reports.push_back(&row.report);
    }
    reports.push_back(&logical_report);
    reports.push_back(&parallel_report);
    bench::Check(bench::WriteBenchJson(json_path, "network", b, reports,
                                       {&sampler}),
                 "writing JSON report");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main(int argc, char** argv) {
  return bkup::Run(
      bkup::bench::JsonPathFromArgs(argc, argv, "BENCH_network.json"));
}

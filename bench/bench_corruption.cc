// §3/§4 robustness claim — "A logical backup is extremely resilient to
// minor corruption of the tape ... a minor tape corruption will usually
// affect only that single file", while a physical stream has no per-file
// containment.
//
// Writes one logical and one physical tape of the same data, damages both
// at the same offsets, and counts what each restore can still deliver.
#include <cstdio>

#include "bench/common.h"
#include "src/dump/logical_restore.h"
#include "src/image/image_dump.h"

namespace bkup {
namespace {

int Run() {
  bench::SetupOptions opts;
  opts.data_bytes = 48 * kMiB;
  opts.aged = false;
  bench::Bench b(opts);
  auto src_sums = ChecksumTree(b.fs->LiveReader()).value();

  LogicalBackupJobResult lback;
  CountdownLatch l1(&b.env, 1);
  b.env.Spawn(LogicalBackupJob(b.filer.get(), b.fs.get(), b.drives[0].get(),
                               LogicalDumpOptions{}, &lback, &l1));
  b.env.Run();
  bench::CheckStatus(lback.report.status, "logical backup");
  ImageBackupJobResult pback;
  CountdownLatch p1(&b.env, 1);
  b.env.Spawn(ImageBackupJob(b.filer.get(), b.fs.get(), b.drives[1].get(),
                             ImageDumpOptions{}, true, &pback, &p1));
  b.env.Run();
  bench::CheckStatus(pback.report.status, "physical backup");

  // Inject the same three 2 KB media defects into both tapes.
  for (Tape* tape : {b.tapes[0].get(), b.tapes[1].get()}) {
    const uint64_t size = tape->size();
    bench::CheckStatus(tape->CorruptRange(size / 4, 2048), "corrupt");
    bench::CheckStatus(tape->CorruptRange(size / 2, 2048), "corrupt");
    bench::CheckStatus(tape->CorruptRange(3 * size / 4, 2048), "corrupt");
  }

  // Logical restore: skips damaged records and salvages the rest.
  auto lvolume = b.FreshVolume("lrestore");
  auto lfs = std::move(Filesystem::Format(lvolume.get(), &b.env)).value();
  auto lrest = RunLogicalRestore(lfs.get(), b.tapes[0]->contents(),
                                 LogicalRestoreOptions{});
  bench::CheckStatus(lrest.status(), "logical restore of damaged tape");
  auto restored_sums = ChecksumTree(lfs->LiveReader()).value();
  uint64_t intact = 0;
  for (const auto& [path, crc] : src_sums) {
    auto it = restored_sums.find(path);
    intact += (it != restored_sums.end() && it->second == crc) ? 1 : 0;
  }

  // Physical restore: any damage dooms the stream.
  auto pvolume = b.FreshVolume("prestore");
  auto prest = RunImageRestore(pvolume.get(), b.tapes[1]->contents());

  bench::PrintBanner(
      "Corruption resilience: damaged tapes, logical vs physical",
      "OSDI'99 paper, Sections 3-4 (robustness discussion)");
  std::printf("source files                   : %zu\n", src_sums.size());
  std::printf("logical: files intact          : %llu (%.1f%%)\n",
              (unsigned long long)intact,
              100.0 * static_cast<double>(intact) /
                  static_cast<double>(src_sums.size()));
  std::printf("logical: records skipped       : %u (files lost: %u)\n",
              lrest->stats.corrupt_records_skipped,
              lrest->stats.files_lost_to_corruption);
  std::printf("physical: restore outcome      : %s\n",
              prest.ok() ? "unexpectedly succeeded"
                         : prest.status().ToString().c_str());

  const bool ok = !prest.ok() &&
                  intact >= src_sums.size() * 9 / 10 &&
                  intact < src_sums.size();
  std::printf("RESULT: %s\n",
              ok ? "logical loses only nearby files; physical restore is "
                   "all-or-nothing (matches the paper)"
                 : "SHAPE MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main() { return bkup::Run(); }

// Table 2 — "Basic Backup and Restore Performance".
//
// One DLT-7000 drive, a mature home volume. The paper's qualitative
// results, which this bench must (and does) reproduce:
//   * both backups run near tape speed, physical ~20% faster,
//   * physical restore is much faster than logical restore, because it
//     bypasses the file system and NVRAM.
#include <cstdio>

#include "bench/common.h"

namespace bkup {
namespace {

int Run(const std::string& json_path) {
  bench::SetupOptions opts;
  bench::Bench b(opts);
  std::printf("workload: %u files, %u dirs, %s of data (mature/aged)\n",
              b.workload.files, b.workload.directories,
              FormatSize(b.workload.bytes).c_str());

  bench::BenchSampler sampler(&b);
  bench::BasicSuite suite = bench::RunBasicSuite(&b);

  bench::PrintBanner("Table 2: Basic Backup and Restore Performance",
                     "OSDI'99 paper, Table 2 (Section 5.1)");
  bench::PrintSummaryHeader();
  bench::PrintSummaryRow(suite.logical_backup);
  bench::PrintSummaryRow(suite.logical_restore);
  bench::PrintSummaryRow(suite.physical_backup);
  bench::PrintSummaryRow(suite.physical_restore);

  std::printf(
      "\nPaper reference (188 GB home volume, DLT-7000):\n"
      "  Logical Backup   ~7.5 h  ~7.2 MB/s   Logical Restore   ~8 h  ~6.5 "
      "MB/s\n"
      "  Physical Backup  ~6.3 h  ~8.5 MB/s   Physical Restore  ~5.9 h ~9.0 "
      "MB/s\n");

  const double backup_edge =
      suite.physical_backup.MBps() / suite.logical_backup.MBps();
  const double restore_edge =
      suite.physical_restore.MBps() / suite.logical_restore.MBps();
  std::printf("\nShape checks:\n");
  std::printf("  physical/logical backup throughput : %.2fx (paper ~1.2x)\n",
              backup_edge);
  std::printf("  physical/logical restore throughput: %.2fx (paper ~1.4x)\n",
              restore_edge);
  const bool ok = backup_edge > 1.02 && backup_edge < 1.8 &&
                  restore_edge > 1.1 && restore_edge < 3.0;
  std::printf("RESULT: %s\n", ok ? "shape matches the paper"
                                 : "SHAPE MISMATCH");

  if (!json_path.empty()) {
    bench::Check(bench::WriteBenchJson(
                     json_path, "table2_basic", b,
                     {&suite.logical_backup, &suite.logical_restore,
                      &suite.physical_backup, &suite.physical_restore},
                     {&sampler}),
                 "writing JSON report");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main(int argc, char** argv) {
  return bkup::Run(
      bkup::bench::JsonPathFromArgs(argc, argv, "BENCH_table2_basic.json"));
}

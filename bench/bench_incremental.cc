// §4.1 — incremental dumps: logical (dumpdates + changed-since-base files)
// versus physical (snapshot bit-plane difference, Table 1's B − A).
//
// Sweeps the daily change rate and reports what each strategy moves for a
// level-1 incremental on top of a level-0 full dump. The paper's point:
// WAFL's copy-on-write bookkeeping makes incremental *image* dumps possible
// and cheap — they move only changed blocks, while logical incrementals
// re-dump every byte of every changed file.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/dump/dumpdates.h"
#include "src/util/random.h"

namespace bkup {
namespace {

struct Row {
  double churn;
  uint64_t logical_bytes;
  SimDuration logical_elapsed;
  uint64_t physical_bytes;
  SimDuration physical_elapsed;
};

// Overwrites a fraction of files in place (partial rewrites).
void Churn(Filesystem* fs, double fraction, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<std::string, uint64_t>> files;
  Status st = WalkTree(fs->LiveReader(), "/",
                       [&files](const std::string& path, Inum,
                                const InodeData& inode) {
                         if (inode.type == InodeType::kFile) {
                           files.emplace_back(path, inode.size);
                         }
                       });
  bench::CheckStatus(st, "walk");
  std::vector<uint8_t> patch(kBlockSize);
  for (const auto& [path, size] : files) {
    if (!rng.Chance(fraction)) {
      continue;
    }
    auto inum = fs->LookupPath(path);
    if (!inum.ok()) {
      continue;
    }
    // Rewrite ~one block of the file: a small change to a large file is
    // exactly where block-level incrementals shine.
    rng.Fill(patch);
    const uint64_t offset =
        size > kBlockSize ? rng.Below(size / kBlockSize) * kBlockSize : 0;
    bench::CheckStatus(fs->Write(*inum, offset, patch), "churn write");
  }
  bench::CheckStatus(fs->ConsistencyPoint().status(), "cp");
}

Row RunOne(double churn_fraction) {
  bench::SetupOptions opts;
  opts.data_bytes = 64 * kMiB;
  opts.quota_trees = 1;
  opts.aged = false;
  bench::Bench b(opts);
  DumpDates dumpdates;

  // Level 0 of both strategies.
  LogicalBackupJobResult l0;
  {
    CountdownLatch done(&b.env, 1);
    LogicalDumpOptions opt;
    opt.level = 0;
    opt.volume_name = "home";
    b.env.Spawn(LogicalBackupJob(b.filer.get(), b.fs.get(),
                                 b.drives[0].get(), opt, &l0, &done));
    b.env.Run();
    bench::CheckStatus(l0.report.status, "logical level 0");
    dumpdates.Record({"home", "/", 0, b.env.now(), b.fs->generation(), ""});
  }
  ImageBackupJobResult p0;
  {
    CountdownLatch done(&b.env, 1);
    ImageDumpOptions opt;
    opt.snapshot_name = "level0";
    b.env.Spawn(ImageBackupJob(b.filer.get(), b.fs.get(), b.drives[1].get(),
                               opt, /*delete_snapshot_after=*/false, &p0,
                               &done));
    b.env.Run();
    bench::CheckStatus(p0.report.status, "physical level 0");
  }

  Churn(b.fs.get(), churn_fraction, 42);

  // Level 1 incrementals.
  Row row{};
  row.churn = churn_fraction;
  {
    CountdownLatch done(&b.env, 1);
    LogicalDumpOptions opt;
    opt.level = 1;
    opt.volume_name = "home";
    auto base = dumpdates.BaseFor("home", "/", 1);
    bench::CheckStatus(base.status(), "dumpdates base");
    opt.base_time = base->dump_time;
    b.tapes[2]->Erase();
    b.drives[2]->LoadMedia(b.tapes[2].get());
    LogicalBackupJobResult l1;
    b.env.Spawn(LogicalBackupJob(b.filer.get(), b.fs.get(),
                                 b.drives[2].get(), opt, &l1, &done));
    b.env.Run();
    bench::CheckStatus(l1.report.status, "logical level 1");
    row.logical_bytes = l1.dump.stats.stream_bytes;
    row.logical_elapsed = l1.report.StreamElapsed();
  }
  {
    CountdownLatch done(&b.env, 1);
    ImageDumpOptions opt;
    opt.snapshot_name = "level1";
    opt.base_snapshot = "level0";
    b.tapes[3]->Erase();
    b.drives[3]->LoadMedia(b.tapes[3].get());
    ImageBackupJobResult p1;
    b.env.Spawn(ImageBackupJob(b.filer.get(), b.fs.get(), b.drives[3].get(),
                               opt, false, &p1, &done));
    b.env.Run();
    bench::CheckStatus(p1.report.status, "physical level 1");
    row.physical_bytes = p1.dump.stats.stream_bytes;
    row.physical_elapsed = p1.report.StreamElapsed();
  }
  return row;
}

int Run() {
  bench::PrintBanner(
      "Incremental dumps: logical (changed files) vs physical (B - A "
      "blocks)",
      "OSDI'99 paper, Section 4.1 and Table 1");
  std::printf("%10s %16s %14s %16s %14s %8s\n", "churn", "logical bytes",
              "logical time", "physical bytes", "physical time",
              "ratio");
  bool ok = true;
  for (const double churn : {0.01, 0.05, 0.20}) {
    const Row r = RunOne(churn);
    const double ratio = static_cast<double>(r.logical_bytes) /
                         static_cast<double>(r.physical_bytes);
    std::printf("%9.0f%% %16llu %14s %16llu %14s %7.2fx\n", churn * 100,
                (unsigned long long)r.logical_bytes,
                FormatDuration(r.logical_elapsed).c_str(),
                (unsigned long long)r.physical_bytes,
                FormatDuration(r.physical_elapsed).c_str(), ratio);
    // Logical incrementals re-dump whole changed files; physical moves only
    // changed blocks (plus meta-data churn), so logical moves more data at
    // every churn level here (one-block changes to multi-block files).
    ok &= r.logical_bytes > r.physical_bytes;
  }
  std::printf("\nRESULT: %s\n",
              ok ? "block-level incrementals move less data than file-level "
                   "(Section 4.1)"
                 : "SHAPE MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main() { return bkup::Run(); }

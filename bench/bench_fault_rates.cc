// Robustness economics: how a rising transient-error rate on the disk
// subsystem taxes logical vs physical backup when both run supervised
// (retry + exponential backoff, per src/backup/supervisor.h).
//
// The paper's §3/§4 robustness discussion is qualitative; this bench puts
// numbers on it: every disk in the volume fails each access with
// probability p, the jobs retry through it, and the table reports the
// throughput and the retry bill at p = 0%, 0.1% and 1%.
#include <cstdio>

#include "bench/common.h"
#include "src/backup/supervisor.h"
#include "src/faults/fault_injector.h"

namespace bkup {
namespace {

struct Row {
  double rate;
  double logical_mbps = 0;
  uint64_t logical_retries = 0;
  double image_mbps = 0;
  uint64_t image_retries = 0;
};

bench::SetupOptions Setup() {
  bench::SetupOptions opts;
  opts.data_bytes = 48 * kMiB;
  opts.aged = false;
  return opts;
}

// State kept alive past a measurement when the run feeds the JSON report:
// the bench owns the resources the sampler observed, so both must outlive
// WriteBenchJson.
struct KeptRun {
  std::unique_ptr<bench::Bench> bench;
  std::unique_ptr<bench::BenchSampler> sampler;
};

// Each measurement gets a fresh bench (and so a fresh deterministic access
// sequence) with every disk of the home volume armed at `rate`. With `keep`,
// the bench is retained (with a utilization sampler attached) for reporting.
JobReport RunLogical(double rate, KeptRun* keep = nullptr) {
  auto b = std::make_unique<bench::Bench>(Setup());
  FaultPlan plan;
  plan.DiskFlaky("", rate);
  FaultInjector injector(&b->env, plan);
  injector.Arm(b->home.get());
  std::unique_ptr<bench::BenchSampler> sampler;
  if (keep != nullptr) {
    sampler = std::make_unique<bench::BenchSampler>(b.get());
  }
  SupervisionPolicy policy;
  LogicalBackupJobResult r;
  CountdownLatch done(&b->env, 1);
  LogicalDumpOptions opt;
  opt.volume_name = "home";
  b->env.Spawn(SupervisedLogicalBackupJob(b->filer.get(), b->fs.get(),
                                          b->drives[0].get(), opt, &policy, &r,
                                          &done));
  b->env.Run();
  bench::CheckStatus(r.report.status, "supervised logical backup");
  r.report.name = "Logical Backup";
  if (keep != nullptr) {
    keep->sampler = std::move(sampler);
    keep->bench = std::move(b);
  }
  return r.report;
}

JobReport RunImage(double rate, KeptRun* keep = nullptr) {
  auto b = std::make_unique<bench::Bench>(Setup());
  FaultPlan plan;
  plan.DiskFlaky("", rate);
  FaultInjector injector(&b->env, plan);
  injector.Arm(b->home.get());
  std::unique_ptr<bench::BenchSampler> sampler;
  if (keep != nullptr) {
    sampler = std::make_unique<bench::BenchSampler>(b.get());
  }
  SupervisionPolicy policy;
  ImageBackupJobResult r;
  CountdownLatch done(&b->env, 1);
  b->env.Spawn(SupervisedImageBackupJob(b->filer.get(), b->fs.get(),
                                        b->drives[1].get(), ImageDumpOptions{},
                                        /*delete_snapshot_after=*/true,
                                        &policy, &r, &done));
  b->env.Run();
  bench::CheckStatus(r.report.status, "supervised physical backup");
  r.report.name = "Physical Backup";
  if (keep != nullptr) {
    keep->sampler = std::move(sampler);
    keep->bench = std::move(b);
  }
  return r.report;
}

std::string RateTag(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), " @%.2f%%", rate * 100.0);
  return buf;
}

int Run(const std::string& json_path) {
  const double kRates[] = {0.0, 0.001, 0.01};
  Row rows[3];
  std::vector<JobReport> reports;
  // The highest-rate runs are the interesting timelines; keep them (bench +
  // utilization samplers) for the JSON report.
  KeptRun kept_logical;
  KeptRun kept_image;
  for (int i = 0; i < 3; ++i) {
    const bool keep = !json_path.empty() && i == 2;
    rows[i].rate = kRates[i];
    JobReport logical = RunLogical(kRates[i], keep ? &kept_logical : nullptr);
    rows[i].logical_mbps = logical.MBps();
    rows[i].logical_retries = logical.faults.disk_retries;
    JobReport image = RunImage(kRates[i], keep ? &kept_image : nullptr);
    rows[i].image_mbps = image.MBps();
    rows[i].image_retries = image.faults.disk_retries;
    logical.name += RateTag(kRates[i]);
    image.name += RateTag(kRates[i]);
    reports.push_back(std::move(logical));
    reports.push_back(std::move(image));
  }

  bench::PrintBanner(
      "Transient disk error rate vs supervised backup throughput",
      "OSDI'99 paper, Sections 3-4 (robustness discussion), quantified");
  std::printf("%-12s %14s %16s %14s %16s\n", "error rate", "logical MB/s",
              "logical retries", "image MB/s", "image retries");
  for (const Row& row : rows) {
    std::printf("%10.2f%% %14.2f %16llu %14.2f %16llu\n", row.rate * 100.0,
                row.logical_mbps, (unsigned long long)row.logical_retries,
                row.image_mbps, (unsigned long long)row.image_retries);
  }

  // Logical dump's disk path sits on the critical path, so its throughput
  // pays for every backoff; the image dump is tape-bound and absorbs disk
  // retries behind the streaming drive.
  const bool ok = rows[0].logical_retries == 0 && rows[0].image_retries == 0 &&
                  rows[2].logical_retries > 0 && rows[2].image_retries > 0 &&
                  rows[1].logical_retries <= rows[2].logical_retries &&
                  rows[1].image_retries <= rows[2].image_retries &&
                  rows[2].logical_mbps < rows[0].logical_mbps &&
                  rows[2].image_mbps <= rows[0].image_mbps * 1.001;
  std::printf("RESULT: %s\n",
              ok ? "both strategies absorb transient errors; the retry bill "
                   "grows with the error rate and only the disk-bound "
                   "logical dump slows down"
                 : "SHAPE MISMATCH");

  if (!json_path.empty()) {
    std::vector<const JobReport*> report_ptrs;
    for (const JobReport& r : reports) {
      report_ptrs.push_back(&r);
    }
    bench::Check(
        bench::WriteBenchJson(
            json_path, "fault_rates", *kept_logical.bench, report_ptrs,
            {kept_logical.sampler.get(), kept_image.sampler.get()}),
        "writing JSON report");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main(int argc, char** argv) {
  return bkup::Run(
      bkup::bench::JsonPathFromArgs(argc, argv, "BENCH_fault_rates.json"));
}

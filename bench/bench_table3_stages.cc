// Table 3 — "Dump and Restore Details": per-stage elapsed time and CPU
// utilization for all four operations.
//
// Shape targets from the paper:
//   * logical dump: snapshot ~30 s @50%, mapping + directories at modest
//     CPU, files phase ~25% CPU; snapshot delete ~35 s @50%;
//   * physical dump: a single "dumping blocks" stage at ~5% CPU;
//   * logical restore: creating files ~30%, filling data ~40%;
//   * physical restore: "restoring blocks" at ~11% CPU;
//   * logical dump consumes ~5x the CPU of physical; logical restore >3x
//     the CPU of physical restore.
#include <cstdio>

#include "bench/common.h"

namespace bkup {
namespace {

double StreamCpu(const JobReport& r, JobPhase p) {
  return r.phase(p).CpuUtilization();
}

int Run() {
  bench::SetupOptions opts;
  bench::Bench b(opts);
  bench::BasicSuite suite = bench::RunBasicSuite(&b);

  bench::PrintBanner("Table 3: Dump and Restore Details",
                     "OSDI'99 paper, Table 3 (Section 5.1)");
  std::printf("\nLogical Dump\n");
  bench::PrintAllPhases(suite.logical_backup);
  std::printf("\nLogical Restore\n");
  bench::PrintAllPhases(suite.logical_restore);
  std::printf("\nPhysical Dump\n");
  bench::PrintAllPhases(suite.physical_backup);
  std::printf("\nPhysical Restore\n");
  bench::PrintAllPhases(suite.physical_restore);

  std::printf(
      "\nPaper reference (Table 3):\n"
      "  Logical Dump:    snapshot 30s@50%%, mapping 20min@30%%, dirs "
      "20min@20%%, files 6.75h@25%%, delete 35s@50%%\n"
      "  Logical Restore: creating files 2h@30%%, filling data 6h@40%%\n"
      "  Physical Dump:   snapshot 30s@50%%, blocks 6.2h@5%%, delete "
      "35s@50%%\n"
      "  Physical Restore: blocks 5.9h@11%%\n");

  const double ldump = StreamCpu(suite.logical_backup, JobPhase::kDumpFiles);
  const double pdump =
      StreamCpu(suite.physical_backup, JobPhase::kDumpBlocks);
  const double lrest = StreamCpu(suite.logical_restore, JobPhase::kFillData);
  const double prest =
      StreamCpu(suite.physical_restore, JobPhase::kRestoreBlocks);
  std::printf("\nShape checks:\n");
  std::printf("  logical dump CPU / physical dump CPU      : %.1fx "
              "(paper ~5x)\n", ldump / pdump);
  std::printf("  logical restore CPU / physical restore CPU: %.1fx "
              "(paper >3x)\n", lrest / prest);
  const bool ok = ldump / pdump > 3.0 && lrest / prest > 2.0 &&
                  pdump < 0.12 && ldump > 0.12 && ldump < 0.6;
  std::printf("RESULT: %s\n", ok ? "shape matches the paper"
                                 : "SHAPE MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main() { return bkup::Run(); }

// Shared setup for the paper-reproduction benchmarks.
//
// Every bench simulates the paper's testbed "eliot", a NetApp F630 (§5):
// 500 MHz Alpha, FC-AL disks in RAID groups, DLT-7000 drives on dedicated
// adapters. The `home` volume keeps the paper's shape — 3 RAID groups,
// ~31 drives — with scaled-down drive capacity so a run finishes in
// seconds; throughput (MB/s, GB/h) and utilization are steady-state
// quantities and do not depend on the scale factor. Reports also project
// elapsed time to the paper's 188 GB to ease side-by-side reading.
#ifndef BKUP_BENCH_COMMON_H_
#define BKUP_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/backup/jobs.h"
#include "src/backup/parallel.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/utilization.h"
#include "src/workload/aging.h"
#include "src/workload/population.h"

namespace bkup {
namespace bench {

inline constexpr double kPaperHomeGB = 188.0;  // the paper's home volume

struct SetupOptions {
  uint64_t data_bytes = 96 * kMiB;
  uint32_t quota_trees = 4;
  bool aged = true;  // "mature" data set, per the paper's footnote 1
  uint32_t num_tapes = 4;
  size_t num_raid_groups = 3;
  size_t disks_per_group = 10;      // ~31 drives, as on eliot
  uint64_t blocks_per_disk = 2048;  // scaled capacity: 8 MiB per drive
  DiskTiming disk_timing;           // per-spindle model (paper-era default)
  uint64_t seed = 1999;
};

struct Bench {
  explicit Bench(const SetupOptions& options) : opts(options) {
    VolumeGeometry geom;
    geom.num_raid_groups = options.num_raid_groups;
    geom.disks_per_group = options.disks_per_group;
    geom.blocks_per_disk = options.blocks_per_disk;
    geom.disk_timing = options.disk_timing;
    home = Volume::Create(&env, "home", geom);
    filer = std::make_unique<Filer>(&env, FilerModel::F630());
    fs = std::move(Filesystem::Format(home.get(), &env)).value();

    WorkloadParams params;
    params.seed = options.seed;
    params.target_bytes = options.data_bytes;
    params.quota_trees = options.quota_trees;
    workload = std::move(PopulateFilesystem(fs.get(), params)).value();
    if (options.aged) {
      AgingParams aging;
      aging.seed = options.seed + 1;
      aging.rounds = 3;
      aging.churn_fraction = 0.3;
      Result<AgingStats> aged_stats = AgeFilesystem(fs.get(), aging);
      if (!aged_stats.ok()) {
        std::fprintf(stderr, "aging failed: %s\n",
                     aged_stats.status().ToString().c_str());
        std::abort();
      }
    }
    for (uint32_t i = 0; i < options.num_tapes; ++i) {
      tapes.push_back(
          std::make_unique<Tape>("tape" + std::to_string(i), 8ull * kGiB));
      drives.push_back(std::make_unique<TapeDrive>(
          &env, "dlt" + std::to_string(i)));
      drives.back()->LoadMedia(tapes.back().get());
    }
  }

  // A fresh volume with the same geometry, for restores.
  std::unique_ptr<Volume> FreshVolume(const std::string& name) {
    return Volume::Create(&env, name, home->geometry());
  }

  void RewindAll() {
    for (auto& d : drives) {
      d->Rewind();
    }
  }

  std::vector<TapeDrive*> DrivePtrs(uint32_t n) {
    std::vector<TapeDrive*> out;
    for (uint32_t i = 0; i < n; ++i) {
      out.push_back(drives[i].get());
    }
    return out;
  }

  SetupOptions opts;
  SimEnvironment env;
  std::unique_ptr<Filer> filer;
  std::unique_ptr<Volume> home;
  std::unique_ptr<Filesystem> fs;
  std::vector<std::unique_ptr<Tape>> tapes;
  std::vector<std::unique_ptr<TapeDrive>> drives;
  WorkloadStats workload;
};

// ------------------------------------------------------------- reporting ---

inline void PrintBanner(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

inline void PrintSummaryHeader() {
  std::printf("%-24s %12s %10s %10s %14s\n", "Operation", "Elapsed", "MB/s",
              "GB/h", "@188GB (proj.)");
}

// Prints a Table-2 style row plus the elapsed time this throughput would
// give on the paper's 188 GB volume.
inline void PrintSummaryRow(const JobReport& report) {
  const double mbps = report.MBps();
  const double hours_188 =
      mbps > 0 ? (kPaperHomeGB * 1e3 / mbps +
                  SimToSeconds(report.SnapshotOverhead())) / 3600.0
               : 0.0;
  std::printf("%-24s %12s %10.2f %10.1f %11.1f h\n", report.name.c_str(),
              FormatDuration(report.elapsed()).c_str(), mbps, report.GBph(),
              hours_188);
}

inline void PrintPhaseHeader() {
  std::printf("  %-34s %14s %8s %10s %10s\n", "Stage", "Time spent",
              "CPU", "Disk MB/s", "Tape MB/s");
}

inline void PrintPhaseRow(const PhaseStats& p, JobPhase phase) {
  if (!p.active() || p.elapsed() <= 0) {
    return;
  }
  std::printf("  %-34s %14s %7.1f%% %10.2f %10.2f\n", JobPhaseName(phase),
              FormatDuration(p.elapsed()).c_str(),
              p.CpuUtilization() * 100.0, p.DiskMBps(), p.TapeMBps());
}

inline void PrintAllPhases(const JobReport& report) {
  PrintPhaseHeader();
  for (int i = 0; i < static_cast<int>(JobPhase::kCount); ++i) {
    PrintPhaseRow(report.phases[i], static_cast<JobPhase>(i));
  }
}

// Runs the paper's basic single-tape suite (Tables 2 and 3): logical
// backup, logical restore, physical backup, physical restore, one DLT
// drive each, on the bench's mature home volume.
struct BasicSuite {
  JobReport logical_backup;
  JobReport logical_restore;
  JobReport physical_backup;
  JobReport physical_restore;
};

inline void CheckStatus(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

inline BasicSuite RunBasicSuite(Bench* b) {
  BasicSuite suite;

  // Logical backup to one tape.
  {
    LogicalBackupJobResult r;
    CountdownLatch done(&b->env, 1);
    LogicalDumpOptions opt;
    opt.volume_name = "home";
    b->env.Spawn(LogicalBackupJob(b->filer.get(), b->fs.get(),
                                  b->drives[0].get(), opt, &r, &done));
    b->env.Run();
    CheckStatus(r.report.status, "logical backup");
    r.report.name = "Logical Backup";
    suite.logical_backup = r.report;
  }
  // Logical restore onto a fresh file system.
  {
    auto volume = b->FreshVolume("lrestore");
    auto fs = std::move(Filesystem::Format(volume.get(), &b->env)).value();
    b->drives[0]->Rewind();
    LogicalRestoreJobResult r;
    CountdownLatch done(&b->env, 1);
    b->env.Spawn(LogicalRestoreJob(b->filer.get(), fs.get(),
                                   b->drives[0].get(),
                                   LogicalRestoreOptions{}, false, &r,
                                   &done));
    b->env.Run();
    CheckStatus(r.report.status, "logical restore");
    r.report.name = "Logical Restore";
    suite.logical_restore = r.report;
  }
  // Physical backup to one tape.
  {
    ImageBackupJobResult r;
    CountdownLatch done(&b->env, 1);
    b->env.Spawn(ImageBackupJob(b->filer.get(), b->fs.get(),
                                b->drives[1].get(), ImageDumpOptions{},
                                /*delete_snapshot_after=*/true, &r, &done));
    b->env.Run();
    CheckStatus(r.report.status, "physical backup");
    r.report.name = "Physical Backup";
    suite.physical_backup = r.report;
  }
  // Physical restore onto a fresh volume.
  {
    auto volume = b->FreshVolume("prestore");
    b->drives[1]->Rewind();
    ImageRestoreJobResult r;
    CountdownLatch done(&b->env, 1);
    b->env.Spawn(ImageRestoreJob(b->filer.get(), volume.get(),
                                 b->drives[1].get(), &r, &done));
    b->env.Run();
    CheckStatus(r.report.status, "physical restore");
    r.report.name = "Physical Restore";
    suite.physical_restore = r.report;
  }
  return suite;
}

inline void Check(const Status& status, const char* what) {
  CheckStatus(status, what);
}

// --------------------------------------------------------- observability ---

// Windowed utilization sampling over every simulated resource of a bench:
// the filer CPU, every disk arm (data and parity, all groups) and every tape
// drive unit. Construct after the Bench and before running jobs; destroy (or
// at least keep alive) until after WriteBenchJson.
class BenchSampler {
 public:
  explicit BenchSampler(Bench* b, SimDuration window = 1 * kSecond)
      : bench_(b), window_(window) {
    Attach(&b->filer->cpu());
    for (const auto& d : b->home->disks()) {
      Attach(&d->arm());
    }
    for (const auto& drive : b->drives) {
      Attach(&drive->unit());
    }
  }

  void Attach(Resource* res) {
    samplers_.push_back(std::make_unique<UtilizationSampler>(res, window_));
  }

  // Flushes the trailing partial window on every sampler; idempotent.
  void Finish() {
    if (finished_) {
      return;
    }
    for (auto& s : samplers_) {
      s->Finish(bench_->env.now());
    }
    finished_ = true;
  }

  const std::vector<std::unique_ptr<UtilizationSampler>>& samplers() const {
    return samplers_;
  }

 private:
  Bench* bench_;
  SimDuration window_;
  bool finished_ = false;
  std::vector<std::unique_ptr<UtilizationSampler>> samplers_;
};

// Writes a structured BENCH_*.json report: bench configuration, every job
// report (summary, faults, per-phase stats), windowed utilization series for
// every resource, and a snapshot of the process-wide metrics registry.
// `extra`, when set, is called with the writer just before the object closes
// so a bench can append its own top-level sections (the report contract's
// required keys are unaffected).
inline Status WriteBenchJson(
    const std::string& path, const std::string& bench_name, const Bench& b,
    const std::vector<const JobReport*>& reports,
    const std::vector<BenchSampler*>& samplers,
    const std::function<void(JsonWriter*)>& extra = {}) {
  JsonWriter w;
  w.BeginObject();
  w.Field("bench", bench_name);
  w.Field("sim_elapsed_s", SimToSeconds(b.env.now()));
  w.Key("config")
      .BeginObject()
      .Field("data_bytes", b.opts.data_bytes)
      .Field("quota_trees", static_cast<uint64_t>(b.opts.quota_trees))
      .Field("aged", b.opts.aged)
      .Field("num_tapes", static_cast<uint64_t>(b.opts.num_tapes))
      .Field("raid_groups", static_cast<uint64_t>(b.opts.num_raid_groups))
      .Field("disks_per_group", static_cast<uint64_t>(b.opts.disks_per_group))
      .Field("blocks_per_disk", b.opts.blocks_per_disk)
      .Field("seed", b.opts.seed)
      .EndObject();
  w.Key("jobs").BeginArray();
  for (const JobReport* r : reports) {
    r->WriteJson(&w);
  }
  w.EndArray();
  w.Key("utilization").BeginArray();
  for (BenchSampler* sampler : samplers) {
    sampler->Finish();
    for (const auto& s : sampler->samplers()) {
      s->WriteJson(&w);
    }
  }
  w.EndArray();
  w.Key("metrics");
  MetricsRegistry::Default().WriteJson(&w);
  if (extra) {
    extra(&w);
  }
  w.EndObject();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return IoError("cannot open '" + path + "' for writing");
  }
  const std::string json = w.Take();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return IoError("short write to '" + path + "'");
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), json.size());
  return Status::Ok();
}

// Parses an optional "--json[=path]" argument; returns the empty string when
// the flag is absent (no report requested).
inline std::string JsonPathFromArgs(int argc, char** argv,
                                    const std::string& default_path) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      return default_path;
    }
    if (arg.rfind("--json=", 0) == 0) {
      const std::string path = arg.substr(7);
      return path.empty() ? default_path : path;
    }
  }
  return {};
}

}  // namespace bench
}  // namespace bkup

#endif  // BKUP_BENCH_COMMON_H_

// Live foreground load vs. a running backup (DESIGN.md §15): how much does
// a dump hurt the filer's NFS service, and how much of that hurt does the
// backup QoS knob (token-bucket throttle + background I/O class) buy back?
//
// Seven deterministic cells, each on a fresh identically-seeded testbed:
//
//   baseline            foreground load only (the no-backup latency floor)
//   solo_logical/image  the dump alone (the elongation denominator)
//   logical/image x {unthrottled, throttled}
//                       load + concurrent dump, default QoS vs. a stream
//                       cap + background priority
//
// The tape is deliberately fast (80 MB/s) so the unthrottled dump is
// disk-bound and competes head-on with foreground arms; throttled cells cap
// the stream at 6 MB/s and demote every dump charge to the background
// class. Gates (exit non-zero): the unthrottled dumps must show measurable
// foreground interference, the throttled dumps must hold foreground p99
// within 2x the no-backup baseline while still completing, and throttling
// must actually elongate the dump (the cost side of the trade).
// `--json[=path]` writes BENCH_interference.json with an "interference"
// section carrying per-cell foreground percentiles and the derived ratios.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/sim/throttle.h"
#include "src/workload/foreground.h"

namespace bkup {
namespace {

// Foreground latency gates.
constexpr double kMaxThrottledP99Ratio = 2.0;   // QoS promise
constexpr double kMinInterferenceRatio = 1.15;  // unthrottled must hurt
// The throttled dump must pay visibly for the relief.
constexpr double kMinElongation = 1.05;

constexpr double kThrottleMBps = 6.0;
constexpr SimDuration kDumpStart = 5 * kSecond;
constexpr SimDuration kFgWindow = 60 * kSecond;

bench::SetupOptions InterferenceSetup() {
  bench::SetupOptions opts;
  opts.data_bytes = 80 * kMiB;
  opts.quota_trees = 4;
  opts.num_tapes = 1;
  opts.num_raid_groups = 2;
  opts.disks_per_group = 6;
  opts.blocks_per_disk = 4096;  // 2 x 6 x 16 MiB = 192 MiB space
  return opts;
}

// F630 with interactive-scale snapshot bookkeeping, so the measurement
// window is dominated by the stream phase rather than 30 s snapshot waits.
FilerModel InteractiveModel() {
  FilerModel model = FilerModel::F630();
  model.snapshot_create_time = 5 * kSecond;
  model.snapshot_delete_time = 5 * kSecond;
  return model;
}

ForegroundParams FgParams() {
  ForegroundParams fp;
  fp.seed = 2026;
  fp.num_clients = 8;
  fp.duration = kFgWindow;
  fp.flush_interval = 5 * kSecond;
  return fp;
}

enum class DumpMode { kNone, kLogical, kImage };

struct CellSpec {
  const char* name;
  bool foreground;
  DumpMode mode;
  bool throttled;
};

struct CellOut {
  std::string name;
  bool has_fg = false;
  LatencySummary fg;
  // Foreground ops issued while the dump was running — the interference
  // score proper (whole-run percentiles dilute a short dump's impact).
  LatencySummary fg_during_dump;
  ForegroundStats fg_stats;
  bool has_dump = false;
  JobReport dump;
  // Kept alive so the JSON writer can sample config/utilization off the
  // representative cell after all cells ran.
  std::unique_ptr<bench::Bench> bench;
  std::unique_ptr<bench::BenchSampler> sampler;
};

Task DelayedDump(bench::Bench* b, DumpMode mode, BackupQos qos,
                 JobReport* out, CountdownLatch* done) {
  co_await b->env.Delay(kDumpStart);
  CountdownLatch inner(&b->env, 1);
  if (mode == DumpMode::kLogical) {
    auto result = std::make_unique<LogicalBackupJobResult>();
    LogicalDumpOptions opt;
    opt.volume_name = "home";
    b->env.Spawn(LogicalBackupJob(b->filer.get(), b->fs.get(),
                                  b->drives[0].get(), opt, result.get(),
                                  &inner, {}, nullptr, qos));
    co_await inner.Wait();
    *out = result->report;
  } else {
    auto result = std::make_unique<ImageBackupJobResult>();
    b->env.Spawn(ImageBackupJob(b->filer.get(), b->fs.get(),
                                b->drives[0].get(), ImageDumpOptions{},
                                /*delete_snapshot_after=*/true, result.get(),
                                &inner, {}, nullptr, qos));
    co_await inner.Wait();
    *out = result->report;
  }
  done->CountDown();
}

CellOut RunCell(const CellSpec& spec) {
  // Fresh registry per cell so the final report's metrics snapshot is not a
  // sum over unrelated cells. Handles are re-resolved by the new Bench.
  MetricsRegistry::Default().Clear();

  CellOut out;
  out.name = spec.name;
  out.bench = std::make_unique<bench::Bench>(InterferenceSetup());
  bench::Bench* b = out.bench.get();
  // Swap in the interactive filer model before anything resolves handles.
  b->filer = std::make_unique<Filer>(&b->env, InteractiveModel());
  // Fast tape: the unthrottled dump must be disk-bound, not tape-bound.
  TapeTiming fast;
  fast.stream_mb_per_s = 80.0;
  b->drives[0] = std::make_unique<TapeDrive>(&b->env, "dlt0", fast);
  b->drives[0]->LoadMedia(b->tapes[0].get());
  out.sampler = std::make_unique<bench::BenchSampler>(b);

  std::unique_ptr<BackupThrottle> throttle;
  BackupQos qos;
  if (spec.throttled) {
    throttle = std::make_unique<BackupThrottle>(&b->env, kThrottleMBps * 1e6);
    qos.throttle = throttle.get();
    qos.io_priority = kPriorityBackground;
  }

  auto load = std::make_unique<ForegroundLoad>(b->filer.get(), b->fs.get(),
                                               FgParams());
  const int jobs = (spec.foreground ? 1 : 0) + (spec.mode != DumpMode::kNone);
  CountdownLatch done(&b->env, jobs);
  if (spec.foreground) {
    b->env.Spawn(load->Run(&done));
  }
  if (spec.mode != DumpMode::kNone) {
    out.has_dump = true;
    b->env.Spawn(DelayedDump(b, spec.mode, qos, &out.dump, &done));
  }
  b->env.Run();

  if (out.has_dump) {
    bench::CheckStatus(out.dump.status, spec.name);
    out.dump.name = spec.name;
  }
  if (spec.foreground) {
    out.has_fg = true;
    out.fg = load->Summarize();
    if (out.has_dump) {
      out.fg_during_dump = load->SummarizeBetween(
          kDumpStart, kDumpStart + out.dump.elapsed());
    }
    out.fg_stats = load->stats();
    if (out.fg_stats.errors != 0) {
      std::fprintf(stderr, "FATAL: %s: %llu foreground errors\n", spec.name,
                   static_cast<unsigned long long>(out.fg_stats.errors));
      std::abort();
    }
  }
  return out;
}

void WriteCellJson(JsonWriter* w, const CellOut& c, double baseline_p99,
                   double solo_elapsed_s) {
  w->BeginObject();
  w->Field("cell", c.name);
  if (c.has_fg) {
    w->Key("foreground")
        .BeginObject()
        .Field("ops", c.fg_stats.total_ops())
        .Field("errors", c.fg_stats.errors)
        .Field("bytes_read", c.fg_stats.bytes_read)
        .Field("bytes_written", c.fg_stats.bytes_written)
        .Field("mean_us", c.fg.mean_us)
        .Field("p50_us", c.fg.p50_us)
        .Field("p95_us", c.fg.p95_us)
        .Field("p99_us", c.fg.p99_us)
        .Field("max_us", c.fg.max_us)
        .EndObject();
    if (baseline_p99 > 0) {
      w->Field("fg_p99_vs_baseline", c.fg.p99_us / baseline_p99);
    }
    if (c.has_dump) {
      w->Key("foreground_during_dump")
          .BeginObject()
          .Field("ops", c.fg_during_dump.count)
          .Field("mean_us", c.fg_during_dump.mean_us)
          .Field("p50_us", c.fg_during_dump.p50_us)
          .Field("p95_us", c.fg_during_dump.p95_us)
          .Field("p99_us", c.fg_during_dump.p99_us)
          .Field("max_us", c.fg_during_dump.max_us)
          .EndObject();
      if (baseline_p99 > 0) {
        w->Field("fg_during_dump_p99_vs_baseline",
                 c.fg_during_dump.p99_us / baseline_p99);
      }
    }
  }
  if (c.has_dump) {
    w->Field("dump_elapsed_s", SimToSeconds(c.dump.elapsed()));
    w->Field("dump_mbps", c.dump.MBps());
    if (solo_elapsed_s > 0) {
      w->Field("dump_elongation_vs_solo",
               SimToSeconds(c.dump.elapsed()) / solo_elapsed_s);
    }
  }
  w->EndObject();
}

int Run(int argc, char** argv) {
  bench::PrintBanner(
      "Foreground interference under live backup (QoS sweep)",
      "section 5 'live file service' + DESIGN.md section 15");

  const CellSpec specs[] = {
      {"baseline", true, DumpMode::kNone, false},
      {"solo_logical", false, DumpMode::kLogical, false},
      {"solo_image", false, DumpMode::kImage, false},
      {"logical_unthrottled", true, DumpMode::kLogical, false},
      {"logical_throttled", true, DumpMode::kLogical, true},
      {"image_unthrottled", true, DumpMode::kImage, false},
      {"image_throttled", true, DumpMode::kImage, true},
  };
  std::vector<CellOut> cells;
  for (const CellSpec& spec : specs) {
    std::printf("running cell %-20s ...\n", spec.name);
    cells.push_back(RunCell(spec));
  }
  const CellOut& baseline = cells[0];
  const CellOut& solo_logical = cells[1];
  const CellOut& solo_image = cells[2];

  auto solo_for = [&](const CellOut& c) -> const CellOut& {
    return c.name.find("logical") != std::string::npos ? solo_logical
                                                       : solo_image;
  };

  std::printf("\n%-22s %10s %10s %12s %12s %12s\n", "Cell", "fg p50",
              "fg p99", "dump p99", "dp99/base", "dump elong");
  for (const CellOut& c : cells) {
    std::string ratio = "-", elong = "-", dp99 = "-";
    char buf[32];
    if (c.has_fg && c.has_dump) {
      std::snprintf(buf, sizeof buf, "%.0fus", c.fg_during_dump.p99_us);
      dp99 = buf;
      std::snprintf(buf, sizeof buf, "%.2fx",
                    c.fg_during_dump.p99_us / baseline.fg.p99_us);
      ratio = buf;
      std::snprintf(buf, sizeof buf, "%.2fx",
                    SimToSeconds(c.dump.elapsed()) /
                        SimToSeconds(solo_for(c).dump.elapsed()));
      elong = buf;
    }
    std::printf("%-22s %9.0fus %9.0fus %12s %12s %12s\n", c.name.c_str(),
                c.has_fg ? c.fg.p50_us : 0.0, c.has_fg ? c.fg.p99_us : 0.0,
                dp99.c_str(), ratio.c_str(), elong.c_str());
  }

  // ------------------------------------------------------------- gates ---
  bool ok = true;
  auto gate = [&](bool cond, const std::string& what) {
    std::printf("%s  %s\n", cond ? "PASS" : "FAIL", what.c_str());
    ok = ok && cond;
  };
  char buf[160];
  for (size_t i = 3; i < cells.size(); ++i) {
    const CellOut& c = cells[i];
    const double ratio = c.fg_during_dump.p99_us / baseline.fg.p99_us;
    if (c.name.find("unthrottled") != std::string::npos) {
      std::snprintf(
          buf, sizeof buf,
          "%s: during-dump fg p99 %.2fx baseline (>= %.2fx: interference is real)",
          c.name.c_str(), ratio, kMinInterferenceRatio);
      gate(ratio >= kMinInterferenceRatio, buf);
    } else {
      std::snprintf(buf, sizeof buf,
                    "%s: during-dump fg p99 %.2fx baseline (<= %.2fx: QoS holds)",
                    c.name.c_str(), ratio, kMaxThrottledP99Ratio);
      gate(ratio <= kMaxThrottledP99Ratio, buf);
      const double elong = SimToSeconds(c.dump.elapsed()) /
                           SimToSeconds(solo_for(c).dump.elapsed());
      std::snprintf(buf, sizeof buf,
                    "%s: dump elongation %.2fx solo (>= %.2fx: cap binds)",
                    c.name.c_str(), elong, kMinElongation);
      gate(elong >= kMinElongation, buf);
    }
    // A throttled or contended dump must still finish inside the window's
    // order of magnitude — completion was already enforced by CheckStatus.
  }
  // Relief must be real: throttled beats unthrottled on fg p99, both modes.
  for (const char* mode : {"logical", "image"}) {
    const CellOut* un = nullptr;
    const CellOut* th = nullptr;
    for (const CellOut& c : cells) {
      if (c.name == std::string(mode) + "_unthrottled") un = &c;
      if (c.name == std::string(mode) + "_throttled") th = &c;
    }
    std::snprintf(buf, sizeof buf,
                  "%s: throttled during-dump fg p99 %.0fus <= unthrottled %.0fus",
                  mode, th->fg_during_dump.p99_us, un->fg_during_dump.p99_us);
    gate(th->fg_during_dump.p99_us <= un->fg_during_dump.p99_us, buf);
  }

  const std::string json_path =
      bench::JsonPathFromArgs(argc, argv, "BENCH_interference.json");
  if (!json_path.empty()) {
    // Representative cell for config/utilization: the throttled logical
    // dump, the cell the QoS story is about.
    const CellOut& rep = cells[4];
    std::vector<const JobReport*> reports;
    for (const CellOut& c : cells) {
      if (c.has_dump) {
        reports.push_back(&c.dump);
      }
    }
    const Status st = bench::WriteBenchJson(
        json_path, "interference", *rep.bench, reports, {rep.sampler.get()},
        [&](JsonWriter* w) {
          w->Key("interference").BeginArray();
          for (const CellOut& c : cells) {
            WriteCellJson(w, c, baseline.fg.p99_us,
                          c.has_dump && c.has_fg
                              ? SimToSeconds(solo_for(c).dump.elapsed())
                              : 0.0);
          }
          w->EndArray();
        });
    bench::CheckStatus(st, "write json");
  }

  std::printf("\n%s\n", ok ? "ALL GATES PASS" : "GATE FAILURES");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main(int argc, char** argv) { return bkup::Run(argc, argv); }

// Shared driver for Tables 4 and 5: parallel backup and restore on N tape
// drives.
//
// Logical parallelism follows the paper exactly: the home volume is split
// into N equal quota trees dumped concurrently (dump's strictly linear
// format cannot stripe one dump over drives). Physical parallelism stripes
// the block set across N drives from one shared snapshot.
#ifndef BKUP_BENCH_PARALLEL_SUITE_H_
#define BKUP_BENCH_PARALLEL_SUITE_H_

#include <cstdio>

#include "bench/common.h"

namespace bkup {
namespace bench {

struct ParallelSuite {
  JobReport logical_backup;
  JobReport logical_restore;
  JobReport physical_backup;
  JobReport physical_restore;
  uint32_t ntapes = 0;
};

inline ParallelSuite RunParallelSuite(uint32_t ntapes, uint64_t data_bytes) {
  SetupOptions opts;
  opts.data_bytes = data_bytes;
  opts.quota_trees = ntapes;
  opts.num_tapes = ntapes;
  Bench b(opts);
  ParallelSuite suite;
  suite.ntapes = ntapes;

  std::vector<std::string> subtrees;
  for (uint32_t k = 0; k < ntapes; ++k) {
    subtrees.push_back(ntapes == 1 ? "/" : QuotaTreePath(k));
  }

  // ---- Parallel logical backup: one dump job per quota tree. ----
  {
    ParallelLogicalBackupResult result;
    CountdownLatch done(&b.env, 1);
    LogicalDumpOptions base;
    base.volume_name = "home";
    b.env.Spawn(ParallelLogicalBackupJob(b.filer.get(), b.fs.get(),
                                         b.DrivePtrs(ntapes), subtrees, base,
                                         &result, &done));
    b.env.Run();
    CheckStatus(result.merged.status, "parallel logical backup");
    result.merged.name = "Logical Backup";
    suite.logical_backup = result.merged;
  }
  // ---- Parallel logical restore into a fresh file system. ----
  {
    auto volume = b.FreshVolume("lrestore");
    auto fs = std::move(Filesystem::Format(volume.get(), &b.env)).value();
    b.RewindAll();
    ParallelLogicalRestoreResult result;
    CountdownLatch done(&b.env, 1);
    b.env.Spawn(ParallelLogicalRestoreJob(b.filer.get(), fs.get(),
                                          b.DrivePtrs(ntapes), subtrees,
                                          /*bypass_nvram=*/false, &result,
                                          &done));
    b.env.Run();
    CheckStatus(result.merged.status, "parallel logical restore");
    result.merged.name = "Logical Restore";
    suite.logical_restore = result.merged;
  }
  // ---- Parallel physical backup: striped image dump. ----
  for (auto& t : b.tapes) {
    t->Erase();
  }
  for (uint32_t k = 0; k < ntapes; ++k) {
    b.drives[k]->LoadMedia(b.tapes[k].get());
  }
  {
    ParallelImageBackupResult result;
    CountdownLatch done(&b.env, 1);
    b.env.Spawn(ParallelImageBackupJob(b.filer.get(), b.fs.get(),
                                       b.DrivePtrs(ntapes),
                                       ImageDumpOptions{},
                                       /*delete_snapshot_after=*/false,
                                       &result, &done));
    b.env.Run();
    CheckStatus(result.merged.status, "parallel physical backup");
    result.merged.name = "Physical Backup";
    suite.physical_backup = result.merged;
  }
  // ---- Parallel physical restore onto a fresh volume. ----
  {
    auto volume = b.FreshVolume("prestore");
    b.RewindAll();
    ParallelImageRestoreResult result;
    CountdownLatch done(&b.env, 1);
    b.env.Spawn(ParallelImageRestoreJob(b.filer.get(), volume.get(),
                                        b.DrivePtrs(ntapes), &result,
                                        &done));
    b.env.Run();
    CheckStatus(result.merged.status, "parallel physical restore");
    result.merged.name = "Physical Restore";
    suite.physical_restore = result.merged;
  }
  return suite;
}

inline void PrintParallelSuite(const ParallelSuite& suite) {
  std::printf("%-20s %12s %8s %10s %10s %8s %10s\n", "Operation", "Elapsed",
              "CPU", "Disk MB/s", "Tape MB/s", "GB/h", "GB/h/tape");
  for (const JobReport* r :
       {&suite.logical_backup, &suite.logical_restore,
        &suite.physical_backup, &suite.physical_restore}) {
    std::printf("%-20s %12s %7.1f%% %10.2f %10.2f %8.1f %10.2f\n",
                r->name.c_str(), FormatDuration(r->StreamElapsed()).c_str(),
                r->StreamCpuUtilization() * 100.0, r->DiskMBps(),
                r->TapeMBps(), r->GBph(), r->GBph() / suite.ntapes);
  }
}

}  // namespace bench
}  // namespace bkup

#endif  // BKUP_BENCH_PARALLEL_SUITE_H_

// Table 4 — "Parallel Backup and Restore Performance on 2 tape drives".
//
// Logical: the home volume split into 2 quota trees, dumped/restored
// concurrently. Physical: the image dump striped over 2 drives. Shape
// target: both roughly double their single-drive rate at 2 drives; logical
// CPU climbs faster.
#include <cstdio>

#include "bench/parallel_suite.h"

namespace bkup {
namespace {

int Run() {
  bench::ParallelSuite suite = bench::RunParallelSuite(2, 96 * kMiB);
  bench::PrintBanner(
      "Table 4: Parallel Backup and Restore Performance on 2 tape drives",
      "OSDI'99 paper, Table 4 (Section 5.2)");
  bench::PrintParallelSuite(suite);
  std::printf(
      "\nPaper reference (2 drives): logical files 4h@50%%; logical restore "
      "fill 3.5h@75%%;\n  physical dump 3.25h@12%%; physical restore "
      "3.1h@21%%\n");

  const bool ok =
      suite.physical_backup.CpuUtilization() <
          suite.logical_backup.phase(JobPhase::kDumpFiles).CpuUtilization() &&
      suite.physical_backup.TapeMBps() > suite.logical_backup.TapeMBps();
  std::printf("RESULT: %s\n",
              ok ? "shape matches the paper" : "SHAPE MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main() { return bkup::Run(); }

// Simulation-core bench: the two gates behind the parallel-DES PR.
//
// Part A (hot path): the calendar-queue SimEnvironment against a faithful
// in-bench copy of the old std::priority_queue event loop, driving an
// identical coroutine actor storm (deep queue, delay mix spanning ready
// ring, staged bucket, wheel and overflow heap). Both engines must agree
// exactly on final clock and event count (hard gate); the >= 1.3x events/s
// target is measured and reported.
//
// Part B (sharding): a 4-filer fleet — each filer a SimShard owning its
// volumes, drives, library and NightlyScheduler, filers ack night
// completion to a shard-0 coordinator over a WAN-class replication link
// (NetLink::BindShards declares the 500 ms propagation delay as the
// conservative lookahead). The night is run at 1, 2 and 4 worker threads;
// the concatenated per-shard artifacts (executed-schedule serialization,
// final clocks, event counts, ack log, full metrics dump) must be
// byte-identical across thread counts — a hard gate at any core count.
// The >= 1.6x wall-clock speedup target at 4 threads is measured when the
// host has >= 4 hardware threads.
//
// Gate policy: correctness (engine agreement, byte-identical parallel
// runs) always fails the process. The relative performance ratios flake
// on loaded or heterogeneous CI hosts, so by default a missed ratio
// prints a WARNING and lands in the JSON report; `--enforce-perf` turns
// the ratios into hard failures for a dedicated perf lane on a pinned
// host (cmake -DBKUP_ENFORCE_PERF_GATES=ON wires the ctest that way).
//
// `--json[=path]` writes BENCH_simcore.json (report contract of
// tools/check_trace.py, plus a "simcore" section with both gates).
#include <chrono>
#include <cstdio>
#include <memory>
#include <queue>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/backup/scheduler.h"
#include "src/net/link.h"
#include "src/obs/utilization.h"
#include "src/sim/shard.h"

namespace bkup {
namespace {

// ------------------------------------------------- Part A: hot-path A/B ---

// The pre-PR event loop, kept verbatim as the measurement baseline: a
// (when, seq)-ordered binary heap, top() copied then popped per event.
class LegacyEnvironment {
 public:
  SimTime now() const { return now_; }

  void ScheduleAt(SimTime when, std::coroutine_handle<> handle) {
    queue_.push(Event{when, next_seq_++, handle});
  }

  void Spawn(Task task) {
    auto handle = task.Release();
    handle.promise().started = true;
    ScheduleAt(now_, handle);
  }

  SimTime Run() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.when;
      ++events_processed_;
      ev.handle.resume();
    }
    return now_;
  }

  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::coroutine_handle<> handle;
    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

// Generic awaiter so the identical actor body drives either engine.
template <typename Env>
struct DelayOn {
  Env* env;
  SimDuration d;
  bool await_ready() const noexcept { return d <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    env->ScheduleAt(env->now() + d, h);
  }
  void await_resume() const noexcept {}
};

// One simulated process: a seeded walk over the delay mix a real backup
// night produces — zero-delay continuation chains (channel handoffs),
// sub-bucket jitters (disk completions), wheel-range waits (frame clocks,
// throttle refills) and far-future timers (retransmit/SLO deadlines).
template <typename Env>
Task Actor(Env* env, uint32_t seed, int steps) {
  std::minstd_rand rng(seed == 0 ? 1 : seed);
  for (int s = 0; s < steps; ++s) {
    // Weighted like a busy night: handoffs and device completions dominate,
    // long timers (retransmit deadlines, SLO ticks) are the rare tail.
    SimDuration d = 0;
    const uint32_t pick = rng() % 16;
    if (pick < 6) {
      d = 0;
    } else if (pick < 11) {
      d = static_cast<SimDuration>(rng() % 64);
    } else if (pick < 15) {
      d = static_cast<SimDuration>(rng() % (60 * kMillisecond));
    } else {
      d = 100 * kMillisecond +
          static_cast<SimDuration>(rng() % (1900 * kMillisecond));
    }
    co_await DelayOn<Env>{env, d};
  }
}

struct HotPathRun {
  double seconds = 0.0;
  uint64_t events = 0;
  SimTime end = 0;
  double events_per_s() const { return events / seconds; }
};

template <typename Env>
HotPathRun RunHotPath(int actors, int steps) {
  Env env;
  for (int a = 0; a < actors; ++a) {
    env.Spawn(Actor<Env>(&env, static_cast<uint32_t>(a) * 2654435761u + 7,
                         steps));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const SimTime end = env.Run();
  const auto t1 = std::chrono::steady_clock::now();
  HotPathRun run;
  run.seconds = std::chrono::duration<double>(t1 - t0).count();
  run.events = env.events_processed();
  run.end = end;
  return run;
}

struct HotPathResult {
  HotPathRun legacy;
  HotPathRun current;
  double speedup = 0.0;
};

HotPathResult MeasureHotPath() {
  constexpr int kActors = 24576;  // deep queue: heap depth ~15 for the pq
  constexpr int kSteps = 48;
  constexpr int kTrials = 3;
  HotPathResult best;
  for (int t = 0; t < kTrials; ++t) {
    const HotPathRun legacy = RunHotPath<LegacyEnvironment>(kActors, kSteps);
    const HotPathRun current = RunHotPath<SimEnvironment>(kActors, kSteps);
    // Both engines implement one contract; disagreement on the final clock
    // or event count means the new queue reordered something.
    if (legacy.end != current.end || legacy.events != current.events) {
      std::fprintf(stderr,
                   "FATAL: engines diverged (end %lld vs %lld, events %llu "
                   "vs %llu)\n",
                   static_cast<long long>(legacy.end),
                   static_cast<long long>(current.end),
                   static_cast<unsigned long long>(legacy.events),
                   static_cast<unsigned long long>(current.events));
      std::abort();
    }
    if (t == 0 || legacy.seconds < best.legacy.seconds) {
      best.legacy = legacy;
    }
    if (t == 0 || current.seconds < best.current.seconds) {
      best.current = current;
    }
  }
  best.speedup = best.current.events_per_s() / best.legacy.events_per_s();
  return best;
}

// --------------------------------------------- Part B: 4-filer fleet DES ---

constexpr int kShards = 4;
constexpr uint64_t kVolumeBytes = 2 * kMiB;
constexpr int kVolumesPerShard = 3;
constexpr int kDrivesPerShard = 2;

VolumeGeometry ShardGeometry() {
  VolumeGeometry geom;
  geom.num_raid_groups = 1;
  geom.disks_per_group = 4;
  geom.blocks_per_disk = 2048;
  return geom;
}

// Everything one filer shard owns. Built under the shard's binding so every
// cached metric handle lands in the shard-private registry.
struct ShardScene {
  std::unique_ptr<Filer> filer;
  std::unique_ptr<TapeLibrary> library;
  std::unique_ptr<SupervisionPolicy> policy;
  std::vector<std::unique_ptr<Volume>> volumes;
  std::vector<std::unique_ptr<Filesystem>> filesystems;
  std::vector<std::unique_ptr<TapeDrive>> drives;
  std::vector<std::unique_ptr<UtilizationSampler>> samplers;
  std::unique_ptr<NetLink> uplink;  // to the shard-0 coordinator
  std::unique_ptr<NightlyScheduler> scheduler;
  NightReport report;
  std::unique_ptr<CountdownLatch> done;
};

struct AckLog {
  std::vector<std::pair<int, SimTime>> entries;  // (filer shard, arrival)
};

Task AckArrives(SimEnvironment* env0, int from, AckLog* log) {
  log->entries.push_back({from, env0->now()});
  co_return;
}

// Waits for the shard's night, then reports completion to the coordinator
// over the replication link (one lookahead later — the soonest a message
// may cross).
Task WatchNight(ShardedSimEnvironment* sharded, int i, CountdownLatch* done,
                AckLog* log) {
  co_await done->Wait();
  if (i == 0) {
    log->entries.push_back({0, sharded->shard(0).now()});
    co_return;
  }
  const SimDuration lookahead = *sharded->Lookahead(i, 0);
  sharded->PostTask(i, 0, sharded->shard(i).now() + lookahead,
                    AckArrives(&sharded->shard(0).env(), i, log));
}

void BuildShardScene(ShardedSimEnvironment* sharded, int i, ShardScene* scene,
                     AckLog* acks) {
  SimShard& shard = sharded->shard(i);
  ShardBinding binding = shard.Bind();
  SimEnvironment* env = &shard.env();
  const std::string prefix = "s" + std::to_string(i);

  scene->filer = std::make_unique<Filer>(env, FilerModel::F630());
  scene->library =
      std::make_unique<TapeLibrary>(prefix + ".lib", 64 * kMiB, 0);
  scene->policy = std::make_unique<SupervisionPolicy>();

  std::vector<VolumeSpec> specs;
  for (int v = 0; v < kVolumesPerShard; ++v) {
    const std::string name = prefix + ".vol" + std::to_string(v);
    scene->volumes.push_back(Volume::Create(env, name, ShardGeometry()));
    auto fs =
        std::move(Filesystem::Format(scene->volumes.back().get(), env))
            .value();
    WorkloadParams params;
    params.seed = 42 + static_cast<uint64_t>(i) * 17 +
                  static_cast<uint64_t>(v);
    params.target_bytes = kVolumeBytes;
    bench::CheckStatus(PopulateFilesystem(fs.get(), params).status(),
                       "populate");
    scene->filesystems.push_back(std::move(fs));

    VolumeSpec spec;
    spec.name = name;
    spec.fs = scene->filesystems.back().get();
    spec.mode = BackupMode::kImage;
    spec.estimated_bytes = kVolumeBytes;
    specs.push_back(std::move(spec));
  }

  FleetConfig config;
  for (int d = 0; d < kDrivesPerShard; ++d) {
    scene->drives.push_back(std::make_unique<TapeDrive>(
        env, prefix + ".d" + std::to_string(d)));
    config.drives.push_back(scene->drives.back().get());
    scene->samplers.push_back(std::make_unique<UtilizationSampler>(
        &scene->drives.back()->unit(), 10 * kSecond));
  }
  config.library = scene->library.get();
  config.supervision = scene->policy.get();

  // The control/replication uplink to the coordinator: WAN-class latency.
  // Its propagation delay IS the conservative lookahead between the filer
  // and shard 0, so the round window stays makespan/0.5s — coarse enough
  // that barrier synchronization cost is noise.
  if (i != 0) {
    LinkParams wan;
    wan.bandwidth_mb_per_s = 12.5;
    wan.propagation_delay = 500 * kMillisecond;
    scene->uplink = std::make_unique<NetLink>(env, prefix + ".uplink", wan);
    scene->uplink->BindShards(sharded, i, 0);
  }

  scene->scheduler = std::make_unique<NightlyScheduler>(
      scene->filer.get(), config, std::move(specs));
  scene->done = std::make_unique<CountdownLatch>(env, 1);
  shard.Spawn(scene->scheduler->Run(&scene->report, scene->done.get()));
  shard.Spawn(WatchNight(sharded, i, scene->done.get(), acks));
}

struct FleetRun {
  std::string artifact;  // byte-identical across thread counts, or bust
  double wall_seconds = 0.0;
  SimTime sim_end = 0;
  uint64_t total_events = 0;
  uint64_t rounds = 0;
};

// Runs the 4-filer night at the given worker count. When `w` is non-null,
// the report-contract sections (sim_elapsed_s, jobs, utilization, metrics)
// are appended to it while the shards are still alive.
FleetRun RunFleet(int threads, JsonWriter* w) {
  ShardedSimEnvironment sharded(kShards, ShardedOptions{threads});
  std::vector<ShardScene> scenes(kShards);
  AckLog acks;
  for (int i = 0; i < kShards; ++i) {
    BuildShardScene(&sharded, i, &scenes[i], &acks);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const SimTime end = sharded.Run();
  const auto t1 = std::chrono::steady_clock::now();

  FleetRun run;
  run.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  run.sim_end = end;
  run.total_events = sharded.total_events_processed();
  run.rounds = sharded.rounds();

  // The determinism artifact: every observable a shard produced, in shard
  // order. Any thread-count dependence anywhere in the engine shows up as
  // a byte difference here.
  std::string a;
  for (int i = 0; i < kShards; ++i) {
    ShardScene& scene = scenes[i];
    bench::CheckStatus(scene.report.status, "night");
    a += "=== shard " + std::to_string(i) + " ===\n";
    a += scene.report.SerializeExecution();
    a += "clock=" + std::to_string(sharded.shard(i).now()) +
         " events=" +
         std::to_string(sharded.shard(i).env().events_processed()) + "\n";
    a += sharded.shard(i).metrics().ToJson();
    a += "\n";
  }
  a += "acks:";
  for (const auto& [from, at] : acks.entries) {
    a += " " + std::to_string(from) + "@" + std::to_string(at);
  }
  a += "\n";
  run.artifact = std::move(a);

  if (w != nullptr) {
    w->Field("sim_elapsed_s", SimToSeconds(end));
    w->Key("jobs").BeginArray();
    for (const ShardScene& scene : scenes) {
      for (const VolumeOutcome& v : scene.report.volumes) {
        JobReport r = v.report;
        r.name = v.name;
        r.WriteJson(w);
      }
    }
    w->EndArray();
    w->Key("utilization").BeginArray();
    for (ShardScene& scene : scenes) {
      for (auto& sampler : scene.samplers) {
        sampler->Finish(end);
        sampler->WriteJson(w);
      }
    }
    w->EndArray();
    // Shard 0's registry: the coordinator filer's full series set. (Each
    // shard owns a private registry; dumping one keeps the report bounded.)
    w->Key("metrics");
    sharded.shard(0).metrics().WriteJson(w);
  }
  return run;
}

// ------------------------------------------------------------ reporting ---

int Run(int argc, char** argv) {
  const std::string json_path =
      bench::JsonPathFromArgs(argc, argv, "BENCH_simcore.json");
  bool enforce_perf = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--enforce-perf") {
      enforce_perf = true;
    }
  }

  bench::PrintBanner(
      "Simulation core: event-queue hot path + sharded parallel DES",
      "engine work enabling every paper table; determinism per DESIGN.md "
      "S17");

  bool determinism_ok = true;
  bool perf_ok = true;

  // Part A.
  const HotPathResult hot = MeasureHotPath();
  std::printf("\nhot path (%llu events, identical actor storm):\n",
              static_cast<unsigned long long>(hot.current.events));
  std::printf("  %-28s %12.0f events/s\n", "legacy priority_queue loop",
              hot.legacy.events_per_s());
  std::printf("  %-28s %12.0f events/s\n", "calendar-queue environment",
              hot.current.events_per_s());
  std::printf("  speedup: %.2fx (target: >= 1.30x, %s)\n", hot.speedup,
              enforce_perf ? "enforced" : "recorded");
  if (hot.speedup < 1.30) {
    std::printf("  %s: hot-path speedup below 1.30x\n",
                enforce_perf ? "GATE FAILED" : "WARNING");
    perf_ok = false;
  }

  // Part B: determinism across thread counts (hard, any host), then
  // wall-clock scaling (enforced only with >= 4 hardware threads).
  JsonWriter w;
  const bool want_json = !json_path.empty();
  if (want_json) {
    w.BeginObject();
    w.Field("bench", "simcore");
    w.Key("config")
        .BeginObject()
        .Field("hot_path_actors", static_cast<uint64_t>(24576))
        .Field("shards", static_cast<uint64_t>(kShards))
        .Field("volumes_per_shard", static_cast<uint64_t>(kVolumesPerShard))
        .Field("drives_per_shard", static_cast<uint64_t>(kDrivesPerShard))
        .Field("bytes_per_volume", kVolumeBytes)
        .Field("hardware_threads",
               static_cast<uint64_t>(std::thread::hardware_concurrency()))
        .EndObject();
  }
  const FleetRun run1 = RunFleet(1, want_json ? &w : nullptr);
  const FleetRun run2 = RunFleet(2, nullptr);
  const FleetRun run4 = RunFleet(4, nullptr);
  std::printf("\nfleet night, %d filer shards (%llu events, %llu rounds, "
              "sim %s):\n",
              kShards, static_cast<unsigned long long>(run1.total_events),
              static_cast<unsigned long long>(run1.rounds),
              FormatDuration(run1.sim_end).c_str());
  std::printf("  threads=1: %8.3f s wall\n", run1.wall_seconds);
  std::printf("  threads=2: %8.3f s wall\n", run2.wall_seconds);
  std::printf("  threads=4: %8.3f s wall\n", run4.wall_seconds);

  const bool identical =
      run1.artifact == run2.artifact && run1.artifact == run4.artifact;
  std::printf("  determinism: artifacts (%zu bytes) %s\n",
              run1.artifact.size(),
              identical ? "byte-identical across 1/2/4 threads"
                        : "DIVERGED");
  if (!identical || run1.sim_end != run2.sim_end ||
      run1.sim_end != run4.sim_end) {
    std::printf("  GATE FAILED: parallel run not byte-identical\n");
    determinism_ok = false;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const double parallel_speedup = run1.wall_seconds / run4.wall_seconds;
  const bool speedup_applies = hw >= 4;
  std::printf("  4-thread speedup: %.2fx (host has %u hardware threads; "
              "target >= 1.60x %s)\n",
              parallel_speedup, hw,
              !speedup_applies ? "not applicable"
                               : (enforce_perf ? "enforced" : "recorded"));
  if (speedup_applies && parallel_speedup < 1.60) {
    std::printf("  %s: 4-shard speedup below 1.60x\n",
                enforce_perf ? "GATE FAILED" : "WARNING");
    perf_ok = false;
  }

  if (want_json) {
    w.Key("simcore")
        .BeginObject()
        .Field("hot_path_legacy_events_per_s", hot.legacy.events_per_s())
        .Field("hot_path_events_per_s", hot.current.events_per_s())
        .Field("hot_path_speedup", hot.speedup)
        .Field("hot_path_events", hot.current.events)
        .Field("fleet_events", run1.total_events)
        .Field("fleet_rounds", run1.rounds)
        .Field("wall_s_threads1", run1.wall_seconds)
        .Field("wall_s_threads2", run2.wall_seconds)
        .Field("wall_s_threads4", run4.wall_seconds)
        .Field("parallel_speedup_4", parallel_speedup)
        .Field("artifact_bytes", static_cast<uint64_t>(run1.artifact.size()))
        .Field("deterministic", identical)
        .Field("speedup_gate_applies", speedup_applies)
        .Field("perf_gates_enforced", enforce_perf)
        .Field("perf_targets_met", perf_ok)
        .EndObject();
    w.EndObject();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    bench::Check(f != nullptr ? Status::Ok() : IoError("open " + json_path),
                 "json open");
    const std::string json = w.Take();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
        std::fclose(f) == 0;
    bench::Check(ok ? Status::Ok() : IoError("write " + json_path),
                 "json write");
    std::printf("wrote %s (%zu bytes)\n", json_path.c_str(), json.size());
  }

  const bool gate_ok = determinism_ok && (perf_ok || !enforce_perf);
  std::printf("\nRESULT: %s%s\n", gate_ok ? "PASS" : "FAIL",
              gate_ok && !perf_ok
                  ? " (perf targets missed; run --enforce-perf on a pinned "
                    "host to gate them)"
                  : "");
  return gate_ok ? 0 : 1;
}

}  // namespace
}  // namespace bkup

int main(int argc, char** argv) { return bkup::Run(argc, argv); }

#include "src/net/stream_conn.h"

#include <algorithm>
#include <cassert>

#include "src/util/checksum.h"

namespace bkup {

StreamConn::StreamConn(NetLink* link, std::string name)
    : link_(link),
      env_(link->env()),
      name_(std::move(name)),
      window_(env_, static_cast<int64_t>(link->params().window_frames),
              name_ + ".window"),
      arrivals_(env_, link->params().window_frames),
      out_(env_, link->params().window_frames) {
  assert(link->params().window_frames > 0);
  assert(link->params().mtu_bytes > 0);
}

void StreamConn::EnableTracing(const TraceContext& ctx,
                               const std::string& sender_node,
                               const std::string& receiver_node) {
  ctx_ = ctx;
  tracer_ = env_->tracer();
  if (tracer_ == nullptr) {
    return;
  }
  flow_base_ = tracer_->ReserveFlowIds();
  tx_track_ = tracer_->Track(name_ + ".tx", tracer_->Process(sender_node));
  rx_track_ = tracer_->Track(name_ + ".rx", tracer_->Process(receiver_node));
}

void StreamConn::EnsurePump() {
  if (!pump_started_) {
    pump_started_ = true;
    env_->Spawn(Pump());
  }
}

Task StreamConn::SendRange(std::span<const uint8_t> stream, uint64_t begin,
                           uint64_t end, uint32_t tag, Status* status) {
  assert(!close_requested_ && "SendRange after CloseSend");
  assert(end <= stream.size());
  EnsurePump();
  const LinkParams& p = link_->params();
  uint64_t cursor = begin;
  while (cursor < end) {
    if (failed()) {
      break;
    }
    co_await window_.Acquire();
    if (failed()) {
      window_.Release();
      break;
    }
    const uint64_t n = std::min<uint64_t>(p.mtu_bytes, end - cursor);
    if (throttle_ != nullptr) {
      co_await throttle_->Acquire(n + kFrameHeaderBytes);
    }
    const std::span<const uint8_t> payload = stream.subspan(cursor, n);
    StreamFrame frame;
    frame.seq = next_send_seq_++;
    frame.begin = cursor;
    frame.end = cursor + n;
    frame.tag = tag;
    frame.crc = Crc32c(payload);
    frame.trace_id = ctx_.trace_id;
    frame.incarnation = ctx_.incarnation;
    ++stats_.frames_sent;
    env_->Spawn(TransferFrame(frame, payload));
    cursor += n;
  }
  *status = error_;
}

Task StreamConn::TransferFrame(StreamFrame frame,
                               std::span<const uint8_t> payload) {
  const LinkParams& p = link_->params();
  if (tracer_ != nullptr) {
    // Arrow tail at first transmission; retransmits keep the same id, so a
    // lossy frame's arrow spans first-send -> eventual delivery.
    tracer_->FlowStart(tx_track_, flow_base_ | frame.seq, "frame", ctx_);
  }
  int attempt = 0;
  while (error_.ok()) {
    ++attempt;
    co_await link_->wire().Acquire();
    LinkFault fate;
    if (link_->fault_hook() != nullptr) {
      fate = link_->fault_hook()->OnFrame(link_, frame.begin,
                                          frame.end - frame.begin);
    }
    if (fate.stall > 0) {
      // The stall holds the wire (a pausing, congested link), so later
      // frames queue behind it and ordering is preserved.
      ++stats_.stalls;
      link_->CountStall();
      co_await env_->Delay(fate.stall);
    }
    co_await env_->Delay(
        link_->SerializeTime(frame.end - frame.begin + kFrameHeaderBytes));
    link_->AccountFrame(frame.end - frame.begin + kFrameHeaderBytes);
    link_->wire().Release();
    co_await env_->Delay(p.propagation_delay);
    if (fate.action == LinkFault::Action::kDrop) {
      ++stats_.frames_dropped;
      link_->CountDrop();
    } else {
      // Receiver side: recompute the payload checksum and compare with what
      // the frame says arrived (corruption is modeled on the header copy).
      frame.wire_crc = fate.action == LinkFault::Action::kCorrupt
                           ? frame.crc ^ 0xA5A5A5A5u
                           : frame.crc;
      if (frame.wire_crc == Crc32c(payload)) {
        co_await arrivals_.Send(frame);
        break;
      }
      ++stats_.checksum_rejections;
      link_->CountChecksumReject();
    }
    if (attempt > p.max_retransmits) {
      if (error_.ok()) {
        error_ = IoError(name_ + ": frame " + std::to_string(frame.seq) +
                         " lost after " + std::to_string(attempt) +
                         " attempts");
      }
      break;
    }
    // The sender learns of the loss by timeout (there is no NAK path) and
    // retransmits the same frame.
    ++stats_.retransmits;
    link_->CountRetransmit();
    co_await env_->Delay(p.retransmit_timeout);
  }
  window_.Release();
}

Task StreamConn::Pump() {
  while (true) {
    std::optional<StreamFrame> frame = co_await arrivals_.Recv();
    if (!frame.has_value()) {
      break;
    }
    reorder_.emplace(frame->seq, *frame);
    auto it = reorder_.find(next_deliver_seq_);
    while (it != reorder_.end()) {
      const StreamFrame ready = it->second;
      reorder_.erase(it);
      ++next_deliver_seq_;
      ++stats_.frames_delivered;
      stats_.bytes_delivered += ready.end - ready.begin;
      acked_ = std::max(acked_, ready.end);
      if (tracer_ != nullptr) {
        tracer_->FlowEnd(rx_track_, flow_base_ | ready.seq, "frame", ctx_);
      }
      co_await out_.Send(ready);
      it = reorder_.find(next_deliver_seq_);
    }
  }
  // Frames past a permanently lost one never become deliverable; the bytes
  // they carried are above acked() and will be resent on the next conn.
  reorder_.clear();
  out_.Close();
}

Task StreamConn::Drain(Status* status) {
  const auto whole =
      static_cast<int64_t>(link_->params().window_frames);
  co_await window_.Acquire(whole);
  window_.Release(whole);
  *status = error_;
}

void StreamConn::CloseSend() {
  assert(!close_requested_ && "double CloseSend");
  close_requested_ = true;
  EnsurePump();  // a zero-byte stream still needs out_ closed
  arrivals_.Close();
}

}  // namespace bkup

// A remote tape server: the far end of a NetLink.
//
// The node that NDMP calls the "tape service": it owns drives fed from a
// `TapeLibrary` and sits across the link from the filer. The server is
// structural — drives, media, naming; the supervised writer/reader
// coroutines that pair it with a dump stream live in src/backup/remote.cc,
// which keeps src/net independent of the backup layer.
#ifndef BKUP_NET_TAPE_SERVER_H_
#define BKUP_NET_TAPE_SERVER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/block/tape.h"
#include "src/block/tape_library.h"
#include "src/sim/environment.h"
#include "src/util/status.h"

namespace bkup {

class TapeServer {
 public:
  TapeServer(SimEnvironment* env, std::string name,
             TapeLibrary* library = nullptr)
      : env_(env), name_(std::move(name)), library_(library) {}

  SimEnvironment* env() const { return env_; }
  const std::string& name() const { return name_; }
  TapeLibrary* library() const { return library_; }

  // Adds a drive named "<server>.<name>"; the server owns it.
  TapeDrive* AddDrive(const std::string& name,
                      TapeTiming timing = TapeTiming()) {
    drives_.push_back(
        std::make_unique<TapeDrive>(env_, name_ + "." + name, timing));
    return drives_.back().get();
  }

  size_t num_drives() const { return drives_.size(); }
  TapeDrive* drive(size_t i) { return drives_[i].get(); }

  // Instantaneous library load (tests and setup); jobs pay drive load time
  // through TimedLoadMedia as usual.
  Status LoadSlot(size_t drive_index, size_t slot) {
    if (library_ == nullptr) {
      return FailedPrecondition(name_ + ": no tape library attached");
    }
    return library_->LoadSlot(drive(drive_index), slot);
  }

 private:
  SimEnvironment* env_;
  std::string name_;
  TapeLibrary* library_;
  std::vector<std::unique_ptr<TapeDrive>> drives_;
};

}  // namespace bkup

#endif  // BKUP_NET_TAPE_SERVER_H_

// A remote tape server: the far end of a NetLink.
//
// The node that NDMP calls the "tape service": it owns drives fed from a
// `TapeLibrary` and sits across the link from the filer. The server is
// structural — drives, media, naming; the supervised writer/reader
// coroutines that pair it with a dump stream live in src/backup/remote.cc,
// which keeps src/net independent of the backup layer.
#ifndef BKUP_NET_TAPE_SERVER_H_
#define BKUP_NET_TAPE_SERVER_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/block/tape.h"
#include "src/block/tape_library.h"
#include "src/obs/trace.h"
#include "src/sim/channel.h"
#include "src/sim/environment.h"
#include "src/util/status.h"

namespace bkup {

class TapeServer {
 public:
  TapeServer(SimEnvironment* env, std::string name,
             TapeLibrary* library = nullptr)
      : env_(env), name_(std::move(name)), library_(library) {}

  SimEnvironment* env() const { return env_; }
  const std::string& name() const { return name_; }
  TapeLibrary* library() const { return library_; }

  // Adds a drive named "<server>.<name>"; the server owns it.
  TapeDrive* AddDrive(const std::string& name,
                      TapeTiming timing = TapeTiming()) {
    drives_.push_back(
        std::make_unique<TapeDrive>(env_, name_ + "." + name, timing));
    return drives_.back().get();
  }

  size_t num_drives() const { return drives_.size(); }
  TapeDrive* drive(size_t i) { return drives_[i].get(); }

  // Ranged media read, the server-side primitive of catalog-driven restores:
  // seeks `drive` to the absolute byte `offset` (paying the reposition) and
  // reads `length` bytes in `chunk_bytes` pieces, publishing the absolute
  // offset reached after each piece on `progress`. The channel is left open
  // so callers can chain ranges; *status holds the first error. Reads are
  // idempotent, so a caller's retry can simply re-issue the remainder.
  // With a tracer attached and a valid `ctx`, the read runs under a span on
  // this server's process row, continuing the caller's cross-node trace.
  Task ReadRange(TapeDrive* drive, uint64_t offset, uint64_t length,
                 uint64_t chunk_bytes, Channel<uint64_t>* progress,
                 Status* status, TraceContext ctx = {}) {
    ScopedTraceSpan span(env_->tracer(), name_,
                         ("srv:" + name_).c_str(), "read.range", ctx);
    Status st;
    co_await drive->TimedSeekTo(offset, &st);
    uint64_t pos = offset;
    const uint64_t end = offset + length;
    std::vector<uint8_t> scratch(chunk_bytes);
    while (st.ok() && pos < end) {
      const uint64_t on_tape =
          drive->loaded() ? drive->tape()->size() - drive->position() : 0;
      if (on_tape == 0) {
        st = Corruption(name_ + ": media ended inside a ranged read");
        break;
      }
      const uint64_t n = std::min({chunk_bytes, end - pos, on_tape});
      co_await drive->TimedRead(std::span(scratch).first(n), &st);
      if (st.ok()) {
        pos += n;
        co_await progress->Send(pos);
      }
    }
    *status = st;
  }

  // Instantaneous library load (tests and setup); jobs pay drive load time
  // through TimedLoadMedia as usual.
  Status LoadSlot(size_t drive_index, size_t slot) {
    if (library_ == nullptr) {
      return FailedPrecondition(name_ + ": no tape library attached");
    }
    return library_->LoadSlot(drive(drive_index), slot);
  }

 private:
  SimEnvironment* env_;
  std::string name_;
  TapeLibrary* library_;
  std::vector<std::unique_ptr<TapeDrive>> drives_;
};

}  // namespace bkup

#endif  // BKUP_NET_TAPE_SERVER_H_

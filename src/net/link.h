// A deterministic point-to-point network link.
//
// The link is the transport the paper's portability claim leans on: the dump
// stream "can be written to tape, to a file, or sent over a network" (§2),
// which is how NDMP-era filers fed remote tape servers. Model-wise a link is
// a serial resource (one frame on the wire at a time, like a tape drive's
// unit) with a configured payload bandwidth, a fixed propagation delay and an
// MTU that forces large transfers into frames. Backpressure emerges the same
// way it does in `Channel`: each `StreamConn` bounds its in-flight frames
// with a `Resource` window, so a slow receiver stalls the sender through the
// full pipeline. See DESIGN.md §10 for the complete model.
#ifndef BKUP_NET_LINK_H_
#define BKUP_NET_LINK_H_

#include <cstdint>
#include <string>

#include "src/net/link_fault.h"
#include "src/obs/metrics.h"
#include "src/sim/environment.h"
#include "src/sim/resource.h"
#include "src/util/units.h"

namespace bkup {

class NetLink;
class ShardedSimEnvironment;  // src/sim/shard.h

struct LinkParams {
  // Effective payload rate. 125 MB/s is a clean 1 GbE-class link; the
  // paper-era alternative (100 Mb/s Ethernet) is 12.5.
  double bandwidth_mb_per_s = 125.0;
  // One-way propagation + forwarding latency (LAN-ish default).
  SimDuration propagation_delay = 200 * kMicrosecond;
  // Largest frame payload; a jumbo-ish 64 KiB keeps per-frame overhead low
  // while still forcing real framing on multi-megabyte streams.
  uint64_t mtu_bytes = 64 * kKiB;
  // Sliding window: frames a StreamConn may have un-acknowledged. Bounds
  // sender run-ahead exactly like a Channel capacity.
  size_t window_frames = 32;
  // Sender-side loss detection: a frame neither delivered nor rejected
  // within this is retransmitted.
  SimDuration retransmit_timeout = 20 * kMillisecond;
  // Per-frame retransmit budget; beyond it the stream errors out and
  // recovery moves up to the supervisor (reconnect + resume from ack).
  int max_retransmits = 6;
};

// Nightly byte budget for a shared link: the accounting hook the fleet
// scheduler reserves against before dispatching a remote job. The budget is
// planning-level bookkeeping, not a rate limiter — the wire still serializes
// frames itself; this only answers "may another whole stream be committed to
// tonight's link allowance?". Reservations use the scheduler's size estimate
// and are settled to the actual payload when the job finishes, so the
// consumed total tracks reality while in-flight jobs hold their estimate.
class LinkBudget {
 public:
  // `nightly_bytes` = 0 means unlimited (every reservation succeeds).
  LinkBudget(NetLink* link, uint64_t nightly_bytes);

  NetLink* link() const { return link_; }
  uint64_t nightly_bytes() const { return nightly_bytes_; }
  uint64_t reserved() const { return reserved_; }   // in-flight estimates
  uint64_t consumed() const { return consumed_; }   // settled actuals
  bool unlimited() const { return nightly_bytes_ == 0; }

  // True (and the estimate is held) when consumed + reserved + estimate
  // still fits the nightly allowance.
  bool TryReserve(uint64_t estimated_bytes);

  // Settles a reservation made with `estimated_bytes`: the hold is released
  // and `actual_bytes` is added to the consumed total.
  void Commit(uint64_t estimated_bytes, uint64_t actual_bytes);

  // Drops a reservation without consuming anything (job never streamed).
  void Cancel(uint64_t estimated_bytes);

 private:
  NetLink* link_;
  uint64_t nightly_bytes_;
  uint64_t reserved_ = 0;
  uint64_t consumed_ = 0;
  Counter* metric_reservations_;
  Counter* metric_rejections_;
  Counter* metric_consumed_;
};

class NetLink {
 public:
  NetLink(SimEnvironment* env, std::string name, LinkParams params = {});

  const std::string& name() const { return name_; }
  SimEnvironment* env() const { return env_; }
  const LinkParams& params() const { return params_; }

  // The wire: capacity 1, so concurrent streams serialize frame by frame and
  // N-way parallel remote jobs contend for the same bandwidth.
  Resource& wire() { return wire_; }

  // Time to clock `nbytes` onto the wire at the configured bandwidth.
  SimDuration SerializeTime(uint64_t nbytes) const;

  // Declares this link as a lookahead edge between two shards of a
  // parallel simulation (both directions): no message crossing the link
  // can land sooner than the propagation delay, which is exactly the
  // conservative synchronization slack the sharded scheduler needs. A
  // fleet scenario calls this once per cross-shard link after Connect-ing
  // its topology; see src/sim/shard.h and DESIGN.md §17.
  void BindShards(ShardedSimEnvironment* sharded, int src_shard,
                  int dst_shard) const;

  // Arms the link against a fault engine; null disarms.
  void set_fault_hook(LinkFaultHook* hook) { fault_hook_ = hook; }
  LinkFaultHook* fault_hook() const { return fault_hook_; }

  uint64_t bytes_transferred() const { return bytes_transferred_; }
  uint64_t frames_transferred() const { return frames_transferred_; }

  // Accounting entry points used by StreamConn (metrics + trace instants).
  void AccountFrame(uint64_t wire_bytes);
  void CountRetransmit();
  void CountDrop();
  void CountChecksumReject();
  void CountStall();

 private:
  void Instant(const char* name);

  SimEnvironment* env_;
  std::string name_;
  LinkParams params_;
  Resource wire_;
  LinkFaultHook* fault_hook_ = nullptr;
  uint64_t bytes_transferred_ = 0;
  uint64_t frames_transferred_ = 0;
  // Metric handles resolved once at construction (see Disk, TapeDrive).
  Counter* metric_bytes_;
  Counter* metric_frames_;
  Counter* metric_retransmits_;
  Counter* metric_drops_;
  Counter* metric_rejects_;
  Counter* metric_stalls_;
};

}  // namespace bkup

#endif  // BKUP_NET_LINK_H_

// Link-level fault injection hook.
//
// A `NetLink` consults an optional `LinkFaultHook` once per frame, before the
// frame occupies the wire. The implementation — the same fault engine that
// drives disks and tapes (src/faults) — decides the frame's fate from its
// armed plan and the simulation clock. Keeping the interface here mirrors
// `DeviceFaultHook` in src/block: src/net stays free of any dependency on the
// fault subsystem while every link remains injectable.
#ifndef BKUP_NET_LINK_FAULT_H_
#define BKUP_NET_LINK_FAULT_H_

#include <cstdint>

#include "src/util/units.h"

namespace bkup {

class NetLink;

// What happens to one frame. A stall delays the frame while it *holds the
// wire* (a congested or pausing link), so ordering is preserved; a drop
// models loss the sender detects by retransmit timeout; a corrupt frame is
// delivered but fails the receiver's checksum and is rejected there.
struct LinkFault {
  enum class Action : uint8_t { kDeliver, kDrop, kCorrupt };
  Action action = Action::kDeliver;
  SimDuration stall = 0;
};

class LinkFaultHook {
 public:
  virtual ~LinkFaultHook() = default;

  // Consulted once per frame transmission (including retransmits), with the
  // frame's stream offset and payload size.
  virtual LinkFault OnFrame(NetLink* link, uint64_t offset,
                            uint64_t nbytes) = 0;
};

}  // namespace bkup

#endif  // BKUP_NET_LINK_FAULT_H_

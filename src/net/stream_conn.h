// A reliable byte-stream connection over a NetLink.
//
// `StreamConn` frames a byte range into MTU-sized checksummed frames, keeps
// at most `window_frames` of them in flight (the sliding window — a frame's
// slot frees when the frame is delivered or given up on), retransmits on
// loss or checksum rejection, and delivers frames to the receiver strictly
// in order. The cumulative `acked()` watermark — every stream byte below it
// has been delivered in order — is what lets a supervisor resume an
// interrupted stream on a fresh connection without rewinding to zero.
//
// A connection that exhausts a frame's retransmit budget fails permanently
// (`error()`); in-flight frames wind down and `Drain()` returns the error.
// The receiver must keep draining `frames()` to end-of-stream even after a
// failure — everything delivered is still good data (this is what makes
// resume-from-ack exact).
//
// Protocol: one sender coroutine calls SendRange (any number of times),
// then Drain, then CloseSend; the receiver loops on `co_await
// frames().Recv()` until nullopt.
#ifndef BKUP_NET_STREAM_CONN_H_
#define BKUP_NET_STREAM_CONN_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>

#include "src/net/link.h"
#include "src/obs/trace.h"
#include "src/sim/channel.h"
#include "src/sim/resource.h"
#include "src/sim/task.h"
#include "src/sim/throttle.h"
#include "src/util/status.h"

namespace bkup {

// Per-frame protocol overhead charged to the wire (headers + checksum).
// The budget already covers the 12-byte trace context (8-byte trace id +
// 4-byte incarnation) that `EnableTracing` stamps on every frame, so
// turning tracing on changes no wire timing.
inline constexpr uint64_t kFrameHeaderBytes = 32;

// One frame as the receiver sees it: stream bytes [begin, end), a sender
// sequence number, the payload checksum as computed at send time (`crc`) and
// as it survived the wire (`wire_crc` — corruption shows up here). `tag` is
// an opaque caller tag (remote jobs carry the JobPhase) echoed per frame.
struct StreamFrame {
  uint64_t seq = 0;
  uint64_t begin = 0;
  uint64_t end = 0;
  uint32_t tag = 0;
  uint32_t crc = 0;
  uint32_t wire_crc = 0;
  // Causal trace context carried in the frame header (see kFrameHeaderBytes):
  // the receiver's node continues the sender's trace without a side channel.
  uint64_t trace_id = 0;
  uint32_t incarnation = 0;
};

struct ConnStats {
  uint64_t frames_sent = 0;         // first transmissions
  uint64_t frames_delivered = 0;    // validated and delivered in order
  uint64_t bytes_delivered = 0;
  uint64_t retransmits = 0;
  uint64_t frames_dropped = 0;      // lost on the wire
  uint64_t checksum_rejections = 0; // delivered corrupt, rejected
  uint64_t stalls = 0;              // frames held on a stalled wire

  bool operator==(const ConnStats&) const = default;
};

class StreamConn {
 public:
  StreamConn(NetLink* link, std::string name);

  const std::string& name() const { return name_; }
  NetLink* link() const { return link_; }

  // Enables cross-node tracing: every frame carries `ctx` in its header,
  // and each frame draws a flow arrow (Chrome "s"/"f") from this
  // connection's tx track on `sender_node`'s process row to its rx track on
  // `receiver_node`'s. No-op when the environment has no tracer attached.
  void EnableTracing(const TraceContext& ctx, const std::string& sender_node,
                     const std::string& receiver_node);
  const TraceContext& trace_context() const { return ctx_; }

  // Backup QoS: pace SendRange from this token bucket — each frame acquires
  // its wire bytes (payload + header) before entering the window, so a
  // remote dump's link usage is capped at the bucket's rate even though the
  // link itself could run faster. Null (the default) sends at link speed.
  // Retransmits are not re-charged: the bucket shapes offered load, and a
  // lossy wire's repair traffic is the link's cost, not the job's.
  void set_throttle(BackupThrottle* throttle) { throttle_ = throttle; }
  BackupThrottle* throttle() const { return throttle_; }

  // ----------------------------------------------------------- sender ---

  // Frames and transmits stream[begin, end). Returns (via *status) the
  // connection error if one is already set; otherwise Ok — transmission
  // completes asynchronously and late failures surface at Drain().
  Task SendRange(std::span<const uint8_t> stream, uint64_t begin,
                 uint64_t end, uint32_t tag, Status* status);

  // Waits until no frames are in flight; *status is the connection error.
  Task Drain(Status* status);

  // End of stream: the receiver's Recv() yields nullopt once everything
  // in flight has been delivered. Call only after Drain().
  void CloseSend();

  // --------------------------------------------------------- receiver ---

  // Validated frames, strictly in seq order.
  Channel<StreamFrame>& frames() { return out_; }

  // Cumulative ack: all stream bytes below this were delivered in order.
  uint64_t acked() const { return acked_; }

  const Status& error() const { return error_; }
  bool failed() const { return !error_.ok(); }
  const ConnStats& stats() const { return stats_; }

 private:
  // One frame's life on the wire: serialize (under the link's wire
  // resource), propagate, then deliver / drop / reject-and-retransmit.
  Task TransferFrame(StreamFrame frame, std::span<const uint8_t> payload);
  // Single consumer of arrivals_: reorders by seq and delivers in order.
  Task Pump();
  void EnsurePump();

  NetLink* link_;
  SimEnvironment* env_;
  std::string name_;
  Resource window_;
  Channel<StreamFrame> arrivals_;  // wire -> pump (out of order after loss)
  Channel<StreamFrame> out_;       // pump -> receiver (in order)
  std::map<uint64_t, StreamFrame> reorder_;
  uint64_t next_send_seq_ = 0;
  uint64_t next_deliver_seq_ = 0;
  uint64_t acked_ = 0;
  bool pump_started_ = false;
  bool close_requested_ = false;
  TraceContext ctx_;
  BackupThrottle* throttle_ = nullptr;  // optional send pacing (backup QoS)
  Tracer* tracer_ = nullptr;  // set by EnableTracing; null = no flow events
  uint32_t tx_track_ = 0;
  uint32_t rx_track_ = 0;
  uint64_t flow_base_ = 0;
  Status error_;
  ConnStats stats_;
};

}  // namespace bkup

#endif  // BKUP_NET_STREAM_CONN_H_

#include "src/net/link.h"

#include <algorithm>

#include "src/obs/trace.h"
#include "src/sim/shard.h"

namespace bkup {

NetLink::NetLink(SimEnvironment* env, std::string name, LinkParams params)
    : env_(env),
      name_(std::move(name)),
      params_(params),
      wire_(env, 1, name_ + ".wire") {
  MetricsRegistry& reg = MetricsRegistry::Default();
  const MetricLabels labels = {{"link", name_}};
  metric_bytes_ = reg.GetCounter("net.bytes", labels);
  metric_frames_ = reg.GetCounter("net.frames", labels);
  metric_retransmits_ = reg.GetCounter("net.retransmits", labels);
  metric_drops_ = reg.GetCounter("net.frames_dropped", labels);
  metric_rejects_ = reg.GetCounter("net.checksum_rejections", labels);
  metric_stalls_ = reg.GetCounter("net.stalls", labels);
}

LinkBudget::LinkBudget(NetLink* link, uint64_t nightly_bytes)
    : link_(link), nightly_bytes_(nightly_bytes) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  const MetricLabels labels = {{"link", link->name()}};
  metric_reservations_ = reg.GetCounter("net.budget.reservations", labels);
  metric_rejections_ = reg.GetCounter("net.budget.rejections", labels);
  metric_consumed_ = reg.GetCounter("net.budget.consumed_bytes", labels);
}

bool LinkBudget::TryReserve(uint64_t estimated_bytes) {
  if (!unlimited() &&
      consumed_ + reserved_ + estimated_bytes > nightly_bytes_) {
    metric_rejections_->Increment();
    return false;
  }
  reserved_ += estimated_bytes;
  metric_reservations_->Increment();
  return true;
}

void LinkBudget::Commit(uint64_t estimated_bytes, uint64_t actual_bytes) {
  reserved_ -= std::min(reserved_, estimated_bytes);
  consumed_ += actual_bytes;
  metric_consumed_->Increment(actual_bytes);
}

void LinkBudget::Cancel(uint64_t estimated_bytes) {
  reserved_ -= std::min(reserved_, estimated_bytes);
}

SimDuration NetLink::SerializeTime(uint64_t nbytes) const {
  const double bytes_per_us = params_.bandwidth_mb_per_s;  // 1e6 B/s = 1 B/us
  const auto t =
      static_cast<SimDuration>(static_cast<double>(nbytes) / bytes_per_us);
  return t > 0 ? t : 1;
}

void NetLink::BindShards(ShardedSimEnvironment* sharded, int src_shard,
                         int dst_shard) const {
  // The wire is symmetric: payload one way, acks the other, neither faster
  // than the propagation delay. Lookahead must be >= 1 us even on a
  // zero-delay test link.
  const SimDuration lookahead = std::max<SimDuration>(
      params_.propagation_delay, 1);
  sharded->Connect(src_shard, dst_shard, lookahead);
  sharded->Connect(dst_shard, src_shard, lookahead);
}

void NetLink::Instant(const char* event) {
  Tracer* tracer = env_->tracer();
  if (tracer != nullptr) {
    tracer->Instant(tracer->Track("net:" + name_), event);
  }
}

void NetLink::AccountFrame(uint64_t wire_bytes) {
  bytes_transferred_ += wire_bytes;
  ++frames_transferred_;
  metric_bytes_->Increment(wire_bytes);
  metric_frames_->Increment();
}

void NetLink::CountRetransmit() {
  metric_retransmits_->Increment();
  Instant("retransmit");
}

void NetLink::CountDrop() {
  metric_drops_->Increment();
  Instant("drop");
}

void NetLink::CountChecksumReject() {
  metric_rejects_->Increment();
  Instant("checksum-reject");
}

void NetLink::CountStall() {
  metric_stalls_->Increment();
  Instant("stall");
}

}  // namespace bkup

// Checksums used on the simulated media.
//
// CRC-32C (Castagnoli) guards every on-tape record and on-disk superblock;
// Adler-32 is kept as a cheap rolling alternative for whole-file verification
// in tests and the workload generator.
#ifndef BKUP_UTIL_CHECKSUM_H_
#define BKUP_UTIL_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace bkup {

// CRC-32C, software table implementation. `seed` allows incremental use:
// Crc32c(b, Crc32c(a)) == Crc32c(a || b).
uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed = 0);

// Adler-32 (zlib variant).
uint32_t Adler32(std::span<const uint8_t> data, uint32_t seed = 1);

// Incremental CRC-32C helper for streaming writers.
class Crc32cAccumulator {
 public:
  void Update(std::span<const uint8_t> data);
  uint32_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint32_t value_ = 0;
};

}  // namespace bkup

#endif  // BKUP_UTIL_CHECKSUM_H_

// Running statistics and fixed-bucket histograms used by the simulation's
// utilization trackers and the benchmark reports.
#ifndef BKUP_UTIL_STATS_H_
#define BKUP_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bkup {

// Index of the bucket holding the `fraction` quantile: the first bucket at
// which the cumulative count reaches ceil(fraction * total). This is the
// single definition of percentile-over-buckets — `Histogram` (src/obs) and
// `Log2Histogram` both defer to it, so p50/p90/p99 math cannot drift
// between bench tables and metrics JSON; each caller only maps the index to
// its own bucket bound. Returns n - 1 when the buckets cannot cover the
// target (total of zero is the caller's guard).
size_t PercentileBucketIndex(const uint64_t* buckets, size_t n,
                             uint64_t total, double fraction);

// Welford running mean/variance plus min/max; O(1) space.
class RunningStats {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Power-of-two bucketed histogram for sizes/latencies.
class Log2Histogram {
 public:
  void Add(uint64_t value);
  uint64_t count() const { return total_; }

  // Value below which `fraction` of samples fall (bucket-granular).
  uint64_t Percentile(double fraction) const;

  std::string ToString() const;

 private:
  static constexpr int kBuckets = 64;
  uint64_t buckets_[kBuckets] = {};
  uint64_t total_ = 0;
};

}  // namespace bkup

#endif  // BKUP_UTIL_STATS_H_

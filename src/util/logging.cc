#include "src/util/logging.h"

#include <cstdio>
#include <ctime>

namespace bkup {

namespace {
LogLevel g_level = LogLevel::kWarning;
// Thread-local: each shard worker thread logs against its own shard's
// clock; the main thread keeps whatever environment it activated last.
thread_local SimLogClockFn g_sim_clock = nullptr;

// "T+12.345678s" when a simulation is active, "14:03:22" otherwise.
std::string TimePrefix() {
  if (g_sim_clock != nullptr) {
    const int64_t us = g_sim_clock();
    if (us >= 0) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "T+%lld.%06llds",
                    static_cast<long long>(us / 1000000),
                    static_cast<long long>(us % 1000000));
      return buf;
    }
  }
  std::time_t now = std::time(nullptr);
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec);
  return buf;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void SetSimLogClock(SimLogClockFn clock) { g_sim_clock = clock; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from the file name for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " " << TimePrefix() << " " << base
          << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fputs(stream_.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace bkup

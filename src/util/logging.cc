#include "src/util/logging.h"

#include <cstdio>

namespace bkup {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from the file name for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fputs(stream_.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace bkup

#include "src/util/status.h"

namespace bkup {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kNoSpace:
      return "NO_SPACE";
    case ErrorCode::kIoError:
      return "IO_ERROR";
    case ErrorCode::kCorruption:
      return "CORRUPTION";
    case ErrorCode::kNotADirectory:
      return "NOT_A_DIRECTORY";
    case ErrorCode::kIsADirectory:
      return "IS_A_DIRECTORY";
    case ErrorCode::kNotEmpty:
      return "NOT_EMPTY";
    case ErrorCode::kPermission:
      return "PERMISSION";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kUnsupported:
      return "UNSUPPORTED";
    case ErrorCode::kExhausted:
      return "EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(ErrorCode::kAlreadyExists, std::move(message));
}
Status NoSpace(std::string message) {
  return Status(ErrorCode::kNoSpace, std::move(message));
}
Status IoError(std::string message) {
  return Status(ErrorCode::kIoError, std::move(message));
}
Status Corruption(std::string message) {
  return Status(ErrorCode::kCorruption, std::move(message));
}
Status NotADirectory(std::string message) {
  return Status(ErrorCode::kNotADirectory, std::move(message));
}
Status IsADirectory(std::string message) {
  return Status(ErrorCode::kIsADirectory, std::move(message));
}
Status NotEmpty(std::string message) {
  return Status(ErrorCode::kNotEmpty, std::move(message));
}
Status Permission(std::string message) {
  return Status(ErrorCode::kPermission, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status Unsupported(std::string message) {
  return Status(ErrorCode::kUnsupported, std::move(message));
}
Status Exhausted(std::string message) {
  return Status(ErrorCode::kExhausted, std::move(message));
}

}  // namespace bkup

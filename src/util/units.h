// Size and time units used throughout the library, plus human-readable
// formatting helpers for the benchmark tables.
#ifndef BKUP_UTIL_UNITS_H_
#define BKUP_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace bkup {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// Simulated time is kept in microseconds, which is fine-grained enough for a
// 4 KB transfer on a 100 MB/s device (40 us) and wide enough for multi-hour
// backups (64-bit us wraps after ~580k years).
using SimTime = int64_t;      // absolute simulated time, microseconds
using SimDuration = int64_t;  // simulated interval, microseconds

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;

// Seconds as a double -> SimDuration.
constexpr SimDuration SecondsToSim(double seconds) {
  return static_cast<SimDuration>(seconds * static_cast<double>(kSecond));
}

constexpr double SimToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr double SimToHours(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kHour);
}

// Throughput helpers for reporting in the paper's units.
double BytesPerSecToMBps(double bytes_per_sec);   // MB/s, 10^6 bytes
double BytesPerSecToGBph(double bytes_per_sec);   // GB/hour, 10^9 bytes

// "1.5 GiB", "37.2 MiB", "512 B".
std::string FormatSize(uint64_t bytes);

// "6.75 h", "20.0 min", "35 s", "1.2 ms".
std::string FormatDuration(SimDuration d);

// "87.3%"
std::string FormatPercent(double fraction);

}  // namespace bkup

#endif  // BKUP_UTIL_UNITS_H_

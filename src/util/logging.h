// Minimal leveled logging to stderr. Off by default at DEBUG so tests and
// benches stay quiet; BKUP_LOG(INFO) is for example programs.
#ifndef BKUP_UTIL_LOGGING_H_
#define BKUP_UTIL_LOGGING_H_

#include <sstream>

namespace bkup {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Time source for log prefixes. When a simulation is running, messages are
// prefixed with the current simulated time ("T+12.345678s") so logs
// correlate with exported traces; otherwise with wall-clock time of day.
// The function returns the current simulated time in microseconds, or a
// negative value when no simulation is active. SimEnvironment installs one
// automatically; util itself must not depend on sim, hence the hook. The
// hook is per-thread: shard workers (src/sim/shard.h) each arm it with
// their own shard's environment, so concurrent shards never race on it and
// every log line carries the clock of the shard that emitted it.
using SimLogClockFn = int64_t (*)();
void SetSimLogClock(SimLogClockFn clock);

// Internal: a single log statement. Flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Discards everything streamed into it; used when level is filtered out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

#define BKUP_LOG(level)                                              \
  if (::bkup::LogLevel::k##level < ::bkup::GetLogLevel())            \
    ;                                                                \
  else                                                               \
    ::bkup::LogMessage(::bkup::LogLevel::k##level, __FILE__, __LINE__).stream()

}  // namespace bkup

#endif  // BKUP_UTIL_LOGGING_H_

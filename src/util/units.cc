#include "src/util/units.h"

#include <cmath>
#include <cstdio>

namespace bkup {

double BytesPerSecToMBps(double bytes_per_sec) { return bytes_per_sec / 1e6; }

double BytesPerSecToGBph(double bytes_per_sec) {
  return bytes_per_sec * 3600.0 / 1e9;
}

std::string FormatSize(uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB",
                  static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatDuration(SimDuration d) {
  char buf[64];
  const double abs_d = std::abs(static_cast<double>(d));
  if (abs_d >= static_cast<double>(kHour)) {
    std::snprintf(buf, sizeof(buf), "%.2f h", SimToHours(d));
  } else if (abs_d >= static_cast<double>(kMinute)) {
    std::snprintf(buf, sizeof(buf), "%.1f min",
                  static_cast<double>(d) / static_cast<double>(kMinute));
  } else if (abs_d >= static_cast<double>(kSecond)) {
    std::snprintf(buf, sizeof(buf), "%.1f s", SimToSeconds(d));
  } else if (abs_d >= static_cast<double>(kMillisecond)) {
    std::snprintf(buf, sizeof(buf), "%.2f ms",
                  static_cast<double>(d) / static_cast<double>(kMillisecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld us", static_cast<long long>(d));
  }
  return buf;
}

std::string FormatPercent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace bkup

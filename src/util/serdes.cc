#include "src/util/serdes.h"

namespace bkup {

Result<uint64_t> ByteReader::ReadLE(int nbytes) {
  if (remaining() < static_cast<size_t>(nbytes)) {
    return Corruption("byte stream truncated");
  }
  uint64_t v = 0;
  for (int i = 0; i < nbytes; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += static_cast<size_t>(nbytes);
  return v;
}

Result<uint8_t> ByteReader::ReadU8() {
  BKUP_ASSIGN_OR_RETURN(uint64_t v, ReadLE(1));
  return static_cast<uint8_t>(v);
}

Result<uint16_t> ByteReader::ReadU16() {
  BKUP_ASSIGN_OR_RETURN(uint64_t v, ReadLE(2));
  return static_cast<uint16_t>(v);
}

Result<uint32_t> ByteReader::ReadU32() {
  BKUP_ASSIGN_OR_RETURN(uint64_t v, ReadLE(4));
  return static_cast<uint32_t>(v);
}

Result<uint64_t> ByteReader::ReadU64() { return ReadLE(8); }

Result<int64_t> ByteReader::ReadI64() {
  BKUP_ASSIGN_OR_RETURN(uint64_t v, ReadLE(8));
  return static_cast<int64_t>(v);
}

Result<std::string> ByteReader::ReadString() {
  BKUP_ASSIGN_OR_RETURN(uint16_t len, ReadU16());
  if (remaining() < len) {
    return Corruption("string truncated");
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

Result<std::vector<uint8_t>> ByteReader::ReadBytes(size_t n) {
  if (remaining() < n) {
    return Corruption("byte stream truncated");
  }
  std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                           data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<std::span<const uint8_t>> ByteReader::ReadSpan(size_t n) {
  if (remaining() < n) {
    return Corruption("byte stream truncated");
  }
  std::span<const uint8_t> view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

Status ByteReader::Skip(size_t n) {
  if (remaining() < n) {
    return Corruption("skip past end of stream");
  }
  pos_ += n;
  return Status::Ok();
}

Status ByteReader::AlignTo(size_t alignment) {
  const size_t rem = pos_ % alignment;
  if (rem == 0) {
    return Status::Ok();
  }
  return Skip(alignment - rem);
}

}  // namespace bkup

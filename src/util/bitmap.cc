#include "src/util/bitmap.h"

#include <algorithm>
#include <cassert>

namespace bkup {

void Bitmap::Resize(size_t num_bits) {
  num_bits_ = num_bits;
  words_.assign((num_bits + 63) / 64, 0);
}

void Bitmap::SetRange(size_t first, size_t count) {
  assert(first + count <= num_bits_);
  for (size_t i = first; i < first + count; ++i) {
    Set(i);
  }
}

void Bitmap::ClearAll() { std::fill(words_.begin(), words_.end(), 0); }

void Bitmap::SetAll() {
  std::fill(words_.begin(), words_.end(), ~0ull);
  TrimTail();
}

void Bitmap::TrimTail() {
  const size_t tail = num_bits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ull << tail) - 1;
  }
}

size_t Bitmap::CountOnes() const {
  size_t n = 0;
  for (uint64_t w : words_) {
    n += static_cast<size_t>(__builtin_popcountll(w));
  }
  return n;
}

size_t Bitmap::CountOnesInRange(size_t first, size_t count) const {
  assert(first + count <= num_bits_);
  size_t n = 0;
  size_t i = first;
  const size_t end = first + count;
  // Leading partial word.
  while (i < end && (i & 63) != 0) {
    n += Test(i) ? 1 : 0;
    ++i;
  }
  // Whole words.
  while (i + 64 <= end) {
    n += static_cast<size_t>(__builtin_popcountll(words_[i >> 6]));
    i += 64;
  }
  // Trailing partial word.
  while (i < end) {
    n += Test(i) ? 1 : 0;
    ++i;
  }
  return n;
}

size_t Bitmap::FindFirstSet(size_t from) const {
  if (from >= num_bits_) {
    return npos;
  }
  size_t w = from >> 6;
  uint64_t word = words_[w] & (~0ull << (from & 63));
  while (true) {
    if (word != 0) {
      const size_t bit = w * 64 + static_cast<size_t>(__builtin_ctzll(word));
      return bit < num_bits_ ? bit : npos;
    }
    if (++w >= words_.size()) {
      return npos;
    }
    word = words_[w];
  }
}

size_t Bitmap::FindFirstClear(size_t from) const {
  if (from >= num_bits_) {
    return npos;
  }
  size_t w = from >> 6;
  uint64_t word = ~words_[w] & (~0ull << (from & 63));
  while (true) {
    if (word != 0) {
      const size_t bit = w * 64 + static_cast<size_t>(__builtin_ctzll(word));
      return bit < num_bits_ ? bit : npos;
    }
    if (++w >= words_.size()) {
      return npos;
    }
    word = ~words_[w];
  }
}

void Bitmap::OrWith(const Bitmap& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

void Bitmap::AndWith(const Bitmap& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
  }
}

void Bitmap::AndNotWith(const Bitmap& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
  }
}

void Bitmap::XorWith(const Bitmap& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] ^= other.words_[i];
  }
}

Bitmap Bitmap::Difference(const Bitmap& a, const Bitmap& b) {
  Bitmap out = a;
  out.AndNotWith(b);
  return out;
}

bool Bitmap::operator==(const Bitmap& other) const {
  return num_bits_ == other.num_bits_ && words_ == other.words_;
}

bool Bitmap::DisjointWith(const Bitmap& other) const {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) {
      return false;
    }
  }
  return true;
}

std::vector<uint8_t> Bitmap::Serialize() const {
  std::vector<uint8_t> out((num_bits_ + 7) / 8);
  for (size_t i = 0; i < out.size(); ++i) {
    const uint64_t word = words_[i >> 3];
    out[i] = static_cast<uint8_t>(word >> ((i & 7) * 8));
  }
  return out;
}

Bitmap Bitmap::Deserialize(std::span<const uint8_t> bytes, size_t num_bits) {
  Bitmap out(num_bits);
  const size_t nbytes = std::min(bytes.size(), (num_bits + 7) / 8);
  for (size_t i = 0; i < nbytes; ++i) {
    out.words_[i >> 3] |= static_cast<uint64_t>(bytes[i]) << ((i & 7) * 8);
  }
  out.TrimTail();
  return out;
}

}  // namespace bkup

// Error handling primitives for the backup library.
//
// The library does not use exceptions on normal control paths; fallible
// operations return `Status` or `Result<T>`. This mirrors the status-return
// idiom of kernel/storage code where an I/O error is an expected outcome, not
// an exceptional one.
#ifndef BKUP_UTIL_STATUS_H_
#define BKUP_UTIL_STATUS_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace bkup {

// Coarse error taxonomy, patterned after POSIX errno classes that matter for a
// file system and its backup paths.
enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   // caller error: bad flag, bad range, bad name
  kNotFound,          // missing file, snapshot, inode, tape record
  kAlreadyExists,     // create of an existing name, duplicate snapshot
  kNoSpace,           // volume or tape out of blocks
  kIoError,           // device-level failure (disk dead, tape fault)
  kCorruption,        // checksum mismatch, malformed on-media structure
  kNotADirectory,     // path component is not a directory
  kIsADirectory,      // file operation on a directory
  kNotEmpty,          // rmdir of non-empty directory
  kPermission,        // operation not permitted in this mode
  kFailedPrecondition,// object in the wrong state for the request
  kUnsupported,       // feature intentionally absent (e.g. file in image dump)
  kExhausted,         // fixed resource table full (snapshots, inodes, tapes)
};

// Human-readable name of an ErrorCode ("NOT_FOUND" etc.).
const char* ErrorCodeName(ErrorCode code);

// A cheap, copyable success/error value. OK status carries no allocation.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status::Ok() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "NOT_FOUND: no such snapshot 'nightly.3'"
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

// Convenience constructors, used as `return InvalidArgument("bad level");`.
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status NoSpace(std::string message);
Status IoError(std::string message);
Status Corruption(std::string message);
Status NotADirectory(std::string message);
Status IsADirectory(std::string message);
Status NotEmpty(std::string message);
Status Permission(std::string message);
Status FailedPrecondition(std::string message);
Status Unsupported(std::string message);
Status Exhausted(std::string message);

// Result<T>: either a value or an error Status. Accessing the value of an
// error result is a programming bug and asserts.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(value_).ok() && "Result from OK status has no value");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(value_);
  }

 private:
  std::variant<T, Status> value_;
};

// Propagate an error Status from an expression that yields Status.
#define BKUP_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::bkup::Status _st = (expr);            \
    if (!_st.ok()) {                        \
      return _st;                           \
    }                                       \
  } while (0)

// Bind `lhs` to the value of a Result-yielding expression or propagate error.
#define BKUP_ASSIGN_OR_RETURN(lhs, expr)    \
  auto BKUP_CONCAT_(_res_, __LINE__) = (expr);                 \
  if (!BKUP_CONCAT_(_res_, __LINE__).ok()) {                   \
    return BKUP_CONCAT_(_res_, __LINE__).status();             \
  }                                                            \
  lhs = std::move(BKUP_CONCAT_(_res_, __LINE__)).value()

#define BKUP_CONCAT_(a, b) BKUP_CONCAT_IMPL_(a, b)
#define BKUP_CONCAT_IMPL_(a, b) a##b

}  // namespace bkup

#endif  // BKUP_UTIL_STATUS_H_

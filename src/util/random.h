// Deterministic pseudo-random generation for workloads and data seeding.
//
// Everything in the repository that is "random" flows through Rng so that a
// seed fully determines a generated file system, its aging history, and the
// contents of every file — which is what lets dump/restore round-trip tests
// verify data without storing a golden copy.
#ifndef BKUP_UTIL_RANDOM_H_
#define BKUP_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <string>

namespace bkup {

// SplitMix64: used to expand a user seed into stream seeds.
constexpr uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna; fast, high quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : state_) {
      s = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Chance(double p) { return NextDouble() < p; }

  // Lognormal(mu, sigma) via Box-Muller; used for file-size distributions.
  double LogNormal(double mu, double sigma) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) {
      u1 = 1e-12;
    }
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    return std::exp(mu + sigma * z);
  }

  // Fill `out` with deterministic bytes.
  void Fill(std::span<uint8_t> out) {
    size_t i = 0;
    while (i + 8 <= out.size()) {
      const uint64_t v = Next();
      for (int b = 0; b < 8; ++b) {
        out[i + b] = static_cast<uint8_t>(v >> (8 * b));
      }
      i += 8;
    }
    if (i < out.size()) {
      const uint64_t v = Next();
      for (int b = 0; b < 8 && i < out.size(); ++i, ++b) {
        out[i] = static_cast<uint8_t>(v >> (8 * b));
      }
    }
  }

  // Lowercase alphanumeric name of the given length.
  std::string Name(size_t length) {
    static constexpr char kAlpha[] = "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string s;
    s.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      s.push_back(kAlpha[Below(sizeof(kAlpha) - 1)]);
    }
    return s;
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace bkup

#endif  // BKUP_UTIL_RANDOM_H_

// Little-endian serialization into byte vectors, used by every on-media
// format (dump tape records, image stream, on-disk superblock, NVRAM log).
// All on-media integers are little-endian regardless of host order, which is
// what makes the dump format "architecture neutral" as the paper requires.
#ifndef BKUP_UTIL_SERDES_H_
#define BKUP_UTIL_SERDES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace bkup {

// Appends fixed-width little-endian values to a growing byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) { PutLE(v, 2); }
  void PutU32(uint32_t v) { PutLE(v, 4); }
  void PutU64(uint64_t v) { PutLE(v, 8); }
  void PutI64(int64_t v) { PutLE(static_cast<uint64_t>(v), 8); }

  void PutBytes(std::span<const uint8_t> bytes) {
    out_->insert(out_->end(), bytes.begin(), bytes.end());
  }

  // Length-prefixed (u16) string; names on tape are bounded at 64 KiB.
  void PutString(const std::string& s) {
    PutU16(static_cast<uint16_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }

  // Pads with zero bytes until out->size() is a multiple of `alignment`.
  void PadTo(size_t alignment) {
    while (out_->size() % alignment != 0) {
      out_->push_back(0);
    }
  }

  size_t size() const { return out_->size(); }

 private:
  void PutLE(uint64_t v, int nbytes) {
    for (int i = 0; i < nbytes; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t>* out_;
};

// Consumes fixed-width little-endian values from a byte span with bounds
// checking; any overrun turns into a Corruption status, never UB.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ >= data_.size(); }

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<std::string> ReadString();

  // Copies `n` bytes out; fails with Corruption if fewer remain.
  Result<std::vector<uint8_t>> ReadBytes(size_t n);

  // Returns a view of `n` bytes and advances, without copying.
  Result<std::span<const uint8_t>> ReadSpan(size_t n);

  Status Skip(size_t n);
  Status AlignTo(size_t alignment);

 private:
  Result<uint64_t> ReadLE(int nbytes);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace bkup

#endif  // BKUP_UTIL_SERDES_H_

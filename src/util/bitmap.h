// Dynamic bitset tuned for block-map work: set algebra (the Table 1
// incremental computation is literally `B.AndNot(A)`), fast scans for the
// write allocator, and serialization for the dump inode maps.
#ifndef BKUP_UTIL_BITMAP_H_
#define BKUP_UTIL_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace bkup {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t num_bits) { Resize(num_bits); }

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  // Grows or shrinks; new bits are zero.
  void Resize(size_t num_bits);

  bool Test(size_t bit) const {
    return (words_[bit >> 6] >> (bit & 63)) & 1;
  }
  void Set(size_t bit) { words_[bit >> 6] |= (1ull << (bit & 63)); }
  void Clear(size_t bit) { words_[bit >> 6] &= ~(1ull << (bit & 63)); }
  void Assign(size_t bit, bool value) {
    if (value) {
      Set(bit);
    } else {
      Clear(bit);
    }
  }

  void SetRange(size_t first, size_t count);
  void ClearAll();
  void SetAll();

  // Number of set bits.
  size_t CountOnes() const;

  // Number of set bits in [first, first + count).
  size_t CountOnesInRange(size_t first, size_t count) const;

  // Index of the first set/clear bit at or after `from`, or npos.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t FindFirstSet(size_t from = 0) const;
  size_t FindFirstClear(size_t from = 0) const;

  // In-place set algebra. Operand must be the same size.
  void OrWith(const Bitmap& other);
  void AndWith(const Bitmap& other);
  void AndNotWith(const Bitmap& other);  // this &= ~other
  void XorWith(const Bitmap& other);

  // out-of-place: a & ~b — "blocks in a that are not in b" (Table 1).
  static Bitmap Difference(const Bitmap& a, const Bitmap& b);

  bool operator==(const Bitmap& other) const;

  // True if no bit is set in both.
  bool DisjointWith(const Bitmap& other) const;

  // Invoke fn(index) for every set bit, ascending.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  // Serialized form: raw little-endian words covering size() bits, rounded up
  // to whole bytes. Used by the dump format's inode maps.
  std::vector<uint8_t> Serialize() const;
  static Bitmap Deserialize(std::span<const uint8_t> bytes, size_t num_bits);

  // Direct word access for checksumming.
  std::span<const uint64_t> words() const { return words_; }

 private:
  // Zero any bits beyond num_bits_ in the last word so CountOnes and
  // comparisons stay exact.
  void TrimTail();

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace bkup

#endif  // BKUP_UTIL_BITMAP_H_

#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bkup {

size_t PercentileBucketIndex(const uint64_t* buckets, size_t n,
                             uint64_t total, double fraction) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto target =
      static_cast<uint64_t>(std::ceil(fraction * static_cast<double>(total)));
  uint64_t seen = 0;
  for (size_t i = 0; i < n; ++i) {
    seen += buckets[i];
    if (seen >= target) {
      return i;
    }
  }
  return n - 1;
}

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) {
    min_ = x;
  }
  if (x > max_) {
    max_ = x;
  }
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {
int BucketOf(uint64_t value) {
  if (value == 0) {
    return 0;
  }
  return 64 - __builtin_clzll(value);
}
}  // namespace

void Log2Histogram::Add(uint64_t value) {
  ++buckets_[BucketOf(value) % kBuckets];
  ++total_;
}

uint64_t Log2Histogram::Percentile(double fraction) const {
  if (total_ == 0) {
    return 0;
  }
  const size_t b =
      PercentileBucketIndex(buckets_, kBuckets, total_, fraction);
  // Bucket b covers [2^(b-1), 2^b - 1] (bucket 0 holds only zero); report
  // its inclusive upper bound, mirroring Histogram::BucketUpperBound.
  return b == 0 ? 0 : (1ull << b) - 1;
}

std::string Log2Histogram::ToString() const {
  std::string out;
  char line[128];
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) {
      continue;
    }
    const uint64_t lo = b == 0 ? 0 : (1ull << (b - 1));
    const uint64_t hi = (1ull << b) - 1;
    std::snprintf(line, sizeof(line), "[%llu, %llu]: %llu\n",
                  static_cast<unsigned long long>(lo),
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(buckets_[b]));
    out += line;
  }
  return out;
}

}  // namespace bkup

#include "src/util/checksum.h"

#include <array>

namespace bkup {
namespace {

// Generate the CRC-32C (polynomial 0x1EDC6F41, reflected 0x82F63B78) table at
// static-init time; 256 entries, byte-at-a-time.
std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = MakeCrc32cTable();
  return table;
}

}  // namespace

uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed) {
  const auto& table = Crc32cTable();
  uint32_t crc = ~seed;
  for (uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Adler32(std::span<const uint8_t> data, uint32_t seed) {
  constexpr uint32_t kMod = 65521;
  uint32_t a = seed & 0xFFFF;
  uint32_t b = (seed >> 16) & 0xFFFF;
  size_t i = 0;
  while (i < data.size()) {
    // Process in chunks small enough that a and b cannot overflow 32 bits.
    size_t chunk = data.size() - i;
    if (chunk > 5552) {
      chunk = 5552;
    }
    for (size_t j = 0; j < chunk; ++j) {
      a += data[i + j];
      b += a;
    }
    a %= kMod;
    b %= kMod;
    i += chunk;
  }
  return (b << 16) | a;
}

void Crc32cAccumulator::Update(std::span<const uint8_t> data) {
  value_ = Crc32c(data, value_);
}

}  // namespace bkup

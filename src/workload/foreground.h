// Live foreground load: deterministic multi-client NFS-like traffic kept
// running while backups execute (DESIGN.md §15).
//
// Each simulated client is one coroutine looping think-time -> operation,
// where an operation is a functional file-system call (instant, like the
// dump engines) plus the simulated charges it would cost a real filer:
// CPU per the FilerModel, NVRAM for logged writes, and disk-arm time for
// the exact volume blocks a read came off. Because those charges run at
// class `kPriorityForeground` against the same `Resource`s a dump replay
// uses, a backup's interference with live traffic — and the relief a
// `BackupQos` throttle/demotion buys — shows up directly in the recorded
// per-op latencies.
//
// Determinism is the design center:
//   * Every random choice comes from per-client Rng streams seeded by
//     (params.seed, client index); clients never share a stream, so the
//     DES interleaving cannot perturb what any client decides to do.
//   * Write offsets are clamped to the target's current size and created
//     files live in per-client directories, so the *parameters* of the op
//     stream are identical whether or not a dump runs concurrently.
//   * `OpMixCrc()` hashes those parameters (per client, combined in client
//     order — execution interleaving cannot reorder it); it must match
//     between a loaded and an unloaded run of the same seed. `TraceCrc()`
//     additionally hashes each op's start time and latency; it must match
//     across reruns of the *same* configuration.
#ifndef BKUP_WORKLOAD_FOREGROUND_H_
#define BKUP_WORKLOAD_FOREGROUND_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/backup/filer.h"
#include "src/fs/filesystem.h"
#include "src/obs/metrics.h"
#include "src/sim/sync.h"
#include "src/util/checksum.h"
#include "src/util/random.h"

namespace bkup {

// Foreground operation classes, the NFS mix of §5's "live file service".
enum class FgOp : uint8_t {
  kLookup = 0,  // path walk + getattr
  kRead,        // random-offset read of a population file
  kWrite,       // random-offset overwrite (NVRAM-logged, write-behind)
  kCreate,      // new file in the client's directory, with initial data
  kDelete,      // unlink of a file the client created
  kCount,
};

const char* FgOpName(FgOp op);

struct ForegroundParams {
  uint64_t seed = 2026;
  uint32_t num_clients = 8;
  // How long the load runs (simulated); clients stop issuing at this point
  // and drain their final operation. Ignored when ops_per_client is set.
  SimDuration duration = 60 * kSecond;
  // When > 0, each client issues exactly this many operations (think-time
  // paced) instead of running for `duration`. Count-based termination is
  // what makes the op stream — and so OpMixCrc() — invariant under a
  // concurrent dump: a time-based window clips a contended run's stream
  // short, so only rerun determinism holds there.
  uint64_t ops_per_client = 0;
  // Exponential think time between a client's operations.
  SimDuration mean_think_time = 20 * kMillisecond;
  // Relative op-class weights (any non-negative scale).
  double lookup_weight = 2.0;
  double read_weight = 6.0;
  double write_weight = 3.0;
  double create_weight = 0.5;
  double delete_weight = 0.5;
  // I/O size draw: exponential with this mean, capped.
  uint64_t mean_io_bytes = 16 * kKiB;
  uint64_t max_io_bytes = 128 * kKiB;
  // At most this many population files are indexed as read/write targets
  // (breadth-first over the tree, "/fg" excluded).
  size_t max_population_files = 512;
  // Cadence of the consistency-point flusher, which converts the file
  // system's CP write counters into foreground disk charges (the
  // write-behind half of the WAFL write path). 0 disables the flusher.
  SimDuration flush_interval = 10 * kSecond;
};

// Exact latency summary for one op class (or all ops), microseconds.
// Percentiles are computed from the raw samples, not histogram buckets, so
// bench gates on p99 ratios are not quantized.
struct LatencySummary {
  uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

struct ForegroundStats {
  std::array<uint64_t, static_cast<size_t>(FgOp::kCount)> ops{};
  uint64_t errors = 0;  // unexpected Status failures (should stay 0)
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t cp_blocks_flushed = 0;  // charged by the CP flusher
  uint64_t total_ops() const {
    uint64_t n = 0;
    for (uint64_t c : ops) n += c;
    return n;
  }
};

// The load generator. Construct, then Spawn(Run(&latch)) on the
// environment; the latch counts down when every client has drained and the
// flusher has stopped. Latencies additionally land in the obs registry as
// `fg.latency_us{op=...}` log2 histograms.
class ForegroundLoad {
 public:
  ForegroundLoad(Filer* filer, Filesystem* fs, ForegroundParams params);

  Task Run(CountdownLatch* done);

  const ForegroundParams& params() const { return params_; }
  const ForegroundStats& stats() const { return stats_; }

  // See the header comment for the two checksums' invariance contracts.
  uint32_t OpMixCrc() const;
  uint32_t TraceCrc() const;

  LatencySummary Summarize() const;
  LatencySummary SummarizeOp(FgOp op) const;
  // Summary over only the ops that *started* in [begin, end) — the
  // interference bench scores foreground service during the dump window
  // rather than diluting it over the whole run.
  LatencySummary SummarizeBetween(SimTime begin, SimTime end) const;

 private:
  struct OwnedFile {
    std::string path;
    Inum inum = 0;
    uint64_t size = 0;
    // Client-local creation index, used as the op-mix hash target instead of
    // the inum: inum allocation order depends on how the DES interleaves
    // clients, so hashing it would break OpMixCrc invariance under load.
    uint64_t id = 0;
  };
  struct Client {
    uint32_t index = 0;
    Rng rng{0};
    std::vector<OwnedFile> owned;
    uint64_t created = 0;  // filename counter
    Crc32cAccumulator mix_crc;
    Crc32cAccumulator trace_crc;
  };

  Task ClientLoop(Client* client, CountdownLatch* latch);
  Task Flusher(CountdownLatch* latch);
  Task RunOp(Client* client, FgOp op);

  Task OpLookup(Client* client);
  Task OpRead(Client* client);
  Task OpWrite(Client* client);
  Task OpCreate(Client* client);
  Task OpDelete(Client* client);

  FgOp PickOp(Client* client) const;
  uint64_t DrawIoBytes(Rng* rng) const;
  SimDuration DrawThink(Rng* rng) const;
  // Appends (client, op, target, offset, bytes) to the client's mix CRC and
  // returns the op start time for the trace CRC.
  void HashOp(Client* client, FgOp op, uint64_t target, uint64_t offset,
              uint64_t bytes);
  void RecordLatency(Client* client, FgOp op, SimTime start);
  void CountError(const Status& st);

  Filer* filer_;
  Filesystem* fs_;
  ForegroundParams params_;
  SimTime end_time_ = 0;
  // Fixed population index, collected once at Run start: (path, inum) of
  // regular files outside /fg, breadth-first order.
  std::vector<std::pair<std::string, Inum>> population_;
  std::vector<Client> clients_;
  ForegroundStats stats_;
  std::array<std::vector<double>, static_cast<size_t>(FgOp::kCount)>
      samples_us_;
  // Every op as (start time, latency), for windowed summaries.
  std::vector<std::pair<SimTime, double>> timeline_;
  std::array<Histogram*, static_cast<size_t>(FgOp::kCount)> obs_hist_{};
  uint64_t flusher_last_data_ = 0;
  uint64_t flusher_last_meta_ = 0;
  uint32_t clients_running_ = 0;  // lets the flusher outlive a count-based run
};

}  // namespace bkup

#endif  // BKUP_WORKLOAD_FOREGROUND_H_

// Synthetic file-system population, standing in for the paper's 188 GB
// "copies of real file systems from Network Appliance's engineering
// department".
//
// The generator builds a directory tree with lognormally distributed file
// sizes (the classic engineering-home-directory shape: many small files,
// a long tail of large ones), optionally split into N equal "quota trees"
// — the NetApp construct §5.2 uses to parallelize logical dumps. Content is
// deterministic in the seed, so restores can be verified without golden
// copies.
#ifndef BKUP_WORKLOAD_POPULATION_H_
#define BKUP_WORKLOAD_POPULATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/fs/filesystem.h"
#include "src/fs/reader.h"
#include "src/util/status.h"

namespace bkup {

struct WorkloadParams {
  uint64_t seed = 1999;
  // Total user data to create, split evenly across quota trees.
  uint64_t target_bytes = 64 * kMiB;
  // Lognormal size distribution (median and shape).
  double median_file_bytes = 24 * 1024;
  double sigma = 1.4;
  uint64_t max_file_bytes = 8 * kMiB;
  // Tree shape.
  uint32_t files_per_directory = 12;
  double subdir_probability = 0.12;
  // Namespace variety.
  double symlink_fraction = 0.02;
  double hardlink_fraction = 0.01;
  double sparse_fraction = 0.02;
  // Number of top-level quota trees ("/qt0", "/qt1", ...).
  uint32_t quota_trees = 1;
};

struct WorkloadStats {
  uint32_t files = 0;
  uint32_t directories = 0;
  uint32_t symlinks = 0;
  uint32_t hardlinks = 0;
  uint64_t bytes = 0;
};

// Fills `fs` per the parameters and leaves it at a consistency point.
Result<WorkloadStats> PopulateFilesystem(Filesystem* fs,
                                         const WorkloadParams& params);

// Quota-tree root path ("/qt2").
std::string QuotaTreePath(uint32_t index);

// ------------------------------------------------------------- tree walk ---

// Visits every file/symlink (not directories) under `root_path`, with its
// absolute path and inode.
Status WalkTree(const FsReader& reader, const std::string& root_path,
                const std::function<void(const std::string&,
                                         Inum, const InodeData&)>& fn);

// CRC-32C of every file's content, keyed by path — the standard way the
// tests and examples compare a restored tree against its source.
Result<std::map<std::string, uint32_t>> ChecksumTree(
    const FsReader& reader, const std::string& root_path = "/");

}  // namespace bkup

#endif  // BKUP_WORKLOAD_POPULATION_H_

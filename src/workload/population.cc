#include "src/workload/population.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "src/util/checksum.h"
#include "src/util/random.h"

namespace bkup {

std::string QuotaTreePath(uint32_t index) {
  return "/qt" + std::to_string(index);
}

namespace {

// Writes `nbytes` of seeded data in bounded slices (keeps any attached
// NVRAM log from ballooning on huge files).
Status WriteSeededData(Filesystem* fs, Inum inum, uint64_t offset,
                       uint64_t nbytes, Rng* rng) {
  std::vector<uint8_t> chunk;
  uint64_t written = 0;
  while (written < nbytes) {
    const uint64_t n = std::min<uint64_t>(nbytes - written, 512 * kKiB);
    chunk.resize(n);
    rng->Fill(chunk);
    BKUP_RETURN_IF_ERROR(fs->Write(inum, offset + written, chunk));
    written += n;
  }
  return Status::Ok();
}

uint64_t SampleFileSize(Rng* rng, const WorkloadParams& p) {
  const double mu = std::log(p.median_file_bytes);
  const double size = rng->LogNormal(mu, p.sigma);
  return std::clamp<uint64_t>(static_cast<uint64_t>(size), 1,
                              p.max_file_bytes);
}

}  // namespace

Result<WorkloadStats> PopulateFilesystem(Filesystem* fs,
                                         const WorkloadParams& params) {
  if (params.quota_trees == 0) {
    return InvalidArgument("need at least one quota tree");
  }
  Rng rng(params.seed);
  WorkloadStats stats;
  const uint64_t per_tree = params.target_bytes / params.quota_trees;

  for (uint32_t qt = 0; qt < params.quota_trees; ++qt) {
    const std::string root =
        params.quota_trees == 1 ? "" : QuotaTreePath(qt);
    if (!root.empty()) {
      BKUP_RETURN_IF_ERROR(fs->Mkdir(root, 0755).status());
      stats.directories++;
    }
    // Directories we may place files into; bias toward recent ones so the
    // tree grows deep as well as wide.
    std::vector<std::string> dirs{root};
    uint64_t tree_bytes = 0;
    uint32_t file_seq = 0;
    std::string last_file_path;

    while (tree_bytes < per_tree) {
      // Occasionally open a new directory.
      if (rng.Chance(params.subdir_probability)) {
        const std::string parent = dirs[dirs.size() <= 4
                                            ? rng.Below(dirs.size())
                                            : dirs.size() - 1 -
                                                  rng.Below(4)];
        const std::string path =
            parent + "/" + rng.Name(3) + std::to_string(dirs.size());
        BKUP_RETURN_IF_ERROR(fs->Mkdir(path, 0755).status());
        dirs.push_back(path);
        stats.directories++;
        continue;
      }
      const std::string& dir = dirs[rng.Below(dirs.size())];
      const std::string name = rng.Name(6) + std::to_string(file_seq++);
      const std::string path = dir + "/" + name;

      if (!last_file_path.empty() && rng.Chance(params.symlink_fraction)) {
        BKUP_RETURN_IF_ERROR(
            fs->SymlinkAt(last_file_path, path + ".lnk").status());
        stats.symlinks++;
        continue;
      }
      if (!last_file_path.empty() && rng.Chance(params.hardlink_fraction)) {
        Status st = fs->Link(last_file_path, path + ".hl");
        if (st.ok()) {
          stats.hardlinks++;
        }
        continue;
      }

      BKUP_ASSIGN_OR_RETURN(Inum inum, fs->Create(path, 0644));
      uint64_t size = SampleFileSize(&rng, params);
      size = std::min(size, per_tree - tree_bytes);
      if (size == 0) {
        size = 1;
      }
      if (rng.Chance(params.sparse_fraction) && size > 2 * kBlockSize) {
        // Sparse file: real data only in the final stretch.
        const uint64_t hole = size / 2 / kBlockSize * kBlockSize;
        BKUP_RETURN_IF_ERROR(
            WriteSeededData(fs, inum, hole, size - hole, &rng));
      } else {
        BKUP_RETURN_IF_ERROR(WriteSeededData(fs, inum, 0, size, &rng));
      }
      stats.files++;
      stats.bytes += size;
      tree_bytes += size;
      last_file_path = path;

      // Keep the dirty set bounded, as periodic consistency points would.
      if (stats.files % 64 == 0) {
        BKUP_RETURN_IF_ERROR(fs->ConsistencyPoint().status());
      }
    }
  }
  BKUP_RETURN_IF_ERROR(fs->ConsistencyPoint().status());
  return stats;
}

Status WalkTree(const FsReader& reader, const std::string& root_path,
                const std::function<void(const std::string&, Inum,
                                         const InodeData&)>& fn) {
  BKUP_ASSIGN_OR_RETURN(Inum root, reader.LookupPath(root_path));
  std::deque<std::pair<Inum, std::string>> queue{
      {root, root_path == "/" ? "" : root_path}};
  while (!queue.empty()) {
    auto [dir, path] = queue.front();
    queue.pop_front();
    BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries,
                          reader.ReadDirInum(dir));
    for (const DirEntry& e : entries) {
      const std::string child = path + "/" + e.name;
      if (e.type == InodeType::kDirectory) {
        queue.emplace_back(e.inum, child);
      } else {
        BKUP_ASSIGN_OR_RETURN(InodeData inode, reader.ReadInode(e.inum));
        fn(child, e.inum, inode);
      }
    }
  }
  return Status::Ok();
}

Result<std::map<std::string, uint32_t>> ChecksumTree(
    const FsReader& reader, const std::string& root_path) {
  std::map<std::string, uint32_t> sums;
  Status inner = Status::Ok();
  BKUP_RETURN_IF_ERROR(WalkTree(
      reader, root_path,
      [&](const std::string& path, Inum inum, const InodeData& inode) {
        (void)inum;
        if (!inner.ok()) {
          return;
        }
        std::vector<uint8_t> bytes;
        Status st = reader.ReadFile(inode, 0, inode.size, &bytes);
        if (!st.ok()) {
          inner = st;
          return;
        }
        sums[path] = Crc32c(bytes);
      }));
  BKUP_RETURN_IF_ERROR(inner);
  return sums;
}

}  // namespace bkup

#include "src/workload/foreground.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <deque>

#include "src/backup/charge.h"

namespace bkup {

const char* FgOpName(FgOp op) {
  switch (op) {
    case FgOp::kLookup:
      return "lookup";
    case FgOp::kRead:
      return "read";
    case FgOp::kWrite:
      return "write";
    case FgOp::kCreate:
      return "create";
    case FgOp::kDelete:
      return "delete";
    case FgOp::kCount:
      break;
  }
  return "?";
}

namespace {

size_t OpIndex(FgOp op) { return static_cast<size_t>(op); }

// Keeps client-local owned-file ids disjoint from population inums in the
// op-mix hash's target space.
constexpr uint64_t kOwnedTargetBit = 1ull << 62;

uint32_t PathComponents(const std::string& path) {
  uint32_t n = 0;
  for (char c : path) {
    if (c == '/') {
      ++n;
    }
  }
  return std::max<uint32_t>(n, 1);
}

// Little-endian field serialization for the checksums: fixed width, so the
// hash is a function of the values alone.
void HashU64(Crc32cAccumulator* crc, uint64_t v) {
  uint8_t buf[8];
  std::memcpy(buf, &v, sizeof(v));
  crc->Update(buf);
}

double ExactPercentile(std::vector<double>* sorted, double fraction) {
  if (sorted->empty()) {
    return 0.0;
  }
  const size_t idx = std::min(
      sorted->size() - 1,
      static_cast<size_t>(fraction * static_cast<double>(sorted->size())));
  return (*sorted)[idx];
}

LatencySummary SummarizeSamples(std::vector<double> samples) {
  LatencySummary s;
  s.count = samples.size();
  if (samples.empty()) {
    return s;
  }
  double sum = 0.0;
  for (double v : samples) {
    sum += v;
  }
  std::sort(samples.begin(), samples.end());
  s.mean_us = sum / static_cast<double>(samples.size());
  s.p50_us = ExactPercentile(&samples, 0.50);
  s.p95_us = ExactPercentile(&samples, 0.95);
  s.p99_us = ExactPercentile(&samples, 0.99);
  s.max_us = samples.back();
  return s;
}

}  // namespace

ForegroundLoad::ForegroundLoad(Filer* filer, Filesystem* fs,
                               ForegroundParams params)
    : filer_(filer), fs_(fs), params_(params) {
  clients_.resize(params_.num_clients);
  for (uint32_t i = 0; i < params_.num_clients; ++i) {
    clients_[i].index = i;
    // SplitMix-spread per-client seeds: client streams must not overlap.
    clients_[i].rng = Rng(params_.seed * 0x9E3779B97F4A7C15ull + i + 1);
  }
}

FgOp ForegroundLoad::PickOp(Client* client) const {
  const double w[] = {params_.lookup_weight, params_.read_weight,
                      params_.write_weight, params_.create_weight,
                      params_.delete_weight};
  double total = 0.0;
  for (double x : w) {
    total += x;
  }
  double u = client->rng.NextDouble() * total;
  for (size_t i = 0; i < std::size(w); ++i) {
    u -= w[i];
    if (u < 0.0) {
      return static_cast<FgOp>(i);
    }
  }
  return FgOp::kRead;
}

uint64_t ForegroundLoad::DrawIoBytes(Rng* rng) const {
  const double u = rng->NextDouble();
  const double mean = static_cast<double>(params_.mean_io_bytes);
  const uint64_t n =
      1 + static_cast<uint64_t>(-mean * std::log(1.0 - u * 0.999999));
  return std::min<uint64_t>(n, params_.max_io_bytes);
}

SimDuration ForegroundLoad::DrawThink(Rng* rng) const {
  const double u = rng->NextDouble();
  const double mean = static_cast<double>(params_.mean_think_time);
  return static_cast<SimDuration>(-mean * std::log(1.0 - u * 0.999999));
}

void ForegroundLoad::HashOp(Client* client, FgOp op, uint64_t target,
                            uint64_t offset, uint64_t bytes) {
  const uint64_t fields[] = {client->index, static_cast<uint64_t>(op), target,
                             offset, bytes};
  for (uint64_t f : fields) {
    HashU64(&client->mix_crc, f);
    HashU64(&client->trace_crc, f);
  }
}

void ForegroundLoad::RecordLatency(Client* client, FgOp op, SimTime start) {
  const SimDuration latency = filer_->env()->now() - start;
  HashU64(&client->trace_crc, static_cast<uint64_t>(start));
  HashU64(&client->trace_crc, static_cast<uint64_t>(latency));
  const double us = static_cast<double>(latency);  // SimDuration is in us
  samples_us_[OpIndex(op)].push_back(us);
  timeline_.emplace_back(start, us);
  ++stats_.ops[OpIndex(op)];
  if (obs_hist_[OpIndex(op)] != nullptr) {
    obs_hist_[OpIndex(op)]->Observe(us);
  }
}

void ForegroundLoad::CountError(const Status& st) {
  if (!st.ok()) {
    ++stats_.errors;
  }
}

// ------------------------------------------------------------ operations ---

Task ForegroundLoad::OpLookup(Client* client) {
  const auto& [path, inum] =
      population_[client->rng.Below(population_.size())];
  HashOp(client, FgOp::kLookup, inum, 0, 0);
  const SimTime start = filer_->env()->now();
  const std::vector<CpuCharge> cpu{{CpuCost::kPathLookup,
                                    PathComponents(path)},
                                   {CpuCost::kMapInode, 1}};
  co_await filer_->ChargeCpu(cpu);
  CountError(fs_->GetAttr(inum).status());
  RecordLatency(client, FgOp::kLookup, start);
}

Task ForegroundLoad::OpRead(Client* client) {
  const Inum inum =
      population_[client->rng.Below(population_.size())].second;
  Result<InodeData> attr = fs_->GetAttr(inum);
  if (!attr.ok()) {
    CountError(attr.status());
    co_return;
  }
  const uint64_t size = std::max<uint64_t>(attr->size, 1);
  const uint64_t len = std::min(DrawIoBytes(&client->rng), size);
  const uint64_t offset = size > len ? client->rng.Below(size - len + 1) : 0;
  HashOp(client, FgOp::kRead, inum, offset, len);
  const SimTime start = filer_->env()->now();

  std::vector<uint8_t> data;
  std::vector<Vbn> vbns;
  CountError(fs_->Read(inum, offset, len, &data, &vbns));
  stats_.bytes_read += data.size();
  const std::vector<CpuCharge> cpu{
      {CpuCost::kMapInode, 1},
      {CpuCost::kLogicalBlock, (len + kBlockSize - 1) / kBlockSize}};
  co_await filer_->ChargeCpu(cpu);
  if (!vbns.empty()) {
    co_await ChargeDiskAccess(filer_->env(), fs_->volume(), vbns,
                              /*parity_writes=*/false);
  }
  RecordLatency(client, FgOp::kRead, start);
}

Task ForegroundLoad::OpWrite(Client* client) {
  // Half the writes touch the shared population (sizes stay fixed: the
  // offset is clamped so the write never extends the file), half the
  // client's own files.
  uint64_t inum;
  uint64_t size;
  uint64_t target;  // interleaving-stable id for the mix hash
  const bool own = !client->owned.empty() && client->rng.Chance(0.5);
  if (own) {
    const OwnedFile& f =
        client->owned[client->rng.Below(client->owned.size())];
    inum = f.inum;
    size = f.size;
    target = kOwnedTargetBit | f.id;
  } else {
    const auto& entry = population_[client->rng.Below(population_.size())];
    inum = entry.second;
    target = inum;
    Result<InodeData> attr = fs_->GetAttr(inum);
    if (!attr.ok()) {
      CountError(attr.status());
      co_return;
    }
    size = attr->size;
  }
  size = std::max<uint64_t>(size, 1);
  const uint64_t len = std::min(DrawIoBytes(&client->rng), size);
  const uint64_t offset = size > len ? client->rng.Below(size - len + 1) : 0;
  HashOp(client, FgOp::kWrite, target, offset, len);
  const SimTime start = filer_->env()->now();

  const std::vector<uint8_t> data(
      len, static_cast<uint8_t>(client->index * 31 + 7));
  CountError(fs_->Write(inum, offset, data));
  stats_.bytes_written += len;
  // The WAFL write path: CPU to absorb the op, NVRAM to log it; the dirty
  // blocks reach disk later through the CP flusher.
  const std::vector<CpuCharge> cpu{
      {CpuCost::kMapInode, 1},
      {CpuCost::kLogicalBlock, (len + kBlockSize - 1) / kBlockSize}};
  co_await filer_->ChargeCpu(cpu);
  co_await filer_->ChargeNvram(len);
  RecordLatency(client, FgOp::kWrite, start);
}

Task ForegroundLoad::OpCreate(Client* client) {
  const std::string path = "/fg/c" + std::to_string(client->index) + "/f" +
                           std::to_string(client->created++);
  const uint64_t len = DrawIoBytes(&client->rng);
  HashOp(client, FgOp::kCreate, client->created, 0, len);
  const SimTime start = filer_->env()->now();

  Result<Inum> inum = fs_->Create(path, 0644);
  if (!inum.ok()) {
    CountError(inum.status());
    co_return;
  }
  const std::vector<uint8_t> data(
      len, static_cast<uint8_t>(client->index * 31 + 7));
  CountError(fs_->Write(*inum, 0, data));
  stats_.bytes_written += len;
  client->owned.push_back(OwnedFile{path, *inum, len, client->created});
  const std::vector<CpuCharge> cpu{
      {CpuCost::kPathLookup, PathComponents(path)},
      {CpuCost::kDirEntry, 1},
      {CpuCost::kMapInode, 1},
      {CpuCost::kLogicalBlock, (len + kBlockSize - 1) / kBlockSize}};
  co_await filer_->ChargeCpu(cpu);
  co_await filer_->ChargeNvram(len);
  RecordLatency(client, FgOp::kCreate, start);
}

Task ForegroundLoad::OpDelete(Client* client) {
  if (client->owned.empty()) {
    // Nothing of ours to delete yet; create instead (deterministic: the
    // owned list's emptiness is a pure function of the client's op stream).
    co_await OpCreate(client);
    co_return;
  }
  const size_t pick = client->rng.Below(client->owned.size());
  const OwnedFile target = client->owned[pick];
  client->owned.erase(client->owned.begin() +
                      static_cast<ptrdiff_t>(pick));
  HashOp(client, FgOp::kDelete, kOwnedTargetBit | target.id, 0, 0);
  const SimTime start = filer_->env()->now();

  CountError(fs_->Unlink(target.path));
  const std::vector<CpuCharge> cpu{
      {CpuCost::kPathLookup, PathComponents(target.path)},
      {CpuCost::kDirEntry, 1},
      {CpuCost::kMapInode, 1}};
  co_await filer_->ChargeCpu(cpu);
  co_await filer_->ChargeNvram(64);  // the unlink's NVRAM log record
  RecordLatency(client, FgOp::kDelete, start);
}

Task ForegroundLoad::RunOp(Client* client, FgOp op) {
  switch (op) {
    case FgOp::kLookup:
      co_await OpLookup(client);
      break;
    case FgOp::kRead:
      co_await OpRead(client);
      break;
    case FgOp::kWrite:
      co_await OpWrite(client);
      break;
    case FgOp::kCreate:
      co_await OpCreate(client);
      break;
    case FgOp::kDelete:
      co_await OpDelete(client);
      break;
    case FgOp::kCount:
      break;
  }
}

Task ForegroundLoad::ClientLoop(Client* client, CountdownLatch* latch) {
  SimEnvironment* env = filer_->env();
  if (params_.ops_per_client > 0) {
    // Count-based: the op stream length is fixed, so contention stretches
    // the run instead of clipping it (the OpMixCrc invariance mode).
    for (uint64_t k = 0; k < params_.ops_per_client; ++k) {
      co_await env->Delay(DrawThink(&client->rng));
      co_await RunOp(client, PickOp(client));
    }
  } else {
    while (env->now() < end_time_) {
      co_await env->Delay(DrawThink(&client->rng));
      if (env->now() >= end_time_) {
        break;
      }
      co_await RunOp(client, PickOp(client));
    }
  }
  --clients_running_;
  latch->CountDown();
}

Task ForegroundLoad::Flusher(CountdownLatch* latch) {
  SimEnvironment* env = filer_->env();
  while (clients_running_ > 0) {
    co_await env->Delay(params_.flush_interval);
    if (fs_->HasDirtyState()) {
      Result<CpReport> cp = fs_->ConsistencyPoint();
      CountError(cp.status());
    }
    // Charge the write-behind disk time for whatever the CPs (ours and the
    // auto-CPs writes trigger) flushed since the last pass. The counters
    // are monotone unless someone calls MarkCpCounters; re-base if so.
    const uint64_t data = fs_->cp_data_writes_since_mark();
    const uint64_t meta = fs_->cp_meta_writes_since_mark();
    if (data < flusher_last_data_ || meta < flusher_last_meta_) {
      flusher_last_data_ = 0;
      flusher_last_meta_ = 0;
    }
    const uint64_t blocks =
        (data - flusher_last_data_) + (meta - flusher_last_meta_);
    flusher_last_data_ = data;
    flusher_last_meta_ = meta;
    if (blocks > 0) {
      stats_.cp_blocks_flushed += blocks;
      co_await ChargeSequentialWrites(env, fs_->volume(), blocks);
    }
  }
  latch->CountDown();
}

Task ForegroundLoad::Run(CountdownLatch* done) {
  SimEnvironment* env = filer_->env();
  end_time_ = env->now() + params_.duration;

  // Resolve the obs histogram handles now (not in the constructor, so a
  // registry Clear() between construction and Run cannot dangle them).
  for (size_t i = 0; i < OpIndex(FgOp::kCount); ++i) {
    obs_hist_[i] = MetricsRegistry::Default().GetHistogram(
        "fg.latency_us", HistogramOptions::Log2(),
        {{"op", FgOpName(static_cast<FgOp>(i))}});
  }

  // Index the population: breadth-first, regular files only, /fg excluded.
  // The order is deterministic (directory entries are stored in creation
  // order), and the index is frozen before any client starts.
  population_.clear();
  std::deque<std::pair<std::string, Inum>> dirs;
  Result<Inum> root = fs_->LookupPath("/");
  if (root.ok()) {
    dirs.emplace_back("", *root);
  }
  while (!dirs.empty() && population_.size() < params_.max_population_files) {
    auto [prefix, dir] = dirs.front();
    dirs.pop_front();
    Result<std::vector<DirEntry>> entries = fs_->ReadDir(dir);
    if (!entries.ok()) {
      continue;
    }
    for (const DirEntry& e : *entries) {
      const std::string path = prefix + "/" + e.name;
      if (path == "/fg") {
        continue;
      }
      if (e.type == InodeType::kDirectory) {
        dirs.emplace_back(path, e.inum);
      } else if (e.type == InodeType::kFile &&
                 population_.size() < params_.max_population_files) {
        population_.push_back({path, e.inum});
      }
    }
  }
  assert(!population_.empty() && "foreground load needs a populated fs");

  // Per-client working directories.
  if (!fs_->LookupPath("/fg").ok()) {
    CountError(fs_->Mkdir("/fg", 0755).status());
  }
  for (uint32_t i = 0; i < params_.num_clients; ++i) {
    const std::string dir = "/fg/c" + std::to_string(i);
    if (!fs_->LookupPath(dir).ok()) {
      CountError(fs_->Mkdir(dir, 0755).status());
    }
  }

  const bool flush = params_.flush_interval > 0;
  CountdownLatch all(env, static_cast<int>(params_.num_clients) +
                              (flush ? 1 : 0));
  clients_running_ = params_.num_clients;
  for (Client& c : clients_) {
    env->Spawn(ClientLoop(&c, &all));
  }
  if (flush) {
    env->Spawn(Flusher(&all));
  }
  co_await all.Wait();
  done->CountDown();
}

// ------------------------------------------------------------- summaries ---

uint32_t ForegroundLoad::OpMixCrc() const {
  Crc32cAccumulator total;
  for (const Client& c : clients_) {
    HashU64(&total, c.mix_crc.value());
  }
  return total.value();
}

uint32_t ForegroundLoad::TraceCrc() const {
  Crc32cAccumulator total;
  for (const Client& c : clients_) {
    HashU64(&total, c.trace_crc.value());
  }
  return total.value();
}

LatencySummary ForegroundLoad::Summarize() const {
  std::vector<double> all;
  for (const auto& v : samples_us_) {
    all.insert(all.end(), v.begin(), v.end());
  }
  return SummarizeSamples(std::move(all));
}

LatencySummary ForegroundLoad::SummarizeOp(FgOp op) const {
  return SummarizeSamples(samples_us_[OpIndex(op)]);
}

LatencySummary ForegroundLoad::SummarizeBetween(SimTime begin,
                                                SimTime end) const {
  std::vector<double> window;
  for (const auto& [start, us] : timeline_) {
    if (start >= begin && start < end) {
      window.push_back(us);
    }
  }
  return SummarizeSamples(std::move(window));
}

}  // namespace bkup

// File-system aging: reproduces the paper's footnote on mature data sets —
// "a mature data set is typically slower to backup than a newly created one
// because of fragmentation: the blocks of a newly created file are less
// likely to be contiguously allocated in a mature file system where the
// free space is scattered throughout the disks."
//
// Aging rounds delete a fraction of files and create replacements; because
// the allocator then fills scattered holes, surviving and new files become
// fragmented. `MeasureFragmentation` quantifies it as the mean contiguous
// run length of file blocks (lower = more fragmented = more seeks for an
// inode-order dump).
#ifndef BKUP_WORKLOAD_AGING_H_
#define BKUP_WORKLOAD_AGING_H_

#include <cstdint>

#include "src/fs/filesystem.h"
#include "src/workload/population.h"

namespace bkup {

struct AgingParams {
  uint64_t seed = 777;
  uint32_t rounds = 4;
  // Fraction of files deleted (and re-created at similar volume) per round.
  double churn_fraction = 0.25;
  // Fraction of surviving files partially overwritten per round.
  double overwrite_fraction = 0.1;
};

struct AgingStats {
  uint32_t deletions = 0;
  uint32_t creations = 0;
  uint32_t overwrites = 0;
};

Result<AgingStats> AgeFilesystem(Filesystem* fs, const AgingParams& params);

struct FragmentationReport {
  uint64_t files = 0;
  uint64_t mapped_blocks = 0;
  uint64_t runs = 0;  // contiguous vbn runs across all files
  double MeanRunBlocks() const {
    return runs > 0 ? static_cast<double>(mapped_blocks) /
                          static_cast<double>(runs)
                    : 0.0;
  }
};

// Walks every file and measures block-layout contiguity.
Result<FragmentationReport> MeasureFragmentation(const FsReader& reader,
                                                 const std::string& root = "/");

}  // namespace bkup

#endif  // BKUP_WORKLOAD_AGING_H_

#include "src/workload/aging.h"

#include <vector>

#include "src/util/random.h"

namespace bkup {

Result<AgingStats> AgeFilesystem(Filesystem* fs, const AgingParams& params) {
  Rng rng(params.seed);
  AgingStats stats;
  std::vector<uint8_t> chunk;

  for (uint32_t round = 0; round < params.rounds; ++round) {
    // Snapshot of the current file population (paths + sizes).
    BKUP_RETURN_IF_ERROR(fs->ConsistencyPoint().status());
    FsReader reader = fs->LiveReader();
    std::vector<std::pair<std::string, uint64_t>> files;
    BKUP_RETURN_IF_ERROR(WalkTree(
        reader, "/",
        [&files](const std::string& path, Inum inum, const InodeData& inode) {
          (void)inum;
          if (inode.type == InodeType::kFile && inode.nlink == 1) {
            files.emplace_back(path, inode.size);
          }
        }));
    if (files.empty()) {
      break;
    }

    uint64_t deleted_bytes = 0;
    for (const auto& [path, size] : files) {
      if (!rng.Chance(params.churn_fraction)) {
        continue;
      }
      BKUP_RETURN_IF_ERROR(fs->Unlink(path));
      deleted_bytes += size;
      stats.deletions++;
    }
    // Partial overwrites of survivors scatter their blocks.
    for (const auto& [path, size] : files) {
      if (size < 2 * kBlockSize || !rng.Chance(params.overwrite_fraction)) {
        continue;
      }
      Result<Inum> inum = fs->LookupPath(path);
      if (!inum.ok()) {
        continue;  // deleted above
      }
      const uint64_t offset =
          rng.Below(size / kBlockSize) * kBlockSize;
      chunk.resize(kBlockSize);
      rng.Fill(chunk);
      BKUP_RETURN_IF_ERROR(fs->Write(*inum, offset, chunk));
      stats.overwrites++;
      if (stats.overwrites % 32 == 0) {
        BKUP_RETURN_IF_ERROR(fs->ConsistencyPoint().status());
      }
    }
    BKUP_RETURN_IF_ERROR(fs->ConsistencyPoint().status());

    // Refill roughly the deleted volume with new files in random dirs.
    std::vector<std::string> dirs;
    {
      FsReader fresh = fs->LiveReader();
      std::deque<std::pair<Inum, std::string>> queue{{kRootDirInum, ""}};
      dirs.push_back("");
      while (!queue.empty()) {
        auto [dir, path] = queue.front();
        queue.pop_front();
        BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries,
                              fresh.ReadDirInum(dir));
        for (const DirEntry& e : entries) {
          if (e.type == InodeType::kDirectory) {
            dirs.push_back(path + "/" + e.name);
            queue.emplace_back(e.inum, path + "/" + e.name);
          }
        }
      }
    }
    uint64_t refilled = 0;
    uint32_t seq = 0;
    while (refilled < deleted_bytes) {
      const std::string path = dirs[rng.Below(dirs.size())] + "/aged_r" +
                               std::to_string(round) + "_" +
                               std::to_string(seq++);
      BKUP_ASSIGN_OR_RETURN(Inum inum, fs->Create(path, 0644));
      const uint64_t size = std::min<uint64_t>(
          deleted_bytes - refilled, (rng.Below(16) + 1) * 2 * kBlockSize);
      chunk.resize(size);
      rng.Fill(chunk);
      BKUP_RETURN_IF_ERROR(fs->Write(inum, 0, chunk));
      refilled += size;
      stats.creations++;
      if (stats.creations % 64 == 0) {
        BKUP_RETURN_IF_ERROR(fs->ConsistencyPoint().status());
      }
    }
  }
  BKUP_RETURN_IF_ERROR(fs->ConsistencyPoint().status());
  return stats;
}

Result<FragmentationReport> MeasureFragmentation(const FsReader& reader,
                                                 const std::string& root) {
  FragmentationReport report;
  Status inner = Status::Ok();
  BKUP_RETURN_IF_ERROR(WalkTree(
      reader, root,
      [&](const std::string& path, Inum inum, const InodeData& inode) {
        (void)path;
        (void)inum;
        if (!inner.ok() || inode.type != InodeType::kFile) {
          return;
        }
        Result<std::vector<uint32_t>> ptrs = reader.PointerMap(inode);
        if (!ptrs.ok()) {
          inner = ptrs.status();
          return;
        }
        report.files++;
        uint32_t prev = 0;
        for (uint32_t p : *ptrs) {
          if (p == 0) {
            prev = 0;  // hole breaks a run
            continue;
          }
          report.mapped_blocks++;
          if (prev == 0 || p != prev + 1) {
            report.runs++;
          }
          prev = p;
        }
      }));
  BKUP_RETURN_IF_ERROR(inner);
  return report;
}

}  // namespace bkup

#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/trace.h"

namespace bkup {

FlightRecorder::FlightRecorder(SimEnvironment* env, std::string dir,
                               MetricsRegistry* metrics,
                               size_t fault_capacity)
    : env_(env),
      dir_(std::move(dir)),
      metrics_(metrics),
      fault_capacity_(fault_capacity > 0 ? fault_capacity : 1) {
  env_->set_flight_recorder(this);
  MarkMetricsBaseline();
}

FlightRecorder::~FlightRecorder() {
  if (env_->flight_recorder() == this) {
    env_->set_flight_recorder(nullptr);
  }
}

void FlightRecorder::RecordFault(std::string kind, std::string target,
                                 std::string detail) {
  if (faults_.size() >= fault_capacity_) {
    faults_.pop_front();
    ++faults_dropped_;
  }
  faults_.push_back(FlightFaultEvent{env_->now(), std::move(kind),
                                     std::move(target), std::move(detail)});
}

void FlightRecorder::AddStateProvider(const std::string& name,
                                      StateProvider provider) {
  RemoveStateProvider(name);
  providers_.emplace_back(name, std::move(provider));
}

void FlightRecorder::RemoveStateProvider(const std::string& name) {
  providers_.erase(
      std::remove_if(providers_.begin(), providers_.end(),
                     [&](const auto& p) { return p.first == name; }),
      providers_.end());
}

void FlightRecorder::MarkMetricsBaseline() {
  baseline_ = metrics_ != nullptr
                  ? metrics_->CounterSnapshot()
                  : std::vector<std::pair<std::string, uint64_t>>{};
}

std::string FlightRecorder::SnapshotJson(const std::string& reason) {
  JsonWriter w;
  w.BeginObject();
  w.Field("reason", reason);
  w.Field("seq", dumps_);
  w.Field("sim_time_s", SimToSeconds(env_->now()));

  // Last-N fault/crash injections, oldest first.
  w.Key("faults").BeginObject();
  w.Field("dropped", faults_dropped_);
  w.Key("events").BeginArray();
  for (const FlightFaultEvent& f : faults_) {
    w.BeginObject()
        .Field("t_s", SimToSeconds(f.ts))
        .Field("kind", f.kind)
        .Field("target", f.target)
        .Field("detail", f.detail)
        .EndObject();
  }
  w.EndArray().EndObject();

  // What moved since the baseline: counters with a nonzero delta, plus the
  // absolute value for orientation.
  w.Key("metrics").BeginObject();
  w.Key("counter_deltas").BeginArray();
  if (metrics_ != nullptr) {
    const auto now_snap = metrics_->CounterSnapshot();
    size_t bi = 0;
    for (const auto& [key, value] : now_snap) {
      while (bi < baseline_.size() && baseline_[bi].first < key) {
        ++bi;
      }
      const uint64_t base =
          (bi < baseline_.size() && baseline_[bi].first == key)
              ? baseline_[bi].second
              : 0;
      if (value == base) {
        continue;
      }
      w.BeginObject()
          .Field("name", key)
          .Field("value", value)
          .Field("delta", value - base)
          .EndObject();
    }
  }
  w.EndArray().EndObject();

  // Tail of the trace ring: the last moments before the dump, plus the
  // ring's drop counter so truncation is visible here too.
  w.Key("trace").BeginObject();
  const Tracer* tracer = env_->tracer();
  if (tracer != nullptr) {
    w.Field("attached", true);
    w.Field("dropped_events", tracer->dropped());
    w.Key("tail").BeginArray();
    const auto& ring = tracer->events();
    const size_t tail =
        std::min<size_t>(kDefaultTraceTail, ring.size());
    for (size_t i = ring.size() - tail; i < ring.size(); ++i) {
      const TraceEvent& e = ring[i];
      const char* kind = "?";
      switch (e.kind) {
        case TraceEvent::Kind::kBegin: kind = "B"; break;
        case TraceEvent::Kind::kEnd: kind = "E"; break;
        case TraceEvent::Kind::kInstant: kind = "i"; break;
        case TraceEvent::Kind::kCounter: kind = "C"; break;
        case TraceEvent::Kind::kFlowStart: kind = "s"; break;
        case TraceEvent::Kind::kFlowEnd: kind = "f"; break;
      }
      w.BeginObject()
          .Field("ph", kind)
          .Field("track", tracer->track_name(e.track))
          .Field("t_s", SimToSeconds(e.ts))
          .Field("name", e.name);
      if (e.trace_id != 0) {
        w.Field("trace", e.trace_id)
            .Field("incarnation", static_cast<uint64_t>(e.incarnation));
      }
      w.EndObject();
    }
    w.EndArray();
  } else {
    w.Field("attached", false);
    w.Field("dropped_events", uint64_t{0});
    w.Key("tail").BeginArray().EndArray();
  }
  w.EndObject();

  // Live state, polled now.
  w.Key("state").BeginObject();
  for (const auto& [name, provider] : providers_) {
    w.Key(name);
    provider(&w);
  }
  w.EndObject();

  w.EndObject();
  return w.Take();
}

Status FlightRecorder::Dump(const std::string& reason) {
  const std::string json = SnapshotJson(reason);
  std::string path = dir_ + "/flightrec_" + reason + "_" +
                     std::to_string(dumps_) + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return IoError("cannot open flight record '" + path + "' for writing");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return IoError("short write to flight record '" + path + "'");
  }
  ++dumps_;
  last_path_ = std::move(path);
  return Status::Ok();
}

}  // namespace bkup

// Process-wide metrics: named counters, gauges and histograms with label
// support, cheap enough to leave always-on in the hot simulation paths.
//
// Lookup (`GetCounter` etc.) costs one hash-map probe and returns a stable
// pointer; call sites that care about the hot path resolve the handle once
// (e.g. in a constructor) and bump the cached pointer afterwards — an
// increment is then a single add on a plain uint64. The simulator is
// single-threaded, so no atomics or locks are involved.
//
// Labels distinguish instances of the same series ("disk.access_us" per
// device, "dump.stream_bytes" per volume). A metric's identity is its name
// plus its label set, Prometheus-style: disk.bytes{device=home.g0.d3}.
#ifndef BKUP_OBS_METRICS_H_
#define BKUP_OBS_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/obs/json.h"

namespace bkup {

using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Histogram bucketing scheme. Log2 buckets cover [2^i, 2^(i+1)) for i in
// [0, 63] (value 0 lands in the first bucket); linear buckets cover
// [lo + i*width, lo + (i+1)*width) plus an underflow and an overflow bucket.
struct HistogramOptions {
  enum class Kind { kLog2, kLinear };
  Kind kind = Kind::kLog2;
  double lo = 0.0;
  double width = 1.0;
  int buckets = 16;

  static HistogramOptions Log2() { return HistogramOptions{}; }
  static HistogramOptions Linear(double lo, double width, int buckets) {
    return HistogramOptions{Kind::kLinear, lo, width, buckets};
  }
};

class Histogram {
 public:
  explicit Histogram(HistogramOptions options);

  void Observe(double value);
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }

  // Smallest bucket upper bound below which at least `fraction` of the
  // samples fall (bucket-granular, like Log2Histogram::Percentile).
  double Percentile(double fraction) const;

  const HistogramOptions& options() const { return options_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }
  // Upper bound of bucket `i` (inclusive scan edge used by Percentile).
  double BucketUpperBound(size_t i) const;

 private:
  size_t BucketIndex(double value) const;

  HistogramOptions options_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Registry of all metric series. `Default()` is the process-wide instance
// every subsystem records into; tests construct private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Default();

  // Get-or-create. The returned pointer is stable for the registry's
  // lifetime. Counters, gauges and histograms are separate namespaces.
  Counter* GetCounter(std::string_view name, const MetricLabels& labels = {});
  Gauge* GetGauge(std::string_view name, const MetricLabels& labels = {});
  Histogram* GetHistogram(std::string_view name,
                          const HistogramOptions& options,
                          const MetricLabels& labels = {});

  // Lookup without creation; nullptr when the series does not exist.
  const Counter* FindCounter(std::string_view name,
                             const MetricLabels& labels = {}) const;
  const Gauge* FindGauge(std::string_view name,
                         const MetricLabels& labels = {}) const;
  const Histogram* FindHistogram(std::string_view name,
                                 const MetricLabels& labels = {}) const;

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Drops every series (invalidates previously returned handles); tests
  // use this to isolate themselves from earlier activity.
  void Clear();

  // Sorted (series key, value) snapshot of every counter. The flight
  // recorder diffs two snapshots to report what moved since its baseline.
  std::vector<std::pair<std::string, uint64_t>> CounterSnapshot() const;

  // Serializes every series as one JSON object:
  //   {"counters": [{"name":..., "labels": {...}, "value": N}, ...],
  //    "gauges": [...],
  //    "histograms": [{"name":..., "count":, "sum":, "p50":, "p99":, ...}]}
  void WriteJson(JsonWriter* w) const;
  std::string ToJson() const;

 private:
  // "name{k=v,k2=v2}" — the canonical series key.
  static std::string SeriesKey(std::string_view name,
                               const MetricLabels& labels);

  template <typename T>
  struct Series {
    std::string name;
    MetricLabels labels;
    std::unique_ptr<T> metric;
  };

  std::unordered_map<std::string, Series<Counter>> counters_;
  std::unordered_map<std::string, Series<Gauge>> gauges_;
  std::unordered_map<std::string, Series<Histogram>> histograms_;
};

// Redirects MetricsRegistry::Default() on the current thread for the
// scope's lifetime (nestable; the innermost scope wins). This is how the
// sharded simulator (src/sim/shard.h) gives each shard a private registry
// without threading a registry pointer through every component: a shard
// worker holds one while running its shard, so components that resolved
// handles via Default() at build time and components that look up lazily
// both land on the shard's registry.
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry* registry);
  ~ScopedMetricsRegistry();
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry(ScopedMetricsRegistry&&) noexcept;
  ScopedMetricsRegistry& operator=(ScopedMetricsRegistry&&) = delete;

 private:
  MetricsRegistry* previous_;
  bool engaged_ = true;
};

}  // namespace bkup

#endif  // BKUP_OBS_METRICS_H_

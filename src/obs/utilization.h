// Windowed utilization sampling for simulated resources.
//
// `UtilizationWindow` (src/sim/resource.h) answers "what was the mean
// utilization over this whole stage" — one number. This sampler answers
// "what did utilization look like over time": it observes a Resource's
// occupancy changes and folds them into fixed-width windows (busy-integral
// delta per window / capacity·window), so benches can emit
// utilization-over-time series instead of a single final percentage.
//
// The samples are exact, not polled: between occupancy changes the in-use
// count is constant, so each window's busy integral is reconstructed
// precisely from the change events alone. No periodic wake-ups are
// scheduled — the sampler never keeps the event queue alive.
#ifndef BKUP_OBS_UTILIZATION_H_
#define BKUP_OBS_UTILIZATION_H_

#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/sim/resource.h"

namespace bkup {

class UtilizationSampler : public ResourceObserver {
 public:
  struct Sample {
    SimTime start;           // window start, simulated µs
    double utilization;      // mean fraction of capacity in [0, 1]
  };

  // Attaches to `res` immediately; windows are aligned to the attach time.
  // Destroy the sampler before the resource (it detaches on destruction).
  UtilizationSampler(Resource* res, SimDuration window);
  ~UtilizationSampler() override;
  UtilizationSampler(const UtilizationSampler&) = delete;
  UtilizationSampler& operator=(const UtilizationSampler&) = delete;

  const std::string& resource_name() const { return name_; }
  SimDuration window() const { return window_; }

  // Closes every window that ends at or before `now`, plus — when `now`
  // falls inside a window — the partial remainder as a final short sample.
  // Call once after the simulation drains, before reading samples().
  void Finish(SimTime now);

  const std::vector<Sample>& samples() const { return samples_; }

  // ResourceObserver:
  void OnResourceChange(const Resource& res, SimTime now,
                        int64_t in_use) override;

  // {"resource": ..., "window_s": ..., "samples": [{"t_s":, "utilization":}]}
  void WriteJson(JsonWriter* w) const;

 private:
  // Accounts busy time at the current in-use level up to `now`, emitting
  // every window boundary crossed on the way.
  void AdvanceTo(SimTime now);
  void EmitWindow(SimTime end);

  Resource* res_;
  std::string name_;
  SimDuration window_;
  int64_t capacity_;
  SimTime window_start_;
  SimTime last_event_;
  int64_t in_use_;
  int64_t busy_in_window_ = 0;  // unit-µs accumulated in the open window
  bool detached_ = false;
  std::vector<Sample> samples_;
};

}  // namespace bkup

#endif  // BKUP_OBS_UTILIZATION_H_

// Live SLO monitoring for the nightly backup window.
//
// A finished NightReport can tell you a volume missed its deadline; it
// cannot tell you whether anyone could have *known* before it happened. The
// `SloMonitor` closes that gap: objectives (one per volume, plus optional
// per-phase latency targets) are registered up front with their deadline
// and catalog-estimated byte total, progress is reported as bytes land on
// tape, and `Sample()` computes — at any simulated instant — per-objective
// progress, throughput, projected finish (ETA), deadline-risk and budget
// burn. The scheduler samples on a timer and publishes the series as
// `night_health` in the night's JSON report, so the bench gate can assert
// "every missed deadline was flagged while the night was still live"
// (DESIGN.md §14).
//
// Latency objectives ride the tracer: the monitor implements
// `Tracer::SpanListener`, so every closed span whose name matches an
// objective feeds its duration histogram — no JSON re-parsing, no second
// event stream.
//
// Determinism: the monitor is pure bookkeeping on simulated time. Sampling
// never changes scheduling decisions, so a night with and without a monitor
// executes identically.
#ifndef BKUP_OBS_SLO_H_
#define BKUP_OBS_SLO_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/trace.h"
#include "src/sim/environment.h"
#include "src/util/stats.h"
#include "src/util/units.h"

namespace bkup {

// One live health reading for every registered objective.
struct SloHealthSample {
  struct Entry {
    std::string name;
    double progress = 0.0;    // bytes_done / estimated total, clamped to 1
    double rate_mb_s = 0.0;   // observed since registration (10^6 bytes/s)
    SimTime eta = -1;         // projected finish; -1 = unknown
    double burn = 0.0;        // deadline-budget burn ratio (>1 = too slow)
    bool at_risk = false;     // ETA (or projection) lands past the deadline
    bool breached = false;    // deadline already passed without completion
    bool done = false;
  };
  SimTime t = 0;
  std::vector<Entry> entries;
};

// Final latency-objective verdict: bucket-granular p-quantile vs. target.
struct SloLatencyStatus {
  std::string span;
  double quantile = 0.99;
  SimDuration target = 0;
  SimDuration observed = 0;  // quantile of recorded durations (µs)
  uint64_t count = 0;
  bool breached = false;
};

class SloMonitor : public Tracer::SpanListener {
 public:
  static constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::max();

  explicit SloMonitor(SimEnvironment* env) : env_(env) {}

  // Planning-rate fallback (MB/s) used to project objectives that have not
  // produced bytes yet; 0 leaves their ETA unknown.
  void set_default_rate_mb_s(double mb_s) { default_rate_mb_s_ = mb_s; }

  // Registers a deadline/progress objective. `total_bytes` is the catalog
  // (or planner) estimate of the work; 0 means progress is unknown until
  // completion. Re-registering a name resets it.
  void Register(const std::string& name, SimTime deadline,
                uint64_t total_bytes);

  // Monotone progress in bytes (absolute, not a delta).
  void ReportProgress(const std::string& name, uint64_t bytes_done);

  // Marks the objective finished now. A completion past the deadline counts
  // as a breach whether or not a sample ever saw it.
  void Complete(const std::string& name, bool ok);

  // Latency objective: spans named `span` (any track) must keep their
  // `quantile` duration at or under `target`.
  void AddLatencyObjective(const std::string& span, SimDuration target,
                           double quantile = 0.99);

  // Tracer::SpanListener:
  void OnSpanEnd(const std::string& track, const std::string& name,
                 SimTime begin, SimTime end) override;

  // Computes a health reading now and appends it to `history()`.
  const SloHealthSample& Sample();

  const std::vector<SloHealthSample>& history() const { return history_; }

  // True if any live sample flagged `name` at-risk or breached — the
  // "nobody was silently going to miss a deadline" check.
  bool WasFlaggedLive(const std::string& name) const;

  // Objectives whose deadline passed before completion (final accounting,
  // updated by Sample() and Complete()).
  uint64_t breaches() const;

  std::vector<SloLatencyStatus> LatencyStatus() const;

  // {"samples": [...], "objectives": [...], "latency": [...]} — the
  // night_health payload embedded in NightReport JSON.
  void WriteJson(JsonWriter* w) const;

 private:
  struct Objective {
    std::string name;
    SimTime deadline = kNoDeadline;
    uint64_t total_bytes = 0;
    SimTime registered_at = 0;
    uint64_t bytes_done = 0;
    bool done = false;
    bool ok = false;
    SimTime finished_at = 0;
    bool flagged_live = false;
  };
  struct LatencyObjective {
    std::string span;
    SimDuration target = 0;
    double quantile = 0.99;
    Log2Histogram durations;
  };

  Objective* Find(const std::string& name);
  SloHealthSample::Entry Evaluate(const Objective& o, SimTime now) const;

  SimEnvironment* env_;
  double default_rate_mb_s_ = 0.0;
  std::vector<Objective> objectives_;  // registration order
  std::vector<LatencyObjective> latency_;
  std::vector<SloHealthSample> history_;
};

void WriteHealthSample(JsonWriter* w, const SloHealthSample& sample);

}  // namespace bkup

#endif  // BKUP_OBS_SLO_H_

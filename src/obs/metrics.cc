#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/util/stats.h"

namespace bkup {

Histogram::Histogram(HistogramOptions options) : options_(options) {
  const size_t n = options_.kind == HistogramOptions::Kind::kLog2
                       ? 64
                       // Linear: underflow + body + overflow.
                       : static_cast<size_t>(std::max(1, options_.buckets)) + 2;
  buckets_.assign(n, 0);
}

size_t Histogram::BucketIndex(double value) const {
  if (options_.kind == HistogramOptions::Kind::kLog2) {
    if (value < 2.0) {
      return 0;
    }
    const double clamped = std::min(value, std::ldexp(1.0, 63));
    const auto idx = static_cast<size_t>(std::log2(clamped));
    return std::min<size_t>(idx, buckets_.size() - 1);
  }
  if (value < options_.lo) {
    return 0;  // underflow
  }
  const auto body = static_cast<size_t>(std::max(1, options_.buckets));
  const double offset = (value - options_.lo) / options_.width;
  if (offset >= static_cast<double>(body)) {
    return buckets_.size() - 1;  // overflow
  }
  return 1 + static_cast<size_t>(offset);
}

void Histogram::Observe(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketIndex(value)];
}

double Histogram::min() const { return count_ > 0 ? min_ : 0.0; }
double Histogram::max() const { return count_ > 0 ? max_ : 0.0; }

double Histogram::BucketUpperBound(size_t i) const {
  if (options_.kind == HistogramOptions::Kind::kLog2) {
    return std::ldexp(1.0, static_cast<int>(i) + 1);
  }
  if (i == 0) {
    return options_.lo;  // underflow bucket
  }
  if (i == buckets_.size() - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return options_.lo + static_cast<double>(i) * options_.width;
}

double Histogram::Percentile(double fraction) const {
  if (count_ == 0) {
    return 0.0;
  }
  return BucketUpperBound(PercentileBucketIndex(
      buckets_.data(), buckets_.size(), count_, fraction));
}

// -------------------------------------------------------------- registry ---

namespace {
// Per-thread override installed by ScopedMetricsRegistry; Default() falls
// back to the process-wide instance when no scope is active.
thread_local MetricsRegistry* t_default_override = nullptr;
}  // namespace

MetricsRegistry& MetricsRegistry::Default() {
  if (t_default_override != nullptr) {
    return *t_default_override;
  }
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry* registry)
    : previous_(t_default_override) {
  t_default_override = registry;
}

ScopedMetricsRegistry::ScopedMetricsRegistry(
    ScopedMetricsRegistry&& other) noexcept
    : previous_(other.previous_) {
  other.engaged_ = false;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  if (engaged_) {
    t_default_override = previous_;
  }
}

std::string MetricsRegistry::SeriesKey(std::string_view name,
                                       const MetricLabels& labels) {
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) {
        key += ',';
      }
      key += labels[i].first;
      key += '=';
      key += labels[i].second;
    }
    key += '}';
  }
  return key;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const MetricLabels& labels) {
  auto [it, inserted] = counters_.try_emplace(SeriesKey(name, labels));
  if (inserted) {
    it->second = {std::string(name), labels, std::make_unique<Counter>()};
  }
  return it->second.metric.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 const MetricLabels& labels) {
  auto [it, inserted] = gauges_.try_emplace(SeriesKey(name, labels));
  if (inserted) {
    it->second = {std::string(name), labels, std::make_unique<Gauge>()};
  }
  return it->second.metric.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const HistogramOptions& options,
                                         const MetricLabels& labels) {
  auto [it, inserted] = histograms_.try_emplace(SeriesKey(name, labels));
  if (inserted) {
    it->second = {std::string(name), labels,
                  std::make_unique<Histogram>(options)};
  }
  return it->second.metric.get();
}

const Counter* MetricsRegistry::FindCounter(std::string_view name,
                                            const MetricLabels& labels) const {
  auto it = counters_.find(SeriesKey(name, labels));
  return it != counters_.end() ? it->second.metric.get() : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name,
                                        const MetricLabels& labels) const {
  auto it = gauges_.find(SeriesKey(name, labels));
  return it != gauges_.end() ? it->second.metric.get() : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(
    std::string_view name, const MetricLabels& labels) const {
  auto it = histograms_.find(SeriesKey(name, labels));
  return it != histograms_.end() ? it->second.metric.get() : nullptr;
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::CounterSnapshot() const {
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [key, series] : counters_) {
    out.emplace_back(key, series.metric->value());
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

void WriteLabels(JsonWriter* w, const MetricLabels& labels) {
  w->Key("labels").BeginObject();
  for (const auto& [k, v] : labels) {
    w->Field(k, v);
  }
  w->EndObject();
}

// Sorted keys so the serialization is deterministic across runs.
template <typename Map>
std::vector<const typename Map::value_type*> SortedEntries(const Map& map) {
  std::vector<const typename Map::value_type*> out;
  out.reserve(map.size());
  for (const auto& entry : map) {
    out.push_back(&entry);
  }
  std::sort(out.begin(), out.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  return out;
}

}  // namespace

void MetricsRegistry::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("counters").BeginArray();
  for (const auto* entry : SortedEntries(counters_)) {
    const auto& s = entry->second;
    w->BeginObject().Field("name", s.name);
    WriteLabels(w, s.labels);
    w->Field("value", s.metric->value()).EndObject();
  }
  w->EndArray();
  w->Key("gauges").BeginArray();
  for (const auto* entry : SortedEntries(gauges_)) {
    const auto& s = entry->second;
    w->BeginObject().Field("name", s.name);
    WriteLabels(w, s.labels);
    w->Field("value", s.metric->value()).EndObject();
  }
  w->EndArray();
  w->Key("histograms").BeginArray();
  for (const auto* entry : SortedEntries(histograms_)) {
    const auto& s = entry->second;
    const Histogram& h = *s.metric;
    w->BeginObject().Field("name", s.name);
    WriteLabels(w, s.labels);
    w->Field("count", h.count())
        .Field("sum", h.sum())
        .Field("min", h.min())
        .Field("max", h.max())
        .Field("mean", h.mean())
        .Field("p50", h.Percentile(0.50))
        .Field("p90", h.Percentile(0.90))
        .Field("p99", h.Percentile(0.99))
        .EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter w;
  WriteJson(&w);
  return w.Take();
}

}  // namespace bkup

#include "src/obs/utilization.h"

namespace bkup {

UtilizationSampler::UtilizationSampler(Resource* res, SimDuration window)
    : res_(res),
      name_(res->name()),
      window_(window > 0 ? window : 1),
      capacity_(res->capacity() > 0 ? res->capacity() : 1),
      window_start_(res->env()->now()),
      last_event_(window_start_),
      in_use_(res->in_use()) {
  res_->AddObserver(this);
}

UtilizationSampler::~UtilizationSampler() {
  if (!detached_) {
    res_->RemoveObserver(this);
  }
}

void UtilizationSampler::EmitWindow(SimTime end) {
  const SimDuration span = end - window_start_;
  double util = 0.0;
  if (span > 0) {
    util = static_cast<double>(busy_in_window_) /
           (static_cast<double>(capacity_) * static_cast<double>(span));
  }
  if (util < 0.0) util = 0.0;
  if (util > 1.0) util = 1.0;
  samples_.push_back(Sample{window_start_, util});
  window_start_ = end;
  busy_in_window_ = 0;
}

void UtilizationSampler::AdvanceTo(SimTime now) {
  while (now >= window_start_ + window_) {
    const SimTime boundary = window_start_ + window_;
    busy_in_window_ += in_use_ * (boundary - last_event_);
    last_event_ = boundary;
    EmitWindow(boundary);
  }
  busy_in_window_ += in_use_ * (now - last_event_);
  last_event_ = now;
}

void UtilizationSampler::OnResourceChange(const Resource& /*res*/, SimTime now,
                                          int64_t in_use) {
  AdvanceTo(now);
  in_use_ = in_use;
}

void UtilizationSampler::Finish(SimTime now) {
  AdvanceTo(now);
  if (now > window_start_) {
    // Trailing partial window.
    EmitWindow(now);
  }
  if (!detached_) {
    res_->RemoveObserver(this);
    detached_ = true;
  }
}

void UtilizationSampler::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("resource", name_);
  w->Field("window_s", static_cast<double>(window_) / 1e6);
  w->Key("samples").BeginArray();
  for (const Sample& s : samples_) {
    w->BeginObject()
        .Field("t_s", static_cast<double>(s.start) / 1e6)
        .Field("utilization", s.utilization)
        .EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace bkup

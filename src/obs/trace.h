// Simulated-time span tracing with Chrome trace-event export.
//
// A `Tracer` attaches to a `SimEnvironment` and records scoped spans
// (begin/end pairs), instant events and counter samples into a bounded ring
// buffer, all stamped with *simulated* time. `ToChromeJson()` exports the
// buffer as Chrome trace-event JSON — the format Perfetto and
// chrome://tracing load directly — with one named track per span/instant
// stream and one counter track per watched `Resource` (the filer CPU, every
// disk arm, every tape drive unit), so a backup job's bottleneck structure
// is visible as a timeline instead of one end-of-run percentage.
//
// Cost model: everything is pay-as-you-go. An unattached environment costs
// one null check per instrumentation site (the TRACE_* macros and the
// subsystems consult `env->tracer()` and bail when null); an attached
// tracer costs one ring-buffer append per event. When the ring fills, the
// oldest events are dropped and counted — recent history wins, which is the
// right bias for "why did the tail of this job stall".
#ifndef BKUP_OBS_TRACE_H_
#define BKUP_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/environment.h"
#include "src/sim/resource.h"
#include "src/util/status.h"

namespace bkup {

struct TraceEvent {
  enum class Kind : uint8_t { kBegin, kEnd, kInstant, kCounter };
  Kind kind;
  uint32_t track;
  SimTime ts;
  std::string name;    // empty for kEnd and kCounter
  double value = 0.0;  // kCounter only
};

class Tracer : public ResourceObserver {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 20;

  // Attaches to `env` (becomes `env->tracer()`); detaches on destruction.
  explicit Tracer(SimEnvironment* env, size_t capacity = kDefaultCapacity);
  ~Tracer() override;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  SimEnvironment* env() const { return env_; }

  // Get-or-create a named span/instant track (a "thread" in the exported
  // trace). Track ids are dense and stable.
  uint32_t Track(const std::string& name);
  // Get-or-create a named counter track.
  uint32_t CounterTrack(const std::string& name);

  void Begin(uint32_t track, std::string name);
  void End(uint32_t track);
  void Instant(uint32_t track, std::string name);
  void Counter(uint32_t track, double value);
  // Convenience: counter sample on the track named `name`.
  void CounterNamed(const std::string& name, double value);

  // Watches `res`: emits a counter sample of its in-use count now and after
  // every occupancy change, on a counter track named after the resource.
  // The tracer unregisters itself from all watched resources when destroyed;
  // destroy the tracer before the resources it watches.
  void WatchResource(Resource* res);

  // ResourceObserver:
  void OnResourceChange(const Resource& res, SimTime now,
                        int64_t in_use) override;

  size_t event_count() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_; }
  size_t track_count() const { return tracks_.size(); }
  const std::deque<TraceEvent>& events() const { return ring_; }

  // Chrome trace-event JSON ({"traceEvents": [...]}). Spans become B/E
  // events, instants "i", counters "C"; every track gets a thread_name
  // metadata record. Timestamps are simulated microseconds, which is the
  // unit the format expects.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  struct TrackInfo {
    std::string name;
    bool counter = false;
  };

  void Append(TraceEvent event);

  SimEnvironment* env_;
  size_t capacity_;
  std::deque<TraceEvent> ring_;
  uint64_t dropped_ = 0;
  std::vector<TrackInfo> tracks_;
  std::unordered_map<std::string, uint32_t> track_by_name_;
  std::unordered_map<const Resource*, uint32_t> watched_;
};

// RAII span: begins on construction, ends on destruction. Null-tracer safe,
// so instrumentation sites don't need their own guards.
class ScopedTraceSpan {
 public:
  ScopedTraceSpan(Tracer* tracer, const char* track, std::string name)
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      track_ = tracer_->Track(track);
      tracer_->Begin(track_, std::move(name));
    }
  }
  ~ScopedTraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->End(track_);
    }
  }
  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  Tracer* tracer_;
  uint32_t track_ = 0;
};

#define BKUP_TRACE_CAT_(a, b) a##b
#define BKUP_TRACE_CAT(a, b) BKUP_TRACE_CAT_(a, b)

// Scoped span on `track`, named `name`, in the tracer attached to `env`
// (no-op when none is attached):
//   TRACE_SPAN(env, "job:nightly", "dump.files");
#define TRACE_SPAN(env, track, name)                             \
  ::bkup::ScopedTraceSpan BKUP_TRACE_CAT(_bkup_trace_span_,      \
                                         __LINE__)((env)->tracer(), (track), \
                                                   (name))

// Point event on `track` (a retry, a remount, a reposition).
#define TRACE_INSTANT(env, track, name)                 \
  do {                                                  \
    ::bkup::Tracer* _bkup_t = (env)->tracer();          \
    if (_bkup_t != nullptr) {                           \
      _bkup_t->Instant(_bkup_t->Track(track), (name));  \
    }                                                   \
  } while (0)

// Sample on the counter track `name`.
#define TRACE_COUNTER(env, name, value)                 \
  do {                                                  \
    ::bkup::Tracer* _bkup_t = (env)->tracer();          \
    if (_bkup_t != nullptr) {                           \
      _bkup_t->CounterNamed((name), (value));           \
    }                                                   \
  } while (0)

}  // namespace bkup

#endif  // BKUP_OBS_TRACE_H_

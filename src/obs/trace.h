// Simulated-time span tracing with Chrome trace-event export.
//
// A `Tracer` attaches to a `SimEnvironment` and records scoped spans
// (begin/end pairs), instant events, counter samples and cross-node flow
// events into a bounded ring buffer, all stamped with *simulated* time.
// `ToChromeJson()` exports the buffer as Chrome trace-event JSON — the
// format Perfetto and chrome://tracing load directly — with one named track
// per span/instant stream and one counter track per watched `Resource` (the
// filer CPU, every disk arm, every tape drive unit), so a backup job's
// bottleneck structure is visible as a timeline instead of one end-of-run
// percentage.
//
// Since the data path crossed the network (DESIGN.md §10) a single job's
// timeline spans *nodes* (filer → StreamConn → TapeServer) and
// *incarnations* (supervised reconnects, kill-resume restarts). Three
// additions stitch those back into one causal timeline:
//
//  - `TraceContext` — a (trace id, parent span, incarnation) triple minted
//    by `StartTrace()` from a deterministic counter. Spans and instants
//    recorded with a context carry `args: {trace, incarnation}` in the
//    export, so every event of one logical job — on either node, in any
//    incarnation — shares one trace id.
//  - Process tracks — `Process(name)` returns a dense pid; tracks created
//    with that pid render under a separate process row per node in
//    Perfetto (`process_name` metadata). Pid 1 is the default node (the
//    filer), so single-node traces are unchanged.
//  - Flow events — `FlowStart`/`FlowEnd` pairs (Chrome "s"/"f" phases)
//    with a shared id draw arrows from the sender's track to the
//    receiver's across the link. `StreamConn` emits one pair per frame;
//    `ReserveFlowIds()` hands out non-overlapping id blocks per
//    connection.
//
// Cost model: everything is pay-as-you-go. An unattached environment costs
// one null check per instrumentation site (the TRACE_* macros and the
// subsystems consult `env->tracer()` and bail when null); an attached
// tracer costs one ring-buffer append per event. When the ring fills, the
// oldest events are dropped and counted — recent history wins, which is the
// right bias for "why did the tail of this job stall". The drop counter is
// exported in `otherData.dropped_events` so a truncated ring is visible in
// the artifact instead of silently biasing the timeline.
#ifndef BKUP_OBS_TRACE_H_
#define BKUP_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/environment.h"
#include "src/sim/resource.h"
#include "src/util/status.h"

namespace bkup {

// Causal identity carried across the wire and across restarts: every event
// recorded under the same `trace_id` belongs to one logical job, no matter
// which node or incarnation produced it. `incarnation` counts supervised
// restarts (link reconnects, kill-resume attempts); the original run is 0.
struct TraceContext {
  uint64_t trace_id = 0;     // 0 = no trace (events carry no trace args)
  uint64_t parent_span = 0;  // span id of the spawning scope, 0 = root
  uint32_t incarnation = 0;  // supervised restart count within the trace

  bool valid() const { return trace_id != 0; }
  TraceContext Child(uint64_t span_id) const {
    return TraceContext{trace_id, span_id, incarnation};
  }
  TraceContext NextIncarnation() const {
    return TraceContext{trace_id, parent_span, incarnation + 1};
  }
};

struct TraceEvent {
  enum class Kind : uint8_t {
    kBegin,
    kEnd,
    kInstant,
    kCounter,
    kFlowStart,
    kFlowEnd,
  };
  Kind kind;
  uint32_t track;
  SimTime ts;
  std::string name;         // empty for kEnd and kCounter
  double value = 0.0;       // kCounter only
  uint64_t flow_id = 0;     // kFlowStart/kFlowEnd only
  uint64_t trace_id = 0;    // 0 = event recorded without a TraceContext
  uint32_t incarnation = 0;
};

class Tracer : public ResourceObserver {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 20;

  // Called when a span closes (End matching a Begin on the same track).
  // The SLO engine uses this to feed latency objectives without re-parsing
  // the exported JSON.
  class SpanListener {
   public:
    virtual ~SpanListener() = default;
    virtual void OnSpanEnd(const std::string& track, const std::string& name,
                           SimTime begin, SimTime end) = 0;
  };

  // Attaches to `env` (becomes `env->tracer()`); detaches on destruction.
  explicit Tracer(SimEnvironment* env, size_t capacity = kDefaultCapacity);
  ~Tracer() override;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  SimEnvironment* env() const { return env_; }

  // Get-or-create a named process (a node: the filer, a tape server). The
  // returned pid keys `process_name` metadata in the export; tracks carry
  // the pid of the process they belong to. Pid 1 is the default process
  // ("filer"), which every plain `Track(name)` call lands in.
  uint32_t Process(const std::string& name);

  // Get-or-create a named span/instant track (a "thread" in the exported
  // trace). Track ids are dense and stable. A track's process is fixed at
  // creation; later lookups by name ignore `pid`.
  uint32_t Track(const std::string& name);
  uint32_t Track(const std::string& name, uint32_t pid);
  // Get-or-create a named counter track.
  uint32_t CounterTrack(const std::string& name);

  // Mints a fresh root context from a deterministic monotonic counter —
  // never wall clock or randomness, so traces replay byte-identically.
  TraceContext StartTrace() { return TraceContext{++next_trace_id_, 0, 0}; }

  // Reserves a block of 2^32 flow ids (the caller ORs in its own low bits,
  // e.g. a frame sequence number) so concurrent connections in one trace
  // never collide.
  uint64_t ReserveFlowIds() { return ++next_flow_block_ << 32; }

  void Begin(uint32_t track, std::string name);
  void Begin(uint32_t track, std::string name, const TraceContext& ctx);
  void End(uint32_t track);
  void Instant(uint32_t track, std::string name);
  void Instant(uint32_t track, std::string name, const TraceContext& ctx);
  void Counter(uint32_t track, double value);
  // Convenience: counter sample on the track named `name`.
  void CounterNamed(const std::string& name, double value);

  // One directed arrow from the sender's track (`FlowStart`) to the
  // receiver's (`FlowEnd` with the same id), exported as Chrome "s"/"f"
  // flow phases.
  void FlowStart(uint32_t track, uint64_t id, std::string name,
                 const TraceContext& ctx = {});
  void FlowEnd(uint32_t track, uint64_t id, std::string name,
               const TraceContext& ctx = {});

  // Watches `res`: emits a counter sample of its in-use count now and after
  // every occupancy change, on a counter track named after the resource.
  // The tracer unregisters itself from all watched resources when destroyed;
  // destroy the tracer before the resources it watches.
  void WatchResource(Resource* res);

  // ResourceObserver:
  void OnResourceChange(const Resource& res, SimTime now,
                        int64_t in_use) override;

  // At most one listener; pass nullptr to detach. The listener must outlive
  // the spans it observes (detach before destroying it).
  void set_span_listener(SpanListener* listener) { listener_ = listener; }
  SpanListener* span_listener() const { return listener_; }

  size_t event_count() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_; }
  size_t track_count() const { return tracks_.size(); }
  size_t process_count() const { return processes_.size(); }
  const std::string& track_name(uint32_t track) const {
    return tracks_[track].name;
  }
  uint32_t track_pid(uint32_t track) const { return tracks_[track].pid; }
  const std::deque<TraceEvent>& events() const { return ring_; }

  // Chrome trace-event JSON ({"traceEvents": [...]}). Spans become B/E
  // events, instants "i", counters "C", flows "s"/"f"; every track gets a
  // thread_name metadata record and every process a process_name record.
  // Timestamps are simulated microseconds, which is the unit the format
  // expects.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

 private:
  struct TrackInfo {
    std::string name;
    bool counter = false;
    uint32_t pid = 1;
  };
  struct OpenSpan {
    std::string name;
    SimTime begin;
  };

  void Append(TraceEvent event);
  void NotifyEnd(uint32_t track, SimTime end);

  SimEnvironment* env_;
  size_t capacity_;
  std::deque<TraceEvent> ring_;
  uint64_t dropped_ = 0;
  std::vector<TrackInfo> tracks_;
  std::unordered_map<std::string, uint32_t> track_by_name_;
  std::vector<std::string> processes_;  // index i -> pid i + 1
  std::unordered_map<std::string, uint32_t> process_by_name_;
  std::unordered_map<const Resource*, uint32_t> watched_;
  std::vector<std::vector<OpenSpan>> open_;  // per-track Begin stack
  SpanListener* listener_ = nullptr;
  uint64_t next_trace_id_ = 0;
  uint64_t next_flow_block_ = 0;
};

// RAII span: begins on construction, ends on destruction. Null-tracer safe,
// so instrumentation sites don't need their own guards.
class ScopedTraceSpan {
 public:
  ScopedTraceSpan(Tracer* tracer, const char* track, std::string name)
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      track_ = tracer_->Track(track);
      tracer_->Begin(track_, std::move(name));
    }
  }
  // Span carrying a trace context (exported with trace/incarnation args).
  ScopedTraceSpan(Tracer* tracer, const char* track, std::string name,
                  const TraceContext& ctx)
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      track_ = tracer_->Track(track);
      tracer_->Begin(track_, std::move(name), ctx);
    }
  }
  // Span on a track owned by process `node` (a non-filer node's row).
  ScopedTraceSpan(Tracer* tracer, const std::string& node, const char* track,
                  std::string name, const TraceContext& ctx)
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      track_ = tracer_->Track(track, tracer_->Process(node));
      tracer_->Begin(track_, std::move(name), ctx);
    }
  }
  ~ScopedTraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->End(track_);
    }
  }
  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  Tracer* tracer_;
  uint32_t track_ = 0;
};

#define BKUP_TRACE_CAT_(a, b) a##b
#define BKUP_TRACE_CAT(a, b) BKUP_TRACE_CAT_(a, b)

// Scoped span on `track`, named `name`, in the tracer attached to `env`
// (no-op when none is attached):
//   TRACE_SPAN(env, "job:nightly", "dump.files");
#define TRACE_SPAN(env, track, name)                             \
  ::bkup::ScopedTraceSpan BKUP_TRACE_CAT(_bkup_trace_span_,      \
                                         __LINE__)((env)->tracer(), (track), \
                                                   (name))

// Point event on `track` (a retry, a remount, a reposition).
#define TRACE_INSTANT(env, track, name)                 \
  do {                                                  \
    ::bkup::Tracer* _bkup_t = (env)->tracer();          \
    if (_bkup_t != nullptr) {                           \
      _bkup_t->Instant(_bkup_t->Track(track), (name));  \
    }                                                   \
  } while (0)

// Sample on the counter track `name`.
#define TRACE_COUNTER(env, name, value)                 \
  do {                                                  \
    ::bkup::Tracer* _bkup_t = (env)->tracer();          \
    if (_bkup_t != nullptr) {                           \
      _bkup_t->CounterNamed((name), (value));           \
    }                                                   \
  } while (0)

}  // namespace bkup

#endif  // BKUP_OBS_TRACE_H_

#include "src/obs/slo.h"

#include <algorithm>
#include <cmath>

namespace bkup {

namespace {
constexpr double kBytesPerMB = 1e6;
// Progress floor for the burn ratio: a volume that has moved nothing has
// burned "everything so far", not divided by zero.
constexpr double kMinProgressForBurn = 1e-3;
}  // namespace

void SloMonitor::Register(const std::string& name, SimTime deadline,
                          uint64_t total_bytes) {
  Objective fresh;
  fresh.name = name;
  fresh.deadline = deadline;
  fresh.total_bytes = total_bytes;
  fresh.registered_at = env_->now();
  if (Objective* existing = Find(name)) {
    *existing = std::move(fresh);
    return;
  }
  objectives_.push_back(std::move(fresh));
}

SloMonitor::Objective* SloMonitor::Find(const std::string& name) {
  for (Objective& o : objectives_) {
    if (o.name == name) {
      return &o;
    }
  }
  return nullptr;
}

void SloMonitor::ReportProgress(const std::string& name, uint64_t bytes_done) {
  Objective* o = Find(name);
  if (o == nullptr || o->done) {
    return;
  }
  o->bytes_done = std::max(o->bytes_done, bytes_done);
}

void SloMonitor::Complete(const std::string& name, bool ok) {
  Objective* o = Find(name);
  if (o == nullptr || o->done) {
    return;
  }
  o->done = true;
  o->ok = ok;
  o->finished_at = env_->now();
  if (o->total_bytes > 0 && ok) {
    o->bytes_done = std::max(o->bytes_done, o->total_bytes);
  }
}

void SloMonitor::AddLatencyObjective(const std::string& span,
                                     SimDuration target, double quantile) {
  LatencyObjective lo;
  lo.span = span;
  lo.target = target;
  lo.quantile = quantile;
  latency_.push_back(std::move(lo));
}

void SloMonitor::OnSpanEnd(const std::string& /*track*/,
                           const std::string& name, SimTime begin,
                           SimTime end) {
  for (LatencyObjective& lo : latency_) {
    if (lo.span == name) {
      lo.durations.Add(static_cast<uint64_t>(std::max<SimTime>(0, end - begin)));
    }
  }
}

SloHealthSample::Entry SloMonitor::Evaluate(const Objective& o,
                                            SimTime now) const {
  SloHealthSample::Entry e;
  e.name = o.name;
  e.done = o.done;
  const SimTime ref = o.done ? o.finished_at : now;
  const double elapsed_s = SimToSeconds(std::max<SimDuration>(0, ref - o.registered_at));
  if (o.total_bytes > 0) {
    e.progress = std::min(
        1.0, static_cast<double>(o.bytes_done) /
                 static_cast<double>(o.total_bytes));
  } else {
    e.progress = o.done ? 1.0 : 0.0;
  }
  if (elapsed_s > 0.0 && o.bytes_done > 0) {
    e.rate_mb_s = static_cast<double>(o.bytes_done) / kBytesPerMB / elapsed_s;
  }
  // ETA: observed rate when the stream has moved, the planning-rate
  // fallback when it has not (queued volumes still project a finish).
  if (o.done) {
    e.eta = o.finished_at;
  } else if (o.total_bytes > 0) {
    const uint64_t remaining = o.total_bytes - std::min(o.bytes_done, o.total_bytes);
    double rate = e.rate_mb_s > 0.0 ? e.rate_mb_s : default_rate_mb_s_;
    if (rate > 0.0) {
      e.eta = now + SecondsToSim(static_cast<double>(remaining) /
                                 (rate * kBytesPerMB));
    }
  }
  const bool has_deadline = o.deadline != kNoDeadline;
  if (has_deadline) {
    e.breached = o.done ? o.finished_at > o.deadline : now > o.deadline;
    e.at_risk = !o.done && (e.breached || (e.eta >= 0 && e.eta > o.deadline));
    const double budget_s =
        SimToSeconds(std::max<SimDuration>(1, o.deadline - o.registered_at));
    const double used_s = SimToSeconds(
        std::max<SimDuration>(0, ref - o.registered_at));
    e.burn = (used_s / budget_s) /
             std::max(e.progress, kMinProgressForBurn);
  }
  return e;
}

const SloHealthSample& SloMonitor::Sample() {
  SloHealthSample s;
  s.t = env_->now();
  s.entries.reserve(objectives_.size());
  for (Objective& o : objectives_) {
    SloHealthSample::Entry e = Evaluate(o, s.t);
    if (e.at_risk || (e.breached && !o.done)) {
      o.flagged_live = true;
    }
    s.entries.push_back(std::move(e));
  }
  history_.push_back(std::move(s));
  return history_.back();
}

bool SloMonitor::WasFlaggedLive(const std::string& name) const {
  for (const Objective& o : objectives_) {
    if (o.name == name) {
      return o.flagged_live;
    }
  }
  return false;
}

uint64_t SloMonitor::breaches() const {
  uint64_t n = 0;
  const SimTime now = env_->now();
  for (const Objective& o : objectives_) {
    if (o.deadline == kNoDeadline) {
      continue;
    }
    const SimTime finished = o.done ? o.finished_at : now;
    if (finished > o.deadline || (o.done && !o.ok)) {
      ++n;
    }
  }
  return n;
}

std::vector<SloLatencyStatus> SloMonitor::LatencyStatus() const {
  std::vector<SloLatencyStatus> out;
  out.reserve(latency_.size());
  for (const LatencyObjective& lo : latency_) {
    SloLatencyStatus st;
    st.span = lo.span;
    st.quantile = lo.quantile;
    st.target = lo.target;
    st.count = lo.durations.count();
    st.observed = static_cast<SimDuration>(lo.durations.Percentile(lo.quantile));
    st.breached = st.count > 0 && st.observed > st.target;
    out.push_back(std::move(st));
  }
  return out;
}

void WriteHealthSample(JsonWriter* w, const SloHealthSample& sample) {
  w->BeginObject();
  w->Field("t_s", SimToSeconds(sample.t));
  w->Key("volumes").BeginArray();
  for (const SloHealthSample::Entry& e : sample.entries) {
    w->BeginObject()
        .Field("name", e.name)
        .Field("progress", e.progress)
        .Field("rate_mb_s", e.rate_mb_s)
        .Field("eta_s", e.eta >= 0 ? SimToSeconds(e.eta) : -1.0)
        .Field("burn", e.burn)
        .Field("at_risk", e.at_risk)
        .Field("breached", e.breached)
        .Field("done", e.done)
        .EndObject();
  }
  w->EndArray();
  w->EndObject();
}

void SloMonitor::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("samples").BeginArray();
  for (const SloHealthSample& s : history_) {
    WriteHealthSample(w, s);
  }
  w->EndArray();
  const SimTime now = env_->now();
  w->Key("objectives").BeginArray();
  for (const Objective& o : objectives_) {
    SloHealthSample::Entry e = Evaluate(o, now);
    w->BeginObject()
        .Field("name", o.name)
        .Field("deadline_s", o.deadline == kNoDeadline
                                 ? -1.0
                                 : SimToSeconds(o.deadline))
        .Field("total_bytes", o.total_bytes)
        .Field("bytes_done", o.bytes_done)
        .Field("done", o.done)
        .Field("ok", o.ok)
        .Field("breached", e.breached)
        .Field("flagged_live", o.flagged_live)
        .EndObject();
  }
  w->EndArray();
  w->Key("latency").BeginArray();
  for (const SloLatencyStatus& st : LatencyStatus()) {
    w->BeginObject()
        .Field("span", st.span)
        .Field("quantile", st.quantile)
        .Field("target_us", static_cast<int64_t>(st.target))
        .Field("observed_us", static_cast<int64_t>(st.observed))
        .Field("count", st.count)
        .Field("breached", st.breached)
        .EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace bkup

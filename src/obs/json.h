// Minimal JSON support for the observability layer: a streaming writer used
// by the trace exporter and the structured report emitters, and a small
// recursive-descent parser used by tests and verifiers to check what was
// emitted. No external dependencies; the subset implemented is exactly what
// Chrome trace-event files and BENCH_*.json reports need.
#ifndef BKUP_OBS_JSON_H_
#define BKUP_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace bkup {

// Streaming JSON writer. Handles commas and string escaping; callers are
// responsible for balanced Begin/End calls (asserted in debug builds).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Key inside an object; follow with a value (or Begin*).
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Double(double value);  // non-finite values emit null
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Convenience: Key(k) + value in one call.
  JsonWriter& Field(std::string_view key, std::string_view value);
  JsonWriter& Field(std::string_view key, const char* value);
  JsonWriter& Field(std::string_view key, int64_t value);
  JsonWriter& Field(std::string_view key, uint64_t value);
  JsonWriter& Field(std::string_view key, double value);
  JsonWriter& Field(std::string_view key, bool value);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();
  void Raw(std::string_view text);

  std::string out_;
  // One frame per open container: 'o' object, 'a' array; tracks whether a
  // comma is due before the next element.
  struct Frame {
    char kind;
    bool has_elements = false;
    bool key_pending = false;
  };
  std::vector<Frame> stack_;
};

// Escapes `s` as the body of a JSON string (no surrounding quotes).
std::string JsonEscape(std::string_view s);

// A parsed JSON value. Objects preserve insertion order (vector of pairs),
// which also sidesteps incomplete-type issues in the recursive definition.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  int64_t int_value() const { return static_cast<int64_t>(number_); }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Object lookup; returns nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;
  // Chained lookup that never crashes: returns a null value when absent.
  const JsonValue& operator[](std::string_view key) const;

  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> elements);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses a complete JSON document. Trailing garbage is an error.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace bkup

#endif  // BKUP_OBS_JSON_H_

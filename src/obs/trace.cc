#include "src/obs/trace.h"

#include <cstdio>

#include "src/obs/json.h"

namespace bkup {

Tracer::Tracer(SimEnvironment* env, size_t capacity)
    : env_(env), capacity_(capacity > 0 ? capacity : 1) {
  env_->set_tracer(this);
}

Tracer::~Tracer() {
  for (const auto& [res, track] : watched_) {
    // Safe only while watched resources are alive; see WatchResource().
    const_cast<Resource*>(res)->RemoveObserver(this);
  }
  if (env_->tracer() == this) {
    env_->set_tracer(nullptr);
  }
}

uint32_t Tracer::Track(const std::string& name) {
  auto [it, inserted] =
      track_by_name_.try_emplace(name, static_cast<uint32_t>(tracks_.size()));
  if (inserted) {
    tracks_.push_back(TrackInfo{name, /*counter=*/false});
  }
  return it->second;
}

uint32_t Tracer::CounterTrack(const std::string& name) {
  auto [it, inserted] =
      track_by_name_.try_emplace(name, static_cast<uint32_t>(tracks_.size()));
  if (inserted) {
    tracks_.push_back(TrackInfo{name, /*counter=*/true});
  }
  return it->second;
}

void Tracer::Append(TraceEvent event) {
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(event));
}

void Tracer::Begin(uint32_t track, std::string name) {
  Append(TraceEvent{TraceEvent::Kind::kBegin, track, env_->now(),
                    std::move(name)});
}

void Tracer::End(uint32_t track) {
  Append(TraceEvent{TraceEvent::Kind::kEnd, track, env_->now(), {}});
}

void Tracer::Instant(uint32_t track, std::string name) {
  Append(TraceEvent{TraceEvent::Kind::kInstant, track, env_->now(),
                    std::move(name)});
}

void Tracer::Counter(uint32_t track, double value) {
  Append(TraceEvent{TraceEvent::Kind::kCounter, track, env_->now(), {},
                    value});
}

void Tracer::CounterNamed(const std::string& name, double value) {
  Counter(CounterTrack(name), value);
}

void Tracer::WatchResource(Resource* res) {
  auto [it, inserted] =
      watched_.try_emplace(res, CounterTrack(res->name()));
  if (!inserted) {
    return;
  }
  res->AddObserver(this);
  // Initial sample so the track starts at its current level, not at the
  // first change.
  Counter(it->second, static_cast<double>(res->in_use()));
}

void Tracer::OnResourceChange(const Resource& res, SimTime /*now*/,
                              int64_t in_use) {
  auto it = watched_.find(&res);
  if (it == watched_.end()) {
    return;
  }
  Counter(it->second, static_cast<double>(in_use));
}

std::string Tracer::ToChromeJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("displayTimeUnit", "ms");
  w.Key("otherData")
      .BeginObject()
      .Field("clock", "simulated-microseconds")
      .Field("dropped_events", dropped_)
      .EndObject();
  w.Key("traceEvents").BeginArray();
  // Track metadata: names every tid so Perfetto shows "job:...", resource
  // names etc. instead of bare numbers.
  for (size_t i = 0; i < tracks_.size(); ++i) {
    w.BeginObject()
        .Field("ph", "M")
        .Field("pid", int64_t{1})
        .Field("tid", static_cast<int64_t>(i))
        .Field("ts", int64_t{0})
        .Field("name", "thread_name")
        .Key("args")
        .BeginObject()
        .Field("name", tracks_[i].name)
        .EndObject()
        .EndObject();
  }
  for (const TraceEvent& e : ring_) {
    w.BeginObject();
    switch (e.kind) {
      case TraceEvent::Kind::kBegin:
        w.Field("ph", "B").Field("name", e.name);
        break;
      case TraceEvent::Kind::kEnd:
        w.Field("ph", "E");
        break;
      case TraceEvent::Kind::kInstant:
        // Thread-scoped instant.
        w.Field("ph", "i").Field("name", e.name).Field("s", "t");
        break;
      case TraceEvent::Kind::kCounter:
        // Chrome keys counter tracks by (pid, name): use the track's name
        // so every watched resource gets its own counter track.
        w.Field("ph", "C").Field("name", tracks_[e.track].name);
        break;
    }
    w.Field("pid", int64_t{1})
        .Field("tid", static_cast<int64_t>(e.track))
        .Field("ts", static_cast<int64_t>(e.ts));
    if (e.kind == TraceEvent::Kind::kCounter) {
      w.Key("args").BeginObject().Field("in_use", e.value).EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return IoError("cannot open trace file '" + path + "' for writing");
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return IoError("short write to trace file '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace bkup

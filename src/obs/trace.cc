#include "src/obs/trace.h"

#include <cstdio>

#include "src/obs/json.h"

namespace bkup {

Tracer::Tracer(SimEnvironment* env, size_t capacity)
    : env_(env), capacity_(capacity > 0 ? capacity : 1) {
  env_->set_tracer(this);
  // Pid 1 is the default node: every plain Track() call lands here, so
  // single-node traces look exactly like they did before processes existed.
  processes_.push_back("filer");
  process_by_name_.emplace("filer", 1u);
}

Tracer::~Tracer() {
  for (const auto& [res, track] : watched_) {
    // Safe only while watched resources are alive; see WatchResource().
    const_cast<Resource*>(res)->RemoveObserver(this);
  }
  if (env_->tracer() == this) {
    env_->set_tracer(nullptr);
  }
}

uint32_t Tracer::Process(const std::string& name) {
  auto [it, inserted] = process_by_name_.try_emplace(
      name, static_cast<uint32_t>(processes_.size()) + 1);
  if (inserted) {
    processes_.push_back(name);
  }
  return it->second;
}

uint32_t Tracer::Track(const std::string& name) { return Track(name, 1); }

uint32_t Tracer::Track(const std::string& name, uint32_t pid) {
  auto [it, inserted] =
      track_by_name_.try_emplace(name, static_cast<uint32_t>(tracks_.size()));
  if (inserted) {
    tracks_.push_back(TrackInfo{name, /*counter=*/false, pid});
    open_.emplace_back();
  }
  return it->second;
}

uint32_t Tracer::CounterTrack(const std::string& name) {
  auto [it, inserted] =
      track_by_name_.try_emplace(name, static_cast<uint32_t>(tracks_.size()));
  if (inserted) {
    tracks_.push_back(TrackInfo{name, /*counter=*/true, 1});
    open_.emplace_back();
  }
  return it->second;
}

void Tracer::Append(TraceEvent event) {
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(event));
}

void Tracer::Begin(uint32_t track, std::string name) {
  open_[track].push_back(OpenSpan{name, env_->now()});
  Append(TraceEvent{TraceEvent::Kind::kBegin, track, env_->now(),
                    std::move(name)});
}

void Tracer::Begin(uint32_t track, std::string name, const TraceContext& ctx) {
  open_[track].push_back(OpenSpan{name, env_->now()});
  Append(TraceEvent{TraceEvent::Kind::kBegin, track, env_->now(),
                    std::move(name), 0.0, 0, ctx.trace_id, ctx.incarnation});
}

void Tracer::End(uint32_t track) {
  NotifyEnd(track, env_->now());
  Append(TraceEvent{TraceEvent::Kind::kEnd, track, env_->now(), {}});
}

void Tracer::NotifyEnd(uint32_t track, SimTime end) {
  if (open_[track].empty()) {
    return;  // unmatched End; nothing to report
  }
  OpenSpan span = std::move(open_[track].back());
  open_[track].pop_back();
  if (listener_ != nullptr) {
    listener_->OnSpanEnd(tracks_[track].name, span.name, span.begin, end);
  }
}

void Tracer::Instant(uint32_t track, std::string name) {
  Append(TraceEvent{TraceEvent::Kind::kInstant, track, env_->now(),
                    std::move(name)});
}

void Tracer::Instant(uint32_t track, std::string name,
                     const TraceContext& ctx) {
  Append(TraceEvent{TraceEvent::Kind::kInstant, track, env_->now(),
                    std::move(name), 0.0, 0, ctx.trace_id, ctx.incarnation});
}

void Tracer::Counter(uint32_t track, double value) {
  Append(TraceEvent{TraceEvent::Kind::kCounter, track, env_->now(), {},
                    value});
}

void Tracer::CounterNamed(const std::string& name, double value) {
  Counter(CounterTrack(name), value);
}

void Tracer::FlowStart(uint32_t track, uint64_t id, std::string name,
                       const TraceContext& ctx) {
  Append(TraceEvent{TraceEvent::Kind::kFlowStart, track, env_->now(),
                    std::move(name), 0.0, id, ctx.trace_id, ctx.incarnation});
}

void Tracer::FlowEnd(uint32_t track, uint64_t id, std::string name,
                     const TraceContext& ctx) {
  Append(TraceEvent{TraceEvent::Kind::kFlowEnd, track, env_->now(),
                    std::move(name), 0.0, id, ctx.trace_id, ctx.incarnation});
}

void Tracer::WatchResource(Resource* res) {
  auto [it, inserted] =
      watched_.try_emplace(res, CounterTrack(res->name()));
  if (!inserted) {
    return;
  }
  res->AddObserver(this);
  // Initial sample so the track starts at its current level, not at the
  // first change.
  Counter(it->second, static_cast<double>(res->in_use()));
}

void Tracer::OnResourceChange(const Resource& res, SimTime /*now*/,
                              int64_t in_use) {
  auto it = watched_.find(&res);
  if (it == watched_.end()) {
    return;
  }
  Counter(it->second, static_cast<double>(in_use));
}

std::string Tracer::ToChromeJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("displayTimeUnit", "ms");
  w.Key("otherData")
      .BeginObject()
      .Field("clock", "simulated-microseconds")
      .Field("dropped_events", dropped_)
      .EndObject();
  w.Key("traceEvents").BeginArray();
  // Process metadata: one row per node (the filer plus every tape server
  // the trace touched), so Perfetto renders a per-node timeline.
  for (size_t i = 0; i < processes_.size(); ++i) {
    w.BeginObject()
        .Field("ph", "M")
        .Field("pid", static_cast<int64_t>(i + 1))
        .Field("tid", int64_t{0})
        .Field("ts", int64_t{0})
        .Field("name", "process_name")
        .Key("args")
        .BeginObject()
        .Field("name", processes_[i])
        .EndObject()
        .EndObject();
  }
  // Track metadata: names every tid so Perfetto shows "job:...", resource
  // names etc. instead of bare numbers.
  for (size_t i = 0; i < tracks_.size(); ++i) {
    w.BeginObject()
        .Field("ph", "M")
        .Field("pid", static_cast<int64_t>(tracks_[i].pid))
        .Field("tid", static_cast<int64_t>(i))
        .Field("ts", int64_t{0})
        .Field("name", "thread_name")
        .Key("args")
        .BeginObject()
        .Field("name", tracks_[i].name)
        .EndObject()
        .EndObject();
  }
  for (const TraceEvent& e : ring_) {
    w.BeginObject();
    switch (e.kind) {
      case TraceEvent::Kind::kBegin:
        w.Field("ph", "B").Field("name", e.name);
        break;
      case TraceEvent::Kind::kEnd:
        w.Field("ph", "E");
        break;
      case TraceEvent::Kind::kInstant:
        // Thread-scoped instant.
        w.Field("ph", "i").Field("name", e.name).Field("s", "t");
        break;
      case TraceEvent::Kind::kCounter:
        // Chrome keys counter tracks by (pid, name): use the track's name
        // so every watched resource gets its own counter track.
        w.Field("ph", "C").Field("name", tracks_[e.track].name);
        break;
      case TraceEvent::Kind::kFlowStart:
        w.Field("ph", "s").Field("name", e.name).Field("cat", "flow");
        w.Field("id", e.flow_id);
        break;
      case TraceEvent::Kind::kFlowEnd:
        // bp:"e" binds the arrow head to the enclosing slice, which is how
        // sender→receiver frame arrows attach to the rx span.
        w.Field("ph", "f").Field("name", e.name).Field("cat", "flow");
        w.Field("id", e.flow_id).Field("bp", "e");
        break;
    }
    w.Field("pid", static_cast<int64_t>(tracks_[e.track].pid))
        .Field("tid", static_cast<int64_t>(e.track))
        .Field("ts", static_cast<int64_t>(e.ts));
    if (e.kind == TraceEvent::Kind::kCounter) {
      w.Key("args").BeginObject().Field("in_use", e.value).EndObject();
    } else if (e.trace_id != 0) {
      // Causal identity: every event of one logical job shares a trace id;
      // incarnation counts supervised restarts within it.
      w.Key("args")
          .BeginObject()
          .Field("trace", e.trace_id)
          .Field("incarnation", static_cast<uint64_t>(e.incarnation))
          .EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return IoError("cannot open trace file '" + path + "' for writing");
  }
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return IoError("short write to trace file '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace bkup

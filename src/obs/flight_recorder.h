// Crash flight recorder: the simulation's black box.
//
// A chaos-soak failure used to leave nothing behind but a test log — the
// fault that tripped it, the scheduler's queue at the moment it happened
// and the tail of the trace ring were all gone by the time anyone looked.
// The `FlightRecorder` keeps exactly that evidence. It attaches to a
// `SimEnvironment` (like the tracer: one pointer, null-checked at every
// site), passively accumulates the last-N fault/crash injections, and on
// demand — job failure, SLO breach, chaos kill — snapshots everything it
// knows into one `flightrec_<reason>_<seq>.json`:
//
//   - the recorded fault/crash ring (kind, device, detail, sim time),
//   - counter deltas since the baseline (what moved during the flight),
//   - the tail of the trace ring plus its dropped-events count,
//   - every registered state provider (scheduler queue, resume stats, ...)
//     polled live at dump time.
//
// Determinism: filenames are sequenced, timestamps are simulated, and no
// wall clock or randomness is consulted — the same seed produces a
// byte-identical black box, so a flight record is a *replayable* artifact,
// not just a post-mortem one. See DESIGN.md §14.
#ifndef BKUP_OBS_FLIGHT_RECORDER_H_
#define BKUP_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/sim/environment.h"
#include "src/util/status.h"

namespace bkup {

// One recorded injection or crash consult.
struct FlightFaultEvent {
  SimTime ts = 0;
  std::string kind;    // "disk", "tape", "link", "crash", ...
  std::string target;  // device / link / job name
  std::string detail;  // free-form: offset, incarnation, fault flavor
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultFaultCapacity = 256;
  static constexpr size_t kDefaultTraceTail = 64;

  // Attaches to `env` (becomes `env->flight_recorder()`); detaches on
  // destruction. Dumps are written under `dir`. The metrics baseline for
  // delta reporting is captured now (re-capture with MarkMetricsBaseline).
  explicit FlightRecorder(SimEnvironment* env, std::string dir = ".",
                          MetricsRegistry* metrics = &MetricsRegistry::Default(),
                          size_t fault_capacity = kDefaultFaultCapacity);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  SimEnvironment* env() const { return env_; }

  // Appends to the bounded fault ring (oldest dropped, counted).
  void RecordFault(std::string kind, std::string target, std::string detail);

  // Live-state callbacks polled at dump time, keyed by name. Providers must
  // emit exactly one JSON value. Register for the duration of the state's
  // lifetime and remove before it dies.
  using StateProvider = std::function<void(JsonWriter*)>;
  void AddStateProvider(const std::string& name, StateProvider provider);
  void RemoveStateProvider(const std::string& name);

  // Re-captures the counter baseline; deltas in later dumps are relative
  // to this point.
  void MarkMetricsBaseline();

  // Writes flightrec_<reason>_<seq>.json under dir; `last_path()` names
  // the file on success.
  Status Dump(const std::string& reason);
  // The snapshot body without touching the filesystem (tests, embedding).
  std::string SnapshotJson(const std::string& reason);

  uint64_t dumps_written() const { return dumps_; }
  const std::string& last_path() const { return last_path_; }
  size_t fault_event_count() const { return faults_.size(); }
  uint64_t faults_dropped() const { return faults_dropped_; }
  const std::deque<FlightFaultEvent>& fault_events() const { return faults_; }

 private:
  SimEnvironment* env_;
  std::string dir_;
  MetricsRegistry* metrics_;
  size_t fault_capacity_;
  std::deque<FlightFaultEvent> faults_;
  uint64_t faults_dropped_ = 0;
  std::vector<std::pair<std::string, StateProvider>> providers_;
  std::vector<std::pair<std::string, uint64_t>> baseline_;
  uint64_t dumps_ = 0;
  std::string last_path_;
};

}  // namespace bkup

#endif  // BKUP_OBS_FLIGHT_RECORDER_H_

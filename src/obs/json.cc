#include "src/obs/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bkup {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Raw(std::string_view text) { out_.append(text); }

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    return;
  }
  Frame& top = stack_.back();
  if (top.kind == 'o') {
    assert(top.key_pending && "object value without a preceding Key()");
    top.key_pending = false;
    return;  // the comma was written before the key
  }
  if (top.has_elements) {
    Raw(",");
  }
  top.has_elements = true;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  Raw("{");
  stack_.push_back(Frame{'o'});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty() && stack_.back().kind == 'o');
  assert(!stack_.back().key_pending && "dangling Key() at EndObject");
  stack_.pop_back();
  Raw("}");
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  Raw("[");
  stack_.push_back(Frame{'a'});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty() && stack_.back().kind == 'a');
  stack_.pop_back();
  Raw("]");
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  assert(!stack_.empty() && stack_.back().kind == 'o');
  Frame& top = stack_.back();
  if (top.has_elements) {
    Raw(",");
  }
  top.has_elements = true;
  top.key_pending = true;
  Raw("\"");
  Raw(JsonEscape(key));
  Raw("\":");
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  Raw("\"");
  Raw(JsonEscape(value));
  Raw("\"");
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  Raw(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  Raw(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    Raw("null");
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  Raw(buf);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  Raw(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  Raw("null");
  return *this;
}

JsonWriter& JsonWriter::Field(std::string_view key, std::string_view value) {
  return Key(key).String(value);
}
JsonWriter& JsonWriter::Field(std::string_view key, const char* value) {
  return Key(key).String(value);
}
JsonWriter& JsonWriter::Field(std::string_view key, int64_t value) {
  return Key(key).Int(value);
}
JsonWriter& JsonWriter::Field(std::string_view key, uint64_t value) {
  return Key(key).Uint(value);
}
JsonWriter& JsonWriter::Field(std::string_view key, double value) {
  return Key(key).Double(value);
}
JsonWriter& JsonWriter::Field(std::string_view key, bool value) {
  return Key(key).Bool(value);
}

// ---------------------------------------------------------------- values ---

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

const JsonValue& JsonValue::operator[](std::string_view key) const {
  static const JsonValue kNull;
  const JsonValue* found = Find(key);
  return found != nullptr ? *found : kNull;
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}
JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}
JsonValue JsonValue::MakeArray(std::vector<JsonValue> elements) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(elements);
  return v;
}
JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.members_ = std::move(members);
  return v;
}

// ---------------------------------------------------------------- parser ---

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipSpace();
    JsonValue v;
    BKUP_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const std::string& what) const {
    return Corruption("JSON parse error at offset " + std::to_string(pos_) +
                      ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out, depth);
    }
    if (c == '[') {
      return ParseArray(out, depth);
    }
    if (c == '"') {
      std::string s;
      BKUP_RETURN_IF_ERROR(ParseString(&s));
      *out = JsonValue::MakeString(std::move(s));
      return Status::Ok();
    }
    if (ConsumeWord("true")) {
      *out = JsonValue::MakeBool(true);
      return Status::Ok();
    }
    if (ConsumeWord("false")) {
      *out = JsonValue::MakeBool(false);
      return Status::Ok();
    }
    if (ConsumeWord("null")) {
      *out = JsonValue();
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipSpace();
    if (Consume('}')) {
      *out = JsonValue::MakeObject(std::move(members));
      return Status::Ok();
    }
    while (true) {
      SkipSpace();
      std::string key;
      BKUP_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      JsonValue value;
      BKUP_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        break;
      }
      return Fail("expected ',' or '}' in object");
    }
    *out = JsonValue::MakeObject(std::move(members));
    return Status::Ok();
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    std::vector<JsonValue> elements;
    SkipSpace();
    if (Consume(']')) {
      *out = JsonValue::MakeArray(std::move(elements));
      return Status::Ok();
    }
    while (true) {
      JsonValue value;
      BKUP_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      elements.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        break;
      }
      return Fail("expected ',' or ']' in array");
    }
    *out = JsonValue::MakeArray(std::move(elements));
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected '\"'");
    }
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::Ok();
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // Only BMP code points; encode as UTF-8.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number '" + token + "'");
    }
    *out = JsonValue::MakeNumber(d);
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace bkup

// Content pipeline: composable byte-stream stages on the backup data path
// (DESIGN.md §16).
//
// A dump stream leaves the functional engines as *raw* bytes in raw stream
// coordinates — the coordinates every IoTrace event, TapeCatalog offset and
// resume checkpoint is stated in. When a ReplayConfig enables content
// stages, the stream is encoded once, functionally, into a *wire* image:
//
//     raw stream --ChunkStage--> chunks --DedupStage--> literal/ref frames
//                --CompressStage--> smaller literal payloads
//                --CrcStage--> per-frame checksums
//
// and it is the wire image that tapes store, links carry, QoS throttles
// pace and acked floors resume from. The exact inverse pipeline rebuilds
// the raw stream byte-identically on restore, verifying every frame it
// reconstructs from the ChunkIndex — a corrupt store entry fails loudly
// with kCorruption, never silently dedups wrong.
//
// The simulation twist: workload file contents are seeded random bytes,
// which no real compressor shrinks. CompressStage therefore *models*
// compression as a content-addressed store: each literal frame's wire
// payload is a deterministic filler of ceil(raw_len / ratio) bytes while
// the chunk's raw bytes live in the ChunkIndex keyed by their content hash.
// The byte buffers the timed devices move are genuinely smaller — tape
// capacity, link framing, throttling and reconnect resume all operate on
// real (post-stage) byte counts — and decode reconstructs the exact raw
// bytes from the store under hash + CRC verification. With compression and
// dedup both off, literal frames carry the raw bytes verbatim and the wire
// image is self-contained.
//
// FrameMap is the coordinate bridge: a monotone piecewise-linear raw<->wire
// mapping built from the frame boundaries (and rebuildable by scanning a
// wire image), exact at frame boundaries, used to translate producer
// chunks, reader watermarks and catalog byte ranges between the two
// coordinate systems.
#ifndef BKUP_CONTENT_CONTENT_H_
#define BKUP_CONTENT_CONTENT_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/dump/catalog.h"  // StreamRange
#include "src/util/status.h"
#include "src/util/units.h"

namespace bkup {

// Persistent chunk store: content hash -> raw chunk bytes, journaled next
// to the TapeCatalog with the same torn-tail-tolerant entry/checkpoint
// format. Backups insert the chunks they store; later backups dedup
// against it; restores of compressed or dedup'd media reconstruct from it.
class ChunkIndex {
 public:
  struct Entry {
    std::vector<uint8_t> bytes;
    uint32_t crc = 0;  // Crc32c of `bytes`, sealed at insert time
  };

  // Inserts if absent. Returns true when the chunk was new (unique).
  bool Insert(uint64_t hash, std::span<const uint8_t> bytes);
  // Null when the hash is unknown.
  const Entry* Find(uint64_t hash) const;

  size_t size() const { return map_.size(); }
  uint64_t stored_bytes() const { return stored_bytes_; }

  // Durable journal image (entry frames sealed by periodic checkpoint
  // frames, like TapeCatalog::Serialize) and its torn-tail-tolerant loader:
  // entries past the last intact checkpoint are dropped, a corrupt sealed
  // prefix fails with kCorruption.
  std::vector<uint8_t> Serialize(uint32_t checkpoint_every = 64) const;
  static Result<ChunkIndex> Load(std::span<const uint8_t> image);

  // Test hook: flips a byte of the stored entry for `hash` (keeping its
  // sealed CRC), so decode-side verification can be exercised. Returns
  // false when the hash is unknown.
  bool CorruptEntryForTest(uint64_t hash);

 private:
  std::unordered_map<uint64_t, Entry> map_;
  uint64_t stored_bytes_ = 0;
};

// Which stages run, their parameters, and their per-MB CPU prices. Lives on
// ReplayConfig (local jobs), RemoteTarget (remote jobs) and
// ResumableRestoreConfig. Default: every stage off — the pre-content
// behaviour, raw bytes end to end.
struct ContentConfig {
  bool chunk = false;     // content-defined chunking (vs fixed-size)
  bool dedup = false;     // literal-or-reference frames against `index`
  bool compress = false;  // ratio-modeled literal payload shrink
  bool crc = false;       // per-frame Crc32c sealed and verified

  // Modeled compression ratio (raw/wire) for literal payloads; > 1.0.
  double compress_ratio = 2.0;

  // Content-defined chunk bounds. avg must be a power of two (it is the
  // rolling-hash boundary mask); with `chunk` off, fixed avg-sized chunks.
  uint32_t min_chunk_bytes = 2 * kKiB;
  uint32_t avg_chunk_bytes = 8 * kKiB;
  uint32_t max_chunk_bytes = 64 * kKiB;

  // Seeds the rolling-hash table and the literal filler generator.
  uint64_t seed = 0x626b6370;  // "bkcp"

  // Chunk store; required when compress or dedup is enabled (their decode
  // reconstructs from it). Shared across jobs for cross-night dedup.
  ChunkIndex* index = nullptr;

  // Per-MB CPU prices (simulated us per 10^6 raw bytes), charged at the
  // replay's QoS priority class while the stream moves.
  SimDuration chunk_cpu_us_per_mb = 150;
  SimDuration dedup_cpu_us_per_mb = 250;
  SimDuration compress_cpu_us_per_mb = 1000;
  SimDuration crc_cpu_us_per_mb = 150;
  SimDuration decode_cpu_us_per_mb = 500;  // store lookup + decompress

  bool enabled() const { return chunk || dedup || compress || crc; }

  // Encode-side CPU per raw MB: the sum of the enabled stages' prices.
  SimDuration EncodeCpuPerMb() const;
  // Decode-side CPU per raw MB: CRC verification plus reconstruction.
  SimDuration DecodeCpuPerMb() const;

  Status Validate() const;
};

// What the stages did to one stream; accumulated into JobReport.content.
struct ContentStats {
  uint64_t raw_bytes = 0;     // engine-side stream size
  uint64_t wire_bytes = 0;    // post-stage image size (tape/link bytes)
  uint64_t unique_bytes = 0;  // raw bytes newly stored in the ChunkIndex
  uint64_t chunks = 0;        // frames emitted (literal + ref)
  uint64_t dedup_hits = 0;    // ref frames (chunk already in the index)
  uint64_t crc_checks = 0;    // frame verifications performed on decode
  // Simulated CPU the stages charged during replay, microseconds.
  uint64_t encode_cpu_us = 0;
  uint64_t decode_cpu_us = 0;

  bool any() const {
    return raw_bytes + wire_bytes + unique_bytes + chunks + dedup_hits +
               crc_checks + encode_cpu_us + decode_cpu_us >
           0;
  }
  void Add(const ContentStats& o);
  bool operator==(const ContentStats&) const = default;
};

// Monotone piecewise-linear raw<->wire coordinate mapping of one encoded
// stream, exact at frame boundaries and floor-interpolated within a frame
// (so contiguous chunk translations stay contiguous and exhaustive).
class FrameMap {
 public:
  struct Frame {
    uint64_t raw_begin = 0;
    uint64_t wire_begin = 0;
    uint32_t raw_len = 0;
    uint32_t wire_len = 0;  // frame header + payload
  };

  // W(r): wire offset of raw offset `r`. W(0) == 0 (the stream header rides
  // with the first chunk), W(raw_total) == wire_total.
  uint64_t WireOf(uint64_t raw) const;
  // Largest raw offset fully decodable once wire bytes [0, wire) arrived:
  // the inverse of WireOf, same interpolation, monotone.
  uint64_t RawAvailable(uint64_t wire) const;
  // Frame-aligned wire cover of a raw range: every frame overlapping
  // [r.begin, r.end) in full. The first cover also includes the stream
  // header. Input ranges must ascend; overlapping covers are coalesced.
  std::vector<StreamRange> WireRangesOf(std::span<const StreamRange> raw,
                                        bool include_header = true) const;
  // Raw bytes represented by frame-aligned wire ranges (for decode-CPU and
  // bounded-replay accounting).
  uint64_t RawSizeOfWireRange(const StreamRange& wire) const;

  uint64_t raw_total() const { return raw_total_; }
  uint64_t wire_total() const { return wire_total_; }
  const std::vector<Frame>& frames() const { return frames_; }

  // Rebuilds the map by scanning a wire image's headers (restore side).
  static Result<FrameMap> FromWire(std::span<const uint8_t> wire);

 private:
  friend class StagePipeline;
  std::vector<Frame> frames_;
  uint64_t raw_total_ = 0;
  uint64_t wire_total_ = 0;
};

struct EncodeResult {
  std::vector<uint8_t> wire;
  FrameMap map;
  ContentStats stats;  // sizes and counts; CPU fields stay 0 until replay
};

// The composable stage pipeline. Encode and Decode are exact inverses for
// every stage combination; both are functional (instantaneous) — the replay
// layer charges the CPU the stats price out.
class StagePipeline {
 public:
  explicit StagePipeline(ContentConfig config) : cfg_(config) {}

  const ContentConfig& config() const { return cfg_; }

  // raw -> wire image + coordinate map. Inserts literal chunks into
  // cfg.index when compression or dedup needs the store.
  Result<EncodeResult> Encode(std::span<const uint8_t> raw) const;

  // wire image -> raw bytes, verifying every reconstructed frame. The wire
  // header's stage flags are authoritative (a restore does not need to know
  // how the backup was configured — only to share its ChunkIndex).
  Result<std::vector<uint8_t>> Decode(std::span<const uint8_t> wire,
                                      ContentStats* stats = nullptr) const;

  // Content-defined chunk end offsets of `raw` (ascending, last == size).
  // Exposed for the chunking-locality property tests.
  std::vector<uint64_t> ChunkBoundaries(std::span<const uint8_t> raw) const;

 private:
  ContentConfig cfg_;
};

// 64-bit content hash of a chunk (FNV-1a with a finalizing mix). Encode
// verifies bytes on hash match before emitting a ref, so a collision can
// cost a missed dedup but never a wrong one.
uint64_t ContentHash(std::span<const uint8_t> bytes);

// Wire-format constants, exposed for tests and the map scanner.
inline constexpr uint32_t kContentMagic = 0x424B4354;  // "BKCT"
inline constexpr size_t kContentStreamHeaderBytes = 40;
inline constexpr size_t kContentFrameHeaderBytes = 24;

}  // namespace bkup

#endif  // BKUP_CONTENT_CONTENT_H_

#include "src/content/content.h"

#include <algorithm>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/util/checksum.h"
#include "src/util/random.h"
#include "src/util/serdes.h"

namespace bkup {

namespace {

// ChunkIndex journal framing (the TapeCatalog idiom: entry frames sealed by
// running-CRC checkpoints, so a torn tail drops cleanly).
constexpr uint32_t kChunkIndexMagic = 0x424B4349;  // "BKCI"
constexpr uint8_t kJournalEntry = 1;
constexpr uint8_t kJournalCheckpoint = 2;

// Wire frame types and flags.
constexpr uint8_t kFrameLiteral = 1;
constexpr uint8_t kFrameRef = 2;
// Literal payload is the raw chunk verbatim (compression off, or a store
// fallback); otherwise the payload is modeled-compressed filler and the raw
// bytes live in the ChunkIndex.
constexpr uint8_t kFlagVerbatim = 1;

constexpr uint16_t kWireVersion = 1;
constexpr uint16_t kStageChunk = 1 << 0;
constexpr uint16_t kStageDedup = 1 << 1;
constexpr uint16_t kStageCompress = 1 << 2;
constexpr uint16_t kStageCrc = 1 << 3;

constexpr size_t kRollWindow = 48;

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

struct RollTable {
  uint64_t t[256];
};

RollTable MakeRollTable(uint64_t seed) {
  RollTable table;
  uint64_t state = seed ^ 0x636e6b74;  // "cnkt"
  for (uint64_t& v : table.t) {
    v = SplitMix64(state);
  }
  return table;
}

uint64_t RotL(uint64_t v, int s) { return (v << s) | (v >> (64 - s)); }

uint16_t StageFlags(const ContentConfig& cfg) {
  uint16_t flags = 0;
  if (cfg.chunk) flags |= kStageChunk;
  if (cfg.dedup) flags |= kStageDedup;
  if (cfg.compress) flags |= kStageCompress;
  if (cfg.crc) flags |= kStageCrc;
  return flags;
}

uint32_t RatioMilli(double ratio) {
  return static_cast<uint32_t>(ratio * 1000.0 + 0.5);
}

// Deterministic modeled-compressed payload for a stored chunk: content is
// irrelevant to decode (the store holds the raw bytes) but must be stable
// across runs and resumes so the tape image is byte-identical.
void FillCompressed(std::vector<uint8_t>* out, uint64_t hash, uint64_t seed,
                    size_t n) {
  uint64_t state = hash ^ Mix64(seed);
  size_t done = out->size();
  out->resize(done + n);
  while (done < out->size()) {
    uint64_t v = SplitMix64(state);
    for (int i = 0; i < 8 && done < out->size(); ++i, v >>= 8) {
      (*out)[done++] = static_cast<uint8_t>(v);
    }
  }
}

struct WireHeader {
  uint16_t flags = 0;
  uint32_t ratio_milli = 1000;
  uint64_t raw_total = 0;
};

void PutStreamHeader(std::vector<uint8_t>* wire, const ContentConfig& cfg,
                     uint64_t raw_total) {
  ByteWriter w(wire);
  w.PutU32(kContentMagic);
  w.PutU16(kWireVersion);
  w.PutU16(StageFlags(cfg));
  w.PutU32(RatioMilli(cfg.compress_ratio));
  w.PutU32(cfg.min_chunk_bytes);
  w.PutU32(cfg.avg_chunk_bytes);
  w.PutU32(cfg.max_chunk_bytes);
  w.PutU64(raw_total);
  w.PutU32(Crc32c(std::span<const uint8_t>(*wire).first(32)));
  w.PadTo(kContentStreamHeaderBytes);
}

Result<WireHeader> ParseStreamHeader(std::span<const uint8_t> wire) {
  if (wire.size() < kContentStreamHeaderBytes) {
    return Corruption("content stream shorter than its header");
  }
  ByteReader r(wire);
  WireHeader h;
  BKUP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kContentMagic) {
    return Corruption("bad content stream magic");
  }
  BKUP_ASSIGN_OR_RETURN(uint16_t version, r.ReadU16());
  if (version != kWireVersion) {
    return Corruption("unknown content stream version");
  }
  BKUP_ASSIGN_OR_RETURN(h.flags, r.ReadU16());
  BKUP_ASSIGN_OR_RETURN(h.ratio_milli, r.ReadU32());
  BKUP_ASSIGN_OR_RETURN(uint32_t min_chunk, r.ReadU32());
  BKUP_ASSIGN_OR_RETURN(uint32_t avg_chunk, r.ReadU32());
  BKUP_ASSIGN_OR_RETURN(uint32_t max_chunk, r.ReadU32());
  (void)min_chunk;
  (void)avg_chunk;
  (void)max_chunk;
  BKUP_ASSIGN_OR_RETURN(h.raw_total, r.ReadU64());
  BKUP_ASSIGN_OR_RETURN(uint32_t crc, r.ReadU32());
  if (crc != Crc32c(wire.first(32))) {
    return Corruption("content stream header checksum mismatch");
  }
  return h;
}

struct FrameHeader {
  uint8_t type = 0;
  uint8_t flags = 0;
  uint32_t raw_len = 0;
  uint32_t payload_len = 0;
  uint64_t hash = 0;
  uint32_t crc = 0;
};

void PutFrameHeader(std::vector<uint8_t>* wire, const FrameHeader& f) {
  ByteWriter w(wire);
  w.PutU8(f.type);
  w.PutU8(f.flags);
  w.PutU16(0);
  w.PutU32(f.raw_len);
  w.PutU32(f.payload_len);
  w.PutU64(f.hash);
  w.PutU32(f.crc);
}

Result<FrameHeader> ReadFrameHeader(ByteReader* r) {
  FrameHeader f;
  BKUP_ASSIGN_OR_RETURN(f.type, r->ReadU8());
  BKUP_ASSIGN_OR_RETURN(f.flags, r->ReadU8());
  BKUP_ASSIGN_OR_RETURN(uint16_t reserved, r->ReadU16());
  if (reserved != 0) {
    return Corruption("content frame has nonzero reserved field");
  }
  BKUP_ASSIGN_OR_RETURN(f.raw_len, r->ReadU32());
  BKUP_ASSIGN_OR_RETURN(f.payload_len, r->ReadU32());
  BKUP_ASSIGN_OR_RETURN(f.hash, r->ReadU64());
  BKUP_ASSIGN_OR_RETURN(f.crc, r->ReadU32());
  if (f.type != kFrameLiteral && f.type != kFrameRef) {
    return Corruption("unknown content frame type");
  }
  return f;
}

}  // namespace

uint64_t ContentHash(std::span<const uint8_t> bytes) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return Mix64(h);
}

// ------------------------------------------------------------ ChunkIndex ---

bool ChunkIndex::Insert(uint64_t hash, std::span<const uint8_t> bytes) {
  auto [it, inserted] = map_.try_emplace(hash);
  if (!inserted) {
    return false;
  }
  it->second.bytes.assign(bytes.begin(), bytes.end());
  it->second.crc = Crc32c(bytes);
  stored_bytes_ += bytes.size();
  return true;
}

const ChunkIndex::Entry* ChunkIndex::Find(uint64_t hash) const {
  auto it = map_.find(hash);
  return it == map_.end() ? nullptr : &it->second;
}

bool ChunkIndex::CorruptEntryForTest(uint64_t hash) {
  auto it = map_.find(hash);
  if (it == map_.end() || it->second.bytes.empty()) {
    return false;
  }
  it->second.bytes[it->second.bytes.size() / 2] ^= 0x5a;
  return true;
}

std::vector<uint8_t> ChunkIndex::Serialize(uint32_t checkpoint_every) const {
  if (checkpoint_every == 0) {
    checkpoint_every = 1;
  }
  // Hash order: deterministic regardless of insertion history.
  std::vector<const std::pair<const uint64_t, Entry>*> sorted;
  sorted.reserve(map_.size());
  for (const auto& kv : map_) {
    sorted.push_back(&kv);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  std::vector<uint8_t> image;
  ByteWriter w(&image);
  w.PutU32(kChunkIndexMagic);
  uint32_t unsealed = 0;
  auto Seal = [&image, &w]() {
    const uint32_t crc = Crc32c(image);
    w.PutU8(kJournalCheckpoint);
    w.PutU32(crc);
  };
  for (const auto* kv : sorted) {
    w.PutU8(kJournalEntry);
    w.PutU64(kv->first);
    w.PutU32(kv->second.crc);
    w.PutU32(static_cast<uint32_t>(kv->second.bytes.size()));
    w.PutBytes(kv->second.bytes);
    if (++unsealed >= checkpoint_every) {
      Seal();
      unsealed = 0;
    }
  }
  Seal();  // always end sealed (also seals the empty index)
  return image;
}

Result<ChunkIndex> ChunkIndex::Load(std::span<const uint8_t> image) {
  ByteReader r(image);
  Result<uint32_t> magic = r.ReadU32();
  if (!magic.ok() || *magic != kChunkIndexMagic) {
    return Corruption("bad chunk index magic");
  }
  ChunkIndex index;
  // Entries read since the last intact checkpoint; committed only when the
  // next checkpoint's running CRC matches.
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> tentative;
  bool sealed_once = false;
  while (!r.exhausted()) {
    Result<uint8_t> type = r.ReadU8();
    if (!type.ok()) {
      break;  // torn tail
    }
    if (*type == kJournalCheckpoint) {
      const size_t frame_start = r.position() - 1;
      Result<uint32_t> crc = r.ReadU32();
      if (!crc.ok()) {
        break;  // torn tail
      }
      if (*crc != Crc32c(image.first(frame_start))) {
        // A flip in the sealed prefix fails this and every later
        // checkpoint; nothing after the last good seal can be trusted.
        break;
      }
      for (auto& [hash, bytes] : tentative) {
        index.Insert(hash, bytes);
      }
      tentative.clear();
      sealed_once = true;
      continue;
    }
    if (*type != kJournalEntry) {
      break;  // garbage; keep what the last checkpoint sealed
    }
    Result<uint64_t> hash = r.ReadU64();
    Result<uint32_t> crc = r.ReadU32();
    Result<uint32_t> len = r.ReadU32();
    if (!hash.ok() || !crc.ok() || !len.ok()) {
      break;
    }
    Result<std::vector<uint8_t>> bytes = r.ReadBytes(*len);
    if (!bytes.ok()) {
      break;
    }
    if (Crc32c(*bytes) != *crc) {
      break;  // entry body damaged; the next checkpoint would fail anyway
    }
    tentative.emplace_back(*hash, std::move(*bytes));
  }
  if (!sealed_once) {
    return Corruption("chunk index has no intact checkpointed prefix");
  }
  return index;
}

// ---------------------------------------------------------- ContentConfig ---

SimDuration ContentConfig::EncodeCpuPerMb() const {
  SimDuration us = 0;
  if (chunk) us += chunk_cpu_us_per_mb;
  if (dedup) us += dedup_cpu_us_per_mb;
  if (compress) us += compress_cpu_us_per_mb;
  if (crc) us += crc_cpu_us_per_mb;
  return us;
}

SimDuration ContentConfig::DecodeCpuPerMb() const {
  SimDuration us = 0;
  if (crc) us += crc_cpu_us_per_mb;
  if (compress || dedup) us += decode_cpu_us_per_mb;
  return us;
}

Status ContentConfig::Validate() const {
  if (!enabled()) {
    return Status::Ok();
  }
  if (avg_chunk_bytes == 0 ||
      (avg_chunk_bytes & (avg_chunk_bytes - 1)) != 0) {
    return InvalidArgument("avg_chunk_bytes must be a power of two");
  }
  if (min_chunk_bytes < kRollWindow + 1) {
    return InvalidArgument("min_chunk_bytes below the rolling-hash window");
  }
  if (min_chunk_bytes > avg_chunk_bytes || avg_chunk_bytes > max_chunk_bytes) {
    return InvalidArgument("chunk bounds must satisfy min <= avg <= max");
  }
  if (compress && compress_ratio <= 1.0) {
    return InvalidArgument("compress_ratio must exceed 1.0");
  }
  if ((compress || dedup) && index == nullptr) {
    return InvalidArgument(
        "compression and dedup need a ChunkIndex (their decode reconstructs "
        "from the store)");
  }
  return Status::Ok();
}

void ContentStats::Add(const ContentStats& o) {
  raw_bytes += o.raw_bytes;
  wire_bytes += o.wire_bytes;
  unique_bytes += o.unique_bytes;
  chunks += o.chunks;
  dedup_hits += o.dedup_hits;
  crc_checks += o.crc_checks;
  encode_cpu_us += o.encode_cpu_us;
  decode_cpu_us += o.decode_cpu_us;
}

// --------------------------------------------------------------- FrameMap ---

uint64_t FrameMap::WireOf(uint64_t raw) const {
  if (raw >= raw_total_) {
    return wire_total_;
  }
  if (raw == 0) {
    return 0;  // the stream header rides with the first chunk
  }
  // Last frame with raw_begin <= raw.
  auto it = std::upper_bound(
      frames_.begin(), frames_.end(), raw,
      [](uint64_t r, const Frame& f) { return r < f.raw_begin; });
  const Frame& f = *(it - 1);
  const uint64_t off = raw - f.raw_begin;
  return f.wire_begin + off * f.wire_len / f.raw_len;
}

uint64_t FrameMap::RawAvailable(uint64_t wire) const {
  if (wire >= wire_total_) {
    return raw_total_;
  }
  if (frames_.empty() || wire <= frames_.front().wire_begin) {
    return 0;
  }
  auto it = std::upper_bound(
      frames_.begin(), frames_.end(), wire,
      [](uint64_t w, const Frame& f) { return w < f.wire_begin; });
  const Frame& f = *(it - 1);
  const uint64_t off = wire - f.wire_begin;
  const uint64_t partial = off * f.raw_len / f.wire_len;
  return f.raw_begin + std::min<uint64_t>(partial, f.raw_len);
}

std::vector<StreamRange> FrameMap::WireRangesOf(
    std::span<const StreamRange> raw, bool include_header) const {
  std::vector<StreamRange> out;
  for (const StreamRange& r : raw) {
    if (r.begin >= r.end || frames_.empty()) {
      continue;
    }
    // First frame overlapping r (raw_begin + raw_len > r.begin).
    auto first = std::upper_bound(
        frames_.begin(), frames_.end(), r.begin,
        [](uint64_t v, const Frame& f) { return v < f.raw_begin + f.raw_len; });
    // One past the last frame overlapping r (raw_begin < r.end).
    auto last = std::lower_bound(
        frames_.begin(), frames_.end(), r.end,
        [](const Frame& f, uint64_t v) { return f.raw_begin < v; });
    if (first >= last) {
      continue;
    }
    StreamRange w{first->wire_begin,
                  (last - 1)->wire_begin + (last - 1)->wire_len};
    if (include_header && first == frames_.begin()) {
      w.begin = 0;
    }
    if (!out.empty() && w.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, w.end);
    } else {
      out.push_back(w);
    }
  }
  return out;
}

uint64_t FrameMap::RawSizeOfWireRange(const StreamRange& wire) const {
  return RawAvailable(wire.end) - RawAvailable(wire.begin);
}

Result<FrameMap> FrameMap::FromWire(std::span<const uint8_t> wire) {
  BKUP_ASSIGN_OR_RETURN(WireHeader header, ParseStreamHeader(wire));
  FrameMap map;
  map.wire_total_ = wire.size();
  uint64_t raw = 0;
  ByteReader r(wire.subspan(kContentStreamHeaderBytes));
  while (!r.exhausted()) {
    const uint64_t wire_begin = kContentStreamHeaderBytes + r.position();
    BKUP_ASSIGN_OR_RETURN(FrameHeader f, ReadFrameHeader(&r));
    BKUP_RETURN_IF_ERROR(r.Skip(f.payload_len));
    Frame frame;
    frame.raw_begin = raw;
    frame.wire_begin = wire_begin;
    frame.raw_len = f.raw_len;
    frame.wire_len =
        static_cast<uint32_t>(kContentFrameHeaderBytes) + f.payload_len;
    map.frames_.push_back(frame);
    raw += f.raw_len;
  }
  map.raw_total_ = raw;
  if (raw != header.raw_total) {
    return Corruption("content frame chain does not cover the raw stream");
  }
  return map;
}

// ---------------------------------------------------------- StagePipeline ---

std::vector<uint64_t> StagePipeline::ChunkBoundaries(
    std::span<const uint8_t> raw) const {
  std::vector<uint64_t> ends;
  if (raw.empty()) {
    return ends;
  }
  const uint64_t min_len = cfg_.min_chunk_bytes;
  const uint64_t max_len = cfg_.max_chunk_bytes;
  if (!cfg_.chunk) {
    // Fixed-size chunking fallback: avg-sized pieces.
    for (uint64_t pos = 0; pos < raw.size();) {
      pos = std::min<uint64_t>(pos + cfg_.avg_chunk_bytes, raw.size());
      ends.push_back(pos);
    }
    return ends;
  }
  const RollTable table = MakeRollTable(cfg_.seed);
  const uint64_t mask = cfg_.avg_chunk_bytes - 1;
  uint64_t start = 0;
  uint64_t h = 0;
  uint64_t pos = 0;
  while (pos < raw.size()) {
    const uint8_t in = raw[pos];
    h = RotL(h, 1) ^ table.t[in];
    if (pos - start >= kRollWindow) {
      // The byte entering kRollWindow iterations ago has been rotated once
      // per iteration since; cancel exactly that contribution so the hash
      // depends only on the trailing window (what makes an edit local).
      h ^= RotL(table.t[raw[pos - kRollWindow]],
                static_cast<int>(kRollWindow & 63));
    }
    ++pos;
    const uint64_t len = pos - start;
    if ((len >= min_len && (h & mask) == mask) || len >= max_len) {
      ends.push_back(pos);
      start = pos;
      h = 0;
    }
  }
  if (ends.empty() || ends.back() != raw.size()) {
    ends.push_back(raw.size());
  }
  return ends;
}

Result<EncodeResult> StagePipeline::Encode(
    std::span<const uint8_t> raw) const {
  BKUP_RETURN_IF_ERROR(cfg_.Validate());
  EncodeResult out;
  out.stats.raw_bytes = raw.size();
  out.map.raw_total_ = raw.size();
  PutStreamHeader(&out.wire, cfg_, raw.size());

  const bool store_backed = cfg_.compress || cfg_.dedup;
  const uint32_t ratio_milli = RatioMilli(cfg_.compress_ratio);
  uint64_t begin = 0;
  for (uint64_t end : ChunkBoundaries(raw)) {
    const std::span<const uint8_t> chunk = raw.subspan(begin, end - begin);
    FrameHeader f;
    f.raw_len = static_cast<uint32_t>(chunk.size());
    f.hash = ContentHash(chunk);
    f.crc = Crc32c(chunk);

    const ChunkIndex::Entry* hit =
        cfg_.dedup ? cfg_.index->Find(f.hash) : nullptr;
    // Never dedup on hash alone: the bytes must really match. A collision
    // (or a same-hash chunk stored with different bytes) costs a missed
    // dedup, never a wrong one.
    const bool dedup_hit =
        hit != nullptr && hit->bytes.size() == chunk.size() &&
        std::memcmp(hit->bytes.data(), chunk.data(), chunk.size()) == 0;

    const uint64_t wire_begin = out.wire.size();
    if (dedup_hit) {
      f.type = kFrameRef;
      f.payload_len = 0;
      PutFrameHeader(&out.wire, f);
      ++out.stats.dedup_hits;
    } else {
      f.type = kFrameLiteral;
      bool stored = false;
      if (store_backed) {
        if (cfg_.index->Insert(f.hash, chunk)) {
          out.stats.unique_bytes += chunk.size();
          stored = true;
        } else {
          // Same hash, different bytes (dedup off or the memcmp above
          // failed): the store slot is taken, so this chunk cannot be
          // reconstructed from it — fall back to a verbatim literal.
          const ChunkIndex::Entry* prev = cfg_.index->Find(f.hash);
          stored = prev != nullptr && prev->bytes.size() == chunk.size() &&
                   std::memcmp(prev->bytes.data(), chunk.data(),
                               chunk.size()) == 0;
        }
      }
      if (cfg_.compress && stored) {
        f.payload_len = static_cast<uint32_t>(std::max<uint64_t>(
            1, (chunk.size() * 1000 + ratio_milli - 1) / ratio_milli));
        PutFrameHeader(&out.wire, f);
        FillCompressed(&out.wire, f.hash, cfg_.seed, f.payload_len);
      } else {
        f.flags = kFlagVerbatim;
        f.payload_len = f.raw_len;
        PutFrameHeader(&out.wire, f);
        ByteWriter(&out.wire).PutBytes(chunk);
      }
    }
    FrameMap::Frame frame;
    frame.raw_begin = begin;
    frame.wire_begin = wire_begin;
    frame.raw_len = f.raw_len;
    frame.wire_len = static_cast<uint32_t>(out.wire.size() - wire_begin);
    out.map.frames_.push_back(frame);
    ++out.stats.chunks;
    begin = end;
  }
  out.map.wire_total_ = out.wire.size();
  out.stats.wire_bytes = out.wire.size();

  MetricsRegistry& metrics = MetricsRegistry::Default();
  metrics.GetCounter("content.chunks")->Increment(out.stats.chunks);
  metrics.GetCounter("content.dedup_hits")->Increment(out.stats.dedup_hits);
  metrics.GetCounter("content.raw_bytes")->Increment(out.stats.raw_bytes);
  metrics.GetCounter("content.wire_bytes")->Increment(out.stats.wire_bytes);
  metrics.GetCounter("content.unique_bytes")
      ->Increment(out.stats.unique_bytes);
  return out;
}

Result<std::vector<uint8_t>> StagePipeline::Decode(
    std::span<const uint8_t> wire, ContentStats* stats) const {
  BKUP_ASSIGN_OR_RETURN(WireHeader header, ParseStreamHeader(wire));
  const bool verify_verbatim = (header.flags & kStageCrc) != 0;
  ContentStats local;
  local.wire_bytes = wire.size();

  std::vector<uint8_t> raw;
  raw.reserve(header.raw_total);
  ByteReader r(wire.subspan(kContentStreamHeaderBytes));
  while (!r.exhausted()) {
    BKUP_ASSIGN_OR_RETURN(FrameHeader f, ReadFrameHeader(&r));
    BKUP_ASSIGN_OR_RETURN(std::span<const uint8_t> payload,
                          r.ReadSpan(f.payload_len));
    ++local.chunks;
    if (f.type == kFrameLiteral && (f.flags & kFlagVerbatim) != 0) {
      if (payload.size() != f.raw_len) {
        return Corruption("verbatim literal frame length mismatch");
      }
      if (verify_verbatim) {
        ++local.crc_checks;
        if (Crc32c(payload) != f.crc) {
          return Corruption("literal frame failed its CRC");
        }
      }
      raw.insert(raw.end(), payload.begin(), payload.end());
      continue;
    }
    // Ref frame or store-backed literal: reconstruct from the ChunkIndex,
    // verifying length and content hash/CRC — the dedup safety contract.
    if (cfg_.index == nullptr) {
      return FailedPrecondition(
          "decoding a store-backed content stream needs the backup's "
          "ChunkIndex");
    }
    if (f.type == kFrameRef) {
      ++local.dedup_hits;
    }
    const ChunkIndex::Entry* entry = cfg_.index->Find(f.hash);
    if (entry == nullptr) {
      return Corruption("chunk index is missing a referenced chunk");
    }
    ++local.crc_checks;
    if (entry->bytes.size() != f.raw_len || Crc32c(entry->bytes) != f.crc ||
        ContentHash(entry->bytes) != f.hash) {
      MetricsRegistry::Default()
          .GetCounter("content.corruptions_detected")
          ->Increment();
      return Corruption("chunk index entry failed verification");
    }
    raw.insert(raw.end(), entry->bytes.begin(), entry->bytes.end());
  }
  if (raw.size() != header.raw_total) {
    return Corruption("content stream truncated");
  }
  local.raw_bytes = raw.size();
  MetricsRegistry::Default()
      .GetCounter("content.crc_checks")
      ->Increment(local.crc_checks);
  if (stats != nullptr) {
    stats->Add(local);
  }
  return raw;
}

}  // namespace bkup

#include "src/block/tape.h"

#include <algorithm>
#include <cstring>

#include "src/obs/trace.h"

namespace bkup {

Status Tape::CorruptRange(uint64_t offset, uint64_t length) {
  if (offset >= bytes_.size()) {
    return InvalidArgument(label_ + ": corrupt range [" +
                           std::to_string(offset) + ", +" +
                           std::to_string(length) +
                           ") starts beyond recorded data");
  }
  // Clamp without forming offset+length (which could overflow).
  const uint64_t end = offset + std::min<uint64_t>(length,
                                                   bytes_.size() - offset);
  for (uint64_t i = offset; i < end; ++i) {
    bytes_[i] ^= 0x5A;
  }
  return Status::Ok();
}

TapeDrive::TapeDrive(SimEnvironment* env, std::string name, TapeTiming timing)
    : env_(env),
      name_(std::move(name)),
      timing_(timing),
      unit_(env, 1, name_ + ".unit"),
      metric_bytes_(MetricsRegistry::Default().GetCounter("tape.bytes",
                                                          {{"drive", name_}})),
      metric_repositions_(MetricsRegistry::Default().GetCounter(
          "tape.repositions", {{"drive", name_}})) {}

void TapeDrive::LoadMedia(Tape* tape) {
  tape_ = tape;
  position_ = 0;
  streaming_until_ = -1;
}

Task TapeDrive::TimedLoadMedia(Tape* tape) {
  co_await unit_.Acquire();
  co_await env_->Delay(timing_.load_time);
  LoadMedia(tape);
  unit_.Release();
}

void TapeDrive::UnloadMedia() {
  tape_ = nullptr;
  position_ = 0;
}

Task TapeDrive::TimedRewind() {
  co_await unit_.Acquire();
  co_await env_->Delay(timing_.rewind_time);
  Rewind();
  streaming_until_ = -1;
  unit_.Release();
}

Status TapeDrive::WriteData(std::span<const uint8_t> data) {
  if (tape_ == nullptr) {
    return FailedPrecondition(name_ + ": no media loaded");
  }
  if (position_ + data.size() > tape_->capacity()) {
    return NoSpace(name_ + ": end of tape");
  }
  auto& bytes = tape_->mutable_bytes();
  // Serpentine media: a write invalidates everything past it.
  bytes.resize(position_);
  bytes.insert(bytes.end(), data.begin(), data.end());
  position_ += data.size();
  return Status::Ok();
}

Status TapeDrive::ReadData(std::span<uint8_t> out) {
  if (tape_ == nullptr) {
    return FailedPrecondition(name_ + ": no media loaded");
  }
  if (position_ + out.size() > tape_->size()) {
    return Corruption(name_ + ": read past end of recorded data");
  }
  std::memcpy(out.data(), tape_->contents().data() + position_, out.size());
  position_ += out.size();
  return Status::Ok();
}

Status TapeDrive::SeekTo(uint64_t offset) {
  if (tape_ == nullptr) {
    return FailedPrecondition(name_ + ": no media loaded");
  }
  if (offset > tape_->size()) {
    return InvalidArgument(name_ + ": seek past end of data");
  }
  position_ = offset;
  return Status::Ok();
}

SimDuration TapeDrive::TransferTime(uint64_t nbytes) const {
  const double seconds =
      static_cast<double>(nbytes) / (timing_.stream_mb_per_s * 1e6);
  return SecondsToSim(seconds);
}

SimDuration TapeDrive::RepositionPenalty() {
  if (streaming_until_ < 0 ||
      env_->now() <= streaming_until_ + timing_.stream_tolerance) {
    return 0;
  }
  ++repositions_;
  metric_repositions_->Increment();
  // Shoe-shining is the tape-side symptom of a starved dump; mark each one
  // on the drive's track so stalls line up with the job spans above them.
  TRACE_INSTANT(env_, name_, "reposition");
  return timing_.reposition_penalty;
}

Task TapeDrive::TimedWrite(std::span<const uint8_t> data, Status* status) {
  co_await unit_.Acquire();
  const SimDuration t = TransferTime(data.size()) + RepositionPenalty();
  co_await env_->Delay(t);
  // A fault (e.g. a media defect caught by the drive's read-after-write
  // verify) rejects the transfer before any byte lands.
  Status st = Status::Ok();
  if (fault_hook_ != nullptr) {
    st = fault_hook_->OnTapeWrite(this, position_, data.size());
  }
  *status = st.ok() ? WriteData(data) : st;
  if (status->ok()) {
    bytes_transferred_ += data.size();
    metric_bytes_->Increment(data.size());
  }
  streaming_until_ = env_->now();
  unit_.Release();
}

Task TapeDrive::TimedRead(std::span<uint8_t> out, Status* status) {
  co_await unit_.Acquire();
  const SimDuration t = TransferTime(out.size()) + RepositionPenalty();
  co_await env_->Delay(t);
  Status st = Status::Ok();
  if (fault_hook_ != nullptr) {
    st = fault_hook_->OnTapeRead(this, position_, out.size());
  }
  *status = st.ok() ? ReadData(out) : st;
  if (status->ok()) {
    bytes_transferred_ += out.size();
    metric_bytes_->Increment(out.size());
  }
  streaming_until_ = env_->now();
  unit_.Release();
}

Task TapeDrive::TimedSeekTo(uint64_t offset, Status* status) {
  co_await unit_.Acquire();
  if (offset != position_) {
    // Any jump breaks streaming: one reposition, always.
    ++repositions_;
    metric_repositions_->Increment();
    TRACE_INSTANT(env_, name_, "reposition");
    co_await env_->Delay(timing_.reposition_penalty);
  }
  *status = SeekTo(offset);
  streaming_until_ = env_->now();
  unit_.Release();
}

}  // namespace bkup

// Fundamental block types shared by the device, RAID, and file system layers.
//
// The file system uses 4 KB blocks with no fragments (WAFL's layout); every
// device in the repository moves data in whole 4 KB blocks.
#ifndef BKUP_BLOCK_BLOCK_H_
#define BKUP_BLOCK_BLOCK_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <span>

namespace bkup {

inline constexpr uint32_t kBlockSize = 4096;

// Volume block number: an index into a Volume's flat data-block space.
using Vbn = uint64_t;
// Disk block number: an index into one disk's block space.
using Dbn = uint64_t;

inline constexpr Vbn kInvalidVbn = ~0ull;

// A 4 KB block of real bytes.
struct Block {
  std::array<uint8_t, kBlockSize> data{};

  std::span<uint8_t> bytes() { return data; }
  std::span<const uint8_t> bytes() const { return data; }

  void Zero() { data.fill(0); }
  bool IsZero() const {
    for (uint8_t b : data) {
      if (b != 0) {
        return false;
      }
    }
    return true;
  }

  void CopyFrom(std::span<const uint8_t> src, size_t offset = 0) {
    std::memcpy(data.data() + offset, src.data(),
                std::min(src.size(), static_cast<size_t>(kBlockSize) - offset));
  }

  void XorWith(const Block& other) {
    // Word-at-a-time XOR; this is the RAID-4 parity inner loop.
    auto* dst = reinterpret_cast<uint64_t*>(data.data());
    const auto* src = reinterpret_cast<const uint64_t*>(other.data.data());
    for (size_t i = 0; i < kBlockSize / sizeof(uint64_t); ++i) {
      dst[i] ^= src[i];
    }
  }

  bool operator==(const Block& other) const { return data == other.data; }
};

}  // namespace bkup

#endif  // BKUP_BLOCK_BLOCK_H_

#include "src/block/disk.h"

#include <cmath>
#include <cstdlib>

namespace bkup {

Disk::Disk(SimEnvironment* env, std::string name, uint64_t num_blocks,
           DiskTiming timing)
    : env_(env),
      name_(std::move(name)),
      num_blocks_(num_blocks),
      timing_(timing),
      arm_(env, 1, name_ + ".arm"),
      metric_access_us_(MetricsRegistry::Default().GetHistogram(
          "disk.access_us", HistogramOptions::Log2(), {{"device", name_}})),
      metric_bytes_(MetricsRegistry::Default().GetCounter("disk.bytes",
                                                          {{"device", name_}})),
      metric_errors_(MetricsRegistry::Default().GetCounter(
          "disk.errors", {{"device", name_}})) {}

Status Disk::ReadData(Dbn dbn, Block* out) const {
  if (failed_) {
    return IoError(name_ + ": drive failed");
  }
  if (dbn >= num_blocks_) {
    return InvalidArgument(name_ + ": read past end of disk");
  }
  auto it = store_.find(dbn);
  if (it == store_.end()) {
    out->Zero();
  } else {
    *out = *it->second;
  }
  return Status::Ok();
}

Status Disk::WriteData(Dbn dbn, const Block& block) {
  if (failed_) {
    return IoError(name_ + ": drive failed");
  }
  if (dbn >= num_blocks_) {
    return InvalidArgument(name_ + ": write past end of disk");
  }
  auto it = store_.find(dbn);
  if (it == store_.end()) {
    store_.emplace(dbn, std::make_unique<Block>(block));
  } else {
    *it->second = block;
  }
  return Status::Ok();
}

void Disk::ReplaceWithBlank() {
  store_.clear();
  failed_ = false;
  head_ = 0;
}

SimDuration Disk::AccessTime(Dbn dbn, uint64_t count) const {
  double ms = 0.0;
  const uint64_t distance =
      dbn >= head_ ? dbn - head_ : head_ - dbn;
  if (distance < 16) {
    // Sequential or near-sequential: the drive's read-ahead and track
    // buffer absorb small gaps.
  } else if (distance <= timing_.near_threshold_blocks) {
    ms += timing_.track_seek_ms;
  } else {
    // Seek time grows sublinearly with distance (arm acceleration); scale
    // the average seek by a sqrt profile normalized to a half-disk stroke.
    const double frac =
        static_cast<double>(distance) / static_cast<double>(num_blocks_);
    ms += timing_.track_seek_ms +
          (timing_.avg_seek_ms - timing_.track_seek_ms) *
              std::sqrt(std::min(1.0, frac * 2.0));
    ms += timing_.rotational_ms;
  }
  const double bytes = static_cast<double>(count) * kBlockSize;
  ms += bytes / (timing_.transfer_mb_per_s * 1e6) * 1e3;
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

Task Disk::TimedAccess(Dbn dbn, uint64_t count, Status* status,
                       int priority) {
  co_await arm_.Acquire(1, priority);
  // Compute the access time under the arm so queued requests pay the seek
  // from wherever the previous request left the head.
  const SimDuration t = AccessTime(dbn, count);
  co_await env_->Delay(t);
  Status st = Status::Ok();
  if (fault_hook_ != nullptr) {
    st = fault_hook_->OnDiskAccess(this, count);
  }
  // Re-check after the delay: a Fail() that landed while this access was in
  // flight surfaces to the waiting job instead of silently completing.
  if (st.ok() && failed_) {
    st = IoError(name_ + ": drive failed");
  }
  metric_access_us_->Observe(static_cast<double>(t));
  if (st.ok()) {
    head_ = dbn + count;
    bytes_transferred_ += count * kBlockSize;
    metric_bytes_->Increment(count * kBlockSize);
  } else {
    metric_errors_->Increment();
  }
  if (status != nullptr) {
    *status = st;
  }
  arm_.Release();
}

}  // namespace bkup

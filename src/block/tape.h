// Simulated tape media and drives.
//
// A `Tape` is an append-oriented byte stream of real bytes (what dump writes
// is what restore parses). A `TapeDrive` gives it DLT-7000-like behaviour:
// a fixed streaming rate, and a repositioning penalty whenever the host
// fails to keep the drive streaming ("shoe-shining") — which is exactly the
// effect that lets a starved logical dump fall behind a streaming physical
// dump on the same hardware.
#ifndef BKUP_BLOCK_TAPE_H_
#define BKUP_BLOCK_TAPE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/block/fault_hook.h"
#include "src/obs/metrics.h"
#include "src/sim/environment.h"
#include "src/sim/resource.h"
#include "src/sim/task.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace bkup {

// Removable media: a named byte stream with a capacity.
class Tape {
 public:
  Tape(std::string label, uint64_t capacity_bytes)
      : label_(std::move(label)), capacity_(capacity_bytes) {}

  const std::string& label() const { return label_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t size() const { return bytes_.size(); }

  std::span<const uint8_t> contents() const { return bytes_; }
  std::vector<uint8_t>& mutable_bytes() { return bytes_; }

  // Failure injection: flips bits in [offset, offset+length) to simulate a
  // media defect. Restores must detect this via record checksums. Rejects a
  // range starting beyond the recorded data with InvalidArgument and clamps
  // one that merely runs off its end (the defect extends into blank media).
  Status CorruptRange(uint64_t offset, uint64_t length);

  // Wipes the media (a fresh tape from the stacker).
  void Erase() { bytes_.clear(); }

 private:
  std::string label_;
  uint64_t capacity_;
  std::vector<uint8_t> bytes_;
};

struct TapeTiming {
  // Effective streaming rate. The DLT-7000's native rate is 5 MB/s; with the
  // drive's hardware compression the paper's data streams at ~9 MB/s, which
  // is what its Tables 2-5 reflect, so that is our default.
  double stream_mb_per_s = 9.0;
  // If the host leaves the drive idle longer than this, the drive falls out
  // of streaming and must reposition before the next transfer.
  SimDuration stream_tolerance = 20 * kMillisecond;
  SimDuration reposition_penalty = 150 * kMillisecond;
  SimDuration rewind_time = 90 * kSecond;
  SimDuration load_time = 40 * kSecond;
};

class TapeDrive {
 public:
  TapeDrive(SimEnvironment* env, std::string name,
            TapeTiming timing = TapeTiming());

  const std::string& name() const { return name_; }
  const TapeTiming& timing() const { return timing_; }

  // ------------------------------------------------------------ media ---
  bool loaded() const { return tape_ != nullptr; }
  Tape* tape() { return tape_; }
  void LoadMedia(Tape* tape);     // instantaneous (tests)
  Task TimedLoadMedia(Tape* tape);  // pays load_time
  void UnloadMedia();

  // Byte position of the head from beginning-of-tape.
  uint64_t position() const { return position_; }
  void Rewind() { position_ = 0; }
  Task TimedRewind();

  // ------------------------------------------------------------- data ---

  // Appends/overwrites at the current position and advances. Writing in the
  // middle of a tape invalidates (truncates) everything after it, as on real
  // serpentine media.
  Status WriteData(std::span<const uint8_t> data);

  // Reads exactly `out.size()` bytes at the position; fails with Corruption
  // if the tape ends first.
  Status ReadData(std::span<uint8_t> out);

  Status SeekTo(uint64_t offset);

  // ------------------------------------------------------------ timing ---

  // Awaitable write: acquires the drive, charges streaming time (plus a
  // reposition penalty if the drive fell out of streaming), moves the data.
  Task TimedWrite(std::span<const uint8_t> data, Status* status);
  Task TimedRead(std::span<uint8_t> out, Status* status);

  // Awaitable seek: repositions the head to an absolute byte offset, paying
  // the reposition penalty when the target is off the streaming path. The
  // ranged reads of catalog-driven restores are seek/read ladders.
  Task TimedSeekTo(uint64_t offset, Status* status);

  Resource& unit() { return unit_; }
  const Resource& unit() const { return unit_; }
  uint64_t bytes_transferred() const { return bytes_transferred_; }
  uint64_t repositions() const { return repositions_; }

  // Arms the drive against a fault engine; TimedWrite/TimedRead consult the
  // hook before moving data. Null disarms.
  void set_fault_hook(DeviceFaultHook* hook) { fault_hook_ = hook; }
  DeviceFaultHook* fault_hook() const { return fault_hook_; }

 private:
  SimDuration TransferTime(uint64_t nbytes) const;
  // Charges a reposition if the drive fell out of streaming; returns the
  // penalty (0 when still streaming) and records the metric + trace instant.
  SimDuration RepositionPenalty();

  SimEnvironment* env_;
  std::string name_;
  TapeTiming timing_;
  Resource unit_;
  Tape* tape_ = nullptr;
  uint64_t position_ = 0;
  SimTime streaming_until_ = -1;  // sim time the last transfer finished
  uint64_t bytes_transferred_ = 0;
  uint64_t repositions_ = 0;
  DeviceFaultHook* fault_hook_ = nullptr;
  // Metric handles resolved once at construction (see Disk).
  Counter* metric_bytes_;
  Counter* metric_repositions_;
};

}  // namespace bkup

#endif  // BKUP_BLOCK_TAPE_H_

// I/O traces: the bridge between the functional backup engines and the
// discrete-event performance simulation.
//
// Dump and restore run *functionally* (real bytes, instantaneous), emitting
// a fine-grained trace of what they touched: volume blocks read, blocks
// written, CPU work by class, and how many stream bytes each step produced
// or consumed. The backup jobs (src/backup) then replay these traces through
// the simulated filer — disks, tapes, CPU — as coroutine pipelines, which is
// where elapsed time, utilization, and bottleneck behaviour come from.
#ifndef BKUP_BLOCK_IO_TRACE_H_
#define BKUP_BLOCK_IO_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/block/block.h"

namespace bkup {

// Classes of CPU work, priced by the FilerModel (src/backup/filer_model.h).
enum class CpuCost : uint8_t {
  kMapInode = 0,        // phase I/II: examine one inode
  kDirEntry,            // process one directory entry
  kLogicalBlock,        // move one 4 KB block through the file system path
  kHeaderFormat,        // format one 1 KB dump record header
  kPhysicalBlock,       // move one 4 KB block through the raw RAID path
  kRestoreCreate,       // create one file/directory through the file system
  kRestoreLogicalBlock, // write one 4 KB block through the file system
  kRestorePhysicalBlock,// write one 4 KB block through raw RAID
  kNvramByte,           // copy one byte into the NVRAM log
  kPathLookup,          // one namei component resolution (portable restore)
  kCount,
};
inline constexpr int kNumCpuCosts = static_cast<int>(CpuCost::kCount);

struct CpuCharge {
  CpuCost kind;
  uint64_t count;
};

// Phases, matching the stage rows of the paper's Table 3.
enum class JobPhase : uint8_t {
  kCreateSnapshot = 0,
  kMap,            // "Mapping files and directories"
  kDumpDirs,       // "Dumping directories"
  kDumpFiles,      // "Dumping files"
  kDeleteSnapshot,
  kCreateFiles,    // restore: "Creating files"
  kFillData,       // restore: "Filling in data"
  kDumpBlocks,     // physical: "Dumping blocks"
  kRestoreBlocks,  // physical: "Restoring blocks"
  kCount,
};
const char* JobPhaseName(JobPhase phase);

// One step of a dump/restore engine.
struct IoEvent {
  JobPhase phase = JobPhase::kMap;
  // Stream offset after this event: the replay sends (or requires) bytes up
  // to this offset. Monotonically non-decreasing across a trace.
  uint64_t stream_end = 0;
  // Volume blocks read by this step (dump side; in access order).
  std::vector<Vbn> disk_reads;
  // Volume blocks written by this step (restore side; write-anywhere makes
  // them near-sequential, so only the count matters for timing).
  uint64_t blocks_written = 0;
  // Exact write locations, when the engine knows them (image restore writes
  // each block back to its recorded address; logical restore does not know
  // where the allocator will land and uses blocks_written instead).
  std::vector<Vbn> disk_writes;
  // NVRAM bytes logged by this step (logical restore pays this; physical
  // restore bypasses NVRAM entirely).
  uint64_t nvram_bytes = 0;
  std::vector<CpuCharge> cpu;
};

struct IoTrace {
  std::vector<IoEvent> events;

  uint64_t TotalStreamBytes() const {
    return events.empty() ? 0 : events.back().stream_end;
  }
  uint64_t TotalDiskReads() const {
    uint64_t n = 0;
    for (const IoEvent& e : events) {
      n += e.disk_reads.size();
    }
    return n;
  }
  uint64_t TotalBlocksWritten() const {
    uint64_t n = 0;
    for (const IoEvent& e : events) {
      n += e.blocks_written;
    }
    return n;
  }
};

}  // namespace bkup

#endif  // BKUP_BLOCK_IO_TRACE_H_

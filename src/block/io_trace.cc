#include "src/block/io_trace.h"

namespace bkup {

const char* JobPhaseName(JobPhase phase) {
  switch (phase) {
    case JobPhase::kCreateSnapshot:
      return "Creating snapshot";
    case JobPhase::kMap:
      return "Mapping files and directories";
    case JobPhase::kDumpDirs:
      return "Dumping directories";
    case JobPhase::kDumpFiles:
      return "Dumping files";
    case JobPhase::kDeleteSnapshot:
      return "Deleting snapshot";
    case JobPhase::kCreateFiles:
      return "Creating files";
    case JobPhase::kFillData:
      return "Filling in data";
    case JobPhase::kDumpBlocks:
      return "Dumping blocks";
    case JobPhase::kRestoreBlocks:
      return "Restoring blocks";
    case JobPhase::kCount:
      break;
  }
  return "?";
}

}  // namespace bkup

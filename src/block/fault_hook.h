// Device-level fault injection hook.
//
// Simulated devices consult an optional `DeviceFaultHook` on every *timed*
// access (the paths backup jobs pay for). An implementation — the fault
// engine in src/faults — decides from its armed fault plan and the
// simulation clock whether the access succeeds, fails transiently, or kills
// the device outright. Keeping the interface here (and the engine in
// src/faults) lets src/block stay free of any dependency on the fault
// subsystem while every device remains injectable.
#ifndef BKUP_BLOCK_FAULT_HOOK_H_
#define BKUP_BLOCK_FAULT_HOOK_H_

#include <cstdint>

#include "src/util/status.h"

namespace bkup {

class Disk;
class TapeDrive;

class DeviceFaultHook {
 public:
  virtual ~DeviceFaultHook() = default;

  // Consulted under the disk arm after the access time has been paid,
  // mirroring a drive that errors out at the end of a transfer. A permanent
  // fault implementation calls `disk->Fail()` before returning the error.
  virtual Status OnDiskAccess(Disk* disk, uint64_t nblocks) = 0;

  // Consulted before the drive commits `nbytes` at byte `position` of the
  // loaded media. An error models the drive's read-after-write verify
  // detecting a media defect (the data never lands).
  virtual Status OnTapeWrite(TapeDrive* drive, uint64_t position,
                             uint64_t nbytes) = 0;

  // Consulted before the drive returns `nbytes` from byte `position`.
  virtual Status OnTapeRead(TapeDrive* drive, uint64_t position,
                            uint64_t nbytes) = 0;
};

}  // namespace bkup

#endif  // BKUP_BLOCK_FAULT_HOOK_H_

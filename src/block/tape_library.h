// A tape stacker: a pool of media plus the drive it feeds. Multi-tape dumps
// span media through the library (the paper's Breece-Hill stackers).
#ifndef BKUP_BLOCK_TAPE_LIBRARY_H_
#define BKUP_BLOCK_TAPE_LIBRARY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/block/tape.h"
#include "src/util/status.h"

namespace bkup {

class TapeLibrary {
 public:
  TapeLibrary(std::string name, uint64_t tape_capacity, size_t num_slots);

  const std::string& name() const { return name_; }
  size_t num_slots() const { return slots_.size(); }

  // Slot access; tapes keep their identity while moving through drives.
  Tape* TapeInSlot(size_t slot);
  Result<size_t> SlotOfLabel(const std::string& label) const;

  // Swaps the drive's current media (if any) back and loads `slot`.
  // Instantaneous variant for tests; jobs use the drive's timed load.
  Status LoadSlot(TapeDrive* drive, size_t slot);

  // Appends a fresh blank tape and returns its slot.
  size_t AddBlankTape(const std::string& label);

 private:
  std::string name_;
  uint64_t tape_capacity_;
  std::vector<std::unique_ptr<Tape>> slots_;
};

}  // namespace bkup

#endif  // BKUP_BLOCK_TAPE_LIBRARY_H_

// A simulated disk drive: a sparse in-memory block store plus a positional
// timing model (seek + rotation + transfer) and a single-server "arm"
// resource for the discrete-event simulation.
//
// Data operations (`ReadData`/`WriteData`) are functional and instantaneous;
// simulated time is charged by jobs through `TimedAccess`, which acquires the
// arm, advances the clock by `AccessTime`, and moves the head. Splitting data
// from timing lets the file system run functionally while the backup jobs —
// where all of the paper's measurements live — pay for every device touch.
#ifndef BKUP_BLOCK_DISK_H_
#define BKUP_BLOCK_DISK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/block/block.h"
#include "src/block/fault_hook.h"
#include "src/obs/metrics.h"
#include "src/sim/environment.h"
#include "src/sim/resource.h"
#include "src/sim/task.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace bkup {

// Timing parameters. Defaults approximate the 9 GB 7200 rpm Fibre Channel
// drives of the paper's F630 (late-90s Seagate Barracuda class).
struct DiskTiming {
  double avg_seek_ms = 8.0;          // average random seek
  double track_seek_ms = 1.0;        // settling for a short (nearby) seek
  double rotational_ms = 4.17;       // half revolution at 7200 rpm
  double transfer_mb_per_s = 10.0;   // sustained media rate
  // Accesses within this many blocks of the head count as "near" and pay
  // only the track seek; beyond it, a fraction of the full average seek that
  // grows with distance.
  uint64_t near_threshold_blocks = 256;
};

class Disk {
 public:
  Disk(SimEnvironment* env, std::string name, uint64_t num_blocks,
       DiskTiming timing = DiskTiming());

  const std::string& name() const { return name_; }
  uint64_t num_blocks() const { return num_blocks_; }
  const DiskTiming& timing() const { return timing_; }

  // ------------------------------------------------------------- data ---

  // Reads block `dbn` into `out`; unwritten blocks read as zeros.
  Status ReadData(Dbn dbn, Block* out) const;
  Status WriteData(Dbn dbn, const Block& block);

  // --------------------------------------------------------- failures ---

  // A failed disk errors all data access until repaired; used by the RAID
  // reconstruction tests. An access already in flight also fails: TimedAccess
  // re-checks the flag after paying the access time.
  void Fail() { failed_ = true; }
  // Replaces the drive with a fresh (empty) one, as a field engineer would.
  void ReplaceWithBlank();
  bool failed() const { return failed_; }

  // Arms the drive against a fault engine; every TimedAccess consults the
  // hook. Null disarms.
  void set_fault_hook(DeviceFaultHook* hook) { fault_hook_ = hook; }
  DeviceFaultHook* fault_hook() const { return fault_hook_; }

  // ----------------------------------------------------------- timing ---

  // Duration of an access of `count` contiguous blocks starting at `dbn`,
  // given the current head position. Pure (does not move the head).
  SimDuration AccessTime(Dbn dbn, uint64_t count) const;

  // Awaitable process: acquire the arm, pay AccessTime, move the head.
  // Does not move data; pair it with ReadData/WriteData. If the drive is
  // failed (including a Fail() that lands while the access is in flight) or
  // an armed fault hook rejects the access, `*status` receives kIoError and
  // the head/byte counters are left untouched. `priority` is the arm's
  // scheduling class: background (1) accesses queue behind every foreground
  // (0) request but cannot be preempted once the arm is held.
  Task TimedAccess(Dbn dbn, uint64_t count, Status* status = nullptr,
                   int priority = kPriorityForeground);

  // The arm as a resource, for utilization reporting.
  Resource& arm() { return arm_; }
  const Resource& arm() const { return arm_; }

  Dbn head_position() const { return head_; }

  // Total bytes moved through TimedAccess, for MB/s reporting.
  uint64_t bytes_transferred() const { return bytes_transferred_; }

 private:
  SimEnvironment* env_;
  std::string name_;
  uint64_t num_blocks_;
  DiskTiming timing_;
  Resource arm_;
  Dbn head_ = 0;
  bool failed_ = false;
  DeviceFaultHook* fault_hook_ = nullptr;
  uint64_t bytes_transferred_ = 0;
  // Metric handles resolved once at construction; TimedAccess bumps them
  // directly so the always-on cost is an add, not a map probe.
  Histogram* metric_access_us_;
  Counter* metric_bytes_;
  Counter* metric_errors_;
  std::unordered_map<Dbn, std::unique_ptr<Block>> store_;
};

}  // namespace bkup

#endif  // BKUP_BLOCK_DISK_H_

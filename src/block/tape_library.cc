#include "src/block/tape_library.h"

namespace bkup {

TapeLibrary::TapeLibrary(std::string name, uint64_t tape_capacity,
                         size_t num_slots)
    : name_(std::move(name)), tape_capacity_(tape_capacity) {
  slots_.reserve(num_slots);
  for (size_t i = 0; i < num_slots; ++i) {
    slots_.push_back(
        std::make_unique<Tape>(name_ + "." + std::to_string(i), tape_capacity));
  }
}

Tape* TapeLibrary::TapeInSlot(size_t slot) {
  if (slot >= slots_.size()) {
    return nullptr;
  }
  return slots_[slot].get();
}

Result<size_t> TapeLibrary::SlotOfLabel(const std::string& label) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i]->label() == label) {
      return i;
    }
  }
  return NotFound("no tape labelled '" + label + "'");
}

Status TapeLibrary::LoadSlot(TapeDrive* drive, size_t slot) {
  if (slot >= slots_.size()) {
    return InvalidArgument(name_ + ": no such slot");
  }
  if (drive->loaded()) {
    drive->UnloadMedia();
  }
  drive->LoadMedia(slots_[slot].get());
  return Status::Ok();
}

size_t TapeLibrary::AddBlankTape(const std::string& label) {
  slots_.push_back(std::make_unique<Tape>(label, tape_capacity_));
  return slots_.size() - 1;
}

}  // namespace bkup

// Volume mirroring built on incremental image dump/restore — the §6 future
// direction: "The image dump/restore technology also has potential
// application to remote mirroring and replication of volumes."
//
// The mirror keeps a chain of transfer snapshots on the source. Each Sync():
//   1. takes a new snapshot mirror.N on the source,
//   2. image-dumps the delta since mirror.N-1 (or a full image the first
//      time),
//   3. applies the stream to the mirror volume through raw RAID writes,
//   4. drops the previous transfer snapshot.
// The mirror volume is mountable read-only at any time and is bit-identical
// to the source as of the last transfer snapshot.
#ifndef BKUP_IMAGE_MIRROR_H_
#define BKUP_IMAGE_MIRROR_H_

#include <string>

#include "src/fs/filesystem.h"
#include "src/image/image_dump.h"
#include "src/raid/volume.h"
#include "src/util/status.h"

namespace bkup {

class VolumeMirror {
 public:
  // `source_fs` must live on `source_volume`; `mirror_volume` must have the
  // same geometry (a physical-restore requirement).
  VolumeMirror(Filesystem* source_fs, Volume* mirror_volume)
      : source_(source_fs), mirror_(mirror_volume) {}

  // Performs one transfer cycle; the first call ships a full image. Returns
  // the bytes transferred.
  Result<uint64_t> Sync();

  // Number of completed transfers.
  uint64_t syncs_completed() const { return syncs_; }
  // The snapshot name the mirror is currently consistent with ("" before
  // the first sync).
  const std::string& last_transfer_snapshot() const { return last_snap_; }

 private:
  Filesystem* source_;
  Volume* mirror_;
  uint64_t syncs_ = 0;
  std::string last_snap_;
};

}  // namespace bkup

#endif  // BKUP_IMAGE_MIRROR_H_

#include "src/image/image_format.h"

#include "src/util/checksum.h"
#include "src/util/serdes.h"

namespace bkup {

namespace {

void SealBlock(std::vector<uint8_t>* payload, Block* out) {
  out->Zero();
  out->CopyFrom(*payload);
  const uint32_t crc = Crc32c(std::span(out->data).first(kBlockSize - 4));
  out->data[kBlockSize - 4] = static_cast<uint8_t>(crc);
  out->data[kBlockSize - 3] = static_cast<uint8_t>(crc >> 8);
  out->data[kBlockSize - 2] = static_cast<uint8_t>(crc >> 16);
  out->data[kBlockSize - 1] = static_cast<uint8_t>(crc >> 24);
}

Status CheckBlockCrc(const Block& block) {
  const uint32_t stored =
      static_cast<uint32_t>(block.data[kBlockSize - 4]) |
      static_cast<uint32_t>(block.data[kBlockSize - 3]) << 8 |
      static_cast<uint32_t>(block.data[kBlockSize - 2]) << 16 |
      static_cast<uint32_t>(block.data[kBlockSize - 1]) << 24;
  if (Crc32c(std::span(block.data).first(kBlockSize - 4)) != stored) {
    return Corruption("image stream block checksum mismatch");
  }
  return Status::Ok();
}

}  // namespace

Result<Block> ImageHeader::Serialize() const {
  std::vector<uint8_t> bytes;
  ByteWriter w(&bytes);
  w.PutU32(kImageMagic);
  w.PutU32(kImageFormatVersion);
  w.PutString(volume_name);
  w.PutU64(volume_blocks);
  w.PutU64(generation);
  w.PutI64(dump_time);
  w.PutU8(incremental ? 1 : 0);
  w.PutString(base_snapshot);
  w.PutU64(base_generation);
  w.PutString(snapshot_name);
  w.PutU64(block_count);
  w.PutU32(part_index);
  w.PutU32(part_count);
  if (bytes.size() + 4 > kBlockSize) {
    return InvalidArgument("image header too large");
  }
  Block out;
  SealBlock(&bytes, &out);
  return out;
}

Result<ImageHeader> ImageHeader::Parse(const Block& block) {
  BKUP_RETURN_IF_ERROR(CheckBlockCrc(block));
  ByteReader r(block.data);
  ImageHeader h;
  BKUP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kImageMagic) {
    return Corruption("image header bad magic");
  }
  BKUP_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kImageFormatVersion) {
    return Unsupported("image format version mismatch");
  }
  BKUP_ASSIGN_OR_RETURN(h.volume_name, r.ReadString());
  BKUP_ASSIGN_OR_RETURN(h.volume_blocks, r.ReadU64());
  BKUP_ASSIGN_OR_RETURN(h.generation, r.ReadU64());
  BKUP_ASSIGN_OR_RETURN(h.dump_time, r.ReadI64());
  BKUP_ASSIGN_OR_RETURN(uint8_t incr, r.ReadU8());
  h.incremental = incr != 0;
  BKUP_ASSIGN_OR_RETURN(h.base_snapshot, r.ReadString());
  BKUP_ASSIGN_OR_RETURN(h.base_generation, r.ReadU64());
  BKUP_ASSIGN_OR_RETURN(h.snapshot_name, r.ReadString());
  BKUP_ASSIGN_OR_RETURN(h.block_count, r.ReadU64());
  BKUP_ASSIGN_OR_RETURN(h.part_index, r.ReadU32());
  BKUP_ASSIGN_OR_RETURN(h.part_count, r.ReadU32());
  if (h.part_count == 0 || h.part_index >= h.part_count) {
    return Corruption("image header bad part numbering");
  }
  return h;
}

void ImageExtent::EncodeTo(std::vector<uint8_t>* out) const {
  const size_t start_size = out->size();
  ByteWriter w(out);
  w.PutU32(kImageMagic ^ 0xFFFFFFFFu);  // extent marker
  w.PutU64(start);
  w.PutU32(count);
  w.PutU32(data_crc);
  // CRC over the fields so a damaged extent header is detectable.
  const uint32_t crc = Crc32c(
      std::span(*out).subspan(start_size, out->size() - start_size));
  w.PutU32(crc);
  while (out->size() - start_size < kEncodedSize) {
    out->push_back(0);
  }
}

Result<ImageExtent> ImageExtent::Decode(std::span<const uint8_t> bytes) {
  if (bytes.size() < kEncodedSize) {
    return Corruption("image extent truncated");
  }
  ByteReader r(bytes.first(kEncodedSize));
  ImageExtent e;
  BKUP_ASSIGN_OR_RETURN(uint32_t marker, r.ReadU32());
  if (marker != (kImageMagic ^ 0xFFFFFFFFu)) {
    return Corruption("image extent bad marker");
  }
  BKUP_ASSIGN_OR_RETURN(e.start, r.ReadU64());
  BKUP_ASSIGN_OR_RETURN(e.count, r.ReadU32());
  BKUP_ASSIGN_OR_RETURN(e.data_crc, r.ReadU32());
  const uint32_t computed = Crc32c(bytes.first(20));
  BKUP_ASSIGN_OR_RETURN(uint32_t stored, r.ReadU32());
  if (computed != stored) {
    return Corruption("image extent checksum mismatch");
  }
  return e;
}

Result<std::vector<uint8_t>> ImageTrailer::Serialize() const {
  std::vector<uint8_t> marker_bytes;
  ByteWriter w(&marker_bytes);
  w.PutU32(kImageMagic);
  w.PutU32(0x7EA11E12);  // trailer tag
  w.PutU64(block_count);
  Block marker;
  SealBlock(&marker_bytes, &marker);

  std::vector<uint8_t> out;
  out.reserve(kEncodedSize);
  out.insert(out.end(), marker.data.begin(), marker.data.end());
  out.insert(out.end(), fsinfo.data.begin(), fsinfo.data.end());
  return out;
}

Result<ImageTrailer> ImageTrailer::Parse(std::span<const uint8_t> bytes) {
  if (bytes.size() < kEncodedSize) {
    return Corruption("image trailer truncated");
  }
  Block marker;
  marker.CopyFrom(bytes.first(kBlockSize));
  BKUP_RETURN_IF_ERROR(CheckBlockCrc(marker));
  ByteReader r(marker.data);
  ImageTrailer t;
  BKUP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  BKUP_ASSIGN_OR_RETURN(uint32_t tag, r.ReadU32());
  if (magic != kImageMagic || tag != 0x7EA11E12) {
    return Corruption("image trailer bad marker");
  }
  BKUP_ASSIGN_OR_RETURN(t.block_count, r.ReadU64());
  t.fsinfo.CopyFrom(bytes.subspan(kBlockSize, kBlockSize));
  return t;
}

}  // namespace bkup

// The image (physical) dump stream format.
//
// A physical dump is "the movement of all data from one raw device to
// another", refined as in §4 of the paper: the block map is interpreted just
// enough to know which blocks are in use, each block's address is recorded
// so restore can put the data back where it belongs, and nothing else about
// the file system is interpreted. The stream is:
//
//   [header block][extent: (start,count) + raw blocks]...[trailer block]
//
// The trailer carries the volume's fsinfo explicitly; restore writes it
// last, so a restored volume becomes valid atomically. Runs of consecutive
// vbns coalesce into extents — the reason physical dump runs at device
// speed is precisely that this stream is generated in ascending block
// order.
#ifndef BKUP_IMAGE_IMAGE_FORMAT_H_
#define BKUP_IMAGE_IMAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/block/block.h"
#include "src/util/status.h"

namespace bkup {

inline constexpr uint32_t kImageMagic = 0x1BA6E999;  // image stream, 1999
inline constexpr uint32_t kImageFormatVersion = 1;

struct ImageHeader {
  std::string volume_name;
  uint64_t volume_blocks = 0;
  uint64_t generation = 0;       // fs generation at dump time
  int64_t dump_time = 0;
  bool incremental = false;
  std::string base_snapshot;     // name of the base (incremental only)
  uint64_t base_generation = 0;  // generation the base snapshot captured
  std::string snapshot_name;     // snapshot quiescing this dump
  uint64_t block_count = 0;      // data blocks in the stream
  // Multi-tape striping: this stream carries every chunk with
  // index % part_count == part_index. All parts together form the dump.
  uint32_t part_index = 0;
  uint32_t part_count = 1;

  // One 4 KB block with trailing CRC.
  Result<Block> Serialize() const;
  static Result<ImageHeader> Parse(const Block& block);
};

struct ImageExtent {
  Vbn start = 0;
  uint32_t count = 0;
  uint32_t data_crc = 0;  // CRC-32C of the extent's raw blocks

  // Fixed 32-byte on-stream encoding.
  static constexpr size_t kEncodedSize = 32;
  void EncodeTo(std::vector<uint8_t>* out) const;
  static Result<ImageExtent> Decode(std::span<const uint8_t> bytes);
};

struct ImageTrailer {
  uint64_t block_count = 0;
  Block fsinfo;  // raw fsinfo block, written to vbn 0/1 by restore

  // Two 4 KB blocks: marker+count, then the fsinfo block itself.
  Result<std::vector<uint8_t>> Serialize() const;
  static Result<ImageTrailer> Parse(std::span<const uint8_t> bytes);
  static constexpr size_t kEncodedSize = 2 * kBlockSize;
};

}  // namespace bkup

#endif  // BKUP_IMAGE_IMAGE_FORMAT_H_

#include "src/image/mirror.h"

namespace bkup {

Result<uint64_t> VolumeMirror::Sync() {
  const std::string new_snap = "mirror." + std::to_string(syncs_ + 1);
  BKUP_RETURN_IF_ERROR(source_->CreateSnapshot(new_snap));

  ImageDumpOptions opt;
  opt.snapshot_name = new_snap;
  opt.dump_time = source_->env()->now();
  opt.base_snapshot = last_snap_;  // empty on the first sync: full image
  Result<ImageDumpOutput> dump = RunImageDump(source_->volume(), opt);
  if (!dump.ok()) {
    // Leave the source as we found it.
    (void)source_->DeleteSnapshot(new_snap);
    return dump.status();
  }

  Result<ImageRestoreOutput> restored =
      RunImageRestore(mirror_, dump->stream);
  if (!restored.ok()) {
    (void)source_->DeleteSnapshot(new_snap);
    return restored.status();
  }

  // The transfer is durable; retire the previous transfer snapshot.
  if (!last_snap_.empty()) {
    BKUP_RETURN_IF_ERROR(source_->DeleteSnapshot(last_snap_));
  }
  last_snap_ = new_snap;
  ++syncs_;
  return dump->stats.stream_bytes;
}

}  // namespace bkup

// Block-set computation for image dumps — the Table 1 logic.
//
// These helpers read the on-disk block map *through the raw volume*, using
// the file system "only to access the block map information" (§4.1): the
// fsinfo block names the block-map file, whose 32-bit words say which planes
// reference each block. A full dump takes every referenced block; an
// incremental takes the blocks referenced now but not by the base snapshot's
// plane — the set `B − A`.
#ifndef BKUP_IMAGE_BLOCKSET_H_
#define BKUP_IMAGE_BLOCKSET_H_

#include <optional>
#include <string>

#include "src/fs/blockmap.h"
#include "src/fs/layout.h"
#include "src/raid/volume.h"
#include "src/util/bitmap.h"
#include "src/util/status.h"

namespace bkup {

// Reads the current fsinfo from the volume (primary, falling back to the
// redundant copy).
Result<FsInfo> ReadFsInfoFromVolume(Volume* volume);

// Loads the block map by walking the block-map file's pointer tree with raw
// volume reads. `reads` (optional) collects every vbn touched, so jobs can
// charge the (small) meta-data read cost of an image dump.
Result<BlockMap> LoadBlockMapFromVolume(Volume* volume, const FsInfo& fsinfo,
                                        std::vector<Vbn>* reads = nullptr);

// The set of blocks an image dump must include. `base_plane` empty = full
// dump (every block referenced by any plane); otherwise the incremental set:
// referenced now, not referenced by the base plane (Table 1: "newly written
// — include", "deleted — no need to include", "needed but not changed since
// full dump — excluded").
Bitmap ComputeImageBlockSet(const BlockMap& map,
                            std::optional<int> base_plane);

// Finds the plane of a named snapshot in an fsinfo snapshot table.
Result<int> SnapshotPlaneOf(const FsInfo& fsinfo, const std::string& name);

}  // namespace bkup

#endif  // BKUP_IMAGE_BLOCKSET_H_

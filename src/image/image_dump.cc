#include "src/image/image_dump.h"

#include <optional>

#include "src/obs/metrics.h"
#include "src/util/checksum.h"

namespace bkup {

Result<ImageDumpOutput> RunImageDump(Volume* volume,
                                     const ImageDumpOptions& options) {
  if (options.chunk_blocks == 0) {
    return InvalidArgument("chunk_blocks must be positive");
  }
  if (options.part_count == 0 || options.part_index >= options.part_count) {
    return InvalidArgument("bad part numbering");
  }
  ImageDumpOutput out;

  // Meta-data pass: fsinfo + block map, through the raw volume.
  std::vector<Vbn> meta_reads;
  meta_reads.push_back(kFsInfoPrimary);
  BKUP_ASSIGN_OR_RETURN(FsInfo fsinfo, ReadFsInfoFromVolume(volume));
  BKUP_ASSIGN_OR_RETURN(BlockMap map,
                        LoadBlockMapFromVolume(volume, fsinfo, &meta_reads));

  std::optional<int> base_plane;
  ImageHeader header;
  header.volume_name = volume->name();
  header.volume_blocks = volume->num_blocks();
  header.generation = fsinfo.generation;
  header.dump_time = options.dump_time;
  header.snapshot_name = options.snapshot_name;
  if (!options.base_snapshot.empty()) {
    BKUP_ASSIGN_OR_RETURN(int plane,
                          SnapshotPlaneOf(fsinfo, options.base_snapshot));
    base_plane = plane;
    header.incremental = true;
    header.base_snapshot = options.base_snapshot;
    for (const SnapshotInfo& s : fsinfo.snapshots) {
      if (s.name == options.base_snapshot) {
        header.base_generation = s.generation;
      }
    }
  }

  const Bitmap full_set = ComputeImageBlockSet(map, base_plane);
  out.block_set.Resize(full_set.size());  // this part's blocks, filled below
  header.part_index = options.part_index;
  header.part_count = options.part_count;

  BKUP_ASSIGN_OR_RETURN(Block header_block, header.Serialize());
  out.stream.insert(out.stream.end(), header_block.data.begin(),
                    header_block.data.end());
  {
    IoEvent& event = out.trace.events.emplace_back();
    event.phase = JobPhase::kDumpBlocks;
    event.disk_reads = meta_reads;
    event.cpu.push_back({CpuCost::kHeaderFormat, 1});
    event.stream_end = out.stream.size();
    out.stats.meta_reads = meta_reads.size();
  }

  // Stream the block set in ascending vbn order, extent by extent. Extents
  // break at discontinuities and at chunk_blocks (which also bounds the size
  // of one trace event, so the replay pipelines at track-buffer grain).
  // Chunk indices are assigned over the full set so the parts of a striped
  // multi-tape dump partition it deterministically.
  Vbn v = full_set.FindFirstSet();
  Block block;
  uint64_t chunk_index = 0;
  while (v != Bitmap::npos) {
    // Find the end of this run.
    Vbn end = v;
    while (end + 1 < map.num_blocks() && full_set.Test(end + 1) &&
           end + 1 - v < options.chunk_blocks) {
      ++end;
    }
    const bool ours =
        chunk_index % options.part_count == options.part_index;
    ++chunk_index;
    if (!ours) {
      v = full_set.FindFirstSet(end + 1);
      continue;
    }
    for (Vbn b = v; b <= end; ++b) {
      out.block_set.Set(b);
    }
    ImageExtent extent;
    extent.start = v;
    extent.count = static_cast<uint32_t>(end - v + 1);

    IoEvent& event = out.trace.events.emplace_back();
    event.phase = JobPhase::kDumpBlocks;

    std::vector<uint8_t> data;
    data.reserve(extent.count * kBlockSize);
    for (Vbn b = v; b <= end; ++b) {
      BKUP_RETURN_IF_ERROR(volume->ReadBlock(b, &block));
      data.insert(data.end(), block.data.begin(), block.data.end());
      event.disk_reads.push_back(b);
    }
    extent.data_crc = Crc32c(data);
    extent.EncodeTo(&out.stream);
    out.stream.insert(out.stream.end(), data.begin(), data.end());

    event.cpu.push_back({CpuCost::kPhysicalBlock, extent.count});
    event.stream_end = out.stream.size();
    out.stats.blocks_dumped += extent.count;
    out.stats.extents++;

    v = full_set.FindFirstSet(end + 1);
  }
  header.block_count = out.block_set.CountOnes();

  // Trailer: the fsinfo exactly as on disk at dump time.
  ImageTrailer trailer;
  trailer.block_count = out.stats.blocks_dumped;
  BKUP_RETURN_IF_ERROR(volume->ReadBlock(kFsInfoPrimary, &trailer.fsinfo));
  BKUP_ASSIGN_OR_RETURN(std::vector<uint8_t> tbytes, trailer.Serialize());
  out.stream.insert(out.stream.end(), tbytes.begin(), tbytes.end());
  {
    IoEvent& event = out.trace.events.emplace_back();
    event.phase = JobPhase::kDumpBlocks;
    event.disk_reads.push_back(kFsInfoPrimary);
    event.cpu.push_back({CpuCost::kHeaderFormat, 1});
    event.stream_end = out.stream.size();
  }
  out.stats.stream_bytes = out.stream.size();
  MetricsRegistry& metrics = MetricsRegistry::Default();
  metrics.GetCounter("dump.image.runs")->Increment();
  metrics.GetCounter("dump.image.blocks")->Increment(out.stats.blocks_dumped);
  metrics.GetCounter("dump.image.extents")->Increment(out.stats.extents);
  metrics.GetCounter("dump.image.stream_bytes")
      ->Increment(out.stats.stream_bytes);
  return out;
}

Result<ImageRestoreOutput> RunImageRestore(Volume* volume,
                                           std::span<const uint8_t> stream) {
  if (stream.size() < kBlockSize) {
    return Corruption("image stream too short");
  }
  ImageRestoreOutput out;
  Block header_block;
  header_block.CopyFrom(stream.first(kBlockSize));
  BKUP_ASSIGN_OR_RETURN(out.header, ImageHeader::Parse(header_block));

  // Physical restore's fundamental portability limitation, enforced.
  if (out.header.volume_blocks != volume->num_blocks()) {
    return Unsupported(
        "image restore requires a volume with the exact source geometry (" +
        std::to_string(out.header.volume_blocks) + " blocks)");
  }
  if (out.header.incremental) {
    // The target must hold the chain this increment extends: its current
    // fsinfo must list the base snapshot at the recorded generation.
    Result<FsInfo> current = ReadFsInfoFromVolume(volume);
    if (!current.ok()) {
      return FailedPrecondition(
          "incremental image restore onto an empty volume; restore the "
          "level-0 image first");
    }
    bool base_ok = false;
    for (const SnapshotInfo& s : current->snapshots) {
      if (s.name == out.header.base_snapshot &&
          s.generation == out.header.base_generation) {
        base_ok = true;
      }
    }
    if (!base_ok) {
      return FailedPrecondition(
          "target volume does not hold base snapshot '" +
          out.header.base_snapshot + "'");
    }
  }

  size_t pos = kBlockSize;
  Block block;
  while (true) {
    if (pos + ImageTrailer::kEncodedSize > stream.size()) {
      return Corruption("image stream ended without a trailer");
    }
    // Trailer or extent?
    Result<ImageTrailer> trailer =
        ImageTrailer::Parse(stream.subspan(pos, ImageTrailer::kEncodedSize));
    if (trailer.ok()) {
      if (trailer->block_count != out.stats.blocks_restored) {
        return Corruption("image stream block count mismatch");
      }
      // Install the dumped fsinfo last: the restored volume becomes valid
      // atomically, at both redundant locations.
      IoEvent& event = out.trace.events.emplace_back();
      event.phase = JobPhase::kRestoreBlocks;
      BKUP_RETURN_IF_ERROR(
          volume->WriteBlock(kFsInfoPrimary, trailer->fsinfo));
      BKUP_RETURN_IF_ERROR(volume->WriteBlock(kFsInfoBackup, trailer->fsinfo));
      event.blocks_written = 2;
      event.cpu.push_back({CpuCost::kRestorePhysicalBlock, 2});
      event.stream_end = pos + ImageTrailer::kEncodedSize;
      MetricsRegistry& metrics = MetricsRegistry::Default();
      metrics.GetCounter("restore.image.runs")->Increment();
      metrics.GetCounter("restore.image.blocks")
          ->Increment(out.stats.blocks_restored);
      return out;
    }
    BKUP_ASSIGN_OR_RETURN(
        ImageExtent extent,
        ImageExtent::Decode(stream.subspan(pos, ImageExtent::kEncodedSize)));
    pos += ImageExtent::kEncodedSize;
    const uint64_t data_bytes =
        static_cast<uint64_t>(extent.count) * kBlockSize;
    if (pos + data_bytes > stream.size()) {
      return Corruption("image extent data truncated");
    }
    const auto data = stream.subspan(pos, data_bytes);
    if (Crc32c(data) != extent.data_crc) {
      // Physical restore has no per-file containment: damage here dooms the
      // whole restore, which is exactly the robustness asymmetry the paper
      // describes for block-based streams.
      return Corruption("image extent data checksum mismatch at vbn " +
                        std::to_string(extent.start));
    }
    IoEvent& event = out.trace.events.emplace_back();
    event.phase = JobPhase::kRestoreBlocks;
    event.disk_writes.reserve(extent.count);
    for (uint32_t i = 0; i < extent.count; ++i) {
      block.CopyFrom(data.subspan(i * kBlockSize, kBlockSize));
      BKUP_RETURN_IF_ERROR(volume->WriteBlock(extent.start + i, block));
      event.disk_writes.push_back(extent.start + i);
    }
    pos += data_bytes;
    event.blocks_written = extent.count;
    event.cpu.push_back({CpuCost::kRestorePhysicalBlock, extent.count});
    event.stream_end = pos;
    out.stats.blocks_restored += extent.count;
    out.stats.extents++;
  }
}

}  // namespace bkup

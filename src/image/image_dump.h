// Image (physical) dump and restore — WAFL's block-based strategy (§4.1).
//
// Both directions bypass the file system and the NVRAM log entirely: the
// dump reads raw blocks in ascending vbn order directly from the RAID
// volume, and the restore writes them straight back through it. The only
// file system knowledge used is the block map (see blockset.h). A restored
// volume is bit-identical in every referenced block and carries every
// snapshot of the original — "the system you restore looks just like the
// system you dumped, snapshots and all".
#ifndef BKUP_IMAGE_IMAGE_DUMP_H_
#define BKUP_IMAGE_IMAGE_DUMP_H_

#include <string>
#include <vector>

#include "src/block/io_trace.h"
#include "src/image/blockset.h"
#include "src/image/image_format.h"
#include "src/raid/volume.h"
#include "src/util/status.h"

namespace bkup {

struct ImageDumpOptions {
  // Empty = full dump; otherwise the name of the base snapshot for an
  // incremental dump (must exist in the volume's snapshot table).
  std::string base_snapshot;
  // Recorded in the header for operator bookkeeping.
  std::string snapshot_name;
  int64_t dump_time = 0;
  // Blocks per trace event / extent flush; sized like a track-buffer.
  uint32_t chunk_blocks = 64;
  // Multi-tape striping: emit only chunks with index % part_count ==
  // part_index. Chunk boundaries are deterministic, so the N parts of a
  // parallel dump partition the block set exactly.
  uint32_t part_index = 0;
  uint32_t part_count = 1;
};

struct ImageDumpStats {
  uint64_t blocks_dumped = 0;
  uint64_t extents = 0;
  uint64_t meta_reads = 0;  // fsinfo + block-map file reads
  uint64_t stream_bytes = 0;
};

struct ImageDumpOutput {
  std::vector<uint8_t> stream;
  IoTrace trace;
  ImageDumpStats stats;
  Bitmap block_set;  // exactly the blocks included (for tests / Table 1)
};

Result<ImageDumpOutput> RunImageDump(Volume* volume,
                                     const ImageDumpOptions& options);

struct ImageRestoreStats {
  uint64_t blocks_restored = 0;
  uint64_t extents = 0;
};

struct ImageRestoreOutput {
  IoTrace trace;
  ImageRestoreStats stats;
  ImageHeader header;
};

// Restores an image stream onto `volume`. Enforces physical restore's
// fundamental limitation: the target must have exactly the source's block
// count ("it may even be necessary to restore the file system to disks that
// are the same size and configuration as the originals"). An incremental
// stream additionally requires that the target currently holds the chain it
// extends (verified via the base snapshot's generation).
Result<ImageRestoreOutput> RunImageRestore(Volume* volume,
                                           std::span<const uint8_t> stream);

}  // namespace bkup

#endif  // BKUP_IMAGE_IMAGE_DUMP_H_

#include "src/image/blockset.h"

#include "src/fs/file_tree.h"

namespace bkup {

Result<FsInfo> ReadFsInfoFromVolume(Volume* volume) {
  Block block;
  BKUP_RETURN_IF_ERROR(volume->ReadBlock(kFsInfoPrimary, &block));
  Result<FsInfo> info = FsInfo::DeserializeFromBlock(block);
  if (info.ok()) {
    return info;
  }
  BKUP_RETURN_IF_ERROR(volume->ReadBlock(kFsInfoBackup, &block));
  return FsInfo::DeserializeFromBlock(block);
}

Result<BlockMap> LoadBlockMapFromVolume(Volume* volume, const FsInfo& fsinfo,
                                        std::vector<Vbn>* reads) {
  BlockMap map(fsinfo.volume_blocks);
  auto read = [volume, reads](Vbn v, Block* b) {
    if (reads != nullptr) {
      reads->push_back(v);
    }
    return volume->ReadBlock(v, b);
  };
  std::vector<uint32_t> ptrs;
  BKUP_RETURN_IF_ERROR(LoadPointerMap(read, fsinfo.blockmap_file, &ptrs));
  Block block;
  for (uint64_t fbn = 0; fbn < ptrs.size(); ++fbn) {
    if (ptrs[fbn] == 0) {
      return Corruption("block-map file has a hole");
    }
    BKUP_RETURN_IF_ERROR(read(ptrs[fbn], &block));
    map.LoadFileBlock(fbn, block);
  }
  return map;
}

Bitmap ComputeImageBlockSet(const BlockMap& map,
                            std::optional<int> base_plane) {
  Bitmap set(map.num_blocks());
  for (Vbn v = 0; v < map.num_blocks(); ++v) {
    if (map.word(v) == 0) {
      continue;  // free everywhere: never dumped
    }
    if (base_plane.has_value() && map.Test(*base_plane, v)) {
      continue;  // the base snapshot already has this block
    }
    set.Set(v);
  }
  return set;
}

Result<int> SnapshotPlaneOf(const FsInfo& fsinfo, const std::string& name) {
  for (const SnapshotInfo& s : fsinfo.snapshots) {
    if (s.name == name) {
      return static_cast<int>(s.plane);
    }
  }
  return NotFound("no snapshot named '" + name + "' in the fsinfo table");
}

}  // namespace bkup

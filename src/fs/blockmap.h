// The block map: 32 bits for every block in the volume, exactly as the
// paper describes WAFL's free-block data structure. Plane 0 is the active
// file system; each snapshot owns one of planes 1..20. A block is free only
// when no plane references it.
//
// This in-memory structure is authoritative while the file system is
// mounted; at every consistency point it is serialized into the block-map
// *file* on disk (4 bytes per block), which is what makes an image-dumped
// volume self-describing.
#ifndef BKUP_FS_BLOCKMAP_H_
#define BKUP_FS_BLOCKMAP_H_

#include <cstdint>
#include <vector>

#include "src/block/block.h"
#include "src/fs/layout.h"
#include "src/util/bitmap.h"
#include "src/util/status.h"

namespace bkup {

class BlockMap {
 public:
  explicit BlockMap(uint64_t num_blocks) : words_(num_blocks, 0) {}

  uint64_t num_blocks() const { return words_.size(); }

  bool Test(int plane, Vbn vbn) const {
    return (words_[vbn] >> plane) & 1u;
  }
  void Set(int plane, Vbn vbn) { words_[vbn] |= 1u << plane; }
  void Clear(int plane, Vbn vbn) { words_[vbn] &= ~(1u << plane); }

  // A block is free iff no plane (active or snapshot) references it.
  bool IsFree(Vbn vbn) const { return words_[vbn] == 0; }

  uint32_t word(Vbn vbn) const { return words_[vbn]; }

  // Snapshot create: the snapshot inherits exactly the blocks of the active
  // file system ("duplicate the root data structure and update the block
  // allocation information").
  void CopyPlane(int src, int dst);
  void ClearPlane(int plane);

  uint64_t CountPlane(int plane) const;
  uint64_t CountFree() const;
  uint64_t CountUsed() const { return num_blocks() - CountFree(); }

  // Extracts a plane as a Bitmap; the image dump block sets (Table 1) are
  // computed from these.
  Bitmap ExtractPlane(int plane) const;

  // --------------------------- block-map file content (4 bytes/block) ---

  // Number of 4 KB blocks the on-disk block-map file occupies.
  uint64_t FileBlocks() const {
    return (num_blocks() * 4 + kBlockSize - 1) / kBlockSize;
  }
  uint64_t FileBytes() const { return num_blocks() * 4; }

  // Renders file block `fbn` of the block-map file from current state.
  void RenderFileBlock(uint64_t fbn, Block* out) const;

  // Loads state from a rendered file block (mount path).
  void LoadFileBlock(uint64_t fbn, const Block& block);

  // Which block-map file blocks cover entries [first, last]? (inclusive)
  static uint64_t FileBlockOfEntry(Vbn vbn) {
    return vbn / (kBlockSize / 4);
  }

 private:
  std::vector<uint32_t> words_;
};

// Write-anywhere allocator: hands out free blocks starting from a moving
// write point so consecutive allocations are laid out sequentially on disk
// whenever free space permits — WAFL's "complete flexibility in its write
// allocation policies". A first-fit policy is kept for the allocation-policy
// ablation benchmark.
class WriteAllocator {
 public:
  enum class Policy { kWriteAnywhere, kFirstFit };

  WriteAllocator(BlockMap* map, Policy policy = Policy::kWriteAnywhere)
      : map_(map), policy_(policy), write_point_(kFirstAllocatableVbn) {}

  // Allocates one block: finds a free vbn, marks it in the active plane.
  Result<Vbn> Allocate();

  // Frees a block from the active file system; the block stays in use while
  // any snapshot still references it.
  void FreeActive(Vbn vbn) { map_->Clear(kActivePlane, vbn); }

  Vbn write_point() const { return write_point_; }
  void set_write_point(Vbn vbn) { write_point_ = vbn; }
  Policy policy() const { return policy_; }

 private:
  BlockMap* map_;
  Policy policy_;
  Vbn write_point_;
};

}  // namespace bkup

#endif  // BKUP_FS_BLOCKMAP_H_

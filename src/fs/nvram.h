// NVRAM operation log.
//
// As in the paper (§2.2): WAFL does not use NVRAM as a disk cache — it logs
// incoming operations so that, after a crash, the filer can boot from the
// most recent consistency point and replay the few seconds of requests that
// had not reached disk. The log object lives *outside* the Filesystem so a
// test can destroy the file system ("crash"), remount from the volume, and
// replay the surviving log.
#ifndef BKUP_FS_NVRAM_H_
#define BKUP_FS_NVRAM_H_

#include <cstdint>
#include <span>
#include <vector>

namespace bkup {

class NvramLog {
 public:
  explicit NvramLog(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  uint64_t capacity() const { return capacity_; }
  uint64_t size_bytes() const { return size_bytes_; }
  size_t num_records() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  // True if a record of `nbytes` would overflow the log — the file system
  // reacts by taking a consistency point first.
  bool WouldOverflow(uint64_t nbytes) const {
    return size_bytes_ + nbytes > capacity_;
  }

  void Append(std::vector<uint8_t> record) {
    size_bytes_ += record.size();
    records_.push_back(std::move(record));
  }

  // A consistency point makes everything in the log durable on disk.
  void Clear() {
    records_.clear();
    size_bytes_ = 0;
  }

  const std::vector<std::vector<uint8_t>>& records() const { return records_; }

  // Simulated NVRAM hardware failure: the log is lost, but — the paper's
  // point — the on-disk file system stays self-consistent.
  void FailAndLoseContents() { Clear(); }

 private:
  uint64_t capacity_;
  uint64_t size_bytes_ = 0;
  std::vector<std::vector<uint8_t>> records_;
};

}  // namespace bkup

#endif  // BKUP_FS_NVRAM_H_

#include "src/fs/blockmap.h"

#include <cstring>

namespace bkup {

void BlockMap::CopyPlane(int src, int dst) {
  const uint32_t src_mask = 1u << src;
  const uint32_t dst_mask = 1u << dst;
  for (uint32_t& w : words_) {
    if (w & src_mask) {
      w |= dst_mask;
    } else {
      w &= ~dst_mask;
    }
  }
}

void BlockMap::ClearPlane(int plane) {
  const uint32_t mask = ~(1u << plane);
  for (uint32_t& w : words_) {
    w &= mask;
  }
}

uint64_t BlockMap::CountPlane(int plane) const {
  const uint32_t mask = 1u << plane;
  uint64_t n = 0;
  for (uint32_t w : words_) {
    n += (w & mask) ? 1 : 0;
  }
  return n;
}

uint64_t BlockMap::CountFree() const {
  uint64_t n = 0;
  for (uint32_t w : words_) {
    n += w == 0 ? 1 : 0;
  }
  return n;
}

Bitmap BlockMap::ExtractPlane(int plane) const {
  Bitmap out(num_blocks());
  const uint32_t mask = 1u << plane;
  for (Vbn v = 0; v < words_.size(); ++v) {
    if (words_[v] & mask) {
      out.Set(v);
    }
  }
  return out;
}

void BlockMap::RenderFileBlock(uint64_t fbn, Block* out) const {
  out->Zero();
  const uint64_t first = fbn * (kBlockSize / 4);
  const uint64_t count =
      std::min<uint64_t>(kBlockSize / 4, num_blocks() - first);
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t w = words_[first + i];
    out->data[i * 4 + 0] = static_cast<uint8_t>(w);
    out->data[i * 4 + 1] = static_cast<uint8_t>(w >> 8);
    out->data[i * 4 + 2] = static_cast<uint8_t>(w >> 16);
    out->data[i * 4 + 3] = static_cast<uint8_t>(w >> 24);
  }
}

void BlockMap::LoadFileBlock(uint64_t fbn, const Block& block) {
  const uint64_t first = fbn * (kBlockSize / 4);
  const uint64_t count =
      std::min<uint64_t>(kBlockSize / 4, num_blocks() - first);
  for (uint64_t i = 0; i < count; ++i) {
    words_[first + i] = static_cast<uint32_t>(block.data[i * 4 + 0]) |
                        static_cast<uint32_t>(block.data[i * 4 + 1]) << 8 |
                        static_cast<uint32_t>(block.data[i * 4 + 2]) << 16 |
                        static_cast<uint32_t>(block.data[i * 4 + 3]) << 24;
  }
}

Result<Vbn> WriteAllocator::Allocate() {
  const uint64_t n = map_->num_blocks();
  Vbn start = policy_ == Policy::kFirstFit ? kFirstAllocatableVbn
                                           : write_point_;
  if (start >= n || start < kFirstAllocatableVbn) {
    start = kFirstAllocatableVbn;
  }
  // Scan forward from the write point, wrapping once.
  auto take = [this](Vbn v) {
    map_->Set(kActivePlane, v);
    if (policy_ == Policy::kWriteAnywhere) {
      write_point_ = v + 1;
    }
    return v;
  };
  for (Vbn v = start; v < n; ++v) {
    if (map_->IsFree(v)) {
      return take(v);
    }
  }
  for (Vbn v = kFirstAllocatableVbn; v < start; ++v) {
    if (map_->IsFree(v)) {
      return take(v);
    }
  }
  return NoSpace("volume full");
}

}  // namespace bkup

// The live write-anywhere file system.
//
// Structure (paper §2): a tree of blocks rooted at the fsinfo structure,
// which describes the inode file; the inode file contains every inode;
// meta-data (the inode file and the 32-bit-plane block map) live in files;
// nothing but fsinfo has a fixed location. Mutations accumulate in memory
// (and, if configured, in an NVRAM op log); a *consistency point* flushes
// everything copy-on-write and atomically advances the root. Snapshots
// duplicate the root structure and the active bit plane in seconds and share
// every block with the active file system until it diverges.
#ifndef BKUP_FS_FILESYSTEM_H_
#define BKUP_FS_FILESYSTEM_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/fs/blockmap.h"
#include "src/fs/layout.h"
#include "src/fs/nvram.h"
#include "src/fs/reader.h"
#include "src/raid/volume.h"
#include "src/sim/environment.h"
#include "src/util/status.h"

namespace bkup {

struct FormatParams {
  uint32_t max_inodes = 0;  // 0: pick volume_blocks / 4 (min 1024)
  WriteAllocator::Policy alloc_policy = WriteAllocator::Policy::kWriteAnywhere;
};

// What one consistency point wrote, for the simulation's timing charges.
struct CpReport {
  uint64_t generation = 0;
  std::vector<Vbn> data_writes;  // user data blocks, in allocation order
  std::vector<Vbn> meta_writes;  // indirect, inode-file, block-map, fsinfo
  uint64_t blocks_freed = 0;

  size_t TotalWrites() const { return data_writes.size() + meta_writes.size(); }
};

struct SetAttrRequest {
  std::optional<uint16_t> mode;
  std::optional<uint32_t> uid;
  std::optional<uint32_t> gid;
  std::optional<int64_t> mtime;
  std::optional<int64_t> atime;
};

struct FsStats {
  uint64_t volume_blocks = 0;
  uint64_t free_blocks = 0;
  uint64_t active_blocks = 0;    // plane 0
  uint64_t snapshot_only_blocks = 0;  // used but not in the active plane
  uint32_t inodes_used = 0;
  uint32_t max_inodes = 0;
  uint64_t generation = 0;
};

class Filesystem {
 public:
  // Creates a fresh file system on `volume` and mounts it. The environment
  // provides timestamps and the auto-CP clock. `nvram` may be null (no op
  // logging, as for the scratch file systems in tests).
  static Result<std::unique_ptr<Filesystem>> Format(Volume* volume,
                                                    SimEnvironment* env,
                                                    NvramLog* nvram = nullptr,
                                                    FormatParams params = {});

  // Mounts the most recent consistency point on `volume`; if `nvram` holds
  // surviving records, replays them (the paper's crash-recovery path: "the
  // filer boots in just a minute or two ... replays any NFS requests in the
  // NVRAM that have not reached disk").
  static Result<std::unique_ptr<Filesystem>> Mount(Volume* volume,
                                                   SimEnvironment* env,
                                                   NvramLog* nvram = nullptr);

  Filesystem(const Filesystem&) = delete;
  Filesystem& operator=(const Filesystem&) = delete;

  // ----------------------------------------------------- namespace ops ---

  Result<Inum> Create(const std::string& path, uint16_t mode);
  Result<Inum> Mkdir(const std::string& path, uint16_t mode);
  Result<Inum> SymlinkAt(const std::string& target, const std::string& path);
  Status Link(const std::string& existing, const std::string& new_path);
  Status Unlink(const std::string& path);
  Status Rmdir(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);

  Result<Inum> LookupPath(const std::string& path);
  Result<std::vector<DirEntry>> ReadDir(Inum dir);
  Result<std::string> ReadSymlink(Inum inum);

  // ------------------------------------------------------- file ops ---

  Result<InodeData> GetAttr(Inum inum);
  Status SetAttr(Inum inum, const SetAttrRequest& request);
  Status Write(Inum inum, uint64_t offset, std::span<const uint8_t> data);
  // With `vbns`, appends the volume block each read block came off — 0 for
  // a block served from dirty in-memory state or a hole. The foreground
  // load generator charges disk-arm time for exactly these blocks.
  Status Read(Inum inum, uint64_t offset, uint64_t length,
              std::vector<uint8_t>* out, std::vector<Vbn>* vbns = nullptr);
  Status Truncate(Inum inum, uint64_t new_size);

  // ------------------------------------------------- consistency points ---

  // Flushes all dirty state copy-on-write and advances the root atomically.
  Result<CpReport> ConsistencyPoint();

  // Auto-CP interval (paper: "at least once every 10 seconds").
  void set_cp_interval(SimDuration d) { cp_interval_ = d; }

  bool HasDirtyState() const;

  // --------------------------------------------------------- snapshots ---

  Status CreateSnapshot(const std::string& name);
  Status DeleteSnapshot(const std::string& name);
  std::vector<SnapshotInfo> ListSnapshots() const { return snapshots_; }
  Result<SnapshotInfo> FindSnapshot(const std::string& name) const;

  // Read-only view of a snapshot's tree (what logical dump walks).
  Result<FsReader> SnapshotReader(const std::string& name) const;

  // Read-only view of the last consistency point of the live file system.
  // Only coherent when there is no dirty in-memory state.
  FsReader LiveReader() const;

  // ------------------------------------------------------------ queries ---

  FsStats Stats() const;
  const BlockMap& blockmap() const { return blockmap_; }
  Volume* volume() { return volume_; }
  uint32_t max_inodes() const { return max_inodes_; }
  uint64_t generation() const { return generation_; }
  SimEnvironment* env() { return env_; }

  // The report of the most recent consistency point (for timing charges by
  // jobs that trigger CPs indirectly through NVRAM pressure).
  const CpReport& last_cp_report() const { return last_cp_report_; }
  // CP reports accumulated since the counter was reset; restore jobs use
  // this to charge disk time for flushes that auto-CPs performed.
  uint64_t cp_data_writes_since_mark() const { return cp_data_writes_since_mark_; }
  uint64_t cp_meta_writes_since_mark() const { return cp_meta_writes_since_mark_; }
  void MarkCpCounters() {
    cp_data_writes_since_mark_ = 0;
    cp_meta_writes_since_mark_ = 0;
  }

 private:
  struct FileState {
    InodeData inode;
    bool inode_dirty = false;
    bool ptrs_loaded = false;
    bool ptrs_dirty = false;
    std::vector<uint32_t> ptrs;          // vbn per file block, 0 == hole
    std::map<uint64_t, Block> dirty_blocks;  // fbn -> pending content
  };

  Filesystem(Volume* volume, SimEnvironment* env, NvramLog* nvram);

  // --------- internal helpers (no NVRAM logging; used by replay too) ---
  Result<Inum> DoCreate(const std::string& path, InodeType type, uint16_t mode,
                        const std::string& symlink_target);
  Status DoLink(const std::string& existing, const std::string& new_path);
  Status DoUnlink(const std::string& path, bool must_be_dir);
  Status DoRename(const std::string& from, const std::string& to);
  Status DoWrite(Inum inum, uint64_t offset, std::span<const uint8_t> data);
  Status DoTruncate(Inum inum, uint64_t new_size);
  Status DoSetAttr(Inum inum, const SetAttrRequest& request);

  Result<FileState*> LoadFile(Inum inum);
  Status EnsurePtrsLoaded(FileState* fs);
  Result<Inum> AllocateInum(InodeType type, uint16_t mode);
  void FreeFileBlocks(FileState* fs);

  // Directory content manipulation through the file layer.
  Result<std::vector<DirEntry>> ReadDirState(FileState* dir);
  Status WriteDirState(Inum dir_inum, FileState* dir,
                       const std::vector<DirEntry>& entries);
  struct ResolvedParent {
    Inum parent;
    std::string leaf;
  };
  Result<ResolvedParent> ResolveParent(const std::string& path);
  Result<Inum> LookupLocked(const std::string& path);

  // Reads a file block honoring dirty state, then disk, then holes.
  Status ReadFileBlockLive(FileState* fs, uint64_t fbn, Block* out,
                           Vbn* vbn = nullptr);

  // CP plumbing.
  Status FlushFile(Inum inum, FileState* fs, CpReport* report);
  Status FlushInodeFile(CpReport* report);
  Status FlushBlockMapFile(CpReport* report);
  Status WriteFsInfo(CpReport* report);
  void MaybeAutoCp();

  // NVRAM logging + replay.
  void LogOp(std::vector<uint8_t> record);
  Status ReplayNvram();
  std::vector<uint8_t> last_replayed_record_;  // empty unless replaying

  Status LoadInodeUsage();

  // ------------------------------------------------------------ state ---
  Volume* volume_;
  SimEnvironment* env_;
  NvramLog* nvram_;

  uint64_t generation_ = 0;
  uint32_t max_inodes_ = 0;
  BlockMap blockmap_;
  WriteAllocator allocator_;
  std::vector<SnapshotInfo> snapshots_;

  // Meta-data files (their inodes live in fsinfo).
  InodeData inode_file_inode_;
  std::vector<uint32_t> inode_file_ptrs_;
  InodeData blockmap_inode_;
  std::vector<uint32_t> blockmap_ptrs_;

  // Cache of touched files, ordered for deterministic CP flushing.
  std::map<Inum, FileState> files_;
  Bitmap inode_used_;
  Inum next_inum_hint_ = kRootDirInum;

  SimDuration cp_interval_ = 10 * kSecond;
  SimTime last_cp_time_ = 0;
  CpReport last_cp_report_;
  uint64_t cp_data_writes_since_mark_ = 0;
  uint64_t cp_meta_writes_since_mark_ = 0;
  bool in_cp_ = false;
  bool replaying_ = false;
  bool internal_dir_write_ = false;
};

}  // namespace bkup

#endif  // BKUP_FS_FILESYSTEM_H_

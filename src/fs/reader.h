// FsReader: a read-only view of an on-disk file system tree, rooted at an
// inode-file inode. Both snapshots and the post-CP live file system are read
// this way; logical dump backs up through an FsReader over a snapshot, which
// is how the paper's dump gets "a completely consistent view of the file
// system" without taking it off line.
//
// Read methods optionally report the vbns they touched so the backup jobs
// can charge simulated disk time for every on-disk block access.
#ifndef BKUP_FS_READER_H_
#define BKUP_FS_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fs/file_tree.h"
#include "src/fs/layout.h"
#include "src/raid/volume.h"
#include "src/util/status.h"

namespace bkup {

class FsReader {
 public:
  FsReader(Volume* volume, InodeData inode_file_root, uint32_t max_inodes);

  uint32_t max_inodes() const { return max_inodes_; }
  Volume* volume() const { return volume_; }
  const InodeData& inode_file_root() const { return inode_file_root_; }

  // Reads inode `inum` from the inode file. Out-of-range inums and holes in
  // the inode file read as free inodes.
  Result<InodeData> ReadInode(Inum inum) const;

  // Reads file block `fbn`; holes fill with zeros. If `vbn_out` is non-null
  // it receives the on-disk vbn, or 0 for a hole.
  Status ReadFileBlock(const InodeData& inode, uint64_t fbn, Block* out,
                       Vbn* vbn_out = nullptr) const;

  // Byte-granular read of [offset, offset+length). Reads past EOF truncate.
  // If `vbns` is non-null, every on-disk block touched is appended.
  Status ReadFile(const InodeData& inode, uint64_t offset, uint64_t length,
                  std::vector<uint8_t>* out,
                  std::vector<Vbn>* vbns = nullptr) const;

  // Full pointer map of a file (0 == hole), for hole-aware dump writers.
  Result<std::vector<uint32_t>> PointerMap(const InodeData& inode) const;

  // The vbn of the inode-file block holding `inum` (0 if it is a hole).
  // Dump's mapping phase charges these reads.
  Vbn InodeFileVbn(Inum inum) const;

  // Directory contents of `inode` (which must be a directory).
  Result<std::vector<DirEntry>> ReadDir(const InodeData& inode) const;
  Result<std::vector<DirEntry>> ReadDirInum(Inum inum) const;

  // Resolves an absolute slash-separated path to an inum.
  Result<Inum> LookupPath(const std::string& path) const;

 private:
  Status ReadRaw(Vbn vbn, Block* out) const;

  Volume* volume_;
  InodeData inode_file_root_;
  uint32_t max_inodes_;
  // Pointer map of the inode file itself, loaded lazily on first use.
  mutable std::vector<uint32_t> inode_file_ptrs_;
  mutable bool inode_file_ptrs_loaded_ = false;
};

// Splits "/a/b/c" into {"a","b","c"}; rejects empty components, names longer
// than kMaxNameLen, and relative paths.
Result<std::vector<std::string>> SplitPath(const std::string& path);

}  // namespace bkup

#endif  // BKUP_FS_READER_H_

#include "src/fs/layout.h"

#include "src/util/checksum.h"

namespace bkup {

// ----------------------------------------------------------------- inode ---

void InodeData::SerializeTo(ByteWriter* writer) const {
  const size_t start = writer->size();
  writer->PutU8(static_cast<uint8_t>(type));
  writer->PutU16(nlink);
  writer->PutU16(mode);
  writer->PutU32(uid);
  writer->PutU32(gid);
  writer->PutU64(size);
  writer->PutI64(mtime);
  writer->PutI64(ctime);
  writer->PutI64(atime);
  writer->PutU32(generation);
  for (uint32_t p : direct) {
    writer->PutU32(p);
  }
  writer->PutU32(single_indirect);
  writer->PutU32(double_indirect);
  // Pad to the fixed on-disk inode size.
  while (writer->size() - start < kInodeSize) {
    writer->PutU8(0);
  }
}

Result<InodeData> InodeData::Deserialize(ByteReader* reader) {
  const size_t start = reader->position();
  InodeData ino;
  BKUP_ASSIGN_OR_RETURN(uint8_t type_raw, reader->ReadU8());
  if (type_raw > static_cast<uint8_t>(InodeType::kSymlink)) {
    return Corruption("bad inode type");
  }
  ino.type = static_cast<InodeType>(type_raw);
  BKUP_ASSIGN_OR_RETURN(ino.nlink, reader->ReadU16());
  BKUP_ASSIGN_OR_RETURN(ino.mode, reader->ReadU16());
  BKUP_ASSIGN_OR_RETURN(ino.uid, reader->ReadU32());
  BKUP_ASSIGN_OR_RETURN(ino.gid, reader->ReadU32());
  BKUP_ASSIGN_OR_RETURN(ino.size, reader->ReadU64());
  BKUP_ASSIGN_OR_RETURN(ino.mtime, reader->ReadI64());
  BKUP_ASSIGN_OR_RETURN(ino.ctime, reader->ReadI64());
  BKUP_ASSIGN_OR_RETURN(ino.atime, reader->ReadI64());
  BKUP_ASSIGN_OR_RETURN(ino.generation, reader->ReadU32());
  for (auto& p : ino.direct) {
    BKUP_ASSIGN_OR_RETURN(p, reader->ReadU32());
  }
  BKUP_ASSIGN_OR_RETURN(ino.single_indirect, reader->ReadU32());
  BKUP_ASSIGN_OR_RETURN(ino.double_indirect, reader->ReadU32());
  BKUP_RETURN_IF_ERROR(reader->Skip(kInodeSize - (reader->position() - start)));
  return ino;
}

// ------------------------------------------------------------- directory ---

std::vector<uint8_t> SerializeDirectory(const std::vector<DirEntry>& entries) {
  std::vector<uint8_t> out;
  ByteWriter w(&out);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const DirEntry& e : entries) {
    w.PutU32(e.inum);
    w.PutU8(static_cast<uint8_t>(e.type));
    w.PutString(e.name);
  }
  return out;
}

Result<std::vector<DirEntry>> ParseDirectory(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  BKUP_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  std::vector<DirEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DirEntry e;
    BKUP_ASSIGN_OR_RETURN(e.inum, r.ReadU32());
    BKUP_ASSIGN_OR_RETURN(uint8_t type_raw, r.ReadU8());
    e.type = static_cast<InodeType>(type_raw);
    BKUP_ASSIGN_OR_RETURN(e.name, r.ReadString());
    entries.push_back(std::move(e));
  }
  return entries;
}

// ---------------------------------------------------------------- fsinfo ---

Result<Block> FsInfo::SerializeToBlock() const {
  std::vector<uint8_t> bytes;
  ByteWriter w(&bytes);
  w.PutU32(kFsMagic);
  w.PutU32(kFsVersion);
  w.PutU64(generation);
  w.PutU64(volume_blocks);
  w.PutU32(max_inodes);
  w.PutI64(cp_time);
  w.PutU64(alloc_write_point);
  inode_file.SerializeTo(&w);
  blockmap_file.SerializeTo(&w);
  w.PutU8(static_cast<uint8_t>(snapshots.size()));
  for (const SnapshotInfo& s : snapshots) {
    w.PutU8(s.plane);
    w.PutString(s.name);
    w.PutI64(s.create_time);
    w.PutU64(s.generation);
    s.inode_file.SerializeTo(&w);
    w.PutU64(s.used_blocks);
  }
  if (bytes.size() + 4 > kBlockSize) {
    return Corruption("fsinfo overflows its block");
  }
  // CRC over the payload, stored in the last 4 bytes of the block.
  Block block;
  block.CopyFrom(bytes);
  const uint32_t crc = Crc32c(std::span(block.data).first(kBlockSize - 4));
  block.data[kBlockSize - 4] = static_cast<uint8_t>(crc);
  block.data[kBlockSize - 3] = static_cast<uint8_t>(crc >> 8);
  block.data[kBlockSize - 2] = static_cast<uint8_t>(crc >> 16);
  block.data[kBlockSize - 1] = static_cast<uint8_t>(crc >> 24);
  return block;
}

Result<FsInfo> FsInfo::DeserializeFromBlock(const Block& block) {
  const uint32_t stored = static_cast<uint32_t>(block.data[kBlockSize - 4]) |
                          static_cast<uint32_t>(block.data[kBlockSize - 3]) << 8 |
                          static_cast<uint32_t>(block.data[kBlockSize - 2]) << 16 |
                          static_cast<uint32_t>(block.data[kBlockSize - 1]) << 24;
  const uint32_t computed = Crc32c(std::span(block.data).first(kBlockSize - 4));
  if (stored != computed) {
    return Corruption("fsinfo checksum mismatch");
  }
  ByteReader r(block.data);
  FsInfo info;
  BKUP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kFsMagic) {
    return Corruption("fsinfo bad magic");
  }
  BKUP_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kFsVersion) {
    return Unsupported("fsinfo version mismatch");
  }
  BKUP_ASSIGN_OR_RETURN(info.generation, r.ReadU64());
  BKUP_ASSIGN_OR_RETURN(info.volume_blocks, r.ReadU64());
  BKUP_ASSIGN_OR_RETURN(info.max_inodes, r.ReadU32());
  BKUP_ASSIGN_OR_RETURN(info.cp_time, r.ReadI64());
  BKUP_ASSIGN_OR_RETURN(info.alloc_write_point, r.ReadU64());
  BKUP_ASSIGN_OR_RETURN(info.inode_file, InodeData::Deserialize(&r));
  BKUP_ASSIGN_OR_RETURN(info.blockmap_file, InodeData::Deserialize(&r));
  BKUP_ASSIGN_OR_RETURN(uint8_t nsnaps, r.ReadU8());
  if (nsnaps > kMaxSnapshots) {
    return Corruption("fsinfo snapshot count out of range");
  }
  for (uint8_t i = 0; i < nsnaps; ++i) {
    SnapshotInfo s;
    BKUP_ASSIGN_OR_RETURN(s.plane, r.ReadU8());
    BKUP_ASSIGN_OR_RETURN(s.name, r.ReadString());
    BKUP_ASSIGN_OR_RETURN(s.create_time, r.ReadI64());
    BKUP_ASSIGN_OR_RETURN(s.generation, r.ReadU64());
    BKUP_ASSIGN_OR_RETURN(s.inode_file, InodeData::Deserialize(&r));
    BKUP_ASSIGN_OR_RETURN(s.used_blocks, r.ReadU64());
    info.snapshots.push_back(std::move(s));
  }
  return info;
}

}  // namespace bkup

#include "src/fs/file_tree.h"

#include <algorithm>

namespace bkup {

namespace {

// Parses a 1024-entry pointer block.
void ParsePointerBlock(const Block& block, std::vector<uint32_t>* out) {
  out->resize(kPointersPerBlock);
  for (uint32_t i = 0; i < kPointersPerBlock; ++i) {
    (*out)[i] = static_cast<uint32_t>(block.data[i * 4 + 0]) |
                static_cast<uint32_t>(block.data[i * 4 + 1]) << 8 |
                static_cast<uint32_t>(block.data[i * 4 + 2]) << 16 |
                static_cast<uint32_t>(block.data[i * 4 + 3]) << 24;
  }
}

void RenderPointerBlock(const std::vector<uint32_t>& ptrs, size_t first,
                        Block* out) {
  out->Zero();
  const size_t count = std::min<size_t>(kPointersPerBlock,
                                        ptrs.size() > first
                                            ? ptrs.size() - first
                                            : 0);
  for (size_t i = 0; i < count; ++i) {
    const uint32_t p = ptrs[first + i];
    out->data[i * 4 + 0] = static_cast<uint8_t>(p);
    out->data[i * 4 + 1] = static_cast<uint8_t>(p >> 8);
    out->data[i * 4 + 2] = static_cast<uint8_t>(p >> 16);
    out->data[i * 4 + 3] = static_cast<uint8_t>(p >> 24);
  }
}

bool RangeAllHoles(const std::vector<uint32_t>& ptrs, size_t first,
                   size_t count) {
  const size_t end = std::min(ptrs.size(), first + count);
  for (size_t i = first; i < end; ++i) {
    if (ptrs[i] != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

Status LoadPointerMap(const ReadBlockFn& read, const InodeData& inode,
                      std::vector<uint32_t>* ptrs) {
  const uint64_t nblocks = inode.NumBlocks();
  if (nblocks > kMaxFileBlocks) {
    return Corruption("file exceeds maximum mappable size");
  }
  ptrs->assign(nblocks, 0);
  // Direct pointers.
  for (uint64_t i = 0; i < std::min<uint64_t>(nblocks, kDirectPointers); ++i) {
    (*ptrs)[i] = inode.direct[i];
  }
  // Single indirect.
  if (nblocks > kDirectPointers && inode.single_indirect != 0) {
    Block ib;
    BKUP_RETURN_IF_ERROR(read(inode.single_indirect, &ib));
    std::vector<uint32_t> entries;
    ParsePointerBlock(ib, &entries);
    const uint64_t count =
        std::min<uint64_t>(nblocks - kDirectPointers, kPointersPerBlock);
    for (uint64_t i = 0; i < count; ++i) {
      (*ptrs)[kDirectPointers + i] = entries[i];
    }
  }
  // Double indirect.
  const uint64_t dbl_base = kDirectPointers + kPointersPerBlock;
  if (nblocks > dbl_base && inode.double_indirect != 0) {
    Block l2;
    BKUP_RETURN_IF_ERROR(read(inode.double_indirect, &l2));
    std::vector<uint32_t> l2_entries;
    ParsePointerBlock(l2, &l2_entries);
    const uint64_t remaining = nblocks - dbl_base;
    const uint64_t nl1 =
        (remaining + kPointersPerBlock - 1) / kPointersPerBlock;
    for (uint64_t j = 0; j < nl1; ++j) {
      if (l2_entries[j] == 0) {
        continue;  // a whole indirect block of holes
      }
      Block l1;
      BKUP_RETURN_IF_ERROR(read(l2_entries[j], &l1));
      std::vector<uint32_t> l1_entries;
      ParsePointerBlock(l1, &l1_entries);
      const uint64_t base = dbl_base + j * kPointersPerBlock;
      const uint64_t count =
          std::min<uint64_t>(nblocks - base, kPointersPerBlock);
      for (uint64_t i = 0; i < count; ++i) {
        (*ptrs)[base + i] = l1_entries[i];
      }
    }
  }
  return Status::Ok();
}

Status StorePointerMap(const WriteBlockFn& write, const AllocBlockFn& alloc,
                       const std::vector<uint32_t>& ptrs, InodeData* inode) {
  if (ptrs.size() > kMaxFileBlocks) {
    return InvalidArgument("file exceeds maximum mappable size");
  }
  // Copy-on-write: new indirect blocks always get fresh locations, so the
  // old tree must already be detached.
  if (inode->single_indirect != 0 || inode->double_indirect != 0) {
    return FailedPrecondition(
        "StorePointerMap: detach old indirect blocks with "
        "FreeIndirectBlocks first");
  }

  // Direct pointers.
  inode->direct.fill(0);
  for (size_t i = 0; i < std::min<size_t>(ptrs.size(), kDirectPointers); ++i) {
    inode->direct[i] = ptrs[i];
  }
  inode->single_indirect = 0;
  inode->double_indirect = 0;

  // Single indirect block.
  if (ptrs.size() > kDirectPointers &&
      !RangeAllHoles(ptrs, kDirectPointers, kPointersPerBlock)) {
    BKUP_ASSIGN_OR_RETURN(Vbn v, alloc());
    Block ib;
    RenderPointerBlock(ptrs, kDirectPointers, &ib);
    BKUP_RETURN_IF_ERROR(write(v, ib));
    inode->single_indirect = static_cast<uint32_t>(v);
  }

  // Double indirect tree.
  const uint64_t dbl_base = kDirectPointers + kPointersPerBlock;
  if (ptrs.size() > dbl_base) {
    const uint64_t remaining = ptrs.size() - dbl_base;
    const uint64_t nl1 =
        (remaining + kPointersPerBlock - 1) / kPointersPerBlock;
    std::vector<uint32_t> l2_entries(kPointersPerBlock, 0);
    bool any_l1 = false;
    for (uint64_t j = 0; j < nl1; ++j) {
      const uint64_t base = dbl_base + j * kPointersPerBlock;
      if (RangeAllHoles(ptrs, base, kPointersPerBlock)) {
        continue;
      }
      BKUP_ASSIGN_OR_RETURN(Vbn v, alloc());
      Block l1;
      RenderPointerBlock(ptrs, base, &l1);
      BKUP_RETURN_IF_ERROR(write(v, l1));
      l2_entries[j] = static_cast<uint32_t>(v);
      any_l1 = true;
    }
    if (any_l1) {
      BKUP_ASSIGN_OR_RETURN(Vbn v, alloc());
      Block l2;
      l2.Zero();
      for (uint32_t i = 0; i < kPointersPerBlock; ++i) {
        const uint32_t p = l2_entries[i];
        l2.data[i * 4 + 0] = static_cast<uint8_t>(p);
        l2.data[i * 4 + 1] = static_cast<uint8_t>(p >> 8);
        l2.data[i * 4 + 2] = static_cast<uint8_t>(p >> 16);
        l2.data[i * 4 + 3] = static_cast<uint8_t>(p >> 24);
      }
      BKUP_RETURN_IF_ERROR(write(v, l2));
      inode->double_indirect = static_cast<uint32_t>(v);
    }
  }
  return Status::Ok();
}

Status FreeIndirectBlocks(const ReadBlockFn& read,
                          const FreeBlockFn& free_block, InodeData* inode) {
  if (inode->single_indirect != 0) {
    free_block(inode->single_indirect);
    inode->single_indirect = 0;
  }
  if (inode->double_indirect != 0) {
    Block l2;
    BKUP_RETURN_IF_ERROR(read(inode->double_indirect, &l2));
    std::vector<uint32_t> l2_entries;
    ParsePointerBlock(l2, &l2_entries);
    for (uint32_t p : l2_entries) {
      if (p != 0) {
        free_block(p);
      }
    }
    free_block(inode->double_indirect);
    inode->double_indirect = 0;
  }
  return Status::Ok();
}

Status ForEachDataBlock(const ReadBlockFn& read, const InodeData& inode,
                        const std::function<void(uint64_t, Vbn)>& fn) {
  std::vector<uint32_t> ptrs;
  BKUP_RETURN_IF_ERROR(LoadPointerMap(read, inode, &ptrs));
  for (uint64_t fbn = 0; fbn < ptrs.size(); ++fbn) {
    if (ptrs[fbn] != 0) {
      fn(fbn, ptrs[fbn]);
    }
  }
  return Status::Ok();
}

Status ForEachIndirectBlock(const ReadBlockFn& read, const InodeData& inode,
                            const std::function<void(Vbn)>& fn) {
  if (inode.single_indirect != 0) {
    fn(inode.single_indirect);
  }
  if (inode.double_indirect != 0) {
    Block l2;
    BKUP_RETURN_IF_ERROR(read(inode.double_indirect, &l2));
    std::vector<uint32_t> entries;
    ParsePointerBlock(l2, &entries);
    for (uint32_t p : entries) {
      if (p != 0) {
        fn(p);
      }
    }
    fn(inode.double_indirect);
  }
  return Status::Ok();
}

}  // namespace bkup

// On-disk layout of the WAFL-like file system.
//
// The design follows Section 2 of the paper:
//   * 4 KB blocks, no fragments.
//   * Inodes describe files; directories are specially formatted files.
//   * The two key meta-data *files* are the inode file (all inodes) and the
//     free-block bitmap file (32 bit planes per block: the active file
//     system plus up to 31 snapshots; we cap snapshots at 20 as WAFL does).
//   * Everything is written anywhere, copy-on-write, except the root
//     structure (fsinfo) which lives at two fixed, redundant locations.
//
// Deviation from WAFL (documented in DESIGN.md): the inodes describing the
// inode file and the block-map file are stored in the fsinfo block rather
// than at reserved inums inside the inode file. This removes a bootstrap
// cycle without changing any behaviour the paper measures.
#ifndef BKUP_FS_LAYOUT_H_
#define BKUP_FS_LAYOUT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/block/block.h"
#include "src/util/serdes.h"
#include "src/util/status.h"

namespace bkup {

// ------------------------------------------------------------- constants ---

inline constexpr uint32_t kFsMagic = 0x57AF1B99;  // "WAFL-ish, 1999"
inline constexpr uint32_t kFsVersion = 1;

// fsinfo lives at these two volume blocks; they are never allocatable.
inline constexpr Vbn kFsInfoPrimary = 0;
inline constexpr Vbn kFsInfoBackup = 1;
inline constexpr Vbn kFirstAllocatableVbn = 2;

// Bit planes in the block map: plane 0 is the active file system; planes
// 1..kMaxSnapshots hold snapshots. 32 bits per block, as in the paper.
inline constexpr int kBlockMapPlanes = 32;
inline constexpr int kActivePlane = 0;
inline constexpr int kMaxSnapshots = 20;

inline constexpr uint32_t kInodeSize = 128;
inline constexpr uint32_t kInodesPerBlock = kBlockSize / kInodeSize;  // 32

// Inode block pointer geometry: 16 direct, one single-indirect, one
// double-indirect; pointers are 32-bit vbns (0 == hole / absent, which is
// safe because vbn 0 is fsinfo).
inline constexpr int kDirectPointers = 16;
inline constexpr uint32_t kPointersPerBlock = kBlockSize / 4;  // 1024
inline constexpr uint64_t kMaxFileBlocks =
    kDirectPointers + kPointersPerBlock +
    static_cast<uint64_t>(kPointersPerBlock) * kPointersPerBlock;

using Inum = uint32_t;
inline constexpr Inum kInvalidInum = 0;
inline constexpr Inum kReservedInum = 1;  // historical, never allocated
inline constexpr Inum kRootDirInum = 2;   // root of the namespace

inline constexpr size_t kMaxNameLen = 255;
inline constexpr size_t kMaxSnapshotNameLen = 32;

// ----------------------------------------------------------------- inode ---

enum class InodeType : uint8_t {
  kFree = 0,
  kFile = 1,
  kDirectory = 2,
  kSymlink = 3,
};

// The on-disk inode. Serialized form is exactly kInodeSize bytes.
struct InodeData {
  InodeType type = InodeType::kFree;
  uint16_t nlink = 0;
  uint16_t mode = 0;     // permission bits
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint64_t size = 0;     // bytes
  int64_t mtime = 0;     // simulated-time stamps
  int64_t ctime = 0;
  int64_t atime = 0;
  uint32_t generation = 0;  // bumped on every reuse of the inum
  std::array<uint32_t, kDirectPointers> direct{};
  uint32_t single_indirect = 0;
  uint32_t double_indirect = 0;

  bool in_use() const { return type != InodeType::kFree; }
  uint64_t NumBlocks() const { return (size + kBlockSize - 1) / kBlockSize; }

  void SerializeTo(ByteWriter* writer) const;
  static Result<InodeData> Deserialize(ByteReader* reader);
};

// ------------------------------------------------------------- directory ---

struct DirEntry {
  Inum inum = kInvalidInum;
  InodeType type = InodeType::kFree;
  std::string name;
};

// Directory file content: a packed sequence of entries, "file name followed
// by the inode number" as the paper describes the dump directory format.
std::vector<uint8_t> SerializeDirectory(const std::vector<DirEntry>& entries);
Result<std::vector<DirEntry>> ParseDirectory(std::span<const uint8_t> bytes);

// ---------------------------------------------------------------- fsinfo ---

struct SnapshotInfo {
  uint8_t plane = 0;  // bit plane in the block map (1..kMaxSnapshots)
  std::string name;
  int64_t create_time = 0;
  uint64_t generation = 0;   // CP generation the snapshot captured
  InodeData inode_file;      // root of the snapshot's tree
  uint64_t used_blocks = 0;  // blocks referenced by this snapshot's plane
};

// The root structure. "Since the root data structure is only 128 bytes" in
// WAFL; ours is larger because it embeds the snapshot table, but it still
// fits one block and is written redundantly at two fixed locations.
struct FsInfo {
  uint64_t generation = 0;  // consistency-point counter
  uint64_t volume_blocks = 0;
  uint32_t max_inodes = 0;
  int64_t cp_time = 0;
  uint64_t alloc_write_point = kFirstAllocatableVbn;  // allocator resume point
  InodeData inode_file;     // inode describing the inode file
  InodeData blockmap_file;  // inode describing the block-map file
  std::vector<SnapshotInfo> snapshots;

  // Serializes into one 4 KB block with a trailing CRC-32C.
  Result<Block> SerializeToBlock() const;
  static Result<FsInfo> DeserializeFromBlock(const Block& block);
};

}  // namespace bkup

#endif  // BKUP_FS_LAYOUT_H_

#include "src/fs/reader.h"

#include <algorithm>
#include <cstring>

namespace bkup {

FsReader::FsReader(Volume* volume, InodeData inode_file_root,
                   uint32_t max_inodes)
    : volume_(volume),
      inode_file_root_(inode_file_root),
      max_inodes_(max_inodes) {}

Status FsReader::ReadRaw(Vbn vbn, Block* out) const {
  return volume_->ReadBlock(vbn, out);
}

Result<InodeData> FsReader::ReadInode(Inum inum) const {
  if (inum >= max_inodes_) {
    return InodeData{};  // beyond the inode file: free
  }
  if (!inode_file_ptrs_loaded_) {
    auto read = [this](Vbn v, Block* b) { return ReadRaw(v, b); };
    BKUP_RETURN_IF_ERROR(
        LoadPointerMap(read, inode_file_root_, &inode_file_ptrs_));
    inode_file_ptrs_loaded_ = true;
  }
  const uint64_t fbn = inum / kInodesPerBlock;
  if (fbn >= inode_file_ptrs_.size() || inode_file_ptrs_[fbn] == 0) {
    return InodeData{};  // hole in the inode file: all inodes free
  }
  Block block;
  BKUP_RETURN_IF_ERROR(ReadRaw(inode_file_ptrs_[fbn], &block));
  const size_t offset = (inum % kInodesPerBlock) * kInodeSize;
  ByteReader r(std::span(block.data).subspan(offset, kInodeSize));
  return InodeData::Deserialize(&r);
}

Status FsReader::ReadFileBlock(const InodeData& inode, uint64_t fbn,
                               Block* out, Vbn* vbn_out) const {
  std::vector<uint32_t> ptrs;
  auto read = [this](Vbn v, Block* b) { return ReadRaw(v, b); };
  BKUP_RETURN_IF_ERROR(LoadPointerMap(read, inode, &ptrs));
  if (fbn >= ptrs.size() || ptrs[fbn] == 0) {
    out->Zero();
    if (vbn_out != nullptr) {
      *vbn_out = 0;
    }
    return Status::Ok();
  }
  if (vbn_out != nullptr) {
    *vbn_out = ptrs[fbn];
  }
  return ReadRaw(ptrs[fbn], out);
}

Status FsReader::ReadFile(const InodeData& inode, uint64_t offset,
                          uint64_t length, std::vector<uint8_t>* out,
                          std::vector<Vbn>* vbns) const {
  out->clear();
  if (offset >= inode.size) {
    return Status::Ok();
  }
  length = std::min(length, inode.size - offset);
  out->reserve(length);

  std::vector<uint32_t> ptrs;
  auto read = [this](Vbn v, Block* b) { return ReadRaw(v, b); };
  BKUP_RETURN_IF_ERROR(LoadPointerMap(read, inode, &ptrs));

  uint64_t pos = offset;
  Block block;
  while (pos < offset + length) {
    const uint64_t fbn = pos / kBlockSize;
    const uint64_t in_block = pos % kBlockSize;
    const uint64_t n =
        std::min<uint64_t>(kBlockSize - in_block, offset + length - pos);
    if (fbn >= ptrs.size() || ptrs[fbn] == 0) {
      out->insert(out->end(), n, 0);
    } else {
      BKUP_RETURN_IF_ERROR(ReadRaw(ptrs[fbn], &block));
      out->insert(out->end(), block.data.begin() + static_cast<long>(in_block),
                  block.data.begin() + static_cast<long>(in_block + n));
      if (vbns != nullptr) {
        vbns->push_back(ptrs[fbn]);
      }
    }
    pos += n;
  }
  return Status::Ok();
}

Result<std::vector<uint32_t>> FsReader::PointerMap(
    const InodeData& inode) const {
  std::vector<uint32_t> ptrs;
  auto read = [this](Vbn v, Block* b) { return ReadRaw(v, b); };
  BKUP_RETURN_IF_ERROR(LoadPointerMap(read, inode, &ptrs));
  return ptrs;
}

Vbn FsReader::InodeFileVbn(Inum inum) const {
  if (inum >= max_inodes_ || !inode_file_ptrs_loaded_) {
    // Force the lazy load through ReadInode's path.
    Result<InodeData> unused = ReadInode(std::min(inum, max_inodes_ - 1));
    (void)unused;
  }
  const uint64_t fbn = inum / kInodesPerBlock;
  if (fbn >= inode_file_ptrs_.size()) {
    return 0;
  }
  return inode_file_ptrs_[fbn];
}

Result<std::vector<DirEntry>> FsReader::ReadDir(const InodeData& inode) const {
  if (inode.type != InodeType::kDirectory) {
    return NotADirectory("ReadDir of a non-directory inode");
  }
  std::vector<uint8_t> bytes;
  BKUP_RETURN_IF_ERROR(ReadFile(inode, 0, inode.size, &bytes));
  return ParseDirectory(bytes);
}

Result<std::vector<DirEntry>> FsReader::ReadDirInum(Inum inum) const {
  BKUP_ASSIGN_OR_RETURN(InodeData inode, ReadInode(inum));
  if (!inode.in_use()) {
    return NotFound("directory inode not in use");
  }
  return ReadDir(inode);
}

Result<Inum> FsReader::LookupPath(const std::string& path) const {
  BKUP_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  Inum current = kRootDirInum;
  for (const std::string& part : parts) {
    BKUP_ASSIGN_OR_RETURN(InodeData dir, ReadInode(current));
    if (!dir.in_use()) {
      return NotFound("dangling directory inode in path");
    }
    if (dir.type != InodeType::kDirectory) {
      return NotADirectory("'" + part + "': parent is not a directory");
    }
    BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, ReadDir(dir));
    const auto it =
        std::find_if(entries.begin(), entries.end(),
                     [&part](const DirEntry& e) { return e.name == part; });
    if (it == entries.end()) {
      return NotFound("'" + part + "' not found");
    }
    current = it->inum;
  }
  return current;
}

Result<std::vector<std::string>> SplitPath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgument("path must be absolute: '" + path + "'");
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) {
      j = path.size();
    }
    if (j == i) {
      return InvalidArgument("empty path component in '" + path + "'");
    }
    const std::string part = path.substr(i, j - i);
    if (part.size() > kMaxNameLen) {
      return InvalidArgument("name too long in '" + path + "'");
    }
    if (part == "." || part == "..") {
      return InvalidArgument("'.' and '..' are not supported in paths");
    }
    parts.push_back(part);
    i = j + 1;
  }
  return parts;
}

}  // namespace bkup

// Loading and storing a file's block-pointer tree (direct, single- and
// double-indirect blocks).
//
// While a file is being mutated, the live file system works with a flat
// in-memory pointer map (one vbn per file block, 0 == hole). These helpers
// translate between that map and the on-disk indirect-block structure:
// `LoadPointerMap` walks indirect blocks into the flat form, and
// `StorePointerMap` writes the flat form back out copy-on-write, allocating
// fresh indirect blocks and freeing the old ones.
#ifndef BKUP_FS_FILE_TREE_H_
#define BKUP_FS_FILE_TREE_H_

#include <functional>
#include <vector>

#include "src/block/block.h"
#include "src/fs/layout.h"
#include "src/util/status.h"

namespace bkup {

using ReadBlockFn = std::function<Status(Vbn, Block*)>;
using WriteBlockFn = std::function<Status(Vbn, const Block&)>;
using AllocBlockFn = std::function<Result<Vbn>()>;
using FreeBlockFn = std::function<void(Vbn)>;

// Reads the pointer map of `inode` into `ptrs` (resized to the file's block
// count). Hole pointers load as 0.
Status LoadPointerMap(const ReadBlockFn& read, const InodeData& inode,
                      std::vector<uint32_t>* ptrs);

// Writes `ptrs` back into `inode`'s direct/indirect fields, materializing
// indirect blocks copy-on-write: every needed indirect block is freshly
// allocated and written via `write`. The caller must detach (free) the old
// indirect blocks with FreeIndirectBlocks first. Indirect blocks that would
// contain only holes are elided (sparse indirect trees).
Status StorePointerMap(const WriteBlockFn& write, const AllocBlockFn& alloc,
                       const std::vector<uint32_t>& ptrs, InodeData* inode);

// Frees every indirect block attached to `inode` (not the data blocks) and
// clears its pointer fields. Used by truncate-to-zero and unlink.
Status FreeIndirectBlocks(const ReadBlockFn& read,
                          const FreeBlockFn& free_block, InodeData* inode);

// Enumerates the vbn of every data block of `inode` in file order by reading
// indirect blocks; invokes fn(fbn, vbn) for non-hole blocks only.
Status ForEachDataBlock(const ReadBlockFn& read, const InodeData& inode,
                        const std::function<void(uint64_t, Vbn)>& fn);

// Enumerates the vbns of the indirect blocks themselves (metadata blocks).
Status ForEachIndirectBlock(const ReadBlockFn& read, const InodeData& inode,
                            const std::function<void(Vbn)>& fn);

}  // namespace bkup

#endif  // BKUP_FS_FILE_TREE_H_

#include "src/fs/filesystem.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace bkup {

namespace {

// NVRAM log record opcodes.
enum class NvOp : uint8_t {
  kCreate = 1,
  kMkdir = 2,
  kSymlink = 3,
  kLink = 4,
  kUnlink = 5,
  kRmdir = 6,
  kRename = 7,
  kWrite = 8,
  kTruncate = 9,
  kSetAttr = 10,
};

uint16_t DefaultDirMode() { return 0755; }

}  // namespace

Filesystem::Filesystem(Volume* volume, SimEnvironment* env, NvramLog* nvram)
    : volume_(volume),
      env_(env),
      nvram_(nvram),
      blockmap_(volume->num_blocks()),
      allocator_(&blockmap_) {}

// ===================================================================== setup

Result<std::unique_ptr<Filesystem>> Filesystem::Format(Volume* volume,
                                                       SimEnvironment* env,
                                                       NvramLog* nvram,
                                                       FormatParams params) {
  if (volume->num_blocks() < 64) {
    return InvalidArgument("volume too small to format");
  }
  std::unique_ptr<Filesystem> fs(new Filesystem(volume, env, nvram));
  fs->allocator_ = WriteAllocator(&fs->blockmap_, params.alloc_policy);

  uint32_t max_inodes = params.max_inodes;
  if (max_inodes == 0) {
    max_inodes =
        static_cast<uint32_t>(std::max<uint64_t>(1024, volume->num_blocks() / 4));
  }
  // Round up to whole inode-file blocks.
  max_inodes = (max_inodes + kInodesPerBlock - 1) / kInodesPerBlock *
               kInodesPerBlock;
  fs->max_inodes_ = max_inodes;

  // The inode file: fixed size, fully sparse until inodes are written.
  fs->inode_file_inode_ = InodeData{};
  fs->inode_file_inode_.type = InodeType::kFile;
  fs->inode_file_inode_.nlink = 1;
  fs->inode_file_inode_.size =
      static_cast<uint64_t>(max_inodes) * kInodeSize;
  fs->inode_file_ptrs_.assign(fs->inode_file_inode_.NumBlocks(), 0);

  // The block-map file: fixed size = 4 bytes per volume block.
  fs->blockmap_inode_ = InodeData{};
  fs->blockmap_inode_.type = InodeType::kFile;
  fs->blockmap_inode_.nlink = 1;
  fs->blockmap_inode_.size = fs->blockmap_.FileBytes();
  fs->blockmap_ptrs_.assign(fs->blockmap_.FileBlocks(), 0);

  fs->inode_used_.Resize(max_inodes);
  fs->inode_used_.Set(kInvalidInum);
  fs->inode_used_.Set(kReservedInum);

  // Root directory.
  fs->inode_used_.Set(kRootDirInum);
  FileState root;
  root.inode.type = InodeType::kDirectory;
  root.inode.nlink = 1;
  root.inode.mode = DefaultDirMode();
  root.inode.mtime = root.inode.ctime = root.inode.atime = env->now();
  root.inode_dirty = true;
  root.ptrs_loaded = true;
  fs->files_.emplace(kRootDirInum, std::move(root));
  // Write the empty directory body.
  const std::vector<uint8_t> empty = SerializeDirectory({});
  fs->internal_dir_write_ = true;
  Status root_write = fs->DoWrite(kRootDirInum, 0, empty);
  fs->internal_dir_write_ = false;
  BKUP_RETURN_IF_ERROR(root_write);

  BKUP_RETURN_IF_ERROR(fs->ConsistencyPoint().status());
  return fs;
}

Result<std::unique_ptr<Filesystem>> Filesystem::Mount(Volume* volume,
                                                      SimEnvironment* env,
                                                      NvramLog* nvram) {
  // "WAFL always uses the most recent consistency point on disk": read the
  // primary fsinfo, falling back to the redundant copy.
  Block block;
  BKUP_RETURN_IF_ERROR(volume->ReadBlock(kFsInfoPrimary, &block));
  Result<FsInfo> info = FsInfo::DeserializeFromBlock(block);
  if (!info.ok()) {
    BKUP_RETURN_IF_ERROR(volume->ReadBlock(kFsInfoBackup, &block));
    info = FsInfo::DeserializeFromBlock(block);
    if (!info.ok()) {
      return Corruption("both fsinfo copies unreadable: " +
                        info.status().message());
    }
  }
  if (info->volume_blocks != volume->num_blocks()) {
    return Corruption("fsinfo volume size does not match this volume");
  }

  std::unique_ptr<Filesystem> fs(new Filesystem(volume, env, nvram));
  fs->generation_ = info->generation;
  fs->max_inodes_ = info->max_inodes;
  fs->inode_file_inode_ = info->inode_file;
  fs->blockmap_inode_ = info->blockmap_file;
  fs->snapshots_ = info->snapshots;
  fs->last_cp_time_ = env->now();

  // Load the block map from its file.
  auto read = [volume](Vbn v, Block* b) { return volume->ReadBlock(v, b); };
  BKUP_RETURN_IF_ERROR(
      LoadPointerMap(read, fs->blockmap_inode_, &fs->blockmap_ptrs_));
  Block bmblock;
  for (uint64_t fbn = 0; fbn < fs->blockmap_ptrs_.size(); ++fbn) {
    if (fs->blockmap_ptrs_[fbn] == 0) {
      return Corruption("block-map file has a hole");
    }
    BKUP_RETURN_IF_ERROR(volume->ReadBlock(fs->blockmap_ptrs_[fbn], &bmblock));
    fs->blockmap_.LoadFileBlock(fbn, bmblock);
  }
  fs->allocator_ = WriteAllocator(&fs->blockmap_);
  fs->allocator_.set_write_point(info->alloc_write_point);

  BKUP_RETURN_IF_ERROR(
      LoadPointerMap(read, fs->inode_file_inode_, &fs->inode_file_ptrs_));
  BKUP_RETURN_IF_ERROR(fs->LoadInodeUsage());

  // Replay any operations that survived in NVRAM.
  if (nvram != nullptr && !nvram->empty()) {
    BKUP_RETURN_IF_ERROR(fs->ReplayNvram());
    BKUP_RETURN_IF_ERROR(fs->ConsistencyPoint().status());
    nvram->Clear();
  }
  return fs;
}

Status Filesystem::LoadInodeUsage() {
  inode_used_.Resize(max_inodes_);
  inode_used_.Set(kInvalidInum);
  inode_used_.Set(kReservedInum);
  Block block;
  for (uint64_t fbn = 0; fbn < inode_file_ptrs_.size(); ++fbn) {
    if (inode_file_ptrs_[fbn] == 0) {
      continue;  // hole: 32 free inodes
    }
    BKUP_RETURN_IF_ERROR(volume_->ReadBlock(inode_file_ptrs_[fbn], &block));
    for (uint32_t i = 0; i < kInodesPerBlock; ++i) {
      ByteReader r(std::span(block.data).subspan(i * kInodeSize, kInodeSize));
      BKUP_ASSIGN_OR_RETURN(InodeData ino, InodeData::Deserialize(&r));
      if (ino.in_use()) {
        inode_used_.Set(fbn * kInodesPerBlock + i);
      }
    }
  }
  return Status::Ok();
}

// ============================================================ file loading

Result<Filesystem::FileState*> Filesystem::LoadFile(Inum inum) {
  auto it = files_.find(inum);
  if (it != files_.end()) {
    return &it->second;
  }
  if (inum >= max_inodes_) {
    return NotFound("inum out of range");
  }
  // Read the inode from the on-disk inode file.
  FileState state;
  const uint64_t fbn = inum / kInodesPerBlock;
  if (fbn < inode_file_ptrs_.size() && inode_file_ptrs_[fbn] != 0) {
    Block block;
    BKUP_RETURN_IF_ERROR(volume_->ReadBlock(inode_file_ptrs_[fbn], &block));
    ByteReader r(std::span(block.data)
                     .subspan((inum % kInodesPerBlock) * kInodeSize,
                              kInodeSize));
    BKUP_ASSIGN_OR_RETURN(state.inode, InodeData::Deserialize(&r));
  }
  auto [pos, inserted] = files_.emplace(inum, std::move(state));
  (void)inserted;
  return &pos->second;
}

Status Filesystem::EnsurePtrsLoaded(FileState* fs) {
  if (fs->ptrs_loaded) {
    return Status::Ok();
  }
  auto read = [this](Vbn v, Block* b) { return volume_->ReadBlock(v, b); };
  BKUP_RETURN_IF_ERROR(LoadPointerMap(read, fs->inode, &fs->ptrs));
  fs->ptrs_loaded = true;
  return Status::Ok();
}

Result<Inum> Filesystem::AllocateInum(InodeType type, uint16_t mode) {
  size_t found = inode_used_.FindFirstClear(next_inum_hint_);
  if (found == Bitmap::npos) {
    found = inode_used_.FindFirstClear(kRootDirInum);
  }
  if (found == Bitmap::npos) {
    return Exhausted("out of inodes");
  }
  const Inum inum = static_cast<Inum>(found);
  // Fetch the stale inode first so the generation number advances across
  // inum reuse (dump incrementals rely on this to spot replaced files).
  BKUP_ASSIGN_OR_RETURN(FileState * state, LoadFile(inum));
  const uint32_t old_generation = state->inode.generation;
  state->inode = InodeData{};
  state->inode.type = type;
  state->inode.nlink = 1;
  state->inode.mode = mode;
  state->inode.generation = old_generation + 1;
  state->inode.mtime = state->inode.ctime = state->inode.atime = env_->now();
  state->inode_dirty = true;
  state->ptrs_loaded = true;
  state->ptrs.clear();
  state->dirty_blocks.clear();
  state->ptrs_dirty = false;
  inode_used_.Set(inum);
  next_inum_hint_ = inum + 1;
  return inum;
}

void Filesystem::FreeFileBlocks(FileState* fs) {
  // Frees all on-disk blocks of the file from the active plane; pending
  // dirty blocks simply evaporate.
  if (!fs->ptrs_loaded) {
    Status st = EnsurePtrsLoaded(fs);
    assert(st.ok());
    (void)st;
  }
  for (uint32_t p : fs->ptrs) {
    if (p != 0) {
      allocator_.FreeActive(p);
    }
  }
  auto read = [this](Vbn v, Block* b) { return volume_->ReadBlock(v, b); };
  auto free_block = [this](Vbn v) { allocator_.FreeActive(v); };
  Status st = FreeIndirectBlocks(read, free_block, &fs->inode);
  assert(st.ok());
  (void)st;
  fs->ptrs.clear();
  fs->dirty_blocks.clear();
  fs->ptrs_dirty = false;
}

// =========================================================== live block read

Status Filesystem::ReadFileBlockLive(FileState* fs, uint64_t fbn, Block* out,
                                     Vbn* vbn) {
  if (vbn != nullptr) {
    *vbn = 0;  // dirty state and holes cost no disk arm
  }
  auto dirty = fs->dirty_blocks.find(fbn);
  if (dirty != fs->dirty_blocks.end()) {
    *out = dirty->second;
    return Status::Ok();
  }
  BKUP_RETURN_IF_ERROR(EnsurePtrsLoaded(fs));
  if (fbn < fs->ptrs.size() && fs->ptrs[fbn] != 0) {
    if (vbn != nullptr) {
      *vbn = fs->ptrs[fbn];
    }
    return volume_->ReadBlock(fs->ptrs[fbn], out);
  }
  out->Zero();
  return Status::Ok();
}

// ================================================================ directories

Result<std::vector<DirEntry>> Filesystem::ReadDirState(FileState* dir) {
  if (dir->inode.type != InodeType::kDirectory) {
    return NotADirectory("not a directory");
  }
  std::vector<uint8_t> bytes;
  bytes.reserve(dir->inode.size);
  Block block;
  for (uint64_t fbn = 0; fbn * kBlockSize < dir->inode.size; ++fbn) {
    BKUP_RETURN_IF_ERROR(ReadFileBlockLive(dir, fbn, &block));
    const uint64_t n =
        std::min<uint64_t>(kBlockSize, dir->inode.size - fbn * kBlockSize);
    bytes.insert(bytes.end(), block.data.begin(),
                 block.data.begin() + static_cast<long>(n));
  }
  return ParseDirectory(bytes);
}

Status Filesystem::WriteDirState(Inum dir_inum, FileState* dir,
                                 const std::vector<DirEntry>& entries) {
  const std::vector<uint8_t> bytes = SerializeDirectory(entries);
  internal_dir_write_ = true;
  Status write_status = DoWrite(dir_inum, 0, bytes);
  if (write_status.ok() && bytes.size() < dir->inode.size) {
    write_status = DoTruncate(dir_inum, bytes.size());
  }
  internal_dir_write_ = false;
  BKUP_RETURN_IF_ERROR(write_status);
  dir->inode.mtime = env_->now();
  dir->inode_dirty = true;
  return Status::Ok();
}

Result<Filesystem::ResolvedParent> Filesystem::ResolveParent(
    const std::string& path) {
  BKUP_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return InvalidArgument("path names the root directory");
  }
  Inum current = kRootDirInum;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    BKUP_ASSIGN_OR_RETURN(FileState * dir, LoadFile(current));
    if (!dir->inode.in_use()) {
      return NotFound("path component missing");
    }
    BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, ReadDirState(dir));
    const auto it = std::find_if(
        entries.begin(), entries.end(),
        [&parts, i](const DirEntry& e) { return e.name == parts[i]; });
    if (it == entries.end()) {
      return NotFound("'" + parts[i] + "' not found");
    }
    current = it->inum;
  }
  return ResolvedParent{current, parts.back()};
}

Result<Inum> Filesystem::LookupLocked(const std::string& path) {
  BKUP_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  Inum current = kRootDirInum;
  for (const std::string& part : parts) {
    BKUP_ASSIGN_OR_RETURN(FileState * dir, LoadFile(current));
    if (!dir->inode.in_use()) {
      return NotFound("path component missing");
    }
    BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, ReadDirState(dir));
    const auto it =
        std::find_if(entries.begin(), entries.end(),
                     [&part](const DirEntry& e) { return e.name == part; });
    if (it == entries.end()) {
      return NotFound("'" + part + "' not found");
    }
    current = it->inum;
  }
  return current;
}

// ========================================================== namespace ops

Result<Inum> Filesystem::DoCreate(const std::string& path, InodeType type,
                                  uint16_t mode,
                                  const std::string& symlink_target) {
  BKUP_ASSIGN_OR_RETURN(ResolvedParent rp, ResolveParent(path));
  BKUP_ASSIGN_OR_RETURN(FileState * parent, LoadFile(rp.parent));
  BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, ReadDirState(parent));
  for (const DirEntry& e : entries) {
    if (e.name == rp.leaf) {
      return AlreadyExists("'" + path + "' exists");
    }
  }
  BKUP_ASSIGN_OR_RETURN(Inum inum, AllocateInum(type, mode));
  entries.push_back(DirEntry{inum, type, rp.leaf});
  // Reload the parent pointer: AllocateInum may have rehashed files_.
  BKUP_ASSIGN_OR_RETURN(parent, LoadFile(rp.parent));
  BKUP_RETURN_IF_ERROR(WriteDirState(rp.parent, parent, entries));
  if (type == InodeType::kDirectory) {
    const std::vector<uint8_t> empty = SerializeDirectory({});
    internal_dir_write_ = true;
    Status body_write = DoWrite(inum, 0, empty);
    internal_dir_write_ = false;
    BKUP_RETURN_IF_ERROR(body_write);
  } else if (type == InodeType::kSymlink) {
    const auto* data =
        reinterpret_cast<const uint8_t*>(symlink_target.data());
    BKUP_RETURN_IF_ERROR(
        DoWrite(inum, 0, std::span(data, symlink_target.size())));
  }
  return inum;
}

Result<Inum> Filesystem::Create(const std::string& path, uint16_t mode) {
  BKUP_ASSIGN_OR_RETURN(Inum inum, DoCreate(path, InodeType::kFile, mode, ""));
  if (!replaying_) {
    std::vector<uint8_t> rec;
    ByteWriter w(&rec);
    w.PutU8(static_cast<uint8_t>(NvOp::kCreate));
    w.PutString(path);
    w.PutU16(mode);
    LogOp(std::move(rec));
    MaybeAutoCp();
  }
  return inum;
}

Result<Inum> Filesystem::Mkdir(const std::string& path, uint16_t mode) {
  BKUP_ASSIGN_OR_RETURN(Inum inum,
                        DoCreate(path, InodeType::kDirectory, mode, ""));
  if (!replaying_) {
    std::vector<uint8_t> rec;
    ByteWriter w(&rec);
    w.PutU8(static_cast<uint8_t>(NvOp::kMkdir));
    w.PutString(path);
    w.PutU16(mode);
    LogOp(std::move(rec));
    MaybeAutoCp();
  }
  return inum;
}

Result<Inum> Filesystem::SymlinkAt(const std::string& target,
                                   const std::string& path) {
  BKUP_ASSIGN_OR_RETURN(Inum inum,
                        DoCreate(path, InodeType::kSymlink, 0777, target));
  if (!replaying_) {
    std::vector<uint8_t> rec;
    ByteWriter w(&rec);
    w.PutU8(static_cast<uint8_t>(NvOp::kSymlink));
    w.PutString(target);
    w.PutString(path);
    LogOp(std::move(rec));
    MaybeAutoCp();
  }
  return inum;
}

Status Filesystem::DoLink(const std::string& existing,
                          const std::string& new_path) {
  BKUP_ASSIGN_OR_RETURN(Inum target, LookupLocked(existing));
  BKUP_ASSIGN_OR_RETURN(FileState * tstate, LoadFile(target));
  if (tstate->inode.type == InodeType::kDirectory) {
    return IsADirectory("cannot hard-link a directory");
  }
  BKUP_ASSIGN_OR_RETURN(ResolvedParent rp, ResolveParent(new_path));
  BKUP_ASSIGN_OR_RETURN(FileState * parent, LoadFile(rp.parent));
  BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, ReadDirState(parent));
  for (const DirEntry& e : entries) {
    if (e.name == rp.leaf) {
      return AlreadyExists("'" + new_path + "' exists");
    }
  }
  entries.push_back(DirEntry{target, tstate->inode.type, rp.leaf});
  BKUP_RETURN_IF_ERROR(WriteDirState(rp.parent, parent, entries));
  BKUP_ASSIGN_OR_RETURN(tstate, LoadFile(target));
  tstate->inode.nlink++;
  tstate->inode.ctime = env_->now();
  tstate->inode_dirty = true;
  return Status::Ok();
}

Status Filesystem::Link(const std::string& existing,
                        const std::string& new_path) {
  BKUP_RETURN_IF_ERROR(DoLink(existing, new_path));
  if (!replaying_) {
    std::vector<uint8_t> rec;
    ByteWriter w(&rec);
    w.PutU8(static_cast<uint8_t>(NvOp::kLink));
    w.PutString(existing);
    w.PutString(new_path);
    LogOp(std::move(rec));
    MaybeAutoCp();
  }
  return Status::Ok();
}

Status Filesystem::DoUnlink(const std::string& path, bool must_be_dir) {
  BKUP_ASSIGN_OR_RETURN(ResolvedParent rp, ResolveParent(path));
  BKUP_ASSIGN_OR_RETURN(FileState * parent, LoadFile(rp.parent));
  BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, ReadDirState(parent));
  const auto it =
      std::find_if(entries.begin(), entries.end(),
                   [&rp](const DirEntry& e) { return e.name == rp.leaf; });
  if (it == entries.end()) {
    return NotFound("'" + path + "' not found");
  }
  const Inum inum = it->inum;
  BKUP_ASSIGN_OR_RETURN(FileState * state, LoadFile(inum));
  if (must_be_dir) {
    if (state->inode.type != InodeType::kDirectory) {
      return NotADirectory("'" + path + "' is not a directory");
    }
    BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> children, ReadDirState(state));
    if (!children.empty()) {
      return NotEmpty("'" + path + "' is not empty");
    }
  } else if (state->inode.type == InodeType::kDirectory) {
    return IsADirectory("'" + path + "' is a directory; use Rmdir");
  }

  entries.erase(it);
  BKUP_ASSIGN_OR_RETURN(parent, LoadFile(rp.parent));
  BKUP_RETURN_IF_ERROR(WriteDirState(rp.parent, parent, entries));

  BKUP_ASSIGN_OR_RETURN(state, LoadFile(inum));
  if (state->inode.nlink > 1 && !must_be_dir) {
    state->inode.nlink--;
    state->inode.ctime = env_->now();
    state->inode_dirty = true;
    return Status::Ok();
  }
  // Last link: release the file's blocks; the inode slot becomes free but
  // keeps its generation for reuse detection.
  FreeFileBlocks(state);
  const uint32_t generation = state->inode.generation;
  state->inode = InodeData{};
  state->inode.generation = generation;
  state->inode_dirty = true;
  state->ptrs_loaded = true;
  inode_used_.Clear(inum);
  if (inum < next_inum_hint_) {
    next_inum_hint_ = inum;
  }
  return Status::Ok();
}

Status Filesystem::Unlink(const std::string& path) {
  BKUP_RETURN_IF_ERROR(DoUnlink(path, /*must_be_dir=*/false));
  if (!replaying_) {
    std::vector<uint8_t> rec;
    ByteWriter w(&rec);
    w.PutU8(static_cast<uint8_t>(NvOp::kUnlink));
    w.PutString(path);
    LogOp(std::move(rec));
    MaybeAutoCp();
  }
  return Status::Ok();
}

Status Filesystem::Rmdir(const std::string& path) {
  BKUP_RETURN_IF_ERROR(DoUnlink(path, /*must_be_dir=*/true));
  if (!replaying_) {
    std::vector<uint8_t> rec;
    ByteWriter w(&rec);
    w.PutU8(static_cast<uint8_t>(NvOp::kRmdir));
    w.PutString(path);
    LogOp(std::move(rec));
    MaybeAutoCp();
  }
  return Status::Ok();
}

Status Filesystem::DoRename(const std::string& from, const std::string& to) {
  if (to.size() > from.size() && to.compare(0, from.size(), from) == 0 &&
      to[from.size()] == '/') {
    return InvalidArgument("cannot move a directory into itself");
  }
  BKUP_ASSIGN_OR_RETURN(ResolvedParent src, ResolveParent(from));
  BKUP_ASSIGN_OR_RETURN(FileState * src_parent, LoadFile(src.parent));
  BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> src_entries,
                        ReadDirState(src_parent));
  const auto src_it =
      std::find_if(src_entries.begin(), src_entries.end(),
                   [&src](const DirEntry& e) { return e.name == src.leaf; });
  if (src_it == src_entries.end()) {
    return NotFound("'" + from + "' not found");
  }
  const DirEntry moving = *src_it;

  // If the destination exists, it must be replaceable.
  Result<Inum> existing = LookupLocked(to);
  if (existing.ok()) {
    BKUP_ASSIGN_OR_RETURN(FileState * old, LoadFile(*existing));
    const bool old_is_dir = old->inode.type == InodeType::kDirectory;
    const bool new_is_dir = moving.type == InodeType::kDirectory;
    if (old_is_dir != new_is_dir) {
      return old_is_dir ? IsADirectory("rename target is a directory")
                        : NotADirectory("rename target is not a directory");
    }
    BKUP_RETURN_IF_ERROR(DoUnlink(to, old_is_dir));
  }

  // Remove the source entry.
  {
    BKUP_ASSIGN_OR_RETURN(FileState * p, LoadFile(src.parent));
    BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, ReadDirState(p));
    const auto it = std::find_if(
        entries.begin(), entries.end(),
        [&src](const DirEntry& e) { return e.name == src.leaf; });
    if (it == entries.end()) {
      return NotFound("source vanished during rename");
    }
    entries.erase(it);
    BKUP_RETURN_IF_ERROR(WriteDirState(src.parent, p, entries));
  }
  // Add the destination entry.
  {
    BKUP_ASSIGN_OR_RETURN(ResolvedParent dst, ResolveParent(to));
    BKUP_ASSIGN_OR_RETURN(FileState * p, LoadFile(dst.parent));
    BKUP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, ReadDirState(p));
    entries.push_back(DirEntry{moving.inum, moving.type, dst.leaf});
    BKUP_RETURN_IF_ERROR(WriteDirState(dst.parent, p, entries));
  }
  BKUP_ASSIGN_OR_RETURN(FileState * moved, LoadFile(moving.inum));
  moved->inode.ctime = env_->now();
  moved->inode_dirty = true;
  return Status::Ok();
}

Status Filesystem::Rename(const std::string& from, const std::string& to) {
  BKUP_RETURN_IF_ERROR(DoRename(from, to));
  if (!replaying_) {
    std::vector<uint8_t> rec;
    ByteWriter w(&rec);
    w.PutU8(static_cast<uint8_t>(NvOp::kRename));
    w.PutString(from);
    w.PutString(to);
    LogOp(std::move(rec));
    MaybeAutoCp();
  }
  return Status::Ok();
}

Result<Inum> Filesystem::LookupPath(const std::string& path) {
  return LookupLocked(path);
}

Result<std::vector<DirEntry>> Filesystem::ReadDir(Inum dir) {
  BKUP_ASSIGN_OR_RETURN(FileState * state, LoadFile(dir));
  if (!state->inode.in_use()) {
    return NotFound("no such directory inode");
  }
  return ReadDirState(state);
}

Result<std::string> Filesystem::ReadSymlink(Inum inum) {
  BKUP_ASSIGN_OR_RETURN(FileState * state, LoadFile(inum));
  if (state->inode.type != InodeType::kSymlink) {
    return InvalidArgument("not a symlink");
  }
  std::vector<uint8_t> bytes;
  BKUP_RETURN_IF_ERROR(Read(inum, 0, state->inode.size, &bytes));
  return std::string(bytes.begin(), bytes.end());
}

// ================================================================= file ops

Result<InodeData> Filesystem::GetAttr(Inum inum) {
  BKUP_ASSIGN_OR_RETURN(FileState * state, LoadFile(inum));
  if (!state->inode.in_use()) {
    return NotFound("inode not in use");
  }
  return state->inode;
}

Status Filesystem::DoSetAttr(Inum inum, const SetAttrRequest& request) {
  BKUP_ASSIGN_OR_RETURN(FileState * state, LoadFile(inum));
  if (!state->inode.in_use()) {
    return NotFound("inode not in use");
  }
  if (request.mode) {
    state->inode.mode = *request.mode;
  }
  if (request.uid) {
    state->inode.uid = *request.uid;
  }
  if (request.gid) {
    state->inode.gid = *request.gid;
  }
  if (request.mtime) {
    state->inode.mtime = *request.mtime;
  }
  if (request.atime) {
    state->inode.atime = *request.atime;
  }
  state->inode.ctime = env_->now();
  state->inode_dirty = true;
  return Status::Ok();
}

Status Filesystem::SetAttr(Inum inum, const SetAttrRequest& request) {
  BKUP_RETURN_IF_ERROR(DoSetAttr(inum, request));
  if (!replaying_) {
    std::vector<uint8_t> rec;
    ByteWriter w(&rec);
    w.PutU8(static_cast<uint8_t>(NvOp::kSetAttr));
    w.PutU32(inum);
    w.PutU8((request.mode ? 1 : 0) | (request.uid ? 2 : 0) |
            (request.gid ? 4 : 0) | (request.mtime ? 8 : 0) |
            (request.atime ? 16 : 0));
    w.PutU16(request.mode.value_or(0));
    w.PutU32(request.uid.value_or(0));
    w.PutU32(request.gid.value_or(0));
    w.PutI64(request.mtime.value_or(0));
    w.PutI64(request.atime.value_or(0));
    LogOp(std::move(rec));
    MaybeAutoCp();
  }
  return Status::Ok();
}

Status Filesystem::DoWrite(Inum inum, uint64_t offset,
                           std::span<const uint8_t> data) {
  BKUP_ASSIGN_OR_RETURN(FileState * state, LoadFile(inum));
  if (!state->inode.in_use()) {
    return NotFound("inode not in use");
  }
  if (state->inode.type == InodeType::kDirectory && !internal_dir_write_) {
    // Directories are mutated through the namespace operations only; a raw
    // Write would corrupt the directory format.
    return IsADirectory("cannot Write to a directory");
  }
  const uint64_t end = offset + data.size();
  if ((end + kBlockSize - 1) / kBlockSize > kMaxFileBlocks) {
    return NoSpace("file would exceed maximum size");
  }
  BKUP_RETURN_IF_ERROR(EnsurePtrsLoaded(state));
  if (end > state->inode.size) {
    state->inode.size = end;
    state->ptrs.resize(state->inode.NumBlocks(), 0);
    state->ptrs_dirty = true;
  }
  uint64_t pos = offset;
  size_t consumed = 0;
  while (pos < end) {
    const uint64_t fbn = pos / kBlockSize;
    const uint64_t in_block = pos % kBlockSize;
    const uint64_t n = std::min<uint64_t>(kBlockSize - in_block, end - pos);
    auto it = state->dirty_blocks.find(fbn);
    if (it == state->dirty_blocks.end()) {
      Block base;
      if (n == kBlockSize) {
        base.Zero();  // full overwrite: no read-modify-write needed
      } else {
        BKUP_RETURN_IF_ERROR(ReadFileBlockLive(state, fbn, &base));
      }
      it = state->dirty_blocks.emplace(fbn, base).first;
    }
    std::memcpy(it->second.data.data() + in_block, data.data() + consumed, n);
    pos += n;
    consumed += n;
  }
  state->inode.mtime = env_->now();
  state->inode_dirty = true;
  return Status::Ok();
}

Status Filesystem::Write(Inum inum, uint64_t offset,
                         std::span<const uint8_t> data) {
  BKUP_RETURN_IF_ERROR(DoWrite(inum, offset, data));
  if (!replaying_) {
    std::vector<uint8_t> rec;
    ByteWriter w(&rec);
    w.PutU8(static_cast<uint8_t>(NvOp::kWrite));
    w.PutU32(inum);
    w.PutU64(offset);
    w.PutU32(static_cast<uint32_t>(data.size()));
    w.PutBytes(data);
    LogOp(std::move(rec));
    MaybeAutoCp();
  }
  return Status::Ok();
}

Status Filesystem::Read(Inum inum, uint64_t offset, uint64_t length,
                        std::vector<uint8_t>* out, std::vector<Vbn>* vbns) {
  BKUP_ASSIGN_OR_RETURN(FileState * state, LoadFile(inum));
  if (!state->inode.in_use()) {
    return NotFound("inode not in use");
  }
  out->clear();
  if (offset >= state->inode.size) {
    return Status::Ok();
  }
  length = std::min(length, state->inode.size - offset);
  out->reserve(length);
  uint64_t pos = offset;
  Block block;
  while (pos < offset + length) {
    const uint64_t fbn = pos / kBlockSize;
    const uint64_t in_block = pos % kBlockSize;
    const uint64_t n =
        std::min<uint64_t>(kBlockSize - in_block, offset + length - pos);
    Vbn vbn = 0;
    BKUP_RETURN_IF_ERROR(ReadFileBlockLive(state, fbn, &block, &vbn));
    if (vbns != nullptr && vbn != 0) {
      vbns->push_back(vbn);
    }
    out->insert(out->end(), block.data.begin() + static_cast<long>(in_block),
                block.data.begin() + static_cast<long>(in_block + n));
    pos += n;
  }
  state->inode.atime = env_->now();
  return Status::Ok();
}

Status Filesystem::DoTruncate(Inum inum, uint64_t new_size) {
  BKUP_ASSIGN_OR_RETURN(FileState * state, LoadFile(inum));
  if (!state->inode.in_use()) {
    return NotFound("inode not in use");
  }
  BKUP_RETURN_IF_ERROR(EnsurePtrsLoaded(state));
  if (new_size >= state->inode.size) {
    // Extension: the new tail is a hole.
    if ((new_size + kBlockSize - 1) / kBlockSize > kMaxFileBlocks) {
      return NoSpace("file would exceed maximum size");
    }
    state->inode.size = new_size;
    state->ptrs.resize(state->inode.NumBlocks(), 0);
  } else {
    const uint64_t keep_blocks = (new_size + kBlockSize - 1) / kBlockSize;
    for (uint64_t fbn = keep_blocks; fbn < state->ptrs.size(); ++fbn) {
      if (state->ptrs[fbn] != 0) {
        allocator_.FreeActive(state->ptrs[fbn]);
      }
      state->dirty_blocks.erase(fbn);
    }
    state->ptrs.resize(keep_blocks, 0);
    state->inode.size = new_size;
    // Zero the now-dead tail of the final partial block so later extensions
    // read zeros.
    const uint64_t tail = new_size % kBlockSize;
    if (tail != 0 && keep_blocks > 0) {
      Block last;
      BKUP_RETURN_IF_ERROR(ReadFileBlockLive(state, keep_blocks - 1, &last));
      std::memset(last.data.data() + tail, 0, kBlockSize - tail);
      state->dirty_blocks[keep_blocks - 1] = last;
    }
  }
  state->ptrs_dirty = true;
  state->inode.mtime = env_->now();
  state->inode_dirty = true;
  return Status::Ok();
}

Status Filesystem::Truncate(Inum inum, uint64_t new_size) {
  BKUP_RETURN_IF_ERROR(DoTruncate(inum, new_size));
  if (!replaying_) {
    std::vector<uint8_t> rec;
    ByteWriter w(&rec);
    w.PutU8(static_cast<uint8_t>(NvOp::kTruncate));
    w.PutU32(inum);
    w.PutU64(new_size);
    LogOp(std::move(rec));
    MaybeAutoCp();
  }
  return Status::Ok();
}

// ========================================================= consistency point

bool Filesystem::HasDirtyState() const {
  for (const auto& [inum, state] : files_) {
    if (state.inode_dirty || state.ptrs_dirty || !state.dirty_blocks.empty()) {
      return true;
    }
  }
  return false;
}

Status Filesystem::FlushFile(Inum inum, FileState* fs, CpReport* report) {
  (void)inum;
  if (fs->dirty_blocks.empty() && !fs->ptrs_dirty) {
    return Status::Ok();
  }
  BKUP_RETURN_IF_ERROR(EnsurePtrsLoaded(fs));
  // Write dirty data blocks to fresh locations ("write anywhere").
  for (const auto& [fbn, block] : fs->dirty_blocks) {
    BKUP_ASSIGN_OR_RETURN(Vbn vbn, allocator_.Allocate());
    BKUP_RETURN_IF_ERROR(volume_->WriteBlock(vbn, block));
    if (fbn < fs->ptrs.size() && fs->ptrs[fbn] != 0) {
      allocator_.FreeActive(fs->ptrs[fbn]);
      report->blocks_freed++;
    }
    assert(fbn < fs->ptrs.size());
    fs->ptrs[fbn] = static_cast<uint32_t>(vbn);
    report->data_writes.push_back(vbn);
  }
  fs->dirty_blocks.clear();
  // Rewrite the indirect chain copy-on-write.
  auto read = [this](Vbn v, Block* b) { return volume_->ReadBlock(v, b); };
  auto free_block = [this, report](Vbn v) {
    allocator_.FreeActive(v);
    report->blocks_freed++;
  };
  BKUP_RETURN_IF_ERROR(FreeIndirectBlocks(read, free_block, &fs->inode));
  auto write = [this, report](Vbn v, const Block& b) {
    report->meta_writes.push_back(v);
    return volume_->WriteBlock(v, b);
  };
  auto alloc = [this]() { return allocator_.Allocate(); };
  BKUP_RETURN_IF_ERROR(StorePointerMap(write, alloc, fs->ptrs, &fs->inode));
  fs->ptrs_dirty = false;
  fs->inode_dirty = true;
  return Status::Ok();
}

Status Filesystem::FlushInodeFile(CpReport* report) {
  // Which inode-file blocks contain dirty inodes?
  std::vector<uint64_t> dirty_fbns;
  for (auto& [inum, state] : files_) {
    if (state.inode_dirty) {
      const uint64_t fbn = inum / kInodesPerBlock;
      if (dirty_fbns.empty() || dirty_fbns.back() != fbn) {
        dirty_fbns.push_back(fbn);
      }
    }
  }
  if (dirty_fbns.empty()) {
    return Status::Ok();
  }
  for (uint64_t fbn : dirty_fbns) {
    // Start from the old on-disk block (preserving the other inodes), then
    // patch in every cached inode that lives in it.
    Block block;
    if (fbn < inode_file_ptrs_.size() && inode_file_ptrs_[fbn] != 0) {
      BKUP_RETURN_IF_ERROR(volume_->ReadBlock(inode_file_ptrs_[fbn], &block));
    } else {
      block.Zero();
    }
    const Inum first = static_cast<Inum>(fbn * kInodesPerBlock);
    for (Inum inum = first; inum < first + kInodesPerBlock; ++inum) {
      auto it = files_.find(inum);
      if (it == files_.end()) {
        continue;
      }
      std::vector<uint8_t> bytes;
      ByteWriter w(&bytes);
      it->second.inode.SerializeTo(&w);
      std::memcpy(block.data.data() + (inum % kInodesPerBlock) * kInodeSize,
                  bytes.data(), kInodeSize);
      it->second.inode_dirty = false;
    }
    BKUP_ASSIGN_OR_RETURN(Vbn vbn, allocator_.Allocate());
    BKUP_RETURN_IF_ERROR(volume_->WriteBlock(vbn, block));
    if (fbn < inode_file_ptrs_.size() && inode_file_ptrs_[fbn] != 0) {
      allocator_.FreeActive(inode_file_ptrs_[fbn]);
      report->blocks_freed++;
    }
    inode_file_ptrs_[fbn] = static_cast<uint32_t>(vbn);
    report->meta_writes.push_back(vbn);
  }
  // Rewrite the inode file's indirect chain.
  auto read = [this](Vbn v, Block* b) { return volume_->ReadBlock(v, b); };
  auto free_block = [this, report](Vbn v) {
    allocator_.FreeActive(v);
    report->blocks_freed++;
  };
  BKUP_RETURN_IF_ERROR(
      FreeIndirectBlocks(read, free_block, &inode_file_inode_));
  auto write = [this, report](Vbn v, const Block& b) {
    report->meta_writes.push_back(v);
    return volume_->WriteBlock(v, b);
  };
  auto alloc = [this]() { return allocator_.Allocate(); };
  BKUP_RETURN_IF_ERROR(
      StorePointerMap(write, alloc, inode_file_ptrs_, &inode_file_inode_));
  return Status::Ok();
}

Status Filesystem::FlushBlockMapFile(CpReport* report) {
  // Detach the old incarnation.
  for (uint32_t p : blockmap_ptrs_) {
    if (p != 0) {
      allocator_.FreeActive(p);
    }
  }
  auto read = [this](Vbn v, Block* b) { return volume_->ReadBlock(v, b); };
  auto free_block = [this](Vbn v) { allocator_.FreeActive(v); };
  BKUP_RETURN_IF_ERROR(FreeIndirectBlocks(read, free_block, &blockmap_inode_));

  // Pre-allocate every data block, then the indirect chain, so that all
  // allocation for this consistency point is finished *before* the map is
  // rendered — the rendered content therefore describes its own layout.
  std::vector<uint32_t> new_ptrs(blockmap_.FileBlocks());
  for (auto& p : new_ptrs) {
    BKUP_ASSIGN_OR_RETURN(Vbn vbn, allocator_.Allocate());
    p = static_cast<uint32_t>(vbn);
  }
  auto write = [this, report](Vbn v, const Block& b) {
    report->meta_writes.push_back(v);
    return volume_->WriteBlock(v, b);
  };
  auto alloc = [this]() { return allocator_.Allocate(); };
  BKUP_RETURN_IF_ERROR(
      StorePointerMap(write, alloc, new_ptrs, &blockmap_inode_));

  // Render and write the final map.
  Block block;
  for (uint64_t fbn = 0; fbn < new_ptrs.size(); ++fbn) {
    blockmap_.RenderFileBlock(fbn, &block);
    BKUP_RETURN_IF_ERROR(volume_->WriteBlock(new_ptrs[fbn], block));
    report->meta_writes.push_back(new_ptrs[fbn]);
  }
  blockmap_ptrs_ = std::move(new_ptrs);
  return Status::Ok();
}

Status Filesystem::WriteFsInfo(CpReport* report) {
  FsInfo info;
  info.generation = generation_;
  info.volume_blocks = volume_->num_blocks();
  info.max_inodes = max_inodes_;
  info.cp_time = env_->now();
  info.alloc_write_point = allocator_.write_point();
  info.inode_file = inode_file_inode_;
  info.blockmap_file = blockmap_inode_;
  info.snapshots = snapshots_;
  BKUP_ASSIGN_OR_RETURN(Block block, info.SerializeToBlock());
  BKUP_RETURN_IF_ERROR(volume_->WriteBlock(kFsInfoPrimary, block));
  BKUP_RETURN_IF_ERROR(volume_->WriteBlock(kFsInfoBackup, block));
  report->meta_writes.push_back(kFsInfoPrimary);
  report->meta_writes.push_back(kFsInfoBackup);
  return Status::Ok();
}

Result<CpReport> Filesystem::ConsistencyPoint() {
  assert(!in_cp_);
  in_cp_ = true;
  CpReport report;
  generation_++;
  report.generation = generation_;

  // 1. User and directory files, ascending inum for determinism.
  for (auto& [inum, state] : files_) {
    Status st = FlushFile(inum, &state, &report);
    if (!st.ok()) {
      in_cp_ = false;
      return st;
    }
  }
  // 2. The inode file.
  {
    Status st = FlushInodeFile(&report);
    if (!st.ok()) {
      in_cp_ = false;
      return st;
    }
  }
  // 3. The block-map file (must be last: it freezes allocation state).
  {
    Status st = FlushBlockMapFile(&report);
    if (!st.ok()) {
      in_cp_ = false;
      return st;
    }
  }
  // 4. The root, written atomically at its fixed redundant locations.
  {
    Status st = WriteFsInfo(&report);
    if (!st.ok()) {
      in_cp_ = false;
      return st;
    }
  }
  // 5. Everything logged is now durable.
  if (nvram_ != nullptr) {
    nvram_->Clear();
  }
  last_cp_time_ = env_->now();
  // Drop cache entries for freed inodes; keep the rest (they are clean).
  for (auto it = files_.begin(); it != files_.end();) {
    if (!it->second.inode.in_use() && !it->second.inode_dirty) {
      it = files_.erase(it);
    } else {
      ++it;
    }
  }
  cp_data_writes_since_mark_ += report.data_writes.size();
  cp_meta_writes_since_mark_ += report.meta_writes.size();
  last_cp_report_ = report;
  in_cp_ = false;
  return report;
}

void Filesystem::MaybeAutoCp() {
  if (in_cp_) {
    return;
  }
  if (env_->now() - last_cp_time_ >= cp_interval_) {
    Status st = ConsistencyPoint().status();
    assert(st.ok());
    (void)st;
  }
}

// ================================================================ snapshots

Result<SnapshotInfo> Filesystem::FindSnapshot(const std::string& name) const {
  for (const SnapshotInfo& s : snapshots_) {
    if (s.name == name) {
      return s;
    }
  }
  return NotFound("no such snapshot '" + name + "'");
}

Status Filesystem::CreateSnapshot(const std::string& name) {
  if (name.empty() || name.size() > kMaxSnapshotNameLen) {
    return InvalidArgument("bad snapshot name");
  }
  if (FindSnapshot(name).ok()) {
    return AlreadyExists("snapshot '" + name + "' exists");
  }
  if (snapshots_.size() >= kMaxSnapshots) {
    return Exhausted("snapshot table full (max 20)");
  }
  // Pick the lowest unused plane.
  uint8_t plane = 0;
  for (uint8_t candidate = 1; candidate <= kMaxSnapshots; ++candidate) {
    bool taken = false;
    for (const SnapshotInfo& s : snapshots_) {
      if (s.plane == candidate) {
        taken = true;
        break;
      }
    }
    if (!taken) {
      plane = candidate;
      break;
    }
  }
  assert(plane != 0);

  // Quiesce: everything dirty reaches disk, so the snapshot's root describes
  // a complete on-disk tree.
  BKUP_RETURN_IF_ERROR(ConsistencyPoint().status());

  SnapshotInfo snap;
  snap.plane = plane;
  snap.name = name;
  snap.create_time = env_->now();
  snap.generation = generation_;
  snap.inode_file = inode_file_inode_;
  blockmap_.CopyPlane(kActivePlane, plane);
  snap.used_blocks = blockmap_.CountPlane(plane);
  snapshots_.push_back(std::move(snap));

  // Persist the new plane and snapshot table.
  return ConsistencyPoint().status();
}

Status Filesystem::DeleteSnapshot(const std::string& name) {
  for (auto it = snapshots_.begin(); it != snapshots_.end(); ++it) {
    if (it->name == name) {
      blockmap_.ClearPlane(it->plane);
      snapshots_.erase(it);
      return ConsistencyPoint().status();
    }
  }
  return NotFound("no such snapshot '" + name + "'");
}

Result<FsReader> Filesystem::SnapshotReader(const std::string& name) const {
  BKUP_ASSIGN_OR_RETURN(SnapshotInfo snap, FindSnapshot(name));
  return FsReader(volume_, snap.inode_file, max_inodes_);
}

FsReader Filesystem::LiveReader() const {
  return FsReader(volume_, inode_file_inode_, max_inodes_);
}

// ================================================================= queries

FsStats Filesystem::Stats() const {
  FsStats stats;
  stats.volume_blocks = volume_->num_blocks();
  stats.free_blocks = blockmap_.CountFree() - kFirstAllocatableVbn;
  stats.active_blocks = blockmap_.CountPlane(kActivePlane);
  stats.snapshot_only_blocks =
      blockmap_.CountUsed() - stats.active_blocks;
  stats.inodes_used = static_cast<uint32_t>(inode_used_.CountOnes()) - 2;
  stats.max_inodes = max_inodes_;
  stats.generation = generation_;
  return stats;
}

// ==================================================================== NVRAM

void Filesystem::LogOp(std::vector<uint8_t> record) {
  if (nvram_ == nullptr) {
    return;
  }
  if (nvram_->WouldOverflow(record.size())) {
    // Log pressure forces a consistency point, after which the log is empty.
    Status st = ConsistencyPoint().status();
    assert(st.ok());
    (void)st;
  }
  nvram_->Append(std::move(record));
}

Status Filesystem::ReplayNvram() {
  replaying_ = true;
  for (const std::vector<uint8_t>& rec : nvram_->records()) {
    ByteReader r(rec);
    BKUP_ASSIGN_OR_RETURN(uint8_t op_raw, r.ReadU8());
    const NvOp op = static_cast<NvOp>(op_raw);
    Status st = Status::Ok();
    switch (op) {
      case NvOp::kCreate: {
        BKUP_ASSIGN_OR_RETURN(std::string path, r.ReadString());
        BKUP_ASSIGN_OR_RETURN(uint16_t mode, r.ReadU16());
        st = DoCreate(path, InodeType::kFile, mode, "").status();
        break;
      }
      case NvOp::kMkdir: {
        BKUP_ASSIGN_OR_RETURN(std::string path, r.ReadString());
        BKUP_ASSIGN_OR_RETURN(uint16_t mode, r.ReadU16());
        st = DoCreate(path, InodeType::kDirectory, mode, "").status();
        break;
      }
      case NvOp::kSymlink: {
        BKUP_ASSIGN_OR_RETURN(std::string target, r.ReadString());
        BKUP_ASSIGN_OR_RETURN(std::string path, r.ReadString());
        st = DoCreate(path, InodeType::kSymlink, 0777, target).status();
        break;
      }
      case NvOp::kLink: {
        BKUP_ASSIGN_OR_RETURN(std::string existing, r.ReadString());
        BKUP_ASSIGN_OR_RETURN(std::string path, r.ReadString());
        st = DoLink(existing, path);
        break;
      }
      case NvOp::kUnlink: {
        BKUP_ASSIGN_OR_RETURN(std::string path, r.ReadString());
        st = DoUnlink(path, false);
        break;
      }
      case NvOp::kRmdir: {
        BKUP_ASSIGN_OR_RETURN(std::string path, r.ReadString());
        st = DoUnlink(path, true);
        break;
      }
      case NvOp::kRename: {
        BKUP_ASSIGN_OR_RETURN(std::string from, r.ReadString());
        BKUP_ASSIGN_OR_RETURN(std::string to, r.ReadString());
        st = DoRename(from, to);
        break;
      }
      case NvOp::kWrite: {
        BKUP_ASSIGN_OR_RETURN(uint32_t inum, r.ReadU32());
        BKUP_ASSIGN_OR_RETURN(uint64_t offset, r.ReadU64());
        BKUP_ASSIGN_OR_RETURN(uint32_t len, r.ReadU32());
        BKUP_ASSIGN_OR_RETURN(auto data, r.ReadSpan(len));
        st = DoWrite(inum, offset, data);
        break;
      }
      case NvOp::kTruncate: {
        BKUP_ASSIGN_OR_RETURN(uint32_t inum, r.ReadU32());
        BKUP_ASSIGN_OR_RETURN(uint64_t size, r.ReadU64());
        st = DoTruncate(inum, size);
        break;
      }
      case NvOp::kSetAttr: {
        BKUP_ASSIGN_OR_RETURN(uint32_t inum, r.ReadU32());
        BKUP_ASSIGN_OR_RETURN(uint8_t flags, r.ReadU8());
        SetAttrRequest req;
        BKUP_ASSIGN_OR_RETURN(uint16_t mode, r.ReadU16());
        BKUP_ASSIGN_OR_RETURN(uint32_t uid, r.ReadU32());
        BKUP_ASSIGN_OR_RETURN(uint32_t gid, r.ReadU32());
        BKUP_ASSIGN_OR_RETURN(int64_t mtime, r.ReadI64());
        BKUP_ASSIGN_OR_RETURN(int64_t atime, r.ReadI64());
        if (flags & 1) {
          req.mode = mode;
        }
        if (flags & 2) {
          req.uid = uid;
        }
        if (flags & 4) {
          req.gid = gid;
        }
        if (flags & 8) {
          req.mtime = mtime;
        }
        if (flags & 16) {
          req.atime = atime;
        }
        st = DoSetAttr(inum, req);
        break;
      }
      default:
        replaying_ = false;
        return Corruption("unknown NVRAM opcode");
    }
    if (!st.ok()) {
      replaying_ = false;
      return st;
    }
  }
  replaying_ = false;
  return Status::Ok();
}

}  // namespace bkup

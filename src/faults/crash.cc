#include "src/faults/crash.h"

#include <utility>

#include "src/obs/metrics.h"

namespace bkup {

const char* CrashKindName(CrashKind kind) {
  switch (kind) {
    case CrashKind::kKillAtEntry:
      return "kill-at-entry";
    case CrashKind::kKillAtOffset:
      return "kill-at-offset";
    case CrashKind::kKillRandom:
      return "kill-random";
  }
  return "unknown";
}

CrashInjector::CrashInjector(CrashPlan plan) : plan_(std::move(plan)) {
  // One independent stream per spec, split from the plan seed, so adding a
  // spec never perturbs the draws of the others.
  uint64_t sm = plan_.seed;
  rng_.reserve(plan_.kills.size());
  for (size_t i = 0; i < plan_.kills.size(); ++i) {
    rng_.emplace_back(SplitMix64(sm));
  }
}

bool CrashInjector::ShouldKill(RestorePhase phase, uint64_t entries_applied,
                               uint64_t stream_offset) {
  stats_.consults++;
  if (active_ >= plan_.kills.size()) {
    return false;  // all planned kills spent: this incarnation survives
  }
  const KillSpec& spec = plan_.kills[active_];
  if (!spec.any_phase && spec.phase != phase) {
    return false;
  }
  bool fire = false;
  switch (spec.kind) {
    case CrashKind::kKillAtEntry:
      fire = entries_applied >= spec.after_entries;
      break;
    case CrashKind::kKillAtOffset:
      fire = stream_offset >= spec.at_offset;
      break;
    case CrashKind::kKillRandom:
      fire = rng_[active_].NextDouble() < spec.probability;
      break;
  }
  if (fire) {
    stats_.kills_fired++;
    ++active_;  // the resumed attempt runs under the next spec
    MetricsRegistry::Default().GetCounter("faults.crash.kills")->Increment();
  }
  return fire;
}

}  // namespace bkup

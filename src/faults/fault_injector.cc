#include "src/faults/fault_injector.h"

#include <string>

#include "src/obs/flight_recorder.h"

namespace bkup {

namespace {

// Overlap of [a, a+an) and [b, b+bn).
bool Overlaps(uint64_t a, uint64_t an, uint64_t b, uint64_t bn) {
  return an > 0 && bn > 0 && a < b + bn && b < a + an;
}

// Every injection also lands in the flight recorder's fault ring (when one
// is attached), so a post-mortem dump shows what the injector did and when.
void Record(SimEnvironment* env, FaultKind kind, const std::string& target,
            std::string detail) {
  if (FlightRecorder* recorder = env->flight_recorder()) {
    recorder->RecordFault(FaultKindName(kind), target, std::move(detail));
  }
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDiskTransient:
      return "disk-transient";
    case FaultKind::kDiskFlaky:
      return "disk-flaky";
    case FaultKind::kDiskFailure:
      return "disk-failure";
    case FaultKind::kTapeMediaDefect:
      return "tape-media-defect";
    case FaultKind::kTapeFlaky:
      return "tape-flaky";
    case FaultKind::kTapeDriveFailure:
      return "tape-drive-failure";
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkFlaky:
      return "link-flaky";
    case FaultKind::kLinkCorrupt:
      return "link-corrupt";
    case FaultKind::kLinkStall:
      return "link-stall";
  }
  return "unknown";
}

FaultInjector::FaultInjector(SimEnvironment* env, FaultPlan plan)
    : env_(env), plan_(std::move(plan)) {
  // One independent stream per spec, split from the plan seed, so adding a
  // spec never perturbs the draws of the others.
  uint64_t sm = plan_.seed;
  state_.reserve(plan_.faults.size());
  for (size_t i = 0; i < plan_.faults.size(); ++i) {
    state_.push_back(SpecState{Rng(SplitMix64(sm))});
  }
}

void FaultInjector::Arm(Volume* volume) {
  for (const auto& disk : volume->disks()) {
    Arm(disk.get());
  }
}

void FaultInjector::Disarm(Volume* volume) {
  for (const auto& disk : volume->disks()) {
    Disarm(disk.get());
  }
}

bool FaultInjector::InWindow(const FaultSpec& spec) const {
  const SimTime now = env_->now();
  return now >= spec.start && now < spec.end;
}

Status FaultInjector::OnDiskAccess(Disk* disk, uint64_t nblocks) {
  Status result = Status::Ok();
  for (size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    SpecState& st = state_[i];
    if (!spec.target.empty() && spec.target != disk->name()) {
      continue;
    }
    switch (spec.kind) {
      case FaultKind::kDiskTransient:
        if (InWindow(spec)) {
          ++stats_.disk_faults_injected;
          Record(env_, spec.kind, disk->name(), "transient error");
          if (result.ok()) {
            result = IoError(disk->name() + ": injected transient error");
          }
        }
        break;
      case FaultKind::kDiskFlaky:
        // Draw even outside the window so the stream position depends only
        // on the access sequence, not on when the window opens.
        if (st.rng.Chance(spec.probability) && InWindow(spec)) {
          ++stats_.disk_faults_injected;
          Record(env_, spec.kind, disk->name(), "flaky error");
          if (result.ok()) {
            result = IoError(disk->name() + ": injected flaky error");
          }
        }
        break;
      case FaultKind::kDiskFailure: {
        if (st.fired) {
          break;  // already dead; Disk::failed_ keeps erroring accesses
        }
        st.bytes_seen += nblocks * kBlockSize;
        const bool due = spec.after_bytes > 0
                             ? st.bytes_seen >= spec.after_bytes
                             : env_->now() >= spec.start;
        if (due) {
          st.fired = true;
          disk->Fail();
          ++stats_.disks_killed;
          Record(env_, spec.kind, disk->name(),
                 "permanent failure after " + std::to_string(st.bytes_seen) +
                     " bytes");
          if (result.ok()) {
            result = IoError(disk->name() + ": injected permanent failure");
          }
        }
        break;
      }
      default:
        break;  // tape kinds never match a disk access
    }
  }
  return result;
}

Status FaultInjector::OnTapeTransfer(TapeDrive* drive, uint64_t position,
                                     uint64_t nbytes, bool is_write) {
  Status result = Status::Ok();
  for (size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    SpecState& st = state_[i];
    switch (spec.kind) {
      case FaultKind::kTapeMediaDefect: {
        Tape* tape = drive->tape();
        if (tape == nullptr ||
            (!spec.target.empty() && spec.target != tape->label())) {
          break;
        }
        if (env_->now() < spec.start ||
            !Overlaps(position, nbytes, spec.offset, spec.length)) {
          break;
        }
        // First touch latently corrupts whatever is already recorded in the
        // defect range; reads then return flipped bits for the stream's
        // record CRCs to catch. (Nothing recorded there yet is fine.)
        if (!st.fired) {
          st.fired = true;
          if (spec.offset < tape->size()) {
            (void)tape->CorruptRange(spec.offset, spec.length);
          }
          ++stats_.media_defects_applied;
          Record(env_, spec.kind, tape->label(),
                 "defect at byte " + std::to_string(spec.offset) + " len " +
                     std::to_string(spec.length));
        }
        if (is_write) {
          // The drive's read-after-write verify rejects the transfer; this
          // repeats for every attempt — a defect does not heal.
          ++stats_.tape_faults_injected;
          if (result.ok()) {
            result = IoError(tape->label() + ": media defect at byte " +
                             std::to_string(spec.offset));
          }
        }
        break;
      }
      case FaultKind::kTapeFlaky:
        if (!spec.target.empty() && spec.target != drive->name()) {
          break;
        }
        if (st.rng.Chance(spec.probability) && InWindow(spec)) {
          ++stats_.tape_faults_injected;
          Record(env_, spec.kind, drive->name(), "flaky error");
          if (result.ok()) {
            result = IoError(drive->name() + ": injected flaky error");
          }
        }
        break;
      case FaultKind::kTapeDriveFailure: {
        if (!spec.target.empty() && spec.target != drive->name()) {
          break;
        }
        if (!st.fired) {
          st.bytes_seen += nbytes;
          if (spec.after_bytes > 0 && st.bytes_seen >= spec.after_bytes) {
            st.fired = true;
            ++stats_.drives_killed;
            Record(env_, spec.kind, drive->name(),
                   "drive failed after " + std::to_string(st.bytes_seen) +
                       " bytes");
          }
        }
        if (st.fired) {
          ++stats_.tape_faults_injected;
          if (result.ok()) {
            result = IoError(drive->name() + ": drive failed permanently");
          }
        }
        break;
      }
      default:
        break;  // disk kinds never match a tape transfer
    }
  }
  return result;
}

LinkFault FaultInjector::OnFrame(NetLink* link, uint64_t offset,
                                 uint64_t nbytes) {
  (void)offset;
  (void)nbytes;
  LinkFault result;
  for (size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    SpecState& st = state_[i];
    if (!spec.target.empty() && spec.target != link->name()) {
      continue;
    }
    switch (spec.kind) {
      case FaultKind::kLinkDown:
        if (InWindow(spec)) {
          ++stats_.link_faults_injected;
          Record(env_, spec.kind, link->name(), "frame dropped (link down)");
          result.action = LinkFault::Action::kDrop;
        }
        break;
      case FaultKind::kLinkFlaky:
        // Draw even outside the window so the stream position depends only
        // on the frame sequence, not on when the window opens.
        if (st.rng.Chance(spec.probability) && InWindow(spec)) {
          ++stats_.link_faults_injected;
          Record(env_, spec.kind, link->name(), "frame dropped (flaky)");
          result.action = LinkFault::Action::kDrop;
        }
        break;
      case FaultKind::kLinkCorrupt:
        if (st.rng.Chance(spec.probability) && InWindow(spec) &&
            result.action == LinkFault::Action::kDeliver) {
          ++stats_.link_faults_injected;
          Record(env_, spec.kind, link->name(), "frame corrupted");
          result.action = LinkFault::Action::kCorrupt;
        }
        break;
      case FaultKind::kLinkStall:
        if (InWindow(spec)) {
          ++stats_.link_stalls_injected;
          Record(env_, spec.kind, link->name(),
                 "stall " + std::to_string(spec.stall) + "us");
          result.stall += spec.stall;
        }
        break;
      default:
        break;  // disk/tape kinds never match a frame
    }
  }
  return result;
}

Status FaultInjector::OnTapeWrite(TapeDrive* drive, uint64_t position,
                                  uint64_t nbytes) {
  return OnTapeTransfer(drive, position, nbytes, /*is_write=*/true);
}

Status FaultInjector::OnTapeRead(TapeDrive* drive, uint64_t position,
                                 uint64_t nbytes) {
  return OnTapeTransfer(drive, position, nbytes, /*is_write=*/false);
}

}  // namespace bkup

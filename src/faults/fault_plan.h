// Declarative fault plans for the deterministic fault-injection engine.
//
// A `FaultPlan` is a seeded list of `FaultSpec`s — "disk home.rg0.d2 throws
// transient I/O errors between t=31s and t=36s", "tape nightly.1 has a media
// defect at byte 2 MB", "drive dlt0 dies for good after 500 MB". The plan is
// pure data: arming it against devices, tracking per-spec state and deciding
// individual accesses is the `FaultInjector`'s job. Because the simulation
// is single-threaded and every probabilistic decision draws from a per-spec
// stream seeded by `seed`, the same plan over the same workload produces
// byte-for-byte identical fault sequences and counters on every run.
#ifndef BKUP_FAULTS_FAULT_PLAN_H_
#define BKUP_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "src/util/units.h"

namespace bkup {

enum class FaultKind {
  // Disk faults (matched against a disk's name).
  kDiskTransient,    // every access in [start, end) fails with kIoError
  kDiskFlaky,        // each access in [start, end) fails with prob. p
  kDiskFailure,      // drive dies (Disk::Fail) at `start`, or once it has
                     // moved `after_bytes` bytes if that is nonzero
  // Tape faults. kTapeMediaDefect matches the *media* label; the flaky and
  // drive-failure kinds match the drive's name.
  kTapeMediaDefect,  // byte range [offset, offset+length) is bad: writes
                     // into it fail (read-after-write verify), reads return
                     // latently corrupted bytes for record CRCs to catch
  kTapeFlaky,        // each transfer fails with probability p in [start,end)
  kTapeDriveFailure, // drive dies once it has moved `after_bytes` bytes
  // Link faults (matched against a NetLink's name). These decide the fate of
  // individual frames; the connection's retransmit budget and the
  // supervisor's reconnect-from-ack ladder are what turn them into either
  // invisible hiccups or counted recoveries.
  kLinkDown,         // every frame in [start, end) is lost (cable pull)
  kLinkFlaky,        // each frame lost with probability p in [start, end)
  kLinkCorrupt,      // each frame corrupted with prob. p (checksum rejects)
  kLinkStall,        // each frame in [start, end) holds the wire `stall`
                     // longer before serializing (congestion, pause frames)
};

const char* FaultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind;
  // Device name (disks, drives) or media label (defects); empty matches any.
  std::string target;
  // Active window. `start` doubles as the failure instant for kDiskFailure
  // when `after_bytes` is zero.
  SimTime start = 0;
  SimTime end = std::numeric_limits<SimTime>::max();
  double probability = 1.0;   // per-access trigger chance (flaky kinds)
  uint64_t after_bytes = 0;   // byte-odometer trigger (failure kinds)
  uint64_t offset = 0;        // defect placement on the media
  uint64_t length = 0;
  SimDuration stall = 0;      // extra wire-hold time (kLinkStall)
};

struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }

  // Fluent builders, so tests and benches read like the scenario they set up.
  FaultPlan& DiskTransient(std::string target, SimTime start, SimTime end) {
    faults.push_back({.kind = FaultKind::kDiskTransient,
                      .target = std::move(target),
                      .start = start,
                      .end = end});
    return *this;
  }
  FaultPlan& DiskFlaky(std::string target, double probability,
                       SimTime start = 0,
                       SimTime end = std::numeric_limits<SimTime>::max()) {
    faults.push_back({.kind = FaultKind::kDiskFlaky,
                      .target = std::move(target),
                      .start = start,
                      .end = end,
                      .probability = probability});
    return *this;
  }
  FaultPlan& DiskFailsAt(std::string target, SimTime at) {
    faults.push_back({.kind = FaultKind::kDiskFailure,
                      .target = std::move(target),
                      .start = at});
    return *this;
  }
  FaultPlan& DiskFailsAfter(std::string target, uint64_t after_bytes) {
    faults.push_back({.kind = FaultKind::kDiskFailure,
                      .target = std::move(target),
                      .after_bytes = after_bytes});
    return *this;
  }
  FaultPlan& TapeMediaDefect(std::string label, uint64_t offset,
                             uint64_t length, SimTime at = 0) {
    faults.push_back({.kind = FaultKind::kTapeMediaDefect,
                      .target = std::move(label),
                      .start = at,
                      .offset = offset,
                      .length = length});
    return *this;
  }
  FaultPlan& TapeFlaky(std::string target, double probability,
                       SimTime start = 0,
                       SimTime end = std::numeric_limits<SimTime>::max()) {
    faults.push_back({.kind = FaultKind::kTapeFlaky,
                      .target = std::move(target),
                      .start = start,
                      .end = end,
                      .probability = probability});
    return *this;
  }
  FaultPlan& TapeDriveFailsAfter(std::string target, uint64_t after_bytes) {
    faults.push_back({.kind = FaultKind::kTapeDriveFailure,
                      .target = std::move(target),
                      .after_bytes = after_bytes});
    return *this;
  }
  FaultPlan& LinkDown(std::string target, SimTime start, SimTime end) {
    faults.push_back({.kind = FaultKind::kLinkDown,
                      .target = std::move(target),
                      .start = start,
                      .end = end});
    return *this;
  }
  FaultPlan& LinkFlaky(std::string target, double probability,
                       SimTime start = 0,
                       SimTime end = std::numeric_limits<SimTime>::max()) {
    faults.push_back({.kind = FaultKind::kLinkFlaky,
                      .target = std::move(target),
                      .start = start,
                      .end = end,
                      .probability = probability});
    return *this;
  }
  FaultPlan& LinkCorrupt(std::string target, double probability,
                         SimTime start = 0,
                         SimTime end = std::numeric_limits<SimTime>::max()) {
    faults.push_back({.kind = FaultKind::kLinkCorrupt,
                      .target = std::move(target),
                      .start = start,
                      .end = end,
                      .probability = probability});
    return *this;
  }
  FaultPlan& LinkStall(std::string target, SimDuration stall, SimTime start,
                       SimTime end) {
    faults.push_back({.kind = FaultKind::kLinkStall,
                      .target = std::move(target),
                      .start = start,
                      .end = end,
                      .stall = stall});
    return *this;
  }
};

}  // namespace bkup

#endif  // BKUP_FAULTS_FAULT_PLAN_H_

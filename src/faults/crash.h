// Process-crash fault plans for restore runs — the crash-taxonomy twin of
// the disk/tape/link `FaultPlan`.
//
// A `CrashPlan` is a seeded list of `KillSpec`s: "kill the restore after 40
// applied records", "kill it somewhere in the file phase with probability
// 0.02 per record", "kill it once the stream cursor passes 3 MB". The
// injector implements the `RestoreKillHook` the restore engine consults
// after every applied record; one spec is armed per process incarnation, so
// a plan with three kills models a restore that dies three times and then
// runs to completion on the fourth attempt. All probabilistic decisions
// draw from per-spec streams split from `seed` — the same plan over the
// same stream kills at the same record on every run.
#ifndef BKUP_FAULTS_CRASH_H_
#define BKUP_FAULTS_CRASH_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/dump/logical_restore.h"
#include "src/util/random.h"

namespace bkup {

enum class CrashKind {
  kKillAtEntry,   // die when the run's applied-record count reaches a mark
  kKillAtOffset,  // die once the stream cursor reaches a byte offset
  kKillRandom,    // each applied record dies with probability p
};

const char* CrashKindName(CrashKind kind);

struct KillSpec {
  CrashKind kind = CrashKind::kKillAtEntry;
  // Restrict the kill to one restore phase; kAny matches every phase.
  bool any_phase = true;
  RestorePhase phase = RestorePhase::kFiles;
  uint64_t after_entries = 0;  // trigger mark for kKillAtEntry
  uint64_t at_offset = 0;      // trigger mark for kKillAtOffset
  double probability = 0.0;    // per-record chance for kKillRandom
};

struct CrashPlan {
  uint64_t seed = 1;
  // One spec per process incarnation, consumed in order: the first run dies
  // by kills[0], the resumed run by kills[1], ... and once the list is
  // exhausted the restore finally completes.
  std::vector<KillSpec> kills;

  bool empty() const { return kills.empty(); }

  // Fluent builders, mirroring FaultPlan's.
  CrashPlan& KillAtEntry(uint64_t after_entries) {
    kills.push_back({.kind = CrashKind::kKillAtEntry,
                     .after_entries = after_entries});
    return *this;
  }
  CrashPlan& KillAtEntryIn(RestorePhase phase, uint64_t after_entries) {
    kills.push_back({.kind = CrashKind::kKillAtEntry,
                     .any_phase = false,
                     .phase = phase,
                     .after_entries = after_entries});
    return *this;
  }
  CrashPlan& KillAtOffset(uint64_t at_offset) {
    kills.push_back({.kind = CrashKind::kKillAtOffset,
                     .at_offset = at_offset});
    return *this;
  }
  CrashPlan& KillRandom(double probability) {
    kills.push_back({.kind = CrashKind::kKillRandom,
                     .probability = probability});
    return *this;
  }
  CrashPlan& KillRandomIn(RestorePhase phase, double probability) {
    kills.push_back({.kind = CrashKind::kKillRandom,
                     .any_phase = false,
                     .phase = phase,
                     .probability = probability});
    return *this;
  }
};

struct CrashInjectorStats {
  uint64_t consults = 0;     // hook calls across all incarnations
  uint64_t kills_fired = 0;  // processes actually killed

  bool any() const { return kills_fired > 0; }
};

// Arms a CrashPlan against restore runs. Pass as LogicalRestoreOptions::kill;
// a fired kill automatically arms the next spec for the resumed attempt.
class CrashInjector : public RestoreKillHook {
 public:
  explicit CrashInjector(CrashPlan plan);

  bool ShouldKill(RestorePhase phase, uint64_t entries_applied,
                  uint64_t stream_offset) override;

  // Which process incarnation is running (0-based); equals kills consumed.
  uint64_t incarnation() const { return active_; }
  // True once every planned kill has fired: the next run survives.
  bool exhausted() const { return active_ >= plan_.kills.size(); }

  const CrashPlan& plan() const { return plan_; }
  const CrashInjectorStats& stats() const { return stats_; }

 private:
  CrashPlan plan_;
  std::vector<Rng> rng_;  // one independent stream per spec
  size_t active_ = 0;
  CrashInjectorStats stats_;
};

}  // namespace bkup

#endif  // BKUP_FAULTS_CRASH_H_

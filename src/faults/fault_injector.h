// The fault-injection engine: arms a `FaultPlan` against simulated devices.
//
// The injector implements the `DeviceFaultHook` that Disks and TapeDrives
// consult on every timed access. It evaluates each armed spec against the
// simulation clock, a per-spec deterministic random stream and a per-spec
// byte odometer, so a scenario like
//
//     FaultPlan plan;
//     plan.seed = 42;
//     plan.DiskTransient("home.rg0.d2", 31 * kSecond, 36 * kSecond)
//         .TapeMediaDefect("nightly.1", 2 * kMiB, 64 * kKiB)
//         .DiskFailsAfter("home.rg1.d0", 8 * kMiB);
//     FaultInjector injector(&env, plan);
//     injector.Arm(volume);
//     injector.Arm(drive);
//
// replays identically — same faults at the same sim times, same counters —
// on every run with the same seed and workload.
#ifndef BKUP_FAULTS_FAULT_INJECTOR_H_
#define BKUP_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/block/disk.h"
#include "src/block/fault_hook.h"
#include "src/block/tape.h"
#include "src/faults/fault_plan.h"
#include "src/net/link.h"
#include "src/net/link_fault.h"
#include "src/raid/volume.h"
#include "src/sim/environment.h"
#include "src/util/random.h"

namespace bkup {

// What the engine actually did, for assertions and reporting. Distinct from
// the job-side FaultCounters: these count injected faults, those count the
// recovery work jobs performed in response.
struct FaultInjectorStats {
  uint64_t disk_faults_injected = 0;
  uint64_t disks_killed = 0;
  uint64_t tape_faults_injected = 0;
  uint64_t media_defects_applied = 0;  // defect ranges latently corrupted
  uint64_t drives_killed = 0;
  uint64_t link_faults_injected = 0;   // frames dropped or corrupted
  uint64_t link_stalls_injected = 0;   // frames held on a stalled wire

  bool any() const {
    return disk_faults_injected + disks_killed + tape_faults_injected +
               media_defects_applied + drives_killed + link_faults_injected +
               link_stalls_injected >
           0;
  }
};

class FaultInjector : public DeviceFaultHook, public LinkFaultHook {
 public:
  FaultInjector(SimEnvironment* env, FaultPlan plan);

  // Arming points the device's fault hook at this engine. The injector must
  // outlive every armed device (or be disarmed first).
  void Arm(Disk* disk) { disk->set_fault_hook(this); }
  void Arm(TapeDrive* drive) { drive->set_fault_hook(this); }
  void Arm(NetLink* link) { link->set_fault_hook(this); }
  void Arm(Volume* volume);

  void Disarm(Disk* disk) { disk->set_fault_hook(nullptr); }
  void Disarm(TapeDrive* drive) { drive->set_fault_hook(nullptr); }
  void Disarm(NetLink* link) { link->set_fault_hook(nullptr); }
  void Disarm(Volume* volume);

  // DeviceFaultHook:
  Status OnDiskAccess(Disk* disk, uint64_t nblocks) override;
  Status OnTapeWrite(TapeDrive* drive, uint64_t position,
                     uint64_t nbytes) override;
  Status OnTapeRead(TapeDrive* drive, uint64_t position,
                    uint64_t nbytes) override;

  // LinkFaultHook:
  LinkFault OnFrame(NetLink* link, uint64_t offset, uint64_t nbytes) override;

  const FaultPlan& plan() const { return plan_; }
  const FaultInjectorStats& stats() const { return stats_; }

 private:
  // Per-spec mutable state, index-parallel with plan_.faults.
  struct SpecState {
    Rng rng;
    uint64_t bytes_seen = 0;  // odometer for after_bytes triggers
    bool fired = false;       // sticky for one-shot kinds
  };

  bool InWindow(const FaultSpec& spec) const;
  Status OnTapeTransfer(TapeDrive* drive, uint64_t position, uint64_t nbytes,
                        bool is_write);

  SimEnvironment* env_;
  FaultPlan plan_;
  std::vector<SpecState> state_;
  FaultInjectorStats stats_;
};

}  // namespace bkup

#endif  // BKUP_FAULTS_FAULT_INJECTOR_H_

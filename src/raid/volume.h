// A Volume concatenates RAID groups into one flat block space. This is the
// layer the file system allocates from, and — crucially for the paper — the
// layer image dump/restore talks to directly, bypassing the file system.
#ifndef BKUP_RAID_VOLUME_H_
#define BKUP_RAID_VOLUME_H_

#include <memory>
#include <string>
#include <vector>

#include "src/block/disk.h"
#include "src/raid/raid_group.h"
#include "src/sim/environment.h"
#include "src/util/status.h"

namespace bkup {

struct VolumeGeometry {
  size_t num_raid_groups = 3;       // home volume: 3 groups
  size_t disks_per_group = 10;      // ~31 disks incl. parity
  uint64_t blocks_per_disk = 4096;  // scaled-down drive size
  DiskTiming disk_timing;
};

class Volume {
 public:
  // Builds a volume that owns its disks and groups.
  static std::unique_ptr<Volume> Create(SimEnvironment* env, std::string name,
                                        const VolumeGeometry& geometry);

  const std::string& name() const { return name_; }
  uint64_t num_blocks() const { return num_blocks_; }
  const VolumeGeometry& geometry() const { return geometry_; }

  Status ReadBlock(Vbn vbn, Block* out);
  Status WriteBlock(Vbn vbn, const Block& block);

  struct Placement {
    RaidGroup* group;
    size_t group_index;
    Disk* disk;
    Dbn dbn;
    Disk* parity_disk;
  };
  Placement Locate(Vbn vbn);

  size_t num_groups() const { return groups_.size(); }
  RaidGroup* group(size_t i) { return groups_[i].get(); }

  // All drives, data and parity, across all groups (for failure injection
  // and per-disk utilization reporting).
  const std::vector<std::unique_ptr<Disk>>& disks() const { return disks_; }
  size_t num_disks() const { return disks_.size(); }
  Disk* disk(size_t i) { return disks_[i].get(); }

  uint64_t SizeBytes() const { return num_blocks_ * kBlockSize; }

 private:
  Volume(std::string name, const VolumeGeometry& geometry)
      : name_(std::move(name)), geometry_(geometry) {}

  std::string name_;
  VolumeGeometry geometry_;
  std::vector<std::unique_ptr<Disk>> disks_;
  std::vector<std::unique_ptr<RaidGroup>> groups_;
  std::vector<uint64_t> group_start_;  // first vbn of each group
  uint64_t num_blocks_ = 0;
};

}  // namespace bkup

#endif  // BKUP_RAID_VOLUME_H_

// RAID-4 parity group, the unit of WAFL's software RAID: N-1 data disks plus
// one dedicated parity disk. Supports degraded reads, degraded writes and
// full reconstruction onto a replacement drive.
#ifndef BKUP_RAID_RAID_GROUP_H_
#define BKUP_RAID_RAID_GROUP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/block/block.h"
#include "src/block/disk.h"
#include "src/util/status.h"

namespace bkup {

class RaidGroup {
 public:
  // `disks` must hold at least 2 drives of equal size; the last one is the
  // dedicated parity disk.
  RaidGroup(std::string name, std::vector<Disk*> disks);

  const std::string& name() const { return name_; }
  size_t num_disks() const { return disks_.size(); }
  size_t data_width() const { return disks_.size() - 1; }
  uint64_t blocks_per_disk() const { return blocks_per_disk_; }

  // Usable data blocks in this group.
  uint64_t data_blocks() const { return data_width() * blocks_per_disk_; }

  Disk* data_disk(size_t column) { return disks_[column]; }
  Disk* parity_disk() { return disks_.back(); }

  // Where group-relative data block `gbn` lives.
  struct Placement {
    Disk* disk;
    Dbn dbn;        // block on that disk (== stripe index)
    size_t column;  // data column within the group
  };
  Placement Locate(uint64_t gbn);

  // Read with transparent reconstruction if the target drive has failed.
  // At most one failed drive per group is survivable (RAID-4).
  Status ReadBlock(uint64_t gbn, Block* out);

  // Write with parity maintenance (read-modify-write of data + parity).
  Status WriteBlock(uint64_t gbn, const Block& block);

  // Rebuilds the contents of column `column` (or the parity disk when
  // `column == data_width()`) onto its current — freshly replaced — drive.
  Status Reconstruct(size_t column);

  // Number of failed drives right now.
  size_t failed_count() const;

 private:
  // XOR of every drive in the stripe except `skip_column`
  // (data_width() == parity column index convention).
  Status XorStripeExcept(Dbn stripe, size_t skip_column, Block* out);

  std::string name_;
  std::vector<Disk*> disks_;
  uint64_t blocks_per_disk_;
};

}  // namespace bkup

#endif  // BKUP_RAID_RAID_GROUP_H_

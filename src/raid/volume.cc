#include "src/raid/volume.h"

#include <cassert>

namespace bkup {

std::unique_ptr<Volume> Volume::Create(SimEnvironment* env, std::string name,
                                       const VolumeGeometry& geometry) {
  assert(geometry.num_raid_groups >= 1);
  assert(geometry.disks_per_group >= 2);
  // unique_ptr with private ctor: wrap manually.
  std::unique_ptr<Volume> vol(new Volume(std::move(name), geometry));
  uint64_t next_vbn = 0;
  for (size_t g = 0; g < geometry.num_raid_groups; ++g) {
    std::vector<Disk*> members;
    for (size_t d = 0; d < geometry.disks_per_group; ++d) {
      auto disk = std::make_unique<Disk>(
          env,
          vol->name_ + ".rg" + std::to_string(g) + ".d" + std::to_string(d),
          geometry.blocks_per_disk, geometry.disk_timing);
      members.push_back(disk.get());
      vol->disks_.push_back(std::move(disk));
    }
    auto group = std::make_unique<RaidGroup>(
        vol->name_ + ".rg" + std::to_string(g), std::move(members));
    vol->group_start_.push_back(next_vbn);
    next_vbn += group->data_blocks();
    vol->groups_.push_back(std::move(group));
  }
  vol->num_blocks_ = next_vbn;
  return vol;
}

Volume::Placement Volume::Locate(Vbn vbn) {
  assert(vbn < num_blocks_);
  // Find the owning group (group_start_ is ascending; linear scan is fine
  // for the handful of groups a volume has).
  size_t g = groups_.size() - 1;
  while (group_start_[g] > vbn) {
    --g;
  }
  RaidGroup* group = groups_[g].get();
  RaidGroup::Placement p = group->Locate(vbn - group_start_[g]);
  return Placement{group, g, p.disk, p.dbn, group->parity_disk()};
}

Status Volume::ReadBlock(Vbn vbn, Block* out) {
  if (vbn >= num_blocks_) {
    return InvalidArgument(name_ + ": read past end of volume");
  }
  Placement p = Locate(vbn);
  return p.group->ReadBlock(vbn - group_start_[p.group_index], out);
}

Status Volume::WriteBlock(Vbn vbn, const Block& block) {
  if (vbn >= num_blocks_) {
    return InvalidArgument(name_ + ": write past end of volume");
  }
  Placement p = Locate(vbn);
  return p.group->WriteBlock(vbn - group_start_[p.group_index], block);
}

}  // namespace bkup

#include "src/raid/raid_group.h"

#include <algorithm>
#include <cassert>

namespace bkup {

RaidGroup::RaidGroup(std::string name, std::vector<Disk*> disks)
    : name_(std::move(name)), disks_(std::move(disks)) {
  assert(disks_.size() >= 2 && "a RAID-4 group needs a data and a parity disk");
  blocks_per_disk_ = disks_.front()->num_blocks();
  for (const Disk* d : disks_) {
    blocks_per_disk_ = std::min(blocks_per_disk_, d->num_blocks());
  }
}

RaidGroup::Placement RaidGroup::Locate(uint64_t gbn) {
  assert(gbn < data_blocks());
  const size_t column = static_cast<size_t>(gbn % data_width());
  const Dbn stripe = gbn / data_width();
  return Placement{disks_[column], stripe, column};
}

size_t RaidGroup::failed_count() const {
  size_t n = 0;
  for (const Disk* d : disks_) {
    n += d->failed() ? 1 : 0;
  }
  return n;
}

Status RaidGroup::XorStripeExcept(Dbn stripe, size_t skip_column, Block* out) {
  out->Zero();
  Block tmp;
  for (size_t c = 0; c < disks_.size(); ++c) {
    if (c == skip_column) {
      continue;
    }
    BKUP_RETURN_IF_ERROR(disks_[c]->ReadData(stripe, &tmp));
    out->XorWith(tmp);
  }
  return Status::Ok();
}

Status RaidGroup::ReadBlock(uint64_t gbn, Block* out) {
  Placement p = Locate(gbn);
  if (!p.disk->failed()) {
    return p.disk->ReadData(p.dbn, out);
  }
  if (failed_count() > 1) {
    return IoError(name_ + ": multiple drive failures, data lost");
  }
  // Degraded read: data = XOR of surviving data columns and parity.
  return XorStripeExcept(p.dbn, p.column, out);
}

Status RaidGroup::WriteBlock(uint64_t gbn, const Block& block) {
  Placement p = Locate(gbn);
  Disk* parity = parity_disk();

  if (p.disk->failed()) {
    if (failed_count() > 1) {
      return IoError(name_ + ": multiple drive failures, stripe lost");
    }
    // Degraded write: fold the new data into parity so a future
    // reconstruction of this column yields `block`.
    Block others;
    // XOR of all drives except the failed data column and the parity disk.
    others.Zero();
    Block tmp;
    for (size_t c = 0; c < data_width(); ++c) {
      if (c == p.column) {
        continue;
      }
      BKUP_RETURN_IF_ERROR(disks_[c]->ReadData(p.dbn, &tmp));
      others.XorWith(tmp);
    }
    others.XorWith(block);
    return parity->WriteData(p.dbn, others);
  }

  if (parity->failed()) {
    // Parity offline: write data only; parity is rebuilt on replacement.
    return p.disk->WriteData(p.dbn, block);
  }

  // Normal path: read-modify-write parity.
  Block old_data;
  Block old_parity;
  BKUP_RETURN_IF_ERROR(p.disk->ReadData(p.dbn, &old_data));
  BKUP_RETURN_IF_ERROR(parity->ReadData(p.dbn, &old_parity));
  old_parity.XorWith(old_data);
  old_parity.XorWith(block);
  BKUP_RETURN_IF_ERROR(p.disk->WriteData(p.dbn, block));
  return parity->WriteData(p.dbn, old_parity);
}

Status RaidGroup::Reconstruct(size_t column) {
  assert(column <= data_width());
  Disk* target = column == data_width() ? parity_disk() : disks_[column];
  if (target->failed()) {
    return FailedPrecondition(
        name_ + ": replace the failed drive before reconstructing");
  }
  if (failed_count() > 0) {
    return IoError(name_ + ": another drive is still failed");
  }
  Block rebuilt;
  for (Dbn stripe = 0; stripe < blocks_per_disk_; ++stripe) {
    BKUP_RETURN_IF_ERROR(XorStripeExcept(stripe, column, &rebuilt));
    BKUP_RETURN_IF_ERROR(target->WriteData(stripe, rebuilt));
  }
  return Status::Ok();
}

}  // namespace bkup

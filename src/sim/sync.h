// Synchronization primitives for simulated processes: a manual-reset event
// and a countdown latch (used to join parallel per-disk transfers).
#ifndef BKUP_SIM_SYNC_H_
#define BKUP_SIM_SYNC_H_

#include <cassert>
#include <coroutine>
#include <vector>

#include "src/sim/environment.h"

namespace bkup {

// One-shot event: waiters park until Notify(); waits after Notify() complete
// immediately.
class SimEvent {
 public:
  explicit SimEvent(SimEnvironment* env) : env_(env) {}

  SimEvent(const SimEvent&) = delete;
  SimEvent& operator=(const SimEvent&) = delete;

  bool notified() const { return notified_; }

  void Notify() {
    assert(!notified_);
    notified_ = true;
    for (auto handle : waiters_) {
      env_->ScheduleNow(handle);
    }
    waiters_.clear();
  }

  auto Wait() {
    struct Awaiter {
      SimEvent* ev;
      bool await_ready() const { return ev->notified_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  SimEnvironment* env_;
  bool notified_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Latch: Wait() completes when CountDown() has been called `count` times.
class CountdownLatch {
 public:
  CountdownLatch(SimEnvironment* env, int count)
      : event_(env), remaining_(count) {
    assert(count >= 0);
    if (count == 0) {
      event_.Notify();
    }
  }

  void CountDown() {
    assert(remaining_ > 0);
    if (--remaining_ == 0) {
      event_.Notify();
    }
  }

  auto Wait() { return event_.Wait(); }
  bool done() const { return remaining_ == 0; }

 private:
  SimEvent event_;
  int remaining_;
};

}  // namespace bkup

#endif  // BKUP_SIM_SYNC_H_

// A token-bucket rate limiter for backup QoS (DESIGN.md §15).
//
// `BackupThrottle` caps a dump's stream rate to an I/O share: producers call
// `Acquire(bytes)` before moving bytes, and the awaiting coroutine sleeps in
// simulated time until the bucket holds enough tokens. Requests are served
// strictly FIFO through an internal gate so concurrent producers (parallel
// dump parts, a stream sender) share the budget deterministically. A request
// larger than the burst is legal — it waits for the exact deficit at the
// refill rate — so chunk sizes never have to know the bucket depth.
//
// Lives in the sim layer (not obs/backup) so devices, jobs and the network
// can all consult one throttle without a layering cycle; stats are a plain
// struct the caller can export.
#ifndef BKUP_SIM_THROTTLE_H_
#define BKUP_SIM_THROTTLE_H_

#include <cstdint>
#include <string>

#include "src/sim/environment.h"
#include "src/sim/resource.h"
#include "src/sim/task.h"
#include "src/util/units.h"

namespace bkup {

class BackupThrottle {
 public:
  struct Stats {
    uint64_t requests = 0;            // Acquire calls completed
    uint64_t bytes = 0;               // tokens consumed
    uint64_t throttled_requests = 0;  // requests that had to sleep
    SimDuration total_wait = 0;       // simulated time spent sleeping
  };

  // `bytes_per_s` <= 0 disables throttling (Acquire returns immediately).
  // `burst_bytes` = 0 defaults the bucket depth to one second of rate.
  BackupThrottle(SimEnvironment* env, double bytes_per_s,
                 uint64_t burst_bytes = 0,
                 std::string name = "backup.throttle");

  BackupThrottle(const BackupThrottle&) = delete;
  BackupThrottle& operator=(const BackupThrottle&) = delete;

  // Awaitable: consumes `bytes` of budget, sleeping until the bucket can
  // cover them. FIFO across concurrent callers.
  Task Acquire(uint64_t bytes);

  const std::string& name() const { return name_; }
  double bytes_per_s() const { return rate_; }
  double burst_bytes() const { return burst_; }
  bool enabled() const { return rate_ > 0.0; }
  const Stats& stats() const { return stats_; }

 private:
  // Credits tokens for the time elapsed since the last refill, capped at the
  // burst depth.
  void Refill();

  SimEnvironment* env_;
  std::string name_;
  double rate_;   // tokens (bytes) per second
  double burst_;  // bucket depth in bytes
  double tokens_;
  SimTime last_refill_ = 0;
  Resource gate_;  // serializes concurrent acquirers FIFO
  Stats stats_;
};

}  // namespace bkup

#endif  // BKUP_SIM_THROTTLE_H_

#include "src/sim/shard.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace bkup {

namespace {

// Cross-shard contract violations (undeclared edges, posts inside the
// lookahead window, zero-progress rounds) invalidate the byte-identical
// determinism guarantee this module promises, so they fail fast in release
// builds too instead of silently producing thread-count-dependent output.
[[noreturn]] void ContractViolation(const char* msg) {
  std::fprintf(stderr, "FATAL bkup::ShardedSimEnvironment: %s\n", msg);
  std::abort();
}

}  // namespace

ShardBinding::ShardBinding(SimShard* shard)
    : activate_(&shard->env()), metrics_(&shard->metrics()) {}

ShardedSimEnvironment::ShardedSimEnvironment(int num_shards,
                                             ShardedOptions options) {
  assert(num_shards > 0);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.emplace_back(new SimShard(i));
  }
  lookahead_.assign(
      static_cast<size_t>(num_shards) * static_cast<size_t>(num_shards),
      kNoEdge);
  int threads = options.threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = static_cast<int>(hw == 0 ? 1 : hw);
  }
  threads_ = std::min(threads, num_shards);
}

ShardedSimEnvironment::~ShardedSimEnvironment() = default;

void ShardedSimEnvironment::Connect(int src, int dst, SimDuration lookahead) {
  if (src == dst) {
    ContractViolation("Connect: a shard needs no lookahead to itself");
  }
  if (lookahead < 1) {
    ContractViolation(
        "Connect: conservative synchronization requires lookahead >= 1 us");
  }
  SimDuration& slot =
      lookahead_[static_cast<size_t>(src) * shards_.size() +
                 static_cast<size_t>(dst)];
  slot = slot == kNoEdge ? lookahead : std::min(slot, lookahead);
  has_edges_ = true;
}

std::optional<SimDuration> ShardedSimEnvironment::Lookahead(int src,
                                                            int dst) const {
  const SimDuration l =
      lookahead_[static_cast<size_t>(src) * shards_.size() +
                 static_cast<size_t>(dst)];
  if (l == kNoEdge) {
    return std::nullopt;
  }
  return l;
}

void ShardedSimEnvironment::PostAt(int src, int dst, SimTime when,
                                   std::coroutine_handle<> handle) {
  SimShard& from = shard(src);
  SimShard& to = shard(dst);
  const std::optional<SimDuration> l = Lookahead(src, dst);
  if (!l.has_value()) {
    ContractViolation("PostAt over an undeclared shard edge");
  }
  if (when < from.now() + *l) {
    ContractViolation("PostAt: cross-shard event inside the lookahead window");
  }
  const uint64_t seq = from.cross_seq_++;
  std::lock_guard<std::mutex> lock(to.mailbox_mu_);
  to.mailbox_.push_back(SimShard::Mail{when, src, seq, handle});
}

void ShardedSimEnvironment::PostTask(int src, int dst, SimTime when,
                                     Task task) {
  auto handle = task.Release();
  assert(handle && "posting an empty task");
  handle.promise().started = true;
  PostAt(src, dst, when, handle);
}

void ShardedSimEnvironment::DrainMailbox(SimShard* shard) {
  std::vector<SimShard::Mail> mail;
  {
    std::lock_guard<std::mutex> lock(shard->mailbox_mu_);
    mail.swap(shard->mailbox_);
  }
  if (mail.empty()) {
    return;
  }
  // Deterministic merge order: (when, source shard, sender seq). Appends
  // raced under the mutex, but the sort key is interleaving-independent.
  std::sort(mail.begin(), mail.end(),
            [](const SimShard::Mail& a, const SimShard::Mail& b) {
              if (a.when != b.when) {
                return a.when < b.when;
              }
              if (a.src != b.src) {
                return a.src < b.src;
              }
              return a.seq < b.seq;
            });
  for (const SimShard::Mail& m : mail) {
    shard->env().ScheduleAt(m.when, m.handle);
  }
}

namespace {

SimTime SaturatingAdd(SimTime t, SimDuration d) {
  if (t >= kNoPendingEvent - d) {
    return kNoPendingEvent;
  }
  return t + d;
}

}  // namespace

void ShardedSimEnvironment::ComputeBounds(std::vector<SimTime>* bounds) {
  const size_t n = shards_.size();
  // act[i]: earliest simulated time shard i could still become active
  // (process or send anything) — its next event, or the earliest inbound
  // message chain reaching it. Bellman-Ford-style relaxation; n rounds
  // suffice (longest simple chain).
  std::vector<SimTime> act(n);
  for (size_t i = 0; i < n; ++i) {
    act[i] = shards_[i]->env().NextEventTime();
  }
  if (has_edges_) {
    for (size_t round = 0; round < n; ++round) {
      bool changed = false;
      for (size_t u = 0; u < n; ++u) {
        for (size_t v = 0; v < n; ++v) {
          const SimDuration l = lookahead_[u * n + v];
          if (l == kNoEdge) {
            continue;
          }
          const SimTime reach = SaturatingAdd(act[u], l);
          if (reach < act[v]) {
            act[v] = reach;
            changed = true;
          }
        }
      }
      if (!changed) {
        break;
      }
    }
  }
  bounds->assign(n, kNoPendingEvent);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = 0; v < n; ++v) {
      const SimDuration l = lookahead_[u * n + v];
      if (l == kNoEdge) {
        continue;
      }
      (*bounds)[v] = std::min((*bounds)[v], SaturatingAdd(act[u], l));
    }
  }
}

// A tiny persistent pool: workers park on a condition variable between
// rounds; each round they race down a shared index into the runnable-shard
// list. Which worker executes which shard is irrelevant to the output —
// shard windows touch only shard-owned state.
struct ShardedSimEnvironment::WorkerPool {
  explicit WorkerPool(int workers) {
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : threads_) {
      t.join();
    }
  }

  // Runs every (shard, bound) job in `jobs`; the calling thread
  // participates. Returns only when all jobs are done AND every worker
  // that entered the round has left it (active_ == 0). Workers register
  // in active_ under mu_ before ever touching the jobs vector or
  // next_job_, so once this returns no stale worker can observe the
  // vector being reused or the counter being reset for the next round.
  void RunRound(const std::vector<std::pair<SimShard*, SimTime>>& jobs) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_ = &jobs;
      next_job_.store(0, std::memory_order_relaxed);
      pending_ = jobs.size();
      ++generation_;
    }
    start_cv_.notify_all();
    DrainJobs(jobs);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0 && active_ == 0; });
    // jobs_ is cleared under the same critical section the wait ended in,
    // so no worker can slip into the finished round in between.
    jobs_ = nullptr;
  }

 private:
  void WorkerLoop() {
    uint64_t seen_generation = 0;
    while (true) {
      const std::vector<std::pair<SimShard*, SimTime>>* jobs = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        start_cv_.wait(lock, [&] {
          return stop_ || generation_ != seen_generation;
        });
        if (stop_) {
          return;
        }
        seen_generation = generation_;
        // Woke after the round already completed without us (the other
        // participants drained it); nothing to do.
        if (jobs_ == nullptr) {
          continue;
        }
        jobs = jobs_;
        // Registered: RunRound now blocks until we leave the round.
        ++active_;
      }
      DrainJobs(*jobs);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --active_;
        if (active_ == 0 && pending_ == 0) {
          done_cv_.notify_all();
        }
      }
    }
  }

  void DrainJobs(const std::vector<std::pair<SimShard*, SimTime>>& jobs) {
    const size_t size = jobs.size();
    const std::pair<SimShard*, SimTime>* data = jobs.data();
    for (size_t i = next_job_.fetch_add(1, std::memory_order_relaxed);
         i < size; i = next_job_.fetch_add(1, std::memory_order_relaxed)) {
      SimShard* shard = data[i].first;
      const SimTime bound = data[i].second;
      {
        ShardBinding binding = shard->Bind();
        if (bound == kNoPendingEvent) {
          shard->env().Run();
        } else {
          shard->env().RunBefore(bound);
        }
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) {
        done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::vector<std::pair<SimShard*, SimTime>>* jobs_ = nullptr;
  std::atomic<size_t> next_job_{0};
  size_t pending_ = 0;
  // Workers currently inside the round (between registering on wake-up and
  // finishing DrainJobs). The coordinator is not counted: it only waits
  // after its own DrainJobs call returned.
  size_t active_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

SimTime ShardedSimEnvironment::Run() {
  const size_t n = shards_.size();
  // threads_ includes the coordinating thread, which participates in every
  // round; the pool holds the extras.
  WorkerPool pool(std::max(0, threads_ - 1));
  std::vector<SimTime> bounds;
  std::vector<std::pair<SimShard*, SimTime>> jobs;
  while (true) {
    for (auto& shard : shards_) {
      DrainMailbox(shard.get());
    }
    ComputeBounds(&bounds);
    jobs.clear();
    for (size_t i = 0; i < n; ++i) {
      const SimTime next = shards_[i]->env().NextEventTime();
      if (next == kNoPendingEvent) {
        continue;
      }
      if (next < bounds[i]) {
        jobs.emplace_back(shards_[i].get(), bounds[i]);
      }
    }
    if (jobs.empty()) {
      // Every pending event (if any) sits at or above its shard's bound;
      // with lookahead >= 1 that only happens when nothing is pending.
      bool any_pending = false;
      for (auto& shard : shards_) {
        any_pending |= shard->env().NextEventTime() != kNoPendingEvent;
      }
      if (any_pending) {
        ContractViolation(
            "conservative deadlock: zero-progress round with pending events");
      }
      break;
    }
    ++rounds_;
    pool.RunRound(jobs);
  }
  SimTime end = 0;
  for (auto& shard : shards_) {
    end = std::max(end, shard->now());
  }
  return end;
}

uint64_t ShardedSimEnvironment::total_events_processed() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->env().events_processed();
  }
  return total;
}

}  // namespace bkup

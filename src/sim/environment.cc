#include "src/sim/environment.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "src/util/logging.h"

namespace bkup {

namespace {

// Stack of live environments; the newest is "active". Registration is what
// lets log messages carry simulated time without util depending on sim.
std::vector<SimEnvironment*>& ActiveStack() {
  static std::vector<SimEnvironment*>* stack =
      new std::vector<SimEnvironment*>();
  return *stack;
}

int64_t ActiveSimTimeMicros() {
  SimEnvironment* env = SimEnvironment::Active();
  return env != nullptr ? env->now() : -1;
}

}  // namespace

SimEnvironment::SimEnvironment() {
  ActiveStack().push_back(this);
  SetSimLogClock(&ActiveSimTimeMicros);
}

SimEnvironment::~SimEnvironment() {
  std::vector<SimEnvironment*>& stack = ActiveStack();
  stack.erase(std::remove(stack.begin(), stack.end(), this), stack.end());
}

SimEnvironment* SimEnvironment::Active() {
  std::vector<SimEnvironment*>& stack = ActiveStack();
  return stack.empty() ? nullptr : stack.back();
}

void SimEnvironment::ScheduleAt(SimTime when, std::coroutine_handle<> handle) {
  assert(when >= now_ && "cannot schedule into the simulated past");
  queue_.push(Event{when, next_seq_++, handle});
}

void SimEnvironment::Spawn(Task task) {
  auto handle = task.Release();
  assert(handle && "spawning an empty task");
  handle.promise().started = true;
  ScheduleNow(handle);
}

SimTime SimEnvironment::Run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++events_processed_;
    ev.handle.resume();
  }
  return now_;
}

SimTime SimEnvironment::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++events_processed_;
    ev.handle.resume();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

}  // namespace bkup

#include "src/sim/environment.h"

#include <cassert>

namespace bkup {

void SimEnvironment::ScheduleAt(SimTime when, std::coroutine_handle<> handle) {
  assert(when >= now_ && "cannot schedule into the simulated past");
  queue_.push(Event{when, next_seq_++, handle});
}

void SimEnvironment::Spawn(Task task) {
  auto handle = task.Release();
  assert(handle && "spawning an empty task");
  handle.promise().started = true;
  ScheduleNow(handle);
}

SimTime SimEnvironment::Run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++events_processed_;
    ev.handle.resume();
  }
  return now_;
}

SimTime SimEnvironment::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++events_processed_;
    ev.handle.resume();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

}  // namespace bkup

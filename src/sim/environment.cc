#include "src/sim/environment.h"

#include <cassert>
#include <vector>

#include "src/util/logging.h"

namespace bkup {

namespace {

// Per-thread stack of live/activated environments; the newest is "active".
// Registration is what lets log messages carry simulated time without util
// depending on sim. The stack is thread-local so shard worker threads each
// see their own shard's clock, and `t_active` caches the top so the lookup
// on the logging path is a single pointer read.
thread_local std::vector<SimEnvironment*> t_env_stack;
thread_local SimEnvironment* t_active = nullptr;

int64_t ActiveSimTimeMicros() {
  return t_active != nullptr ? t_active->now() : -1;
}

}  // namespace

void SimEnvironment::PushActive(SimEnvironment* env) {
  t_env_stack.push_back(env);
  t_active = env;
  SetSimLogClock(&ActiveSimTimeMicros);
}

void SimEnvironment::PopActive(SimEnvironment* env) {
  // Remove the newest occurrence; environments normally unwind LIFO but a
  // bench may destroy them out of order.
  for (size_t i = t_env_stack.size(); i > 0; --i) {
    if (t_env_stack[i - 1] == env) {
      t_env_stack.erase(t_env_stack.begin() + static_cast<ptrdiff_t>(i - 1));
      break;
    }
  }
  // Re-arm the new stack top (or disarm the sim clock entirely) so log
  // prefixes fall back to the enclosing environment's clock instead of
  // dangling on the destroyed one.
  t_active = t_env_stack.empty() ? nullptr : t_env_stack.back();
  SetSimLogClock(t_active != nullptr ? &ActiveSimTimeMicros : nullptr);
}

SimEnvironment::SimEnvironment() { PushActive(this); }

SimEnvironment::~SimEnvironment() { PopActive(this); }

SimEnvironment* SimEnvironment::Active() { return t_active; }

void SimEnvironment::Spawn(Task task) {
  auto handle = task.Release();
  assert(handle && "spawning an empty task");
  handle.promise().started = true;
  ScheduleNow(handle);
}

SimTime SimEnvironment::Run() {
  while (!queue_.Empty()) {
    const QueuedEvent ev = queue_.Pop();  // moved out once; no copy-then-pop
    now_ = ev.when;
    ++events_processed_;
    ev.handle.resume();
  }
  return now_;
}

SimTime SimEnvironment::RunUntil(SimTime deadline) {
  while (!queue_.Empty() && queue_.NextTime() <= deadline) {
    const QueuedEvent ev = queue_.Pop();
    now_ = ev.when;
    ++events_processed_;
    ev.handle.resume();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return now_;
}

uint64_t SimEnvironment::RunBefore(SimTime bound) {
  uint64_t processed = 0;
  while (!queue_.Empty() && queue_.NextTime() < bound) {
    const QueuedEvent ev = queue_.Pop();
    now_ = ev.when;
    ++events_processed_;
    ++processed;
    ev.handle.resume();
  }
  return processed;
}

}  // namespace bkup
